// Program-builder API ("assembler") for SEFI-A9 guest code.
//
// Guest programs — the 13 benchmark workloads and the mini-kernel — are
// written in C++ against this API, which plays the role of an assembler:
// it emits encoded instruction words, supports forward-referenced labels,
// data directives, and named symbols, and resolves all fixups in finish().
//
// Example:
//   Assembler a(0x10000);
//   Label loop = a.make_label();
//   a.movi(Reg::r0, 10);
//   a.bind(loop);
//   a.subi(Reg::r0, Reg::r0, 1);
//   a.cmpi(Reg::r0, 0);
//   a.b(Cond::ne, loop);
//   Program p = a.finish();
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sefi/isa/isa.hpp"

namespace sefi::isa {

/// One recorded builder action. The stream, replayed through a fresh
/// Assembler, reproduces the program bit-for-bit: branches and label
/// loads stay symbolic here and re-resolve at finish(), which is what
/// lets post-processing transforms (src/harden) expand the instruction
/// stream without breaking branch targets or data references.
struct BuildEvent {
  enum class Kind : std::uint8_t {
    kInstr,       ///< label-free instruction; `inst` encodes verbatim
    kBranch,      ///< b(cond, label)
    kBranchLink,  ///< bl(label)
    kLoadLabel,   ///< load_label(reg, label) pseudo-op (movi+movt pair)
    kBind,        ///< label bound at this position
    kData,        ///< raw data bytes (word/half/byte/float32/bytes/zero)
    kAlign,       ///< align(value)
    kSymbol,      ///< named symbol recorded at this position
    kEntry,       ///< entry_here()
  };
  Kind kind = Kind::kInstr;
  Instruction inst{};              ///< kInstr
  Cond cond = Cond::al;            ///< kBranch condition
  std::uint8_t reg = 0;            ///< kLoadLabel destination register
  std::uint32_t label = 0;         ///< source-assembler label id
  std::uint32_t value = 0;         ///< kAlign alignment
  std::vector<std::uint8_t> data;  ///< kData payload (coalesced)
  std::string name;                ///< kSymbol name
};

/// A finished guest program image: raw bytes to be loaded at `base`.
struct Program {
  std::uint32_t base = 0;
  std::uint32_t entry = 0;
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::uint32_t> symbols;
  /// The builder-action stream that produced `bytes` (see BuildEvent).
  std::vector<BuildEvent> events;

  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes.size()); }
  /// Address of a named symbol; throws SefiError if absent.
  std::uint32_t symbol(const std::string& name) const;
};

/// Rebuilds a program from its recorded event stream through a fresh
/// Assembler. The result is bit-identical to the original — the fidelity
/// contract the harden transforms (and their tests) rest on.
Program replay_events(const Program& program);

/// An opaque label handle. Valid only for the Assembler that created it.
class Label {
 public:
  Label() = default;

 private:
  friend class Assembler;
  explicit Label(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = UINT32_MAX;
};

class Assembler {
 public:
  explicit Assembler(std::uint32_t base_address);

  // --- labels and symbols ---------------------------------------------
  Label make_label();
  /// Binds `label` to the current position. Each label binds exactly once.
  void bind(Label label);
  /// Records the current address under `name` in the program symbol table.
  void symbol(const std::string& name);
  /// Marks the current address as the program entry point (default: base).
  void entry_here();
  /// Current emission address.
  std::uint32_t here() const;
  /// Address a bound label resolves to; throws if unbound.
  std::uint32_t address_of(Label label) const;

  /// Emits an already-decoded, label-free instruction verbatim (used by
  /// event replay and the harden transforms).
  void emit(const Instruction& inst);

  // --- integer ALU ------------------------------------------------------
  void add(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kAdd, rd, rn, rm); }
  void sub(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kSub, rd, rn, rm); }
  void and_(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kAnd, rd, rn, rm); }
  void orr(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kOrr, rd, rn, rm); }
  void eor(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kEor, rd, rn, rm); }
  void lsl(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kLsl, rd, rn, rm); }
  void lsr(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kLsr, rd, rn, rm); }
  void asr(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kAsr, rd, rn, rm); }
  void mul(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kMul, rd, rn, rm); }
  void sdiv(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kSdiv, rd, rn, rm); }
  void udiv(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kUdiv, rd, rn, rm); }
  void cmp(Reg rn, Reg rm) { emit_r(Opcode::kCmp, Reg::r0, rn, rm); }
  void mov(Reg rd, Reg rm) { emit_r(Opcode::kMov, rd, Reg::r0, rm); }

  void addi(Reg rd, Reg rn, std::int32_t imm) { emit_i(Opcode::kAddi, rd, rn, imm); }
  void subi(Reg rd, Reg rn, std::int32_t imm) { emit_i(Opcode::kSubi, rd, rn, imm); }
  void andi(Reg rd, Reg rn, std::int32_t imm) { emit_i(Opcode::kAndi, rd, rn, imm); }
  void orri(Reg rd, Reg rn, std::int32_t imm) { emit_i(Opcode::kOrri, rd, rn, imm); }
  void eori(Reg rd, Reg rn, std::int32_t imm) { emit_i(Opcode::kEori, rd, rn, imm); }
  void lsli(Reg rd, Reg rn, std::int32_t imm) { emit_i(Opcode::kLsli, rd, rn, imm); }
  void lsri(Reg rd, Reg rn, std::int32_t imm) { emit_i(Opcode::kLsri, rd, rn, imm); }
  void asri(Reg rd, Reg rn, std::int32_t imm) { emit_i(Opcode::kAsri, rd, rn, imm); }
  void cmpi(Reg rn, std::int32_t imm) { emit_i(Opcode::kCmpi, Reg::r0, rn, imm); }

  void movi(Reg rd, std::uint32_t imm16);
  void movt(Reg rd, std::uint32_t imm16);
  /// Pseudo-op: loads an arbitrary 32-bit constant (movi, movt if needed).
  void mov_imm32(Reg rd, std::uint32_t value);
  /// Pseudo-op: loads the absolute address of a label (fixed up at finish).
  void load_label(Reg rd, Label label);

  // --- floating point (single precision, in GPRs) ----------------------
  void fadd(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kFadd, rd, rn, rm); }
  void fsub(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kFsub, rd, rn, rm); }
  void fmul(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kFmul, rd, rn, rm); }
  void fdiv(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kFdiv, rd, rn, rm); }
  void fcmp(Reg rn, Reg rm) { emit_r(Opcode::kFcmp, Reg::r0, rn, rm); }
  void fcvtws(Reg rd, Reg rn) { emit_r(Opcode::kFcvtws, rd, rn, Reg::r0); }
  void fcvtsw(Reg rd, Reg rn) { emit_r(Opcode::kFcvtsw, rd, rn, Reg::r0); }
  void fsqrt(Reg rd, Reg rn) { emit_r(Opcode::kFsqrt, rd, rn, Reg::r0); }
  /// Pseudo-op: loads a float constant's bit pattern.
  void mov_float(Reg rd, float value);

  // --- memory -----------------------------------------------------------
  void ldr(Reg rd, Reg rn, std::int32_t off = 0) { emit_i(Opcode::kLdr, rd, rn, off); }
  void str(Reg rd, Reg rn, std::int32_t off = 0) { emit_i(Opcode::kStr, rd, rn, off); }
  void ldrb(Reg rd, Reg rn, std::int32_t off = 0) { emit_i(Opcode::kLdrb, rd, rn, off); }
  void strb(Reg rd, Reg rn, std::int32_t off = 0) { emit_i(Opcode::kStrb, rd, rn, off); }
  void ldrh(Reg rd, Reg rn, std::int32_t off = 0) { emit_i(Opcode::kLdrh, rd, rn, off); }
  void strh(Reg rd, Reg rn, std::int32_t off = 0) { emit_i(Opcode::kStrh, rd, rn, off); }
  void ldrr(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kLdrr, rd, rn, rm); }
  void strr(Reg rd, Reg rn, Reg rm) { emit_r(Opcode::kStrr, rd, rn, rm); }

  // --- control flow -----------------------------------------------------
  void b(Label target) { b(Cond::al, target); }
  void b(Cond cond, Label target);
  void bl(Label target);
  void br(Reg rn) { emit_r(Opcode::kBr, Reg::r0, rn, Reg::r0); }
  void blr(Reg rn) { emit_r(Opcode::kBlr, Reg::r0, rn, Reg::r0); }
  /// Pseudo-op: return (br lr).
  void ret() { br(Reg::lr); }

  // --- system -----------------------------------------------------------
  void svc(std::uint32_t number);
  void eret() { emit_r(Opcode::kEret, Reg::r0, Reg::r0, Reg::r0); }
  void mrs(Reg rd) { emit_r(Opcode::kMrs, rd, Reg::r0, Reg::r0); }
  void msr(Reg rn) { emit_r(Opcode::kMsr, Reg::r0, rn, Reg::r0); }
  void mrs_elr(Reg rd) { emit_r(Opcode::kMrsElr, rd, Reg::r0, Reg::r0); }
  void msr_elr(Reg rn) { emit_r(Opcode::kMsrElr, Reg::r0, rn, Reg::r0); }
  void mrs_spsr(Reg rd) { emit_r(Opcode::kMrsSpsr, rd, Reg::r0, Reg::r0); }
  void msr_spsr(Reg rn) { emit_r(Opcode::kMsrSpsr, Reg::r0, rn, Reg::r0); }
  void mrs_usp(Reg rd) { emit_r(Opcode::kMrsUsp, rd, Reg::r0, Reg::r0); }
  void msr_usp(Reg rn) { emit_r(Opcode::kMsrUsp, Reg::r0, rn, Reg::r0); }
  void tlbflush() { emit_r(Opcode::kTlbFlush, Reg::r0, Reg::r0, Reg::r0); }
  void hlt() { emit_r(Opcode::kHlt, Reg::r0, Reg::r0, Reg::r0); }
  void nop() { emit_r(Opcode::kNop, Reg::r0, Reg::r0, Reg::r0); }

  // --- stack helpers ----------------------------------------------------
  /// Pushes registers (descending stack); order in the list = memory order.
  void push(std::initializer_list<Reg> regs);
  /// Pops registers previously pushed with the same list.
  void pop(std::initializer_list<Reg> regs);

  // --- data directives --------------------------------------------------
  void word(std::uint32_t value);
  void half(std::uint16_t value);
  void byte(std::uint8_t value);
  void float32(float value);
  void bytes(const std::vector<std::uint8_t>& data);
  void zero(std::uint32_t count);
  void align(std::uint32_t alignment);

  /// Resolves all fixups and returns the program. The assembler must not
  /// be used afterwards.
  Program finish();

 private:
  enum class FixupKind { kBranchCond, kBranchLink, kAbsLo16, kAbsHi16 };
  struct Fixup {
    std::uint32_t offset;  ///< byte offset of the instruction in bytes_
    std::uint32_t label_id;
    FixupKind kind;
  };

  void emit_r(Opcode op, Reg rd, Reg rn, Reg rm);
  void emit_i(Opcode op, Reg rd, Reg rn, std::int32_t imm);
  void emit_word(std::uint32_t word);
  void record(BuildEvent event);
  void record_instr(const Instruction& inst);
  void record_data(const std::uint8_t* data, std::size_t size);

  std::uint32_t base_;
  std::uint32_t entry_;
  std::vector<std::uint8_t> bytes_;
  std::vector<std::int64_t> label_offsets_;  ///< -1 = unbound
  std::vector<Fixup> fixups_;
  std::map<std::string, std::uint32_t> symbols_;
  std::vector<BuildEvent> events_;
  bool suppress_events_ = false;  ///< pseudo-op internals record once
  bool finished_ = false;
};

}  // namespace sefi::isa
