// SEFI-A9 instruction set architecture.
//
// A 32-bit fixed-width ARM-class RISC ISA: 16 general-purpose registers,
// NZCV condition flags, conditional branches, load/store with immediate and
// register offsets, single-precision floating point held in GPRs (VFP-like),
// and a small system instruction set (SVC/ERET/MRS/MSR) sufficient to run a
// protected-mode mini-kernel with interrupts and an MMU.
//
// Encoding formats (all instructions are one 32-bit word, opcode in [31:26]):
//   R:   op(6) | rd(4) | rn(4) | rm(4) | unused(14)
//   I:   op(6) | rd(4) | rn(4) | imm18 (signed, except logical ops: zero-ext)
//   U:   op(6) | rd(4) | imm16 | unused(6)          (MOVI/MOVT)
//   Bc:  op(6) | cond(4) | off22 (signed word offset)
//   BL:  op(6) | off26   (signed word offset)
//   Sys: op(6) | rd(4) | rn(4) | imm16 | unused(2)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sefi::isa {

inline constexpr unsigned kNumGprs = 16;

/// Architectural register names. sp/lr follow ARM convention.
enum class Reg : std::uint8_t {
  r0 = 0, r1, r2, r3, r4, r5, r6, r7,
  r8, r9, r10, r11, r12,
  sp = 13,  ///< stack pointer
  lr = 14,  ///< link register
  ip = 15,  ///< intra-procedure scratch (assembler temporary)
};

constexpr std::uint8_t reg_index(Reg r) noexcept {
  return static_cast<std::uint8_t>(r);
}

/// Condition codes evaluated against the NZCV flags (ARM semantics).
enum class Cond : std::uint8_t {
  eq = 0,   ///< Z
  ne = 1,   ///< !Z
  cs = 2,   ///< C          (unsigned >=)
  cc = 3,   ///< !C         (unsigned <)
  mi = 4,   ///< N
  pl = 5,   ///< !N
  vs = 6,   ///< V
  vc = 7,   ///< !V
  hi = 8,   ///< C && !Z    (unsigned >)
  ls = 9,   ///< !C || Z    (unsigned <=)
  ge = 10,  ///< N == V
  lt = 11,  ///< N != V
  gt = 12,  ///< !Z && N==V
  le = 13,  ///< Z || N!=V
  al = 14,  ///< always
};

enum class Opcode : std::uint8_t {
  // R-format integer ALU.
  kAdd = 0, kSub, kAnd, kOrr, kEor, kLsl, kLsr, kAsr,
  kMul, kSdiv, kUdiv,
  kCmp,   ///< rn - rm, sets NZCV, rd ignored
  kMov,   ///< rd = rm
  // R-format single-precision float (operands live in GPRs, VFP-style).
  kFadd, kFsub, kFmul, kFdiv,
  kFcmp,    ///< ordered compare of rn, rm; sets NZCV
  kFcvtws,  ///< rd = (int32) float(rn), truncating
  kFcvtsw,  ///< rd = (float) int32(rn)
  kFsqrt,   ///< rd = sqrtf(rn)
  // I-format integer ALU (imm18; signed for add/sub/cmp, zero-ext for logic).
  kAddi, kSubi, kAndi, kOrri, kEori, kLsli, kLsri, kAsri, kCmpi,
  // U-format.
  kMovi,  ///< rd = zext(imm16)
  kMovt,  ///< rd = (rd & 0xffff) | imm16 << 16
  // Memory, I-format (address = rn + simm18).
  kLdr, kStr, kLdrb, kStrb, kLdrh, kStrh,
  // Memory, R-format (address = rn + rm).
  kLdrr, kStrr,
  // Branches.
  kB,    ///< conditional relative branch (Bc format)
  kBl,   ///< branch and link (BL format), lr = return address
  kBr,   ///< branch to register rn
  kBlr,  ///< branch and link to register rn
  // System.
  kSvc,      ///< supervisor call, imm16 = syscall number
  kEret,     ///< return from exception: pc=ELR, CPSR=SPSR (kernel only)
  kMrs,      ///< rd = CPSR (kernel only)
  kMsr,      ///< CPSR = rn (kernel only)
  kMrsElr,   ///< rd = ELR (kernel only)
  kMsrElr,   ///< ELR = rn (kernel only)
  kMrsSpsr,  ///< rd = SPSR (kernel only)
  kMsrSpsr,  ///< SPSR = rn (kernel only)
  kMrsUsp,   ///< rd = banked user SP (kernel only)
  kMsrUsp,   ///< banked user SP = rn (kernel only)
  kTlbFlush, ///< invalidate both TLBs (kernel only; context switch)
  kHlt,      ///< halt the machine (kernel only)
  kNop,
  kOpcodeCount,
};

/// CPSR bit layout.
namespace cpsr {
inline constexpr std::uint32_t kModeKernel = 1u << 0;
inline constexpr std::uint32_t kIrqEnable = 1u << 1;
inline constexpr std::uint32_t kMmuEnable = 1u << 2;
inline constexpr std::uint32_t kFlagV = 1u << 28;
inline constexpr std::uint32_t kFlagC = 1u << 29;
inline constexpr std::uint32_t kFlagZ = 1u << 30;
inline constexpr std::uint32_t kFlagN = 1u << 31;
}  // namespace cpsr

/// A decoded instruction. Fields not used by the format are zero.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rn = 0;
  std::uint8_t rm = 0;
  Cond cond = Cond::al;
  std::int32_t imm = 0;  ///< sign- or zero-extended per format
};

/// Encodes `inst` to its 32-bit word. Throws SefiError on out-of-range
/// fields (e.g. branch offset too large).
std::uint32_t encode(const Instruction& inst);

/// Decodes a 32-bit word. Returns nullopt for invalid opcodes, which the
/// CPU reports as an undefined-instruction exception.
std::optional<Instruction> decode(std::uint32_t word) noexcept;

/// Evaluates condition `cond` against CPSR flags. Header-inline so the
/// interpreter's branch handler (the hottest control-flow path) can fold
/// the flag tests into the caller.
constexpr bool cond_holds(Cond cond, std::uint32_t cpsr_value) noexcept {
  const bool n = (cpsr_value & cpsr::kFlagN) != 0;
  const bool z = (cpsr_value & cpsr::kFlagZ) != 0;
  const bool c = (cpsr_value & cpsr::kFlagC) != 0;
  const bool o = (cpsr_value & cpsr::kFlagV) != 0;
  switch (cond) {
    case Cond::eq: return z;
    case Cond::ne: return !z;
    case Cond::cs: return c;
    case Cond::cc: return !c;
    case Cond::mi: return n;
    case Cond::pl: return !n;
    case Cond::vs: return o;
    case Cond::vc: return !o;
    case Cond::hi: return c && !z;
    case Cond::ls: return !c || z;
    case Cond::ge: return n == o;
    case Cond::lt: return n != o;
    case Cond::gt: return !z && n == o;
    case Cond::le: return z || n != o;
    case Cond::al: return true;
  }
  return false;
}

/// Human-readable mnemonic of an opcode ("add", "ldr", ...).
std::string opcode_name(Opcode op);

/// Human-readable condition suffix ("eq", "" for al).
std::string cond_name(Cond cond);

/// Disassembles a single instruction word at `pc` (pc used to render
/// branch targets as absolute addresses).
std::string disassemble(std::uint32_t word, std::uint32_t pc);

}  // namespace sefi::isa
