#include "sefi/isa/assembler.hpp"

#include <bit>
#include <cstring>

#include "sefi/support/error.hpp"

namespace sefi::isa {

using support::require;

std::uint32_t Program::symbol(const std::string& name) const {
  const auto it = symbols.find(name);
  require(it != symbols.end(), "Program::symbol: unknown symbol " + name);
  return it->second;
}

Assembler::Assembler(std::uint32_t base_address)
    : base_(base_address), entry_(base_address) {
  require(base_address % 4 == 0, "Assembler: base must be word aligned");
}

Label Assembler::make_label() {
  label_offsets_.push_back(-1);
  return Label(static_cast<std::uint32_t>(label_offsets_.size() - 1));
}

void Assembler::bind(Label label) {
  require(label.id_ < label_offsets_.size(), "bind: foreign label");
  require(label_offsets_[label.id_] < 0, "bind: label bound twice");
  label_offsets_[label.id_] = static_cast<std::int64_t>(bytes_.size());
  BuildEvent e;
  e.kind = BuildEvent::Kind::kBind;
  e.label = label.id_;
  record(std::move(e));
}

void Assembler::symbol(const std::string& name) {
  require(!symbols_.contains(name), "symbol: duplicate symbol " + name);
  symbols_[name] = here();
  BuildEvent e;
  e.kind = BuildEvent::Kind::kSymbol;
  e.name = name;
  record(std::move(e));
}

void Assembler::entry_here() {
  entry_ = here();
  BuildEvent e;
  e.kind = BuildEvent::Kind::kEntry;
  record(std::move(e));
}

std::uint32_t Assembler::here() const {
  return base_ + static_cast<std::uint32_t>(bytes_.size());
}

std::uint32_t Assembler::address_of(Label label) const {
  require(label.id_ < label_offsets_.size(), "address_of: foreign label");
  require(label_offsets_[label.id_] >= 0, "address_of: unbound label");
  return base_ + static_cast<std::uint32_t>(label_offsets_[label.id_]);
}

void Assembler::emit_word(std::uint32_t w) {
  require(!finished_, "Assembler: already finished");
  bytes_.push_back(static_cast<std::uint8_t>(w));
  bytes_.push_back(static_cast<std::uint8_t>(w >> 8));
  bytes_.push_back(static_cast<std::uint8_t>(w >> 16));
  bytes_.push_back(static_cast<std::uint8_t>(w >> 24));
}

void Assembler::emit_r(Opcode op, Reg rd, Reg rn, Reg rm) {
  Instruction i;
  i.op = op;
  i.rd = reg_index(rd);
  i.rn = reg_index(rn);
  i.rm = reg_index(rm);
  require(bytes_.size() % 4 == 0, "emit: misaligned instruction");
  record_instr(i);
  emit_word(encode(i));
}

void Assembler::emit_i(Opcode op, Reg rd, Reg rn, std::int32_t imm) {
  Instruction i;
  i.op = op;
  i.rd = reg_index(rd);
  i.rn = reg_index(rn);
  i.imm = imm;
  require(bytes_.size() % 4 == 0, "emit: misaligned instruction");
  record_instr(i);
  emit_word(encode(i));
}

void Assembler::emit(const Instruction& inst) {
  require(bytes_.size() % 4 == 0, "emit: misaligned instruction");
  record_instr(inst);
  emit_word(encode(inst));
}

void Assembler::record(BuildEvent event) {
  if (!suppress_events_) events_.push_back(std::move(event));
}

void Assembler::record_instr(const Instruction& inst) {
  BuildEvent e;
  e.kind = BuildEvent::Kind::kInstr;
  e.inst = inst;
  record(std::move(e));
}

void Assembler::record_data(const std::uint8_t* data, std::size_t size) {
  if (suppress_events_) return;
  // Coalesce adjacent data directives: big tables stay one event.
  if (events_.empty() || events_.back().kind != BuildEvent::Kind::kData) {
    BuildEvent e;
    e.kind = BuildEvent::Kind::kData;
    events_.push_back(std::move(e));
  }
  events_.back().data.insert(events_.back().data.end(), data, data + size);
}

void Assembler::movi(Reg rd, std::uint32_t imm16) {
  Instruction i;
  i.op = Opcode::kMovi;
  i.rd = reg_index(rd);
  i.imm = static_cast<std::int32_t>(imm16);
  record_instr(i);
  emit_word(encode(i));
}

void Assembler::movt(Reg rd, std::uint32_t imm16) {
  Instruction i;
  i.op = Opcode::kMovt;
  i.rd = reg_index(rd);
  i.imm = static_cast<std::int32_t>(imm16);
  record_instr(i);
  emit_word(encode(i));
}

void Assembler::mov_imm32(Reg rd, std::uint32_t value) {
  movi(rd, value & 0xffffu);
  if ((value >> 16) != 0) movt(rd, value >> 16);
}

void Assembler::load_label(Reg rd, Label label) {
  require(label.id_ < label_offsets_.size(), "load_label: foreign label");
  BuildEvent e;
  e.kind = BuildEvent::Kind::kLoadLabel;
  e.reg = reg_index(rd);
  e.label = label.id_;
  record(std::move(e));
  suppress_events_ = true;  // the movi/movt pair is one recorded pseudo-op
  fixups_.push_back({static_cast<std::uint32_t>(bytes_.size()), label.id_,
                     FixupKind::kAbsLo16});
  movi(rd, 0);
  fixups_.push_back({static_cast<std::uint32_t>(bytes_.size()), label.id_,
                     FixupKind::kAbsHi16});
  movt(rd, 0);
  suppress_events_ = false;
}

void Assembler::mov_float(Reg rd, float value) {
  mov_imm32(rd, std::bit_cast<std::uint32_t>(value));
}

void Assembler::b(Cond cond, Label target) {
  require(target.id_ < label_offsets_.size(), "b: foreign label");
  BuildEvent e;
  e.kind = BuildEvent::Kind::kBranch;
  e.cond = cond;
  e.label = target.id_;
  record(std::move(e));
  fixups_.push_back({static_cast<std::uint32_t>(bytes_.size()), target.id_,
                     FixupKind::kBranchCond});
  Instruction i;
  i.op = Opcode::kB;
  i.cond = cond;
  i.imm = 0;
  emit_word(encode(i));
}

void Assembler::bl(Label target) {
  require(target.id_ < label_offsets_.size(), "bl: foreign label");
  BuildEvent e;
  e.kind = BuildEvent::Kind::kBranchLink;
  e.label = target.id_;
  record(std::move(e));
  fixups_.push_back({static_cast<std::uint32_t>(bytes_.size()), target.id_,
                     FixupKind::kBranchLink});
  Instruction i;
  i.op = Opcode::kBl;
  i.imm = 0;
  emit_word(encode(i));
}

void Assembler::svc(std::uint32_t number) {
  Instruction i;
  i.op = Opcode::kSvc;
  i.imm = static_cast<std::int32_t>(number);
  record_instr(i);
  emit_word(encode(i));
}

void Assembler::push(std::initializer_list<Reg> regs) {
  const auto count = static_cast<std::int32_t>(regs.size());
  require(count > 0, "push: empty register list");
  subi(Reg::sp, Reg::sp, count * 4);
  std::int32_t offset = 0;
  for (Reg r : regs) {
    str(r, Reg::sp, offset);
    offset += 4;
  }
}

void Assembler::pop(std::initializer_list<Reg> regs) {
  const auto count = static_cast<std::int32_t>(regs.size());
  require(count > 0, "pop: empty register list");
  std::int32_t offset = 0;
  for (Reg r : regs) {
    ldr(r, Reg::sp, offset);
    offset += 4;
  }
  addi(Reg::sp, Reg::sp, count * 4);
}

void Assembler::word(std::uint32_t value) {
  const std::uint8_t raw[4] = {static_cast<std::uint8_t>(value),
                               static_cast<std::uint8_t>(value >> 8),
                               static_cast<std::uint8_t>(value >> 16),
                               static_cast<std::uint8_t>(value >> 24)};
  record_data(raw, 4);
  emit_word(value);
}

void Assembler::half(std::uint16_t value) {
  const std::uint8_t raw[2] = {static_cast<std::uint8_t>(value),
                               static_cast<std::uint8_t>(value >> 8)};
  record_data(raw, 2);
  bytes_.push_back(raw[0]);
  bytes_.push_back(raw[1]);
}

void Assembler::byte(std::uint8_t value) {
  record_data(&value, 1);
  bytes_.push_back(value);
}

void Assembler::float32(float value) {
  const std::uint32_t w = std::bit_cast<std::uint32_t>(value);
  word(w);
}

void Assembler::bytes(const std::vector<std::uint8_t>& data) {
  record_data(data.data(), data.size());
  bytes_.insert(bytes_.end(), data.begin(), data.end());
}

void Assembler::zero(std::uint32_t count) {
  const std::vector<std::uint8_t> zeros(count, 0);
  record_data(zeros.data(), zeros.size());
  bytes_.insert(bytes_.end(), count, 0);
}

void Assembler::align(std::uint32_t alignment) {
  require(alignment != 0 && (alignment & (alignment - 1)) == 0,
          "align: alignment must be a power of two");
  BuildEvent e;
  e.kind = BuildEvent::Kind::kAlign;
  e.value = alignment;
  record(std::move(e));
  while (bytes_.size() % alignment != 0) bytes_.push_back(0);
}

Program Assembler::finish() {
  require(!finished_, "finish: called twice");
  finished_ = true;
  for (const Fixup& fixup : fixups_) {
    require(label_offsets_[fixup.label_id] >= 0,
            "finish: branch/reference to unbound label");
    const std::uint32_t target =
        base_ + static_cast<std::uint32_t>(label_offsets_[fixup.label_id]);
    std::uint32_t w;
    std::memcpy(&w, bytes_.data() + fixup.offset, 4);
    Instruction inst = *decode(w);
    switch (fixup.kind) {
      case FixupKind::kBranchCond:
      case FixupKind::kBranchLink: {
        const std::uint32_t pc = base_ + fixup.offset;
        const std::int64_t delta =
            (static_cast<std::int64_t>(target) - (pc + 4)) / 4;
        inst.imm = static_cast<std::int32_t>(delta);
        break;
      }
      case FixupKind::kAbsLo16:
        inst.imm = static_cast<std::int32_t>(target & 0xffffu);
        break;
      case FixupKind::kAbsHi16:
        inst.imm = static_cast<std::int32_t>(target >> 16);
        break;
    }
    w = encode(inst);
    std::memcpy(bytes_.data() + fixup.offset, &w, 4);
  }
  Program p;
  p.base = base_;
  p.entry = entry_;
  p.bytes = std::move(bytes_);
  p.symbols = std::move(symbols_);
  p.events = std::move(events_);
  return p;
}

Program replay_events(const Program& program) {
  Assembler a(program.base);
  std::map<std::uint32_t, Label> labels;
  const auto label_of = [&](std::uint32_t id) {
    auto [it, inserted] = labels.try_emplace(id);
    if (inserted) it->second = a.make_label();
    return it->second;
  };
  for (const BuildEvent& e : program.events) {
    switch (e.kind) {
      case BuildEvent::Kind::kInstr:
        a.emit(e.inst);
        break;
      case BuildEvent::Kind::kBranch:
        a.b(e.cond, label_of(e.label));
        break;
      case BuildEvent::Kind::kBranchLink:
        a.bl(label_of(e.label));
        break;
      case BuildEvent::Kind::kLoadLabel:
        a.load_label(static_cast<Reg>(e.reg), label_of(e.label));
        break;
      case BuildEvent::Kind::kBind:
        a.bind(label_of(e.label));
        break;
      case BuildEvent::Kind::kData:
        a.bytes(e.data);
        break;
      case BuildEvent::Kind::kAlign:
        a.align(e.value);
        break;
      case BuildEvent::Kind::kSymbol:
        a.symbol(e.name);
        break;
      case BuildEvent::Kind::kEntry:
        a.entry_here();
        break;
    }
  }
  return a.finish();
}

}  // namespace sefi::isa
