#include <sstream>

#include "sefi/isa/isa.hpp"

namespace sefi::isa {

namespace {

std::string reg(std::uint8_t r) {
  if (r == 13) return "sp";
  if (r == 14) return "lr";
  if (r == 15) return "ip";
  return "r" + std::to_string(r);
}

std::string hex(std::uint32_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

std::string disassemble(std::uint32_t word, std::uint32_t pc) {
  const auto decoded = decode(word);
  if (!decoded) return ".word " + hex(word) + "  ; undefined";
  const Instruction& i = *decoded;
  std::ostringstream os;
  switch (i.op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd:
    case Opcode::kOrr: case Opcode::kEor: case Opcode::kLsl:
    case Opcode::kLsr: case Opcode::kAsr: case Opcode::kMul:
    case Opcode::kSdiv: case Opcode::kUdiv:
    case Opcode::kFadd: case Opcode::kFsub: case Opcode::kFmul:
    case Opcode::kFdiv:
      os << opcode_name(i.op) << " " << reg(i.rd) << ", " << reg(i.rn)
         << ", " << reg(i.rm);
      break;
    case Opcode::kCmp:
    case Opcode::kFcmp:
      os << opcode_name(i.op) << " " << reg(i.rn) << ", " << reg(i.rm);
      break;
    case Opcode::kMov:
    case Opcode::kFcvtws: case Opcode::kFcvtsw: case Opcode::kFsqrt:
      os << opcode_name(i.op) << " " << reg(i.rd) << ", "
         << reg(i.op == Opcode::kMov ? i.rm : i.rn);
      break;
    case Opcode::kAddi: case Opcode::kSubi: case Opcode::kAndi:
    case Opcode::kOrri: case Opcode::kEori: case Opcode::kLsli:
    case Opcode::kLsri: case Opcode::kAsri:
      os << opcode_name(i.op) << " " << reg(i.rd) << ", " << reg(i.rn)
         << ", #" << i.imm;
      break;
    case Opcode::kCmpi:
      os << "cmpi " << reg(i.rn) << ", #" << i.imm;
      break;
    case Opcode::kMovi:
    case Opcode::kMovt:
      os << opcode_name(i.op) << " " << reg(i.rd) << ", #" << i.imm;
      break;
    case Opcode::kLdr: case Opcode::kLdrb: case Opcode::kLdrh:
      os << opcode_name(i.op) << " " << reg(i.rd) << ", [" << reg(i.rn)
         << ", #" << i.imm << "]";
      break;
    case Opcode::kStr: case Opcode::kStrb: case Opcode::kStrh:
      os << opcode_name(i.op) << " " << reg(i.rd) << ", [" << reg(i.rn)
         << ", #" << i.imm << "]";
      break;
    case Opcode::kLdrr:
      os << "ldrr " << reg(i.rd) << ", [" << reg(i.rn) << ", " << reg(i.rm)
         << "]";
      break;
    case Opcode::kStrr:
      os << "strr " << reg(i.rd) << ", [" << reg(i.rn) << ", " << reg(i.rm)
         << "]";
      break;
    case Opcode::kB:
      os << "b" << cond_name(i.cond) << " "
         << hex(pc + 4 + static_cast<std::uint32_t>(i.imm * 4));
      break;
    case Opcode::kBl:
      os << "bl " << hex(pc + 4 + static_cast<std::uint32_t>(i.imm * 4));
      break;
    case Opcode::kBr:
      os << "br " << reg(i.rn);
      break;
    case Opcode::kBlr:
      os << "blr " << reg(i.rn);
      break;
    case Opcode::kSvc:
      os << "svc #" << i.imm;
      break;
    case Opcode::kMrs: case Opcode::kMrsElr: case Opcode::kMrsSpsr:
    case Opcode::kMrsUsp:
      os << opcode_name(i.op) << " " << reg(i.rd);
      break;
    case Opcode::kMsr: case Opcode::kMsrElr: case Opcode::kMsrSpsr:
    case Opcode::kMsrUsp:
      os << opcode_name(i.op) << " " << reg(i.rn);
      break;
    case Opcode::kEret: case Opcode::kTlbFlush: case Opcode::kHlt:
    case Opcode::kNop:
      os << opcode_name(i.op);
      break;
    case Opcode::kOpcodeCount:
      break;
  }
  return os.str();
}

}  // namespace sefi::isa
