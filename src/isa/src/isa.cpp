#include "sefi/isa/isa.hpp"

#include <array>

#include "sefi/support/bits.hpp"
#include "sefi/support/error.hpp"

namespace sefi::isa {

namespace {

using support::extract_bits;
using support::insert_bits;
using support::require;
using support::sign_extend;

enum class Format { kR, kI, kU, kBc, kBl, kSys };

Format format_of(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOrr:
    case Opcode::kEor:
    case Opcode::kLsl:
    case Opcode::kLsr:
    case Opcode::kAsr:
    case Opcode::kMul:
    case Opcode::kSdiv:
    case Opcode::kUdiv:
    case Opcode::kCmp:
    case Opcode::kMov:
    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFmul:
    case Opcode::kFdiv:
    case Opcode::kFcmp:
    case Opcode::kFcvtws:
    case Opcode::kFcvtsw:
    case Opcode::kFsqrt:
    case Opcode::kLdrr:
    case Opcode::kStrr:
    case Opcode::kBr:
    case Opcode::kBlr:
    case Opcode::kEret:
    case Opcode::kMrs:
    case Opcode::kMsr:
    case Opcode::kMrsElr:
    case Opcode::kMsrElr:
    case Opcode::kMrsSpsr:
    case Opcode::kMsrSpsr:
    case Opcode::kMrsUsp:
    case Opcode::kMsrUsp:
    case Opcode::kTlbFlush:
    case Opcode::kHlt:
    case Opcode::kNop:
      return Format::kR;
    case Opcode::kAddi:
    case Opcode::kSubi:
    case Opcode::kAndi:
    case Opcode::kOrri:
    case Opcode::kEori:
    case Opcode::kLsli:
    case Opcode::kLsri:
    case Opcode::kAsri:
    case Opcode::kCmpi:
    case Opcode::kLdr:
    case Opcode::kStr:
    case Opcode::kLdrb:
    case Opcode::kStrb:
    case Opcode::kLdrh:
    case Opcode::kStrh:
      return Format::kI;
    case Opcode::kMovi:
    case Opcode::kMovt:
      return Format::kU;
    case Opcode::kB:
      return Format::kBc;
    case Opcode::kBl:
      return Format::kBl;
    case Opcode::kSvc:
      return Format::kSys;
    case Opcode::kOpcodeCount:
      break;
  }
  throw support::SefiError("format_of: invalid opcode");
}

bool imm_is_signed(Opcode op) {
  switch (op) {
    case Opcode::kAndi:
    case Opcode::kOrri:
    case Opcode::kEori:
    case Opcode::kLsli:
    case Opcode::kLsri:
    case Opcode::kAsri:
      return false;
    default:
      return true;
  }
}

}  // namespace

std::uint32_t encode(const Instruction& inst) {
  const auto opv = static_cast<std::uint32_t>(inst.op);
  require(opv < static_cast<std::uint32_t>(Opcode::kOpcodeCount),
          "encode: invalid opcode");
  std::uint32_t word = opv << 26;
  switch (format_of(inst.op)) {
    case Format::kR:
      require(inst.rd < kNumGprs && inst.rn < kNumGprs && inst.rm < kNumGprs,
              "encode: register out of range");
      word = insert_bits(word, 22, 4, inst.rd);
      word = insert_bits(word, 18, 4, inst.rn);
      word = insert_bits(word, 14, 4, inst.rm);
      break;
    case Format::kI: {
      require(inst.rd < kNumGprs && inst.rn < kNumGprs,
              "encode: register out of range");
      if (imm_is_signed(inst.op)) {
        require(inst.imm >= -(1 << 17) && inst.imm < (1 << 17),
                "encode: imm18 out of range");
      } else {
        require(inst.imm >= 0 && inst.imm < (1 << 18),
                "encode: uimm18 out of range");
      }
      word = insert_bits(word, 22, 4, inst.rd);
      word = insert_bits(word, 18, 4, inst.rn);
      word = insert_bits(word, 0, 18, static_cast<std::uint32_t>(inst.imm));
      break;
    }
    case Format::kU:
      require(inst.rd < kNumGprs, "encode: register out of range");
      require(inst.imm >= 0 && inst.imm <= 0xffff,
              "encode: imm16 out of range");
      word = insert_bits(word, 22, 4, inst.rd);
      word = insert_bits(word, 6, 16, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kBc:
      require(inst.imm >= -(1 << 21) && inst.imm < (1 << 21),
              "encode: branch offset out of range");
      word = insert_bits(word, 22, 4, static_cast<std::uint32_t>(inst.cond));
      word = insert_bits(word, 0, 22, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kBl:
      require(inst.imm >= -(1 << 25) && inst.imm < (1 << 25),
              "encode: bl offset out of range");
      word = insert_bits(word, 0, 26, static_cast<std::uint32_t>(inst.imm));
      break;
    case Format::kSys:
      require(inst.imm >= 0 && inst.imm <= 0xffff,
              "encode: svc imm16 out of range");
      word = insert_bits(word, 22, 4, inst.rd);
      word = insert_bits(word, 18, 4, inst.rn);
      word = insert_bits(word, 2, 16, static_cast<std::uint32_t>(inst.imm));
      break;
  }
  return word;
}

std::optional<Instruction> decode(std::uint32_t word) noexcept {
  const std::uint32_t opv = extract_bits(word, 26, 6);
  if (opv >= static_cast<std::uint32_t>(Opcode::kOpcodeCount)) {
    return std::nullopt;
  }
  Instruction inst;
  inst.op = static_cast<Opcode>(opv);
  switch (format_of(inst.op)) {
    case Format::kR:
      inst.rd = static_cast<std::uint8_t>(extract_bits(word, 22, 4));
      inst.rn = static_cast<std::uint8_t>(extract_bits(word, 18, 4));
      inst.rm = static_cast<std::uint8_t>(extract_bits(word, 14, 4));
      break;
    case Format::kI:
      inst.rd = static_cast<std::uint8_t>(extract_bits(word, 22, 4));
      inst.rn = static_cast<std::uint8_t>(extract_bits(word, 18, 4));
      inst.imm = imm_is_signed(inst.op)
                     ? sign_extend(extract_bits(word, 0, 18), 18)
                     : static_cast<std::int32_t>(extract_bits(word, 0, 18));
      break;
    case Format::kU:
      inst.rd = static_cast<std::uint8_t>(extract_bits(word, 22, 4));
      inst.imm = static_cast<std::int32_t>(extract_bits(word, 6, 16));
      break;
    case Format::kBc: {
      const std::uint32_t condv = extract_bits(word, 22, 4);
      if (condv > static_cast<std::uint32_t>(Cond::al)) return std::nullopt;
      inst.cond = static_cast<Cond>(condv);
      inst.imm = sign_extend(extract_bits(word, 0, 22), 22);
      break;
    }
    case Format::kBl:
      inst.imm = sign_extend(extract_bits(word, 0, 26), 26);
      break;
    case Format::kSys:
      inst.rd = static_cast<std::uint8_t>(extract_bits(word, 22, 4));
      inst.rn = static_cast<std::uint8_t>(extract_bits(word, 18, 4));
      inst.imm = static_cast<std::int32_t>(extract_bits(word, 2, 16));
      break;
  }
  return inst;
}

std::string opcode_name(Opcode op) {
  static constexpr std::array<const char*,
                              static_cast<std::size_t>(Opcode::kOpcodeCount)>
      kNames = {
          "add",  "sub",  "and",  "orr",  "eor",   "lsl",    "lsr",
          "asr",  "mul",  "sdiv", "udiv", "cmp",   "mov",    "fadd",
          "fsub", "fmul", "fdiv", "fcmp", "fcvtws", "fcvtsw", "fsqrt",
          "addi", "subi", "andi", "orri", "eori",  "lsli",   "lsri",
          "asri", "cmpi", "movi", "movt", "ldr",   "str",    "ldrb",
          "strb", "ldrh", "strh", "ldrr", "strr",  "b",      "bl",
          "br",   "blr",  "svc",  "eret", "mrs",   "msr",    "mrselr",
          "msrelr", "mrsspsr", "msrspsr", "mrsusp", "msrusp", "tlbflush",
          "hlt",  "nop",
      };
  const auto idx = static_cast<std::size_t>(op);
  support::require(idx < kNames.size(), "opcode_name: invalid opcode");
  return kNames[idx];
}

std::string cond_name(Cond cond) {
  static constexpr std::array<const char*, 15> kNames = {
      "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
      "hi", "ls", "ge", "lt", "gt", "le", "",
  };
  return kNames[static_cast<std::size_t>(cond)];
}

}  // namespace sefi::isa
