// Jpeg C / Jpeg D (MiBench consumer/jpeg): a miniature JPEG-style codec —
// level shift, 8x8 fixed-point 2D DCT, quantization, and zigzag scan for
// encode; the inverse chain for decode. CPU intensive. Like the paper's
// pair, decode is not a replay of encode: it runs the reverse steps over
// the encoder's output stream, so its control flow differs (the property
// behind the JpegC/JpegD Application-Crash asymmetry in §V-A).
//
// All arithmetic is integer (Q10 fixed-point cosine table, truncating
// divisions), so guest and host mirrors agree exactly.
#include "common.hpp"

#include <cmath>

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kW = 16;
constexpr std::uint32_t kH = 16;
constexpr std::uint32_t kBlocksX = kW / 8;
constexpr std::uint32_t kBlocks = (kW / 8) * (kH / 8);
constexpr std::int32_t kFixShift = 10;
constexpr std::int32_t kFixRound = 1 << (kFixShift - 1);

/// Q10 DCT-II basis: T[u][x] = round(alpha(u)/2 * cos((2x+1)u*pi/16) * 1024).
const std::vector<std::int32_t>& dct_table() {
  static const auto table = [] {
    std::vector<std::int32_t> t(64);
    for (int u = 0; u < 8; ++u) {
      const double alpha = u == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
      for (int x = 0; x < 8; ++x) {
        const double v =
            alpha / 2.0 * std::cos((2 * x + 1) * u * 3.14159265358979323846 / 16.0);
        t[u * 8 + x] = static_cast<std::int32_t>(std::lround(v * 1024.0));
      }
    }
    return t;
  }();
  return table;
}

/// Synthetic quality table (both sides use it; real JPEG ships its own).
const std::vector<std::int32_t>& quant_table() {
  static const auto table = [] {
    std::vector<std::int32_t> q(64);
    for (int u = 0; u < 8; ++u) {
      for (int v = 0; v < 8; ++v) q[u * 8 + v] = 8 + 4 * (u + v);
    }
    return q;
  }();
  return table;
}

/// Standard zigzag order (diagonal walk).
const std::vector<std::uint8_t>& zigzag_order() {
  static const auto order = [] {
    std::vector<std::uint8_t> zig(64);
    int index = 0;
    for (int s = 0; s < 15; ++s) {
      if (s % 2 == 0) {
        for (int y = std::min(s, 7); y >= std::max(0, s - 7); --y) {
          zig[index++] = static_cast<std::uint8_t>(y * 8 + (s - y));
        }
      } else {
        for (int x = std::min(s, 7); x >= std::max(0, s - 7); --x) {
          zig[index++] = static_cast<std::uint8_t>((s - x) * 8 + x);
        }
      }
    }
    return zig;
  }();
  return order;
}

std::vector<std::uint8_t> make_image(std::uint64_t seed) {
  // Smooth-ish image: base gradient + noise, so the DCT output has
  // realistic energy compaction.
  support::Xoshiro256 rng(seed ^ 0x19E6);
  std::vector<std::uint8_t> img(kW * kH);
  for (std::uint32_t y = 0; y < kH; ++y) {
    for (std::uint32_t x = 0; x < kW; ++x) {
      const std::uint32_t base = 8 * x + 5 * y;
      const std::uint32_t noise = static_cast<std::uint32_t>(rng.below(32));
      img[y * kW + x] = static_cast<std::uint8_t>((base + noise) & 0xff);
    }
  }
  return img;
}

// --- host mirror -----------------------------------------------------------

std::vector<std::int16_t> host_encode(std::uint64_t seed) {
  const auto img = make_image(seed);
  const auto& t = dct_table();
  const auto& q = quant_table();
  const auto& zig = zigzag_order();
  std::vector<std::int16_t> stream(kBlocks * 64);
  for (std::uint32_t b = 0; b < kBlocks; ++b) {
    const std::uint32_t bx = b % kBlocksX;
    const std::uint32_t by = b / kBlocksX;
    std::int32_t s[64], tmp[64], out[64];
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        s[y * 8 + x] =
            static_cast<std::int32_t>(img[(by * 8 + y) * kW + bx * 8 + x]) -
            128;
      }
    }
    for (int y = 0; y < 8; ++y) {
      for (int u = 0; u < 8; ++u) {
        std::int32_t acc = 0;
        for (int x = 0; x < 8; ++x) acc += s[y * 8 + x] * t[u * 8 + x];
        tmp[y * 8 + u] = (acc + kFixRound) >> kFixShift;
      }
    }
    for (int u = 0; u < 8; ++u) {
      for (int v = 0; v < 8; ++v) {
        std::int32_t acc = 0;
        for (int y = 0; y < 8; ++y) acc += tmp[y * 8 + u] * t[v * 8 + y];
        out[v * 8 + u] = (acc + kFixRound) >> kFixShift;
      }
    }
    for (int i = 0; i < 64; ++i) {
      const std::int32_t quantized = out[zig[i]] / q[zig[i]];
      stream[b * 64 + i] = static_cast<std::int16_t>(quantized);
    }
  }
  return stream;
}

std::vector<std::uint8_t> host_decode(std::uint64_t seed) {
  const auto stream = host_encode(seed);
  const auto& t = dct_table();
  const auto& q = quant_table();
  const auto& zig = zigzag_order();
  std::vector<std::uint8_t> img(kW * kH);
  for (std::uint32_t b = 0; b < kBlocks; ++b) {
    const std::uint32_t bx = b % kBlocksX;
    const std::uint32_t by = b / kBlocksX;
    std::int32_t coef[64], tmp[64];
    for (int i = 0; i < 64; ++i) {
      coef[zig[i]] = static_cast<std::int32_t>(stream[b * 64 + i]) * q[zig[i]];
    }
    // Inverse of the column pass: tmp[y*8+u] = sum_v coef[v*8+u]*T[v][y].
    for (int u = 0; u < 8; ++u) {
      for (int y = 0; y < 8; ++y) {
        std::int32_t acc = 0;
        for (int v = 0; v < 8; ++v) acc += coef[v * 8 + u] * t[v * 8 + y];
        tmp[y * 8 + u] = (acc + kFixRound) >> kFixShift;
      }
    }
    // Inverse of the row pass + level shift + clamp.
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        std::int32_t acc = 0;
        for (int u = 0; u < 8; ++u) acc += tmp[y * 8 + u] * t[u * 8 + x];
        std::int32_t pixel = ((acc + kFixRound) >> kFixShift) + 128;
        if (pixel < 0) pixel = 0;
        if (pixel > 255) pixel = 255;
        img[(by * 8 + y) * kW + bx * 8 + x] = static_cast<std::uint8_t>(pixel);
      }
    }
  }
  return img;
}

std::vector<std::uint8_t> stream_to_bytes(
    const std::vector<std::int16_t>& stream) {
  std::vector<std::uint8_t> out;
  out.reserve(stream.size() * 2);
  for (const std::int16_t v : stream) {
    const auto u = static_cast<std::uint16_t>(v);
    out.push_back(static_cast<std::uint8_t>(u));
    out.push_back(static_cast<std::uint8_t>(u >> 8));
  }
  return out;
}

// --- guest emitters ---------------------------------------------------------

/// Emits `dst = (acc + kFixRound) >> kFixShift` on register acc.
void emit_fix_round(Assembler& a, Reg acc) {
  a.addi(acc, acc, kFixRound);
  a.asri(acc, acc, kFixShift);
}

/// Shared 8x8 MAC pass: for outer o in [0,8), inner i in [0,8):
///   dst[f_dst(o,i)] = fix(sum_k src[f_src(o,k)] * tab[f_tab(i,k)])
/// All index functions return *byte* offsets into int32 arrays.
/// Register use: r5 src base, r6 dst base, r7 tab base (preloaded by
/// caller); o in r8, i in r9, k in r10, acc r11, temps r0/r1/lr.
template <typename FSrc, typename FTab, typename FDst>
void emit_mac_pass(Assembler& a, FSrc f_src, FTab f_tab, FDst f_dst) {
  a.movi(Reg::r8, 0);
  Label oloop = a.make_label();
  a.bind(oloop);
  a.movi(Reg::r9, 0);
  Label iloop = a.make_label();
  a.bind(iloop);
  a.movi(Reg::r11, 0);
  a.movi(Reg::r10, 0);
  Label kloop = a.make_label();
  a.bind(kloop);
  f_src(a, Reg::r0, Reg::r8, Reg::r10);  // r0 = byte offset into src
  a.ldrr(Reg::r0, Reg::r5, Reg::r0);
  f_tab(a, Reg::r1, Reg::r9, Reg::r10);  // r1 = byte offset into tab
  a.ldrr(Reg::r1, Reg::r7, Reg::r1);
  a.mul(Reg::r0, Reg::r0, Reg::r1);
  a.add(Reg::r11, Reg::r11, Reg::r0);
  a.addi(Reg::r10, Reg::r10, 1);
  a.cmpi(Reg::r10, 8);
  a.b(Cond::lt, kloop);
  emit_fix_round(a, Reg::r11);
  f_dst(a, Reg::r0, Reg::r8, Reg::r9);  // r0 = byte offset into dst
  a.strr(Reg::r11, Reg::r6, Reg::r0);
  a.addi(Reg::r9, Reg::r9, 1);
  a.cmpi(Reg::r9, 8);
  a.b(Cond::lt, iloop);
  a.addi(Reg::r8, Reg::r8, 1);
  a.cmpi(Reg::r8, 8);
  a.b(Cond::lt, oloop);
}

/// offset = (a8*8 + b) * 4 where a8 = first index, b = second.
void emit_idx(Assembler& a, Reg dst, Reg first, Reg second) {
  a.lsli(dst, first, 3);
  a.add(dst, dst, second);
  a.lsli(dst, dst, 2);
}

/// offset = (b*8 + a8) * 4 (transposed).
void emit_idx_t(Assembler& a, Reg dst, Reg first, Reg second) {
  a.lsli(dst, second, 3);
  a.add(dst, dst, first);
  a.lsli(dst, dst, 2);
}

isa::Program build_jpeg_program(std::uint64_t seed, bool decode) {
  Assembler a(sim::kUserBase);
  Label report = a.make_label();
  Label img = a.make_label();       // encode input / decode output
  Label stream = a.make_label();    // encode output / decode input
  Label tab = a.make_label();
  Label quant = a.make_label();
  Label zig = a.make_label();
  Label sblk = a.make_label();      // int32[64] scratch
  Label tblk = a.make_label();      // int32[64] scratch

  // Block loop: ip = block index.
  a.movi(Reg::ip, 0);
  Label block_loop = a.make_label();
  a.bind(block_loop);
  // r12 = pixel base byte offset of this block: (by*8*W + bx*8)
  a.movi(Reg::r0, kBlocksX);
  a.udiv(Reg::r1, Reg::ip, Reg::r0);  // by
  a.mul(Reg::r2, Reg::r1, Reg::r0);
  a.sub(Reg::r2, Reg::ip, Reg::r2);   // bx
  a.movi(Reg::r3, 8 * kW);
  a.mul(Reg::r12, Reg::r1, Reg::r3);
  a.lsli(Reg::r2, Reg::r2, 3);
  a.add(Reg::r12, Reg::r12, Reg::r2);

  if (!decode) {
    // --- stage A: load pixels, level shift into sblk ------------------
    a.load_label(Reg::r2, img);
    a.load_label(Reg::r5, sblk);
    a.movi(Reg::r6, 0);  // y
    {
      Label yloop = a.make_label();
      a.bind(yloop);
      a.movi(Reg::r7, 0);  // x
      Label xloop = a.make_label();
      a.bind(xloop);
      a.movi(Reg::r0, kW);
      a.mul(Reg::r0, Reg::r6, Reg::r0);
      a.add(Reg::r0, Reg::r0, Reg::r7);
      a.add(Reg::r0, Reg::r0, Reg::r12);
      a.add(Reg::r0, Reg::r0, Reg::r2);
      a.ldrb(Reg::r1, Reg::r0, 0);
      a.subi(Reg::r1, Reg::r1, 128);
      a.lsli(Reg::r0, Reg::r6, 3);
      a.add(Reg::r0, Reg::r0, Reg::r7);
      a.lsli(Reg::r0, Reg::r0, 2);
      a.strr(Reg::r1, Reg::r5, Reg::r0);
      a.addi(Reg::r7, Reg::r7, 1);
      a.cmpi(Reg::r7, 8);
      a.b(Cond::lt, xloop);
      a.addi(Reg::r6, Reg::r6, 1);
      a.cmpi(Reg::r6, 8);
      a.b(Cond::lt, yloop);
    }
    // --- stage B: row DCT: tblk[y*8+u] = fix(sum_x sblk[y*8+x]*T[u*8+x])
    a.load_label(Reg::r5, sblk);
    a.load_label(Reg::r6, tblk);
    a.load_label(Reg::r7, tab);
    emit_mac_pass(a, emit_idx, emit_idx, emit_idx);
    // --- stage C: col DCT: sblk[v*8+u] = fix(sum_y tblk[y*8+u]*T[v*8+y])
    // outer o = u, inner i = v, k = y:
    //   src offset = (k*8 + o)*4, tab offset = (i*8 + k)*4,
    //   dst offset = (i*8 + o)*4
    a.load_label(Reg::r5, tblk);
    a.load_label(Reg::r6, sblk);
    emit_mac_pass(a, emit_idx_t, emit_idx, emit_idx_t);
    // --- stage D: quantize + zigzag into the int16 stream --------------
    a.load_label(Reg::r5, sblk);
    a.load_label(Reg::r6, quant);
    a.load_label(Reg::r7, zig);
    a.load_label(Reg::r2, stream);
    a.lsli(Reg::r0, Reg::ip, 7);  // block * 64 coeffs * 2 bytes
    a.add(Reg::r2, Reg::r2, Reg::r0);
    a.movi(Reg::r8, 0);  // i
    {
      Label qloop = a.make_label();
      a.bind(qloop);
      a.add(Reg::r0, Reg::r7, Reg::r8);
      a.ldrb(Reg::r9, Reg::r0, 0);   // z = zig[i]
      a.lsli(Reg::r9, Reg::r9, 2);
      a.ldrr(Reg::r0, Reg::r5, Reg::r9);  // coef
      a.ldrr(Reg::r1, Reg::r6, Reg::r9);  // q
      a.sdiv(Reg::r0, Reg::r0, Reg::r1);
      a.lsli(Reg::r1, Reg::r8, 1);
      a.add(Reg::r1, Reg::r2, Reg::r1);
      a.strh(Reg::r0, Reg::r1, 0);
      a.addi(Reg::r8, Reg::r8, 1);
      a.cmpi(Reg::r8, 64);
      a.b(Cond::lt, qloop);
    }
  } else {
    // --- stage A': dezigzag + dequantize into sblk ---------------------
    a.load_label(Reg::r5, sblk);
    a.load_label(Reg::r6, quant);
    a.load_label(Reg::r7, zig);
    a.load_label(Reg::r2, stream);
    a.lsli(Reg::r0, Reg::ip, 7);
    a.add(Reg::r2, Reg::r2, Reg::r0);
    a.movi(Reg::r8, 0);
    {
      Label dloop = a.make_label();
      a.bind(dloop);
      a.lsli(Reg::r0, Reg::r8, 1);
      a.add(Reg::r0, Reg::r2, Reg::r0);
      a.ldrh(Reg::r1, Reg::r0, 0);
      a.lsli(Reg::r1, Reg::r1, 16);   // sign-extend the int16
      a.asri(Reg::r1, Reg::r1, 16);
      a.add(Reg::r0, Reg::r7, Reg::r8);
      a.ldrb(Reg::r9, Reg::r0, 0);    // z = zig[i]
      a.lsli(Reg::r9, Reg::r9, 2);
      a.ldrr(Reg::r0, Reg::r6, Reg::r9);
      a.mul(Reg::r1, Reg::r1, Reg::r0);
      a.strr(Reg::r1, Reg::r5, Reg::r9);
      a.addi(Reg::r8, Reg::r8, 1);
      a.cmpi(Reg::r8, 64);
      a.b(Cond::lt, dloop);
    }
    // --- stage B': inverse column pass:
    // tblk[y*8+u] = fix(sum_v sblk[v*8+u] * T[v*8+y])
    // outer o = u, inner i = y, k = v:
    //   src = (k*8+o)*4, tab = (k*8+i)*4, dst = (i*8+o)*4
    a.load_label(Reg::r5, sblk);
    a.load_label(Reg::r6, tblk);
    a.load_label(Reg::r7, tab);
    emit_mac_pass(a, emit_idx_t,
                  [](Assembler& aa, Reg dst, Reg i, Reg k) {
                    emit_idx_t(aa, dst, i, k);
                  },
                  emit_idx_t);
    // --- stage C': inverse row pass + shift + clamp + store -------------
    // pixel(y, x) = clamp(fix(sum_u tblk[y*8+u] * T[u*8+x]) + 128)
    a.load_label(Reg::r5, tblk);
    a.load_label(Reg::r7, tab);
    a.load_label(Reg::r2, img);
    a.movi(Reg::r6, 0);  // y
    {
      Label yloop = a.make_label();
      a.bind(yloop);
      a.movi(Reg::r8, 0);  // x
      Label xloop = a.make_label();
      a.bind(xloop);
      a.movi(Reg::r11, 0);
      a.movi(Reg::r10, 0);  // u
      Label uloop = a.make_label();
      a.bind(uloop);
      a.lsli(Reg::r0, Reg::r6, 3);
      a.add(Reg::r0, Reg::r0, Reg::r10);
      a.lsli(Reg::r0, Reg::r0, 2);
      a.ldrr(Reg::r0, Reg::r5, Reg::r0);
      a.lsli(Reg::r1, Reg::r10, 3);
      a.add(Reg::r1, Reg::r1, Reg::r8);
      a.lsli(Reg::r1, Reg::r1, 2);
      a.ldrr(Reg::r1, Reg::r7, Reg::r1);
      a.mul(Reg::r0, Reg::r0, Reg::r1);
      a.add(Reg::r11, Reg::r11, Reg::r0);
      a.addi(Reg::r10, Reg::r10, 1);
      a.cmpi(Reg::r10, 8);
      a.b(Cond::lt, uloop);
      emit_fix_round(a, Reg::r11);
      a.addi(Reg::r11, Reg::r11, 128);
      // clamp to [0, 255]
      {
        Label not_low = a.make_label();
        Label done = a.make_label();
        a.cmpi(Reg::r11, 0);
        a.b(Cond::ge, not_low);
        a.movi(Reg::r11, 0);
        a.b(done);
        a.bind(not_low);
        a.cmpi(Reg::r11, 255);
        a.b(Cond::le, done);
        a.movi(Reg::r11, 255);
        a.bind(done);
      }
      a.movi(Reg::r0, kW);
      a.mul(Reg::r0, Reg::r6, Reg::r0);
      a.add(Reg::r0, Reg::r0, Reg::r8);
      a.add(Reg::r0, Reg::r0, Reg::r12);
      a.add(Reg::r0, Reg::r0, Reg::r2);
      a.strb(Reg::r11, Reg::r0, 0);
      a.addi(Reg::r8, Reg::r8, 1);
      a.cmpi(Reg::r8, 8);
      a.b(Cond::lt, xloop);
      a.addi(Reg::r6, Reg::r6, 1);
      a.cmpi(Reg::r6, 8);
      a.b(Cond::lt, yloop);
    }
  }

  a.addi(Reg::ip, Reg::ip, 1);
  a.cmpi(Reg::ip, kBlocks);
  a.b(Cond::lt, block_loop);

  if (!decode) {
    a.load_label(Reg::r0, stream);
    a.mov_imm32(Reg::r1, kBlocks * 64 * 2);
  } else {
    a.load_label(Reg::r0, img);
    a.mov_imm32(Reg::r1, kW * kH);
  }
  a.b(report);

  emit_report_routine(a, report);

  // --- data ------------------------------------------------------------
  a.align(4);
  a.bind(tab);
  {
    std::vector<std::uint32_t> words;
    for (const std::int32_t v : dct_table()) {
      words.push_back(static_cast<std::uint32_t>(v));
    }
    a.bytes(words_to_bytes(words));
  }
  a.bind(quant);
  {
    std::vector<std::uint32_t> words;
    for (const std::int32_t v : quant_table()) {
      words.push_back(static_cast<std::uint32_t>(v));
    }
    a.bytes(words_to_bytes(words));
  }
  a.bind(zig);
  a.bytes(zigzag_order());
  a.align(4);
  a.bind(img);
  if (!decode) {
    a.bytes(make_image(seed));
  } else {
    a.zero(kW * kH);
  }
  a.align(4);
  a.bind(stream);
  if (!decode) {
    a.zero(kBlocks * 64 * 2);
  } else {
    a.bytes(stream_to_bytes(host_encode(seed)));
  }
  a.align(4);
  a.bind(sblk);
  a.zero(64 * 4);
  a.bind(tblk);
  a.zero(64 * 4);
  return a.finish();
}

class JpegCWorkload final : public BasicWorkload {
 public:
  JpegCWorkload()
      : BasicWorkload({
            "JpegC",
            "16x16 grayscale image, DCT encode",
            "CPU intensive",
            "512x512 PPM image with size of 786.5 KB",
        }) {}
  isa::Program build(std::uint64_t seed) const override {
    return build_jpeg_program(seed, /*decode=*/false);
  }
  std::string expected_console(std::uint64_t seed) const override {
    return report_string(stream_to_bytes(host_encode(seed)));
  }
};

class JpegDWorkload final : public BasicWorkload {
 public:
  JpegDWorkload()
      : BasicWorkload({
            "JpegD",
            "16x16 coefficient stream, DCT decode",
            "CPU intensive",
            "512x512 PPM image with size of 786.5 KB",
        }) {}
  isa::Program build(std::uint64_t seed) const override {
    return build_jpeg_program(seed, /*decode=*/true);
  }
  std::string expected_console(std::uint64_t seed) const override {
    return report_string(host_decode(seed));
  }
};

}  // namespace

const Workload& jpeg_c_workload() {
  static const JpegCWorkload instance;
  return instance;
}

const Workload& jpeg_d_workload() {
  static const JpegDWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
