// Qsort (MiBench auto/qsort): recursive quicksort (Lomuto partition) over
// an unsigned integer array. Memory intensive and control intensive with
// heavy stack use — the paper's highest Application-Crash benchmark.
#include "common.hpp"

#include <algorithm>

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kCount = 320;

std::vector<std::uint32_t> make_input(std::uint64_t seed) {
  return random_words(seed ^ 0x9507, kCount, 1'000'000'000u);
}

class QsortWorkload final : public BasicWorkload {
 public:
  QsortWorkload()
      : BasicWorkload({
            "Qsort",
            "array of 320 unsigned integers",
            "Memory intensive and Control intensive",
            "a list of 50K doubles",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label qsort_fn = a.make_label();
    Label arr = a.make_label();

    // main: r9 = array base (preserved by the recursive function).
    a.load_label(Reg::r9, arr);
    a.movi(Reg::r0, 0);
    a.movi(Reg::r1, kCount - 1);
    a.bl(qsort_fn);
    a.load_label(Reg::r0, arr);
    a.mov_imm32(Reg::r1, kCount * 4);
    a.b(report);

    // qsort(lo = r0, hi = r1) — signed indices; r9 = array base.
    a.bind(qsort_fn);
    {
      Label done = a.make_label();
      a.cmp(Reg::r0, Reg::r1);
      a.b(Cond::ge, done);
      a.push({Reg::r4, Reg::r5, Reg::r6, Reg::lr});
      a.mov(Reg::r4, Reg::r0);  // lo
      a.mov(Reg::r5, Reg::r1);  // hi

      // Lomuto partition with pivot arr[hi].
      a.lsli(Reg::r2, Reg::r5, 2);
      a.ldrr(Reg::r6, Reg::r9, Reg::r2);  // pivot
      a.subi(Reg::r7, Reg::r4, 1);        // i = lo-1
      a.mov(Reg::r8, Reg::r4);            // j
      Label ploop = a.make_label();
      Label pnext = a.make_label();
      Label pdone = a.make_label();
      a.bind(ploop);
      a.cmp(Reg::r8, Reg::r5);
      a.b(Cond::ge, pdone);
      a.lsli(Reg::r2, Reg::r8, 2);
      a.ldrr(Reg::r3, Reg::r9, Reg::r2);
      a.cmp(Reg::r3, Reg::r6);
      a.b(Cond::hi, pnext);  // arr[j] > pivot (unsigned)
      a.addi(Reg::r7, Reg::r7, 1);
      a.lsli(Reg::r1, Reg::r7, 2);
      a.ldrr(Reg::r0, Reg::r9, Reg::r1);
      a.strr(Reg::r3, Reg::r9, Reg::r1);
      a.strr(Reg::r0, Reg::r9, Reg::r2);
      a.bind(pnext);
      a.addi(Reg::r8, Reg::r8, 1);
      a.b(ploop);
      a.bind(pdone);
      a.addi(Reg::r7, Reg::r7, 1);  // p
      a.lsli(Reg::r1, Reg::r7, 2);
      a.ldrr(Reg::r0, Reg::r9, Reg::r1);
      a.lsli(Reg::r2, Reg::r5, 2);
      a.ldrr(Reg::r3, Reg::r9, Reg::r2);
      a.strr(Reg::r3, Reg::r9, Reg::r1);
      a.strr(Reg::r0, Reg::r9, Reg::r2);
      a.mov(Reg::r6, Reg::r7);  // p survives the first recursive call

      a.mov(Reg::r0, Reg::r4);
      a.subi(Reg::r1, Reg::r6, 1);
      a.bl(qsort_fn);
      a.addi(Reg::r0, Reg::r6, 1);
      a.mov(Reg::r1, Reg::r5);
      a.bl(qsort_fn);

      a.pop({Reg::r4, Reg::r5, Reg::r6, Reg::lr});
      a.bind(done);
      a.ret();
    }

    emit_report_routine(a, report);

    a.align(4);
    a.bind(arr);
    a.bytes(words_to_bytes(make_input(seed)));
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    auto values = make_input(seed);
    std::sort(values.begin(), values.end());
    return report_string(words_to_bytes(values));
  }
};

}  // namespace

const Workload& qsort_workload() {
  static const QsortWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
