// SHA (MiBench security/sha, extended suite): SHA-1 over a 1 KB message.
// CPU intensive with long dependent chains through the rotate/xor
// schedule — a different register-pressure profile than AES.
//
// The host pre-pads the message and serializes each 64-byte block as the
// sixteen big-endian-interpreted schedule words, so the guest kernel is
// pure compression (the byte-swapping belongs to I/O, not the algorithm).
#include "common.hpp"

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kMessageBytes = 1024;
// Padded length: message + 0x80 + zeros to 56 mod 64 + 8 length bytes.
constexpr std::uint32_t kBlocks = (kMessageBytes + 8) / 64 + 1;  // 17

std::vector<std::uint8_t> make_message(std::uint64_t seed) {
  return random_bytes(seed ^ 0x5AA1, kMessageBytes);
}

/// SHA-1 padded message -> per-block schedule words w[0..15].
std::vector<std::uint32_t> make_schedule_words(std::uint64_t seed) {
  std::vector<std::uint8_t> padded = make_message(seed);
  padded.push_back(0x80);
  while (padded.size() % 64 != 56) padded.push_back(0);
  const std::uint64_t bit_length = static_cast<std::uint64_t>(kMessageBytes) * 8;
  for (int i = 7; i >= 0; --i) {
    padded.push_back(static_cast<std::uint8_t>(bit_length >> (8 * i)));
  }
  std::vector<std::uint32_t> words;
  words.reserve(padded.size() / 4);
  for (std::size_t i = 0; i < padded.size(); i += 4) {
    words.push_back((static_cast<std::uint32_t>(padded[i]) << 24) |
                    (static_cast<std::uint32_t>(padded[i + 1]) << 16) |
                    (static_cast<std::uint32_t>(padded[i + 2]) << 8) |
                    static_cast<std::uint32_t>(padded[i + 3]));
  }
  return words;
}

std::uint32_t rotl(std::uint32_t v, int n) {
  return (v << n) | (v >> (32 - n));
}

std::array<std::uint32_t, 5> host_sha1(std::uint64_t seed) {
  const auto words = make_schedule_words(seed);
  std::array<std::uint32_t, 5> h = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                    0x10325476u, 0xC3D2E1F0u};
  for (std::size_t block = 0; block < words.size() / 16; ++block) {
    std::uint32_t w[80];
    for (int t = 0; t < 16; ++t) w[t] = words[block * 16 + t];
    for (int t = 16; t < 80; ++t) {
      w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int t = 0; t < 80; ++t) {
      std::uint32_t f, k;
      if (t < 20) {
        f = d ^ (b & (c ^ d));
        k = 0x5A827999u;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (t < 60) {
        f = (b & c) | (d & (b | c));
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const std::uint32_t temp = rotl(a, 5) + f + e + k + w[t];
      e = d;
      d = c;
      c = rotl(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
  return h;
}

class ShaWorkload final : public BasicWorkload {
 public:
  ShaWorkload()
      : BasicWorkload({
            "SHA",
            "1 KB message, SHA-1",
            "CPU intensive (extended suite)",
            "MiBench security/sha input file",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label msg = a.make_label();     // schedule words, 16 per block
    Label wbuf = a.make_label();    // w[80] scratch
    Label state = a.make_label();   // h[5]
    Label out = a.make_label();     // 20-byte digest

    // rotl helper via temps: value in r0, amount fixed at emit time.
    auto emit_rotl = [&a](Reg dst, Reg src, int n, Reg tmp) {
      a.lsli(tmp, src, n);
      a.lsri(dst, src, 32 - n);
      a.orr(dst, dst, tmp);
    };

    // Initialize state.
    a.load_label(Reg::r1, state);
    a.mov_imm32(Reg::r0, 0x67452301u);
    a.str(Reg::r0, Reg::r1, 0);
    a.mov_imm32(Reg::r0, 0xEFCDAB89u);
    a.str(Reg::r0, Reg::r1, 4);
    a.mov_imm32(Reg::r0, 0x98BADCFEu);
    a.str(Reg::r0, Reg::r1, 8);
    a.mov_imm32(Reg::r0, 0x10325476u);
    a.str(Reg::r0, Reg::r1, 12);
    a.mov_imm32(Reg::r0, 0xC3D2E1F0u);
    a.str(Reg::r0, Reg::r1, 16);

    a.movi(Reg::ip, 0);  // block index
    Label block_loop = a.make_label();
    a.bind(block_loop);

    // Copy the block's 16 words into w[0..15].
    a.load_label(Reg::r2, wbuf);
    a.load_label(Reg::r0, msg);
    a.lsli(Reg::r1, Reg::ip, 6);  // block * 16 words * 4 bytes
    a.add(Reg::r0, Reg::r0, Reg::r1);
    for (int t = 0; t < 16; ++t) {
      a.ldr(Reg::r1, Reg::r0, t * 4);
      a.str(Reg::r1, Reg::r2, t * 4);
    }
    // Expand w[16..79].
    a.movi(Reg::r9, 16);
    {
      Label expand = a.make_label();
      a.bind(expand);
      a.lsli(Reg::r10, Reg::r9, 2);
      a.add(Reg::r10, Reg::r2, Reg::r10);  // &w[t]
      a.ldr(Reg::r0, Reg::r10, -3 * 4);
      a.ldr(Reg::r1, Reg::r10, -8 * 4);
      a.eor(Reg::r0, Reg::r0, Reg::r1);
      a.ldr(Reg::r1, Reg::r10, -14 * 4);
      a.eor(Reg::r0, Reg::r0, Reg::r1);
      a.ldr(Reg::r1, Reg::r10, -16 * 4);
      a.eor(Reg::r0, Reg::r0, Reg::r1);
      emit_rotl(Reg::r0, Reg::r0, 1, Reg::r1);
      a.str(Reg::r0, Reg::r10, 0);
      a.addi(Reg::r9, Reg::r9, 1);
      a.cmpi(Reg::r9, 80);
      a.b(Cond::lt, expand);
    }

    // Load working variables a..e into r4..r8.
    a.load_label(Reg::r1, state);
    a.ldr(Reg::r4, Reg::r1, 0);
    a.ldr(Reg::r5, Reg::r1, 4);
    a.ldr(Reg::r6, Reg::r1, 8);
    a.ldr(Reg::r7, Reg::r1, 12);
    a.ldr(Reg::r8, Reg::r1, 16);

    // Four phase loops with fixed (f, k).
    struct Phase {
      int lo, hi;
      std::uint32_t k;
      int kind;  // 0: choose, 1: parity, 2: majority, 3: parity
    };
    const Phase phases[] = {{0, 20, 0x5A827999u, 0},
                            {20, 40, 0x6ED9EBA1u, 1},
                            {40, 60, 0x8F1BBCDCu, 2},
                            {60, 80, 0xCA62C1D6u, 1}};
    for (const Phase& phase : phases) {
      a.movi(Reg::r9, phase.lo);
      a.mov_imm32(Reg::r12, phase.k);
      Label round = a.make_label();
      a.bind(round);
      // f -> r0
      if (phase.kind == 0) {
        a.eor(Reg::r0, Reg::r6, Reg::r7);  // c ^ d
        a.and_(Reg::r0, Reg::r0, Reg::r5);
        a.eor(Reg::r0, Reg::r0, Reg::r7);  // d ^ (b & (c^d))
      } else if (phase.kind == 2) {
        a.and_(Reg::r0, Reg::r5, Reg::r6);  // b & c
        a.orr(Reg::r1, Reg::r5, Reg::r6);   // b | c
        a.and_(Reg::r1, Reg::r1, Reg::r7);  // d & (b|c)
        a.orr(Reg::r0, Reg::r0, Reg::r1);
      } else {
        a.eor(Reg::r0, Reg::r5, Reg::r6);
        a.eor(Reg::r0, Reg::r0, Reg::r7);  // b ^ c ^ d
      }
      // temp = rotl(a,5) + f + e + k + w[t] -> r0
      emit_rotl(Reg::r1, Reg::r4, 5, Reg::r3);
      a.add(Reg::r0, Reg::r0, Reg::r1);
      a.add(Reg::r0, Reg::r0, Reg::r8);
      a.add(Reg::r0, Reg::r0, Reg::r12);
      a.lsli(Reg::r1, Reg::r9, 2);
      a.ldrr(Reg::r1, Reg::r2, Reg::r1);  // w[t]
      a.add(Reg::r0, Reg::r0, Reg::r1);
      // rotate the variables
      a.mov(Reg::r8, Reg::r7);              // e = d
      a.mov(Reg::r7, Reg::r6);              // d = c
      emit_rotl(Reg::r6, Reg::r5, 30, Reg::r1);  // c = rotl(b,30)
      a.mov(Reg::r5, Reg::r4);              // b = a
      a.mov(Reg::r4, Reg::r0);              // a = temp
      a.addi(Reg::r9, Reg::r9, 1);
      a.cmpi(Reg::r9, phase.hi);
      a.b(Cond::lt, round);
    }

    // h[i] += a..e
    a.load_label(Reg::r1, state);
    const Reg vars[] = {Reg::r4, Reg::r5, Reg::r6, Reg::r7, Reg::r8};
    for (int i = 0; i < 5; ++i) {
      a.ldr(Reg::r0, Reg::r1, i * 4);
      a.add(Reg::r0, Reg::r0, vars[i]);
      a.str(Reg::r0, Reg::r1, i * 4);
    }

    a.addi(Reg::ip, Reg::ip, 1);
    a.cmpi(Reg::ip, kBlocks);
    a.b(Cond::lt, block_loop);

    // Copy the digest to the output buffer and report.
    a.load_label(Reg::r1, state);
    a.load_label(Reg::r0, out);
    for (int i = 0; i < 5; ++i) {
      a.ldr(Reg::r3, Reg::r1, i * 4);
      a.str(Reg::r3, Reg::r0, i * 4);
    }
    a.movi(Reg::r1, 20);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(msg);
    a.bytes(words_to_bytes(make_schedule_words(seed)));
    a.bind(wbuf);
    a.zero(80 * 4);
    a.bind(state);
    a.zero(5 * 4);
    a.bind(out);
    a.zero(20);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    const auto digest = host_sha1(seed);
    std::vector<std::uint32_t> words(digest.begin(), digest.end());
    return report_string(words_to_bytes(words));
  }
};

}  // namespace

const Workload& sha_workload() {
  static const ShaWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
