// L1 pattern micro-benchmark (paper §VI): fills a buffer resident in the
// L1 data cache with a known pattern, then repeatedly
// verifies it word by word, reporting the mismatch count. Under the
// simulated beam, strikes that land in the resident L1 data bits flip the
// pattern and surface as output mismatches; the event rate divided by
// fluence and by the tested bit count yields FIT_raw per bit, exactly the
// calibration the paper performs on the Zynq.
#include "common.hpp"

namespace sefi::workloads::detail {

// Half the campaign ("scaled") L1D of 4 KB — the same residency ratio as
// the paper's 16 KB buffer in a 32 KB L1; see core::scaled_uarch().
constexpr std::uint32_t kL1PatternBufferBytes = 2 * 1024;

namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kBufferBytes = kL1PatternBufferBytes;
constexpr std::uint32_t kRounds = 12;
constexpr std::uint32_t kPattern = 0xA5A5A5A5u;

class L1PatternWorkload final : public BasicWorkload {
 public:
  L1PatternWorkload()
      : BasicWorkload({
            "L1Pattern",
            "2 KB pattern buffer, 12 verify rounds",
            "L1 data cache residency test (FIT_raw calibration)",
            "byte-by-byte L1 data cache fill + readback",
        }) {}

  isa::Program build(std::uint64_t) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label buffer = a.make_label();
    Label out = a.make_label();

    // Fill.
    a.load_label(Reg::r2, buffer);
    a.mov_imm32(Reg::r3, kPattern);
    a.movi(Reg::r5, 0);
    {
      Label fill = a.make_label();
      a.bind(fill);
      a.strr(Reg::r3, Reg::r2, Reg::r5);
      a.addi(Reg::r5, Reg::r5, 4);
      a.mov_imm32(Reg::r0, kBufferBytes);
      a.cmp(Reg::r5, Reg::r0);
      a.b(Cond::cc, fill);
    }
    // Verify rounds; r8 = mismatch count.
    a.movi(Reg::r8, 0);
    a.movi(Reg::r9, kRounds);
    {
      Label round = a.make_label();
      a.bind(round);
      a.movi(Reg::r5, 0);
      Label verify = a.make_label();
      Label ok = a.make_label();
      a.bind(verify);
      a.ldrr(Reg::r0, Reg::r2, Reg::r5);
      a.cmp(Reg::r0, Reg::r3);
      a.b(Cond::eq, ok);
      a.addi(Reg::r8, Reg::r8, 1);
      // Scrub the word so one upset counts once per residency, like the
      // paper's fill-and-compare procedure (re-write the pattern).
      a.strr(Reg::r3, Reg::r2, Reg::r5);
      a.bind(ok);
      a.addi(Reg::r5, Reg::r5, 4);
      a.mov_imm32(Reg::r0, kBufferBytes);
      a.cmp(Reg::r5, Reg::r0);
      a.b(Cond::cc, verify);
      a.subi(Reg::r9, Reg::r9, 1);
      a.cmpi(Reg::r9, 0);
      a.b(Cond::ne, round);
    }
    a.load_label(Reg::r0, out);
    a.str(Reg::r8, Reg::r0, 0);
    a.movi(Reg::r1, 4);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(out);
    a.zero(4);
    a.align(32);
    a.bind(buffer);
    a.zero(kBufferBytes);
    return a.finish();
  }

  std::string expected_console(std::uint64_t) const override {
    // Fault-free runs see zero mismatches.
    const std::uint32_t words[] = {0};
    return report_string(words_to_bytes(words));
  }

  static constexpr std::uint32_t buffer_bytes() { return kBufferBytes; }
};

}  // namespace

const Workload& l1_pattern_workload_impl() {
  static const L1PatternWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail

namespace sefi::workloads {
std::uint32_t l1_pattern_buffer_bytes() {
  return detail::kL1PatternBufferBytes;
}
}  // namespace sefi::workloads
