// MatMul (the paper's matrix-multiply benchmark): C = A x B over 16x16
// single-precision matrices. Memory intensive with a classic three-loop
// kernel; the smallest data footprint of the float benchmarks.
#include "common.hpp"

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kN = 16;

std::vector<float> make_a(std::uint64_t seed) {
  return random_floats(seed ^ 0xA, kN * kN, -2.0f, 2.0f);
}

std::vector<float> make_b(std::uint64_t seed) {
  return random_floats(seed ^ 0xB, kN * kN, -2.0f, 2.0f);
}

std::vector<float> host_matmul(std::uint64_t seed) {
  const auto a = make_a(seed);
  const auto b = make_b(seed);
  std::vector<float> c(kN * kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    for (std::uint32_t j = 0; j < kN; ++j) {
      float acc = 0.0f;
      for (std::uint32_t k = 0; k < kN; ++k) {
        // Two distinct rounding steps, matching the guest's fmul+fadd.
        const float product = a[i * kN + k] * b[k * kN + j];
        acc = acc + product;
      }
      c[i * kN + j] = acc;
    }
  }
  return c;
}

class MatMulWorkload final : public BasicWorkload {
 public:
  MatMulWorkload()
      : BasicWorkload({
            "MatMul",
            "16x16 single-precision floating point",
            "Memory intensive",
            "128x128 single precision floating point",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label mat_a = a.make_label();
    Label mat_b = a.make_label();
    Label mat_c = a.make_label();

    a.load_label(Reg::r2, mat_a);
    a.load_label(Reg::r3, mat_b);
    a.load_label(Reg::r4, mat_c);
    a.movi(Reg::r10, kN);

    a.movi(Reg::r5, 0);  // i
    Label iloop = a.make_label();
    a.bind(iloop);
    a.movi(Reg::r6, 0);  // j
    Label jloop = a.make_label();
    a.bind(jloop);
    a.movi(Reg::r8, 0);  // acc = 0.0f (bit pattern 0)
    a.movi(Reg::r7, 0);  // k
    Label kloop = a.make_label();
    a.bind(kloop);
    // a[i*N + k]
    a.mul(Reg::r9, Reg::r5, Reg::r10);
    a.add(Reg::r9, Reg::r9, Reg::r7);
    a.lsli(Reg::r9, Reg::r9, 2);
    a.ldrr(Reg::r11, Reg::r2, Reg::r9);
    // b[k*N + j]
    a.mul(Reg::r9, Reg::r7, Reg::r10);
    a.add(Reg::r9, Reg::r9, Reg::r6);
    a.lsli(Reg::r9, Reg::r9, 2);
    a.ldrr(Reg::r12, Reg::r3, Reg::r9);
    a.fmul(Reg::r11, Reg::r11, Reg::r12);
    a.fadd(Reg::r8, Reg::r8, Reg::r11);
    a.addi(Reg::r7, Reg::r7, 1);
    a.cmp(Reg::r7, Reg::r10);
    a.b(Cond::lt, kloop);
    // c[i*N + j] = acc
    a.mul(Reg::r9, Reg::r5, Reg::r10);
    a.add(Reg::r9, Reg::r9, Reg::r6);
    a.lsli(Reg::r9, Reg::r9, 2);
    a.strr(Reg::r8, Reg::r4, Reg::r9);
    a.addi(Reg::r6, Reg::r6, 1);
    a.cmp(Reg::r6, Reg::r10);
    a.b(Cond::lt, jloop);
    a.addi(Reg::r5, Reg::r5, 1);
    a.cmp(Reg::r5, Reg::r10);
    a.b(Cond::lt, iloop);

    a.load_label(Reg::r0, mat_c);
    a.mov_imm32(Reg::r1, kN * kN * 4);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(mat_a);
    a.bytes(floats_to_bytes(make_a(seed)));
    a.bind(mat_b);
    a.bytes(floats_to_bytes(make_b(seed)));
    a.bind(mat_c);
    a.zero(kN * kN * 4);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    return report_string(floats_to_bytes(host_matmul(seed)));
  }
};

}  // namespace

const Workload& matmul_workload() {
  static const MatMulWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
