// StringSearch (MiBench office/stringsearch): searches one pattern per
// sentence, recording the first match offset (or -1). Control + memory
// intensive with the smallest input of the suite — the paper's strongest
// kernel-cache-residency outlier.
#include "common.hpp"

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kPairs = 48;
constexpr std::uint32_t kSentenceLen = 64;
constexpr std::uint32_t kPatternSlot = 8;  // fixed-size pattern records

struct SearchInput {
  std::vector<std::uint8_t> patterns;   // kPairs * kPatternSlot, 0-padded
  std::vector<std::uint32_t> lengths;   // kPairs pattern lengths (4..8)
  std::vector<std::uint8_t> sentences;  // kPairs * kSentenceLen
};

SearchInput make_input(std::uint64_t seed) {
  support::Xoshiro256 rng(seed ^ 0x57A6);
  SearchInput in;
  in.patterns.assign(kPairs * kPatternSlot, 0);
  in.lengths.resize(kPairs);
  in.sentences.resize(kPairs * kSentenceLen);
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    const auto len = static_cast<std::uint32_t>(4 + rng.below(5));
    in.lengths[i] = len;
    for (std::uint32_t c = 0; c < len; ++c) {
      in.patterns[i * kPatternSlot + c] =
          static_cast<std::uint8_t>('a' + rng.below(6));
    }
    for (std::uint32_t c = 0; c < kSentenceLen; ++c) {
      in.sentences[i * kSentenceLen + c] =
          static_cast<std::uint8_t>('a' + rng.below(6));
    }
    // Plant the pattern in half of the sentences so hits and misses both
    // occur, like real text search.
    if (i % 2 == 0) {
      const auto pos =
          static_cast<std::uint32_t>(rng.below(kSentenceLen - len));
      for (std::uint32_t c = 0; c < len; ++c) {
        in.sentences[i * kSentenceLen + pos + c] =
            in.patterns[i * kPatternSlot + c];
      }
    }
  }
  return in;
}

std::vector<std::uint32_t> host_search(const SearchInput& in) {
  std::vector<std::uint32_t> out(kPairs);
  for (std::uint32_t i = 0; i < kPairs; ++i) {
    const std::uint32_t len = in.lengths[i];
    std::uint32_t found = 0xFFFFFFFFu;
    for (std::uint32_t pos = 0; pos + len <= kSentenceLen; ++pos) {
      bool match = true;
      for (std::uint32_t c = 0; c < len; ++c) {
        if (in.sentences[i * kSentenceLen + pos + c] !=
            in.patterns[i * kPatternSlot + c]) {
          match = false;
          break;
        }
      }
      if (match) {
        found = pos;
        break;
      }
    }
    out[i] = found;
  }
  return out;
}

class StringSearchWorkload final : public BasicWorkload {
 public:
  StringSearchWorkload()
      : BasicWorkload({
            "StringSearch",
            "48 words searched in 48 sentences (1 word per sentence)",
            "Memory intensive and Control intensive",
            "1332 words to search in 1332 sentences (1 word per sentence)",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    const SearchInput in = make_input(seed);
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label patterns = a.make_label();
    Label lengths = a.make_label();
    Label sentences = a.make_label();
    Label out = a.make_label();

    a.load_label(Reg::r2, patterns);
    a.load_label(Reg::r3, lengths);
    a.load_label(Reg::r4, sentences);
    a.load_label(Reg::r5, out);
    a.movi(Reg::r12, 0);  // pair index i
    Label pair_loop = a.make_label();
    a.bind(pair_loop);
    // r6 = pattern ptr, r8 = sentence ptr, r9 = len
    a.lsli(Reg::r6, Reg::r12, 3);
    a.add(Reg::r6, Reg::r2, Reg::r6);
    a.movi(Reg::r0, kSentenceLen);
    a.mul(Reg::r8, Reg::r12, Reg::r0);
    a.add(Reg::r8, Reg::r4, Reg::r8);
    a.lsli(Reg::r0, Reg::r12, 2);
    a.ldrr(Reg::r9, Reg::r3, Reg::r0);
    // r10 = found = -1; r11 = pos
    a.mov_imm32(Reg::r10, 0xFFFFFFFFu);
    a.movi(Reg::r11, 0);
    Label pos_loop = a.make_label();
    Label pos_next = a.make_label();
    Label pair_done = a.make_label();
    a.bind(pos_loop);
    // while pos + len <= kSentenceLen
    a.add(Reg::r0, Reg::r11, Reg::r9);
    a.cmpi(Reg::r0, kSentenceLen);
    a.b(Cond::hi, pair_done);
    // inner compare: c in r7
    a.movi(Reg::r7, 0);
    {
      Label cloop = a.make_label();
      Label matched = a.make_label();
      a.bind(cloop);
      a.cmp(Reg::r7, Reg::r9);
      a.b(Cond::cs, matched);  // c >= len: full match
      a.add(Reg::r0, Reg::r8, Reg::r11);
      a.add(Reg::r0, Reg::r0, Reg::r7);
      a.ldrb(Reg::r0, Reg::r0, 0);
      a.add(Reg::r1, Reg::r6, Reg::r7);
      a.ldrb(Reg::r1, Reg::r1, 0);
      a.cmp(Reg::r0, Reg::r1);
      a.b(Cond::ne, pos_next);
      a.addi(Reg::r7, Reg::r7, 1);
      a.b(cloop);
      a.bind(matched);
      a.mov(Reg::r10, Reg::r11);
      a.b(pair_done);
    }
    a.bind(pos_next);
    a.addi(Reg::r11, Reg::r11, 1);
    a.b(pos_loop);
    a.bind(pair_done);
    a.lsli(Reg::r0, Reg::r12, 2);
    a.strr(Reg::r10, Reg::r5, Reg::r0);
    a.addi(Reg::r12, Reg::r12, 1);
    a.cmpi(Reg::r12, kPairs);
    a.b(Cond::lt, pair_loop);

    a.load_label(Reg::r0, out);
    a.mov_imm32(Reg::r1, kPairs * 4);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(patterns);
    a.bytes(in.patterns);
    a.align(4);
    a.bind(lengths);
    a.bytes(words_to_bytes(in.lengths));
    a.bind(sentences);
    a.bytes(in.sentences);
    a.align(4);
    a.bind(out);
    a.zero(kPairs * 4);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    return report_string(words_to_bytes(host_search(make_input(seed))));
  }
};

}  // namespace

const Workload& stringsearch_workload() {
  static const StringSearchWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
