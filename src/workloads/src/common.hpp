// Internal helpers shared by the workload implementations.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sefi/isa/assembler.hpp"
#include "sefi/sim/cpu.hpp"
#include "sefi/sim/memmap.hpp"
#include "sefi/support/rng.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::workloads::detail {

// --- host-side mirrors of the guest reporting convention ----------------

/// FNV-1a 32-bit, the checksum every workload prints over its result.
std::uint32_t fnv32(std::span<const std::uint8_t> bytes);

/// Lowercase 8-digit hex rendering (the guest's output format).
std::string hex8(std::uint32_t value);

/// expected_console payload for a result buffer: hex8(fnv32(bytes)).
std::string report_string(std::span<const std::uint8_t> bytes);

// --- guest-side reporting routine ----------------------------------------

/// Emits the standard result-reporting subroutine at the current position
/// and binds `label` to it. Calling convention: branch to it with
/// r0 = result buffer address, r1 = length in bytes. It prints
/// hex8(fnv32(buffer)) via sys_putc and exits with code 0. Never returns.
/// Clobbers r0-r11 (it exits anyway).
void emit_report_routine(isa::Assembler& a, isa::Label label);

// --- deterministic input generation ---------------------------------------

/// Bytes uniform in [0, 256).
std::vector<std::uint8_t> random_bytes(std::uint64_t seed, std::size_t count);

/// 32-bit words uniform in [0, bound).
std::vector<std::uint32_t> random_words(std::uint64_t seed, std::size_t count,
                                        std::uint32_t bound);

/// Single-precision floats uniform in [lo, hi).
std::vector<float> random_floats(std::uint64_t seed, std::size_t count,
                                 float lo, float hi);

/// Serializes 32-bit words little-endian (matching guest memory layout).
std::vector<std::uint8_t> words_to_bytes(std::span<const std::uint32_t> words);

/// Serializes floats little-endian by bit pattern.
std::vector<std::uint8_t> floats_to_bytes(std::span<const float> floats);

// --- base class -------------------------------------------------------------

class BasicWorkload : public Workload {
 public:
  explicit BasicWorkload(WorkloadInfo info) : info_(std::move(info)) {}
  const WorkloadInfo& info() const override { return info_; }

 private:
  WorkloadInfo info_;
};

// --- per-benchmark factories (one per translation unit) --------------------

const Workload& crc32_workload();
const Workload& dijkstra_workload();
const Workload& fft_workload();
const Workload& jpeg_c_workload();
const Workload& jpeg_d_workload();
const Workload& matmul_workload();
const Workload& qsort_workload();
const Workload& rijndael_e_workload();
const Workload& rijndael_d_workload();
const Workload& stringsearch_workload();
const Workload& susan_c_workload();
const Workload& susan_e_workload();
const Workload& susan_s_workload();
const Workload& l1_pattern_workload_impl();
const Workload& sha_workload();
const Workload& bitcount_workload();
const Workload& adpcm_workload();
const Workload& basicmath_workload();

}  // namespace sefi::workloads::detail
