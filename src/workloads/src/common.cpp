#include "common.hpp"

#include <bit>

#include "sefi/sim/cpu.hpp"
#include "sefi/support/rng.hpp"

namespace sefi::workloads::detail {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

std::uint32_t fnv32(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 0x811C9DC5u;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x01000193u;
  }
  return h;
}

std::string hex8(std::uint32_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 0; i < 8; ++i) {
    out[i] = kDigits[(value >> (28 - 4 * i)) & 0xF];
  }
  return out;
}

std::string report_string(std::span<const std::uint8_t> bytes) {
  return hex8(fnv32(bytes));
}

void emit_report_routine(Assembler& a, Label label) {
  a.bind(label);
  // r10/r11 hold the buffer cursor and remaining length; r8/r9 the hash
  // state. Registers r5+ survive syscalls (the kernel clobbers r0-r4).
  a.mov(Reg::r10, Reg::r0);
  a.mov(Reg::r11, Reg::r1);
  a.mov_imm32(Reg::r8, 0x811C9DC5u);
  a.mov_imm32(Reg::r9, 0x01000193u);
  Label loop = a.make_label();
  Label print = a.make_label();
  a.bind(loop);
  a.cmpi(Reg::r11, 0);
  a.b(Cond::eq, print);
  a.ldrb(Reg::r4, Reg::r10, 0);
  a.eor(Reg::r8, Reg::r8, Reg::r4);
  a.mul(Reg::r8, Reg::r8, Reg::r9);
  a.addi(Reg::r10, Reg::r10, 1);
  a.subi(Reg::r11, Reg::r11, 1);
  a.b(loop);

  a.bind(print);
  a.movi(Reg::r5, 8);
  Label nibble = a.make_label();
  Label digit = a.make_label();
  Label put = a.make_label();
  a.bind(nibble);
  a.subi(Reg::r5, Reg::r5, 1);
  a.lsli(Reg::r4, Reg::r5, 2);
  a.lsr(Reg::r6, Reg::r8, Reg::r4);
  a.andi(Reg::r6, Reg::r6, 15);
  a.cmpi(Reg::r6, 10);
  a.b(Cond::lt, digit);
  a.addi(Reg::r6, Reg::r6, 'a' - 10);
  a.b(put);
  a.bind(digit);
  a.addi(Reg::r6, Reg::r6, '0');
  a.bind(put);
  a.mov(Reg::r0, Reg::r6);
  a.movi(Reg::r7, sim::sysno::kPutc);
  a.svc(0);
  a.cmpi(Reg::r5, 0);
  a.b(Cond::ne, nibble);

  a.movi(Reg::r0, 0);
  a.movi(Reg::r7, sim::sysno::kExit);
  a.svc(0);
}

std::vector<std::uint8_t> random_bytes(std::uint64_t seed,
                                       std::size_t count) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> out(count);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::vector<std::uint32_t> random_words(std::uint64_t seed, std::size_t count,
                                        std::uint32_t bound) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> out(count);
  for (auto& w : out) w = static_cast<std::uint32_t>(rng.below(bound));
  return out;
}

std::vector<float> random_floats(std::uint64_t seed, std::size_t count,
                                 float lo, float hi) {
  support::Xoshiro256 rng(seed);
  std::vector<float> out(count);
  for (auto& f : out) {
    f = lo + static_cast<float>(rng.uniform01()) * (hi - lo);
  }
  return out;
}

std::vector<std::uint8_t> words_to_bytes(
    std::span<const std::uint32_t> words) {
  std::vector<std::uint8_t> out;
  out.reserve(words.size() * 4);
  for (const std::uint32_t w : words) {
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  return out;
}

std::vector<std::uint8_t> floats_to_bytes(std::span<const float> floats) {
  std::vector<std::uint8_t> out;
  out.reserve(floats.size() * 4);
  for (const float f : floats) {
    const auto w = std::bit_cast<std::uint32_t>(f);
    out.push_back(static_cast<std::uint8_t>(w));
    out.push_back(static_cast<std::uint8_t>(w >> 8));
    out.push_back(static_cast<std::uint8_t>(w >> 16));
    out.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  return out;
}

}  // namespace sefi::workloads::detail
