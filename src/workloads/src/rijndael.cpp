// Rijndael (MiBench security/rijndael): AES-128 in ECB mode, one
// workload for encryption and one for decryption, like the paper's
// Rijndael E / Rijndael D pair. The S-boxes and (for decryption) the
// GF(2^8) multiplication tables are host-precomputed data; the key
// schedule and all rounds run as guest code.
//
// The decryption workload's input is the ciphertext produced by the host
// mirror from the same seed, so E and D process the "same file" the way
// the paper's pair does.
#include "common.hpp"

#include <array>

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kBlocks = 16;
constexpr std::uint32_t kDataLen = kBlocks * 16;

// --- host-side AES-128 reference ----------------------------------------

std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    const bool hi = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1B;
    b >>= 1;
  }
  return p;
}

const std::array<std::uint8_t, 256>& sbox() {
  static const auto table = [] {
    std::array<std::uint8_t, 256> inv{};
    for (unsigned x = 1; x < 256; ++x) {
      for (unsigned y = 1; y < 256; ++y) {
        if (gmul(static_cast<std::uint8_t>(x),
                 static_cast<std::uint8_t>(y)) == 1) {
          inv[x] = static_cast<std::uint8_t>(y);
          break;
        }
      }
    }
    std::array<std::uint8_t, 256> s{};
    for (unsigned x = 0; x < 256; ++x) {
      const std::uint8_t b = inv[x];
      auto rotl = [](std::uint8_t v, int n) {
        return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
      };
      s[x] = static_cast<std::uint8_t>(b ^ rotl(b, 1) ^ rotl(b, 2) ^
                                       rotl(b, 3) ^ rotl(b, 4) ^ 0x63);
    }
    return s;
  }();
  return table;
}

const std::array<std::uint8_t, 256>& inv_sbox() {
  static const auto table = [] {
    std::array<std::uint8_t, 256> inv{};
    for (unsigned x = 0; x < 256; ++x) inv[sbox()[x]] = static_cast<std::uint8_t>(x);
    return inv;
  }();
  return table;
}

std::vector<std::uint8_t> gmul_table(std::uint8_t factor) {
  std::vector<std::uint8_t> t(256);
  for (unsigned x = 0; x < 256; ++x) {
    t[x] = gmul(static_cast<std::uint8_t>(x), factor);
  }
  return t;
}

/// 44-word expanded key (AES-128), byte-serialized little-endian words;
/// byte order within each word is the standard a0..a3 layout.
std::array<std::uint8_t, 176> expand_key(
    const std::array<std::uint8_t, 16>& key) {
  std::array<std::uint8_t, 176> rk{};
  std::copy(key.begin(), key.end(), rk.begin());
  std::uint8_t rcon = 1;
  for (unsigned i = 4; i < 44; ++i) {
    std::uint8_t t[4] = {rk[4 * (i - 1)], rk[4 * (i - 1) + 1],
                         rk[4 * (i - 1) + 2], rk[4 * (i - 1) + 3]};
    if (i % 4 == 0) {
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(sbox()[t[1]] ^ rcon);
      t[1] = sbox()[t[2]];
      t[2] = sbox()[t[3]];
      t[3] = sbox()[tmp];
      rcon = gmul(rcon, 2);
    }
    for (int b = 0; b < 4; ++b) {
      rk[4 * i + b] = static_cast<std::uint8_t>(rk[4 * (i - 4) + b] ^ t[b]);
    }
  }
  return rk;
}

void host_encrypt_block(std::uint8_t* s, const std::array<std::uint8_t, 176>& rk) {
  auto add_rk = [&](unsigned round) {
    for (int i = 0; i < 16; ++i) s[i] ^= rk[16 * round + i];
  };
  auto sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) s[i] = sbox()[s[i]];
  };
  auto shift_rows = [&] {
    std::uint8_t t[16];
    std::copy(s, s + 16, t);
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) s[r + 4 * c] = t[r + 4 * ((c + r) % 4)];
    }
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* a = s + 4 * c;
      const std::uint8_t t = static_cast<std::uint8_t>(a[0] ^ a[1] ^ a[2] ^ a[3]);
      const std::uint8_t a0 = a[0];
      for (int i = 0; i < 4; ++i) {
        const std::uint8_t next = (i == 3) ? a0 : a[i + 1];
        a[i] = static_cast<std::uint8_t>(a[i] ^ t ^
                                         gmul(static_cast<std::uint8_t>(a[i] ^ next), 2));
      }
    }
  };
  add_rk(0);
  for (unsigned round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_rk(round);
  }
  sub_bytes();
  shift_rows();
  add_rk(10);
}

void host_decrypt_block(std::uint8_t* s, const std::array<std::uint8_t, 176>& rk) {
  auto add_rk = [&](unsigned round) {
    for (int i = 0; i < 16; ++i) s[i] ^= rk[16 * round + i];
  };
  auto inv_sub = [&] {
    for (int i = 0; i < 16; ++i) s[i] = inv_sbox()[s[i]];
  };
  auto inv_shift = [&] {
    std::uint8_t t[16];
    std::copy(s, s + 16, t);
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) s[r + 4 * ((c + r) % 4)] = t[r + 4 * c];
    }
  };
  auto inv_mix = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* a = s + 4 * c;
      const std::uint8_t a0 = a[0], a1 = a[1], a2 = a[2], a3 = a[3];
      a[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                       gmul(a2, 13) ^ gmul(a3, 9));
      a[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                       gmul(a2, 11) ^ gmul(a3, 13));
      a[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                       gmul(a2, 14) ^ gmul(a3, 11));
      a[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                       gmul(a2, 9) ^ gmul(a3, 14));
    }
  };
  add_rk(10);
  for (unsigned round = 9; round >= 1; --round) {
    inv_shift();
    inv_sub();
    add_rk(round);
    inv_mix();
  }
  inv_shift();
  inv_sub();
  add_rk(0);
}

std::array<std::uint8_t, 16> make_key(std::uint64_t seed) {
  const auto bytes = random_bytes(seed ^ 0xAE5, 16);
  std::array<std::uint8_t, 16> key{};
  std::copy(bytes.begin(), bytes.end(), key.begin());
  return key;
}

std::vector<std::uint8_t> make_plaintext(std::uint64_t seed) {
  return random_bytes(seed ^ 0x71A1, kDataLen);
}

std::vector<std::uint8_t> host_encrypt(std::uint64_t seed) {
  auto data = make_plaintext(seed);
  const auto rk = expand_key(make_key(seed));
  for (std::uint32_t b = 0; b < kBlocks; ++b) {
    host_encrypt_block(data.data() + 16 * b, rk);
  }
  return data;
}

// --- guest emitters --------------------------------------------------------

struct AesLabels {
  Label sbox_tbl, key, input, output, roundkeys;
  Label m9, m11, m13, m14;  // decrypt only
};

/// Key schedule: expands key -> roundkeys using the (possibly inverse-
/// irrelevant) forward S-box. Registers: r2 roundkeys, r3 sbox, r5 rcon,
/// r6 i, temps r0/r1/r4/r8.
void emit_key_expansion(Assembler& a, const AesLabels& labels) {
  a.load_label(Reg::r2, labels.roundkeys);
  a.load_label(Reg::r3, labels.sbox_tbl);
  // Copy the 16-byte key into rk[0..15].
  a.load_label(Reg::r0, labels.key);
  for (int w = 0; w < 4; ++w) {
    a.ldr(Reg::r1, Reg::r0, w * 4);
    a.str(Reg::r1, Reg::r2, w * 4);
  }
  a.movi(Reg::r5, 1);   // rcon
  a.movi(Reg::r6, 4);   // i
  Label loop = a.make_label();
  Label no_rot = a.make_label();
  Label cont = a.make_label();
  a.bind(loop);
  // t (r4) = word rk[i-1], as 4 bytes b0..b3 (little-endian in memory).
  a.lsli(Reg::r0, Reg::r6, 2);
  a.subi(Reg::r0, Reg::r0, 4);
  a.ldrr(Reg::r4, Reg::r2, Reg::r0);
  // if i % 4 == 0: t = SubWord(RotWord(t)) ^ rcon
  a.andi(Reg::r0, Reg::r6, 3);
  a.cmpi(Reg::r0, 0);
  a.b(Cond::ne, no_rot);
  {
    // RotWord on the byte sequence b0b1b2b3 -> b1b2b3b0; with LE words
    // that is a 8-bit rotate right of the 32-bit value.
    a.lsri(Reg::r0, Reg::r4, 8);
    a.lsli(Reg::r1, Reg::r4, 24);
    a.orr(Reg::r4, Reg::r0, Reg::r1);
    // SubWord: S-box each byte of r4 (byte loads — table indices are
    // arbitrary, so word loads would fault on alignment).
    a.movi(Reg::r8, 0);  // accumulator
    for (int byte = 3; byte >= 0; --byte) {
      a.lsri(Reg::r0, Reg::r4, byte * 8);
      a.andi(Reg::r0, Reg::r0, 255);
      a.add(Reg::r1, Reg::r3, Reg::r0);
      a.ldrb(Reg::r1, Reg::r1, 0);
      a.lsli(Reg::r8, Reg::r8, 8);
      a.orr(Reg::r8, Reg::r8, Reg::r1);
    }
    a.mov(Reg::r4, Reg::r8);
    a.eor(Reg::r4, Reg::r4, Reg::r5);  // ^= rcon (low byte)
    // rcon = xtime(rcon)
    a.lsli(Reg::r0, Reg::r5, 1);
    a.andi(Reg::r1, Reg::r5, 0x80);
    a.cmpi(Reg::r1, 0);
    Label no_red = a.make_label();
    a.b(Cond::eq, no_red);
    a.eori(Reg::r0, Reg::r0, 0x1B);
    a.bind(no_red);
    a.andi(Reg::r5, Reg::r0, 255);
  }
  a.b(cont);
  a.bind(no_rot);
  a.bind(cont);
  // rk[i] = rk[i-4] ^ t
  a.lsli(Reg::r0, Reg::r6, 2);
  a.subi(Reg::r1, Reg::r0, 16);
  a.ldrr(Reg::r8, Reg::r2, Reg::r1);
  a.eor(Reg::r8, Reg::r8, Reg::r4);
  a.strr(Reg::r8, Reg::r2, Reg::r0);
  a.addi(Reg::r6, Reg::r6, 1);
  a.cmpi(Reg::r6, 44);
  a.b(Cond::lt, loop);
}

/// Loads table[index] (byte) into `dst`: dst = table_base[index].
/// Uses `addr_tmp` as scratch.
void emit_table_lookup(Assembler& a, Reg dst, Reg table_base, Reg index,
                       Reg addr_tmp) {
  a.add(addr_tmp, table_base, index);
  a.ldrb(dst, addr_tmp, 0);
}

/// AddRoundKey: state ^= rk[round], word-wise. state base in r2,
/// roundkeys base in r3; clobbers r0, r1.
void emit_add_round_key(Assembler& a, unsigned round) {
  for (int w = 0; w < 4; ++w) {
    a.ldr(Reg::r0, Reg::r2, w * 4);
    a.ldr(Reg::r1, Reg::r3, static_cast<std::int32_t>(16 * round + 4 * w));
    a.eor(Reg::r0, Reg::r0, Reg::r1);
    a.str(Reg::r0, Reg::r2, w * 4);
  }
}

/// SubBytes with table base in r4; state in r2. Clobbers r0, r1, r5, r6.
void emit_sub_bytes(Assembler& a) {
  a.movi(Reg::r5, 0);
  Label loop = a.make_label();
  a.bind(loop);
  a.add(Reg::r6, Reg::r2, Reg::r5);
  a.ldrb(Reg::r0, Reg::r6, 0);
  emit_table_lookup(a, Reg::r0, Reg::r4, Reg::r0, Reg::r1);
  a.strb(Reg::r0, Reg::r6, 0);
  a.addi(Reg::r5, Reg::r5, 1);
  a.cmpi(Reg::r5, 16);
  a.b(Cond::lt, loop);
}

/// ShiftRows (forward or inverse), unrolled byte moves. State in r2;
/// clobbers r0, r1.
void emit_shift_rows(Assembler& a, bool inverse) {
  // Row 1: rotate by 1 (left for encrypt, right for decrypt).
  const int row1[] = {1, 5, 9, 13};
  const int row2[] = {2, 10};   // swap pairs
  const int row2b[] = {6, 14};
  const int row3[] = {3, 7, 11, 15};
  auto rotate4 = [&](const int* idx, bool left) {
    if (left) {
      a.ldrb(Reg::r0, Reg::r2, idx[0]);
      for (int i = 0; i < 3; ++i) {
        a.ldrb(Reg::r1, Reg::r2, idx[i + 1]);
        a.strb(Reg::r1, Reg::r2, idx[i]);
      }
      a.strb(Reg::r0, Reg::r2, idx[3]);
    } else {
      a.ldrb(Reg::r0, Reg::r2, idx[3]);
      for (int i = 3; i > 0; --i) {
        a.ldrb(Reg::r1, Reg::r2, idx[i - 1]);
        a.strb(Reg::r1, Reg::r2, idx[i]);
      }
      a.strb(Reg::r0, Reg::r2, idx[0]);
    }
  };
  auto swap2 = [&](const int* idx) {
    a.ldrb(Reg::r0, Reg::r2, idx[0]);
    a.ldrb(Reg::r1, Reg::r2, idx[1]);
    a.strb(Reg::r1, Reg::r2, idx[0]);
    a.strb(Reg::r0, Reg::r2, idx[1]);
  };
  rotate4(row1, !inverse);
  swap2(row2);
  swap2(row2b);
  rotate4(row3, inverse);
}

/// MixColumns (encrypt) via xtime. State in r2; clobbers r0,r1,r5-r11.
void emit_mix_columns(Assembler& a) {
  auto emit_xtime = [&](Reg reg, Reg tmp) {
    // reg = xtime(reg)
    a.lsli(tmp, reg, 1);
    a.andi(reg, reg, 0x80);
    a.cmpi(reg, 0);
    Label no_red = a.make_label();
    a.b(Cond::eq, no_red);
    a.eori(tmp, tmp, 0x1B);
    a.bind(no_red);
    a.andi(reg, tmp, 255);
  };
  for (int c = 0; c < 4; ++c) {
    const int base = 4 * c;
    a.ldrb(Reg::r5, Reg::r2, base + 0);
    a.ldrb(Reg::r6, Reg::r2, base + 1);
    a.ldrb(Reg::r7, Reg::r2, base + 2);
    a.ldrb(Reg::r8, Reg::r2, base + 3);
    // t = a0^a1^a2^a3
    a.eor(Reg::r9, Reg::r5, Reg::r6);
    a.eor(Reg::r9, Reg::r9, Reg::r7);
    a.eor(Reg::r9, Reg::r9, Reg::r8);
    const Reg cols[] = {Reg::r5, Reg::r6, Reg::r7, Reg::r8};
    for (int i = 0; i < 4; ++i) {
      const Reg cur = cols[i];
      const Reg nxt = cols[(i + 1) % 4];
      // out_i = a_i ^ t ^ xtime(a_i ^ a_{i+1}); write directly to state
      // so later columns see original bytes via the loaded registers.
      a.eor(Reg::r10, cur, nxt);
      emit_xtime(Reg::r10, Reg::r11);
      a.eor(Reg::r10, Reg::r10, Reg::r9);
      a.eor(Reg::r10, Reg::r10, cur);
      a.strb(Reg::r10, Reg::r2, base + i);
    }
  }
}

/// InvMixColumns via the four precomputed gmul tables (bases preloaded in
/// r8=m14, r9=m11, r10=m13, r11=m9). State in r2; clobbers r0,r1,r5-r7,r12,lr.
void emit_inv_mix_columns(Assembler& a) {
  for (int c = 0; c < 4; ++c) {
    const int base = 4 * c;
    // Load the column into r5..r7 and r12 (a0..a3).
    a.ldrb(Reg::r5, Reg::r2, base + 0);
    a.ldrb(Reg::r6, Reg::r2, base + 1);
    a.ldrb(Reg::r7, Reg::r2, base + 2);
    a.ldrb(Reg::r12, Reg::r2, base + 3);
    const Reg abytes[] = {Reg::r5, Reg::r6, Reg::r7, Reg::r12};
    // Multiplier table per (output row, input row): rotate of {14,11,13,9}.
    const Reg tables[] = {Reg::r8, Reg::r9, Reg::r10, Reg::r11};
    for (int out = 0; out < 4; ++out) {
      a.movi(Reg::lr, 0);
      for (int in = 0; in < 4; ++in) {
        const Reg table = tables[(in - out + 4) % 4];
        emit_table_lookup(a, Reg::r0, table, abytes[in], Reg::r1);
        a.eor(Reg::lr, Reg::lr, Reg::r0);
      }
      a.strb(Reg::lr, Reg::r2, base + out);
    }
  }
}

isa::Program build_aes_program(std::uint64_t seed, bool decrypt) {
  Assembler a(sim::kUserBase);
  Label report = a.make_label();
  AesLabels L{a.make_label(), a.make_label(), a.make_label(),
              a.make_label(), a.make_label(),
              a.make_label(), a.make_label(), a.make_label(),
              a.make_label()};
  Label inv_sbox_tbl = a.make_label();

  emit_key_expansion(a, L);

  // Per-block loop: ip = block index (r12 is an InvMixColumns temp). The
  // block is copied into the output buffer and transformed in place.
  a.movi(Reg::ip, 0);
  Label block_loop = a.make_label();
  a.bind(block_loop);
  // r2 = &output[16*blk]; copy input block in.
  a.load_label(Reg::r2, L.output);
  a.lsli(Reg::r0, Reg::ip, 4);
  a.add(Reg::r2, Reg::r2, Reg::r0);
  a.load_label(Reg::r1, L.input);
  a.add(Reg::r1, Reg::r1, Reg::r0);
  for (int w = 0; w < 4; ++w) {
    a.ldr(Reg::r0, Reg::r1, w * 4);
    a.str(Reg::r0, Reg::r2, w * 4);
  }
  a.load_label(Reg::r3, L.roundkeys);

  if (!decrypt) {
    a.load_label(Reg::r4, L.sbox_tbl);
    emit_add_round_key(a, 0);
    for (unsigned round = 1; round <= 9; ++round) {
      emit_sub_bytes(a);
      emit_shift_rows(a, false);
      emit_mix_columns(a);
      emit_add_round_key(a, round);
    }
    emit_sub_bytes(a);
    emit_shift_rows(a, false);
    emit_add_round_key(a, 10);
  } else {
    a.load_label(Reg::r4, inv_sbox_tbl);
    a.load_label(Reg::r8, L.m14);
    a.load_label(Reg::r9, L.m11);
    a.load_label(Reg::r10, L.m13);
    a.load_label(Reg::r11, L.m9);
    emit_add_round_key(a, 10);
    for (unsigned round = 9; round >= 1; --round) {
      emit_shift_rows(a, true);
      emit_sub_bytes(a);
      emit_add_round_key(a, round);
      emit_inv_mix_columns(a);
    }
    emit_shift_rows(a, true);
    emit_sub_bytes(a);
    emit_add_round_key(a, 0);
  }

  a.addi(Reg::ip, Reg::ip, 1);
  a.cmpi(Reg::ip, kBlocks);
  a.b(Cond::lt, block_loop);

  a.load_label(Reg::r0, L.output);
  a.mov_imm32(Reg::r1, kDataLen);
  a.b(report);

  emit_report_routine(a, report);

  // --- data ---------------------------------------------------------
  a.align(4);
  a.bind(L.sbox_tbl);
  a.bytes({sbox().begin(), sbox().end()});
  a.bind(inv_sbox_tbl);
  a.bytes({inv_sbox().begin(), inv_sbox().end()});
  a.bind(L.m9);
  a.bytes(gmul_table(9));
  a.bind(L.m11);
  a.bytes(gmul_table(11));
  a.bind(L.m13);
  a.bytes(gmul_table(13));
  a.bind(L.m14);
  a.bytes(gmul_table(14));
  a.align(4);
  a.bind(L.key);
  {
    const auto key = make_key(seed);
    a.bytes({key.begin(), key.end()});
  }
  a.align(4);
  a.bind(L.input);
  a.bytes(decrypt ? host_encrypt(seed) : make_plaintext(seed));
  a.align(4);
  a.bind(L.roundkeys);
  a.zero(176);
  a.align(4);
  a.bind(L.output);
  a.zero(kDataLen);
  return a.finish();
}

class RijndaelEWorkload final : public BasicWorkload {
 public:
  RijndaelEWorkload()
      : BasicWorkload({
            "RijndaelE",
            "256 B file, AES-128 ECB encrypt",
            "Memory intensive",
            "3.2 MB file",
        }) {}
  isa::Program build(std::uint64_t seed) const override {
    return build_aes_program(seed, /*decrypt=*/false);
  }
  std::string expected_console(std::uint64_t seed) const override {
    return report_string(host_encrypt(seed));
  }
};

class RijndaelDWorkload final : public BasicWorkload {
 public:
  RijndaelDWorkload()
      : BasicWorkload({
            "RijndaelD",
            "256 B file, AES-128 ECB decrypt",
            "Memory intensive",
            "3.2 MB file",
        }) {}
  isa::Program build(std::uint64_t seed) const override {
    return build_aes_program(seed, /*decrypt=*/true);
  }
  std::string expected_console(std::uint64_t seed) const override {
    // Run the host inverse cipher over the host ciphertext (equals the
    // plaintext by construction; computing it exercises the mirror).
    auto data = host_encrypt(seed);
    const auto rk = expand_key(make_key(seed));
    for (std::uint32_t b = 0; b < kBlocks; ++b) {
      host_decrypt_block(data.data() + 16 * b, rk);
    }
    return report_string(data);
  }
};

}  // namespace

const Workload& rijndael_e_workload() {
  static const RijndaelEWorkload instance;
  return instance;
}

const Workload& rijndael_d_workload() {
  static const RijndaelDWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
