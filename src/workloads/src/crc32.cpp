// CRC32 (MiBench telecomm/CRC32): table-driven IEEE CRC-32 over a byte
// stream. CPU intensive with a streaming access pattern; the largest
// input of the suite, like the paper's 26.6 MB file.
#include "common.hpp"

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::size_t kInputLen = 8 * 1024;
constexpr std::uint32_t kPoly = 0xEDB88320u;

std::uint32_t host_crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

class Crc32Workload final : public BasicWorkload {
 public:
  Crc32Workload()
      : BasicWorkload({
            "CRC32",
            "8 KB byte stream",
            "CPU intensive",
            "26.6 MB file",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label input = a.make_label();
    Label out = a.make_label();
    Label table = a.make_label();

    // --- build the 256-entry CRC table -------------------------------
    a.load_label(Reg::r2, table);
    a.mov_imm32(Reg::r6, kPoly);
    a.movi(Reg::r0, 0);
    {
      Label ti = a.make_label();
      Label tj = a.make_label();
      Label skip = a.make_label();
      a.bind(ti);
      a.mov(Reg::r3, Reg::r0);
      a.movi(Reg::r4, 8);
      a.bind(tj);
      a.andi(Reg::r5, Reg::r3, 1);
      a.lsri(Reg::r3, Reg::r3, 1);
      a.cmpi(Reg::r5, 0);
      a.b(Cond::eq, skip);
      a.eor(Reg::r3, Reg::r3, Reg::r6);
      a.bind(skip);
      a.subi(Reg::r4, Reg::r4, 1);
      a.cmpi(Reg::r4, 0);
      a.b(Cond::ne, tj);
      a.lsli(Reg::r5, Reg::r0, 2);
      a.strr(Reg::r3, Reg::r2, Reg::r5);
      a.addi(Reg::r0, Reg::r0, 1);
      a.cmpi(Reg::r0, 256);
      a.b(Cond::lt, ti);
    }

    // --- stream the input through the table --------------------------
    a.mov_imm32(Reg::r8, 0xFFFFFFFFu);
    a.load_label(Reg::r9, input);
    a.mov_imm32(Reg::r10, kInputLen);
    {
      Label ml = a.make_label();
      a.bind(ml);
      a.ldrb(Reg::r4, Reg::r9, 0);
      a.eor(Reg::r4, Reg::r8, Reg::r4);
      a.andi(Reg::r4, Reg::r4, 255);
      a.lsli(Reg::r4, Reg::r4, 2);
      a.ldrr(Reg::r5, Reg::r2, Reg::r4);
      a.lsri(Reg::r6, Reg::r8, 8);
      a.eor(Reg::r8, Reg::r5, Reg::r6);
      a.addi(Reg::r9, Reg::r9, 1);
      a.subi(Reg::r10, Reg::r10, 1);
      a.cmpi(Reg::r10, 0);
      a.b(Cond::ne, ml);
    }
    a.mov_imm32(Reg::r4, 0xFFFFFFFFu);
    a.eor(Reg::r8, Reg::r8, Reg::r4);
    a.load_label(Reg::r0, out);
    a.str(Reg::r8, Reg::r0, 0);
    a.movi(Reg::r1, 4);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(input);
    a.bytes(random_bytes(seed, kInputLen));
    a.align(4);
    a.bind(out);
    a.zero(4);
    a.align(4);
    a.bind(table);
    a.zero(256 * 4);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    const auto input = random_bytes(seed, kInputLen);
    const std::uint32_t crc = host_crc32(input);
    const std::uint32_t words[] = {crc};
    return report_string(words_to_bytes(words));
  }
};

}  // namespace

const Workload& crc32_workload() {
  static const Crc32Workload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
