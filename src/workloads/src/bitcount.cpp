// BitCount (MiBench automotive/bitcount, extended suite): population
// count over a word array with two of MiBench's counting strategies —
// Kernighan's clear-lowest-set loop and a table-driven nibble method —
// summed into one result. Control intensive, tiny footprint.
#include "common.hpp"

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kCount = 300;

std::vector<std::uint32_t> make_input(std::uint64_t seed) {
  support::Xoshiro256 rng(seed ^ 0xB17C);
  std::vector<std::uint32_t> out(kCount);
  for (auto& w : out) w = static_cast<std::uint32_t>(rng.next());
  return out;
}

std::vector<std::uint8_t> nibble_table() {
  std::vector<std::uint8_t> table(16);
  for (unsigned i = 0; i < 16; ++i) {
    table[i] = static_cast<std::uint8_t>(__builtin_popcount(i));
  }
  return table;
}

std::uint32_t host_bitcount(std::uint64_t seed) {
  std::uint32_t total = 0;
  for (const std::uint32_t word : make_input(seed)) {
    total += 2 * static_cast<std::uint32_t>(__builtin_popcount(word));
  }
  return total;
}

class BitCountWorkload final : public BasicWorkload {
 public:
  BitCountWorkload()
      : BasicWorkload({
            "BitCount",
            "300 random 32-bit words, two counting methods",
            "Control intensive (extended suite)",
            "75000 iterations over 7 counters",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label input = a.make_label();
    Label table = a.make_label();
    Label out = a.make_label();

    a.load_label(Reg::r2, input);
    a.load_label(Reg::r3, table);
    a.movi(Reg::r8, 0);   // total
    a.movi(Reg::r9, 0);   // index

    Label word_loop = a.make_label();
    a.bind(word_loop);
    a.lsli(Reg::r0, Reg::r9, 2);
    a.ldrr(Reg::r4, Reg::r2, Reg::r0);  // word

    // Method 1: Kernighan — count = iterations of v &= v-1.
    a.mov(Reg::r5, Reg::r4);
    {
      Label loop = a.make_label();
      Label done = a.make_label();
      a.bind(loop);
      a.cmpi(Reg::r5, 0);
      a.b(Cond::eq, done);
      a.subi(Reg::r1, Reg::r5, 1);
      a.and_(Reg::r5, Reg::r5, Reg::r1);
      a.addi(Reg::r8, Reg::r8, 1);
      a.b(loop);
      a.bind(done);
    }

    // Method 2: table-driven nibbles (8 lookups).
    a.mov(Reg::r5, Reg::r4);
    a.movi(Reg::r6, 8);
    {
      Label loop = a.make_label();
      a.bind(loop);
      a.andi(Reg::r0, Reg::r5, 15);
      a.add(Reg::r0, Reg::r3, Reg::r0);
      a.ldrb(Reg::r0, Reg::r0, 0);
      a.add(Reg::r8, Reg::r8, Reg::r0);
      a.lsri(Reg::r5, Reg::r5, 4);
      a.subi(Reg::r6, Reg::r6, 1);
      a.cmpi(Reg::r6, 0);
      a.b(Cond::ne, loop);
    }

    a.addi(Reg::r9, Reg::r9, 1);
    a.cmpi(Reg::r9, kCount);
    a.b(Cond::lt, word_loop);

    a.load_label(Reg::r0, out);
    a.str(Reg::r8, Reg::r0, 0);
    a.movi(Reg::r1, 4);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(input);
    a.bytes(words_to_bytes(make_input(seed)));
    a.bind(table);
    a.bytes(nibble_table());
    a.align(4);
    a.bind(out);
    a.zero(4);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    const std::uint32_t words[] = {host_bitcount(seed)};
    return report_string(words_to_bytes(words));
  }
};

}  // namespace

const Workload& bitcount_workload() {
  static const BitCountWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
