// BasicMath (MiBench automotive/basicmath subset, extended suite):
// bit-by-bit integer square roots, single-precision square roots, and
// degree/radian conversions over random inputs — the long-latency
// arithmetic profile of the original (the cubic solver's trig parts are
// out of ISA scope and omitted; documented subset).
#include "common.hpp"

#include <bit>
#include <cmath>

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kIntCount = 320;
constexpr std::uint32_t kFloatCount = 160;

std::vector<std::uint32_t> make_ints(std::uint64_t seed) {
  return random_words(seed ^ 0xBA51, kIntCount, 0xFFFFFFFFu);
}

std::vector<float> make_floats(std::uint64_t seed) {
  return random_floats(seed ^ 0xF10A, kFloatCount, 0.0f, 1.0e6f);
}

/// Bit-by-bit integer sqrt, the classic MiBench usqrt routine.
std::uint32_t host_isqrt(std::uint32_t value) {
  std::uint32_t result = 0;
  std::uint32_t bit = 1u << 30;
  while (bit > value) bit >>= 2;
  while (bit != 0) {
    if (value >= result + bit) {
      value -= result + bit;
      result = (result >> 1) + bit;
    } else {
      result >>= 1;
    }
    bit >>= 2;
  }
  return result;
}

std::vector<std::uint8_t> host_results(std::uint64_t seed) {
  std::vector<std::uint32_t> words;
  for (const std::uint32_t v : make_ints(seed)) {
    words.push_back(host_isqrt(v));
  }
  constexpr float kRadPerDeg = 0.017453292f;
  for (const float f : make_floats(seed)) {
    const float root = std::sqrt(f);
    const float radians = f * kRadPerDeg;
    words.push_back(std::bit_cast<std::uint32_t>(root));
    words.push_back(std::bit_cast<std::uint32_t>(radians));
  }
  return words_to_bytes(words);
}

class BasicMathWorkload final : public BasicWorkload {
 public:
  BasicMathWorkload()
      : BasicWorkload({
            "BasicMath",
            "320 integer sqrts + 160 float sqrt/deg-rad pairs",
            "CPU intensive (extended suite, subset)",
            "MiBench automotive/basicmath",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label ints = a.make_label();
    Label floats = a.make_label();
    Label out = a.make_label();

    a.load_label(Reg::r2, ints);
    a.load_label(Reg::r3, out);
    a.movi(Reg::ip, 0);

    // Integer square roots.
    Label int_loop = a.make_label();
    a.bind(int_loop);
    a.lsli(Reg::r0, Reg::ip, 2);
    a.ldrr(Reg::r4, Reg::r2, Reg::r0);  // value
    a.movi(Reg::r5, 0);                 // result
    a.movi(Reg::r6, 1);
    a.lsli(Reg::r6, Reg::r6, 30);       // bit
    {
      Label shrink = a.make_label();
      Label shrink_done = a.make_label();
      a.bind(shrink);
      a.cmp(Reg::r6, Reg::r4);
      a.b(Cond::ls, shrink_done);  // bit <= value
      a.lsri(Reg::r6, Reg::r6, 2);
      a.cmpi(Reg::r6, 0);
      a.b(Cond::ne, shrink);
      a.bind(shrink_done);
    }
    {
      Label step = a.make_label();
      Label no_sub = a.make_label();
      Label next = a.make_label();
      Label done = a.make_label();
      a.bind(step);
      a.cmpi(Reg::r6, 0);
      a.b(Cond::eq, done);
      a.add(Reg::r7, Reg::r5, Reg::r6);  // result + bit
      a.cmp(Reg::r4, Reg::r7);
      a.b(Cond::cc, no_sub);  // value < result+bit
      a.sub(Reg::r4, Reg::r4, Reg::r7);
      a.lsri(Reg::r5, Reg::r5, 1);
      a.add(Reg::r5, Reg::r5, Reg::r6);
      a.b(next);
      a.bind(no_sub);
      a.lsri(Reg::r5, Reg::r5, 1);
      a.bind(next);
      a.lsri(Reg::r6, Reg::r6, 2);
      a.b(step);
      a.bind(done);
    }
    a.lsli(Reg::r0, Reg::ip, 2);
    a.strr(Reg::r5, Reg::r3, Reg::r0);
    a.addi(Reg::ip, Reg::ip, 1);
    a.cmpi(Reg::ip, kIntCount);
    a.b(Cond::lt, int_loop);

    // Float sqrt + deg->rad pairs appended after the integer results.
    a.load_label(Reg::r2, floats);
    a.mov_float(Reg::r8, 0.017453292f);  // radians per degree
    a.movi(Reg::r9, 0);
    Label float_loop = a.make_label();
    a.bind(float_loop);
    a.lsli(Reg::r0, Reg::r9, 2);
    a.ldrr(Reg::r4, Reg::r2, Reg::r0);
    a.fsqrt(Reg::r5, Reg::r4);
    a.fmul(Reg::r6, Reg::r4, Reg::r8);
    // out[kIntCount + 2*i] = sqrt; out[kIntCount + 2*i + 1] = radians
    a.lsli(Reg::r0, Reg::r9, 3);
    a.mov_imm32(Reg::r1, kIntCount * 4);
    a.add(Reg::r0, Reg::r0, Reg::r1);
    a.strr(Reg::r5, Reg::r3, Reg::r0);
    a.addi(Reg::r0, Reg::r0, 4);
    a.strr(Reg::r6, Reg::r3, Reg::r0);
    a.addi(Reg::r9, Reg::r9, 1);
    a.cmpi(Reg::r9, kFloatCount);
    a.b(Cond::lt, float_loop);

    a.load_label(Reg::r0, out);
    a.mov_imm32(Reg::r1, (kIntCount + 2 * kFloatCount) * 4);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(ints);
    a.bytes(words_to_bytes(make_ints(seed)));
    a.bind(floats);
    a.bytes(floats_to_bytes(make_floats(seed)));
    a.bind(out);
    a.zero((kIntCount + 2 * kFloatCount) * 4);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    return report_string(host_results(seed));
  }
};

}  // namespace

const Workload& basicmath_workload() {
  static const BasicMathWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
