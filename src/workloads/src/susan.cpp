// Susan C / E / S (MiBench automotive/susan): the SUSAN family over a
// small grayscale image — corner response (C), edge response (E), and
// structure-preserving smoothing (S). CPU intensive, tiny input: these
// three are the paper's canonical small-footprint benchmarks whose idle
// cache space keeps kernel state beam-exposed (§V-A).
//
// The brightness-similarity weights w(diff) = round(100*exp(-(diff/t)^6))
// are host-precomputed into a 511-entry LUT (the classic SUSAN
// implementation does the same); USAN accumulation, thresholding, and
// smoothing run as guest code over the 8-neighborhood.
#include "common.hpp"

#include <cmath>

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kW = 24;
constexpr std::uint32_t kH = 24;

enum class SusanMode { kSmoothing, kEdges, kCorners };

struct SusanParams {
  double t;                 ///< brightness threshold of the LUT
  std::uint32_t geometric;  ///< USAN geometric threshold g (E/C only)
};

SusanParams params_for(SusanMode mode) {
  switch (mode) {
    case SusanMode::kSmoothing: return {6.0, 0};
    case SusanMode::kEdges: return {10.0, 600};
    case SusanMode::kCorners: return {10.0, 300};
  }
  return {6.0, 0};
}

std::vector<std::uint8_t> make_lut(double t) {
  std::vector<std::uint8_t> lut(511);
  for (int diff = -255; diff <= 255; ++diff) {
    const double ratio = static_cast<double>(diff) / t;
    const double w = 100.0 * std::exp(-std::pow(ratio, 6.0));
    lut[diff + 255] = static_cast<std::uint8_t>(std::lround(w));
  }
  return lut;
}

std::vector<std::uint8_t> make_image(std::uint64_t seed) {
  // Blocky image with step edges — gives SUSAN real corners and edges.
  support::Xoshiro256 rng(seed ^ 0x5A5A);
  std::vector<std::uint8_t> img(kW * kH);
  std::uint8_t tiles[3][3];
  for (auto& row : tiles) {
    for (auto& v : row) v = static_cast<std::uint8_t>(rng.below(256));
  }
  for (std::uint32_t y = 0; y < kH; ++y) {
    for (std::uint32_t x = 0; x < kW; ++x) {
      const std::uint8_t base = tiles[y / 8][x / 8];
      const auto noise = static_cast<std::uint8_t>(rng.below(8));
      img[y * kW + x] = static_cast<std::uint8_t>((base + noise) & 0xff);
    }
  }
  return img;
}

constexpr int kNeighborOffsets[8][2] = {
    {-1, -1}, {-1, 0}, {-1, 1}, {0, -1}, {0, 1}, {1, -1}, {1, 0}, {1, 1},
};

std::vector<std::uint8_t> host_susan(std::uint64_t seed, SusanMode mode) {
  const auto img = make_image(seed);
  const SusanParams p = params_for(mode);
  const auto lut = make_lut(p.t);
  std::vector<std::uint8_t> out =
      mode == SusanMode::kSmoothing ? img
                                    : std::vector<std::uint8_t>(kW * kH, 0);
  for (std::uint32_t y = 1; y + 1 < kH; ++y) {
    for (std::uint32_t x = 1; x + 1 < kW; ++x) {
      const std::int32_t center = img[y * kW + x];
      std::uint32_t num = 0;
      std::uint32_t den = 0;
      std::uint32_t usan = 0;
      for (const auto& d : kNeighborOffsets) {
        const std::int32_t value =
            img[(y + static_cast<std::uint32_t>(d[0])) * kW + x +
                static_cast<std::uint32_t>(d[1])];
        const std::uint8_t w = lut[value - center + 255];
        num += static_cast<std::uint32_t>(w) *
               static_cast<std::uint32_t>(value);
        den += w;
        usan += w;
      }
      std::uint32_t result;
      if (mode == SusanMode::kSmoothing) {
        result = den == 0 ? 0 : num / den;
      } else {
        result = usan < p.geometric ? p.geometric - usan : 0;
        if (result > 255) result = 255;
      }
      out[y * kW + x] = static_cast<std::uint8_t>(result);
    }
  }
  return out;
}

isa::Program build_susan_program(std::uint64_t seed, SusanMode mode) {
  const SusanParams p = params_for(mode);
  Assembler a(sim::kUserBase);
  Label report = a.make_label();
  Label img = a.make_label();
  Label lut = a.make_label();
  Label out = a.make_label();

  a.load_label(Reg::r2, img);
  a.load_label(Reg::r3, lut);
  a.load_label(Reg::r4, out);
  a.movi(Reg::r5, 1);  // y
  Label yloop = a.make_label();
  a.bind(yloop);
  a.movi(Reg::r6, 1);  // x
  Label xloop = a.make_label();
  a.bind(xloop);
  // r10 = y*W + x, r11 = &img[y*W+x]
  a.movi(Reg::r0, kW);
  a.mul(Reg::r10, Reg::r5, Reg::r0);
  a.add(Reg::r10, Reg::r10, Reg::r6);
  a.add(Reg::r11, Reg::r2, Reg::r10);
  a.ldrb(Reg::r7, Reg::r11, 0);  // center
  a.movi(Reg::r8, 0);            // num / usan
  a.movi(Reg::r9, 0);            // den
  for (const auto& d : kNeighborOffsets) {
    const std::int32_t off = d[0] * static_cast<std::int32_t>(kW) + d[1];
    a.ldrb(Reg::r0, Reg::r11, off);
    a.sub(Reg::r1, Reg::r0, Reg::r7);
    a.addi(Reg::r1, Reg::r1, 255);
    a.add(Reg::r1, Reg::r3, Reg::r1);
    a.ldrb(Reg::r1, Reg::r1, 0);  // w
    if (mode == SusanMode::kSmoothing) {
      a.mul(Reg::r12, Reg::r1, Reg::r0);
      a.add(Reg::r8, Reg::r8, Reg::r12);
      a.add(Reg::r9, Reg::r9, Reg::r1);
    } else {
      a.add(Reg::r8, Reg::r8, Reg::r1);
    }
  }
  if (mode == SusanMode::kSmoothing) {
    a.udiv(Reg::r12, Reg::r8, Reg::r9);  // den==0 divides to 0 (matches host)
  } else {
    Label zero = a.make_label();
    Label clamp = a.make_label();
    Label store = a.make_label();
    a.cmpi(Reg::r8, static_cast<std::int32_t>(p.geometric));
    a.b(Cond::cs, zero);
    a.movi(Reg::r12, p.geometric);
    a.sub(Reg::r12, Reg::r12, Reg::r8);
    a.b(clamp);
    a.bind(zero);
    a.movi(Reg::r12, 0);
    a.bind(clamp);
    a.cmpi(Reg::r12, 255);
    a.b(Cond::ls, store);
    a.movi(Reg::r12, 255);
    a.bind(store);
  }
  a.add(Reg::r0, Reg::r4, Reg::r10);
  a.strb(Reg::r12, Reg::r0, 0);
  a.addi(Reg::r6, Reg::r6, 1);
  a.cmpi(Reg::r6, kW - 1);
  a.b(Cond::lt, xloop);
  a.addi(Reg::r5, Reg::r5, 1);
  a.cmpi(Reg::r5, kH - 1);
  a.b(Cond::lt, yloop);

  a.load_label(Reg::r0, out);
  a.mov_imm32(Reg::r1, kW * kH);
  a.b(report);

  emit_report_routine(a, report);

  a.align(4);
  a.bind(img);
  a.bytes(make_image(seed));
  a.bind(lut);
  a.bytes(make_lut(p.t));
  a.align(4);
  a.bind(out);
  if (mode == SusanMode::kSmoothing) {
    a.bytes(make_image(seed));  // borders keep original pixels
  } else {
    a.zero(kW * kH);
  }
  return a.finish();
}

class SusanWorkload final : public BasicWorkload {
 public:
  SusanWorkload(SusanMode mode, WorkloadInfo info)
      : BasicWorkload(std::move(info)), mode_(mode) {}
  isa::Program build(std::uint64_t seed) const override {
    return build_susan_program(seed, mode_);
  }
  std::string expected_console(std::uint64_t seed) const override {
    return report_string(host_susan(seed, mode_));
  }

 private:
  SusanMode mode_;
};

}  // namespace

const Workload& susan_c_workload() {
  static const SusanWorkload instance(
      SusanMode::kCorners, {"SusanC", "24x24 pixels grayscale",
                            "CPU intensive", "76x95 pixels, 7.3 KB"});
  return instance;
}

const Workload& susan_e_workload() {
  static const SusanWorkload instance(
      SusanMode::kEdges, {"SusanE", "24x24 pixels grayscale",
                          "CPU intensive", "76x95 pixels, 7.3 KB"});
  return instance;
}

const Workload& susan_s_workload() {
  static const SusanWorkload instance(
      SusanMode::kSmoothing, {"SusanS", "24x24 pixels grayscale",
                              "CPU intensive", "76x95 pixels, 7.3 KB"});
  return instance;
}

}  // namespace sefi::workloads::detail
