// Dijkstra (MiBench network/dijkstra): repeated single-source shortest
// path over a dense adjacency matrix. Control + memory intensive, small
// input — one of the paper's kernel-resident cache cases.
#include "common.hpp"

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kN = 20;       // nodes
constexpr std::uint32_t kQueries = 8;  // shortest-path queries
constexpr std::uint32_t kInf = 0x0FFFFFFF;
constexpr std::uint32_t kInfPlus = 0x10000000;

/// Adjacency matrix: weight 1..9 with ~1/6 of entries absent (0); no
/// self-edges.
std::vector<std::uint32_t> make_graph(std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::vector<std::uint32_t> adj(kN * kN);
  for (std::uint32_t i = 0; i < kN; ++i) {
    for (std::uint32_t j = 0; j < kN; ++j) {
      if (i == j) {
        adj[i * kN + j] = 0;
        continue;
      }
      const std::uint32_t roll = static_cast<std::uint32_t>(rng.below(12));
      adj[i * kN + j] = roll >= 10 ? 0 : 1 + roll % 9;
    }
  }
  return adj;
}

std::vector<std::uint32_t> host_dijkstra(
    const std::vector<std::uint32_t>& adj) {
  std::vector<std::uint32_t> out(kQueries);
  for (std::uint32_t q = 0; q < kQueries; ++q) {
    const std::uint32_t src = q;
    const std::uint32_t dst = (q * 7 + 3) % kN;
    std::vector<std::uint32_t> dist(kN, kInf);
    std::vector<std::uint32_t> visited(kN, 0);
    dist[src] = 0;
    for (std::uint32_t it = 0; it < kN; ++it) {
      std::uint32_t best = kInfPlus;
      std::uint32_t u = 0;
      for (std::uint32_t i = 0; i < kN; ++i) {
        if (!visited[i] && dist[i] < best) {
          best = dist[i];
          u = i;
        }
      }
      visited[u] = 1;
      for (std::uint32_t v = 0; v < kN; ++v) {
        const std::uint32_t w = adj[u * kN + v];
        if (w != 0 && best + w < dist[v]) dist[v] = best + w;
      }
    }
    out[q] = dist[dst];
  }
  return out;
}

class DijkstraWorkload final : public BasicWorkload {
 public:
  DijkstraWorkload()
      : BasicWorkload({
            "Dijkstra",
            "20x20 integer adjacency matrix, 8 paths",
            "Control intensive, memory intensive",
            "100x100 integer adjacency matrix, 100 paths",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label adj = a.make_label();
    Label dist = a.make_label();
    Label vis = a.make_label();
    Label out = a.make_label();

    a.load_label(Reg::r2, adj);
    a.load_label(Reg::r3, dist);
    a.load_label(Reg::r4, vis);
    a.load_label(Reg::r5, out);
    a.movi(Reg::r12, 0);  // q
    Label qloop = a.make_label();
    a.bind(qloop);
    // src = q; dst = (q*7 + 3) % N
    a.mov(Reg::r11, Reg::r12);
    a.movi(Reg::r0, 7);
    a.mul(Reg::r0, Reg::r12, Reg::r0);
    a.addi(Reg::r0, Reg::r0, 3);
    a.movi(Reg::r1, kN);
    a.udiv(Reg::r6, Reg::r0, Reg::r1);
    a.mul(Reg::r6, Reg::r6, Reg::r1);
    a.sub(Reg::r6, Reg::r0, Reg::r6);  // dst

    // init dist[i]=INF, vis[i]=0
    a.movi(Reg::r7, 0);
    {
      Label init = a.make_label();
      a.bind(init);
      a.lsli(Reg::r8, Reg::r7, 2);
      a.mov_imm32(Reg::r9, kInf);
      a.strr(Reg::r9, Reg::r3, Reg::r8);
      a.movi(Reg::r9, 0);
      a.strr(Reg::r9, Reg::r4, Reg::r8);
      a.addi(Reg::r7, Reg::r7, 1);
      a.cmpi(Reg::r7, kN);
      a.b(Cond::lt, init);
    }
    a.lsli(Reg::r8, Reg::r11, 2);
    a.movi(Reg::r9, 0);
    a.strr(Reg::r9, Reg::r3, Reg::r8);  // dist[src] = 0

    a.movi(Reg::ip, kN);  // main iteration counter
    Label iter = a.make_label();
    a.bind(iter);
    // argmin over unvisited
    a.mov_imm32(Reg::r8, kInfPlus);  // best
    a.movi(Reg::r9, 0);              // u
    a.movi(Reg::r7, 0);              // i
    {
      Label scan = a.make_label();
      Label next = a.make_label();
      a.bind(scan);
      a.lsli(Reg::r0, Reg::r7, 2);
      a.ldrr(Reg::r1, Reg::r4, Reg::r0);
      a.cmpi(Reg::r1, 0);
      a.b(Cond::ne, next);
      a.ldrr(Reg::r1, Reg::r3, Reg::r0);
      a.cmp(Reg::r1, Reg::r8);
      a.b(Cond::cs, next);
      a.mov(Reg::r8, Reg::r1);
      a.mov(Reg::r9, Reg::r7);
      a.bind(next);
      a.addi(Reg::r7, Reg::r7, 1);
      a.cmpi(Reg::r7, kN);
      a.b(Cond::lt, scan);
    }
    a.lsli(Reg::r0, Reg::r9, 2);
    a.movi(Reg::r1, 1);
    a.strr(Reg::r1, Reg::r4, Reg::r0);  // vis[u] = 1
    // relax edges out of u (r8 = dist[u])
    a.movi(Reg::r0, kN * 4);
    a.mul(Reg::r0, Reg::r9, Reg::r0);
    a.add(Reg::r0, Reg::r2, Reg::r0);  // row pointer
    a.movi(Reg::r7, 0);                // v
    {
      Label relax = a.make_label();
      Label next = a.make_label();
      a.bind(relax);
      a.lsli(Reg::r1, Reg::r7, 2);
      a.ldrr(Reg::lr, Reg::r0, Reg::r1);  // w
      a.cmpi(Reg::lr, 0);
      a.b(Cond::eq, next);
      a.add(Reg::lr, Reg::lr, Reg::r8);   // alt
      a.ldrr(Reg::r9, Reg::r3, Reg::r1);  // dist[v]
      a.cmp(Reg::lr, Reg::r9);
      a.b(Cond::cs, next);
      a.strr(Reg::lr, Reg::r3, Reg::r1);
      a.bind(next);
      a.addi(Reg::r7, Reg::r7, 1);
      a.cmpi(Reg::r7, kN);
      a.b(Cond::lt, relax);
    }
    a.subi(Reg::ip, Reg::ip, 1);
    a.cmpi(Reg::ip, 0);
    a.b(Cond::ne, iter);

    // out[q] = dist[dst]
    a.lsli(Reg::r0, Reg::r6, 2);
    a.ldrr(Reg::r1, Reg::r3, Reg::r0);
    a.lsli(Reg::r0, Reg::r12, 2);
    a.strr(Reg::r1, Reg::r5, Reg::r0);
    a.addi(Reg::r12, Reg::r12, 1);
    a.cmpi(Reg::r12, kQueries);
    a.b(Cond::lt, qloop);

    a.load_label(Reg::r0, out);
    a.movi(Reg::r1, kQueries * 4);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(adj);
    a.bytes(words_to_bytes(make_graph(seed)));
    a.bind(dist);
    a.zero(kN * 4);
    a.bind(vis);
    a.zero(kN * 4);
    a.bind(out);
    a.zero(kQueries * 4);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    const auto result = host_dijkstra(make_graph(seed));
    return report_string(words_to_bytes(result));
  }
};

}  // namespace

const Workload& dijkstra_workload() {
  static const DijkstraWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
