// ADPCM (MiBench telecomm/adpcm, extended suite): IMA-style 4-bit ADPCM
// encoding of a 16-bit waveform. Control intensive with a serial
// predictor-state dependency chain — a profile none of the paper's 13
// cover exactly.
//
// The step-size table is generated (geometric growth like IMA's) rather
// than copied from the standard; guest and host share it, so outputs
// agree exactly while the algorithmic structure matches the codec.
#include "common.hpp"

#include <cmath>

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kSamples = 768;
constexpr std::uint32_t kSteps = 89;

const std::vector<std::uint32_t>& step_table() {
  static const auto table = [] {
    std::vector<std::uint32_t> steps(kSteps);
    double step = 7.0;
    for (auto& s : steps) {
      s = static_cast<std::uint32_t>(step);
      step = std::min(32767.0, step * 1.1 + 1.0);
    }
    return steps;
  }();
  return table;
}

constexpr std::int32_t kIndexTable[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

/// Input waveform: a noisy chirp, serialized as signed 16-bit samples.
std::vector<std::int32_t> make_samples(std::uint64_t seed) {
  support::Xoshiro256 rng(seed ^ 0xADCC);
  std::vector<std::int32_t> samples(kSamples);
  double phase = 0;
  for (std::uint32_t i = 0; i < kSamples; ++i) {
    phase += 0.05 + 0.0002 * i;
    const double wave = 12000.0 * std::sin(phase);
    const double noise = static_cast<double>(rng.below(2048)) - 1024.0;
    samples[i] = static_cast<std::int32_t>(wave + noise);
  }
  return samples;
}

std::vector<std::uint8_t> host_encode(std::uint64_t seed) {
  const auto samples = make_samples(seed);
  const auto& steps = step_table();
  std::vector<std::uint8_t> out(kSamples / 2);
  std::int32_t predicted = 0;
  std::int32_t index = 0;
  for (std::uint32_t i = 0; i < kSamples; ++i) {
    const auto step = static_cast<std::int32_t>(steps[index]);
    std::int32_t diff = samples[i] - predicted;
    std::uint32_t code = 0;
    if (diff < 0) {
      code = 8;
      diff = -diff;
    }
    std::int32_t vpdiff = step >> 3;
    if (diff >= step) {
      code |= 4;
      diff -= step;
      vpdiff += step;
    }
    if (diff >= step >> 1) {
      code |= 2;
      diff -= step >> 1;
      vpdiff += step >> 1;
    }
    if (diff >= step >> 2) {
      code |= 1;
      vpdiff += step >> 2;
    }
    predicted += (code & 8) ? -vpdiff : vpdiff;
    if (predicted > 32767) predicted = 32767;
    if (predicted < -32768) predicted = -32768;
    index += kIndexTable[code & 7];
    if (index < 0) index = 0;
    if (index >= static_cast<std::int32_t>(kSteps)) index = kSteps - 1;
    if (i % 2 == 0) {
      out[i / 2] = static_cast<std::uint8_t>(code);
    } else {
      out[i / 2] |= static_cast<std::uint8_t>(code << 4);
    }
  }
  return out;
}

class AdpcmWorkload final : public BasicWorkload {
 public:
  AdpcmWorkload()
      : BasicWorkload({
            "Adpcm",
            "768-sample 16-bit chirp, IMA-style 4-bit encode",
            "Control intensive (extended suite)",
            "MiBench telecomm/adpcm PCM input",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label samples = a.make_label();
    Label steps = a.make_label();
    Label idx_tbl = a.make_label();
    Label out = a.make_label();

    a.load_label(Reg::r2, samples);
    a.load_label(Reg::r3, steps);
    a.load_label(Reg::r4, idx_tbl);
    a.load_label(Reg::r5, out);
    a.movi(Reg::r8, 0);   // predicted
    a.movi(Reg::r9, 0);   // index
    a.movi(Reg::ip, 0);   // sample counter

    Label loop = a.make_label();
    a.bind(loop);
    // step (r10) = steps[index]
    a.lsli(Reg::r0, Reg::r9, 2);
    a.ldrr(Reg::r10, Reg::r3, Reg::r0);
    // diff (r6) = samples[i] - predicted; code (r7)
    a.lsli(Reg::r0, Reg::ip, 2);
    a.ldrr(Reg::r6, Reg::r2, Reg::r0);
    a.sub(Reg::r6, Reg::r6, Reg::r8);
    a.movi(Reg::r7, 0);
    {
      Label positive = a.make_label();
      a.cmpi(Reg::r6, 0);
      a.b(Cond::ge, positive);
      a.movi(Reg::r7, 8);
      a.movi(Reg::r0, 0);
      a.sub(Reg::r6, Reg::r0, Reg::r6);
      a.bind(positive);
    }
    // vpdiff (r11) = step >> 3
    a.asri(Reg::r11, Reg::r10, 3);
    {
      Label skip = a.make_label();
      a.cmp(Reg::r6, Reg::r10);
      a.b(Cond::lt, skip);
      a.orri(Reg::r7, Reg::r7, 4);
      a.sub(Reg::r6, Reg::r6, Reg::r10);
      a.add(Reg::r11, Reg::r11, Reg::r10);
      a.bind(skip);
    }
    a.asri(Reg::r1, Reg::r10, 1);
    {
      Label skip = a.make_label();
      a.cmp(Reg::r6, Reg::r1);
      a.b(Cond::lt, skip);
      a.orri(Reg::r7, Reg::r7, 2);
      a.sub(Reg::r6, Reg::r6, Reg::r1);
      a.add(Reg::r11, Reg::r11, Reg::r1);
      a.bind(skip);
    }
    a.asri(Reg::r1, Reg::r10, 2);
    {
      Label skip = a.make_label();
      a.cmp(Reg::r6, Reg::r1);
      a.b(Cond::lt, skip);
      a.orri(Reg::r7, Reg::r7, 1);
      a.add(Reg::r11, Reg::r11, Reg::r1);
      a.bind(skip);
    }
    // predicted += sign ? -vpdiff : vpdiff; clamp to int16
    {
      Label negative = a.make_label();
      Label done = a.make_label();
      a.andi(Reg::r0, Reg::r7, 8);
      a.cmpi(Reg::r0, 0);
      a.b(Cond::ne, negative);
      a.add(Reg::r8, Reg::r8, Reg::r11);
      a.b(done);
      a.bind(negative);
      a.sub(Reg::r8, Reg::r8, Reg::r11);
      a.bind(done);
    }
    {
      Label no_high = a.make_label();
      Label no_low = a.make_label();
      a.mov_imm32(Reg::r0, 32767);
      a.cmp(Reg::r8, Reg::r0);
      a.b(Cond::le, no_high);
      a.mov(Reg::r8, Reg::r0);
      a.bind(no_high);
      a.mov_imm32(Reg::r0, static_cast<std::uint32_t>(-32768));
      a.cmp(Reg::r8, Reg::r0);
      a.b(Cond::ge, no_low);
      a.mov(Reg::r8, Reg::r0);
      a.bind(no_low);
    }
    // index += idx_tbl[code & 7]; clamp to [0, kSteps)
    a.andi(Reg::r0, Reg::r7, 7);
    a.lsli(Reg::r0, Reg::r0, 2);
    a.ldrr(Reg::r0, Reg::r4, Reg::r0);
    a.add(Reg::r9, Reg::r9, Reg::r0);
    {
      Label no_low = a.make_label();
      Label no_high = a.make_label();
      a.cmpi(Reg::r9, 0);
      a.b(Cond::ge, no_low);
      a.movi(Reg::r9, 0);
      a.bind(no_low);
      a.cmpi(Reg::r9, kSteps - 1);
      a.b(Cond::le, no_high);
      a.movi(Reg::r9, kSteps - 1);
      a.bind(no_high);
    }
    // Pack the nibble into out[i/2].
    {
      Label odd = a.make_label();
      Label packed = a.make_label();
      a.lsri(Reg::r0, Reg::ip, 1);
      a.add(Reg::r0, Reg::r5, Reg::r0);
      a.andi(Reg::r1, Reg::ip, 1);
      a.cmpi(Reg::r1, 0);
      a.b(Cond::ne, odd);
      a.strb(Reg::r7, Reg::r0, 0);
      a.b(packed);
      a.bind(odd);
      a.ldrb(Reg::r1, Reg::r0, 0);
      a.lsli(Reg::r6, Reg::r7, 4);
      a.orr(Reg::r1, Reg::r1, Reg::r6);
      a.strb(Reg::r1, Reg::r0, 0);
      a.bind(packed);
    }
    a.addi(Reg::ip, Reg::ip, 1);
    a.cmpi(Reg::ip, kSamples);
    a.b(Cond::lt, loop);

    a.load_label(Reg::r0, out);
    a.mov_imm32(Reg::r1, kSamples / 2);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(samples);
    {
      std::vector<std::uint32_t> words;
      for (const std::int32_t s : make_samples(seed)) {
        words.push_back(static_cast<std::uint32_t>(s));
      }
      a.bytes(words_to_bytes(words));
    }
    a.bind(steps);
    a.bytes(words_to_bytes(step_table()));
    a.bind(idx_tbl);
    {
      std::vector<std::uint32_t> words;
      for (const std::int32_t v : kIndexTable) {
        words.push_back(static_cast<std::uint32_t>(v));
      }
      a.bytes(words_to_bytes(words));
    }
    a.align(4);
    a.bind(out);
    a.zero(kSamples / 2);
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    return report_string(host_encode(seed));
  }
};

}  // namespace

const Workload& adpcm_workload() {
  static const AdpcmWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
