// FFT (MiBench telecomm/FFT): radix-2 iterative Cooley-Tukey over a
// 256-point complex single-precision signal. Memory intensive with
// strided access and floating-point heavy — register-file sensitive.
//
// The input array is emitted in bit-reversed order by the host (the guest
// performs only the butterfly passes), and the twiddle table is
// precomputed host-side; both sides execute the identical sequence of
// float operations, so the fault-free guest output matches the host
// mirror bit for bit.
#include "common.hpp"

#include <cmath>

namespace sefi::workloads::detail {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr std::uint32_t kN = 256;       // complex points
constexpr std::uint32_t kLog2N = 8;

std::uint32_t bit_reverse(std::uint32_t value, unsigned bits) {
  std::uint32_t out = 0;
  for (unsigned i = 0; i < bits; ++i) {
    out = (out << 1) | ((value >> i) & 1);
  }
  return out;
}

/// Interleaved (re, im) input signal, already bit-reverse permuted.
std::vector<float> make_input(std::uint64_t seed) {
  const auto samples = random_floats(seed, kN * 2, -1.0f, 1.0f);
  std::vector<float> data(kN * 2);
  for (std::uint32_t i = 0; i < kN; ++i) {
    const std::uint32_t j = bit_reverse(i, kLog2N);
    data[2 * j] = samples[2 * i];
    data[2 * j + 1] = samples[2 * i + 1];
  }
  return data;
}

/// Twiddles w_k = exp(-2*pi*i*k/N) for k in [0, N/2).
std::vector<float> make_twiddles() {
  std::vector<float> tw(kN);
  for (std::uint32_t k = 0; k < kN / 2; ++k) {
    const double angle = -2.0 * 3.14159265358979323846 * k / kN;
    tw[2 * k] = static_cast<float>(std::cos(angle));
    tw[2 * k + 1] = static_cast<float>(std::sin(angle));
  }
  return tw;
}

/// Host mirror of the guest's butterfly passes (identical op order).
std::vector<float> host_fft(std::uint64_t seed) {
  std::vector<float> a = make_input(seed);
  const std::vector<float> tw = make_twiddles();
  for (std::uint32_t half = 1, step = kN / 2; half < kN;
       half <<= 1, step >>= 1) {
    for (std::uint32_t i = 0; i < kN; i += 2 * half) {
      for (std::uint32_t j = 0; j < half; ++j) {
        const std::uint32_t p1 = 2 * (i + j);
        const std::uint32_t p2 = p1 + 2 * half;
        const float wr = tw[2 * (j * step)];
        const float wi = tw[2 * (j * step) + 1];
        const float ur = a[p1], ui = a[p1 + 1];
        const float vr = a[p2], vi = a[p2 + 1];
        const float t_rm = vr * wi;        // matches guest op order
        const float t_rr = vr * wr;
        const float t_ir = vi * wr;
        const float t_ii = vi * wi;
        const float tr = t_rr - t_ii;
        const float ti = t_rm + t_ir;
        a[p1] = ur + tr;
        a[p1 + 1] = ui + ti;
        a[p2] = ur - tr;
        a[p2 + 1] = ui - ti;
      }
    }
  }
  return a;
}

class FftWorkload final : public BasicWorkload {
 public:
  FftWorkload()
      : BasicWorkload({
            "FFT",
            "256-point complex single-precision array",
            "Memory intensive",
            "single floating point array with 32768 elements",
        }) {}

  isa::Program build(std::uint64_t seed) const override {
    Assembler a(sim::kUserBase);
    Label report = a.make_label();
    Label data = a.make_label();
    Label twiddle = a.make_label();

    a.load_label(Reg::r2, data);
    a.load_label(Reg::r3, twiddle);
    a.movi(Reg::r4, 1);        // half
    a.movi(Reg::r6, kN / 2);   // step

    Label stage = a.make_label();
    a.bind(stage);
    a.movi(Reg::r7, 0);  // i
    Label iloop = a.make_label();
    a.bind(iloop);
    a.movi(Reg::r8, 0);  // j
    Label jloop = a.make_label();
    a.bind(jloop);
    // p1 = data + (i+j)*8 ; p2 = p1 + half*8
    a.add(Reg::r9, Reg::r7, Reg::r8);
    a.lsli(Reg::r9, Reg::r9, 3);
    a.add(Reg::r9, Reg::r2, Reg::r9);
    a.lsli(Reg::r10, Reg::r4, 3);
    a.add(Reg::r10, Reg::r9, Reg::r10);
    // u, v
    a.ldr(Reg::r11, Reg::r9, 0);   // ur
    a.ldr(Reg::r12, Reg::r9, 4);   // ui
    a.ldr(Reg::r0, Reg::r10, 0);   // vr
    a.ldr(Reg::r1, Reg::r10, 4);   // vi
    // twiddle pointer: tw + (j*step)*8
    a.mul(Reg::lr, Reg::r8, Reg::r6);
    a.lsli(Reg::lr, Reg::lr, 3);
    a.add(Reg::lr, Reg::r3, Reg::lr);
    a.ldr(Reg::ip, Reg::lr, 0);    // wr
    a.ldr(Reg::lr, Reg::lr, 4);    // wi
    // t = v * w (complex), overwriting operands as they die
    a.fmul(Reg::r5, Reg::r0, Reg::lr);   // vr*wi
    a.fmul(Reg::r0, Reg::r0, Reg::ip);   // vr*wr
    a.fmul(Reg::ip, Reg::r1, Reg::ip);   // vi*wr
    a.fmul(Reg::r1, Reg::r1, Reg::lr);   // vi*wi
    a.fsub(Reg::r0, Reg::r0, Reg::r1);   // tr
    a.fadd(Reg::r1, Reg::r5, Reg::ip);   // ti
    // a[p1] = u + t; a[p2] = u - t
    a.fadd(Reg::r5, Reg::r11, Reg::r0);
    a.str(Reg::r5, Reg::r9, 0);
    a.fadd(Reg::r5, Reg::r12, Reg::r1);
    a.str(Reg::r5, Reg::r9, 4);
    a.fsub(Reg::r5, Reg::r11, Reg::r0);
    a.str(Reg::r5, Reg::r10, 0);
    a.fsub(Reg::r5, Reg::r12, Reg::r1);
    a.str(Reg::r5, Reg::r10, 4);

    a.addi(Reg::r8, Reg::r8, 1);
    a.cmp(Reg::r8, Reg::r4);
    a.b(Cond::lt, jloop);
    // i += 2*half
    a.lsli(Reg::r5, Reg::r4, 1);
    a.add(Reg::r7, Reg::r7, Reg::r5);
    a.cmpi(Reg::r7, kN);
    a.b(Cond::lt, iloop);
    // next stage: half <<= 1, step >>= 1
    a.lsli(Reg::r4, Reg::r4, 1);
    a.lsri(Reg::r6, Reg::r6, 1);
    a.cmpi(Reg::r4, kN);
    a.b(Cond::lt, stage);

    a.load_label(Reg::r0, data);
    a.mov_imm32(Reg::r1, kN * 8);
    a.b(report);

    emit_report_routine(a, report);

    a.align(4);
    a.bind(data);
    a.bytes(floats_to_bytes(make_input(seed)));
    a.bind(twiddle);
    a.bytes(floats_to_bytes(make_twiddles()));
    return a.finish();
  }

  std::string expected_console(std::uint64_t seed) const override {
    return report_string(floats_to_bytes(host_fft(seed)));
  }
};

}  // namespace

const Workload& fft_workload() {
  static const FftWorkload instance;
  return instance;
}

}  // namespace sefi::workloads::detail
