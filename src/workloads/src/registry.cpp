#include "sefi/workloads/workload.hpp"

#include "common.hpp"
#include "sefi/support/error.hpp"

namespace sefi::workloads {

const std::vector<const Workload*>& all_workloads() {
  static const std::vector<const Workload*> kAll = {
      &detail::crc32_workload(),      &detail::dijkstra_workload(),
      &detail::fft_workload(),        &detail::jpeg_c_workload(),
      &detail::jpeg_d_workload(),     &detail::matmul_workload(),
      &detail::qsort_workload(),      &detail::rijndael_e_workload(),
      &detail::rijndael_d_workload(), &detail::stringsearch_workload(),
      &detail::susan_c_workload(),    &detail::susan_e_workload(),
      &detail::susan_s_workload(),
  };
  return kAll;
}

const std::vector<const Workload*>& extended_workloads() {
  static const std::vector<const Workload*> kExtended = {
      &detail::sha_workload(),
      &detail::bitcount_workload(),
      &detail::adpcm_workload(),
      &detail::basicmath_workload(),
  };
  return kExtended;
}

const Workload& workload_by_name(const std::string& name) {
  for (const Workload* w : all_workloads()) {
    if (w->info().name == name) return *w;
  }
  for (const Workload* w : extended_workloads()) {
    if (w->info().name == name) return *w;
  }
  if (l1_pattern_workload().info().name == name) {
    return l1_pattern_workload();
  }
  throw support::SefiError("workload_by_name: unknown workload " + name);
}

const Workload& l1_pattern_workload() {
  return detail::l1_pattern_workload_impl();
}

}  // namespace sefi::workloads
