// Benchmark workloads (the paper's Table III suite).
//
// Each workload is the same *algorithm* as its MiBench counterpart,
// implemented as a SEFI-A9 guest program via the assembler builder API,
// with inputs scaled so a run costs tens of thousands of guest
// instructions instead of billions (DESIGN.md §2 documents the
// substitution). Inputs are generated deterministically from a seed; the
// same seed drives both assessment setups, mirroring the paper's
// fixed-input-vector methodology (§IV-A).
//
// Every workload also carries a host-side C++ mirror of its computation:
// expected_console(seed) returns the output a fault-free guest run must
// produce. The test suite uses it to validate the whole simulator stack,
// and the campaign code uses it as a cheap golden oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sefi/isa/assembler.hpp"

namespace sefi::workloads {

/// Table III metadata.
struct WorkloadInfo {
  std::string name;             ///< e.g. "CRC32"
  std::string input;            ///< scaled input description
  std::string characteristics;  ///< e.g. "CPU intensive"
  std::string paper_input;      ///< the paper's original input column
};

/// Default input seed: campaigns use one fixed input vector, like the
/// paper (same values and size in both beam and fault injection).
inline constexpr std::uint64_t kDefaultInputSeed = 0x5EF1;

/// Stack top handed to every workload (2 MB, the kernel's mapped limit).
inline constexpr std::uint32_t kWorkloadStackTop = 0x0020'0000;

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const WorkloadInfo& info() const = 0;

  /// Builds the guest program (code + embedded input data) for `seed`.
  virtual isa::Program build(std::uint64_t seed) const = 0;

  /// Host-computed fault-free console output for `seed`.
  virtual std::string expected_console(std::uint64_t seed) const = 0;
};

/// The 13 benchmarks, in the paper's Figure 3 order:
/// CRC32, Dijkstra, FFT, JpegC, JpegD, MatMul, Qsort, RijndaelE,
/// RijndaelD, StringSearch, SusanC, SusanE, SusanS.
const std::vector<const Workload*>& all_workloads();

/// Extended suite: additional MiBench-style kernels beyond the paper's 13
/// (SHA-1, BitCount, ADPCM encode, BasicMath subset). Not part of the figure reproductions; available for
/// user studies and the examples.
const std::vector<const Workload*>& extended_workloads();

/// Lookup by Table III name; throws SefiError if unknown.
const Workload& workload_by_name(const std::string& name);

/// The L1-cache pattern micro-benchmark used to measure the raw per-bit
/// FIT under beam (§VI): fills a cache-sized buffer with a pattern and
/// repeatedly verifies it, reporting the mismatch count.
const Workload& l1_pattern_workload();

/// Size in bytes of the pattern buffer tested by l1_pattern_workload()
/// (the denominator of the FIT_raw-per-bit calibration).
std::uint32_t l1_pattern_buffer_bytes();

}  // namespace sefi::workloads
