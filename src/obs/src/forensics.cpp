#include "sefi/obs/forensics.hpp"

#include <filesystem>
#include <memory>

#include "sefi/support/env.hpp"

namespace sefi::obs {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
}

void append_field(std::string& out, const char* key,
                  const std::string& value) {
  out += '"';
  out += key;
  out += "\":\"";
  append_escaped(out, value);
  out += '"';
}

void append_field(std::string& out, const char* key, std::uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

void append_field(std::string& out, const char* key, bool value) {
  out += '"';
  out += key;
  out += "\":";
  out += value ? "true" : "false";
}

}  // namespace

ForensicsSink::ForensicsSink(std::string path) : path_(std::move(path)) {
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  file_ = std::fopen(path_.c_str(), "ab");
}

ForensicsSink::~ForensicsSink() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
}

bool ForensicsSink::write(const Record& record) {
  std::string line = "{";
  append_field(line, "workload", record.workload);
  line += ',';
  append_field(line, "component", record.component);
  line += ',';
  append_field(line, "set", static_cast<std::uint64_t>(record.set));
  line += ',';
  append_field(line, "way", static_cast<std::uint64_t>(record.way));
  line += ',';
  append_field(line, "bit", static_cast<std::uint64_t>(record.bit));
  line += ',';
  append_field(line, "field", record.field);
  line += ',';
  append_field(line, "flat_bit", record.flat_bit);
  line += ',';
  append_field(line, "injection_cycle", record.injection_cycle);
  line += ',';
  append_field(line, "activated", record.activated);
  line += ',';
  append_field(line, "first_activation_cycle",
               record.first_activation_cycle);
  line += ',';
  append_field(line, "arch_propagated", record.arch_propagated);
  line += ',';
  append_field(line, "verdict", record.verdict);
  line += ',';
  append_field(line, "latency_to_verdict_cycles",
               record.latency_to_verdict_cycles);
  line += ',';
  append_field(line, "replayed", record.replayed);
  line += ',';
  append_field(line, "pruned", record.pruned);
  line += "}\n";

  const std::lock_guard<std::mutex> lock(mutex_);
  if (file_ == nullptr) return false;
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), file_) == line.size() &&
      std::fflush(file_) == 0;
  if (ok) ++records_;
  return ok;
}

std::uint64_t ForensicsSink::records_written() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

namespace {

std::unique_ptr<ForensicsSink>& global_sink() {
  static std::unique_ptr<ForensicsSink> sink = [] {
    if (!support::env::flag("SEFI_TRACE", false)) {
      return std::unique_ptr<ForensicsSink>();
    }
    return std::make_unique<ForensicsSink>(
        support::env::str("SEFI_FORENSICS_FILE", "sefi_forensics.jsonl"));
  }();
  return sink;
}

}  // namespace

ForensicsSink* ForensicsSink::global() { return global_sink().get(); }

void ForensicsSink::reopen_global(const std::string& path) {
  std::unique_ptr<ForensicsSink>& sink = global_sink();
  if (!sink) return;  // forensics disabled: stay disabled
  sink = std::make_unique<ForensicsSink>(path);
}

}  // namespace sefi::obs
