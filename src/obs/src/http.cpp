#include "sefi/obs/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

namespace sefi::obs {

namespace {

/// A request (headers included) larger than this is a client error —
/// the plane serves three fixed GET paths.
constexpr std::size_t kMaxRequestBytes = 8 * 1024;

/// Connections that have not completed a request/response cycle within
/// this window are dropped so a stuck client cannot pin a slot.
constexpr std::chrono::seconds kConnectionDeadline{5};

constexpr std::size_t kMaxConnections = 32;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

const char* status_text(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    default:
      return "Status";
  }
}

std::string render_response(const HttpResponse& response) {
  std::ostringstream os;
  os << "HTTP/1.1 " << response.status << " " << status_text(response.status)
     << "\r\n"
     << "Content-Type: " << response.content_type << "\r\n"
     << "Content-Length: " << response.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << response.body;
  return os.str();
}

/// Parses "GET /path HTTP/1.1" out of a complete header block.
bool parse_request_line(const std::string& in, HttpRequest& request) {
  const std::size_t eol = in.find("\r\n");
  if (eol == std::string::npos) return false;
  std::istringstream line(in.substr(0, eol));
  std::string version;
  if (!(line >> request.method >> request.path >> version)) return false;
  if (version.rfind("HTTP/", 0) != 0) return false;
  const std::size_t query = request.path.find('?');
  if (query != std::string::npos) request.path.resize(query);
  return !request.path.empty() && request.path[0] == '/';
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

bool HttpServer::start(std::uint16_t port) {
  if (running()) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }

  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return true;
}

void HttpServer::stop() {
  for (Connection& conn : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_ = 0;
}

void HttpServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (connections_.size() >= kMaxConnections) {
      ::close(fd);
      return;
    }
    Connection conn;
    conn.fd = fd;
    conn.deadline = std::chrono::steady_clock::now() + kConnectionDeadline;
    connections_.push_back(std::move(conn));
  }
}

bool HttpServer::advance(Connection& conn) {
  if (!conn.responding) {
    char buffer[2048];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        conn.in.append(buffer, static_cast<std::size_t>(n));
        if (conn.in.size() > kMaxRequestBytes) {
          HttpResponse overflow;
          overflow.status = 431;
          overflow.body = "request too large\n";
          conn.out = render_response(overflow);
          conn.responding = true;
          break;
        }
        continue;
      }
      if (n == 0) {  // client hung up before a full request
        ::close(conn.fd);
        conn.fd = -1;
        return false;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      ::close(conn.fd);
      conn.fd = -1;
      return false;
    }
    if (!conn.responding && conn.in.find("\r\n\r\n") != std::string::npos) {
      HttpRequest request;
      HttpResponse response;
      if (!parse_request_line(conn.in, request)) {
        response.status = 400;
        response.body = "bad request\n";
      } else if (request.method != "GET") {
        response.status = 405;
        response.body = "method not allowed\n";
      } else if (handler_) {
        response = handler_(request);
      } else {
        response.status = 404;
        response.body = "not found\n";
      }
      conn.out = render_response(response);
      conn.responding = true;
    }
  }

  if (conn.responding) {
    while (conn.sent < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.sent,
                               conn.out.size() - conn.sent, MSG_NOSIGNAL);
      if (n > 0) {
        conn.sent += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
      ::close(conn.fd);
      conn.fd = -1;
      return false;
    }
    ::close(conn.fd);
    conn.fd = -1;
    return true;
  }
  return false;
}

std::size_t HttpServer::poll_once(int timeout_ms) {
  if (!running()) return 0;

  std::vector<pollfd> fds;
  fds.reserve(connections_.size() + 1);
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  for (const Connection& conn : connections_) {
    fds.push_back(pollfd{conn.fd,
                         static_cast<short>(conn.responding ? POLLOUT : POLLIN),
                         0});
  }

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  std::size_t completed = 0;
  if (ready > 0) {
    if (fds[0].revents & POLLIN) accept_ready();
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      Connection& conn = connections_[i];
      const short revents = fds[i + 1].revents;
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // POLLHUP can arrive with readable data still queued; let
        // advance() drain it and discover the close itself.
      }
      if (revents != 0 && advance(conn)) ++completed;
    }
  }

  const auto now = std::chrono::steady_clock::now();
  for (Connection& conn : connections_) {
    if (conn.fd >= 0 && now > conn.deadline) {
      ::close(conn.fd);
      conn.fd = -1;
    }
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const Connection& conn) { return conn.fd < 0; }),
      connections_.end());
  return completed;
}

std::optional<HttpResponse> http_get(int port, const std::string& path,
                                     int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      raw.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    break;  // EOF (Connection: close) or timeout/error — parse what we have
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) return std::nullopt;
  std::istringstream status_line(raw.substr(0, raw.find("\r\n")));
  std::string version;
  HttpResponse response;
  if (!(status_line >> version >> response.status)) return std::nullopt;
  if (version.rfind("HTTP/", 0) != 0) return std::nullopt;

  // Pull Content-Type out of the headers; keep parsing forgiving.
  std::istringstream headers(raw.substr(0, header_end));
  std::string line;
  while (std::getline(headers, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string prefix = "Content-Type:";
    if (line.rfind(prefix, 0) == 0) {
      std::size_t begin = prefix.size();
      while (begin < line.size() && line[begin] == ' ') ++begin;
      response.content_type = line.substr(begin);
    }
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace sefi::obs
