#include "sefi/obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "sefi/support/env.hpp"
#include "sefi/support/fsio.hpp"

namespace sefi::obs {

namespace {

/// Buffer cap: a full paper-scale campaign traces ~6 events per
/// injection, so 1M events covers two orders of magnitude beyond that.
/// Past the cap events are dropped and counted — a bounded trace beats
/// an unbounded allocation inside an instrumented hot path.
constexpr std::size_t kMaxEvents = 1u << 20;

std::uint32_t this_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// Minimal JSON string escaping; trace names are identifier-style
/// literals, so this only ever defends against future misuse.
void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
}

extern "C" void sefi_trace_atexit_flush() { Tracer::instance().flush(); }

}  // namespace

Tracer& Tracer::instance() {
  // Leaked on purpose: the constructor registers an atexit flush when
  // SEFI_TRACE is on, and atexit handlers run after function-local
  // statics have been destroyed — flushing a destructed tracer would
  // read a freed event buffer. A process singleton needs no destructor.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() {
  epoch_ns_ = now_ns();
  if (support::env::flag("SEFI_TRACE", false)) {
    enable(support::env::str("SEFI_TRACE_FILE", "sefi_trace.json"));
    std::atexit(sefi_trace_atexit_flush);
  }
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Tracer::enable(std::string path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  path_ = std::move(path);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::push(const char* name, const char* category, char phase) {
  const std::uint64_t ts = now_ns() - epoch_ns_;
  const std::uint32_t tid = this_thread_tid();
  const std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(Event{name, category, phase, tid, ts});
}

void Tracer::begin(const char* name, const char* category) {
  if (!enabled()) return;
  push(name, category, 'B');
}

void Tracer::end(const char* name, const char* category) {
  if (!enabled()) return;
  push(name, category, 'E');
}

void Tracer::instant(const char* name, const char* category) {
  if (!enabled()) return;
  push(name, category, 'i');
}

std::string Tracer::json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buffer[96];
  for (const Event& event : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_escaped(out, event.category);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += '"';
    if (event.phase == 'i') out += ",\"s\":\"t\"";
    // trace_event timestamps are microseconds; keep ns resolution in
    // the fraction.
    std::snprintf(buffer, sizeof(buffer),
                  ",\"ts\":%llu.%03llu,\"pid\":1,\"tid\":%u}",
                  static_cast<unsigned long long>(event.ts_ns / 1000),
                  static_cast<unsigned long long>(event.ts_ns % 1000),
                  event.tid);
    out += buffer;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::flush() {
  std::string target;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (path_.empty() || events_.empty()) return false;
    target = path_;
  }
  return support::write_file_atomic(target, json());
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void Tracer::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace sefi::obs
