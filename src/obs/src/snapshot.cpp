#include "sefi/obs/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "sefi/support/seal.hpp"

namespace sefi::obs {

namespace {

// ---------------------------------------------------------------------------
// Field encoding helpers.
//
// Names are Prometheus identifiers (no spaces by construction), so they
// travel raw. Help strings and label bodies may hold spaces, quotes,
// and commas, so they travel hex-encoded — the record stays line- and
// space-delimited with no quoting grammar to get wrong. Doubles travel
// as IEEE-754 bit patterns so round-trips are bit-identical even for
// values "%.17g" would mangle (NaN payloads, signed zero).
// ---------------------------------------------------------------------------

std::string hex_string(const std::string& text) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(text.size() * 2);
  for (unsigned char c : text) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  if (out.empty()) out = "-";  // empty field marker keeps tokens non-empty
  return out;
}

bool unhex_string(const std::string& hex, std::string& out) {
  out.clear();
  if (hex == "-") return true;
  if (hex.size() % 2 != 0) return false;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::string hex_double(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(bits));
  return buffer;
}

bool unhex_double(const std::string& hex, double& out) {
  if (hex.size() != 16) return false;
  std::uint64_t bits = 0;
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | static_cast<std::uint64_t>(v);
  }
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

bool parse_u64(const std::string& token, std::uint64_t& out) {
  if (token.empty()) return false;
  out = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

char kind_tag(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return 'c';
    case InstrumentKind::kGauge:
      return 'g';
    case InstrumentKind::kHistogram:
      return 'h';
  }
  return '?';
}

bool tag_kind(const std::string& tag, InstrumentKind& out) {
  if (tag == "c") {
    out = InstrumentKind::kCounter;
  } else if (tag == "g") {
    out = InstrumentKind::kGauge;
  } else if (tag == "h") {
    out = InstrumentKind::kHistogram;
  } else {
    return false;
  }
  return true;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Exposition helpers (shared shape with the old Registry::expose_text).
// ---------------------------------------------------------------------------

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string series_name(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

std::string with_label(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  return labels + "," + extra;
}

MetricsSnapshot::Family* find_family(MetricsSnapshot& snapshot,
                                     const std::string& name) {
  for (MetricsSnapshot::Family& family : snapshot.families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

MetricsSnapshot::Series* find_series(MetricsSnapshot::Family& family,
                                     const std::string& labels) {
  for (MetricsSnapshot::Series& series : family.series) {
    if (series.labels == labels) return &series;
  }
  return nullptr;
}

}  // namespace

void MetricsSnapshot::normalize() {
  std::sort(families.begin(), families.end(),
            [](const Family& a, const Family& b) { return a.name < b.name; });
  for (Family& family : families) {
    std::sort(
        family.series.begin(), family.series.end(),
        [](const Series& a, const Series& b) { return a.labels < b.labels; });
  }
}

std::string encode_snapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "sefi-metrics 1\n";
  for (const MetricsSnapshot::Family& family : snapshot.families) {
    os << "family " << family.name << " " << kind_tag(family.kind) << " "
       << hex_string(family.help) << "\n";
    for (const MetricsSnapshot::Series& series : family.series) {
      switch (family.kind) {
        case InstrumentKind::kCounter:
          os << "c " << hex_string(series.labels) << " " << series.counter
             << "\n";
          break;
        case InstrumentKind::kGauge:
          os << "g " << hex_string(series.labels) << " "
             << hex_double(series.gauge) << "\n";
          break;
        case InstrumentKind::kHistogram: {
          const Histogram::Snapshot& h = series.histogram;
          os << "h " << hex_string(series.labels) << " " << h.count << " "
             << hex_double(h.sum) << " " << h.bounds.size();
          for (double bound : h.bounds) os << " " << hex_double(bound);
          for (std::uint64_t bucket : h.buckets) os << " " << bucket;
          os << "\n";
          break;
        }
      }
    }
  }
  return support::seal(os.str());
}

bool decode_snapshot(const std::string& text, MetricsSnapshot& out) {
  out = MetricsSnapshot{};
  const std::optional<std::string> payload = support::unseal(text);
  if (!payload) return false;

  std::istringstream is(*payload);
  std::string line;
  bool saw_header = false;
  MetricsSnapshot parsed;
  MetricsSnapshot::Family* family = nullptr;
  while (std::getline(is, line)) {
    std::istringstream fields(line);
    std::vector<std::string> tokens;
    std::string token;
    while (fields >> token) tokens.push_back(token);
    if (tokens.empty()) return false;

    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "sefi-metrics" ||
          tokens[1] != "1") {
        return false;
      }
      saw_header = true;
      continue;
    }

    if (tokens[0] == "family") {
      if (tokens.size() != 4 || !valid_metric_name(tokens[1])) return false;
      MetricsSnapshot::Family next;
      next.name = tokens[1];
      if (!tag_kind(tokens[2], next.kind)) return false;
      if (!unhex_string(tokens[3], next.help)) return false;
      parsed.families.push_back(std::move(next));
      family = &parsed.families.back();
      continue;
    }

    if (!family) return false;
    MetricsSnapshot::Series series;
    if (tokens[0] == "c" && family->kind == InstrumentKind::kCounter) {
      if (tokens.size() != 3) return false;
      if (!unhex_string(tokens[1], series.labels)) return false;
      if (!parse_u64(tokens[2], series.counter)) return false;
    } else if (tokens[0] == "g" && family->kind == InstrumentKind::kGauge) {
      if (tokens.size() != 3) return false;
      if (!unhex_string(tokens[1], series.labels)) return false;
      if (!unhex_double(tokens[2], series.gauge)) return false;
    } else if (tokens[0] == "h" &&
               family->kind == InstrumentKind::kHistogram) {
      if (tokens.size() < 5) return false;
      if (!unhex_string(tokens[1], series.labels)) return false;
      Histogram::Snapshot& h = series.histogram;
      if (!parse_u64(tokens[2], h.count)) return false;
      if (!unhex_double(tokens[3], h.sum)) return false;
      std::uint64_t nbounds = 0;
      if (!parse_u64(tokens[4], nbounds)) return false;
      // nbounds bound tokens plus nbounds+1 bucket tokens follow.
      if (tokens.size() != 5 + nbounds + nbounds + 1) return false;
      h.bounds.resize(nbounds);
      for (std::uint64_t i = 0; i < nbounds; ++i) {
        if (!unhex_double(tokens[5 + i], h.bounds[i])) return false;
      }
      h.buckets.resize(nbounds + 1);
      for (std::uint64_t i = 0; i < nbounds + 1; ++i) {
        if (!parse_u64(tokens[5 + nbounds + i], h.buckets[i])) return false;
      }
    } else {
      return false;
    }
    family->series.push_back(std::move(series));
  }
  if (!saw_header) return false;
  out = std::move(parsed);
  return true;
}

void merge_snapshot(MetricsSnapshot& into, const MetricsSnapshot& from,
                    const std::string& source) {
  for (const MetricsSnapshot::Family& src_family : from.families) {
    MetricsSnapshot::Family* dst_family = find_family(into, src_family.name);
    if (!dst_family) {
      MetricsSnapshot::Family fresh;
      fresh.name = src_family.name;
      fresh.help = src_family.help;
      fresh.kind = src_family.kind;
      into.families.push_back(std::move(fresh));
      dst_family = &into.families.back();
    } else if (dst_family->kind != src_family.kind) {
      // Same name registered as different kinds can only happen across
      // binary versions; refuse to mix rather than fabricate numbers.
      continue;
    }
    if (dst_family->help.empty()) dst_family->help = src_family.help;

    for (const MetricsSnapshot::Series& src : src_family.series) {
      switch (src_family.kind) {
        case InstrumentKind::kCounter: {
          MetricsSnapshot::Series* dst = find_series(*dst_family, src.labels);
          if (dst) {
            dst->counter += src.counter;
          } else {
            dst_family->series.push_back(src);
          }
          break;
        }
        case InstrumentKind::kHistogram: {
          MetricsSnapshot::Series* dst = find_series(*dst_family, src.labels);
          if (dst && dst->histogram.bounds == src.histogram.bounds) {
            for (std::size_t i = 0; i < dst->histogram.buckets.size(); ++i) {
              dst->histogram.buckets[i] += src.histogram.buckets[i];
            }
            dst->histogram.count += src.histogram.count;
            dst->histogram.sum += src.histogram.sum;
          } else if (!dst) {
            dst_family->series.push_back(src);
          }
          // Bounds mismatch with an existing series: drop rather than
          // add apples to oranges (cannot happen within one build).
          break;
        }
        case InstrumentKind::kGauge: {
          MetricsSnapshot::Series tagged = src;
          if (!source.empty()) {
            tagged.labels = with_label(src.labels, "src=\"" + source + "\"");
          }
          MetricsSnapshot::Series* dst =
              find_series(*dst_family, tagged.labels);
          if (dst) {
            dst->gauge = tagged.gauge;
          } else {
            dst_family->series.push_back(std::move(tagged));
          }
          break;
        }
      }
    }
  }
  into.normalize();
}

std::string expose_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const MetricsSnapshot::Family& family : snapshot.families) {
    os << "# HELP " << family.name << " " << family.help << "\n";
    os << "# TYPE " << family.name << " ";
    switch (family.kind) {
      case InstrumentKind::kCounter:
        os << "counter\n";
        break;
      case InstrumentKind::kGauge:
        os << "gauge\n";
        break;
      case InstrumentKind::kHistogram:
        os << "histogram\n";
        break;
    }
    for (const MetricsSnapshot::Series& series : family.series) {
      switch (family.kind) {
        case InstrumentKind::kCounter:
          os << series_name(family.name, series.labels) << " "
             << series.counter << "\n";
          break;
        case InstrumentKind::kGauge:
          os << series_name(family.name, series.labels) << " "
             << format_double(series.gauge) << "\n";
          break;
        case InstrumentKind::kHistogram: {
          const Histogram::Snapshot& snap = series.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cumulative += snap.buckets[i];
            os << series_name(
                      family.name + "_bucket",
                      with_label(series.labels,
                                 "le=\"" + format_double(snap.bounds[i]) +
                                     "\""))
               << " " << cumulative << "\n";
          }
          if (!snap.buckets.empty()) cumulative += snap.buckets.back();
          os << series_name(family.name + "_bucket",
                            with_label(series.labels, "le=\"+Inf\""))
             << " " << cumulative << "\n";
          os << series_name(family.name + "_sum", series.labels) << " "
             << format_double(snap.sum) << "\n";
          os << series_name(family.name + "_count", series.labels) << " "
             << snap.count << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

}  // namespace sefi::obs
