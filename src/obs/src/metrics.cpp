#include "sefi/obs/metrics.hpp"

#include <algorithm>

#include "sefi/obs/snapshot.hpp"
#include "sefi/support/env.hpp"

namespace sefi::obs {

namespace detail {

std::atomic<bool>& metrics_enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const std::size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  // Leaked on purpose: call sites across the process cache instrument
  // references in function-local statics, and cross-TU destruction
  // order is undefined — a destructed registry would dangle every one
  // of them during exit. A process singleton needs no destructor.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Registry() {
  detail::metrics_enabled_flag().store(
      support::env::flag("SEFI_METRICS", true), std::memory_order_relaxed);
}

void Registry::set_enabled(bool enabled) {
  detail::metrics_enabled_flag().store(enabled, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.kind = InstrumentKind::kCounter;
  for (Series& series : family.series) {
    if (series.labels == labels) return *series.counter;
  }
  Series series;
  series.labels = labels;
  series.counter = std::make_unique<Counter>();
  family.series.push_back(std::move(series));
  return *family.series.back().counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.kind = InstrumentKind::kGauge;
  for (Series& series : family.series) {
    if (series.labels == labels) return *series.gauge;
  }
  Series series;
  series.labels = labels;
  series.gauge = std::make_unique<Gauge>();
  family.series.push_back(std::move(series));
  return *family.series.back().gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds,
                               const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.kind = InstrumentKind::kHistogram;
  for (Series& series : family.series) {
    if (series.labels == labels) return *series.histogram;
  }
  Series series;
  series.labels = labels;
  series.histogram = std::make_unique<Histogram>(std::move(bounds));
  family.series.push_back(std::move(series));
  return *family.series.back().histogram;
}

std::string Registry::expose_text() const {
  return obs::expose_text(snapshot());
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.families.reserve(families_.size());
  for (const auto& [name, family] : families_) {
    MetricsSnapshot::Family out;
    out.name = name;
    out.help = family.help;
    out.kind = family.kind;
    out.series.reserve(family.series.size());
    for (const Series& series : family.series) {
      MetricsSnapshot::Series s;
      s.labels = series.labels;
      switch (family.kind) {
        case InstrumentKind::kCounter:
          s.counter = series.counter->value();
          break;
        case InstrumentKind::kGauge:
          s.gauge = series.gauge->value();
          break;
        case InstrumentKind::kHistogram:
          s.histogram = series.histogram->snapshot();
          break;
      }
      out.series.push_back(std::move(s));
    }
    snap.families.push_back(std::move(out));
  }
  snap.normalize();
  return snap;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    for (Series& series : family.series) {
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

}  // namespace sefi::obs
