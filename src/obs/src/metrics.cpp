#include "sefi/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "sefi/support/env.hpp"

namespace sefi::obs {

namespace detail {

std::atomic<bool>& metrics_enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}

}  // namespace detail

namespace {

/// Shortest-round-trip-ish double formatting for exposition output:
/// "%.12g" renders integers without a trailing ".000000" and keeps
/// enough digits for every bound/sum this codebase produces.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string series_name(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

/// Joins a series' label body with one extra label (histogram `le`).
std::string with_label(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return extra;
  return labels + "," + extra;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const std::size_t buckets = bounds_.size() + 1;
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::reset() {
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  // Leaked on purpose: call sites across the process cache instrument
  // references in function-local statics, and cross-TU destruction
  // order is undefined — a destructed registry would dangle every one
  // of them during exit. A process singleton needs no destructor.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Registry() {
  detail::metrics_enabled_flag().store(
      support::env::flag("SEFI_METRICS", true), std::memory_order_relaxed);
}

void Registry::set_enabled(bool enabled) {
  detail::metrics_enabled_flag().store(enabled, std::memory_order_relaxed);
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.kind = Kind::kCounter;
  for (Series& series : family.series) {
    if (series.labels == labels) return *series.counter;
  }
  Series series;
  series.labels = labels;
  series.counter = std::make_unique<Counter>();
  family.series.push_back(std::move(series));
  return *family.series.back().counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.kind = Kind::kGauge;
  for (Series& series : family.series) {
    if (series.labels == labels) return *series.gauge;
  }
  Series series;
  series.labels = labels;
  series.gauge = std::make_unique<Gauge>();
  family.series.push_back(std::move(series));
  return *family.series.back().gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               std::vector<double> bounds,
                               const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.kind = Kind::kHistogram;
  for (Series& series : family.series) {
    if (series.labels == labels) return *series.histogram;
  }
  Series series;
  series.labels = labels;
  series.histogram = std::make_unique<Histogram>(std::move(bounds));
  family.series.push_back(std::move(series));
  return *family.series.back().histogram;
}

std::string Registry::expose_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, family] : families_) {
    os << "# HELP " << name << " " << family.help << "\n";
    os << "# TYPE " << name << " ";
    switch (family.kind) {
      case Kind::kCounter:
        os << "counter\n";
        break;
      case Kind::kGauge:
        os << "gauge\n";
        break;
      case Kind::kHistogram:
        os << "histogram\n";
        break;
    }
    for (const Series& series : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          os << series_name(name, series.labels) << " "
             << series.counter->value() << "\n";
          break;
        case Kind::kGauge:
          os << series_name(name, series.labels) << " "
             << format_double(series.gauge->value()) << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram::Snapshot snap = series.histogram->snapshot();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < snap.bounds.size(); ++i) {
            cumulative += snap.buckets[i];
            os << series_name(
                      name + "_bucket",
                      with_label(series.labels, "le=\"" +
                                                    format_double(
                                                        snap.bounds[i]) +
                                                    "\""))
               << " " << cumulative << "\n";
          }
          cumulative += snap.buckets.back();
          os << series_name(name + "_bucket",
                            with_label(series.labels, "le=\"+Inf\""))
             << " " << cumulative << "\n";
          os << series_name(name + "_sum", series.labels) << " "
             << format_double(snap.sum) << "\n";
          os << series_name(name + "_count", series.labels) << " "
             << snap.count << "\n";
          break;
        }
      }
    }
  }
  return os.str();
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, family] : families_) {
    for (Series& series : family.series) {
      if (series.counter) series.counter->reset();
      if (series.gauge) series.gauge->reset();
      if (series.histogram) series.histogram->reset();
    }
  }
}

}  // namespace sefi::obs
