// Span tracing in Chrome trace_event JSON (Perfetto-loadable).
//
// The tracer buffers begin/end/instant events in memory — a span is two
// 32-byte entries under a mutex, cheap at the granularity this codebase
// traces (per-injection phases, cache/journal I/O, supervisor attempts;
// never per-instruction) — and serializes the buffer to a
// `{"traceEvents":[...]}` JSON file on flush. Event names and
// categories are `const char*` by contract: call sites pass string
// literals, the tracer stores the pointers and never copies.
//
// Enablement: SEFI_TRACE ("1"/"true"/... on; default off), output path
// SEFI_TRACE_FILE (default "sefi_trace.json"), both read at first use
// of Tracer::instance(). When enabled from the environment, a flush is
// registered with atexit so a traced CLI run always leaves a valid file
// even without explicit flush calls. Programmatic enable(path) /
// disable() serve tests and the overhead microbench.
//
// Disabled cost: Span construction is one relaxed atomic load and a
// branch; no allocation, no lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sefi::obs {

class Tracer {
 public:
  /// The process-wide tracer. First call reads SEFI_TRACE and
  /// SEFI_TRACE_FILE.
  static Tracer& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Starts buffering events; flush() (and process exit, when enabled
  /// via the environment) writes them to `path`.
  void enable(std::string path);

  /// Stops buffering. Buffered events stay until flush() or reset().
  void disable();

  void begin(const char* name, const char* category);
  void end(const char* name, const char* category);
  void instant(const char* name, const char* category);

  /// Serializes buffered events to the configured path (atomic
  /// temp+rename, like every other artifact this codebase writes).
  /// False when disabled-with-no-events or the write failed.
  bool flush();

  /// The serialized JSON document (what flush() writes). For tests.
  std::string json() const;

  const std::string& path() const { return path_; }
  std::size_t event_count() const;
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Drops all buffered events and the drop counter (tests/microbench).
  void reset();

 private:
  Tracer();

  struct Event {
    const char* name;
    const char* category;
    char phase;  ///< 'B', 'E', or 'i'
    std::uint32_t tid;
    std::uint64_t ts_ns;  ///< since tracer construction
  };

  void push(const char* name, const char* category, char phase);
  std::uint64_t now_ns() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t epoch_ns_ = 0;
  std::string path_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
};

/// RAII scoped span. `name` and `category` must be string literals (or
/// otherwise outlive the tracer buffer).
class Span {
 public:
  explicit Span(const char* name, const char* category = "sefi")
      : name_(name),
        category_(category),
        active_(Tracer::instance().enabled()) {
    if (active_) Tracer::instance().begin(name_, category_);
  }

  ~Span() {
    if (active_) Tracer::instance().end(name_, category_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
};

}  // namespace sefi::obs
