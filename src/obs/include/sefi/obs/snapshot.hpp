// Point-in-time metrics snapshots: the cross-process half of the
// observability plane.
//
// A `MetricsSnapshot` is a plain-data copy of a Registry — every
// family with its kind and help string, every series with its labels
// and current value. It exists so that metric state can leave a
// process: serve workers encode their registry after each shard and at
// exit, ship the record over the coordinator pipe (and drop it under
// `<serve>/workers/<pid>.metrics` as the SIGKILL-surviving fallback),
// and the coordinator folds the records into one fleet-wide view that
// scrapes exactly like a single-process registry would have.
//
// Codec guarantees:
//   - encode/decode round-trips are bit-identical: doubles are encoded
//     as their IEEE-754 bit patterns in hex, never through decimal.
//   - every record is framed with the support::seal FNV-1a footer;
//     decode_snapshot() rejects torn, truncated, or bit-flipped input
//     outright (mirroring the result-cache corruption discipline), so
//     a half-written worker file is quarantined as a skip, never a
//     silently-wrong merge.
//
// Merge semantics (merge_snapshot):
//   - counters with the same (name, labels) sum;
//   - histograms with the same (name, labels) and identical bounds
//     bucket-add (counts, per-bucket tallies, and sums all add);
//   - gauges are *not* summed — a gauge is a per-process statement
//     ("my worker slot is up", "my guest MIPS"), so when a non-empty
//     `source` tag is given each merged-in gauge series gains a
//     `src="<source>"` label and stands alone; with an empty source the
//     incoming value overwrites in place (last-write-wins), which is
//     what same-process folding wants.
// Counter/histogram merge is associative and commutative by
// construction (integer sums and bucket adds); tests prove it.
#pragma once

#include <string>
#include <vector>

#include "sefi/obs/metrics.hpp"

namespace sefi::obs {

/// Plain-data image of a Registry. Families are kept sorted by name
/// and series sorted by labels, so equal state implies equal encoding
/// (and equal exposition) regardless of registration order.
struct MetricsSnapshot {
  struct Series {
    std::string labels;                ///< label body without braces
    std::uint64_t counter = 0;         ///< kCounter value
    double gauge = 0.0;                ///< kGauge value
    Histogram::Snapshot histogram;     ///< kHistogram state
  };
  struct Family {
    std::string name;
    std::string help;
    InstrumentKind kind = InstrumentKind::kCounter;
    std::vector<Series> series;
  };
  std::vector<Family> families;

  /// Restores the canonical ordering after manual edits or merges.
  void normalize();
};

/// Serializes a snapshot to the compact sealed text record described
/// above. Output is stable: equal snapshots encode byte-identically.
std::string encode_snapshot(const MetricsSnapshot& snapshot);

/// Parses a record produced by encode_snapshot(). Returns false (and
/// leaves `out` empty) on any corruption: bad seal footer, truncation,
/// unknown directives, or malformed fields.
bool decode_snapshot(const std::string& text, MetricsSnapshot& out);

/// Folds `from` into `into` under the semantics documented above.
/// `source` tags merged-in gauge series (use the worker pid); pass ""
/// for last-write-wins gauge folding.
void merge_snapshot(MetricsSnapshot& into, const MetricsSnapshot& from,
                    const std::string& source = "");

/// Prometheus text exposition of a snapshot. Registry::expose_text()
/// is exactly expose_text(registry.snapshot()).
std::string expose_text(const MetricsSnapshot& snapshot);

}  // namespace sefi::obs
