// Tiny dependency-free HTTP/1.1 server for the observability plane.
//
// Scope is deliberately minimal: loopback-only, GET-only, one handler,
// Connection: close on every response. The server owns no thread —
// poll_once() services the listening socket and every in-flight
// connection for at most `timeout_ms`, so the caller decides the
// concurrency model. `sefi_cli serve` drives it from the coordinator
// loop (idle waits poll the socket instead of sleeping, and the
// process-pool tick hook keeps it serviced mid-campaign); driving it
// from the single coordinator thread side-steps every fork-vs-thread
// hazard a background server thread would create when workers fork.
//
// Off by default everywhere: nothing binds a port unless start() is
// called (serve only calls it when SEFI_HTTP_PORT is set).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace sefi::obs {

struct HttpRequest {
  std::string method;  ///< "GET"
  std::string path;    ///< "/metrics" — query string stripped
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts
  /// listening. Returns false (server stays stopped) if the bind
  /// fails, e.g. the port is taken.
  bool start(std::uint16_t port);

  bool running() const { return listen_fd_ >= 0; }

  /// The bound port (resolved after start(), useful with port 0).
  int port() const { return port_; }

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Services the socket for at most `timeout_ms` (0 = non-blocking
  /// pass): accepts connections, reads requests, dispatches the
  /// handler, flushes responses. Returns the number of responses
  /// completed this call. No-op returning 0 when stopped.
  std::size_t poll_once(int timeout_ms);

  void stop();

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t sent = 0;
    bool responding = false;
    std::chrono::steady_clock::time_point deadline;
  };

  void accept_ready();
  bool advance(Connection& conn);  ///< returns true when a response completed

  int listen_fd_ = -1;
  int port_ = 0;
  Handler handler_;
  std::vector<Connection> connections_;
};

/// Blocking loopback GET, for tests, the bench scraper, and CLI
/// helpers. Returns std::nullopt on connect/read failure or a
/// malformed response; otherwise status + content type + body.
std::optional<HttpResponse> http_get(int port, const std::string& path,
                                     int timeout_ms = 2000);

}  // namespace sefi::obs
