// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with per-thread shards merged on scrape.
//
// Design constraints, in priority order:
//
//   1. Near-zero cost when disabled. Every mutation path is one relaxed
//      atomic load of the global enabled flag and a predictable branch;
//      no locks, no allocation, no string work. Registration (the
//      `static Counter& c = registry().counter(...)` idiom at a call
//      site) happens once per process regardless of the flag, so
//      toggling at runtime needs no re-wiring.
//   2. No cross-thread contention when enabled. Counters and histograms
//      are sharded kShards ways; each thread hashes to a fixed shard
//      (round-robin assignment at first touch) and only ever touches
//      one cache line of each instrument. value()/snapshot() merge the
//      shards — scrapes are rare, increments are not.
//   3. Stable addresses. Instruments live behind unique_ptrs inside the
//      registry and are handed out by reference; call sites cache the
//      reference in a function-local static, so the per-event cost
//      never includes a map lookup.
//
// The registry is process-global on purpose: campaign, beam, cache, and
// supervisor telemetry all aggregate here across every lab/rig instance
// in the process, which is exactly what a Prometheus-style scrape
// (`sefi_cli obs dump`, Registry::expose_text) wants. Per-run numbers
// stay in CampaignStats/BeamSweepStats; the registry is the roll-up.
//
// Enablement: SEFI_METRICS (default on; "0"/"false"/"off"/"no" disable)
// read once at first registry use, overridable per-process with
// set_enabled() (the microbench flips it to measure both sides without
// re-exec).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sefi::obs {

/// Shard fan-out for counters and histogram buckets. Power of two so
/// the thread-to-shard map is a mask, sized to cover more hardware
/// threads than the campaign executor ever runs on this class of host.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

/// This thread's shard slot, assigned round-robin on first use. Stable
/// for the thread's lifetime, so a worker's increments always hit the
/// same cache line.
inline std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return shard;
}

/// The global enabled flag, hoisted out of the Registry so instrument
/// fast paths can read it without touching registry internals.
std::atomic<bool>& metrics_enabled_flag();

}  // namespace detail

inline bool metrics_enabled() {
  return detail::metrics_enabled_flag().load(std::memory_order_relaxed);
}

/// Instrument type tag, shared by the registry internals and the
/// point-in-time snapshot model (sefi/obs/snapshot.hpp).
enum class InstrumentKind { kCounter, kGauge, kHistogram };

struct MetricsSnapshot;

/// Monotonic counter. add() from any thread; value() merges shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    shards_[detail::this_thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-write-wins gauge (no sharding: gauges are set, not hammered).
class Gauge {
 public:
  void set(double v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket upper bounds are set at registration
/// (sorted ascending; an implicit +Inf bucket is appended), counts are
/// sharded per thread, and snapshot() merges to cumulative
/// Prometheus-style buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) {
    if (!metrics_enabled()) return;
    Shard& shard = shards_[detail::this_thread_shard()];
    shard.buckets[bucket_index(value)].fetch_add(1,
                                                 std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    double expected = shard.sum.load(std::memory_order_relaxed);
    while (!shard.sum.compare_exchange_weak(expected, expected + value,
                                            std::memory_order_relaxed)) {
    }
  }

  struct Snapshot {
    std::vector<double> bounds;          ///< upper bounds, +Inf excluded
    std::vector<std::uint64_t> buckets;  ///< per-bucket (bounds+1, last=+Inf)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  void reset();

 private:
  std::size_t bucket_index(double value) const {
    // Linear scan: bucket counts are small (≤ ~16) and the bounds
    // vector is hot in cache next to the shard being written.
    std::size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i]) ++i;
    return i;
  }

  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  Shard shards_[kMetricShards];
};

/// Name + help + typed instrument store with Prometheus text exposition.
class Registry {
 public:
  /// The process-wide registry. First call reads SEFI_METRICS.
  static Registry& instance();

  bool enabled() const { return metrics_enabled(); }
  void set_enabled(bool enabled);

  /// Returns the instrument registered under (name, labels), creating
  /// it on first use. `labels` is a Prometheus label body without the
  /// braces (e.g. `class="sdc"`), empty for an unlabelled series.
  /// References stay valid for the process lifetime.
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds,
                       const std::string& labels = "");

  /// Prometheus text exposition format: families sorted by name, one
  /// HELP/TYPE pair per family, histogram buckets cumulative with an
  /// +Inf bucket, _sum and _count series. Equivalent to rendering
  /// snapshot() through obs::expose_text(), so a merged multi-process
  /// snapshot scrapes identically to a single-process registry.
  std::string expose_text() const;

  /// Point-in-time copy of every registered instrument (families sorted
  /// by name, series by labels). The canonical input to the snapshot
  /// codec and merge in sefi/obs/snapshot.hpp.
  MetricsSnapshot snapshot() const;

  /// Zeroes every registered instrument (registrations and cached
  /// references stay valid). For tests and the overhead microbench.
  void reset();

 private:
  Registry();

  struct Series {
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    InstrumentKind kind = InstrumentKind::kCounter;
    std::vector<Series> series;  ///< in registration order
  };

  mutable std::mutex mutex_;
  // std::map keeps exposition deterministically name-sorted.
  std::map<std::string, Family> families_;
};

}  // namespace sefi::obs
