// Per-injection fault forensics: one JSONL record per injection,
// answering "where did this fault go?" — the drill-down the paper's
// beam-vs-FI divergence analysis (Figs. 6–10) needs and end-of-campaign
// aggregates cannot give.
//
// Record schema (one JSON object per line):
//
//   workload            benchmark name
//   component           injected structure ("L1I", "RegFile", ...)
//   set / way / bit     injection site within the structure (set is the
//                       cache set, TLB entry, or physical register;
//                       way is 0 for non-set-associative structures;
//                       bit is the offset within the entry)
//   field               which entry field the bit lands in ("valid",
//                       "dirty", "tag", "data", "vpn", "ppn", "perms",
//                       "reg")
//   flat_bit            the raw flat bit index that was flipped
//   injection_cycle     guest cycle the flip was applied at
//   activated           whether the corrupted state was ever read back
//   first_activation_cycle  guest cycle of that first read (0 when
//                       never activated)
//   arch_propagated     activated AND the verdict is not Masked — the
//                       corruption reached architectural state with a
//                       visible consequence
//   verdict             Masked / SDC / AppCrash / SysCrash /
//                       HarnessError
//   latency_to_verdict_cycles  guest cycles from injection to the
//                       cycle the verdict was decidable at
//   replayed            true when the record was recovered from a
//                       resume journal (site/activation fields are
//                       absent — the injection was not re-executed)
//   pruned              true when the verdict was proven by the golden
//                       liveness recording instead of executed
//                       (always Masked; site/activation fields absent)
//
// The sink appends under a mutex and flushes per record, mirroring the
// task journal's kill-safety: a SIGKILLed campaign keeps every record
// written so far.
//
// Enablement mirrors tracing: the process-global sink activates when
// SEFI_TRACE is on, writing to SEFI_FORENSICS_FILE (default
// "sefi_forensics.jsonl"). Campaign code prefers an explicitly
// configured sink (CampaignConfig::forensics) and falls back to the
// global one.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace sefi::obs {

class ForensicsSink {
 public:
  struct Record {
    std::string workload;
    std::string component;
    std::uint32_t set = 0;
    std::uint32_t way = 0;
    std::uint32_t bit = 0;
    std::string field;
    std::uint64_t flat_bit = 0;
    std::uint64_t injection_cycle = 0;
    bool activated = false;
    std::uint64_t first_activation_cycle = 0;
    bool arch_propagated = false;
    std::string verdict;
    std::uint64_t latency_to_verdict_cycles = 0;
    bool replayed = false;
    bool pruned = false;
  };

  /// Opens `path` for appending (creating parent directories).
  explicit ForensicsSink(std::string path);
  ~ForensicsSink();

  ForensicsSink(const ForensicsSink&) = delete;
  ForensicsSink& operator=(const ForensicsSink&) = delete;

  /// Appends one JSON line and flushes it. Thread-safe. False when the
  /// write failed (the campaign continues; forensics are advisory).
  bool write(const Record& record);

  const std::string& path() const { return path_; }
  std::uint64_t records_written() const;

  /// The environment-configured process-wide sink: non-null iff
  /// SEFI_TRACE is on. Created on first call.
  static ForensicsSink* global();

  /// Replaces the global sink with one appending to `path`. No-op when
  /// forensics are disabled (global() is null). Serve workers call this
  /// right after fork with a pid-suffixed path so N workers stop
  /// interleaving appends into the coordinator's file; the coordinator
  /// concatenates the per-pid files back into one artifact on merge.
  static void reopen_global(const std::string& path);

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
};

}  // namespace sefi::obs
