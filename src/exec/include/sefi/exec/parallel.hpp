// Deterministic parallel campaign execution.
//
// Statistical campaigns are embarrassingly parallel once their randomness
// is pre-sampled: every experiment is a pure function of (descriptor,
// shared golden state), so experiments can fan out over worker threads in
// any order as long as results are merged back in descriptor-index order.
// This module provides the small work-queue primitive both campaign
// drivers (fault injection, multi-session beam sweeps) build on:
//
//   - tasks are addressed by index [0, count) and pulled from one atomic
//     cursor, so scheduling is dynamic (experiment runtimes vary with the
//     fault cycle) but the task->result mapping is fixed;
//   - each OS thread receives a stable worker id so callers can keep
//     per-worker state (a private sim::Machine restored from a shared
//     snapshot) without locking;
//   - `threads == 1` runs inline on the calling thread — the serial path
//     stays the serial path, with zero thread machinery in the way;
//   - a shared CancellationToken lets SIGINT handlers and supervisor
//     watchdogs stop the drain cooperatively: workers finish their
//     in-flight task and stop pulling new indices.
//
// The determinism contract: callers must (a) pre-sample all randomness
// before dispatch and (b) write each task's result only into its own
// index slot. Under that contract the merged result is bit-identical
// regardless of thread count (tested in tests/exec/parallel_test.cpp and
// asserted end-to-end for campaigns in tests/faultinject/campaign_test).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>

namespace sefi::exec {

/// Number of hardware threads, never zero (unknown -> 1).
std::size_t hardware_threads();

/// Resolves a user-facing `threads` knob: 0 means "use the hardware
/// concurrency"; the result is clamped to [1, task_count] so a tiny
/// campaign never spawns idle workers.
std::size_t resolve_threads(std::uint64_t requested, std::size_t task_count);

/// One shared stop flag. request_stop() is async-signal-safe and
/// thread-safe (it only stores an atomic), so the same token serves the
/// SIGINT drain, watchdog cancellation, and test harnesses.
class CancellationToken {
 public:
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }
  /// Re-arms the token (between campaigns in one process).
  void reset() { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
};

/// What a drain did. The drain contract (tested in parallel_test):
/// every index in [0, count) is attempted exactly once, in cursor order
/// per worker, unless cancellation stops the drain early — task
/// exceptions are caught and counted, and do NOT abandon the remaining
/// tasks. `completed + failed + not attempted == count` always holds;
/// `cancelled` reports whether the token stopped the drain.
struct DrainReport {
  std::size_t completed = 0;  ///< tasks whose callback returned normally
  std::size_t failed = 0;     ///< tasks whose callback threw
  std::size_t first_failed_index = SIZE_MAX;  ///< index of first_error's task
  std::exception_ptr first_error;  ///< the first failure observed (by time)
  bool cancelled = false;          ///< the token stopped the drain early
};

/// Runs `task(worker, index)` for every index in [0, count), distributed
/// over `threads` OS threads through a shared atomic cursor. Worker ids
/// are dense in [0, threads). Blocks until all workers drain. Exceptions
/// are collected per the DrainReport contract, never rethrown; `cancel`
/// (may be nullptr) stops workers from pulling new tasks once set.
DrainReport for_each_task(std::size_t threads, std::size_t count,
                          const std::function<void(std::size_t worker,
                                                   std::size_t index)>& task,
                          const CancellationToken* cancel);

/// Legacy throwing form: behaves like the DrainReport overload driven by
/// an internal token that requests stop on the first failure, then
/// rethrows that first exception after all workers drain (remaining
/// tasks are abandoned, not executed). Prefer the report form for new
/// callers — it preserves the failure count instead of racing to the
/// first throw.
void for_each_task(std::size_t threads, std::size_t count,
                   const std::function<void(std::size_t worker,
                                            std::size_t index)>& task);

}  // namespace sefi::exec
