// Deterministic parallel campaign execution.
//
// Statistical campaigns are embarrassingly parallel once their randomness
// is pre-sampled: every experiment is a pure function of (descriptor,
// shared golden state), so experiments can fan out over worker threads in
// any order as long as results are merged back in descriptor-index order.
// This module provides the small work-queue primitive both campaign
// drivers (fault injection, multi-session beam sweeps) build on:
//
//   - tasks are addressed by index [0, count) and pulled from one atomic
//     cursor, so scheduling is dynamic (experiment runtimes vary with the
//     fault cycle) but the task->result mapping is fixed;
//   - each OS thread receives a stable worker id so callers can keep
//     per-worker state (a private sim::Machine restored from a shared
//     snapshot) without locking;
//   - `threads == 1` runs inline on the calling thread — the serial path
//     stays the serial path, with zero thread machinery in the way.
//
// The determinism contract: callers must (a) pre-sample all randomness
// before dispatch and (b) write each task's result only into its own
// index slot. Under that contract the merged result is bit-identical
// regardless of thread count (tested in tests/exec/parallel_test.cpp and
// asserted end-to-end for campaigns in tests/faultinject/campaign_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace sefi::exec {

/// Number of hardware threads, never zero (unknown -> 1).
std::size_t hardware_threads();

/// Resolves a user-facing `threads` knob: 0 means "use the hardware
/// concurrency"; the result is clamped to [1, task_count] so a tiny
/// campaign never spawns idle workers.
std::size_t resolve_threads(std::uint64_t requested, std::size_t task_count);

/// Runs `task(worker, index)` for every index in [0, count), distributed
/// over `threads` OS threads through a shared atomic cursor. Worker ids
/// are dense in [0, threads). Blocks until all tasks finish. If any task
/// throws, the first exception is rethrown on the calling thread after
/// all workers drain (remaining tasks are abandoned, not executed).
void for_each_task(std::size_t threads, std::size_t count,
                   const std::function<void(std::size_t worker,
                                            std::size_t index)>& task);

}  // namespace sefi::exec
