// Multi-process work pool with leased assignments.
//
// The thread pool in parallel.hpp scales a campaign inside one process;
// this pool scales it across processes — the unit the serve coordinator
// (DESIGN.md §14) hands out is a *shard* of fault indices, and the
// failure model is harder: a worker process can be SIGKILL'd, OOM'd, or
// wedged, and the coordinator must get its shard back. Three mechanisms
// deliver that:
//
//   1. *Fork-per-worker with a line protocol.* Workers are forked
//      children connected by two pipes. The parent assigns work with
//      "s <shard>\n", the child answers "d <shard>\n" (done) or
//      "e <shard>\n" (the shard callback threw), optionally preceded by
//      "m <hex>\n" metric-snapshot lines (worker_snapshot hook; one
//      more is flushed when the parent closes the command pipe), and
//      EOF on the command pipe tells the child to _exit. Children never
//      return into the parent's stack.
//   2. *Dynamic assignment == work stealing.* Shards live in one pending
//      queue; a worker gets its next shard the moment it finishes the
//      last one, so a fast worker drains what a slow one never claimed.
//   3. *Leases.* Every assignment carries a wall-clock lease
//      (`lease_ms`). A worker that dies (pipe EOF) or overruns its lease
//      (SIGKILL'd by the parent) forfeits the shard, which goes back in
//      the queue for the next free worker; the worker slot is respawned
//      while the respawn budget lasts. The caller journals lease events
//      through the on_assign/on_done/on_reclaim hooks.
//
// Determinism: the pool only schedules; the caller's shard callback is
// responsible for writing results somewhere order-independent (the
// serve coordinator journals per-shard outcome records and merges them
// by fault index, so any assignment order yields identical results).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace sefi::exec {

struct ProcPoolConfig {
  /// Worker processes to fork (clamped to >= 1).
  std::size_t workers = 4;
  /// Wall-clock lease per shard assignment, ms; a worker holding a
  /// shard longer is presumed wedged, SIGKILL'd, and its shard
  /// reassigned. 0 = leases never expire (death still reclaims).
  std::uint64_t lease_ms = 0;
  /// Times a shard may be attempted before the pool gives up on it
  /// (first assignment included). A shard that poisons every worker it
  /// lands on must not wedge the pool forever.
  std::uint64_t max_shard_attempts = 3;
  /// Worker processes respawned after deaths/lease kills before the
  /// pool stops replacing them (survivors still drain the queue).
  std::uint64_t respawn_budget = 16;
  // Parent-side event hooks (all nullable, called from the coordinator
  // loop — never from a signal handler or a child).
  std::function<void(std::size_t shard, std::size_t worker)> on_assign;
  std::function<void(std::size_t shard, std::size_t worker)> on_done;
  /// A shard came back: its holder died or its lease expired.
  std::function<void(std::size_t shard, std::size_t worker)> on_reclaim;

  // --- Cross-process observability hooks (DESIGN.md §16) ---
  /// Child-side hook run once right after fork, before the first
  /// command is read. Serve uses it to reset the inherited metrics
  /// registry and re-point trace/forensics files per pid.
  std::function<void()> child_init;
  /// Child-side snapshot provider, called after every shard completes
  /// (success or error) and once more when the parent closes the
  /// command pipe. A non-empty result is shipped to the parent as an
  /// "m <hex(payload)>\n" reply line ahead of the "d"/"e" line, so the
  /// parent folds the snapshot before it observes shard-done.
  std::function<std::string()> worker_snapshot;
  /// Parent-side sink for shipped snapshots. `pid` identifies the
  /// producing process — keyed by pid, a respawned slot never clobbers
  /// its predecessor's last payload.
  std::function<void(std::size_t worker, std::uint64_t pid,
                     const std::string& payload)>
      on_snapshot;
  /// Parent-side hook called every coordinator loop pass; when set, the
  /// pool also caps its poll sleep at tick_ms so the hook keeps firing
  /// while workers crunch. Serve services the HTTP plane here.
  std::function<void()> on_tick;
  std::uint64_t tick_ms = 50;
};

struct ProcPoolReport {
  std::uint64_t shards_done = 0;
  std::uint64_t shards_failed = 0;      ///< exhausted max_shard_attempts
  std::uint64_t leases_reclaimed = 0;   ///< reassignments after death/expiry
  std::uint64_t lease_expiries = 0;     ///< of those, parent-initiated kills
  std::uint64_t worker_deaths = 0;      ///< children that exited unbidden
  std::uint64_t workers_respawned = 0;
  bool completed = false;  ///< every shard ran to done
  std::string first_error;
};

/// Forks `config.workers` children, each executing `run_shard(shard)`
/// for the shards the parent assigns it, and blocks until every shard
/// in [0, shard_count) is done (or unrecoverable). In the child,
/// `run_shard` returning normally reports done; throwing reports a
/// shard error (the shard is re-attempted elsewhere, up to
/// max_shard_attempts); the child never returns from this call — it
/// _exit()s when the parent closes its command pipe. The parent must be
/// effectively single-threaded at call time (fork semantics).
ProcPoolReport run_process_pool(
    const ProcPoolConfig& config, std::size_t shard_count,
    const std::function<void(std::size_t shard)>& run_shard);

}  // namespace sefi::exec
