// Fault-tolerant campaign supervision.
//
// Production-scale campaigns (1,000 injections x 6 components x 13
// workloads, beam sweeps scaled to megayears of fluence) cannot afford
// the old executor contract where one worker exception aborts the whole
// campaign and discards every finished injection. Real injection
// frameworks treat harness faults as first-class outcomes — ZOFI
// classifies runs it cannot complete instead of dying — and this layer
// gives our executors the same three guarantees (DESIGN.md §10):
//
//   1. *Fault isolation.* Each task attempt runs under try/catch. A
//      thrown exception (sim invariant violation, bad_alloc, a guest
//      triple-fault escaping the model) fails only that attempt: the
//      supervisor calls the caller's `recover` hook to rebuild the
//      worker's private state (a fresh Machine restored from snapshot)
//      and retries the SAME task up to max_task_retries times. Because
//      campaign randomness is pre-sampled, a retry re-executes a
//      bit-identical experiment — determinism survives recovery.
//   2. *Wall-clock watchdog.* Every attempt carries a TaskGuard with a
//      host-side deadline (SEFI_TASK_DEADLINE_MS). Long-running guest
//      loops poll the guard between bounded run slices; an expired
//      deadline aborts the attempt with TaskDeadlineExceeded, which the
//      supervisor books as a watchdog hit and retries. This catches
//      host-side hangs the guest-cycle hang_budget_factor cannot see.
//   3. *Completion over abortion.* A task whose retry budget is
//      exhausted is marked TaskState::kHarnessError and the campaign
//      CONTINUES; harness errors flow through the stats layer as
//      excluded-from-denominator outcomes instead of killing the run.
//
// Cancellation (SIGINT, watchdog escalation) reuses the work queue's
// CancellationToken: workers finish their in-flight attempt, journal it,
// and stop pulling — the cooperative drain `sefi_cli campaign` relies on.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sefi/exec/parallel.hpp"

namespace sefi::exec {

/// Thrown by TaskGuard::check() when the supervisor wall-clock deadline
/// for the current attempt has passed. The supervisor books it as a
/// watchdog hit (and retries); it never escapes run_supervised.
class TaskDeadlineExceeded : public std::runtime_error {
 public:
  explicit TaskDeadlineExceeded(const std::string& message)
      : std::runtime_error(message) {}
};

/// Thrown by TaskGuard::check() when campaign cancellation was
/// requested. The supervisor leaves the task pending (not failed); it
/// never escapes run_supervised.
class TaskCancelled : public std::runtime_error {
 public:
  TaskCancelled() : std::runtime_error("task cancelled") {}
};

/// Per-attempt guard handed to every supervised task. Long-running
/// tasks poll check() at natural yield points (the campaign drivers do
/// so between bounded simulation slices); it throws TaskCancelled when
/// the campaign is draining and TaskDeadlineExceeded when this
/// attempt's wall-clock budget is spent. A default-constructed guard is
/// inert (never throws), so unsupervised paths can share the plumbing.
class TaskGuard {
 public:
  TaskGuard() = default;
  /// `deadline_ms` == 0 disables the watchdog for this attempt.
  TaskGuard(const CancellationToken* cancel, std::uint64_t deadline_ms);

  /// Throws TaskCancelled / TaskDeadlineExceeded; returns otherwise.
  void check() const;

  bool cancel_requested() const {
    return cancel_ != nullptr && cancel_->stop_requested();
  }
  bool deadline_expired() const;

 private:
  const CancellationToken* cancel_ = nullptr;
  std::uint64_t deadline_ms_ = 0;  ///< 0 = no deadline
  std::uint64_t start_ns_ = 0;
};

/// Incidents the supervisor can report as they happen (not just in the
/// end-of-run report). Campaign drivers use the stream to persist
/// cumulative telemetry into the resume journal, so a killed campaign's
/// retry/watchdog history survives into `campaign status`.
enum class SupervisorEvent : std::uint8_t {
  kRetry = 0,      ///< a failed attempt is about to be re-run
  kWatchdogHit,    ///< an attempt was killed by the wall-clock deadline
  kHarnessError,   ///< a task exhausted its retry budget
};

struct SupervisorConfig {
  std::size_t threads = 1;
  /// Extra attempts after the first failed one; 0 = fail fast to
  /// HarnessError on the first harness fault.
  std::uint64_t max_task_retries = 2;
  /// Wall-clock budget per attempt, 0 = no watchdog.
  std::uint64_t task_deadline_ms = 0;
  /// Cooperative stop flag shared with SIGINT handlers; may be null.
  const CancellationToken* cancel = nullptr;
  /// Incident stream, called as (event, task_index) from worker threads
  /// at the moment the corresponding report counter increments; must be
  /// thread-safe. Null = no streaming (the report still counts
  /// everything). Exceptions from the callback are swallowed — incident
  /// reporting must never fail a task.
  std::function<void(SupervisorEvent, std::size_t)> on_event;
};

/// Terminal state of one supervised task.
enum class TaskState : std::uint8_t {
  kPending = 0,      ///< never attempted, or cancelled mid-campaign
  kDone,             ///< an attempt completed normally
  kHarnessError,     ///< every attempt threw; retry budget exhausted
  kSkipped,          ///< already_done() said so (journal replay)
};

struct SupervisorReport {
  std::vector<TaskState> states;      ///< one terminal state per index
  std::uint64_t completed = 0;        ///< kDone tasks
  std::uint64_t skipped = 0;          ///< kSkipped tasks
  std::uint64_t harness_errors = 0;   ///< kHarnessError tasks
  std::uint64_t retries = 0;          ///< re-attempts after a failure
  std::uint64_t watchdog_hits = 0;    ///< attempts killed by the deadline
  std::uint64_t cancelled_tasks = 0;  ///< attempts abandoned to cancel
  bool cancelled = false;             ///< the drain stopped early
  std::string first_error;            ///< message of the first failure
};

/// Runs `task(worker, index, attempt, guard)` for every index under the
/// fault-isolation contract above. `already_done(index)` (nullable)
/// short-circuits journal-replayed tasks to kSkipped without invoking
/// the task; if the probe itself throws (corrupt journal record, I/O
/// error) the task is treated as not-done and re-executed through the
/// normal attempt loop — a bad probe can never poison the drain.
/// `recover(worker)` (nullable) is invoked after every failed attempt,
/// before the retry, to rebuild worker-private state. Neither `task`
/// exceptions nor `recover` exceptions escape this function.
SupervisorReport run_supervised(
    const SupervisorConfig& config, std::size_t count,
    const std::function<bool(std::size_t index)>& already_done,
    const std::function<void(std::size_t worker, std::size_t index,
                             std::uint64_t attempt,
                             const TaskGuard& guard)>& task,
    const std::function<void(std::size_t worker)>& recover);

/// The process-wide cancellation token the SIGINT drain sets.
CancellationToken& sigint_token();

/// Installs a SIGINT handler (idempotent) that requests stop on
/// sigint_token() — campaigns wired to the token finish in-flight
/// tasks, journal them, and exit cleanly. A second SIGINT restores the
/// default disposition, so an impatient third ^C kills the process.
void install_sigint_drain();

}  // namespace sefi::exec
