#include "sefi/exec/procpool.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <vector>

#include "sefi/obs/metrics.hpp"

namespace sefi::exec {

namespace {

using Clock = std::chrono::steady_clock;

ssize_t read_retry(int fd, char* buf, std::size_t len) {
  ssize_t n;
  do {
    n = ::read(fd, buf, len);
  } while (n < 0 && errno == EINTR);
  return n;
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Hex transport coding for snapshot payloads: the reply pipe is
/// line-delimited, so arbitrary payload bytes (newlines included)
/// travel as two hex digits each.
std::string hex_encode(const std::string& data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (unsigned char c : data) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

bool hex_decode(const std::string& hex, std::string& out) {
  out.clear();
  if (hex.size() % 2 != 0) return false;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

/// Child main loop: read "s <shard>" commands until EOF, run the shard
/// callback, answer "d <shard>" / "e <shard>" (after an optional
/// "m <hex>" snapshot line). Never returns — the child must not unwind
/// into the parent's stack (atexit handlers, gtest state, buffered
/// streams all belong to the parent image).
[[noreturn]] void child_loop(
    int cmd_fd, int res_fd, const ProcPoolConfig& config,
    const std::function<void(std::size_t shard)>& run_shard) {
  if (config.child_init) {
    try {
      config.child_init();
    } catch (...) {
      ::_exit(4);
    }
  }
  const auto flush_snapshot = [&] {
    if (!config.worker_snapshot) return true;
    std::string payload;
    try {
      payload = config.worker_snapshot();
    } catch (...) {
      return true;  // snapshots are advisory; never fail the shard
    }
    if (payload.empty()) return true;
    return write_all(res_fd, "m " + hex_encode(payload) + "\n");
  };
  std::string buffer;
  char chunk[256];
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      const ssize_t n = read_retry(cmd_fd, chunk, sizeof(chunk));
      if (n <= 0) {
        // Parent closed the pipe: flush the exit snapshot, then leave.
        flush_snapshot();
        ::_exit(0);
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (line.size() < 3 || line[0] != 's' || line[1] != ' ') ::_exit(2);
    std::size_t shard = 0;
    for (std::size_t i = 2; i < line.size(); ++i) {
      if (line[i] < '0' || line[i] > '9') ::_exit(2);
      shard = shard * 10 + static_cast<std::size_t>(line[i] - '0');
    }
    bool ok = true;
    try {
      run_shard(shard);
    } catch (...) {
      ok = false;
    }
    if (!flush_snapshot()) ::_exit(3);
    const std::string reply =
        std::string(ok ? "d " : "e ") + std::to_string(shard) + "\n";
    if (!write_all(res_fd, reply)) ::_exit(3);
  }
}

struct Worker {
  pid_t pid = -1;
  int cmd_fd = -1;  ///< parent -> child assignments
  int res_fd = -1;  ///< child -> parent replies
  bool alive = false;
  bool busy = false;
  std::size_t shard = 0;
  Clock::time_point lease_deadline{};
  std::string buffer;  ///< partial reply line
};

obs::Gauge& worker_up_gauge(std::size_t worker) {
  return obs::Registry::instance().gauge(
      "sefi_serve_worker_up", "Liveness of each serve worker process slot",
      "worker=\"" + std::to_string(worker) + "\"");
}

}  // namespace

ProcPoolReport run_process_pool(
    const ProcPoolConfig& config, std::size_t shard_count,
    const std::function<void(std::size_t shard)>& run_shard) {
  ProcPoolReport report;
  if (shard_count == 0) {
    report.completed = true;
    return report;
  }

  static obs::Counter& done_metric = obs::Registry::instance().counter(
      "sefi_serve_shards_done_total",
      "Shards completed by serve worker processes");
  static obs::Counter& reclaim_metric = obs::Registry::instance().counter(
      "sefi_serve_leases_reclaimed_total",
      "Shard leases reclaimed after worker death or expiry");
  static obs::Counter& respawn_metric = obs::Registry::instance().counter(
      "sefi_serve_workers_respawned_total",
      "Serve worker processes respawned after a death or lease kill");

  // A dead child's command pipe raises SIGPIPE on the parent's next
  // assignment write; the write error is handled, the signal must not
  // kill the coordinator.
  struct sigaction ignore_pipe {};
  struct sigaction saved_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  ::sigaction(SIGPIPE, &ignore_pipe, &saved_pipe);

  const std::size_t worker_count =
      std::min<std::size_t>(std::max<std::size_t>(config.workers, 1),
                            shard_count);
  std::vector<Worker> workers(worker_count);
  std::deque<std::size_t> pending;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    pending.push_back(shard);
  }
  std::vector<std::uint64_t> attempts(shard_count, 0);
  std::vector<char> done(shard_count, 0);
  std::uint64_t done_count = 0, failed_count = 0, respawns = 0;

  const auto note_error = [&](const std::string& message) {
    if (report.first_error.empty()) report.first_error = message;
  };

  const auto spawn = [&](std::size_t slot) -> bool {
    int to_child[2], to_parent[2];
    if (::pipe(to_child) != 0) return false;
    if (::pipe(to_parent) != 0) {
      ::close(to_child[0]);
      ::close(to_child[1]);
      return false;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (int fd : {to_child[0], to_child[1], to_parent[0], to_parent[1]}) {
        ::close(fd);
      }
      return false;
    }
    if (pid == 0) {
      // Child: keep only its own two pipe ends; every inherited parent
      // fd (other workers' pipes included) is closed so a worker's EOF
      // is visible the moment it alone dies.
      ::close(to_child[1]);
      ::close(to_parent[0]);
      for (const Worker& other : workers) {
        if (other.cmd_fd >= 0) ::close(other.cmd_fd);
        if (other.res_fd >= 0) ::close(other.res_fd);
      }
      child_loop(to_child[0], to_parent[1], config, run_shard);
    }
    ::close(to_child[0]);
    ::close(to_parent[1]);
    Worker& worker = workers[slot];
    worker.pid = pid;
    worker.cmd_fd = to_child[1];
    worker.res_fd = to_parent[0];
    worker.alive = true;
    worker.busy = false;
    worker.buffer.clear();
    worker_up_gauge(slot).set(1);
    return true;
  };

  const auto sink_snapshot_line = [&](std::size_t slot,
                                      const std::string& line) {
    if (line.size() < 2 || line[0] != 'm' || line[1] != ' ') return false;
    std::string payload;
    if (config.on_snapshot && hex_decode(line.substr(2), payload)) {
      config.on_snapshot(slot, static_cast<std::uint64_t>(workers[slot].pid),
                         payload);
    }
    return true;
  };

  const auto retire = [&](std::size_t slot, bool kill_first) {
    Worker& worker = workers[slot];
    if (!worker.alive) return;
    if (kill_first) ::kill(worker.pid, SIGKILL);
    ::close(worker.cmd_fd);
    worker.cmd_fd = -1;
    if (!kill_first && config.worker_snapshot) {
      // Closing the command pipe told the child to flush one last
      // snapshot before _exit; drain trailing "m" lines until EOF,
      // bounded so a wedged child cannot pin the coordinator.
      const auto drain_deadline =
          Clock::now() + std::chrono::milliseconds(5000);
      char chunk[4096];
      for (;;) {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                drain_deadline - Clock::now())
                .count();
        if (remaining <= 0) break;
        pollfd pfd{worker.res_fd, POLLIN, 0};
        int ready;
        do {
          ready = ::poll(&pfd, 1, static_cast<int>(remaining));
        } while (ready < 0 && errno == EINTR);
        if (ready <= 0) break;
        const ssize_t n = read_retry(worker.res_fd, chunk, sizeof(chunk));
        if (n <= 0) break;
        worker.buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while ((newline = worker.buffer.find('\n')) != std::string::npos) {
          const std::string line = worker.buffer.substr(0, newline);
          worker.buffer.erase(0, newline + 1);
          sink_snapshot_line(slot, line);
        }
      }
    }
    ::close(worker.res_fd);
    worker.res_fd = -1;
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(worker.pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    worker.alive = false;
    worker_up_gauge(slot).set(0);
    if (worker.busy) {
      // The shard comes back to the queue unless its attempt budget is
      // spent — a shard that kills every holder must not spin forever.
      worker.busy = false;
      ++report.leases_reclaimed;
      reclaim_metric.add();
      if (config.on_reclaim) config.on_reclaim(worker.shard, slot);
      if (attempts[worker.shard] < config.max_shard_attempts) {
        pending.push_front(worker.shard);
      } else {
        ++failed_count;
        note_error("shard " + std::to_string(worker.shard) +
                   " exhausted its attempt budget (worker deaths)");
      }
    }
  };

  const auto assign = [&](std::size_t slot) {
    Worker& worker = workers[slot];
    while (!pending.empty()) {
      const std::size_t shard = pending.front();
      pending.pop_front();
      ++attempts[shard];
      if (!write_all(worker.cmd_fd, "s " + std::to_string(shard) + "\n")) {
        // Assignment never reached the child: hand the shard to someone
        // else without burning its attempt, and retire the dead worker.
        --attempts[shard];
        pending.push_front(shard);
        retire(slot, /*kill_first=*/false);
        return;
      }
      worker.busy = true;
      worker.shard = shard;
      worker.lease_deadline =
          Clock::now() + std::chrono::milliseconds(
                             config.lease_ms == 0 ? 0 : config.lease_ms);
      if (config.on_assign) config.on_assign(shard, slot);
      return;
    }
  };

  for (std::size_t slot = 0; slot < worker_count; ++slot) {
    if (!spawn(slot)) {
      note_error("fork/pipe failed while spawning serve workers");
      break;
    }
  }

  const auto alive_workers = [&] {
    std::size_t n = 0;
    for (const Worker& worker : workers) n += worker.alive ? 1 : 0;
    return n;
  };

  while (done_count + failed_count < shard_count && alive_workers() > 0) {
    // Feed every idle worker before sleeping.
    for (std::size_t slot = 0; slot < worker_count; ++slot) {
      if (workers[slot].alive && !workers[slot].busy && !pending.empty()) {
        assign(slot);
      }
    }

    // Sleep until a reply, a death, or the nearest lease deadline.
    std::vector<pollfd> fds;
    std::vector<std::size_t> fd_slot;
    int timeout_ms = -1;
    const auto now = Clock::now();
    for (std::size_t slot = 0; slot < worker_count; ++slot) {
      const Worker& worker = workers[slot];
      if (!worker.alive) continue;
      fds.push_back({worker.res_fd, POLLIN, 0});
      fd_slot.push_back(slot);
      if (worker.busy && config.lease_ms > 0) {
        const auto remaining = std::chrono::duration_cast<
            std::chrono::milliseconds>(worker.lease_deadline - now).count();
        const int ms = remaining <= 0 ? 0 : static_cast<int>(
            std::min<long long>(remaining, 60'000));
        timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
      }
    }
    if (fds.empty()) break;
    if (config.on_tick) {
      // Cap the sleep so the tick hook keeps firing while workers
      // crunch (serve's HTTP plane is serviced from it).
      const int tick = static_cast<int>(std::min<std::uint64_t>(
          std::max<std::uint64_t>(config.tick_ms, 1), 60'000));
      timeout_ms = timeout_ms < 0 ? tick : std::min(timeout_ms, tick);
    }
    int ready;
    do {
      ready = ::poll(fds.data(), fds.size(), timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (config.on_tick) config.on_tick();

    // Replies and deaths.
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t slot = fd_slot[i];
      Worker& worker = workers[slot];
      if (!worker.alive) continue;
      char chunk[256];
      const ssize_t n = read_retry(worker.res_fd, chunk, sizeof(chunk));
      if (n <= 0) {
        // EOF: the child died (SIGKILL, OOM, crash).
        ++report.worker_deaths;
        retire(slot, /*kill_first=*/false);
        if (!pending.empty() && respawns < config.respawn_budget) {
          if (spawn(slot)) {
            ++respawns;
            respawn_metric.add();
          }
        }
        continue;
      }
      worker.buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t newline;
      while ((newline = worker.buffer.find('\n')) != std::string::npos) {
        const std::string line = worker.buffer.substr(0, newline);
        worker.buffer.erase(0, newline + 1);
        if (sink_snapshot_line(slot, line)) continue;
        if (line.size() < 3 || (line[0] != 'd' && line[0] != 'e') ||
            line[1] != ' ') {
          continue;  // garbled reply; the lease/death machinery recovers
        }
        std::size_t shard = 0;
        bool parsed = true;
        for (std::size_t j = 2; j < line.size() && parsed; ++j) {
          parsed = line[j] >= '0' && line[j] <= '9';
          if (parsed) shard = shard * 10 + static_cast<std::size_t>(line[j] - '0');
        }
        if (!parsed || shard >= shard_count || !worker.busy ||
            worker.shard != shard) {
          continue;
        }
        worker.busy = false;
        if (line[0] == 'd') {
          if (done[shard] == 0) {
            done[shard] = 1;
            ++done_count;
            done_metric.add();
          }
          if (config.on_done) config.on_done(shard, slot);
        } else if (attempts[shard] < config.max_shard_attempts) {
          pending.push_back(shard);
        } else {
          ++failed_count;
          note_error("shard " + std::to_string(shard) +
                     " exhausted its attempt budget (shard errors)");
        }
      }
    }

    // Lease expiries: a busy worker past its deadline is presumed
    // wedged; SIGKILL it, reclaim the shard, respawn the slot.
    if (config.lease_ms > 0) {
      const auto deadline_now = Clock::now();
      for (std::size_t slot = 0; slot < worker_count; ++slot) {
        Worker& worker = workers[slot];
        if (!worker.alive || !worker.busy) continue;
        if (worker.lease_deadline > deadline_now) continue;
        ++report.lease_expiries;
        retire(slot, /*kill_first=*/true);
        if (respawns < config.respawn_budget && spawn(slot)) {
          ++respawns;
          respawn_metric.add();
        }
      }
    }
  }

  // Drain: closing the command pipes tells surviving children to exit.
  for (std::size_t slot = 0; slot < worker_count; ++slot) {
    retire(slot, /*kill_first=*/false);
  }

  report.shards_done = done_count;
  report.shards_failed = failed_count;
  report.workers_respawned = respawns;
  report.completed = done_count == shard_count;
  if (!report.completed && report.first_error.empty()) {
    note_error("serve worker pool stopped with " +
               std::to_string(shard_count - done_count) +
               " shards unfinished");
  }
  ::sigaction(SIGPIPE, &saved_pipe, nullptr);
  return report;
}

}  // namespace sefi::exec
