#include "sefi/exec/parallel.hpp"

#include <mutex>
#include <thread>
#include <vector>

namespace sefi::exec {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t resolve_threads(std::uint64_t requested, std::size_t task_count) {
  std::size_t threads =
      requested == 0 ? hardware_threads() : static_cast<std::size_t>(requested);
  if (task_count > 0 && threads > task_count) threads = task_count;
  return threads == 0 ? 1 : threads;
}

DrainReport for_each_task(std::size_t threads, std::size_t count,
                          const std::function<void(std::size_t,
                                                   std::size_t)>& task,
                          const CancellationToken* cancel) {
  DrainReport report;
  if (count == 0) {
    report.cancelled = cancel != nullptr && cancel->stop_requested();
    return report;
  }

  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failed{0};
  std::mutex error_mutex;

  std::atomic<std::size_t> cursor{0};
  auto drain = [&](std::size_t worker) {
    for (;;) {
      if (cancel != nullptr && cancel->stop_requested()) return;
      const std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) return;
      try {
        task(worker, index);
        completed.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        failed.fetch_add(1, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!report.first_error) {
          report.first_error = std::current_exception();
          report.first_failed_index = index;
        }
      }
    }
  };

  if (threads <= 1) {
    drain(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(threads - 1);
    for (std::size_t worker = 1; worker < threads; ++worker) {
      workers.emplace_back(drain, worker);
    }
    drain(0);
    for (std::thread& worker : workers) worker.join();
  }

  report.completed = completed.load(std::memory_order_relaxed);
  report.failed = failed.load(std::memory_order_relaxed);
  report.cancelled = cancel != nullptr && cancel->stop_requested() &&
                     report.completed + report.failed < count;
  return report;
}

void for_each_task(std::size_t threads, std::size_t count,
                   const std::function<void(std::size_t, std::size_t)>& task) {
  // First failure stops the drain (the historic contract): wrap the task
  // so a throw requests stop before the exception is collected.
  CancellationToken first_failure;
  const DrainReport report = for_each_task(
      threads, count,
      [&](std::size_t worker, std::size_t index) {
        try {
          task(worker, index);
        } catch (...) {
          first_failure.request_stop();
          throw;
        }
      },
      &first_failure);
  if (report.first_error) std::rethrow_exception(report.first_error);
}

}  // namespace sefi::exec
