#include "sefi/exec/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace sefi::exec {

std::size_t hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t resolve_threads(std::uint64_t requested, std::size_t task_count) {
  std::size_t threads =
      requested == 0 ? hardware_threads() : static_cast<std::size_t>(requested);
  if (task_count > 0 && threads > task_count) threads = task_count;
  return threads == 0 ? 1 : threads;
}

void for_each_task(std::size_t threads, std::size_t count,
                   const std::function<void(std::size_t, std::size_t)>& task) {
  if (count == 0) return;
  if (threads <= 1) {
    for (std::size_t index = 0; index < count; ++index) task(0, index);
    return;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&](std::size_t worker) {
    for (;;) {
      const std::size_t index = cursor.fetch_add(1, std::memory_order_relaxed);
      if (index >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        task(worker, index);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (std::size_t worker = 1; worker < threads; ++worker) {
    workers.emplace_back(drain, worker);
  }
  drain(0);
  for (std::thread& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace sefi::exec
