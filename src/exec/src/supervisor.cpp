#include "sefi/exec/supervisor.hpp"

#include <chrono>
#include <csignal>
#include <mutex>

#include "sefi/obs/metrics.hpp"
#include "sefi/obs/trace.hpp"

namespace sefi::exec {

namespace {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TaskGuard::TaskGuard(const CancellationToken* cancel,
                     std::uint64_t deadline_ms)
    : cancel_(cancel), deadline_ms_(deadline_ms) {
  if (deadline_ms_ > 0) start_ns_ = monotonic_ns();
}

bool TaskGuard::deadline_expired() const {
  if (deadline_ms_ == 0) return false;
  return monotonic_ns() - start_ns_ > deadline_ms_ * 1'000'000ull;
}

void TaskGuard::check() const {
  if (cancel_requested()) throw TaskCancelled();
  if (deadline_expired()) {
    throw TaskDeadlineExceeded("task exceeded supervisor deadline of " +
                               std::to_string(deadline_ms_) + " ms");
  }
}

SupervisorReport run_supervised(
    const SupervisorConfig& config, std::size_t count,
    const std::function<bool(std::size_t)>& already_done,
    const std::function<void(std::size_t, std::size_t, std::uint64_t,
                             const TaskGuard&)>& task,
    const std::function<void(std::size_t)>& recover) {
  SupervisorReport report;
  report.states.assign(count, TaskState::kPending);

  std::atomic<std::uint64_t> completed{0}, skipped{0}, harness_errors{0},
      retries{0}, watchdog_hits{0}, cancelled_tasks{0};
  std::mutex first_error_mutex;

  auto note_first_error = [&](const std::string& message) {
    const std::lock_guard<std::mutex> lock(first_error_mutex);
    if (report.first_error.empty()) report.first_error = message;
  };

  auto recover_worker = [&](std::size_t worker) {
    if (!recover) return;
    try {
      recover(worker);
    } catch (...) {
      // Recovery itself failing leaves the worker to rebuild lazily on
      // its next attempt; nothing useful to do here.
    }
  };

  // Incident metrics aggregate process-wide; the per-run report stays
  // the per-campaign source of truth.
  static obs::Counter& retry_metric = obs::Registry::instance().counter(
      "sefi_supervisor_retries_total",
      "Failed task attempts re-run by the supervisor");
  static obs::Counter& watchdog_metric = obs::Registry::instance().counter(
      "sefi_supervisor_watchdog_hits_total",
      "Task attempts killed by the wall-clock deadline");
  static obs::Counter& harness_metric = obs::Registry::instance().counter(
      "sefi_supervisor_harness_errors_total",
      "Tasks that exhausted their retry budget");

  auto emit_event = [&](SupervisorEvent event, std::size_t index) {
    switch (event) {
      case SupervisorEvent::kRetry: retry_metric.add(); break;
      case SupervisorEvent::kWatchdogHit: watchdog_metric.add(); break;
      case SupervisorEvent::kHarnessError: harness_metric.add(); break;
    }
    if (!config.on_event) return;
    try {
      config.on_event(event, index);
    } catch (...) {
      // Incident reporting must never fail a task.
    }
  };

  // The wrapper owns the whole retry loop for its index, so the work
  // queue below never sees a task exception: distinct TaskState slots
  // are written by exactly one worker each.
  auto wrapper = [&](std::size_t worker, std::size_t index) {
    // The journal probe may itself throw (corrupt record, I/O error).
    // That must not escape into the work queue: treat the task as
    // not-done and fall through to the attempt loop, which re-executes
    // it from scratch and records the outcome fresh.
    bool done_already = false;
    try {
      done_already = already_done && already_done(index);
    } catch (const std::exception& error) {
      note_first_error(std::string("already_done probe threw: ") +
                       error.what());
    } catch (...) {
      note_first_error("already_done probe threw: unknown exception");
    }
    if (done_already) {
      report.states[index] = TaskState::kSkipped;
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (std::uint64_t attempt = 0;; ++attempt) {
      if (config.cancel != nullptr && config.cancel->stop_requested()) {
        cancelled_tasks.fetch_add(1, std::memory_order_relaxed);
        return;  // stays kPending; a resume re-runs it
      }
      const TaskGuard guard(config.cancel, config.task_deadline_ms);
      try {
        const obs::Span span("task_attempt", "supervisor");
        task(worker, index, attempt, guard);
        report.states[index] = TaskState::kDone;
        completed.fetch_add(1, std::memory_order_relaxed);
        return;
      } catch (const TaskCancelled&) {
        cancelled_tasks.fetch_add(1, std::memory_order_relaxed);
        recover_worker(worker);  // the abandoned machine is mid-run
        return;                  // stays kPending
      } catch (const TaskDeadlineExceeded& error) {
        watchdog_hits.fetch_add(1, std::memory_order_relaxed);
        emit_event(SupervisorEvent::kWatchdogHit, index);
        note_first_error(error.what());
      } catch (const std::exception& error) {
        note_first_error(error.what());
      } catch (...) {
        note_first_error("unknown exception");
      }
      recover_worker(worker);
      if (attempt >= config.max_task_retries) {
        report.states[index] = TaskState::kHarnessError;
        harness_errors.fetch_add(1, std::memory_order_relaxed);
        emit_event(SupervisorEvent::kHarnessError, index);
        return;
      }
      retries.fetch_add(1, std::memory_order_relaxed);
      emit_event(SupervisorEvent::kRetry, index);
    }
  };

  const DrainReport drain =
      for_each_task(config.threads, count, wrapper, config.cancel);

  report.completed = completed.load();
  report.skipped = skipped.load();
  report.harness_errors = harness_errors.load();
  report.retries = retries.load();
  report.watchdog_hits = watchdog_hits.load();
  report.cancelled_tasks = cancelled_tasks.load();
  report.cancelled =
      drain.cancelled || cancelled_tasks.load() > 0 ||
      (config.cancel != nullptr && config.cancel->stop_requested() &&
       report.completed + report.skipped + report.harness_errors < count);
  return report;
}

namespace {

CancellationToken g_sigint_token;
std::atomic<bool> g_sigint_installed{false};

extern "C" void sefi_sigint_handler(int signal_number) {
  // Async-signal-safe: one atomic store. A second ^C restores the
  // default handler so the process can still be killed interactively.
  if (g_sigint_token.stop_requested()) {
    std::signal(signal_number, SIG_DFL);
    std::raise(signal_number);
    return;
  }
  g_sigint_token.request_stop();
}

}  // namespace

CancellationToken& sigint_token() { return g_sigint_token; }

void install_sigint_drain() {
  if (g_sigint_installed.exchange(true)) return;
  std::signal(SIGINT, sefi_sigint_handler);
}

}  // namespace sefi::exec
