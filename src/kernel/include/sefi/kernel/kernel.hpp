// Guest mini-kernel image builder.
//
// The kernel stands in for the Linux stack of the paper's setups: it owns
// the exception vectors, builds the page table, services syscalls and the
// periodic timer interrupt (with a scheduler-like cache footprint), kills
// faulting applications (-> Application Crash), and panics on kernel-mode
// faults (-> System Crash). It is genuine guest code: its instructions and
// data live in simulated RAM, flow through the caches and TLBs, and are
// therefore corruptible by injected faults and simulated beam strikes —
// exactly the property the paper's System-Crash analysis hinges on.
//
// Exception/crash reason codes reported through the host interface:
//   1 = undefined instruction, 2 = prefetch abort, 3 = data abort,
//   4 = bad syscall / invalid syscall argument.
#pragma once

#include <cstdint>

#include "sefi/isa/assembler.hpp"
#include "sefi/sim/machine.hpp"

namespace sefi::kernel {

struct KernelConfig {
  /// Timer IRQ period in cycles. Zero disables the timer.
  std::uint32_t timer_interval_cycles = 10'000;
  /// Pages mapped by the boot-time page-table loop (identity mapping).
  /// Pages [0, kernel_pages) are kernel-only; the rest are user RWX.
  std::uint32_t mapped_pages = 512;  // 2 MB
  std::uint32_t kernel_pages = 16;   // 64 KB
  /// Words of kernel "run queue" state touched by every timer tick. This
  /// models the scheduler/timer cache footprint whose beam exposure the
  /// paper identifies as the source of excess System Crashes (§VI).
  std::uint32_t sched_footprint_words = 64;
};

/// Crash reason codes used by the kernel (host-event payloads).
namespace reason {
inline constexpr std::uint32_t kUndef = 1;
inline constexpr std::uint32_t kPrefetchAbort = 2;
inline constexpr std::uint32_t kDataAbort = 3;
inline constexpr std::uint32_t kBadSyscall = 4;
}  // namespace reason

/// Builds the kernel image (loaded at physical 0x0; the vector table is
/// its first six words). Exposes symbols "boot", "spawn", "irq_handler".
isa::Program build_kernel(const KernelConfig& config = {});

/// Virtual address ceiling usable by applications under `config`
/// (start of unmapped space); the user stack top must stay below this.
std::uint32_t user_memory_limit(const KernelConfig& config);

/// Loads kernel + application images into `machine` and points the boot
/// info block at the application (entry = app.entry, sp = user_sp).
/// Call machine.boot() afterwards to start.
void install_system(sim::Machine& machine, const isa::Program& kernel_image,
                    const isa::Program& app, std::uint32_t user_sp);

}  // namespace sefi::kernel
