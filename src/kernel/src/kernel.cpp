#include "sefi/kernel/kernel.hpp"

#include "sefi/sim/cpu.hpp"
#include "sefi/sim/memmap.hpp"
#include "sefi/support/error.hpp"

namespace sefi::kernel {

namespace {
using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

/// Kernel-internal run-queue array touched by every timer tick.
constexpr std::uint32_t kRunQueueBase = sim::kKernelDataBase + 0x100;
}  // namespace

std::uint32_t user_memory_limit(const KernelConfig& config) {
  return config.mapped_pages * sim::kPageSize;
}

void install_system(sim::Machine& machine, const isa::Program& kernel_image,
                    const isa::Program& app, std::uint32_t user_sp) {
  support::require(app.base >= sim::kUserBase,
                   "install_system: app must load at/above kUserBase");
  machine.load_image(kernel_image);
  machine.load_image(app);
  machine.set_boot_info(app.entry, user_sp);
}

isa::Program build_kernel(const KernelConfig& config) {
  support::require(config.kernel_pages >= 16,
                   "build_kernel: kernel needs at least 16 pages");
  support::require(config.mapped_pages > config.kernel_pages &&
                       config.mapped_pages <= sim::kNumPages,
                   "build_kernel: bad mapped_pages");
  support::require(
      config.sched_footprint_words * 4 + 0x100 <=
          sim::kKernelDataLimit - sim::kKernelDataBase,
      "build_kernel: scheduler footprint exceeds kernel data region");

  Assembler a(sim::kKernelBase);

  Label boot = a.make_label();
  Label undef_h = a.make_label();
  Label svc_h = a.make_label();
  Label pabort_h = a.make_label();
  Label dabort_h = a.make_label();
  Label irq_h = a.make_label();
  Label spawn = a.make_label();
  Label fault_common = a.make_label();
  Label app_kill_badsvc = a.make_label();
  Label panic = a.make_label();

  // --- vector table (six branch slots at physical 0x0) ------------------
  a.b(boot);      // 0: reset
  a.b(undef_h);   // 1: undefined instruction
  a.b(svc_h);     // 2: supervisor call
  a.b(pabort_h);  // 3: prefetch abort
  a.b(dabort_h);  // 4: data abort
  a.b(irq_h);     // 5: IRQ

  // --- boot --------------------------------------------------------------
  a.bind(boot);
  a.symbol("boot");
  a.mov_imm32(Reg::sp, sim::kKernelStackTop);

  // Zero jiffies and the run queue (boot info at kBootInfoBase was written
  // by the loader and must survive).
  a.movi(Reg::r0, 0);
  a.mov_imm32(Reg::r1, sim::kKernelJiffies);
  a.str(Reg::r0, Reg::r1, 0);
  a.mov_imm32(Reg::r1, kRunQueueBase);
  a.movi(Reg::r2, config.sched_footprint_words);
  {
    Label zq = a.make_label();
    Label zdone = a.make_label();
    a.bind(zq);
    a.cmpi(Reg::r2, 0);
    a.b(Cond::eq, zdone);
    a.str(Reg::r0, Reg::r1, 0);
    a.addi(Reg::r1, Reg::r1, 4);
    a.subi(Reg::r2, Reg::r2, 1);
    a.b(zq);
    a.bind(zdone);
  }

  // Build the identity-mapped page table: pages [0, kernel_pages) are
  // kernel-only, [kernel_pages, mapped_pages) are user RWX, the rest stay
  // invalid.
  a.movi(Reg::r0, 0);  // vpn
  a.mov_imm32(Reg::r1, sim::kPageTableBase);
  {
    Label loop = a.make_label();
    Label is_kernel = a.make_label();
    Label store = a.make_label();
    a.bind(loop);
    a.lsli(Reg::r2, Reg::r0, 12);  // identity PPN field
    a.cmpi(Reg::r0, static_cast<std::int32_t>(config.kernel_pages));
    a.b(Cond::lt, is_kernel);
    a.orri(Reg::r2, Reg::r2,
           sim::pte::kValid | sim::pte::kUserRead | sim::pte::kUserWrite |
               sim::pte::kUserExec);
    a.b(store);
    a.bind(is_kernel);
    a.orri(Reg::r2, Reg::r2, sim::pte::kValid);
    a.bind(store);
    a.lsli(Reg::r3, Reg::r0, 2);
    a.strr(Reg::r2, Reg::r1, Reg::r3);
    a.addi(Reg::r0, Reg::r0, 1);
    a.cmpi(Reg::r0, static_cast<std::int32_t>(config.mapped_pages));
    a.b(Cond::lt, loop);
  }

  // Program the timer.
  if (config.timer_interval_cycles != 0) {
    a.mov_imm32(Reg::r0, config.timer_interval_cycles);
    a.mov_imm32(Reg::r1, sim::kTimerInterval);
    a.str(Reg::r0, Reg::r1, 0);
    a.movi(Reg::r0, 1);
    a.mov_imm32(Reg::r1, sim::kTimerCtrl);
    a.str(Reg::r0, Reg::r1, 0);
  }

  // Enable the MMU for kernel mode (IRQs stay masked in the kernel).
  a.movi(Reg::r0, isa::cpsr::kModeKernel | isa::cpsr::kMmuEnable);
  a.msr(Reg::r0);
  a.b(spawn);

  // --- spawn: (re)start the loaded application ---------------------------
  a.bind(spawn);
  a.symbol("spawn");
  a.movi(Reg::r0, 1);
  a.mov_imm32(Reg::r1, sim::kHostAlive);
  a.str(Reg::r0, Reg::r1, 0);
  // Fresh exec semantics: rebuild the *user* page-table entries and flush
  // the TLBs, as Linux does on every exec/context switch. Kernel PTEs are
  // deliberately left alone — corruption there persists until reboot,
  // which is exactly the beam-exposure behaviour the paper analyses.
  a.movi(Reg::r0, static_cast<std::uint16_t>(config.kernel_pages));
  a.mov_imm32(Reg::r1, sim::kPageTableBase);
  {
    Label loop = a.make_label();
    a.bind(loop);
    a.lsli(Reg::r2, Reg::r0, 12);
    a.orri(Reg::r2, Reg::r2,
           sim::pte::kValid | sim::pte::kUserRead | sim::pte::kUserWrite |
               sim::pte::kUserExec);
    a.lsli(Reg::r3, Reg::r0, 2);
    a.strr(Reg::r2, Reg::r1, Reg::r3);
    a.addi(Reg::r0, Reg::r0, 1);
    a.cmpi(Reg::r0, static_cast<std::int32_t>(config.mapped_pages));
    a.b(Cond::lt, loop);
  }
  a.tlbflush();
  a.mov_imm32(Reg::r1, sim::kBootUserEntry);
  a.ldr(Reg::r2, Reg::r1, 0);
  a.ldr(Reg::r3, Reg::r1, 4);
  a.msr_elr(Reg::r2);
  a.msr_usp(Reg::r3);
  a.movi(Reg::r0, isa::cpsr::kIrqEnable | isa::cpsr::kMmuEnable);
  a.msr_spsr(Reg::r0);
  // Clear user-visible registers so every spawn starts identically.
  for (unsigned r = 0; r < isa::kNumGprs; ++r) {
    if (r == 13) continue;  // sp comes from the banked user SP
    a.movi(static_cast<Reg>(r), 0);
  }
  a.eret();

  // --- syscall dispatcher -------------------------------------------------
  // ABI: number in r7, args in r0..r2, result in r0; r1-r4 are clobbered.
  a.bind(svc_h);
  a.symbol("svc_handler");
  a.cmpi(Reg::r7, static_cast<std::int32_t>(sim::sysno::kExit));
  {
    Label not_exit = a.make_label();
    a.b(Cond::ne, not_exit);
    a.mov_imm32(Reg::r1, sim::kHostExit);
    a.str(Reg::r0, Reg::r1, 0);
    a.b(spawn);
    a.bind(not_exit);
  }
  a.cmpi(Reg::r7, static_cast<std::int32_t>(sim::sysno::kWrite));
  {
    Label not_write = a.make_label();
    a.b(Cond::ne, not_write);
    // Bounds-check [r0, r0+r1) against user memory, EFAULT-style.
    a.mov_imm32(Reg::r2, sim::kUserBase);
    a.cmp(Reg::r0, Reg::r2);
    a.b(Cond::cc, app_kill_badsvc);
    a.add(Reg::r3, Reg::r0, Reg::r1);
    a.mov_imm32(Reg::r2, user_memory_limit(config));
    a.cmp(Reg::r3, Reg::r2);
    a.b(Cond::hi, app_kill_badsvc);
    a.mov_imm32(Reg::r2, sim::kUartTx);
    Label loop = a.make_label();
    Label done = a.make_label();
    a.bind(loop);
    a.cmpi(Reg::r1, 0);
    a.b(Cond::eq, done);
    a.ldrb(Reg::r4, Reg::r0, 0);
    a.str(Reg::r4, Reg::r2, 0);
    a.addi(Reg::r0, Reg::r0, 1);
    a.subi(Reg::r1, Reg::r1, 1);
    a.b(loop);
    a.bind(done);
    a.movi(Reg::r0, 0);
    a.eret();
    a.bind(not_write);
  }
  a.cmpi(Reg::r7, static_cast<std::int32_t>(sim::sysno::kAlive));
  {
    Label not_alive = a.make_label();
    a.b(Cond::ne, not_alive);
    a.mov_imm32(Reg::r1, sim::kHostAlive);
    a.str(Reg::r0, Reg::r1, 0);
    a.eret();
    a.bind(not_alive);
  }
  a.cmpi(Reg::r7, static_cast<std::int32_t>(sim::sysno::kPutc));
  {
    Label not_putc = a.make_label();
    a.b(Cond::ne, not_putc);
    a.mov_imm32(Reg::r1, sim::kUartTx);
    a.str(Reg::r0, Reg::r1, 0);
    a.movi(Reg::r0, 0);
    a.eret();
    a.bind(not_putc);
  }
  a.b(app_kill_badsvc);

  // --- fault handlers ------------------------------------------------------
  a.bind(undef_h);
  a.movi(Reg::r0, reason::kUndef);
  a.b(fault_common);
  a.bind(pabort_h);
  a.movi(Reg::r0, reason::kPrefetchAbort);
  a.b(fault_common);
  a.bind(dabort_h);
  a.movi(Reg::r0, reason::kDataAbort);
  a.b(fault_common);

  a.bind(fault_common);
  a.symbol("fault_common");
  a.mrs_spsr(Reg::r1);
  a.andi(Reg::r1, Reg::r1, isa::cpsr::kModeKernel);
  a.cmpi(Reg::r1, 0);
  a.b(Cond::ne, panic);  // fault hit the kernel itself
  a.mov_imm32(Reg::r1, sim::kHostAppCrash);
  a.str(Reg::r0, Reg::r1, 0);
  a.b(spawn);

  a.bind(app_kill_badsvc);
  a.movi(Reg::r0, reason::kBadSyscall);
  a.mov_imm32(Reg::r1, sim::kHostAppCrash);
  a.str(Reg::r0, Reg::r1, 0);
  a.b(spawn);

  a.bind(panic);
  a.symbol("panic");
  a.mov_imm32(Reg::r1, sim::kHostPanic);
  a.str(Reg::r0, Reg::r1, 0);
  a.hlt();

  // --- timer IRQ handler ----------------------------------------------------
  a.bind(irq_h);
  a.symbol("irq_handler");
  a.push({Reg::r0, Reg::r1, Reg::r2, Reg::r3, Reg::r4});
  a.movi(Reg::r0, 1);
  a.mov_imm32(Reg::r1, sim::kTimerAck);
  a.str(Reg::r0, Reg::r1, 0);
  a.mov_imm32(Reg::r1, sim::kKernelJiffies);
  a.ldr(Reg::r0, Reg::r1, 0);
  a.addi(Reg::r0, Reg::r0, 1);
  a.str(Reg::r0, Reg::r1, 0);
  // Scheduler bookkeeping: walk the run queue, read-modify-write each
  // entry. This keeps genuine kernel data resident in the caches.
  a.mov_imm32(Reg::r1, kRunQueueBase);
  a.movi(Reg::r2, 0);
  {
    Label loop = a.make_label();
    a.bind(loop);
    a.lsli(Reg::r3, Reg::r2, 2);
    a.ldrr(Reg::r4, Reg::r1, Reg::r3);
    a.add(Reg::r4, Reg::r4, Reg::r2);
    a.strr(Reg::r4, Reg::r1, Reg::r3);
    a.addi(Reg::r2, Reg::r2, 1);
    a.cmpi(Reg::r2, static_cast<std::int32_t>(config.sched_footprint_words));
    a.b(Cond::lt, loop);
  }
  a.pop({Reg::r0, Reg::r1, Reg::r2, Reg::r3, Reg::r4});
  a.eret();

  isa::Program program = a.finish();
  support::require(program.size() <= sim::kKernelCodeLimit,
                   "build_kernel: kernel image exceeds its code region");
  return program;
}

}  // namespace sefi::kernel
