#include "sefi/fi/liveness.hpp"

#include <algorithm>

#include "sefi/support/error.hpp"

namespace sefi::fi {

void ComponentLiveness::begin(std::uint32_t regions,
                              const std::uint64_t* cycles,
                              std::uint64_t valid_now,
                              std::uint64_t valid_after_reset,
                              std::uint64_t capacity) {
  support::require(cycles != nullptr, "ComponentLiveness: null cycle counter");
  support::require(regions > 0, "ComponentLiveness: component has no regions");
  intervals_.assign(regions, {});
  kill_bound_.assign(regions, 0);
  kill_all_bound_ = 0;
  cycles_ = cycles;
  recorded_ = false;
  begin_cycle_ = *cycles;
  last_occ_cycle_ = begin_cycle_;
  valid_count_ = valid_now;
  valid_after_reset_ = valid_after_reset;
  capacity_ = capacity;
  occ_integral_ = 0;
  occ_steps_ = 0;
}

void ComponentLiveness::finish(std::uint64_t end_cycle) {
  support::require(cycles_ != nullptr,
                   "ComponentLiveness: finish without begin");
  end_cycle_ = std::max(end_cycle, last_occ_cycle_);
  occ_integral_ += static_cast<double>(valid_count_) *
                   static_cast<double>(end_cycle_ - last_occ_cycle_);
  last_occ_cycle_ = end_cycle_;
  ++occ_steps_;
  cycles_ = nullptr;
  recorded_ = true;
}

void ComponentLiveness::on_region_read(std::uint32_t region) {
  const std::uint64_t stamp = *cycles_;
  // The read extends the region's liveness from just after its last
  // kill (or the recording start) up to this stamp.
  const std::uint64_t lo = std::max(kill_bound_[region], kill_all_bound_);
  if (lo > stamp) return;  // killed at this very stamp already
  std::vector<Interval>& list = intervals_[region];
  if (!list.empty() && list.back().hi + 1 >= lo) {
    list.back().hi = std::max(list.back().hi, stamp);
  } else {
    list.push_back({lo, stamp});
  }
}

void ComponentLiveness::on_region_kill(std::uint32_t region) {
  // A flip strictly after this stamp cannot be seen by reads up to and
  // including it, so the next interval starts at stamp + 1.
  kill_bound_[region] = std::max(kill_bound_[region], *cycles_ + 1);
}

void ComponentLiveness::on_kill_all() {
  kill_all_bound_ = std::max(kill_all_bound_, *cycles_ + 1);
  // Whole-structure reset: occupancy snaps to the post-reset count.
  const std::uint64_t stamp = *cycles_;
  occ_integral_ += static_cast<double>(valid_count_) *
                   static_cast<double>(stamp - last_occ_cycle_);
  last_occ_cycle_ = stamp;
  valid_count_ = valid_after_reset_;
  ++occ_steps_;
}

void ComponentLiveness::on_valid_delta(int delta) {
  const std::uint64_t stamp = *cycles_;
  occ_integral_ += static_cast<double>(valid_count_) *
                   static_cast<double>(stamp - last_occ_cycle_);
  last_occ_cycle_ = stamp;
  const std::int64_t next = static_cast<std::int64_t>(valid_count_) + delta;
  valid_count_ = next < 0 ? 0 : static_cast<std::uint64_t>(next);
  ++occ_steps_;
}

bool ComponentLiveness::live_at(std::uint32_t region,
                                std::uint64_t cycle) const {
  support::require(recorded_, "ComponentLiveness: query before recording");
  support::require(region < intervals_.size(),
                   "ComponentLiveness: region out of range");
  const std::vector<Interval>& list = intervals_[region];
  // First interval whose hi >= cycle; live iff it also starts <= cycle.
  auto it = std::lower_bound(
      list.begin(), list.end(), cycle,
      [](const Interval& iv, std::uint64_t c) { return iv.hi < c; });
  return it != list.end() && it->lo <= cycle;
}

bool ComponentLiveness::live_in(std::uint32_t region, std::uint64_t lo,
                                std::uint64_t hi) const {
  support::require(recorded_, "ComponentLiveness: query before recording");
  support::require(region < intervals_.size(),
                   "ComponentLiveness: region out of range");
  support::require(lo <= hi, "ComponentLiveness: inverted query range");
  const std::vector<Interval>& list = intervals_[region];
  // First interval whose hi >= lo; it intersects [lo, hi] iff it also
  // starts at or before hi (intervals are sorted and disjoint).
  auto it = std::lower_bound(
      list.begin(), list.end(), lo,
      [](const Interval& iv, std::uint64_t c) { return iv.hi < c; });
  return it != list.end() && it->lo <= hi;
}

double ComponentLiveness::mean_occupancy() const {
  support::require(recorded_, "ComponentLiveness: query before recording");
  if (capacity_ == 0 || end_cycle_ <= begin_cycle_) return 0;
  return occ_integral_ /
         (static_cast<double>(capacity_) *
          static_cast<double>(end_cycle_ - begin_cycle_));
}

std::uint64_t ComponentLiveness::interval_count() const {
  std::uint64_t total = 0;
  for (const std::vector<Interval>& list : intervals_) total += list.size();
  return total;
}

}  // namespace sefi::fi
