#include "sefi/fi/campaign.hpp"

#include "sefi/fi/protection.hpp"
#include "sefi/stats/confidence.hpp"
#include "sefi/support/error.hpp"
#include "sefi/support/hash.hpp"
#include "sefi/support/rng.hpp"

namespace sefi::fi {

namespace {
constexpr std::uint64_t kGoldenBudget = 500'000'000;
constexpr std::uint64_t kSpawnPollStep = 500;
}  // namespace

std::string fault_model_name(FaultModel model) {
  switch (model) {
    case FaultModel::kSingleBit: return "single-bit";
    case FaultModel::kDoubleBit: return "double-bit";
  }
  return "?";
}

std::string outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "Masked";
    case Outcome::kSdc: return "SDC";
    case Outcome::kAppCrash: return "AppCrash";
    case Outcome::kSysCrash: return "SysCrash";
  }
  return "?";
}

void ClassCounts::add(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: ++masked; break;
    case Outcome::kSdc: ++sdc; break;
    case Outcome::kAppCrash: ++app_crash; break;
    case Outcome::kSysCrash: ++sys_crash; break;
  }
}

double ComponentResult::avf() const {
  const std::uint64_t n = counts.total();
  if (n == 0) return 0;
  return static_cast<double>(n - counts.masked) / static_cast<double>(n);
}

double ComponentResult::avf_sdc() const {
  const std::uint64_t n = counts.total();
  return n == 0 ? 0 : static_cast<double>(counts.sdc) / static_cast<double>(n);
}

double ComponentResult::avf_app_crash() const {
  const std::uint64_t n = counts.total();
  return n == 0 ? 0
               : static_cast<double>(counts.app_crash) / static_cast<double>(n);
}

double ComponentResult::avf_sys_crash() const {
  const std::uint64_t n = counts.total();
  return n == 0 ? 0
               : static_cast<double>(counts.sys_crash) / static_cast<double>(n);
}

const ComponentResult& WorkloadFiResult::component(
    microarch::ComponentKind kind) const {
  return components[static_cast<std::size_t>(kind)];
}

InjectionRig::InjectionRig(const workloads::Workload& workload,
                           const RigConfig& config, std::uint64_t input_seed)
    : workload_(workload),
      config_(config),
      kernel_image_(kernel::build_kernel(config.kernel)),
      app_image_(workload.build(input_seed)),
      machine_(microarch::make_detailed_machine(config.uarch)) {
  kernel::install_system(machine_, kernel_image_, app_image_,
                         workloads::kWorkloadStackTop);
  // Golden run: cold machine, record the application window and the
  // fault-free output; checkpoint at the window start so injected runs
  // skip boot.
  machine_.boot();
  // The kernel's first act in spawn is the alive heartbeat; poll for it
  // to find the start of the application window.
  while (machine_.devices().alive_count() == 0) {
    const auto event =
        machine_.run_until_cycle(machine_.cpu().cycles() + kSpawnPollStep);
    support::require(!event.has_value(),
                     "InjectionRig: machine stopped during boot");
    support::require(machine_.cpu().cycles() < kGoldenBudget,
                     "InjectionRig: boot never spawned the application");
  }
  golden_.spawn_cycle = machine_.cpu().cycles();
  spawn_snapshot_ = machine_.save_snapshot();
  const sim::RunEvent event = machine_.run(kGoldenBudget);
  support::require(event.kind == sim::RunEventKind::kExit,
                   "InjectionRig: golden run did not exit cleanly for " +
                       workload.info().name);
  golden_.exit_code = event.payload;
  golden_.console = machine_.console();
  golden_.end_cycle = machine_.cpu().cycles();
  golden_.instructions = machine_.cpu().instructions();

  auto& model = microarch::detailed_model(machine_);
  for (const auto kind : microarch::kAllComponents) {
    component_bits_[static_cast<std::size_t>(kind)] =
        model.component(kind).bit_count();
  }
}

std::uint64_t InjectionRig::component_bits(
    microarch::ComponentKind kind) const {
  return component_bits_[static_cast<std::size_t>(kind)];
}

Outcome InjectionRig::run_one(const FaultDescriptor& fault) const {
  // Resume from the spawn checkpoint: the pre-injection path is
  // fault-free and deterministic, so this is bit-identical to a cold
  // boot (tested), minus the boot cost.
  sim::Machine& machine = machine_;
  machine.restore_snapshot(spawn_snapshot_);

  // Advance to the injection cycle along the (so far fault-free) path.
  if (const auto early = machine.run_until_cycle(fault.cycle)) {
    // The machine stopped before the injection point — only possible if
    // the fault cycle exceeds this run's life, which the sampler avoids;
    // classify defensively instead of crashing the campaign.
    (void)early;
    return Outcome::kMasked;
  }
  auto& model = microarch::detailed_model(machine);
  // Protection schemes settle the fault from the structure's state at
  // the injection cycle (sefi/fi/protection.hpp).
  if (const auto adjudicated =
          adjudicate_protection(config_.protection, fault, model)) {
    return *adjudicated;
  }
  auto& component = model.component(fault.component);
  component.flip_bit(fault.bit);
  if (fault.model == FaultModel::kDoubleBit) {
    const std::uint64_t buddy = fault.bit + 1 < component.bit_count()
                                    ? fault.bit + 1
                                    : fault.bit - 1;
    component.flip_bit(buddy);
  }

  const std::uint64_t budget = golden_.end_cycle * config_.hang_budget_factor;
  sim::RunEvent event = machine.run(budget);
  if (event.kind == sim::RunEventKind::kCycleLimit) {
    // Watchdog: probe whether the kernel still services timer IRQs.
    const std::uint64_t before = machine.jiffies();
    const std::uint64_t probe =
        budget + config_.probe_timer_periods *
                     static_cast<std::uint64_t>(
                         config_.kernel.timer_interval_cycles);
    event = machine.run(probe);
    if (event.kind == sim::RunEventKind::kCycleLimit) {
      return machine.jiffies() > before ? Outcome::kAppCrash
                                        : Outcome::kSysCrash;
    }
  }

  switch (event.kind) {
    case sim::RunEventKind::kExit:
      return (event.payload == golden_.exit_code &&
              machine.console() == golden_.console)
                 ? Outcome::kMasked
                 : Outcome::kSdc;
    case sim::RunEventKind::kAppCrash:
      return Outcome::kAppCrash;
    case sim::RunEventKind::kPanic:
    case sim::RunEventKind::kHalted:
    case sim::RunEventKind::kDoubleFault:
      return Outcome::kSysCrash;
    case sim::RunEventKind::kCycleLimit:
      return Outcome::kSysCrash;  // unreachable (probed above)
  }
  return Outcome::kSysCrash;
}

WorkloadFiResult run_fi_campaign(const workloads::Workload& workload,
                                 const CampaignConfig& config) {
  support::require(config.faults_per_component > 0,
                   "run_fi_campaign: need at least one fault");
  const InjectionRig rig(workload, config.rig, config.input_seed);

  WorkloadFiResult result;
  result.workload = workload.info().name;

  const std::uint64_t window =
      rig.golden().end_cycle - rig.golden().spawn_cycle;
  support::require(window > 0, "run_fi_campaign: empty application window");

  for (const auto kind : microarch::kAllComponents) {
    const auto index = static_cast<std::size_t>(kind);
    ComponentResult& comp = result.components[index];
    comp.component = kind;
    comp.bits = rig.component_bits(kind);

    // Independent, reproducible sampling stream per (workload, component).
    support::Xoshiro256 rng(config.seed ^
                            support::fnv1a(workload.info().name) ^
                            (0x9E37u * (index + 1)));
    for (std::uint64_t i = 0; i < config.faults_per_component; ++i) {
      FaultDescriptor fault;
      fault.component = kind;
      fault.bit = rng.below(comp.bits);
      fault.cycle = rig.golden().spawn_cycle + rng.below(window);
      fault.model = config.fault_model;
      comp.counts.add(rig.run_one(fault));
    }
    comp.error_margin = stats::readjusted_error_margin(
        static_cast<double>(comp.bits) * static_cast<double>(window),
        config.faults_per_component, config.confidence, comp.avf());
  }
  return result;
}

}  // namespace sefi::fi
