#include "sefi/fi/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "sefi/exec/parallel.hpp"
#include "sefi/exec/supervisor.hpp"
#include "sefi/fi/protection.hpp"
#include "sefi/obs/forensics.hpp"
#include "sefi/obs/metrics.hpp"
#include "sefi/obs/trace.hpp"
#include "sefi/stats/confidence.hpp"
#include "sefi/stats/estimator.hpp"
#include "sefi/support/error.hpp"
#include "sefi/support/hash.hpp"
#include "sefi/support/rng.hpp"

namespace sefi::fi {

namespace {
constexpr std::uint64_t kGoldenBudget = 500'000'000;
constexpr std::uint64_t kSpawnPollStep = 500;

// Supervised runs slice guest execution into bounded chunks and poll the
// TaskGuard between them, so cancellation and wall-clock deadlines take
// effect mid-injection. The machine's run loop is resumable and
// cycle-exact, so slicing cannot perturb outcomes (tested).
constexpr std::uint64_t kGuardSliceCycles = 4'000'000;

sim::RunEvent run_guarded(sim::Machine& machine, std::uint64_t budget,
                          const exec::TaskGuard* guard) {
  if (guard == nullptr) return machine.run(budget);
  for (;;) {
    guard->check();
    const std::uint64_t slice =
        std::min(budget, machine.cpu().cycles() + kGuardSliceCycles);
    const sim::RunEvent event = machine.run(slice);
    if (event.kind != sim::RunEventKind::kCycleLimit || slice >= budget) {
      return event;
    }
  }
}

std::optional<sim::RunEvent> run_until_cycle_guarded(
    sim::Machine& machine, std::uint64_t target,
    const exec::TaskGuard* guard) {
  if (guard == nullptr) return machine.run_until_cycle(target);
  for (;;) {
    guard->check();
    const std::uint64_t slice =
        std::min(target, machine.cpu().cycles() + kGuardSliceCycles);
    const auto event = machine.run_until_cycle(slice);
    if (event.has_value() || slice >= target) return event;
  }
}

// Scans an unsigned decimal field at *pos (digits only, overflow
// rejected), advancing *pos past it.
bool scan_u64(const std::string& text, std::size_t* pos, std::uint64_t* out) {
  if (*pos >= text.size() || text[*pos] < '0' || text[*pos] > '9') {
    return false;
  }
  std::uint64_t value = 0;
  while (*pos < text.size() && text[*pos] >= '0' && text[*pos] <= '9') {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[*pos] - '0');
    if (value > (~0ull - digit) / 10) return false;
    value = value * 10 + digit;
    ++*pos;
  }
  *out = value;
  return true;
}
}  // namespace

// Journal payload for one classified injection: "o <class>". Anything
// else (corruption that survived the checksum, a future format) fails
// the parse and the injection simply re-runs — a journal can cost
// recomputation, never a wrong outcome.
std::string encode_journal_outcome(Outcome outcome) {
  std::string payload = "o ";
  payload.push_back(static_cast<char>('0' + static_cast<int>(outcome)));
  return payload;
}

bool parse_journal_outcome(const std::string& payload, Outcome* outcome) {
  if (payload.size() != 3 || payload[0] != 'o' || payload[1] != ' ') {
    return false;
  }
  const char digit = payload[2];
  // Reject anything outside the known classes — including the enum's
  // sentinel and digits a future format version might emit. A rejected
  // payload re-runs the injection; it never fabricates an outcome.
  if (digit < '0' || !outcome_in_range(static_cast<std::uint8_t>(digit - '0'))) {
    return false;
  }
  *outcome = static_cast<Outcome>(digit - '0');
  return true;
}

std::string encode_journal_telemetry(const JournalTelemetry& telemetry) {
  return "t " + std::to_string(telemetry.retries) + ' ' +
         std::to_string(telemetry.watchdog_hits) + ' ' +
         std::to_string(telemetry.harness_errors);
}

bool parse_journal_telemetry(const std::string& payload,
                             JournalTelemetry* telemetry) {
  if (payload.size() < 2 || payload[0] != 't' || payload[1] != ' ') {
    return false;
  }
  std::size_t pos = 2;
  JournalTelemetry parsed;
  if (!scan_u64(payload, &pos, &parsed.retries)) return false;
  if (pos >= payload.size() || payload[pos] != ' ') return false;
  ++pos;
  if (!scan_u64(payload, &pos, &parsed.watchdog_hits)) return false;
  if (pos >= payload.size() || payload[pos] != ' ') return false;
  ++pos;
  if (!scan_u64(payload, &pos, &parsed.harness_errors)) return false;
  if (pos != payload.size()) return false;
  *telemetry = parsed;
  return true;
}

std::string fault_model_name(FaultModel model) {
  switch (model) {
    case FaultModel::kSingleBit: return "single-bit";
    case FaultModel::kDoubleBit: return "double-bit";
  }
  return "?";
}

std::string prune_mode_name(PruneMode mode) {
  switch (mode) {
    case PruneMode::kOff: return "off";
    case PruneMode::kClassify: return "classify";
    case PruneMode::kSample: return "sample";
  }
  return "?";
}

PruneMode prune_mode_from_name(const std::string& name) {
  if (name == "off") return PruneMode::kOff;
  if (name == "classify") return PruneMode::kClassify;
  if (name == "sample") return PruneMode::kSample;
  throw support::SefiError("unknown prune mode \"" + name +
                           "\" (want off|classify|sample)");
}

std::string outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: return "Masked";
    case Outcome::kSdc: return "SDC";
    case Outcome::kAppCrash: return "AppCrash";
    case Outcome::kSysCrash: return "SysCrash";
    case Outcome::kHarnessError: return "HarnessError";
    case Outcome::kDetected: return "Detected";
    case Outcome::kOutcomeCount: break;
  }
  return "?";
}

void ClassCounts::add(Outcome outcome) {
  switch (outcome) {
    case Outcome::kMasked: ++masked; break;
    case Outcome::kSdc: ++sdc; break;
    case Outcome::kAppCrash: ++app_crash; break;
    case Outcome::kSysCrash: ++sys_crash; break;
    case Outcome::kHarnessError: ++harness_error; break;
    case Outcome::kDetected: ++detected; break;
    case Outcome::kOutcomeCount: break;
  }
}

namespace {
// Shared rate arithmetic for the avf() family. Exhaustive campaigns
// (kOff and kClassify: every live site executed, so the classified
// counts cover the whole sample) divide exactly as the unpruned code
// always did — the same two integers in the same order — so kClassify
// is bit-identical to kOff. Only a genuinely subsampled live stratum
// (kSample) takes the reweighted path.
double outcome_rate(const ComponentResult& result, std::uint64_t faulty) {
  const std::uint64_t total = result.counts.total();
  if (total == 0) return 0;
  const std::uint64_t executed = total - result.pruned_masked;
  if (result.live_sites == 0 || executed >= result.live_sites) {
    return static_cast<double>(faulty) / static_cast<double>(total);
  }
  if (executed == 0) return 0;
  const std::uint64_t n = result.pruned_masked + result.live_sites;
  const double weight = static_cast<double>(result.live_sites) /
                        static_cast<double>(n);
  return weight * static_cast<double>(faulty) /
         static_cast<double>(executed);
}
}  // namespace

double ComponentResult::avf() const {
  return outcome_rate(*this, counts.total() - counts.masked);
}

double ComponentResult::avf_sdc() const { return outcome_rate(*this, counts.sdc); }

double ComponentResult::avf_app_crash() const {
  return outcome_rate(*this, counts.app_crash);
}

double ComponentResult::avf_sys_crash() const {
  return outcome_rate(*this, counts.sys_crash);
}

double ComponentResult::avf_detected() const {
  return outcome_rate(*this, counts.detected);
}

const ComponentResult& WorkloadFiResult::component(
    microarch::ComponentKind kind) const {
  return components[static_cast<std::size_t>(kind)];
}

namespace {
// Captures an InjectableComponent's bit -> region map as closed-form
// (period, split) parameters so pruning can classify fault sites long
// after the recording machine is gone. Every component's bit_region is
// periodic with at most one internal split; the first bits of regions 1
// and 2 pin both parameters exactly (a single-region-per-period layout
// like the register file is the degenerate split at period/2).
template <typename Layout>
Layout capture_region_layout(const microarch::InjectableComponent& comp) {
  Layout layout;
  const std::uint64_t bits = comp.bit_count();
  layout.period = bits == 0 ? 1 : bits;
  layout.split = 0;
  std::uint64_t first_of_1 = bits;
  for (std::uint64_t bit = 0; bit < bits; ++bit) {
    const std::uint32_t region = comp.bit_region(bit);
    if (region == 1 && first_of_1 == bits) first_of_1 = bit;
    if (region == 2) {
      layout.period = bit;
      layout.split = first_of_1;
      break;
    }
  }
  if (layout.split == 0 && first_of_1 < bits) {
    // Two regions total: one period spanning the whole structure.
    layout.split = first_of_1;
  }
  // Cross-check the closed form against the component's own map at the
  // boundaries it must reproduce.
  for (const std::uint64_t probe :
       {std::uint64_t{0}, first_of_1, bits > 0 ? bits - 1 : 0}) {
    if (probe >= bits) continue;
    support::require(layout.region(probe) == comp.bit_region(probe),
                     "InjectionRig: region layout capture mismatch");
  }
  return layout;
}
}  // namespace

InjectionRig::InjectionRig(const workloads::Workload& workload,
                           const RigConfig& config, std::uint64_t input_seed,
                           std::uint64_t checkpoints, bool record_liveness)
    : workload_(workload),
      config_(config),
      kernel_image_(kernel::build_kernel(config.kernel)),
      app_image_(harden::apply(workload.build(input_seed), config.harden,
                               config.harden_options)) {
  // Golden run: cold machine, record the application window and the
  // fault-free output; checkpoint at the window start so injected runs
  // skip boot. The machine is construction-local — injected runs execute
  // on per-Context machines restored from the shared snapshots.
  sim::Machine machine = microarch::make_detailed_machine(config.uarch);
  kernel::install_system(machine, kernel_image_, app_image_,
                         workloads::kWorkloadStackTop);
  {
    const obs::Span span("golden_run", "fi");
    machine.boot();
    // The kernel's first act in spawn is the alive heartbeat; poll for it
    // to find the start of the application window.
    while (machine.devices().alive_count() == 0) {
      const auto event =
          machine.run_until_cycle(machine.cpu().cycles() + kSpawnPollStep);
      support::require(!event.has_value(),
                       "InjectionRig: machine stopped during boot");
      support::require(machine.cpu().cycles() < kGoldenBudget,
                       "InjectionRig: boot never spawned the application");
    }
    golden_.spawn_cycle = machine.cpu().cycles();
    base_ = machine.save_snapshot();
    const sim::RunEvent event = machine.run(kGoldenBudget);
    support::require(event.kind == sim::RunEventKind::kExit,
                     "InjectionRig: golden run did not exit cleanly for " +
                         workload.info().name);
    golden_.exit_code = event.payload;
    golden_.console = machine.console();
    golden_.end_cycle = machine.cpu().cycles();
    golden_.instructions = machine.cpu().instructions();
  }

  auto& model = microarch::detailed_model(machine);
  for (const auto kind : microarch::kAllComponents) {
    component_bits_[static_cast<std::size_t>(kind)] =
        model.component(kind).bit_count();
  }

  // Checkpoint ladder: replay the (deterministic, fault-free) window once
  // more, capturing rungs at K evenly-spaced cycles. Rung 0 stays a full
  // snapshot; the rungs above it are stored as sparse page deltas against
  // it, so ladder memory scales with the pages the window touches. The
  // one extra window replay is amortized over the whole campaign; each
  // injected run then replays at most window/K cycles instead of up to
  // the full window.
  const std::uint64_t window = golden_.end_cycle - golden_.spawn_cycle;
  const std::uint64_t rungs = checkpoints == 0 ? 1 : checkpoints;
  const bool build_ladder = rungs > 1 && window > 0;
  const bool record = record_liveness && window > 0;
  if (build_ladder || record) {
    const obs::Span span("checkpoint_ladder", "fi");
    machine.restore_snapshot(base_);
    // Liveness recording shares the ladder's window replay. It must
    // observe every read an injected run might perform, so the replay
    // forces the interpreter fast path off: uop purity proofs let the
    // fast tiers skip real L1I/ITLB reads that an injected run would
    // re-materialize (a flip bumps state stamps and voids the proofs),
    // making the fastpath-off read stream a strict superset of any
    // tier's. Injected runs may then run whichever tier is configured.
    const sim::FastPath tier = machine.cpu().fastpath();
    if (record) {
      machine.cpu().set_fastpath(sim::FastPath::kOff);
      liveness_ = std::make_unique<LivenessMap>();
      auto& model = microarch::detailed_model(machine);
      const std::uint64_t* cycles = machine.cpu().cycle_counter();
      const auto attach = [&](microarch::ComponentKind kind,
                              std::uint64_t valid_now,
                              std::uint64_t valid_after_reset,
                              std::uint64_t capacity) {
        auto& comp = model.component(kind);
        region_layout_[static_cast<std::size_t>(kind)] =
            capture_region_layout<RegionLayout>(comp);
        ComponentLiveness& live = liveness_->component(kind);
        live.begin(comp.region_count(), cycles, valid_now, valid_after_reset,
                   capacity);
        comp.set_access_observer(&live);
      };
      attach(microarch::ComponentKind::kL1I, model.l1i().valid_lines(), 0,
             model.l1i().region_count() / 2);
      attach(microarch::ComponentKind::kL1D, model.l1d().valid_lines(), 0,
             model.l1d().region_count() / 2);
      attach(microarch::ComponentKind::kL2, model.l2().valid_lines(), 0,
             model.l2().region_count() / 2);
      attach(microarch::ComponentKind::kITlb, model.itlb().valid_entries(),
             0, model.itlb().entries());
      attach(microarch::ComponentKind::kDTlb, model.dtlb().valid_entries(),
             0, model.dtlb().entries());
      // The renamer keeps every architectural register mapped at all
      // times (reset included), so regfile occupancy is arch/phys.
      attach(microarch::ComponentKind::kRegFile,
             model.regfile().mapped_count(), model.regfile().mapped_count(),
             model.regfile().num_phys());
    }
    for (std::uint64_t rung = 1; rung < rungs; ++rung) {
      const std::uint64_t target = golden_.spawn_cycle + rung * window / rungs;
      const std::uint64_t last = delta_rungs_.empty()
                                     ? golden_.spawn_cycle
                                     : delta_rungs_.back().cycle;
      if (target <= last) continue;  // tiny window, dense rungs
      if (machine.run_until_cycle(target).has_value()) break;
      delta_rungs_.push_back(
          {machine.cpu().cycles(), machine.save_delta_snapshot(base_)});
    }
    if (record) {
      // Run the rest of the window to the golden exit so the recording
      // covers every cycle an injected fault can land on.
      const sim::RunEvent event = machine.run(kGoldenBudget);
      support::require(event.kind == sim::RunEventKind::kExit,
                       "InjectionRig: liveness replay did not exit cleanly");
      auto& model = microarch::detailed_model(machine);
      for (const auto kind : microarch::kAllComponents) {
        model.component(kind).set_access_observer(nullptr);
        liveness_->component(kind).finish(machine.cpu().cycles());
      }
      // An injected run's flip lands at the first instruction boundary
      // at or past the fault cycle, up to one max-length step later;
      // provably_masked must require the region dead over that whole
      // slack window. The recording machine just replayed boot plus the
      // full golden window, so its max step bounds every step a flip
      // can straddle.
      prune_slack_ = machine.max_step_cycles();
      machine.cpu().set_fastpath(tier);
    }
  }
}

bool InjectionRig::provably_masked(const FaultDescriptor& fault) const {
  support::require(liveness_ != nullptr,
                   "InjectionRig: provably_masked needs record_liveness");
  // Protected components adjudicate faults from codeword state without a
  // structural read, so liveness says nothing about their outcomes.
  if (config_.protection.component(fault.component) != Protection::kNone) {
    return false;
  }
  const std::size_t index = static_cast<std::size_t>(fault.component);
  const ComponentLiveness& live = liveness_->component(fault.component);
  const RegionLayout& layout = region_layout_[index];
  // The flip lands at the first instruction boundary at or past
  // fault.cycle — up to prune_slack_ cycles later — so the masked proof
  // needs the region dead over the whole landing window, not just at
  // the nominal cycle (see the cycle-stamp note in liveness.hpp).
  const std::uint64_t land_hi = fault.cycle + prune_slack_;
  if (live.live_in(layout.region(fault.bit), fault.cycle, land_hi)) {
    return false;
  }
  if (fault.model == FaultModel::kDoubleBit) {
    const std::uint64_t bits = component_bits_[index];
    if (bits <= 1) {
      // Degenerate double-bit on a one-bit structure flips only the one
      // bit — already proven dead above.
      return true;
    }
    const std::uint64_t buddy =
        fault.bit + 1 < bits ? fault.bit + 1 : fault.bit - 1;
    if (live.live_in(layout.region(buddy), fault.cycle, land_hi)) {
      return false;
    }
  }
  return true;
}

std::uint64_t InjectionRig::ladder_resident_bytes() const {
  std::uint64_t bytes = base_.resident_bytes();
  for (const DeltaRung& rung : delta_rungs_) {
    bytes += rung.snapshot.resident_bytes();
  }
  return bytes;
}

std::uint64_t InjectionRig::component_bits(
    microarch::ComponentKind kind) const {
  return component_bits_[static_cast<std::size_t>(kind)];
}

std::size_t InjectionRig::nearest_checkpoint(std::uint64_t cycle) const {
  // The ladder is small (a handful of rungs) and sorted by cycle; scan
  // for the greatest rung at or below the fault cycle.
  std::size_t best = 0;
  for (std::size_t i = 0; i < delta_rungs_.size(); ++i) {
    if (delta_rungs_[i].cycle > cycle) break;
    best = i + 1;
  }
  return best;
}

Outcome InjectionRig::run_one(const FaultDescriptor& fault,
                              const exec::TaskGuard* guard) const {
  if (!own_context_) own_context_ = std::make_unique<Context>(*this);
  return own_context_->run_one(fault, guard);
}

InjectionRig::Context::Context(const InjectionRig& rig)
    : rig_(&rig),
      machine_(microarch::make_detailed_machine(rig.config_.uarch)) {
  // The machine's full state (RAM, devices, CPU, arrays) comes from the
  // rig's snapshots at run_one time; no install/boot needed here.
  machine_.set_delta_restore(rig.config_.delta_restore);
}

Outcome InjectionRig::Context::run_one(const FaultDescriptor& fault,
                                       const exec::TaskGuard* guard,
                                       InjectionForensics* forensics) {
  // Resume from the nearest ladder rung at or below the fault cycle: the
  // pre-injection path is fault-free and deterministic, so this is
  // bit-identical to a cold boot (tested), minus the boot cost and minus
  // the replay the rung already skipped.
  const GoldenRun& golden = rig_->golden_;
  const std::size_t rung = rig_->nearest_checkpoint(fault.cycle);
  std::uint64_t rung_cycle = golden.spawn_cycle;
  {
    const obs::Span span("restore", "fi");
    if (rung == 0) {
      machine_.restore_snapshot(rig_->base_);
    } else {
      const DeltaRung& delta_rung = rig_->delta_rungs_[rung - 1];
      machine_.restore_snapshot(rig_->base_, delta_rung.snapshot);
      rung_cycle = delta_rung.cycle;
    }
  }
  boot_cycles_saved_ += golden.spawn_cycle;
  ladder_cycles_saved_ += rung_cycle - golden.spawn_cycle;
  if (forensics != nullptr) {
    *forensics = InjectionForensics{};
    forensics->injection_cycle = fault.cycle;
  }

  // Advance to the injection cycle along the (so far fault-free) path.
  const auto early = [&] {
    const obs::Span span("replay", "fi");
    return run_until_cycle_guarded(machine_, fault.cycle, guard);
  }();
  replay_cycles_ += machine_.cpu().cycles() - rung_cycle;
  if (early.has_value()) {
    // The machine stopped before the injection point — only possible if
    // the fault cycle exceeds this run's life, which the sampler avoids;
    // classify defensively instead of crashing the campaign.
    return Outcome::kMasked;
  }
  auto& model = microarch::detailed_model(machine_);
  auto& component = model.component(fault.component);
  if (forensics != nullptr) {
    forensics->site = component.locate_bit(fault.bit);
  }
  // Protection schemes settle the fault from the structure's state at
  // the injection cycle (sefi/fi/protection.hpp). An adjudicated fault
  // never reaches the structure, so activation stays false and the
  // verdict latency is zero.
  if (const auto adjudicated =
          adjudicate_protection(rig_->config_.protection, fault, model)) {
    return *adjudicated;
  }
  {
    const obs::Span span("inject", "fi");
    component.flip_bit(fault.bit);
    // Double-bit upsets need a neighbour to flip; a one-bit structure has
    // none (bit 0 - 1 would wrap), so the model degrades to single-bit.
    if (fault.model == FaultModel::kDoubleBit && component.bit_count() > 1) {
      const std::uint64_t buddy = fault.bit + 1 < component.bit_count()
                                      ? fault.bit + 1
                                      : fault.bit - 1;
      component.flip_bit(buddy);
    }
  }
  // Arm the one-shot activation watch on the corrupted location. If the
  // guard throws mid-run the watch stays armed on this machine, but the
  // supervisor's recover hook then destroys the whole Context, so a
  // stale watch never survives into another injection.
  if (forensics != nullptr) {
    component.arm_watch(fault.bit, machine_.cpu().cycle_counter());
  }

  const Outcome outcome = [&]() -> Outcome {
    const obs::Span span("execute", "fi");
    const RigConfig& config = rig_->config_;
    const std::uint64_t budget = golden.end_cycle * config.hang_budget_factor;
    sim::RunEvent event = run_guarded(machine_, budget, guard);
    if (event.kind == sim::RunEventKind::kCycleLimit) {
      // Watchdog: probe whether the kernel still services timer IRQs.
      const std::uint64_t before = machine_.jiffies();
      const std::uint64_t probe =
          budget + config.probe_timer_periods *
                       static_cast<std::uint64_t>(
                           config.kernel.timer_interval_cycles);
      event = run_guarded(machine_, probe, guard);
      if (event.kind == sim::RunEventKind::kCycleLimit) {
        return machine_.jiffies() > before ? Outcome::kAppCrash
                                           : Outcome::kSysCrash;
      }
    }

    switch (event.kind) {
      case sim::RunEventKind::kExit:
        // A hardened workload that trips its own DWC/TMR/CFCSS check
        // exits through the detection handler, whose banner can land
        // after partial legitimate output — match by containment, not
        // equality. Golden consoles are hex digests and can never
        // contain the banner, so fault-free runs are unaffected.
        if (machine_.console().find(harden::kDetectConsole) !=
            std::string::npos) {
          return Outcome::kDetected;
        }
        return (event.payload == golden.exit_code &&
                machine_.console() == golden.console)
                   ? Outcome::kMasked
                   : Outcome::kSdc;
      case sim::RunEventKind::kAppCrash:
        return Outcome::kAppCrash;
      case sim::RunEventKind::kPanic:
      case sim::RunEventKind::kHalted:
      case sim::RunEventKind::kDoubleFault:
        return Outcome::kSysCrash;
      case sim::RunEventKind::kCycleLimit:
        return Outcome::kSysCrash;  // unreachable (probed above)
    }
    return Outcome::kSysCrash;
  }();

  if (forensics != nullptr) {
    forensics->activated = component.watch_activated();
    forensics->first_activation_cycle = component.watch_activation_cycle();
    forensics->latency_to_verdict_cycles =
        machine_.cpu().cycles() - fault.cycle;
    component.disarm_watch();
  }
  return outcome;
}

std::vector<FaultDescriptor> sample_component_faults(
    const CampaignConfig& config, const std::string& workload_name,
    microarch::ComponentKind kind, std::uint64_t component_bits,
    std::uint64_t spawn_cycle, std::uint64_t window) {
  // Independent, reproducible sampling stream per (workload, component):
  // the component index selects a SplitMix64-derived substream of the
  // (seed, workload) root, so streams are decorrelated — not merely
  // xor-shifted copies of each other.
  support::Xoshiro256 rng(support::derive_stream_seed(
      config.seed ^ support::fnv1a(workload_name),
      static_cast<std::uint64_t>(kind)));
  std::vector<FaultDescriptor> faults(config.faults_per_component);
  for (FaultDescriptor& fault : faults) {
    fault.component = kind;
    fault.bit = rng.below(component_bits);
    fault.cycle = spawn_cycle + rng.below(window);
    fault.model = config.fault_model;
  }
  return faults;
}

WorkloadFiResult run_fi_campaign(const workloads::Workload& workload,
                                 const CampaignConfig& config) {
  const InjectionRig rig(workload, config.rig, config.input_seed,
                         config.checkpoints,
                         /*record_liveness=*/config.prune != PruneMode::kOff);
  return run_fi_campaign(rig, config);
}

WorkloadFiResult run_fi_campaign(const InjectionRig& rig,
                                 const CampaignConfig& config) {
  const obs::Span campaign_span("fi_campaign", "fi");
  support::require(config.faults_per_component > 0,
                   "run_fi_campaign: need at least one fault");
  support::require(config.range_begin < config.range_end,
                   "run_fi_campaign: empty fault-index range");
  // Executor-only shard window; everything identity-relevant (sampling,
  // prune classification) still covers the full index space.
  const auto in_range = [&](std::size_t index) {
    return index >= config.range_begin && index < config.range_end;
  };

  // Campaign metrics, registered once per process; call sites below pay
  // one relaxed load + branch when metrics are off (DESIGN.md §11).
  static obs::Counter& injections_metric = obs::Registry::instance().counter(
      "sefi_fi_injections_total",
      "Injected runs executed in this process (journal replays excluded)");
  static constexpr std::size_t kOutcomeClasses =
      static_cast<std::size_t>(Outcome::kOutcomeCount);
  static const std::array<obs::Counter*, kOutcomeClasses> outcome_metrics = [] {
    std::array<obs::Counter*, kOutcomeClasses> counters{};
    for (std::size_t i = 0; i < counters.size(); ++i) {
      counters[i] = &obs::Registry::instance().counter(
          "sefi_fi_outcomes_total",
          "Injection outcomes resolved in this process, by class",
          "class=\"" + outcome_name(static_cast<Outcome>(i)) + "\"");
    }
    return counters;
  }();
  static obs::Histogram& latency_metric = obs::Registry::instance().histogram(
      "sefi_fi_latency_to_verdict_cycles",
      "Guest cycles from bit flip to the classification verdict",
      {1e4, 1e5, 1e6, 3e6, 1e7, 3e7, 1e8});
  // Interpreter fast-path telemetry (DESIGN.md §12). Booked once per
  // campaign from the merged tallies, not per step — the hot loop stays
  // free of metric loads.
  static obs::Counter& uop_hits_metric = obs::Registry::instance().counter(
      "sefi_uop_cache_hits_total",
      "Uop-cache fast hits (fetch and decode both skipped)");
  static obs::Counter& uop_misses_metric = obs::Registry::instance().counter(
      "sefi_uop_cache_misses_total",
      "Uop-cache misses (full fetch+decode+fill steps)");
  static obs::Counter& uop_invalidations_metric =
      obs::Registry::instance().counter(
          "sefi_uop_cache_invalidations_total",
          "Stale uop-cache entries found and replaced");
  static obs::Gauge& guest_mips_metric = obs::Registry::instance().gauge(
      "sefi_guest_mips",
      "Guest instructions retired per wall-clock microsecond, last campaign");
  // Fault-site pruning telemetry (DESIGN.md §13).
  static obs::Counter& pruned_sites_metric = obs::Registry::instance().counter(
      "sefi_fi_pruned_sites_total",
      "Fault sites proven Masked by liveness pruning (never executed)");
  static obs::Counter& live_sites_metric = obs::Registry::instance().counter(
      "sefi_fi_live_sites_total",
      "Fault sites not provably masked (the live stratum)");
  static obs::Gauge& pruned_fraction_metric = obs::Registry::instance().gauge(
      "sefi_fi_pruned_fraction",
      "Pruned fraction of classified fault sites, last campaign");
  static obs::Gauge& estimator_variance_metric =
      obs::Registry::instance().gauge(
          "sefi_fi_estimator_variance_max",
          "Largest per-component AVF estimator variance, last campaign");

  // Forensics sink: an explicitly configured one wins; otherwise the
  // SEFI_TRACE-gated process-global sink (null when tracing is off).
  obs::ForensicsSink* forensics = config.forensics != nullptr
                                      ? config.forensics
                                      : obs::ForensicsSink::global();

  WorkloadFiResult result;
  result.workload = rig.workload().info().name;

  const std::uint64_t window =
      rig.golden().end_cycle - rig.golden().spawn_cycle;
  support::require(window > 0, "run_fi_campaign: empty application window");

  // Pre-sample every descriptor before dispatch (the determinism
  // contract): the sampling streams never observe execution, so the full
  // fault list — and therefore the result — is fixed here, independent
  // of how the injections are later scheduled over workers.
  std::vector<FaultDescriptor> faults;
  faults.reserve(microarch::kNumComponents * config.faults_per_component);
  {
    const obs::Span span("sample_faults", "fi");
    for (const auto kind : microarch::kAllComponents) {
      ComponentResult& comp =
          result.components[static_cast<std::size_t>(kind)];
      comp.component = kind;
      comp.bits = rig.component_bits(kind);
      const std::vector<FaultDescriptor> sampled = sample_component_faults(
          config, result.workload, kind, comp.bits, rig.golden().spawn_cycle,
          window);
      faults.insert(faults.end(), sampled.begin(), sampled.end());
    }
  }

  // Replay the resume journal (if any): injections it already classified
  // are skipped by the supervisor and their recorded outcomes merged
  // as-is, so an interrupted-then-resumed campaign is bit-identical to an
  // uninterrupted one (faults were pre-sampled above, so indices mean the
  // same experiments in both processes; the journal header guards against
  // a stale file from a different campaign).
  std::vector<Outcome> outcomes(faults.size(), Outcome::kMasked);
  std::vector<char> replayed(faults.size(), 0);
  if (config.journal != nullptr) {
    for (std::size_t index = 0; index < faults.size(); ++index) {
      if (!in_range(index)) continue;
      const std::string* payload =
          config.journal->lookup(static_cast<std::uint64_t>(index));
      if (payload == nullptr) continue;
      Outcome outcome{};
      if (!parse_journal_outcome(*payload, &outcome)) continue;
      outcomes[index] = outcome;
      replayed[index] = 1;
      // Replayed verdicts still get a forensics record (so the sink's
      // verdict counts match the merged ClassCounts), but the injection
      // was not re-executed: site decode and activation are absent.
      if (forensics != nullptr) {
        obs::ForensicsSink::Record record;
        record.workload = result.workload;
        record.component = microarch::component_name(faults[index].component);
        record.flat_bit = faults[index].bit;
        record.injection_cycle = faults[index].cycle;
        record.verdict = outcome_name(outcome);
        record.replayed = true;
        forensics->write(record);
      }
    }
  }

  // Fault-site pruning (DESIGN.md §13): classify every sampled site
  // against the golden liveness recording before dispatch. Provably
  // masked sites book their (certain) Masked verdict here and never
  // reach a worker; under kSample the live remainder is further thinned
  // to a uniform without-replacement subsample per component, chosen
  // from a dedicated RNG substream so the choice is independent of the
  // fault-sampling streams and of execution order.
  enum class Disposition : std::uint8_t {
    kExecute = 0,
    kPrunedMasked,
    kLiveUnsampled,
  };
  std::vector<Disposition> disposition(faults.size(), Disposition::kExecute);
  if (config.prune != PruneMode::kOff) {
    const obs::Span span("prune_classify", "fi");
    double sample_fraction = config.prune_sample_fraction;
    if (!(sample_fraction > 0) || sample_fraction > 1) sample_fraction = 1;
    std::vector<std::size_t> live_indices;
    std::size_t base = 0;
    for (const auto kind : microarch::kAllComponents) {
      live_indices.clear();
      for (std::uint64_t i = 0; i < config.faults_per_component; ++i) {
        const std::size_t index = base + i;
        // Classification (and the live-index list feeding the kSample
        // draw below) must cover out-of-range indices too, so every
        // shard derives the identical disposition vector; only the
        // telemetry/forensics bookkeeping is scoped to this range.
        if (rig.provably_masked(faults[index])) {
          disposition[index] = Disposition::kPrunedMasked;
          if (in_range(index)) {
            pruned_sites_metric.add();
            outcome_metrics[static_cast<std::size_t>(Outcome::kMasked)]->add();
            if (forensics != nullptr) {
              obs::ForensicsSink::Record record;
              record.workload = result.workload;
              record.component =
                  microarch::component_name(faults[index].component);
              record.flat_bit = faults[index].bit;
              record.injection_cycle = faults[index].cycle;
              record.verdict = outcome_name(Outcome::kMasked);
              record.pruned = true;
              forensics->write(record);
            }
          }
        } else {
          live_indices.push_back(index);
          if (in_range(index)) live_sites_metric.add();
        }
      }
      if (config.prune == PruneMode::kSample && !live_indices.empty()) {
        const std::uint64_t live =
            static_cast<std::uint64_t>(live_indices.size());
        const std::uint64_t chosen = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   sample_fraction * static_cast<double>(live) + 0.5));
        if (chosen < live) {
          // Partial Fisher-Yates: the first `chosen` slots end up a
          // uniform without-replacement draw from the live sites.
          support::Xoshiro256 rng(support::derive_stream_seed(
              config.seed ^ support::fnv1a(result.workload + "#prune"),
              static_cast<std::uint64_t>(kind)));
          for (std::uint64_t j = 0; j < chosen; ++j) {
            const std::uint64_t pick = j + rng.below(live - j);
            std::swap(live_indices[j], live_indices[pick]);
          }
          for (std::uint64_t j = chosen; j < live; ++j) {
            disposition[live_indices[j]] = Disposition::kLiveUnsampled;
          }
        }
      }
      base += config.faults_per_component;
    }
  }

  // Fan the injections out under the supervisor (fault isolation,
  // retries, watchdog, cooperative cancel — DESIGN.md §10). Each worker
  // owns a private machine restored from the rig's shared checkpoint
  // ladder and writes outcomes into its tasks' index slots only.
  const std::size_t threads =
      exec::resolve_threads(config.threads, faults.size());
  std::vector<std::unique_ptr<InjectionRig::Context>> contexts(threads);

  // Throughput counters must survive recovery: when the supervisor
  // rebuilds a worker's Context after a failed attempt, the old
  // context's tallies are banked here first.
  struct WorkerTally {
    std::uint64_t replay_cycles = 0;
    std::uint64_t ladder_saved = 0;
    std::uint64_t boot_saved = 0;
    std::uint64_t full_restores = 0;
    std::uint64_t delta_restores = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t delta_pages = 0;
    sim::UopStats uops;
    std::uint64_t guest_instructions = 0;
  };
  std::vector<WorkerTally> tallies(threads);
  auto bank_context = [&](std::size_t worker) {
    auto& context = contexts[worker];
    if (!context) return;
    WorkerTally& tally = tallies[worker];
    tally.replay_cycles += context->replay_cycles();
    tally.ladder_saved += context->ladder_cycles_saved();
    tally.boot_saved += context->boot_cycles_saved();
    const sim::Machine::RestoreStats& restores = context->restore_stats();
    tally.full_restores += restores.restores - restores.delta_restores;
    tally.delta_restores += restores.delta_restores;
    tally.bytes_copied += restores.bytes_copied;
    tally.delta_pages += restores.delta_pages_copied;
    const sim::UopStats& uops = context->uop_stats();
    tally.uops.hits += uops.hits;
    tally.uops.decode_hits += uops.decode_hits;
    tally.uops.misses += uops.misses;
    tally.uops.invalidations += uops.invalidations;
    tally.guest_instructions += context->guest_instructions();
    context.reset();
  };

  exec::SupervisorConfig supervisor;
  supervisor.threads = threads;
  supervisor.max_task_retries = config.max_task_retries;
  supervisor.task_deadline_ms = config.task_deadline_ms;
  supervisor.cancel = config.cancel;

  // Persist cumulative supervisor telemetry into the journal as incidents
  // happen, seeded from any prior process's record, so a killed
  // campaign's retry/watchdog history survives into `campaign status`.
  // The mutex serializes increment+record so the last journal record
  // always holds the exact cumulative counts.
  JournalTelemetry telemetry;
  std::mutex telemetry_mutex;
  if (config.journal != nullptr) {
    if (const std::string* payload =
            config.journal->lookup(kJournalTelemetryIndex)) {
      parse_journal_telemetry(*payload, &telemetry);
    }
    supervisor.on_event = [&](exec::SupervisorEvent event, std::size_t) {
      const std::lock_guard<std::mutex> lock(telemetry_mutex);
      switch (event) {
        case exec::SupervisorEvent::kRetry: ++telemetry.retries; break;
        case exec::SupervisorEvent::kWatchdogHit:
          ++telemetry.watchdog_hits;
          break;
        case exec::SupervisorEvent::kHarnessError:
          ++telemetry.harness_errors;
          break;
      }
      config.journal->record(kJournalTelemetryIndex,
                             encode_journal_telemetry(telemetry));
    };
  }

  const auto start = std::chrono::steady_clock::now();
  const exec::SupervisorReport report = exec::run_supervised(
      supervisor, faults.size(),
      [&](std::size_t index) {
        return !in_range(index) || replayed[index] != 0 ||
               disposition[index] != Disposition::kExecute;
      },
      [&](std::size_t worker, std::size_t index, std::uint64_t attempt,
          const exec::TaskGuard& guard) {
        if (config.task_fault_hook) config.task_fault_hook(index, attempt);
        auto& context = contexts[worker];
        if (!context) context = std::make_unique<InjectionRig::Context>(rig);
        InjectionForensics details;
        outcomes[index] = context->run_one(faults[index], &guard, &details);
        injections_metric.add();
        outcome_metrics[static_cast<std::size_t>(outcomes[index])]->add();
        latency_metric.observe(
            static_cast<double>(details.latency_to_verdict_cycles));
        if (config.journal != nullptr) {
          config.journal->record(static_cast<std::uint64_t>(index),
                                 encode_journal_outcome(outcomes[index]));
        }
        if (forensics != nullptr) {
          obs::ForensicsSink::Record record;
          record.workload = result.workload;
          record.component =
              microarch::component_name(faults[index].component);
          record.set = details.site.entry;
          record.way = details.site.way;
          record.bit = details.site.bit;
          record.field = details.site.field;
          record.flat_bit = faults[index].bit;
          record.injection_cycle = faults[index].cycle;
          record.activated = details.activated;
          record.first_activation_cycle = details.first_activation_cycle;
          record.arch_propagated =
              details.activated && outcomes[index] != Outcome::kMasked;
          record.verdict = outcome_name(outcomes[index]);
          record.latency_to_verdict_cycles = details.latency_to_verdict_cycles;
          forensics->write(record);
        }
      },
      bank_context);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Exhausted tasks become HarnessError outcomes. Journal them too, so a
  // resume merges the verdict instead of re-burning the retry budget on
  // a permanently broken experiment.
  for (std::size_t index = 0; index < faults.size(); ++index) {
    if (report.states[index] != exec::TaskState::kHarnessError) continue;
    outcomes[index] = Outcome::kHarnessError;
    outcome_metrics[static_cast<std::size_t>(Outcome::kHarnessError)]->add();
    if (config.journal != nullptr) {
      config.journal->record(static_cast<std::uint64_t>(index),
                             encode_journal_outcome(Outcome::kHarnessError));
    }
    // No attempt completed, so the task lambda never wrote a record:
    // book the harness error here (site decode and activation absent).
    if (forensics != nullptr) {
      obs::ForensicsSink::Record record;
      record.workload = result.workload;
      record.component = microarch::component_name(faults[index].component);
      record.flat_bit = faults[index].bit;
      record.injection_cycle = faults[index].cycle;
      record.verdict = outcome_name(Outcome::kHarnessError);
      forensics->write(record);
    }
  }

  // Merge in fault-index order — bit-identical for any thread count.
  // Pending slots (only possible after cancellation) hold no experiment
  // and stay out of the counts; the error margin uses the classified
  // count as its sample size, so harness errors widen the margin rather
  // than bias the rates.
  std::size_t cursor = 0;
  double estimator_variance_max = 0;
  for (const auto kind : microarch::kAllComponents) {
    ComponentResult& comp =
        result.components[static_cast<std::size_t>(kind)];
    for (std::uint64_t i = 0; i < config.faults_per_component; ++i) {
      const std::size_t index = cursor++;
      // Shard runs merge only their window; the coordinator's full-range
      // merge over the combined journal covers everything.
      if (!in_range(index)) continue;
      switch (disposition[index]) {
        case Disposition::kPrunedMasked:
          // Proven verdict, merged like any other Masked outcome so the
          // counts cover the whole sample.
          comp.counts.add(Outcome::kMasked);
          ++comp.pruned_masked;
          continue;
        case Disposition::kLiveUnsampled:
          // Part of the live stratum but deliberately not executed; it
          // contributes to the estimator weights only.
          ++comp.live_sites;
          continue;
        case Disposition::kExecute:
          break;
      }
      if (report.states[index] == exec::TaskState::kPending) continue;
      comp.counts.add(outcomes[index]);
      // Harness errors shrink the executed subsample instead of the
      // live stratum: they stay out of live_sites exactly as they stay
      // out of counts.total(), so kClassify remains count-identical to
      // kOff even on a flaky harness. With pruning off nothing was
      // classified into strata, so the telemetry stays all-zero.
      if (config.prune != PruneMode::kOff &&
          outcomes[index] != Outcome::kHarnessError) {
        ++comp.live_sites;
      }
    }
    const std::uint64_t classified = comp.counts.total();
    const std::uint64_t executed = classified - comp.pruned_masked;
    if (config.prune == PruneMode::kSample && executed < comp.live_sites) {
      const stats::PrunedEstimate estimate = stats::pruned_estimate(
          comp.pruned_masked, comp.live_sites, executed,
          classified - comp.counts.masked, config.confidence);
      comp.estimator_variance = estimate.variance;
      comp.error_margin = estimate.ci_half_width;
    } else {
      comp.error_margin =
          classified == 0
              ? 0
              : stats::readjusted_error_margin(
                    static_cast<double>(comp.bits) *
                        static_cast<double>(window),
                    classified, config.confidence, comp.avf());
    }
    estimator_variance_max =
        std::max(estimator_variance_max, comp.estimator_variance);
    if (config.prune != PruneMode::kOff) {
      result.stats.pruned_sites += comp.pruned_masked;
      result.stats.live_sites += comp.live_sites;
      result.stats.live_sites_executed += executed;
    }
  }
  if (result.stats.pruned_sites + result.stats.live_sites > 0) {
    result.stats.pruned_fraction =
        static_cast<double>(result.stats.pruned_sites) /
        static_cast<double>(result.stats.pruned_sites +
                            result.stats.live_sites);
  }
  pruned_fraction_metric.set(result.stats.pruned_fraction);
  estimator_variance_metric.set(estimator_variance_max);

  result.stats.threads = threads;
  result.stats.checkpoints = rig.checkpoint_count();
  result.stats.injections = faults.size();
  result.stats.wall_seconds = wall;
  result.stats.injections_per_sec =
      wall > 0 ? static_cast<double>(faults.size()) / wall : 0;
  result.stats.ladder_resident_bytes = rig.ladder_resident_bytes();
  result.stats.tasks_run = report.completed;
  // The supervisor's skip count covers journal replays AND prune skips;
  // only the former are journal_replayed. Pruned sites are never
  // journaled, so the two sets are disjoint.
  // Out-of-range shard skips are neither replays nor prune skips; they
  // fold into the correction below so journal_replayed stays exact.
  std::uint64_t prune_skipped = 0;
  for (std::size_t i = 0; i < disposition.size(); ++i) {
    if ((disposition[i] != Disposition::kExecute || !in_range(i)) &&
        report.states[i] == exec::TaskState::kSkipped) {
      ++prune_skipped;
    }
  }
  result.stats.journal_replayed = report.skipped - prune_skipped;
  result.stats.task_retries = report.retries;
  result.stats.harness_errors = report.harness_errors;
  result.stats.watchdog_hits = report.watchdog_hits;
  result.stats.cancelled_tasks = report.cancelled_tasks;
  result.stats.cancelled = report.cancelled;
  for (std::size_t worker = 0; worker < threads; ++worker) {
    bank_context(worker);
  }
  std::uint64_t delta_pages = 0;
  for (const WorkerTally& tally : tallies) {
    result.stats.replay_cycles += tally.replay_cycles;
    result.stats.replay_cycles_saved_ladder += tally.ladder_saved;
    result.stats.replay_cycles_saved_boot += tally.boot_saved;
    result.stats.full_restores += tally.full_restores;
    result.stats.delta_restores += tally.delta_restores;
    result.stats.restore_bytes_copied += tally.bytes_copied;
    delta_pages += tally.delta_pages;
    result.stats.uop_hits += tally.uops.hits;
    result.stats.uop_decode_hits += tally.uops.decode_hits;
    result.stats.uop_misses += tally.uops.misses;
    result.stats.uop_invalidations += tally.uops.invalidations;
    result.stats.guest_instructions += tally.guest_instructions;
  }
  // The golden run executed by the rig at construction also retired guest
  // instructions, but its machine is not a worker context; the gauge
  // covers the campaign's injection phase, which dominates.
  if (wall > 0) {
    result.stats.guest_mips =
        static_cast<double>(result.stats.guest_instructions) / wall / 1e6;
  }
  uop_hits_metric.add(result.stats.uop_hits);
  uop_misses_metric.add(result.stats.uop_misses +
                        result.stats.uop_invalidations);
  uop_invalidations_metric.add(result.stats.uop_invalidations);
  guest_mips_metric.set(result.stats.guest_mips);
  result.stats.replay_cycles_saved = result.stats.replay_cycles_saved_ladder +
                                     result.stats.replay_cycles_saved_boot;
  if (result.stats.delta_restores > 0) {
    result.stats.pages_dirtied_avg =
        static_cast<double>(delta_pages) /
        static_cast<double>(result.stats.delta_restores);
  }
  return result;
}

}  // namespace sefi::fi
