#include "sefi/fi/protection.hpp"

namespace sefi::fi {

std::string protection_name(Protection protection) {
  switch (protection) {
    case Protection::kNone: return "none";
    case Protection::kParity: return "parity";
    case Protection::kSecded: return "SECDED";
  }
  return "?";
}

ProtectionPolicy ProtectionPolicy::commercial() {
  ProtectionPolicy policy;
  policy.set(microarch::ComponentKind::kL1I, Protection::kParity);
  policy.set(microarch::ComponentKind::kL1D, Protection::kParity);
  policy.set(microarch::ComponentKind::kL2, Protection::kSecded);
  return policy;
}

ProtectionPolicy ProtectionPolicy::full_secded() {
  ProtectionPolicy policy;
  for (const auto kind : microarch::kAllComponents) {
    policy.set(kind, Protection::kSecded);
  }
  return policy;
}

namespace {

/// Whether the struck bit sits in architecturally-live state — the only
/// case a detected-uncorrectable error can actually hurt.
bool bit_is_live(const FaultDescriptor& fault,
                 microarch::DetailedModel& model) {
  switch (fault.component) {
    case microarch::ComponentKind::kL1I:
      return model.l1i().bit_in_valid_line(fault.bit);
    case microarch::ComponentKind::kL1D:
      return model.l1d().bit_in_valid_line(fault.bit);
    case microarch::ComponentKind::kL2:
      return model.l2().bit_in_valid_line(fault.bit);
    case microarch::ComponentKind::kRegFile:
      return model.regfile().is_mapped(
          static_cast<unsigned>(fault.bit / 32));
    case microarch::ComponentKind::kITlb:
    case microarch::ComponentKind::kDTlb:
      return true;  // irrelevant: TLB entries are always regenerable
  }
  return false;
}

/// Whether a detected (but uncorrectable) error in this component loses
/// non-regenerable state.
bool detection_is_fatal(const FaultDescriptor& fault,
                        microarch::DetailedModel& model) {
  switch (fault.component) {
    case microarch::ComponentKind::kL1I:
      // Instruction lines are never dirty: always refetchable.
      return false;
    case microarch::ComponentKind::kL1D:
      return model.l1d().bit_in_dirty_line(fault.bit);
    case microarch::ComponentKind::kL2:
      return model.l2().bit_in_dirty_line(fault.bit);
    case microarch::ComponentKind::kRegFile:
      // Registers have no backing copy.
      return model.regfile().is_mapped(
          static_cast<unsigned>(fault.bit / 32));
    case microarch::ComponentKind::kITlb:
    case microarch::ComponentKind::kDTlb:
      // A detected TLB error invalidates the entry; the walker rebuilds.
      return false;
  }
  return false;
}

}  // namespace

std::optional<Outcome> adjudicate_protection(
    const ProtectionPolicy& policy, const FaultDescriptor& fault,
    microarch::DetailedModel& model) {
  switch (policy.component(fault.component)) {
    case Protection::kNone:
      return std::nullopt;  // inject and simulate

    case Protection::kParity:
      if (!detection_is_fatal(fault, model)) return Outcome::kMasked;
      return Outcome::kSysCrash;  // DUE -> machine check

    case Protection::kSecded:
      if (fault.model == FaultModel::kSingleBit) {
        return Outcome::kMasked;  // corrected in place
      }
      // Double-bit upset: beyond the code. Harmless in dead state.
      if (!bit_is_live(fault, model)) return Outcome::kMasked;
      if (!detection_is_fatal(fault, model)) return Outcome::kMasked;
      return Outcome::kSysCrash;
  }
  return std::nullopt;
}

}  // namespace sefi::fi
