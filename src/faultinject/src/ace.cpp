#include "sefi/fi/ace.hpp"

#include "sefi/support/error.hpp"

namespace sefi::fi {

OccupancyResult measure_occupancy(const workloads::Workload& workload,
                                  const RigConfig& rig,
                                  std::uint64_t input_seed,
                                  std::uint64_t sample_period_cycles) {
  support::require(sample_period_cycles > 0,
                   "measure_occupancy: zero sample period");
  // Occupancy now rides the rig's liveness recording (DESIGN.md §13):
  // one golden window replay integrates valid-entry counts exactly at
  // every change point instead of sampling them periodically, so the
  // result no longer depends on the sampling period (kept as a
  // validated knob for interface compatibility). The integration window
  // is the application window — the same interval fault campaigns
  // sample cycles from.
  const InjectionRig recorded(workload, rig, input_seed, /*checkpoints=*/1,
                              /*record_liveness=*/true);
  const LivenessMap* liveness = recorded.liveness();
  support::require(liveness != nullptr && liveness->recorded(),
                   "measure_occupancy: liveness recording missing for " +
                       workload.info().name);

  OccupancyResult result;
  for (const auto kind : microarch::kAllComponents) {
    const ComponentLiveness& live = liveness->component(kind);
    result.occupancy[static_cast<std::size_t>(kind)] = live.mean_occupancy();
    result.samples += live.occupancy_steps();
  }
  return result;
}

}  // namespace sefi::fi
