#include "sefi/fi/ace.hpp"

#include "sefi/support/error.hpp"

namespace sefi::fi {

OccupancyResult measure_occupancy(const workloads::Workload& workload,
                                  const RigConfig& rig,
                                  std::uint64_t input_seed,
                                  std::uint64_t sample_period_cycles) {
  support::require(sample_period_cycles > 0,
                   "measure_occupancy: zero sample period");
  sim::Machine machine = microarch::make_detailed_machine(rig.uarch);
  kernel::install_system(machine, kernel::build_kernel(rig.kernel),
                         workload.build(input_seed),
                         workloads::kWorkloadStackTop);
  machine.boot();

  auto& model = microarch::detailed_model(machine);
  OccupancyResult result;
  std::array<double, microarch::kNumComponents> sums{};

  for (;;) {
    const auto event = machine.run_until_cycle(machine.cpu().cycles() +
                                               sample_period_cycles);
    auto record = [&](microarch::ComponentKind kind, double fraction) {
      sums[static_cast<std::size_t>(kind)] += fraction;
    };
    record(microarch::ComponentKind::kL1I,
           static_cast<double>(model.l1i().valid_lines()) /
               model.l1i().geometry().lines());
    record(microarch::ComponentKind::kL1D,
           static_cast<double>(model.l1d().valid_lines()) /
               model.l1d().geometry().lines());
    record(microarch::ComponentKind::kL2,
           static_cast<double>(model.l2().valid_lines()) /
               model.l2().geometry().lines());
    record(microarch::ComponentKind::kRegFile,
           static_cast<double>(model.regfile().mapped_count()) /
               model.regfile().num_phys());
    record(microarch::ComponentKind::kITlb,
           static_cast<double>(model.itlb().valid_entries()) /
               model.itlb().entries());
    record(microarch::ComponentKind::kDTlb,
           static_cast<double>(model.dtlb().valid_entries()) /
               model.dtlb().entries());
    ++result.samples;
    if (event.has_value()) {
      support::require(event->kind == sim::RunEventKind::kExit,
                       "measure_occupancy: golden run did not exit for " +
                           workload.info().name);
      break;
    }
  }
  for (std::size_t i = 0; i < sums.size(); ++i) {
    result.occupancy[i] = sums[i] / static_cast<double>(result.samples);
  }
  return result;
}

}  // namespace sefi::fi
