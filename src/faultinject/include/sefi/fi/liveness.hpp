// Golden-run liveness recording for fault-site pruning (DESIGN.md §13).
//
// A ComponentLiveness subscribes (as a microarch::AccessObserver) to one
// component's def/use stream during a single fault-free replay of the
// application window and compresses it into per-region *live intervals*:
// the cycle ranges during which a flip in that region could still be
// observed. The classifier then answers, for any sampled fault site
// (bit, cycle), whether the flip is provably masked — the region's next
// access at or after the flip is an overwrite (or there is none), so no
// read can ever see the corrupted value.
//
// Cycle-stamp semantics: an injected run's flip lands at the first
// instruction *boundary* B at or past the fault cycle C, but events are
// stamped with the live cycle counter, which the CPU advances *during*
// a step (base cost before the handler, stalls as they accrue). The
// step that crosses C finishes before the flip, so events stamped in
// [C, B] can still pre-date the flip, and B itself can trail C by up to
// the longest single step (sim::Machine::max_step_cycles). Pruning a
// site (bit, cycle) is therefore sound only if the region is dead over
// the whole window [C, C + max_step] — see live_in — not merely at C;
// a post-flip read is consumed iff some live interval contains B + 1,
// and B + 1 always falls inside that window. The recording replay must
// also observe a superset of the reads any injected run can perform
// (the rig forces the interpreter fast path off while recording, see
// InjectionRig).
//
// The same pass integrates exact valid-entry occupancy (the ACE bound of
// sefi/fi/ace.hpp) from the valid-count deltas, replacing periodic
// sampling with event-exact integration.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sefi/microarch/component.hpp"
#include "sefi/microarch/observer.hpp"

namespace sefi::fi {

class ComponentLiveness final : public microarch::AccessObserver {
 public:
  /// Starts a recording: `regions` liveness regions, `cycles` the live
  /// CPU cycle counter (must outlive the recording), `valid_now` the
  /// component's current valid-entry count, `valid_after_reset` the
  /// count a whole-structure reset re-establishes, `capacity` the
  /// entry count occupancy fractions are reported against.
  void begin(std::uint32_t regions, const std::uint64_t* cycles,
             std::uint64_t valid_now, std::uint64_t valid_after_reset,
             std::uint64_t capacity);

  /// Ends the recording at `end_cycle` (closes the occupancy integral).
  void finish(std::uint64_t end_cycle);

  // AccessObserver:
  void on_region_read(std::uint32_t region) override;
  void on_region_kill(std::uint32_t region) override;
  void on_kill_all() override;
  void on_valid_delta(int delta) override;

  /// True once begin()..finish() completed.
  bool recorded() const { return recorded_; }

  /// True iff a flip in `region` at `cycle` could still be observed:
  /// some live interval contains `cycle`. False means provably masked.
  bool live_at(std::uint32_t region, std::uint64_t cycle) const;

  /// True iff some live interval intersects the inclusive cycle range
  /// [lo, hi]. The pruner's query: a flip requested at cycle C lands at
  /// an instruction boundary up to max_step_cycles later, so the sound
  /// masked proof needs the region dead over that whole slack window,
  /// not just at C (see the cycle-stamp note above).
  bool live_in(std::uint32_t region, std::uint64_t lo,
               std::uint64_t hi) const;

  /// Time-averaged valid-entry fraction over the recorded window
  /// (event-exact ACE occupancy).
  double mean_occupancy() const;

  /// Occupancy integration steps taken (valid-count change points); the
  /// event-exact analogue of the old periodic sample count.
  std::uint64_t occupancy_steps() const { return occ_steps_; }

  /// Total live intervals stored (diagnostics / memory accounting).
  std::uint64_t interval_count() const;

 private:
  struct Interval {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  ///< inclusive
  };

  std::vector<std::vector<Interval>> intervals_;
  /// Exclusive lower bound the next read interval may start at:
  /// (stamp of the region's last kill) + 1; 0 before any kill.
  std::vector<std::uint64_t> kill_bound_;
  std::uint64_t kill_all_bound_ = 0;
  const std::uint64_t* cycles_ = nullptr;
  bool recorded_ = false;

  // Occupancy integration.
  std::uint64_t begin_cycle_ = 0;
  std::uint64_t end_cycle_ = 0;
  std::uint64_t last_occ_cycle_ = 0;
  std::uint64_t valid_count_ = 0;
  std::uint64_t valid_after_reset_ = 0;
  std::uint64_t capacity_ = 0;
  double occ_integral_ = 0;  ///< sum of valid_count * dt
  std::uint64_t occ_steps_ = 0;
};

/// Liveness of all six injectable components, recorded in one pass.
class LivenessMap {
 public:
  ComponentLiveness& component(microarch::ComponentKind kind) {
    return components_[static_cast<std::size_t>(kind)];
  }
  const ComponentLiveness& component(microarch::ComponentKind kind) const {
    return components_[static_cast<std::size_t>(kind)];
  }

  /// True once every component finished recording.
  bool recorded() const {
    for (const ComponentLiveness& live : components_) {
      if (!live.recorded()) return false;
    }
    return true;
  }

 private:
  std::array<ComponentLiveness, microarch::kNumComponents> components_;
};

}  // namespace sefi::fi
