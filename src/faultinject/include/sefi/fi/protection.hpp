// Protection-mechanism adjudication (the paper's closing motivation,
// §VII: "informed decisions about the soft error protection mechanisms
// best suited to a particular hardware and software combination").
//
// A ProtectionPolicy (sefi/fi/campaign.hpp) assigns a scheme to each
// injectable component; InjectionRig adjudicates each fault against the
// policy *at the injection cycle*, using the structure's actual state:
//
//   kParity — errors are detected on access. A clean (or invalid) cache
//       line is recoverable by refetch: masked. A dirty line's data is
//       lost: detected-uncorrectable error (machine check) -> System
//       Crash. TLB entries are always regenerable by a page walk:
//       masked. Register values are not recoverable: System Crash if
//       the struck register is architecturally live.
//   kSecded — single-bit errors are corrected in place: masked. A
//       double-bit (multi-cell) upset in live, non-refetchable state
//       exceeds the code: detected-uncorrectable -> System Crash.
//
// Adjudicated faults are not simulated further; unprotected components
// inject and simulate as usual. Treating every DUE as a System Crash is
// the conservative convention (most systems panic on machine checks) and
// is stated in DESIGN.md.
#pragma once

#include <optional>

#include "sefi/fi/campaign.hpp"

namespace sefi::fi {

/// Adjudicates a fault against the policy using the component's state in
/// `model` at the injection cycle. Returns the final outcome when the
/// protection scheme settles the fault, or nullopt when the fault must
/// be injected and simulated (unprotected component).
std::optional<Outcome> adjudicate_protection(
    const ProtectionPolicy& policy, const FaultDescriptor& fault,
    microarch::DetailedModel& model);

}  // namespace sefi::fi
