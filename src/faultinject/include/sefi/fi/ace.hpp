// Occupancy-based (ACE-style) vulnerability bounds.
//
// The paper's §II positions ACE analysis as the one-simulation
// alternative to statistical fault injection: instead of observing fault
// outcomes, it bounds a structure's vulnerability by how much
// architecturally-live state it holds over time. This module implements
// the occupancy variant of that idea: sample each component's valid-entry
// fraction across the golden run; the time-averaged occupancy is an
// upper bound on the AVF (every bit of a valid entry is assumed ACE —
// the "no detailed lifetime analysis" end of the effort/accuracy
// trade-off discussed in the paper and quantified against FI by Wang et
// al. [28]).
#pragma once

#include <array>
#include <cstdint>

#include "sefi/fi/campaign.hpp"

namespace sefi::fi {

struct OccupancyResult {
  /// Time-averaged fraction of each component's entries that were valid
  /// over the application window (event-exact integration).
  std::array<double, microarch::kNumComponents> occupancy{};
  /// Total integration steps (valid-count change points) across the six
  /// components.
  std::uint64_t samples = 0;

  double component(microarch::ComponentKind kind) const {
    return occupancy[static_cast<std::size_t>(kind)];
  }
};

/// Measures each component's time-averaged valid-entry occupancy over
/// the workload's application window, by exact integration of the
/// golden liveness recording's valid-count events (no periodic
/// sampling; `sample_period_cycles` is validated non-zero for interface
/// compatibility and otherwise unused).
OccupancyResult measure_occupancy(const workloads::Workload& workload,
                                  const RigConfig& rig,
                                  std::uint64_t input_seed,
                                  std::uint64_t sample_period_cycles = 2000);

}  // namespace sefi::fi
