// Statistical microarchitectural fault injection (the paper's GeFIN
// role, §IV-C): single-bit transient faults injected into the six SRAM
// components of the detailed model while a workload runs on top of the
// mini-kernel, classified as Masked / SDC / Application Crash / System
// Crash against a golden run.
//
// Methodology notes mirrored from the paper:
//   - every injection starts from a cold machine (caches reset each
//     experiment) — the source of the System-Crash asymmetry vs. beam;
//   - faults are uniform over (cycle, bit) within the application window;
//   - sample sizes follow Leveugle's formulation; after the campaign the
//     error margin is re-adjusted using the measured AVF (Table IV).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sefi/exec/supervisor.hpp"
#include "sefi/fi/liveness.hpp"
#include "sefi/harden/harden.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/support/journal.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::obs {
class ForensicsSink;
}  // namespace sefi::obs

namespace sefi::fi {

/// Experiment classification. The first four are the paper's outcome
/// classes. kHarnessError is ours, not the paper's: the *harness* (not
/// the guest) failed to complete the experiment even after retries —
/// the ZOFI-style "run we could not classify" bucket. Harness errors
/// are excluded from every AVF denominator (ClassCounts::total()), so
/// they dilute sample size rather than biasing rates.
enum class Outcome : std::uint8_t {
  kMasked = 0,
  kSdc,
  kAppCrash,
  kSysCrash,
  kHarnessError,
  /// A hardened workload's own detector (DWC/TMR compare, CFCSS
  /// signature check — see sefi/harden) caught the corruption and the
  /// guest exited through the detection handler. Only reachable when
  /// RigConfig::harden != kOff. Appended after kHarnessError so every
  /// pre-existing enum value (and journal digit) is unchanged.
  kDetected,
  kOutcomeCount,  ///< sentinel, keep last
};

std::string outcome_name(Outcome outcome);

/// True for values a codec may accept: a known class, not a sentinel.
constexpr bool outcome_in_range(std::uint8_t value) {
  return value < static_cast<std::uint8_t>(Outcome::kOutcomeCount);
}

/// Transient fault model. The paper's campaigns use single bit flips and
/// flag the simplification as a source of under-estimation (§II-B):
/// modern technologies see multi-cell upsets a single-bit model cannot
/// represent. kDoubleBit flips the adjacent bit as well, for the
/// fault-model ablation.
enum class FaultModel : std::uint8_t { kSingleBit = 0, kDoubleBit };

std::string fault_model_name(FaultModel model);

/// Fault-site pruning strategy (DESIGN.md §13). Pruning consults the
/// golden run's liveness recording to classify sites whose flipped bits
/// are provably never read before being overwritten as Masked without
/// executing them.
///   kOff      — inject every sampled site (the paper's baseline);
///   kClassify — skip provably-masked sites, execute every live one;
///             the merged ClassCounts are bit-identical to kOff (tested);
///   kSample   — additionally execute only a uniform subsample of the
///             live sites and reweight the estimators (importance
///             sampling over the live stratum; see sefi/stats/estimator).
/// Unlike the executor knobs, the prune mode CHANGES what kSample
/// results mean, so it is part of campaign identity and enters result
/// cache fingerprints for every mode.
enum class PruneMode : std::uint8_t { kOff = 0, kClassify, kSample };

std::string prune_mode_name(PruneMode mode);

/// Parses a SEFI_PRUNE-style string ("off" | "classify" | "sample");
/// throws SefiError on anything else.
PruneMode prune_mode_from_name(const std::string& name);

struct FaultDescriptor {
  microarch::ComponentKind component;
  std::uint64_t bit = 0;
  std::uint64_t cycle = 0;
  FaultModel model = FaultModel::kSingleBit;
};

/// Per-injection forensics gathered by Context::run_one (the raw
/// material of the obs forensics JSONL, DESIGN.md §11). Activation is
/// measured with a one-shot microarch watchpoint armed on the flipped
/// bit's storage location right after the flip: the first read of the
/// corrupted structure entry latches the cycle counter. A fault that is
/// overwritten before anything reads it never activates — the classic
/// microarchitectural masking path.
struct InjectionForensics {
  microarch::BitSite site;  ///< decoded injection site (locate_bit)
  std::uint64_t injection_cycle = 0;
  bool activated = false;  ///< corrupted state was read before verdict
  std::uint64_t first_activation_cycle = 0;  ///< valid when activated
  /// Cycles from injection to the classification decision (0 when the
  /// verdict was immediate: protection adjudication or a pre-injection
  /// stop).
  std::uint64_t latency_to_verdict_cycles = 0;
};

// -- Resume-journal payload codecs -----------------------------------------
// Exported so status tooling (sefi_cli campaign status) can decode a
// live journal without linking against campaign internals. Any payload
// that fails to parse is ignored by replay — a journal can cost
// recomputation, never a wrong outcome.

/// Journal payload for one classified injection: "o <class digit>".
std::string encode_journal_outcome(Outcome outcome);
bool parse_journal_outcome(const std::string& payload, Outcome* outcome);

/// Reserved journal index holding cumulative supervisor telemetry; far
/// above any fault index, so it can never collide with an injection
/// record.
inline constexpr std::uint64_t kJournalTelemetryIndex = ~0ull;

/// Supervisor incident counts persisted into the resume journal as they
/// happen, so a killed campaign's retry/watchdog history survives into
/// `campaign status` (the end-of-run SupervisorReport dies with the
/// process; this record does not).
struct JournalTelemetry {
  std::uint64_t retries = 0;
  std::uint64_t watchdog_hits = 0;
  std::uint64_t harness_errors = 0;
};

/// Journal payload "t <retries> <watchdog_hits> <harness_errors>".
std::string encode_journal_telemetry(const JournalTelemetry& telemetry);
bool parse_journal_telemetry(const std::string& payload,
                             JournalTelemetry* telemetry);

/// Reference (fault-free) execution of the workload on the detailed model.
struct GoldenRun {
  std::string console;
  std::uint32_t exit_code = 0;
  std::uint64_t end_cycle = 0;
  std::uint64_t spawn_cycle = 0;  ///< first cycle of the application window
  std::uint64_t instructions = 0;
};

/// Per-component protection scheme (evaluated by the rig; see
/// sefi/fi/protection.hpp for the adjudication semantics).
enum class Protection : std::uint8_t { kNone = 0, kParity, kSecded };

std::string protection_name(Protection protection);

struct ProtectionPolicy {
  std::array<Protection, microarch::kNumComponents> per_component{};

  Protection component(microarch::ComponentKind kind) const {
    return per_component[static_cast<std::size_t>(kind)];
  }
  void set(microarch::ComponentKind kind, Protection protection) {
    per_component[static_cast<std::size_t>(kind)] = protection;
  }

  /// No protection anywhere (the paper's COTS baseline).
  static ProtectionPolicy none() { return {}; }
  /// Parity on the L1s, SECDED on the L2 — the classic commercial mix.
  static ProtectionPolicy commercial();
  /// SECDED on every array.
  static ProtectionPolicy full_secded();
};

struct RigConfig {
  microarch::DetailedConfig uarch;
  kernel::KernelConfig kernel;
  /// Protection schemes applied during injection (default: none).
  ProtectionPolicy protection;
  /// Software hardening transform applied to the workload image before
  /// the golden run (sefi/harden: DWC / TMR / CFCSS). Campaign identity:
  /// enters result-cache fingerprints whenever != kOff. The golden run,
  /// checkpoint ladder, and liveness recording are all taken over the
  /// hardened image, so prune soundness holds per hardened variant.
  harden::HardenMode harden = harden::HardenMode::kOff;
  /// Hardening transform options. The one option, mute_detection,
  /// builds the layout-identical muted twin (every detect branch falls
  /// through), used by the detection-soundness suite to replay a
  /// Detected fault and observe the outcome the detector preempted.
  /// Ignored when harden == kOff; campaign identity whenever it can
  /// change results (hashed alongside the mode).
  harden::HardenOptions harden_options;
  /// Hang watchdog: an injected run is declared hung after
  /// hang_budget_factor * golden end cycles.
  std::uint64_t hang_budget_factor = 4;
  /// After a watchdog hit, the rig probes system responsiveness for this
  /// many extra timer periods; advancing jiffies = kernel alive (the
  /// beam-setup "Linux still responds -> Application Crash" rule).
  std::uint64_t probe_timer_periods = 8;
  /// Delta-restore fast path on worker machines (default on): restores
  /// copy only state dirtied since the worker's last restore instead of
  /// the full machine. Outcomes are bit-identical either way (tested);
  /// off exists for the full-vs-delta comparison runs.
  bool delta_restore = true;
};

/// Reusable injection rig for one workload: computes the golden run once,
/// then builds a **checkpoint ladder** — K evenly-spaced machine
/// snapshots along the application window (the first rung is the spawn
/// point, the gem5-checkpoint technique GeFIN-style campaigns use). Rung
/// 0 is a full Snapshot; rungs 1..K-1 are sparse DeltaSnapshots against
/// it (only the RAM pages that differ), so ladder memory grows with state
/// touched, not K * machine size. An injected run restores the nearest
/// rung at or below its fault cycle instead of always replaying from
/// spawn, cutting the average pre-injection replay from ~window/2 to
/// ~window/(2K) cycles; the replayed prefix is fault-free and
/// deterministic, so outcomes are bit-identical to a cold boot for any
/// ladder size (tested).
///
/// The ladder and golden state are immutable after construction and
/// shared by any number of Context objects, each owning a private
/// sim::Machine — the unit of parallelism for campaign executors.
class InjectionRig {
 public:
  /// `checkpoints` is the ladder size K (clamped to >= 1; rung 0 is
  /// always the spawn snapshot, so K = 1 reproduces the classic
  /// replay-from-spawn rig). With `record_liveness` the golden replay of
  /// the application window additionally records per-region liveness
  /// intervals for every injectable component (one extra window replay
  /// with the interpreter fast path forced off, so the recorded read
  /// stream is a superset of any injected run's — see DESIGN.md §13).
  InjectionRig(const workloads::Workload& workload, const RigConfig& config,
               std::uint64_t input_seed, std::uint64_t checkpoints = 1,
               bool record_liveness = false);

  const GoldenRun& golden() const { return golden_; }
  const RigConfig& config() const { return config_; }
  const workloads::Workload& workload() const { return workload_; }

  /// Liveness recording of the golden window, or null when the rig was
  /// built without `record_liveness`.
  const LivenessMap* liveness() const { return liveness_.get(); }

  /// True iff the liveness recording proves this fault can only ever be
  /// Masked: every bit the fault model flips lands in a region that is
  /// dead over the fault cycle's whole landing window (never read again
  /// before overwrite), and the component carries no protection scheme
  /// (protected components adjudicate to detection outcomes without a
  /// read, so their sites are never pruned). The landing window is
  /// [cycle, cycle + prune_slack()]: the flip lands at the first
  /// instruction boundary at or past the fault cycle, which can trail
  /// it by up to the longest single step of the golden window (see the
  /// cycle-stamp note in sefi/fi/liveness.hpp). Requires a rig built
  /// with `record_liveness`.
  bool provably_masked(const FaultDescriptor& fault) const;

  /// Cycle slack provably_masked assumes between a fault's nominal
  /// cycle and the boundary where the flip lands (the recording
  /// machine's max_step_cycles).
  std::uint64_t prune_slack() const { return prune_slack_; }

  /// Number of ladder rungs actually captured (>= 1).
  std::size_t checkpoint_count() const { return 1 + delta_rungs_.size(); }

  /// Resident bytes of the whole ladder: the full spawn snapshot plus
  /// the sparse delta rungs.
  std::uint64_t ladder_resident_bytes() const;

  /// Bit count of an injectable component under this rig's configuration.
  std::uint64_t component_bits(microarch::ComponentKind kind) const;

  /// Runs one injected execution and classifies its outcome (on the
  /// rig's own lazily-built Context; single-threaded convenience).
  /// `guard`, when given, is polled between bounded simulation slices
  /// so supervised campaigns can cancel or deadline a stuck run.
  Outcome run_one(const FaultDescriptor& fault,
                  const exec::TaskGuard* guard = nullptr) const;

  /// Worker-private execution state: a machine restored from the rig's
  /// shared snapshots. Each campaign worker thread owns one Context;
  /// Contexts never touch each other, and the rig they reference is
  /// read-only during execution, so run_one is safe to call from many
  /// Contexts concurrently.
  class Context {
   public:
    explicit Context(const InjectionRig& rig);

    /// Runs one injected execution and classifies its outcome. `guard`
    /// (nullable) is polled between bounded simulation slices; it may
    /// throw TaskCancelled / TaskDeadlineExceeded out of this call, in
    /// which case the machine is mid-run and must be restored before
    /// reuse (the supervisor's recover hook rebuilds the Context).
    /// `forensics` (nullable) receives the injection-site decode and
    /// activation/latency measurements for this run; gathering them
    /// costs one armed watchpoint (a sentinel compare on the
    /// component's read path), so it is done only when requested.
    Outcome run_one(const FaultDescriptor& fault,
                    const exec::TaskGuard* guard = nullptr,
                    InjectionForensics* forensics = nullptr);

    /// Pre-injection cycles actually replayed by this context.
    std::uint64_t replay_cycles() const { return replay_cycles_; }
    /// Pre-injection cycles skipped thanks to ladder rungs above spawn
    /// (replay that a spawn-only rig would have executed).
    std::uint64_t ladder_cycles_saved() const { return ladder_cycles_saved_; }
    /// Boot cycles skipped by restoring the spawn snapshot instead of
    /// cold-booting each injection.
    std::uint64_t boot_cycles_saved() const { return boot_cycles_saved_; }
    /// Total cycles skipped (ladder + boot components).
    std::uint64_t saved_cycles() const {
      return ladder_cycles_saved_ + boot_cycles_saved_;
    }
    /// Restore-cost counters of this context's machine.
    const sim::Machine::RestoreStats& restore_stats() const {
      return machine_.restore_stats();
    }
    /// Uop-cache accounting of this context's CPU (DESIGN.md §12).
    const sim::UopStats& uop_stats() const {
      return machine_.cpu().uop_stats();
    }
    /// Instructions retired by this context's CPU across all restores
    /// (the guest-MIPS numerator).
    std::uint64_t guest_instructions() const {
      return machine_.cpu().lifetime_instructions();
    }

   private:
    const InjectionRig* rig_;
    sim::Machine machine_;
    std::uint64_t replay_cycles_ = 0;
    std::uint64_t ladder_cycles_saved_ = 0;
    std::uint64_t boot_cycles_saved_ = 0;
  };

 private:
  friend class Context;

  struct DeltaRung {
    std::uint64_t cycle = 0;
    sim::Machine::DeltaSnapshot snapshot;
  };

  /// Index of the rung with the greatest cycle <= `cycle`: 0 is the
  /// spawn snapshot, i > 0 is delta_rungs_[i - 1].
  std::size_t nearest_checkpoint(std::uint64_t cycle) const;

  /// Bit -> liveness-region map of one component, captured at recording
  /// time so classification outlives the recording machine. Regions
  /// repeat with `period` bits; a positive `split` divides each period
  /// into a meta region (bits < split) and a data region (the rest).
  struct RegionLayout {
    std::uint64_t period = 1;
    std::uint64_t split = 0;

    std::uint32_t region(std::uint64_t bit) const {
      const std::uint64_t index = bit / period;
      if (split == 0) return static_cast<std::uint32_t>(index);
      return static_cast<std::uint32_t>(index * 2 +
                                        (bit % period < split ? 0 : 1));
    }
  };

  const workloads::Workload& workload_;
  RigConfig config_;
  isa::Program kernel_image_;
  isa::Program app_image_;
  GoldenRun golden_;
  std::array<std::uint64_t, microarch::kNumComponents> component_bits_{};
  std::array<RegionLayout, microarch::kNumComponents> region_layout_{};
  std::unique_ptr<LivenessMap> liveness_;
  std::uint64_t prune_slack_ = 0;
  sim::Machine::Snapshot base_;        ///< rung 0: the spawn snapshot
  std::vector<DeltaRung> delta_rungs_; ///< rungs 1..K-1, diffs vs base_
  mutable std::unique_ptr<Context> own_context_;  ///< lazy, for run_one
};

/// Per-class outcome counts of a campaign.
struct ClassCounts {
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t app_crash = 0;
  std::uint64_t sys_crash = 0;
  /// Experiments the harness could not complete (retries exhausted).
  /// Deliberately OUTSIDE total(): AVF fractions divide by classified
  /// experiments only, so a flaky harness shrinks the sample (and
  /// widens the error margin) instead of skewing the rates.
  std::uint64_t harness_error = 0;
  /// Runs caught by a hardened workload's software detector. A real
  /// outcome class (the fault corrupted state and was noticed), so it
  /// is INSIDE total(): detection converts would-be SDC/crash into
  /// Detected without shrinking the AVF denominator. Always 0 with
  /// hardening off.
  std::uint64_t detected = 0;

  /// Classified experiments — the AVF denominator.
  std::uint64_t total() const {
    return masked + sdc + app_crash + sys_crash + detected;
  }
  /// Everything the campaign tried, classified or not.
  std::uint64_t attempted() const { return total() + harness_error; }
  void add(Outcome outcome);
};

/// Result of injecting one component of one workload.
struct ComponentResult {
  microarch::ComponentKind component{};
  std::uint64_t bits = 0;  ///< component size in storage bits
  /// Per-class outcomes over the WHOLE sample: pruned sites are merged
  /// here as Masked (their verdict is proven, not guessed), so
  /// counts.total() - pruned_masked is the number of sites actually
  /// executed.
  ClassCounts counts;
  double error_margin = 0;  ///< re-adjusted Leveugle margin (99%)
  /// Sites proven Masked by the liveness pass without executing them
  /// (0 with PruneMode::kOff).
  std::uint64_t pruned_masked = 0;
  /// Sites not provably masked (classified sites minus pruned_masked);
  /// the live-stratum size of the reweighted estimators.
  std::uint64_t live_sites = 0;
  /// Sampling variance of avf() under PruneMode::kSample (0 when every
  /// live site was executed — the estimator is then exact over the
  /// sample and error_margin carries the Leveugle margin instead).
  double estimator_variance = 0;

  /// Non-masked fraction. Exhaustive campaigns (kOff / kClassify, where
  /// every live site executed) use the exact per-sample fraction; under
  /// kSample this is the reweighted live-stratum estimate
  /// (live/n) * p_hat (see sefi/stats/estimator.hpp).
  double avf() const;
  double avf_sdc() const;
  double avf_app_crash() const;
  double avf_sys_crash() const;
  /// Fraction caught by the workload's own software detector (0 with
  /// hardening off). Part of avf() — detected faults are not masked —
  /// but separated out so mitigation benches can split "still dangerous"
  /// (SDC + crashes) from "noticed in time".
  double avf_detected() const;
};

/// Executor throughput report for one campaign (how the result was
/// computed; never part of the result's identity or cache fingerprint).
struct CampaignStats {
  std::uint64_t threads = 1;            ///< workers actually used
  std::uint64_t checkpoints = 1;        ///< ladder rungs actually captured
  std::uint64_t injections = 0;         ///< total injected runs
  double wall_seconds = 0;              ///< dispatch-to-merge wall clock
  double injections_per_sec = 0;
  std::uint64_t replay_cycles = 0;      ///< pre-injection cycles executed
  /// Cycles skipped per component, summed over workers. Both totals
  /// depend only on the sampled fault list, so they are identical for
  /// any thread count (tested).
  std::uint64_t replay_cycles_saved_ladder = 0;  ///< via rungs above spawn
  std::uint64_t replay_cycles_saved_boot = 0;    ///< via snapshot vs reboot
  /// Sum of the two components above.
  std::uint64_t replay_cycles_saved = 0;
  // Restore-cost counters (summed over workers).
  std::uint64_t full_restores = 0;       ///< restores that copied everything
  std::uint64_t delta_restores = 0;      ///< served by the delta path
  std::uint64_t restore_bytes_copied = 0;  ///< state bytes copied, total
  double pages_dirtied_avg = 0;  ///< RAM pages copied per delta restore
  std::uint64_t ladder_resident_bytes = 0;  ///< checkpoint ladder footprint
  // Interpreter fast-path counters (DESIGN.md §12), summed over workers.
  // All zero with SEFI_FASTPATH=off; the merged ClassCounts are identical
  // for every tier (tested), so these are diagnostics, not identity.
  std::uint64_t uop_hits = 0;           ///< fetch+decode both skipped
  std::uint64_t uop_decode_hits = 0;    ///< only the re-decode skipped
  std::uint64_t uop_misses = 0;         ///< full fetch+decode+fill steps
  std::uint64_t uop_invalidations = 0;  ///< stale uops found and replaced
  std::uint64_t guest_instructions = 0; ///< retired, incl. replay windows
  double guest_mips = 0;  ///< guest_instructions / wall_seconds / 1e6
  // Supervisor telemetry (DESIGN.md §10). All zero on a clean run with
  // no journal, so figure outputs are unchanged when nothing goes wrong.
  // Fault-site pruning telemetry (DESIGN.md §13), summed over components.
  // All zero with SEFI_PRUNE=off.
  std::uint64_t pruned_sites = 0;   ///< proven Masked without execution
  std::uint64_t live_sites = 0;     ///< sites not provably masked
  std::uint64_t live_sites_executed = 0;  ///< live sites actually injected
  double pruned_fraction = 0;       ///< pruned_sites / classified sites
  std::uint64_t tasks_run = 0;         ///< injections executed this process
  std::uint64_t journal_replayed = 0;  ///< outcomes restored from the journal
  std::uint64_t task_retries = 0;      ///< attempts re-run after a failure
  std::uint64_t harness_errors = 0;    ///< tasks whose retry budget ran out
  std::uint64_t watchdog_hits = 0;     ///< attempts killed by the deadline
  std::uint64_t cancelled_tasks = 0;   ///< tasks left pending at cancel
  /// True when the campaign was cancelled (SIGINT drain) before every
  /// injection resolved. Counts then cover only the journaled subset and
  /// the result must not be published or cached.
  bool cancelled = false;
};

struct WorkloadFiResult {
  std::string workload;
  std::array<ComponentResult, microarch::kNumComponents> components;
  CampaignStats stats;  ///< execution metadata, not campaign identity

  const ComponentResult& component(microarch::ComponentKind kind) const;
};

struct CampaignConfig {
  std::uint64_t faults_per_component = 1000;  ///< the paper's sample size
  std::uint64_t seed = 0xF1F1;                ///< sampling stream seed
  std::uint64_t input_seed = workloads::kDefaultInputSeed;
  double confidence = 0.99;                   ///< the paper's level
  FaultModel fault_model = FaultModel::kSingleBit;  ///< the paper's model
  /// Fault-site pruning (DESIGN.md §13). NOT an executor knob: the mode
  /// is part of campaign identity and enters result cache fingerprints —
  /// a pruned and an exhaustive campaign must never share a cache entry
  /// even though kClassify is count-identical to kOff (kSample is not).
  PruneMode prune = PruneMode::kOff;
  /// Fraction of live (non-pruned) sites executed under
  /// PruneMode::kSample; clamped to (0, 1], at least one site per
  /// component. Ignored by the other modes.
  double prune_sample_fraction = 0.25;
  RigConfig rig;
  // Executor knobs. Results are bit-identical for any values (tested):
  // descriptors are pre-sampled before dispatch and merged in fault-index
  // order, and ladder replay reproduces the spawn-replay path exactly.
  std::uint64_t threads = 0;       ///< campaign workers; 0 = hardware
  /// Ladder rungs along the window. Rungs above spawn are sparse deltas
  /// against the spawn snapshot, so a taller ladder costs pages-touched,
  /// not machine-sized snapshots — the default is correspondingly
  /// denser than a full-snapshot ladder could afford.
  std::uint64_t checkpoints = 16;
  // Supervisor knobs (DESIGN.md §10). Like the executor knobs above they
  // are not campaign identity and never enter cache fingerprints: on a
  // healthy harness every injection classifies on its first attempt, so
  // retries/deadlines/journals cannot change the merged counts.
  /// Extra attempts after a failed one before a task books HarnessError.
  std::uint64_t max_task_retries = 2;
  /// Wall-clock watchdog per injection attempt, ms; 0 = off.
  std::uint64_t task_deadline_ms = 0;
  /// Cooperative stop flag (SIGINT drain); may be null.
  const exec::CancellationToken* cancel = nullptr;
  /// Crash-safe resume journal; may be null (no journaling). Completed
  /// injections found in it are skipped and their recorded outcomes
  /// merged; newly completed ones are appended.
  support::TaskJournal* journal = nullptr;
  /// Executor-only fault-index window [range_begin, range_end): indices
  /// outside it are neither executed, journal-replayed, nor merged —
  /// the serve coordinator hands each worker process a shard this way.
  /// Fault sampling, prune classification, and the kSample subsample
  /// draw are ALWAYS computed over the full index space (they are
  /// deterministic functions of the config), so a shard journals
  /// exactly the records the full-range merge run would have produced
  /// for those indices. Like threads, never part of campaign identity.
  std::uint64_t range_begin = 0;
  std::uint64_t range_end = ~0ull;
  /// Test-only fault hook, called as (fault_index, attempt) before each
  /// injection attempt; a throw simulates a harness fault. Null in
  /// production.
  std::function<void(std::size_t, std::uint64_t)> task_fault_hook;
  /// Per-injection forensics sink; may be null, in which case the
  /// campaign falls back to obs::ForensicsSink::global() (non-null only
  /// when SEFI_TRACE is on). Like the executor knobs, never part of the
  /// campaign's identity or cache fingerprint. The campaign writes one
  /// record per resolved injection — executed, journal-replayed, or
  /// harness-errored — so the sink's verdict counts match the merged
  /// ClassCounts exactly (tested).
  obs::ForensicsSink* forensics = nullptr;
};

/// Pre-samples the full descriptor list for one (workload, component)
/// stream — the exact faults run_fi_campaign will execute, in execution
/// order. Exposed so tools can audit or replay a campaign's sampling.
std::vector<FaultDescriptor> sample_component_faults(
    const CampaignConfig& config, const std::string& workload_name,
    microarch::ComponentKind kind, std::uint64_t component_bits,
    std::uint64_t spawn_cycle, std::uint64_t window);

/// Runs the full per-component campaign for one workload, fanning
/// injections over config.threads workers (each with a private machine
/// restored from the rig's shared checkpoint ladder).
WorkloadFiResult run_fi_campaign(const workloads::Workload& workload,
                                 const CampaignConfig& config);

/// Same campaign on a caller-owned rig — the serve workers reuse one
/// golden run + checkpoint ladder across every shard of a campaign
/// instead of rebuilding it per assignment. The rig must have been
/// built from `config.rig` / `config.input_seed` (and with liveness
/// recording when config.prune != kOff); results are then identical to
/// the workload overload.
WorkloadFiResult run_fi_campaign(const InjectionRig& rig,
                                 const CampaignConfig& config);

}  // namespace sefi::fi
