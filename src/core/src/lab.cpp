#include "sefi/core/lab.hpp"

#include "sefi/support/error.hpp"
#include "sefi/support/strings.hpp"

namespace sefi::core {

microarch::DetailedConfig scaled_uarch() {
  microarch::DetailedConfig config;
  config.l1i = {4 * 1024, 32, 4};
  config.l1d = {4 * 1024, 32, 4};
  config.l2 = {64 * 1024, 32, 8};
  config.itlb_entries = 8;
  config.dtlb_entries = 8;
  return config;
}

LabConfig LabConfig::from_env(std::uint64_t default_faults,
                              std::uint64_t default_beam_runs) {
  LabConfig config;
  config.fi.rig.uarch = scaled_uarch();
  config.beam.uarch = scaled_uarch();
  config.fi.faults_per_component =
      support::env_u64("SEFI_FAULTS", default_faults);
  config.beam.runs = support::env_u64("SEFI_BEAM_RUNS", default_beam_runs);
  config.fi.threads = support::env_u64("SEFI_THREADS", 0);
  config.beam.threads = config.fi.threads;
  config.fi.checkpoints = support::env_u64("SEFI_CHECKPOINTS", 16);
  const bool delta = support::env_u64("SEFI_DELTA_RESTORE", 1) != 0;
  config.fi.rig.delta_restore = delta;
  config.beam.delta_restore = delta;
  const std::uint64_t seed = support::env_u64("SEFI_SEED", 0);
  if (seed != 0) {
    config.fi.seed = seed;
    config.beam.seed = seed ^ 0xBEA3;
  }
  return config;
}

stats::FoldDifference WorkloadComparison::sdc_fold() const {
  return stats::fold_difference(beam.fit_sdc(), fi_fit.sdc);
}

stats::FoldDifference WorkloadComparison::app_crash_fold() const {
  return stats::fold_difference(beam.fit_app_crash(), fi_fit.app_crash);
}

stats::FoldDifference WorkloadComparison::sys_crash_fold() const {
  return stats::fold_difference(beam.fit_sys_crash(), fi_fit.sys_crash);
}

stats::FoldDifference WorkloadComparison::sdc_plus_app_fold() const {
  return stats::fold_difference(beam.fit_sdc() + beam.fit_app_crash(),
                                fi_fit.sdc + fi_fit.app_crash);
}

double AggregateComparison::sdc_gap() const {
  return stats::fold_difference(beam_sdc, fi_sdc).magnitude;
}

double AggregateComparison::sdc_app_gap() const {
  return stats::fold_difference(beam_sdc_app, fi_sdc_app).magnitude;
}

double AggregateComparison::total_gap() const {
  return stats::fold_difference(beam_total, fi_total).magnitude;
}

AssessmentLab::AssessmentLab(LabConfig config) : config_(std::move(config)) {}

double AssessmentLab::fit_raw_per_bit() {
  if (!fit_raw_.has_value()) {
    // Calibration anchors every FI-side FIT value, so its counting noise
    // multiplies through the whole comparison: give it a 3x-longer
    // session than a regular benchmark. It still flows through the disk
    // cache (the longer run count fingerprints differently).
    beam::BeamConfig calibration = config_.beam;
    calibration.runs *= 3;
    const std::string key = ResultCache::make_key(
        "beam", fingerprint(calibration),
        workloads::l1_pattern_workload().info().name);
    const beam::BeamResult* cached = cache_.load_beam(key);
    const beam::BeamResult& result =
        cached != nullptr
            ? *cached
            : cache_.store_beam(
                  key, beam::run_beam_session(
                           workloads::l1_pattern_workload(), calibration));
    fit_raw_ =
        result.fit_sdc() / static_cast<double>(beam::l1_pattern_bits());
    support::require(*fit_raw_ > 0,
                     "AssessmentLab: FIT_raw calibration measured no events; "
                     "increase SEFI_BEAM_RUNS");
  }
  return *fit_raw_;
}

const fi::WorkloadFiResult& AssessmentLab::run_fi(
    const workloads::Workload& workload) {
  const std::string key = ResultCache::make_key(
      "fi", fingerprint(config_.fi), workload.info().name);
  if (const fi::WorkloadFiResult* cached = cache_.load_fi(key)) {
    return *cached;
  }
  return cache_.store_fi(key, fi::run_fi_campaign(workload, config_.fi));
}

const beam::BeamResult& AssessmentLab::run_beam(
    const workloads::Workload& workload) {
  const std::string key = ResultCache::make_key(
      "beam", fingerprint(config_.beam), workload.info().name);
  if (const beam::BeamResult* cached = cache_.load_beam(key)) {
    return *cached;
  }
  return cache_.store_beam(key,
                           beam::run_beam_session(workload, config_.beam));
}

FiFitRates AssessmentLab::convert_to_fit(const fi::WorkloadFiResult& result) {
  const double fit_raw = fit_raw_per_bit();
  FiFitRates rates;
  for (const fi::ComponentResult& comp : result.components) {
    const auto bits = static_cast<double>(comp.bits);
    rates.sdc += stats::fit_from_avf(fit_raw, bits, comp.avf_sdc());
    rates.app_crash +=
        stats::fit_from_avf(fit_raw, bits, comp.avf_app_crash());
    rates.sys_crash +=
        stats::fit_from_avf(fit_raw, bits, comp.avf_sys_crash());
  }
  return rates;
}

WorkloadComparison AssessmentLab::compare(
    const workloads::Workload& workload) {
  WorkloadComparison comparison;
  comparison.workload = workload.info().name;
  comparison.fi = run_fi(workload);
  comparison.beam = run_beam(workload);
  comparison.fi_fit = convert_to_fit(comparison.fi);
  return comparison;
}

bool AssessmentLab::load_cached_beam(const workloads::Workload& workload) {
  const std::string key = ResultCache::make_key(
      "beam", fingerprint(config_.beam), workload.info().name);
  return cache_.load_beam(key) != nullptr;
}

std::vector<WorkloadComparison> AssessmentLab::compare_all() {
  const std::vector<const workloads::Workload*>& suite =
      workloads::all_workloads();
  // Fan the uncached beam sessions out first: each session is a serial
  // powered-board simulation, so independent sessions are the sweep's
  // parallelism. Campaign caches stay single-threaded — sessions run on
  // workers, results merge here in suite order.
  std::vector<const workloads::Workload*> beam_missing;
  for (const workloads::Workload* workload : suite) {
    if (!load_cached_beam(*workload)) beam_missing.push_back(workload);
  }
  if (!beam_missing.empty()) {
    const std::vector<beam::BeamResult> results =
        beam::run_beam_sessions(beam_missing, config_.beam);
    for (std::size_t i = 0; i < beam_missing.size(); ++i) {
      const std::string key = ResultCache::make_key(
          "beam", fingerprint(config_.beam), beam_missing[i]->info().name);
      cache_.store_beam(key, results[i]);
    }
  }
  // FI campaigns parallelize internally (run_fi_campaign fans injections
  // over config_.fi.threads workers), so run them one after another.
  std::vector<WorkloadComparison> sweep;
  sweep.reserve(suite.size());
  for (const workloads::Workload* workload : suite) {
    sweep.push_back(compare(*workload));
  }
  return sweep;
}

AggregateComparison AssessmentLab::aggregate(
    const std::vector<WorkloadComparison>& sweep) {
  AggregateComparison agg;
  if (sweep.empty()) return agg;
  const auto n = static_cast<double>(sweep.size());
  for (const WorkloadComparison& c : sweep) {
    agg.beam_sdc += c.beam.fit_sdc();
    agg.beam_sdc_app += c.beam.fit_sdc() + c.beam.fit_app_crash();
    agg.beam_total += c.beam.fit_total();
    agg.fi_sdc += c.fi_fit.sdc;
    agg.fi_sdc_app += c.fi_fit.sdc + c.fi_fit.app_crash;
    agg.fi_total += c.fi_fit.total();
  }
  agg.beam_sdc /= n;
  agg.beam_sdc_app /= n;
  agg.beam_total /= n;
  agg.fi_sdc /= n;
  agg.fi_sdc_app /= n;
  agg.fi_total /= n;
  return agg;
}

}  // namespace sefi::core
