#include "sefi/core/lab.hpp"

#include <filesystem>

#include "sefi/support/env.hpp"
#include "sefi/support/error.hpp"

namespace sefi::core {

microarch::DetailedConfig scaled_uarch() {
  microarch::DetailedConfig config;
  config.l1i = {4 * 1024, 32, 4};
  config.l1d = {4 * 1024, 32, 4};
  config.l2 = {64 * 1024, 32, 8};
  config.itlb_entries = 8;
  config.dtlb_entries = 8;
  return config;
}

LabConfig LabConfig::from_env(std::uint64_t default_faults,
                              std::uint64_t default_beam_runs) {
  LabConfig config;
  config.fi.rig.uarch = scaled_uarch();
  config.beam.uarch = scaled_uarch();
  config.fi.faults_per_component =
      support::env::u64("SEFI_FAULTS", default_faults);
  config.beam.runs = support::env::u64("SEFI_BEAM_RUNS", default_beam_runs);
  config.fi.threads = support::env::u64("SEFI_THREADS", 0);
  config.beam.threads = config.fi.threads;
  config.fi.checkpoints = support::env::u64("SEFI_CHECKPOINTS", 16);
  const bool delta = support::env::flag("SEFI_DELTA_RESTORE", true);
  config.fi.rig.delta_restore = delta;
  config.beam.delta_restore = delta;
  const std::uint64_t retries = support::env::u64("SEFI_MAX_TASK_RETRIES", 2);
  config.fi.max_task_retries = retries;
  config.beam.max_task_retries = retries;
  const std::uint64_t deadline = support::env::u64("SEFI_TASK_DEADLINE_MS", 0);
  config.fi.task_deadline_ms = deadline;
  config.beam.task_deadline_ms = deadline;
  config.fi.prune =
      fi::prune_mode_from_name(support::env::str("SEFI_PRUNE", "off"));
  const harden::HardenMode harden_mode =
      harden::harden_mode_from_name(support::env::str("SEFI_HARDEN", "off"));
  config.fi.rig.harden = harden_mode;
  config.beam.harden = harden_mode;
  const std::string prune_fraction =
      support::env::str("SEFI_PRUNE_FRACTION", "");
  if (!prune_fraction.empty()) {
    config.fi.prune_sample_fraction = std::stod(prune_fraction);
  }
  config.journal_enabled = support::env::flag("SEFI_JOURNAL", true);
  const std::uint64_t seed = support::env::u64("SEFI_SEED", 0);
  if (seed != 0) {
    config.fi.seed = seed;
    config.beam.seed = seed ^ 0xBEA3;
  }
  return config;
}

stats::FoldDifference WorkloadComparison::sdc_fold() const {
  return stats::fold_difference(beam.fit_sdc(), fi_fit.sdc);
}

stats::FoldDifference WorkloadComparison::app_crash_fold() const {
  return stats::fold_difference(beam.fit_app_crash(), fi_fit.app_crash);
}

stats::FoldDifference WorkloadComparison::sys_crash_fold() const {
  return stats::fold_difference(beam.fit_sys_crash(), fi_fit.sys_crash);
}

stats::FoldDifference WorkloadComparison::sdc_plus_app_fold() const {
  return stats::fold_difference(beam.fit_sdc() + beam.fit_app_crash(),
                                fi_fit.sdc + fi_fit.app_crash);
}

double AggregateComparison::sdc_gap() const {
  return stats::fold_difference(beam_sdc, fi_sdc).magnitude;
}

double AggregateComparison::sdc_app_gap() const {
  return stats::fold_difference(beam_sdc_app, fi_sdc_app).magnitude;
}

double AggregateComparison::total_gap() const {
  return stats::fold_difference(beam_total, fi_total).magnitude;
}

AssessmentLab::AssessmentLab(LabConfig config) : config_(std::move(config)) {}

double AssessmentLab::fit_raw_per_bit() {
  if (!fit_raw_.has_value()) {
    // Calibration anchors every FI-side FIT value, so its counting noise
    // multiplies through the whole comparison: give it a 3x-longer
    // session than a regular benchmark. It still flows through the disk
    // cache (the longer run count fingerprints differently).
    beam::BeamConfig calibration = config_.beam;
    calibration.runs *= 3;
    const std::string key = ResultCache::make_key(
        "beam", fingerprint(calibration),
        workloads::l1_pattern_workload().info().name);
    const beam::BeamResult* cached = cache_.load_beam(key);
    const beam::BeamResult& result =
        cached != nullptr
            ? *cached
            : cache_.store_beam(
                  key, beam::run_beam_session(
                           workloads::l1_pattern_workload(), calibration));
    fit_raw_ =
        result.fit_sdc() / static_cast<double>(beam::l1_pattern_bits());
    support::require(*fit_raw_ > 0,
                     "AssessmentLab: FIT_raw calibration measured no events; "
                     "increase SEFI_BEAM_RUNS");
  }
  return *fit_raw_;
}

std::string AssessmentLab::fi_journal_path(const std::string& key) const {
  return cache_.directory() + "/" + key + ".journal";
}

const fi::WorkloadFiResult& AssessmentLab::run_fi(
    const workloads::Workload& workload) {
  const std::string key = ResultCache::make_key(
      "fi", fingerprint(config_.fi), workload.info().name);
  if (const fi::WorkloadFiResult* cached = cache_.load_fi(key)) {
    return *cached;
  }
  // Run under a resume journal when enabled: an interrupted (or killed)
  // campaign replays its finished injections on the next run_fi call
  // with the same configuration. The key *is* the campaign identity, so
  // a stale journal from a different config can never be resumed from —
  // its filename (and header) simply don't match.
  fi::CampaignConfig campaign = config_.fi;
  std::optional<support::TaskJournal> journal;
  if (journaling_enabled()) {
    journal.emplace(fi_journal_path(key), "fi " + key);
    campaign.journal = &*journal;
  }
  fi::WorkloadFiResult result = fi::run_fi_campaign(workload, campaign);
  supervisor_.tasks_run += result.stats.tasks_run;
  supervisor_.journal_replayed += result.stats.journal_replayed;
  supervisor_.retries += result.stats.task_retries;
  supervisor_.harness_errors += result.stats.harness_errors;
  supervisor_.watchdog_hits += result.stats.watchdog_hits;
  supervisor_.cancelled_tasks += result.stats.cancelled_tasks;
  if (result.stats.cancelled) {
    // Leave the journal in place — it is the resume state — and do not
    // cache or memoize the partial result.
    const std::uint64_t resolved = result.stats.journal_replayed +
                                   result.stats.tasks_run +
                                   result.stats.harness_errors;
    throw CampaignInterrupted(
        "FI campaign for " + workload.info().name + " interrupted (" +
            std::to_string(resolved) + "/" +
            std::to_string(result.stats.injections) + " injections resolved" +
            (journal.has_value() ? ", journaled; rerun to resume"
                                 : "; enable SEFI_CACHE_DIR to resume") +
            ")",
        resolved, result.stats.injections);
  }
  if (journal.has_value()) journal->remove();
  return cache_.store_fi(key, std::move(result));
}

const beam::BeamResult& AssessmentLab::run_beam(
    const workloads::Workload& workload) {
  const std::string key = ResultCache::make_key(
      "beam", fingerprint(config_.beam), workload.info().name);
  if (const beam::BeamResult* cached = cache_.load_beam(key)) {
    return *cached;
  }
  return cache_.store_beam(key,
                           beam::run_beam_session(workload, config_.beam));
}

FiFitRates AssessmentLab::convert_to_fit(const fi::WorkloadFiResult& result) {
  const double fit_raw = fit_raw_per_bit();
  FiFitRates rates;
  for (const fi::ComponentResult& comp : result.components) {
    const auto bits = static_cast<double>(comp.bits);
    rates.sdc += stats::fit_from_avf(fit_raw, bits, comp.avf_sdc());
    rates.app_crash +=
        stats::fit_from_avf(fit_raw, bits, comp.avf_app_crash());
    rates.sys_crash +=
        stats::fit_from_avf(fit_raw, bits, comp.avf_sys_crash());
    rates.detected += stats::fit_from_avf(fit_raw, bits, comp.avf_detected());
  }
  return rates;
}

WorkloadComparison AssessmentLab::compare(
    const workloads::Workload& workload) {
  WorkloadComparison comparison;
  comparison.workload = workload.info().name;
  comparison.fi = run_fi(workload);
  comparison.beam = run_beam(workload);
  comparison.fi_fit = convert_to_fit(comparison.fi);
  return comparison;
}

AssessmentLab::JournalStatus AssessmentLab::fi_journal_status(
    const workloads::Workload& workload) const {
  JournalStatus status;
  status.enabled = journaling_enabled();
  status.total =
      config_.fi.faults_per_component * microarch::kNumComponents;
  if (!cache_.enabled()) return status;
  const std::string key = ResultCache::make_key(
      "fi", fingerprint(config_.fi), workload.info().name);
  status.path = fi_journal_path(key);
  status.cached = cache_.has_entry(key);
  const support::TaskJournal::Status on_disk =
      support::TaskJournal::inspect(status.path);
  // A journal whose header names a different campaign is resume state
  // for nothing — report it as absent (opening it would discard it).
  if (on_disk.present && on_disk.header == "fi " + key) {
    status.present = true;
    // Count and classify the decoded injection records (last payload per
    // index wins, matching replay); the reserved telemetry record is
    // decoded separately and kept out of the injection counts.
    for (const auto& [index, payload] : on_disk.entries) {
      if (index == fi::kJournalTelemetryIndex) {
        status.has_telemetry =
            fi::parse_journal_telemetry(payload, &status.telemetry);
        continue;
      }
      fi::Outcome outcome{};
      if (!fi::parse_journal_outcome(payload, &outcome)) continue;
      ++status.records;
      status.resolved.add(outcome);
    }
  }
  return status;
}

bool AssessmentLab::discard_fi_journal(
    const workloads::Workload& workload) const {
  if (!cache_.enabled()) return false;
  const std::string key = ResultCache::make_key(
      "fi", fingerprint(config_.fi), workload.info().name);
  std::error_code ec;
  return std::filesystem::remove(fi_journal_path(key), ec);
}

bool AssessmentLab::load_cached_beam(const workloads::Workload& workload) {
  const std::string key = ResultCache::make_key(
      "beam", fingerprint(config_.beam), workload.info().name);
  return cache_.load_beam(key) != nullptr;
}

std::vector<WorkloadComparison> AssessmentLab::compare_all() {
  const std::vector<const workloads::Workload*>& suite =
      workloads::all_workloads();
  // Fan the uncached beam sessions out first: each session is a serial
  // powered-board simulation, so independent sessions are the sweep's
  // parallelism. Campaign caches stay single-threaded — sessions run on
  // workers, results merge here in suite order.
  std::vector<const workloads::Workload*> beam_missing;
  for (const workloads::Workload* workload : suite) {
    if (!load_cached_beam(*workload)) beam_missing.push_back(workload);
  }
  if (!beam_missing.empty()) {
    // The sweep journal covers the *uncached* session list, which shrinks
    // as sessions complete and get cached — so its header names the
    // exact list it indexes. A resume with a different uncached set
    // (some sessions finished and were cached last time) simply starts a
    // fresh journal; the cache already carries the finished sessions.
    beam::BeamConfig sweep_config = config_.beam;
    std::optional<support::TaskJournal> journal;
    if (journaling_enabled()) {
      const std::string key = ResultCache::make_key(
          "beamsweep", fingerprint(config_.beam), "sweep");
      std::string header = "beam " + key;
      for (const workloads::Workload* workload : beam_missing) {
        header += " " + workload->info().name;
      }
      journal.emplace(cache_.directory() + "/" + key + ".journal", header);
      sweep_config.journal = &*journal;
    }
    beam::BeamSweepStats sweep_stats;
    const std::vector<beam::BeamResult> results =
        beam::run_beam_sessions(beam_missing, sweep_config, &sweep_stats);
    supervisor_.tasks_run += sweep_stats.sessions_run;
    supervisor_.journal_replayed += sweep_stats.journal_replayed;
    supervisor_.retries += sweep_stats.retries;
    supervisor_.harness_errors += sweep_stats.harness_errors;
    supervisor_.watchdog_hits += sweep_stats.watchdog_hits;
    supervisor_.cancelled_tasks += sweep_stats.cancelled_tasks;
    // Publish every session that resolved to a real result — even when
    // the sweep was cancelled, so a resume re-runs only the remainder.
    std::uint64_t resolved = 0;
    for (std::size_t i = 0; i < beam_missing.size(); ++i) {
      const exec::TaskState state = sweep_stats.states[i];
      if (state != exec::TaskState::kDone &&
          state != exec::TaskState::kSkipped) {
        continue;
      }
      ++resolved;
      const std::string key = ResultCache::make_key(
          "beam", fingerprint(config_.beam), beam_missing[i]->info().name);
      cache_.store_beam(key, results[i]);
    }
    if (sweep_stats.cancelled) {
      throw CampaignInterrupted(
          "beam sweep interrupted (" + std::to_string(resolved) + "/" +
              std::to_string(beam_missing.size()) +
              " sessions resolved and cached; rerun to resume)",
          resolved, beam_missing.size());
    }
    if (journal.has_value()) journal->remove();
  }
  // FI campaigns parallelize internally (run_fi_campaign fans injections
  // over config_.fi.threads workers), so run them one after another.
  std::vector<WorkloadComparison> sweep;
  sweep.reserve(suite.size());
  for (const workloads::Workload* workload : suite) {
    sweep.push_back(compare(*workload));
  }
  return sweep;
}

AggregateComparison AssessmentLab::aggregate(
    const std::vector<WorkloadComparison>& sweep) {
  AggregateComparison agg;
  if (sweep.empty()) return agg;
  const auto n = static_cast<double>(sweep.size());
  for (const WorkloadComparison& c : sweep) {
    agg.beam_sdc += c.beam.fit_sdc();
    agg.beam_sdc_app += c.beam.fit_sdc() + c.beam.fit_app_crash();
    agg.beam_total += c.beam.fit_total();
    agg.fi_sdc += c.fi_fit.sdc;
    agg.fi_sdc_app += c.fi_fit.sdc + c.fi_fit.app_crash;
    agg.fi_total += c.fi_fit.total();
  }
  agg.beam_sdc /= n;
  agg.beam_sdc_app /= n;
  agg.beam_total /= n;
  agg.fi_sdc /= n;
  agg.fi_sdc_app /= n;
  agg.fi_total /= n;
  return agg;
}

}  // namespace sefi::core
