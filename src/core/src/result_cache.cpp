#include "sefi/core/result_cache.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sefi/support/hash.hpp"
#include "sefi/support/strings.hpp"

namespace sefi::core {

namespace {

/// Bump on any change to the serialized formats below OR to simulator
/// behaviour that alters campaign outcomes for identical configurations.
/// v4: per-component FI sampling streams moved to SplitMix64 derivation.
constexpr int kFormatVersion = 4;

void hash_double(support::Fnv1a& h, double value) {
  h.update(support::format_sci(value));
}

void hash_u64(support::Fnv1a& h, std::uint64_t value) {
  h.update(std::to_string(value));
}

void hash_uarch(support::Fnv1a& h, const microarch::DetailedConfig& u) {
  for (const auto& geom : {u.l1i, u.l1d, u.l2}) {
    hash_u64(h, geom.size_bytes);
    hash_u64(h, geom.line_bytes);
    hash_u64(h, geom.ways);
  }
  hash_u64(h, u.itlb_entries);
  hash_u64(h, u.dtlb_entries);
  hash_u64(h, u.phys_regs);
  hash_u64(h, u.l2_hit_extra);
  hash_u64(h, u.mem_extra);
  hash_u64(h, u.walk_extra);
  hash_u64(h, u.mispredict_penalty);
  hash_u64(h, u.mmio_extra);
}

void hash_kernel(support::Fnv1a& h, const kernel::KernelConfig& k) {
  hash_u64(h, k.timer_interval_cycles);
  hash_u64(h, k.mapped_pages);
  hash_u64(h, k.kernel_pages);
  hash_u64(h, k.sched_footprint_words);
}

}  // namespace

std::uint64_t fingerprint(const fi::CampaignConfig& config) {
  support::Fnv1a h;
  hash_u64(h, kFormatVersion);
  h.update("fi");
  hash_u64(h, config.faults_per_component);
  hash_u64(h, config.seed);
  hash_u64(h, config.input_seed);
  hash_double(h, config.confidence);
  hash_u64(h, static_cast<std::uint64_t>(config.fault_model));
  hash_uarch(h, config.rig.uarch);
  hash_kernel(h, config.rig.kernel);
  for (const auto protection : config.rig.protection.per_component) {
    hash_u64(h, static_cast<std::uint64_t>(protection));
  }
  hash_u64(h, config.rig.hang_budget_factor);
  hash_u64(h, config.rig.probe_timer_periods);
  // config.threads, config.checkpoints, and config.rig.delta_restore are
  // deliberately NOT hashed: the executor contract guarantees
  // bit-identical results for any values, so they are not part of the
  // campaign's identity.
  return h.digest();
}

std::uint64_t fingerprint(const beam::BeamConfig& config) {
  support::Fnv1a h;
  hash_u64(h, kFormatVersion);
  h.update("beam");
  hash_uarch(h, config.uarch);
  hash_kernel(h, config.kernel);
  for (const auto& resource : config.platform.resources) {
    h.update(resource.name);
    hash_double(h, resource.bits);
    hash_double(h, resource.p_sys_crash);
    hash_double(h, resource.p_app_crash);
  }
  hash_double(h, config.sigma_bit_cm2);
  hash_double(h, config.cpu_hz);
  hash_double(h, config.strikes_per_run);
  hash_double(h, config.p_double_bit);
  hash_u64(h, config.power_cycle_every_run ? 1 : 0);
  hash_u64(h, config.runs);
  hash_u64(h, config.seed);
  hash_u64(h, config.input_seed);
  hash_u64(h, config.hang_budget_factor);
  hash_u64(h, config.probe_timer_periods);
  // config.threads and config.delta_restore are deliberately NOT hashed:
  // the former only schedules independent sessions across workers, the
  // latter is a restore fast path a beam session never exercises;
  // neither changes any result.
  return h.digest();
}

std::string serialize(const fi::WorkloadFiResult& result) {
  std::ostringstream os;
  os << "fi v" << kFormatVersion << "\n";
  os << "workload " << result.workload << "\n";
  for (const fi::ComponentResult& comp : result.components) {
    os << "component " << static_cast<int>(comp.component) << " bits "
       << comp.bits << " masked " << comp.counts.masked << " sdc "
       << comp.counts.sdc << " app " << comp.counts.app_crash << " sys "
       << comp.counts.sys_crash << " margin " << comp.error_margin << "\n";
  }
  return os.str();
}

std::optional<fi::WorkloadFiResult> deserialize_fi(const std::string& text) {
  std::istringstream is(text);
  std::string tag, version;
  is >> tag >> version;
  if (tag != "fi" || version != "v" + std::to_string(kFormatVersion)) {
    return std::nullopt;
  }
  fi::WorkloadFiResult result;
  is >> tag >> result.workload;
  if (tag != "workload") return std::nullopt;
  for (auto& comp : result.components) {
    int kind = 0;
    std::string bits, masked, sdc, app, sys, margin;
    is >> tag >> kind >> bits >> comp.bits >> masked >> comp.counts.masked >>
        sdc >> comp.counts.sdc >> app >> comp.counts.app_crash >> sys >>
        comp.counts.sys_crash >> margin >> comp.error_margin;
    if (!is || tag != "component") return std::nullopt;
    comp.component = static_cast<microarch::ComponentKind>(kind);
  }
  return result;
}

std::string serialize(const beam::BeamResult& result) {
  std::ostringstream os;
  os.precision(17);
  os << "beam v" << kFormatVersion << "\n";
  os << "workload " << result.workload << "\n";
  os << "runs " << result.runs << " sdc " << result.sdc << " app "
     << result.app_crash << " sys " << result.sys_crash << " strikes "
     << result.strikes << " reboots " << result.reboots << "\n";
  os << "exposure " << result.exposure_seconds << " fluence "
     << result.fluence_per_cm2 << " flux " << result.accel_flux_per_cm2_s
     << "\n";
  return os.str();
}

std::optional<beam::BeamResult> deserialize_beam(const std::string& text) {
  std::istringstream is(text);
  std::string tag, version;
  is >> tag >> version;
  if (tag != "beam" || version != "v" + std::to_string(kFormatVersion)) {
    return std::nullopt;
  }
  beam::BeamResult result;
  std::string f1, f2, f3, f4, f5, f6;
  is >> tag >> result.workload;
  if (tag != "workload") return std::nullopt;
  is >> f1 >> result.runs >> f2 >> result.sdc >> f3 >> result.app_crash >>
      f4 >> result.sys_crash >> f5 >> result.strikes >> f6 >> result.reboots;
  if (!is || f1 != "runs") return std::nullopt;
  is >> f1 >> result.exposure_seconds >> f2 >> result.fluence_per_cm2 >> f3 >>
      result.accel_flux_per_cm2_s;
  if (!is || f1 != "exposure") return std::nullopt;
  return result;
}

ResultCache::ResultCache(std::string directory)
    : directory_(std::move(directory)) {}

ResultCache ResultCache::from_env() {
  const char* dir = std::getenv("SEFI_CACHE_DIR");
  return ResultCache(dir == nullptr ? "" : dir);
}

std::string ResultCache::make_key(const std::string& kind,
                                  std::uint64_t fingerprint,
                                  const std::string& workload) {
  std::ostringstream os;
  os << kind << "-" << workload << "-" << std::hex << fingerprint;
  return os.str();
}

std::string ResultCache::path_for(const std::string& key) const {
  return directory_ + "/" + key + ".txt";
}

std::optional<std::string> ResultCache::load(const std::string& key) const {
  if (!enabled()) return std::nullopt;
  std::ifstream in(path_for(key));
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void ResultCache::store(const std::string& key,
                        const std::string& payload) const {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  std::ofstream out(path_for(key));
  out << payload;
}

}  // namespace sefi::core
