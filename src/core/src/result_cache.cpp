#include "sefi/core/result_cache.hpp"

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "sefi/obs/metrics.hpp"
#include "sefi/obs/trace.hpp"
#include "sefi/support/env.hpp"
#include "sefi/support/fsio.hpp"
#include "sefi/support/hash.hpp"
#include "sefi/support/seal.hpp"
#include "sefi/support/strings.hpp"

namespace sefi::core {

namespace {

/// Bump on any change to the serialized formats below OR to simulator
/// behaviour that alters campaign outcomes for identical configurations.
/// v4: per-component FI sampling streams moved to SplitMix64 derivation.
/// v5: entries sealed with an FNV-1a checksum footer and published via
///     atomic rename; pre-v5 caches are unreadable (gc drops them).
/// v6: FI component lines carry the harness-error count (experiments the
///     campaign supervisor could not complete; excluded from AVF
///     denominators).
/// v7: FI fingerprints cover the prune mode (and sample fraction); FI
///     component lines carry pruned/live/estimator-variance fields. A
///     pruned and an exhaustive campaign must never share a cache entry.
/// v8: hardened workloads (sefi/harden). FI component lines and beam
///     result lines carry the Detected count; fingerprints cover the
///     harden mode — but only when it is not kOff, so within v8 an
///     off-mode fingerprint is independent of the hardening feature.
constexpr int kFormatVersion = 8;

void hash_double(support::Fnv1a& h, double value) {
  h.update(support::format_sci(value));
}

void hash_u64(support::Fnv1a& h, std::uint64_t value) {
  h.update(std::to_string(value));
}

void hash_uarch(support::Fnv1a& h, const microarch::DetailedConfig& u) {
  for (const auto& geom : {u.l1i, u.l1d, u.l2}) {
    hash_u64(h, geom.size_bytes);
    hash_u64(h, geom.line_bytes);
    hash_u64(h, geom.ways);
  }
  hash_u64(h, u.itlb_entries);
  hash_u64(h, u.dtlb_entries);
  hash_u64(h, u.phys_regs);
  hash_u64(h, u.l2_hit_extra);
  hash_u64(h, u.mem_extra);
  hash_u64(h, u.walk_extra);
  hash_u64(h, u.mispredict_penalty);
  hash_u64(h, u.mmio_extra);
}

void hash_kernel(support::Fnv1a& h, const kernel::KernelConfig& k) {
  hash_u64(h, k.timer_interval_cycles);
  hash_u64(h, k.mapped_pages);
  hash_u64(h, k.kernel_pages);
  hash_u64(h, k.sched_footprint_words);
}

/// Format version claimed by a serialized payload's first line
/// ("fi v<N>" / "beam v<N>"), or nullopt when the text leads with
/// anything else. Used to tell stale-format entries (ignorable, gc
/// reclaims them) from genuine corruption (quarantined on sight).
std::optional<int> payload_version(const std::string& text) {
  std::istringstream is(text);
  std::string tag, version;
  is >> tag >> version;
  if (!is || (tag != "fi" && tag != "beam")) return std::nullopt;
  if (version.size() < 2 || version[0] != 'v') return std::nullopt;
  int value = 0;
  for (std::size_t i = 1; i < version.size(); ++i) {
    if (version[i] < '0' || version[i] > '9') return std::nullopt;
    value = value * 10 + (version[i] - '0');
  }
  return value;
}

void quarantine_file(const std::string& path) {
  std::error_code ec;
  std::filesystem::rename(path, path + ".quarantined", ec);
  if (ec) std::filesystem::remove(path, ec);
}

/// Shard subdirectory for a key: the low byte of its FNV-1a hash as two
/// lowercase hex digits. Purely a function of the key, so every process
/// (and every format version from v7 on) agrees on the placement.
std::string shard_name(const std::string& key) {
  static constexpr char kHex[] = "0123456789abcdef";
  const auto byte = static_cast<unsigned>(support::fnv1a(key) & 0xffu);
  return {kHex[byte >> 4], kHex[byte & 0xf]};
}

/// Whether a directory name is one of the 256 shard subdirectories (the
/// cache dir also hosts journals and the serve queue, which scans must
/// leave alone).
bool is_shard_dir(const std::string& name) {
  if (name.size() != 2) return false;
  for (char c : name) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

/// Grace period before gc treats an atomic-write temp as orphaned. A
/// live writer holds its temp for milliseconds; anything older than
/// this was abandoned by a crashed process.
std::chrono::milliseconds temp_grace() {
  return std::chrono::milliseconds(
      support::env::u64("SEFI_TEMP_GRACE_MS", 15 * 60 * 1000));
}

/// True when `path`'s mtime is older than the temp grace period. A
/// stat failure (file already renamed/removed by its writer) reports
/// not-stale, so a racing publish is never swept.
bool temp_is_stale(const std::filesystem::path& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return false;
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  return age > temp_grace();
}

}  // namespace

std::uint64_t fingerprint(const fi::CampaignConfig& config) {
  support::Fnv1a h;
  hash_u64(h, kFormatVersion);
  h.update("fi");
  hash_u64(h, config.faults_per_component);
  hash_u64(h, config.seed);
  hash_u64(h, config.input_seed);
  hash_double(h, config.confidence);
  hash_u64(h, static_cast<std::uint64_t>(config.fault_model));
  hash_uarch(h, config.rig.uarch);
  hash_kernel(h, config.rig.kernel);
  for (const auto protection : config.rig.protection.per_component) {
    hash_u64(h, static_cast<std::uint64_t>(protection));
  }
  hash_u64(h, config.rig.hang_budget_factor);
  hash_u64(h, config.rig.probe_timer_periods);
  // The prune mode IS campaign identity: kClassify proves the same
  // counts without executing pruned sites, but kSample changes what the
  // numbers mean (reweighted estimates), and mixing pruned and
  // exhaustive entries under one key would make a cache hit depend on
  // which mode ran first. The sample fraction only matters when
  // sampling is on.
  hash_u64(h, static_cast<std::uint64_t>(config.prune));
  if (config.prune == fi::PruneMode::kSample) {
    hash_double(h, config.prune_sample_fraction);
  }
  // The harden mode transforms the injected binary, so it is campaign
  // identity — but it is hashed only when a transform is actually
  // applied, keeping off-mode fingerprints independent of the feature.
  if (config.rig.harden != harden::HardenMode::kOff) {
    h.update("harden");
    h.update(harden::harden_mode_name(config.rig.harden));
    // The muted twin is a different binary with different outcomes, so
    // it must never share an entry with the armed build.
    hash_u64(h, config.rig.harden_options.mute_detection ? 1 : 0);
  }
  // config.threads, config.checkpoints, and config.rig.delta_restore are
  // deliberately NOT hashed: the executor contract guarantees
  // bit-identical results for any values, so they are not part of the
  // campaign's identity. The supervisor knobs (max_task_retries,
  // task_deadline_ms, cancel, journal, task_fault_hook) are excluded for
  // the same reason — on a healthy harness they cannot change outcomes.
  return h.digest();
}

std::uint64_t fingerprint(const beam::BeamConfig& config) {
  support::Fnv1a h;
  hash_u64(h, kFormatVersion);
  h.update("beam");
  hash_uarch(h, config.uarch);
  hash_kernel(h, config.kernel);
  for (const auto& resource : config.platform.resources) {
    h.update(resource.name);
    hash_double(h, resource.bits);
    hash_double(h, resource.p_sys_crash);
    hash_double(h, resource.p_app_crash);
  }
  hash_double(h, config.sigma_bit_cm2);
  hash_double(h, config.cpu_hz);
  hash_double(h, config.strikes_per_run);
  hash_double(h, config.p_double_bit);
  hash_u64(h, config.power_cycle_every_run ? 1 : 0);
  hash_u64(h, config.runs);
  hash_u64(h, config.seed);
  hash_u64(h, config.input_seed);
  hash_u64(h, config.hang_budget_factor);
  hash_u64(h, config.probe_timer_periods);
  // Hardening transforms the exposed binary: identity, hashed only when
  // actually on (see the FI fingerprint note).
  if (config.harden != harden::HardenMode::kOff) {
    h.update("harden");
    h.update(harden::harden_mode_name(config.harden));
  }
  // config.threads and config.delta_restore are deliberately NOT hashed:
  // the former only schedules independent sessions across workers, the
  // latter is a restore fast path a beam session never exercises;
  // neither changes any result. The supervisor knobs (max_task_retries,
  // task_deadline_ms, cancel, journal, session_fault_hook) are excluded
  // for the same reason.
  return h.digest();
}

std::string serialize(const fi::WorkloadFiResult& result) {
  std::ostringstream os;
  os.precision(17);
  os << "fi v" << kFormatVersion << "\n";
  os << "workload " << result.workload << "\n";
  for (const fi::ComponentResult& comp : result.components) {
    os << "component " << static_cast<int>(comp.component) << " bits "
       << comp.bits << " masked " << comp.counts.masked << " sdc "
       << comp.counts.sdc << " app " << comp.counts.app_crash << " sys "
       << comp.counts.sys_crash << " harness " << comp.counts.harness_error
       << " detected " << comp.counts.detected << " margin "
       << comp.error_margin << " pruned " << comp.pruned_masked << " live "
       << comp.live_sites << " estvar " << comp.estimator_variance << "\n";
  }
  return os.str();
}

std::optional<fi::WorkloadFiResult> deserialize_fi(const std::string& text) {
  std::istringstream is(text);
  std::string tag, version;
  is >> tag >> version;
  if (tag != "fi" || version != "v" + std::to_string(kFormatVersion)) {
    return std::nullopt;
  }
  fi::WorkloadFiResult result;
  is >> tag >> result.workload;
  if (tag != "workload") return std::nullopt;
  for (auto& comp : result.components) {
    int kind = 0;
    std::string bits, masked, sdc, app, sys, harness, detected, margin,
        pruned, live, estvar;
    is >> tag >> kind >> bits >> comp.bits >> masked >> comp.counts.masked >>
        sdc >> comp.counts.sdc >> app >> comp.counts.app_crash >> sys >>
        comp.counts.sys_crash >> harness >> comp.counts.harness_error >>
        detected >> comp.counts.detected >> margin >> comp.error_margin >>
        pruned >> comp.pruned_masked >> live >> comp.live_sites >> estvar >>
        comp.estimator_variance;
    if (!is || tag != "component" || harness != "harness" ||
        detected != "detected" || pruned != "pruned" || estvar != "estvar") {
      return std::nullopt;
    }
    // A component id outside the enum would construct a bogus
    // ComponentKind that component_name()/ProtectionPolicy would index
    // out of range with — reject it here instead.
    if (kind < 0 || kind >= static_cast<int>(microarch::kNumComponents)) {
      return std::nullopt;
    }
    comp.component = static_cast<microarch::ComponentKind>(kind);
  }
  return result;
}

std::string serialize(const beam::BeamResult& result) {
  std::ostringstream os;
  os.precision(17);
  os << "beam v" << kFormatVersion << "\n";
  os << "workload " << result.workload << "\n";
  os << "runs " << result.runs << " sdc " << result.sdc << " app "
     << result.app_crash << " sys " << result.sys_crash << " detected "
     << result.detected << " strikes " << result.strikes << " reboots "
     << result.reboots << "\n";
  os << "exposure " << result.exposure_seconds << " fluence "
     << result.fluence_per_cm2 << " flux " << result.accel_flux_per_cm2_s
     << "\n";
  return os.str();
}

std::optional<beam::BeamResult> deserialize_beam(const std::string& text) {
  std::istringstream is(text);
  std::string tag, version;
  is >> tag >> version;
  if (tag != "beam" || version != "v" + std::to_string(kFormatVersion)) {
    return std::nullopt;
  }
  beam::BeamResult result;
  std::string f1, f2, f3, f4, f5, f6, f7;
  is >> tag >> result.workload;
  if (tag != "workload") return std::nullopt;
  is >> f1 >> result.runs >> f2 >> result.sdc >> f3 >> result.app_crash >>
      f4 >> result.sys_crash >> f5 >> result.detected >> f6 >>
      result.strikes >> f7 >> result.reboots;
  if (!is || f1 != "runs" || f5 != "detected") return std::nullopt;
  is >> f1 >> result.exposure_seconds >> f2 >> result.fluence_per_cm2 >> f3 >>
      result.accel_flux_per_cm2_s;
  if (!is || f1 != "exposure") return std::nullopt;
  return result;
}

// --- ResultCache -----------------------------------------------------------

struct ResultCache::State {
  std::mutex mutex;
  Telemetry telemetry;
  std::map<std::string, fi::WorkloadFiResult> fi_memo;
  std::map<std::string, beam::BeamResult> beam_memo;

  // Everything below assumes `mutex` is held.

  /// Disk tier load: read, checksum-verify, strip the footer. Counts a
  /// disk hit only for a verified payload; corrupt entries are
  /// quarantined, stale-format entries left in place for gc.
  std::optional<std::string> disk_load(const ResultCache& cache,
                                       const std::string& key) {
    static obs::Counter& hit_metric = obs::Registry::instance().counter(
        "sefi_cache_disk_hits_total", "Result-cache disk loads that verified");
    static obs::Counter& miss_metric = obs::Registry::instance().counter(
        "sefi_cache_misses_total",
        "Result-cache lookups that fell through to recomputation");
    if (!cache.enabled()) {
      ++telemetry.misses;
      miss_metric.add();
      return std::nullopt;
    }
    const obs::Span span("cache_load", "cache");
    // Sharded layout first; fall back to the pre-shard flat path so a
    // cache written before the layout change keeps hitting (gc migrates
    // flat entries into their shard lazily).
    std::string path = cache.path_for(key);
    auto raw = support::read_file(path);
    if (!raw) {
      path = cache.flat_path_for(key);
      raw = support::read_file(path);
    }
    if (!raw) {
      ++telemetry.misses;
      miss_metric.add();
      return std::nullopt;
    }
    telemetry.bytes_read += raw->size();
    auto body = support::unseal(*raw);
    if (!body) {
      ++telemetry.misses;
      miss_metric.add();
      const auto version = payload_version(*raw);
      if (version.has_value() && *version != kFormatVersion) {
        ++telemetry.version_skew;
      } else {
        ++telemetry.corrupt_quarantined;
        quarantine_file(path);
      }
      return std::nullopt;
    }
    ++telemetry.disk_hits;
    hit_metric.add();
    return body;
  }

  /// Disk tier store: seal and atomically publish. Failures drop the
  /// temp file (inside write_file_atomic) and are only counted.
  bool disk_store(const ResultCache& cache, const std::string& key,
                  const std::string& payload) {
    static obs::Counter& store_metric = obs::Registry::instance().counter(
        "sefi_cache_stores_total", "Result-cache entries published to disk");
    if (!cache.enabled()) return true;
    const obs::Span span("cache_store", "cache");
    std::error_code ec;
    std::filesystem::create_directories(
        cache.directory_ + "/" + shard_name(key), ec);
    const std::string sealed = support::seal(payload);
    if (!support::write_file_atomic(cache.path_for(key), sealed)) {
      ++telemetry.store_failures;
      return false;
    }
    ++telemetry.stores;
    store_metric.add();
    telemetry.bytes_written += sealed.size();
    return true;
  }

  /// A checksum-valid payload that still fails deserialize: re-book the
  /// provisional disk hit as a corrupt (or stale-format) miss.
  void demote_unparseable(const ResultCache& cache, const std::string& key,
                          const std::string& body) {
    --telemetry.disk_hits;
    ++telemetry.misses;
    const auto version = payload_version(body);
    if (version.has_value() && *version != kFormatVersion) {
      ++telemetry.version_skew;
    } else {
      ++telemetry.corrupt_quarantined;
      // The bad payload may have been read from either layout.
      std::error_code ec;
      std::string target = cache.path_for(key);
      if (!std::filesystem::exists(target, ec)) {
        target = cache.flat_path_for(key);
      }
      quarantine_file(target);
    }
  }
};

ResultCache::ResultCache(std::string directory)
    : directory_(std::move(directory)), state_(std::make_shared<State>()) {}

ResultCache ResultCache::from_env() {
  const char* dir = std::getenv("SEFI_CACHE_DIR");
  return ResultCache(dir == nullptr ? "" : dir);
}

std::string ResultCache::make_key(const std::string& kind,
                                  std::uint64_t fingerprint,
                                  const std::string& workload) {
  // The workload name is user-controlled text destined for a filename:
  // restrict it to [A-Za-z0-9_-] and cap its length, then append a hash
  // of the raw name so sanitization can never make two distinct
  // workloads share a key ("a/b" vs "a_b", or long names truncating to
  // the same prefix).
  std::string sanitized;
  sanitized.reserve(workload.size());
  for (char c : workload) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    sanitized += ok ? c : '_';
  }
  if (sanitized.size() > 48) sanitized.resize(48);
  if (sanitized.empty()) sanitized = "w";
  std::ostringstream os;
  os << kind << "-" << sanitized << "-" << std::hex
     << support::fnv1a(workload) << "-" << fingerprint;
  return os.str();
}

std::string ResultCache::path_for(const std::string& key) const {
  return directory_ + "/" + shard_name(key) + "/" + key + ".txt";
}

std::string ResultCache::flat_path_for(const std::string& key) const {
  return directory_ + "/" + key + ".txt";
}

std::string ResultCache::entry_path(const std::string& key) const {
  return path_for(key);
}

bool ResultCache::has_entry(const std::string& key) const {
  if (!enabled()) return false;
  std::error_code ec;
  return std::filesystem::exists(path_for(key), ec) ||
         std::filesystem::exists(flat_path_for(key), ec);
}

std::optional<std::string> ResultCache::load(const std::string& key) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->disk_load(*this, key);
}

bool ResultCache::store(const std::string& key,
                        const std::string& payload) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->disk_store(*this, key, payload);
}

const fi::WorkloadFiResult* ResultCache::load_fi(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (auto it = state_->fi_memo.find(key); it != state_->fi_memo.end()) {
    ++state_->telemetry.memo_hits;
    return &it->second;
  }
  auto body = state_->disk_load(*this, key);
  if (!body) return nullptr;
  auto parsed = deserialize_fi(*body);
  if (!parsed) {
    state_->demote_unparseable(*this, key, *body);
    return nullptr;
  }
  return &state_->fi_memo.emplace(key, std::move(*parsed)).first->second;
}

const fi::WorkloadFiResult& ResultCache::store_fi(
    const std::string& key, fi::WorkloadFiResult result) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->disk_store(*this, key, serialize(result));
  return state_->fi_memo.try_emplace(key, std::move(result)).first->second;
}

const beam::BeamResult* ResultCache::load_beam(const std::string& key) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (auto it = state_->beam_memo.find(key); it != state_->beam_memo.end()) {
    ++state_->telemetry.memo_hits;
    return &it->second;
  }
  auto body = state_->disk_load(*this, key);
  if (!body) return nullptr;
  auto parsed = deserialize_beam(*body);
  if (!parsed) {
    state_->demote_unparseable(*this, key, *body);
    return nullptr;
  }
  return &state_->beam_memo.emplace(key, std::move(*parsed)).first->second;
}

const beam::BeamResult& ResultCache::store_beam(const std::string& key,
                                                beam::BeamResult result) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->disk_store(*this, key, serialize(result));
  return state_->beam_memo.try_emplace(key, std::move(result)).first->second;
}

ResultCache::Telemetry ResultCache::telemetry() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->telemetry;
}

namespace {

/// The directories a cache scan owns: the top level plus the 256 shard
/// subdirectories. Journals, the serve queue, and any other subtree in
/// the cache dir are deliberately not visited.
std::vector<std::string> scan_dirs(const std::string& directory) {
  std::vector<std::string> dirs{directory};
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) return dirs;
  for (const auto& entry : it) {
    if (entry.is_directory(ec) &&
        is_shard_dir(entry.path().filename().string())) {
      dirs.push_back(entry.path().string());
    }
  }
  return dirs;
}

}  // namespace

ResultCache::ScanReport ResultCache::verify(bool quarantine_bad) const {
  ScanReport report;
  if (!enabled()) return report;
  std::error_code ec;
  for (const std::string& dir : scan_dirs(directory_)) {
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) continue;
    for (const auto& entry : it) {
      if (!entry.is_regular_file(ec)) continue;
      const std::string name = entry.path().filename().string();
      const std::string path = entry.path().string();
      const std::uint64_t size = entry.file_size(ec);
      if (name.ends_with(".quarantined")) {
        ++report.quarantined;
        report.bytes += size;
      } else if (name.find(support::kTempInfix) != std::string::npos) {
        ++report.temp_files;
        report.bytes += size;
      } else if (name.ends_with(".txt")) {
        ++report.entries;
        report.bytes += size;
        const auto raw = support::read_file(path);
        const auto body = raw ? support::unseal(*raw) : std::nullopt;
        const auto version = body ? payload_version(*body)
                            : raw ? payload_version(*raw)
                                  : std::nullopt;
        if (body.has_value() && version == kFormatVersion) {
          ++report.valid;
        } else if (version.has_value() && *version != kFormatVersion) {
          ++report.version_skew;
        } else {
          ++report.corrupt;
          if (quarantine_bad) quarantine_file(path);
        }
      }
    }
  }
  return report;
}

ResultCache::GcReport ResultCache::gc() const {
  GcReport report;
  if (!enabled()) return report;
  static obs::Counter& swept_metric = obs::Registry::instance().counter(
      "sefi_cache_stale_temps_swept_total",
      "Orphaned atomic-write temp files removed by cache gc");
  static obs::Counter& migrate_metric = obs::Registry::instance().counter(
      "sefi_cache_flat_migrated_total",
      "Flat-layout cache entries moved into their shard subdirectory");
  std::error_code ec;
  std::vector<std::pair<std::string, std::uint64_t>> doomed;
  std::vector<std::pair<std::string, std::uint64_t>> doomed_temps;
  const std::vector<std::string> dirs = scan_dirs(directory_);
  for (const std::string& dir : dirs) {
    const bool top_level = dir == directory_;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) continue;
    for (const auto& entry : it) {
      if (!entry.is_regular_file(ec)) continue;
      const std::string name = entry.path().filename().string();
      const std::string path = entry.path().string();
      const std::uint64_t size = entry.file_size(ec);
      if (name.ends_with(".quarantined")) {
        doomed.emplace_back(path, size);
      } else if (name.find(support::kTempInfix) != std::string::npos) {
        // A temp younger than the grace period may belong to a live
        // writer mid-publish; only provably orphaned ones are swept.
        if (temp_is_stale(entry.path())) doomed_temps.emplace_back(path, size);
      } else if (name.ends_with(".txt")) {
        const auto raw = support::read_file(path);
        const auto body = raw ? support::unseal(*raw) : std::nullopt;
        const std::string key = name.substr(0, name.size() - 4);
        if (!body.has_value() || payload_version(*body) != kFormatVersion) {
          doomed.emplace_back(path, size);
        } else if (top_level) {
          // Valid flat-layout entry: migrate into its shard. The rename
          // is atomic; a concurrent sharded store of the same key wins
          // or loses whole-file, never torn.
          std::filesystem::create_directories(
              directory_ + "/" + shard_name(key), ec);
          std::filesystem::rename(path, path_for(key), ec);
          if (!ec) ++report.migrated;
        }
      }
    }
  }
  for (const auto& [path, size] : doomed) {
    if (std::filesystem::remove(path, ec)) {
      ++report.removed_files;
      report.bytes_reclaimed += size;
    }
  }
  for (const auto& [path, size] : doomed_temps) {
    if (std::filesystem::remove(path, ec)) {
      ++report.removed_files;
      ++report.temps_swept;
      report.bytes_reclaimed += size;
    }
  }
  if (report.temps_swept > 0) swept_metric.add(report.temps_swept);
  if (report.migrated > 0) migrate_metric.add(report.migrated);
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->telemetry.stale_temps_swept += report.temps_swept;
    state_->telemetry.flat_migrated += report.migrated;
  }
  return report;
}

}  // namespace sefi::core
