#include "sefi/core/service.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <vector>

#include "sefi/exec/procpool.hpp"
#include "sefi/obs/forensics.hpp"
#include "sefi/obs/metrics.hpp"
#include "sefi/obs/trace.hpp"
#include "sefi/stats/estimator.hpp"
#include "sefi/support/error.hpp"
#include "sefi/support/fsio.hpp"
#include "sefi/support/journal.hpp"

namespace sefi::core {

namespace {

std::string shard_journal_path(const std::string& dir, const std::string& key,
                               std::size_t shard) {
  return dir + "/" + key + ".shard" + std::to_string(shard) + ".journal";
}

std::string shard_journal_header(const std::string& key, std::size_t shard) {
  return "fi " + key + " shard " + std::to_string(shard);
}

/// Wall-clock epoch milliseconds, journaled with each lease claim so an
/// outside observer (or a restarted coordinator) can tell an expired
/// lease from a live one.
std::uint64_t epoch_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// "sefi_forensics.jsonl" + pid 123 -> "sefi_forensics.123.jsonl".
std::string pid_suffixed(const std::string& path, std::uint64_t pid) {
  const std::filesystem::path p(path);
  const std::string ext = p.extension().string();
  std::filesystem::path stem = p;
  stem.replace_extension();
  return stem.string() + "." + std::to_string(pid) + ext;
}

/// Files next to `base` named `<stem>.<digits><ext>` — the per-pid
/// artifacts workers of any (current or crashed) generation left.
std::vector<std::string> sibling_pid_files(const std::string& base) {
  std::vector<std::string> out;
  const std::filesystem::path p(base);
  const std::string ext = p.extension().string();
  const std::string stem = p.stem().string();
  std::filesystem::path parent = p.parent_path();
  if (parent.empty()) parent = ".";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(parent, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= stem.size() + 1 + ext.size()) continue;
    if (name.rfind(stem + ".", 0) != 0) continue;
    if (!ext.empty() && name.compare(name.size() - ext.size(), ext.size(),
                                     ext) != 0) {
      continue;
    }
    const std::string middle = name.substr(
        stem.size() + 1, name.size() - stem.size() - 1 - ext.size());
    if (middle.empty() ||
        middle.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Appends every worker's per-pid forensics JSONL into the
/// coordinator's own file (JSONL concatenation is merge) and removes
/// the worker files.
void concat_worker_forensics() {
  obs::ForensicsSink* sink = obs::ForensicsSink::global();
  if (sink == nullptr) return;
  std::error_code ec;
  for (const std::string& file : sibling_pid_files(sink->path())) {
    if (const std::optional<std::string> content = support::read_file(file)) {
      if (!content->empty()) {
        if (std::FILE* out = std::fopen(sink->path().c_str(), "ab")) {
          std::fwrite(content->data(), 1, content->size(), out);
          std::fclose(out);
        }
      }
    }
    std::filesystem::remove(file, ec);
  }
}

/// Combines every worker's per-pid Chrome trace into one
/// `<stem>.workers<ext>` document (traceEvents arrays concatenated)
/// and removes the per-pid files. The coordinator's own trace still
/// flushes to the base path at exit; the workers artifact sits beside
/// it.
void combine_worker_traces() {
  obs::Tracer& tracer = obs::Tracer::instance();
  if (!tracer.enabled() || tracer.path().empty()) return;
  const std::vector<std::string> files = sibling_pid_files(tracer.path());
  if (files.empty()) return;
  std::string events;
  std::error_code ec;
  for (const std::string& file : files) {
    if (const std::optional<std::string> content = support::read_file(file)) {
      const std::size_t open = content->find('[');
      const std::size_t close = content->rfind(']');
      if (open != std::string::npos && close != std::string::npos &&
          close > open + 1) {
        const std::string inner = content->substr(open + 1, close - open - 1);
        if (inner.find_first_not_of(" \t\r\n") != std::string::npos) {
          if (!events.empty()) events += ",";
          events += inner;
        }
      }
    }
    std::filesystem::remove(file, ec);
  }
  const std::filesystem::path p(tracer.path());
  std::filesystem::path stem = p;
  stem.replace_extension();
  const std::string combined =
      stem.string() + ".workers" + p.extension().string();
  (void)support::write_file_atomic(combined,
                                   "{\"traceEvents\":[" + events + "]}");
}

void json_escape_into(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
      out += buffer;
    } else {
      out += c;
    }
  }
}

std::string json_string(const std::string& text) {
  std::string out = "\"";
  json_escape_into(out, text);
  out += '"';
  return out;
}

std::string json_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

}  // namespace

// ---------------------------------------------------------------------------
// ServeMonitor
// ---------------------------------------------------------------------------

ServeMonitor::ServeMonitor(std::string workers_dir)
    : workers_dir_(std::move(workers_dir)) {
  std::error_code ec;
  std::filesystem::create_directories(workers_dir_, ec);
}

void ServeMonitor::set_pool_info(std::uint64_t workers, std::uint64_t lease_ms,
                                 std::uint64_t respawn_budget) {
  const std::lock_guard<std::mutex> lock(mutex_);
  pool_workers_ = workers;
  pool_lease_ms_ = lease_ms;
  pool_respawn_budget_ = respawn_budget;
}

void ServeMonitor::begin_campaign(const std::string& key,
                                  const std::string& workload,
                                  std::uint64_t faults_per_component,
                                  std::uint64_t shard_count,
                                  double confidence) {
  const std::lock_guard<std::mutex> lock(mutex_);
  campaign_active_ = true;
  campaign_done_ = false;
  campaign_key_ = key;
  campaign_workload_ = workload;
  faults_per_component_ = faults_per_component;
  confidence_ = confidence;
  shards_.assign(shard_count, ShardInfo{});
  components_ = {};
  have_rate_baseline_ = false;
  baseline_resolved_ = 0;
  injections_per_sec_ = 0;
  eta_seconds_ = 0;
  refresh_gauges_locked();
}

void ServeMonitor::note_resumed(std::size_t shard) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= shards_.size()) return;
  shards_[shard].state = ShardState::kResumed;
}

void ServeMonitor::note_assign(std::size_t shard, std::size_t worker) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= shards_.size()) return;
  shards_[shard].state = ShardState::kClaimed;
  shards_[shard].worker = worker;
  shards_[shard].claim_epoch_ms = epoch_ms();
}

void ServeMonitor::note_done(std::size_t shard, std::size_t worker) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= shards_.size()) return;
  shards_[shard].state = ShardState::kDone;
  shards_[shard].worker = worker;
}

void ServeMonitor::note_reclaim(std::size_t shard, std::size_t worker) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= shards_.size()) return;
  shards_[shard].state = ShardState::kPending;
  shards_[shard].worker = worker;
  ++shards_[shard].reclaims;
}

void ServeMonitor::fold_worker_snapshot(std::uint64_t pid,
                                        const std::string& payload) {
  obs::MetricsSnapshot snap;
  if (!obs::decode_snapshot(payload, snap)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++snapshots_skipped_;
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  worker_snapshots_[pid] = std::move(snap);
  ++snapshots_folded_;
}

void ServeMonitor::update_convergence(
    const std::array<ComponentProgress, microarch::kNumComponents>&
        progress) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (campaign_done_) return;  // the final estimator has already landed
  std::uint64_t resolved_total = 0;
  for (std::size_t i = 0; i < microarch::kNumComponents; ++i) {
    ComponentView& view = components_[i];
    view.progress = progress[i];
    const ComponentProgress& p = progress[i];
    view.avf =
        p.classified > 0 ? static_cast<double>(p.faulty) / p.classified : 0.0;
    view.ci_half_width = 0;
    if (faults_per_component_ > 0 && p.classified > 0) {
      // Finite-population-corrected CI over the sampled population: the
      // shard journals are a without-replacement draw of the
      // faults_per_component sites, so the half-width shrinks to zero
      // exactly when the component's sample is fully resolved.
      const std::uint64_t executed =
          std::min(p.classified, faults_per_component_);
      const std::uint64_t faulty = std::min(p.faulty, executed);
      view.ci_half_width =
          stats::pruned_estimate(0, faults_per_component_, executed, faulty,
                                 confidence_)
              .ci_half_width;
    }
    resolved_total += p.classified;
  }

  const auto now = std::chrono::steady_clock::now();
  if (!have_rate_baseline_) {
    have_rate_baseline_ = true;
    baseline_resolved_ = resolved_total;
    baseline_time_ = now;
  } else if (resolved_total > baseline_resolved_) {
    const double seconds =
        std::chrono::duration<double>(now - baseline_time_).count();
    if (seconds > 0) {
      injections_per_sec_ =
          static_cast<double>(resolved_total - baseline_resolved_) / seconds;
    }
  }
  const std::uint64_t total = faults_per_component_ * microarch::kNumComponents;
  eta_seconds_ = (injections_per_sec_ > 0 && total > resolved_total)
                     ? static_cast<double>(total - resolved_total) /
                           injections_per_sec_
                     : 0.0;
  refresh_gauges_locked();
}

void ServeMonitor::finish_campaign(const fi::WorkloadFiResult& result) {
  const std::lock_guard<std::mutex> lock(mutex_);
  campaign_active_ = false;
  campaign_done_ = true;
  ++campaigns_served_;
  for (std::size_t i = 0; i < microarch::kNumComponents; ++i) {
    const fi::ComponentResult& final = result.components[i];
    ComponentView& view = components_[i];
    // Pin the live estimate to the merged campaign's own numbers: the
    // counts include pruned-as-Masked sites, avf() is the (possibly
    // reweighted) estimator, and error_margin is the paper's
    // re-adjusted Leveugle margin — /status now answers exactly what
    // the cached result would.
    const fi::ClassCounts& c = final.counts;
    view.progress.attempted = c.attempted();
    view.progress.classified = c.total();
    view.progress.faulty = c.total() - c.masked;
    view.progress.by_class = {c.masked,       c.sdc,
                              c.app_crash,    c.sys_crash,
                              c.harness_error, c.detected};
    view.avf = final.avf();
    view.ci_half_width = 0;
    view.error_margin = final.error_margin;
  }
  eta_seconds_ = 0;
  refresh_gauges_locked();
}

void ServeMonitor::note_campaign_served() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++campaigns_served_;
}

void ServeMonitor::refresh_gauges_locked() {
  obs::Registry& registry = obs::Registry::instance();
  std::uint64_t resolved = 0;
  for (const ComponentView& view : components_) {
    resolved += view.progress.classified;
  }
  registry
      .gauge("sefi_campaign_resolved_injections",
             "Injections resolved so far in the campaign being served")
      .set(static_cast<double>(resolved));
  registry
      .gauge("sefi_campaign_total_injections",
             "Sampled injections in the campaign being served")
      .set(static_cast<double>(faults_per_component_ *
                               microarch::kNumComponents));
  registry
      .gauge("sefi_campaign_injections_per_sec",
             "Fleet-wide resolution rate of the campaign being served")
      .set(injections_per_sec_);
  registry
      .gauge("sefi_campaign_eta_seconds",
             "Estimated seconds until the campaign being served resolves")
      .set(eta_seconds_);
  for (std::size_t i = 0; i < microarch::kNumComponents; ++i) {
    const std::string label =
        "component=\"" + microarch::component_name(microarch::kAllComponents[i]) +
        "\"";
    registry
        .gauge("sefi_campaign_avf_estimate",
               "Running per-component AVF estimate of the campaign being "
               "served",
               label)
        .set(components_[i].avf);
    registry
        .gauge("sefi_campaign_avf_ci_half_width",
               "Finite-population-corrected CI half-width of the running "
               "AVF estimate",
               label)
        .set(components_[i].ci_half_width);
  }
}

obs::MetricsSnapshot ServeMonitor::merged_snapshot() const {
  std::map<std::uint64_t, obs::MetricsSnapshot> snaps;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    snaps = worker_snapshots_;
  }
  // SIGKILL fallback: pids that never shipped a pipe snapshot may still
  // have flushed a `<pid>.metrics` file after an earlier shard. Torn or
  // corrupt files fail the seal check and are quarantined as skipped.
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(workers_dir_, ec)) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".metrics";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string pid_str = name.substr(0, name.size() - suffix.size());
    if (pid_str.empty() ||
        pid_str.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    const std::uint64_t pid = std::stoull(pid_str);
    if (snaps.count(pid) != 0) continue;
    const std::optional<std::string> content =
        support::read_file(entry.path().string());
    obs::MetricsSnapshot snap;
    if (content && obs::decode_snapshot(*content, snap)) {
      snaps.emplace(pid, std::move(snap));
    } else {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++snapshots_skipped_;
    }
  }

  obs::MetricsSnapshot merged = obs::Registry::instance().snapshot();
  for (const auto& [pid, snap] : snaps) {
    obs::merge_snapshot(merged, snap, std::to_string(pid));
  }
  return merged;
}

std::string ServeMonitor::metrics_text() const {
  return obs::expose_text(merged_snapshot());
}

std::string ServeMonitor::status_json() const {
  // Worker liveness and respawn totals live in the coordinator's own
  // registry (the pool maintains them); read them out of a snapshot so
  // /status needs no extra bookkeeping hooks.
  const obs::MetricsSnapshot registry_snap =
      obs::Registry::instance().snapshot();
  double workers_up = 0;
  double respawned = 0;
  for (const obs::MetricsSnapshot::Family& family : registry_snap.families) {
    if (family.name == "sefi_serve_worker_up") {
      for (const obs::MetricsSnapshot::Series& series : family.series) {
        workers_up += series.gauge;
      }
    } else if (family.name == "sefi_serve_workers_respawned_total") {
      for (const obs::MetricsSnapshot::Series& series : family.series) {
        respawned += static_cast<double>(series.counter);
      }
    }
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t now_ms = epoch_ms();
  std::string out = "{";
  out += "\"healthy\":true,";
  out += "\"pool\":{\"workers\":" + std::to_string(pool_workers_) +
         ",\"lease_ms\":" + std::to_string(pool_lease_ms_) +
         ",\"respawn_budget\":" + std::to_string(pool_respawn_budget_) + "},";
  out += "\"fleet\":{\"workers_up\":" + json_number(workers_up) +
         ",\"workers_respawned\":" + json_number(respawned) +
         ",\"worker_snapshots\":" + std::to_string(worker_snapshots_.size()) +
         ",\"snapshots_folded\":" + std::to_string(snapshots_folded_) +
         ",\"snapshots_skipped\":" + std::to_string(snapshots_skipped_) + "},";

  out += "\"campaign\":";
  if (campaign_key_.empty()) {
    out += "null,";
  } else {
    std::uint64_t resolved = 0;
    for (const ComponentView& view : components_) {
      resolved += view.progress.classified;
    }
    std::uint64_t pending = 0, claimed = 0, done = 0, resumed = 0,
                  reclaims = 0;
    for (const ShardInfo& shard : shards_) {
      switch (shard.state) {
        case ShardState::kPending:
          ++pending;
          break;
        case ShardState::kClaimed:
          ++claimed;
          break;
        case ShardState::kDone:
          ++done;
          break;
        case ShardState::kResumed:
          ++resumed;
          break;
      }
      reclaims += shard.reclaims;
    }
    out += "{\"key\":" + json_string(campaign_key_) +
           ",\"workload\":" + json_string(campaign_workload_) +
           ",\"state\":" +
           json_string(campaign_done_
                           ? "done"
                           : (campaign_active_ ? "running" : "idle")) +
           ",\"faults_per_component\":" +
           std::to_string(faults_per_component_) +
           ",\"total_injections\":" +
           std::to_string(faults_per_component_ * microarch::kNumComponents) +
           ",\"resolved_injections\":" + std::to_string(resolved) +
           ",\"injections_per_sec\":" + json_number(injections_per_sec_) +
           ",\"eta_seconds\":" + json_number(eta_seconds_) + ",";
    out += "\"shards\":{\"total\":" + std::to_string(shards_.size()) +
           ",\"pending\":" + std::to_string(pending) +
           ",\"claimed\":" + std::to_string(claimed) +
           ",\"done\":" + std::to_string(done) +
           ",\"resumed\":" + std::to_string(resumed) +
           ",\"reclaims\":" + std::to_string(reclaims) + "},";
    out += "\"shard_states\":[";
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const ShardInfo& shard = shards_[i];
      if (i != 0) out += ",";
      const char* state = shard.state == ShardState::kPending   ? "pending"
                          : shard.state == ShardState::kClaimed ? "claimed"
                          : shard.state == ShardState::kDone    ? "done"
                                                                : "resumed";
      out += "{\"shard\":" + std::to_string(i) + ",\"state\":\"" + state +
             "\",\"worker\":" + std::to_string(shard.worker) +
             ",\"reclaims\":" + std::to_string(shard.reclaims);
      if (shard.state == ShardState::kClaimed && shard.claim_epoch_ms > 0 &&
          now_ms >= shard.claim_epoch_ms) {
        out += ",\"lease_age_ms\":" +
               std::to_string(now_ms - shard.claim_epoch_ms);
      }
      out += "}";
    }
    out += "],";
    out += "\"components\":[";
    for (std::size_t i = 0; i < microarch::kNumComponents; ++i) {
      const ComponentView& view = components_[i];
      const ComponentProgress& p = view.progress;
      if (i != 0) out += ",";
      out += "{\"component\":" +
             json_string(
                 microarch::component_name(microarch::kAllComponents[i])) +
             ",\"resolved\":" + std::to_string(p.classified) +
             ",\"sampled\":" + std::to_string(faults_per_component_) +
             ",\"avf\":" + json_number(view.avf) +
             ",\"ci_half_width\":" + json_number(view.ci_half_width) +
             ",\"error_margin\":" + json_number(view.error_margin) +
             ",\"counts\":{\"masked\":" + std::to_string(p.by_class[0]) +
             ",\"sdc\":" + std::to_string(p.by_class[1]) +
             ",\"app_crash\":" + std::to_string(p.by_class[2]) +
             ",\"sys_crash\":" + std::to_string(p.by_class[3]) +
             ",\"harness_error\":" + std::to_string(p.by_class[4]) +
             ",\"detected\":" + std::to_string(p.by_class[5]) + "}}";
    }
    out += "]},";
  }
  out += "\"campaigns_served\":" + std::to_string(campaigns_served_) + "}";
  return out;
}

// ---------------------------------------------------------------------------
// serve_fi_campaign
// ---------------------------------------------------------------------------

const fi::WorkloadFiResult& serve_fi_campaign(
    AssessmentLab& lab, const workloads::Workload& workload,
    const ServeConfig& config, ServeStats* stats) {
  support::require(lab.journaling_enabled(),
                   "serve_fi_campaign: needs SEFI_CACHE_DIR and journaling "
                   "(the journals are the shard transport)");
  static obs::Counter& merged_metric = obs::Registry::instance().counter(
      "sefi_serve_merged_records_total",
      "Shard-journal outcome records concatenated into campaign journals");

  ServeStats local_stats;
  ServeStats& out = stats != nullptr ? *stats : local_stats;
  out = ServeStats{};

  const std::string key = ResultCache::make_key(
      "fi", fingerprint(lab.config().fi), workload.info().name);
  if (const fi::WorkloadFiResult* cached = lab.cache().load_fi(key)) {
    return *cached;
  }

  const std::string dir = lab.cache().directory();
  const std::string lease_path = dir + "/" + key + ".leases.journal";
  const std::string lease_header = "lease " + key;
  const std::string workers_dir = config.monitor != nullptr
                                      ? config.monitor->workers_dir()
                                      : dir + "/serve/workers";
  {
    std::error_code ec;
    std::filesystem::create_directories(workers_dir, ec);
  }

  const std::uint64_t faults_per_component =
      lab.config().fi.faults_per_component;
  const std::uint64_t total = faults_per_component * microarch::kNumComponents;
  const std::uint64_t workers = std::max<std::uint64_t>(config.workers, 1);
  const std::uint64_t shard_count = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(
             total, workers * std::max<std::uint64_t>(
                                  config.shards_per_worker, 1)));
  out.shards = shard_count;
  const auto shard_begin = [&](std::size_t shard) {
    return shard * total / shard_count;
  };

  if (config.monitor != nullptr) {
    config.monitor->begin_campaign(key, workload.info().name,
                                   faults_per_component, shard_count,
                                   lab.config().fi.confidence);
  }

  // Mid-flight convergence: decode every shard journal on disk into
  // per-component outcome tallies. Cheap at serve shard sizes, and
  // reading the journals (not executor internals) means resumed and
  // reclaimed work is counted exactly once.
  const auto refresh_convergence = [&] {
    if (config.monitor == nullptr) return;
    std::array<ServeMonitor::ComponentProgress, microarch::kNumComponents>
        progress{};
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      const support::TaskJournal::Status on_disk =
          support::TaskJournal::inspect(shard_journal_path(dir, key, shard));
      if (!on_disk.present ||
          on_disk.header != shard_journal_header(key, shard)) {
        continue;
      }
      for (const auto& [index, payload] : on_disk.entries) {
        if (index == fi::kJournalTelemetryIndex) continue;
        fi::Outcome outcome;
        if (!fi::parse_journal_outcome(payload, &outcome)) continue;
        const std::size_t component =
            faults_per_component == 0
                ? microarch::kNumComponents
                : static_cast<std::size_t>(index / faults_per_component);
        if (component >= microarch::kNumComponents) continue;
        ServeMonitor::ComponentProgress& p = progress[component];
        ++p.attempted;
        const auto digit = static_cast<std::size_t>(outcome);
        if (digit < p.by_class.size()) ++p.by_class[digit];
        if (outcome != fi::Outcome::kHarnessError) {
          ++p.classified;
          if (outcome != fi::Outcome::kMasked) ++p.faulty;
        }
      }
    }
    config.monitor->update_convergence(progress);
  };

  // Coordinator resume: a shard whose lease journal says "done" and
  // whose shard journal is still intact needs no re-execution — its
  // outcome records merge below exactly as if it just finished.
  std::vector<std::size_t> todo;
  {
    const support::TaskJournal::Status leases =
        support::TaskJournal::inspect(lease_path);
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      bool resumed = false;
      if (leases.present && leases.header == lease_header) {
        const auto it = leases.entries.find(shard);
        if (it != leases.entries.end() &&
            it->second.rfind("done ", 0) == 0) {
          const support::TaskJournal::Status on_disk =
              support::TaskJournal::inspect(shard_journal_path(dir, key, shard));
          resumed = on_disk.present &&
                    on_disk.header == shard_journal_header(key, shard);
        }
      }
      if (resumed) {
        ++out.shards_resumed;
        if (config.monitor != nullptr) config.monitor->note_resumed(shard);
      } else {
        todo.push_back(shard);
      }
    }
  }

  if (!todo.empty()) {
    support::TaskJournal leases(lease_path, lease_header);

    exec::ProcPoolConfig pool;
    pool.workers = static_cast<std::size_t>(workers);
    pool.lease_ms = config.lease_ms;
    pool.on_assign = [&](std::size_t index, std::size_t worker) {
      leases.record(todo[index], "claim " + std::to_string(worker) + " " +
                                     std::to_string(epoch_ms() +
                                                    config.lease_ms));
      if (config.monitor != nullptr) {
        config.monitor->note_assign(todo[index], worker);
      }
    };
    pool.on_done = [&](std::size_t index, std::size_t worker) {
      leases.record(todo[index], "done " + std::to_string(worker));
      if (config.monitor != nullptr) {
        config.monitor->note_done(todo[index], worker);
      }
    };
    pool.on_reclaim = [&](std::size_t index, std::size_t worker) {
      leases.record(todo[index], "reclaim " + std::to_string(worker));
      if (config.monitor != nullptr) {
        config.monitor->note_reclaim(todo[index], worker);
      }
    };

    // Each worker resets its inherited registry (its snapshots must
    // carry only its own work — the coordinator's numbers are folded
    // separately) and re-points the global forensics/trace files to
    // pid-suffixed paths so N workers stop overwriting one another.
    pool.child_init = [] {
      obs::Registry::instance().reset();
      const std::uint64_t pid = static_cast<std::uint64_t>(::getpid());
      if (obs::ForensicsSink* sink = obs::ForensicsSink::global()) {
        obs::ForensicsSink::reopen_global(pid_suffixed(sink->path(), pid));
      }
      obs::Tracer& tracer = obs::Tracer::instance();
      if (tracer.enabled()) {
        tracer.reset();  // drop the parent's buffered spans (it keeps its own)
        tracer.enable(pid_suffixed(tracer.path(), pid));
      }
    };
    pool.worker_snapshot = [&workers_dir]() -> std::string {
      if (!obs::Registry::instance().enabled()) return std::string();
      obs::Tracer& tracer = obs::Tracer::instance();
      if (tracer.enabled()) (void)tracer.flush();
      const std::string payload =
          obs::encode_snapshot(obs::Registry::instance().snapshot());
      (void)support::write_file_atomic(
          workers_dir + "/" + std::to_string(::getpid()) + ".metrics",
          payload);
      return payload;
    };
    pool.on_snapshot = [&](std::size_t, std::uint64_t pid,
                           const std::string& payload) {
      if (config.monitor != nullptr) {
        config.monitor->fold_worker_snapshot(pid, payload);
      }
    };
    if (config.monitor != nullptr || config.on_tick) {
      auto next_refresh = std::chrono::steady_clock::now();
      pool.on_tick = [&, next_refresh]() mutable {
        const auto now = std::chrono::steady_clock::now();
        if (config.monitor != nullptr && now >= next_refresh) {
          next_refresh =
              now + std::chrono::milliseconds(std::max<std::uint64_t>(
                        config.monitor_refresh_ms, 50));
          refresh_convergence();
        }
        if (config.on_tick) config.on_tick();
      };
    }

    // Worker-side state: the rig (golden run + checkpoint ladder) is
    // built once per worker process and reused across every shard the
    // worker is leased — each child gets its own copy-on-write slot.
    std::optional<fi::InjectionRig> rig_slot;
    const auto run_shard = [&](std::size_t index) {
      const std::size_t shard = todo[index];
      if (!config.self_kill_marker.empty()) {
        // Deterministic kill hook: exactly one worker (the O_EXCL
        // winner) dies here, before contributing anything, so tests and
        // CI can assert the lease-reclaim path end to end.
        const int fd = ::open(config.self_kill_marker.c_str(),
                              O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
        if (fd >= 0) {
          ::close(fd);
          ::kill(::getpid(), SIGKILL);
        }
      }
      fi::CampaignConfig campaign = lab.config().fi;
      if (!rig_slot.has_value()) {
        rig_slot.emplace(workload, campaign.rig, campaign.input_seed,
                         campaign.checkpoints,
                         /*record_liveness=*/campaign.prune !=
                             fi::PruneMode::kOff);
      }
      campaign.cancel = nullptr;
      campaign.task_fault_hook = nullptr;
      campaign.range_begin = shard_begin(shard);
      campaign.range_end = shard_begin(shard + 1);
      // One executor thread per worker process: parallelism comes from
      // the process pool, not from oversubscribed threads inside it.
      campaign.threads = 1;
      support::TaskJournal shard_journal(shard_journal_path(dir, key, shard),
                                         shard_journal_header(key, shard));
      campaign.journal = &shard_journal;
      (void)fi::run_fi_campaign(*rig_slot, campaign);
      // Counted inside the worker: the merged fleet view's sum across
      // workers must equal the coordinator's own shards-done counter
      // (the CI smoke asserts exactly that).
      static obs::Counter& worker_done_metric =
          obs::Registry::instance().counter(
              "sefi_serve_worker_shards_done_total",
              "Shards completed, counted inside the worker process that ran "
              "them");
      worker_done_metric.add();
    };

    const exec::ProcPoolReport report =
        exec::run_process_pool(pool, todo.size(), run_shard);
    out.shards_done = report.shards_done;
    out.leases_reclaimed = report.leases_reclaimed;
    out.lease_expiries = report.lease_expiries;
    out.worker_deaths = report.worker_deaths;
    out.workers_respawned = report.workers_respawned;
    if (!report.completed) {
      throw support::SefiError(
          "serve_fi_campaign: worker pool did not finish: " +
          (report.first_error.empty() ? std::string("unknown failure")
                                      : report.first_error));
    }
  }
  out.shards_done += out.shards_resumed;
  refresh_convergence();  // the 100%-resolved view, before journals merge

  // Merge by journal concatenation: append every shard's outcome
  // records into the campaign's standard resume journal, then let the
  // ordinary run_fi journal-replay path do the fault-index-ordered
  // merge. This reuses the replay machinery proven bit-identical for
  // interrupted single-process campaigns, so any worker count (and any
  // kill/reclaim history) converges to the same ClassCounts.
  {
    support::TaskJournal main_journal(dir + "/" + key + ".journal",
                                      "fi " + key);
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      const support::TaskJournal::Status on_disk =
          support::TaskJournal::inspect(shard_journal_path(dir, key, shard));
      if (!on_disk.present ||
          on_disk.header != shard_journal_header(key, shard)) {
        continue;
      }
      for (const auto& [index, payload] : on_disk.entries) {
        if (index == fi::kJournalTelemetryIndex) continue;
        main_journal.record(index, payload);
        ++out.merged_records;
      }
    }
  }
  merged_metric.add(out.merged_records);

  // The journal-replay merge run. Any index a shard failed to journal
  // (none, on a completed pool) would simply execute here — the merge
  // is self-healing, never silently short.
  const fi::WorkloadFiResult& result = lab.run_fi(workload);

  if (config.monitor != nullptr) config.monitor->finish_campaign(result);

  // One artifact per campaign, not one per worker: concatenate the
  // per-pid forensics JSONLs into the coordinator's file and fold the
  // per-pid Chrome traces into `<trace>.workers.json`.
  concat_worker_forensics();
  combine_worker_traces();

  // The campaign is cached; the shard transport has served its purpose.
  std::error_code ec;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    std::filesystem::remove(shard_journal_path(dir, key, shard), ec);
  }
  std::filesystem::remove(lease_path, ec);
  return result;
}

}  // namespace sefi::core
