#include "sefi/core/service.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <vector>

#include "sefi/obs/metrics.hpp"
#include "sefi/support/error.hpp"
#include "sefi/support/journal.hpp"
#include "sefi/exec/procpool.hpp"

namespace sefi::core {

namespace {

std::string shard_journal_path(const std::string& dir, const std::string& key,
                               std::size_t shard) {
  return dir + "/" + key + ".shard" + std::to_string(shard) + ".journal";
}

std::string shard_journal_header(const std::string& key, std::size_t shard) {
  return "fi " + key + " shard " + std::to_string(shard);
}

/// Wall-clock epoch milliseconds, journaled with each lease claim so an
/// outside observer (or a restarted coordinator) can tell an expired
/// lease from a live one.
std::uint64_t epoch_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const fi::WorkloadFiResult& serve_fi_campaign(
    AssessmentLab& lab, const workloads::Workload& workload,
    const ServeConfig& config, ServeStats* stats) {
  support::require(lab.journaling_enabled(),
                   "serve_fi_campaign: needs SEFI_CACHE_DIR and journaling "
                   "(the journals are the shard transport)");
  static obs::Counter& merged_metric = obs::Registry::instance().counter(
      "sefi_serve_merged_records_total",
      "Shard-journal outcome records concatenated into campaign journals");

  ServeStats local_stats;
  ServeStats& out = stats != nullptr ? *stats : local_stats;
  out = ServeStats{};

  const std::string key = ResultCache::make_key(
      "fi", fingerprint(lab.config().fi), workload.info().name);
  if (const fi::WorkloadFiResult* cached = lab.cache().load_fi(key)) {
    return *cached;
  }

  const std::string dir = lab.cache().directory();
  const std::string lease_path = dir + "/" + key + ".leases.journal";
  const std::string lease_header = "lease " + key;

  const std::uint64_t total =
      lab.config().fi.faults_per_component * microarch::kNumComponents;
  const std::uint64_t workers = std::max<std::uint64_t>(config.workers, 1);
  const std::uint64_t shard_count = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(
             total, workers * std::max<std::uint64_t>(
                                  config.shards_per_worker, 1)));
  out.shards = shard_count;
  const auto shard_begin = [&](std::size_t shard) {
    return shard * total / shard_count;
  };

  // Coordinator resume: a shard whose lease journal says "done" and
  // whose shard journal is still intact needs no re-execution — its
  // outcome records merge below exactly as if it just finished.
  std::vector<std::size_t> todo;
  {
    const support::TaskJournal::Status leases =
        support::TaskJournal::inspect(lease_path);
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      bool resumed = false;
      if (leases.present && leases.header == lease_header) {
        const auto it = leases.entries.find(shard);
        if (it != leases.entries.end() &&
            it->second.rfind("done ", 0) == 0) {
          const support::TaskJournal::Status on_disk =
              support::TaskJournal::inspect(shard_journal_path(dir, key, shard));
          resumed = on_disk.present &&
                    on_disk.header == shard_journal_header(key, shard);
        }
      }
      if (resumed) {
        ++out.shards_resumed;
      } else {
        todo.push_back(shard);
      }
    }
  }

  if (!todo.empty()) {
    support::TaskJournal leases(lease_path, lease_header);

    exec::ProcPoolConfig pool;
    pool.workers = static_cast<std::size_t>(workers);
    pool.lease_ms = config.lease_ms;
    pool.on_assign = [&](std::size_t index, std::size_t worker) {
      leases.record(todo[index], "claim " + std::to_string(worker) + " " +
                                     std::to_string(epoch_ms() +
                                                    config.lease_ms));
    };
    pool.on_done = [&](std::size_t index, std::size_t worker) {
      leases.record(todo[index], "done " + std::to_string(worker));
    };
    pool.on_reclaim = [&](std::size_t index, std::size_t worker) {
      leases.record(todo[index], "reclaim " + std::to_string(worker));
    };

    // Worker-side state: the rig (golden run + checkpoint ladder) is
    // built once per worker process and reused across every shard the
    // worker is leased — each child gets its own copy-on-write slot.
    std::optional<fi::InjectionRig> rig_slot;
    const auto run_shard = [&](std::size_t index) {
      const std::size_t shard = todo[index];
      if (!config.self_kill_marker.empty()) {
        // Deterministic kill hook: exactly one worker (the O_EXCL
        // winner) dies here, before contributing anything, so tests and
        // CI can assert the lease-reclaim path end to end.
        const int fd = ::open(config.self_kill_marker.c_str(),
                              O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
        if (fd >= 0) {
          ::close(fd);
          ::kill(::getpid(), SIGKILL);
        }
      }
      fi::CampaignConfig campaign = lab.config().fi;
      if (!rig_slot.has_value()) {
        rig_slot.emplace(workload, campaign.rig, campaign.input_seed,
                         campaign.checkpoints,
                         /*record_liveness=*/campaign.prune !=
                             fi::PruneMode::kOff);
      }
      campaign.cancel = nullptr;
      campaign.task_fault_hook = nullptr;
      campaign.range_begin = shard_begin(shard);
      campaign.range_end = shard_begin(shard + 1);
      // One executor thread per worker process: parallelism comes from
      // the process pool, not from oversubscribed threads inside it.
      campaign.threads = 1;
      support::TaskJournal shard_journal(shard_journal_path(dir, key, shard),
                                         shard_journal_header(key, shard));
      campaign.journal = &shard_journal;
      (void)fi::run_fi_campaign(*rig_slot, campaign);
    };

    const exec::ProcPoolReport report =
        exec::run_process_pool(pool, todo.size(), run_shard);
    out.shards_done = report.shards_done;
    out.leases_reclaimed = report.leases_reclaimed;
    out.lease_expiries = report.lease_expiries;
    out.worker_deaths = report.worker_deaths;
    out.workers_respawned = report.workers_respawned;
    if (!report.completed) {
      throw support::SefiError(
          "serve_fi_campaign: worker pool did not finish: " +
          (report.first_error.empty() ? std::string("unknown failure")
                                      : report.first_error));
    }
  }
  out.shards_done += out.shards_resumed;

  // Merge by journal concatenation: append every shard's outcome
  // records into the campaign's standard resume journal, then let the
  // ordinary run_fi journal-replay path do the fault-index-ordered
  // merge. This reuses the replay machinery proven bit-identical for
  // interrupted single-process campaigns, so any worker count (and any
  // kill/reclaim history) converges to the same ClassCounts.
  {
    support::TaskJournal main_journal(dir + "/" + key + ".journal",
                                      "fi " + key);
    for (std::size_t shard = 0; shard < shard_count; ++shard) {
      const support::TaskJournal::Status on_disk =
          support::TaskJournal::inspect(shard_journal_path(dir, key, shard));
      if (!on_disk.present ||
          on_disk.header != shard_journal_header(key, shard)) {
        continue;
      }
      for (const auto& [index, payload] : on_disk.entries) {
        if (index == fi::kJournalTelemetryIndex) continue;
        main_journal.record(index, payload);
        ++out.merged_records;
      }
    }
  }
  merged_metric.add(out.merged_records);

  // The journal-replay merge run. Any index a shard failed to journal
  // (none, on a completed pool) would simply execute here — the merge
  // is self-healing, never silently short.
  const fi::WorkloadFiResult& result = lab.run_fi(workload);

  // The campaign is cached; the shard transport has served its purpose.
  std::error_code ec;
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    std::filesystem::remove(shard_journal_path(dir, key, shard), ec);
  }
  std::filesystem::remove(lease_path, ec);
  return result;
}

}  // namespace sefi::core
