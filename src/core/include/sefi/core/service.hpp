// Campaign-as-a-service: multi-process FI campaign scale-out.
//
// serve_fi_campaign runs one workload's FI campaign sharded across N
// worker *processes* (DESIGN.md §14). The division of labor:
//
//   - the fault-index space [0, faults) is cut into contiguous shards;
//   - an exec::run_process_pool coordinator leases shards to forked
//     workers with work-stealing; every lease event (claim / done /
//     reclaim) is journaled per shard in the existing TaskJournal
//     format (`<key>.leases.journal`), so a SIGKILL'd worker's shard is
//     observable and a killed *coordinator* resumes past finished
//     shards;
//   - each worker executes its shard through the ordinary
//     run_fi_campaign with config.range_begin/range_end set and a
//     per-shard resume journal (`<key>.shard<s>.journal`) — a worker
//     killed mid-shard loses only in-flight injections;
//   - the coordinator merges by *journal concatenation*: every shard
//     journal's outcome records are appended into the campaign's
//     standard resume journal, and the normal AssessmentLab::run_fi
//     journal-replay path performs the final merge in fault-index
//     order. Merged ClassCounts are therefore bit-identical to a
//     single-process run at any worker count, by construction of the
//     replay path (and enforced by test and CI smoke).
//
// Requires an enabled disk cache with journaling (the journals are the
// transport); throws SefiError otherwise.
#pragma once

#include <cstdint>
#include <string>

#include "sefi/core/lab.hpp"

namespace sefi::core {

struct ServeConfig {
  /// Worker processes (SEFI_WORKERS; clamped to >= 1).
  std::size_t workers = 4;
  /// Wall-clock lease per shard assignment, ms (SEFI_LEASE_MS); a
  /// worker holding a shard longer is SIGKILL'd and the shard
  /// reassigned. 0 = no expiry (worker death still reclaims).
  std::uint64_t lease_ms = 120'000;
  /// Shard granularity: ~shards_per_worker shards per worker, so
  /// work-stealing has slack without shrinking shards into pure
  /// golden-run overhead.
  std::uint64_t shards_per_worker = 4;
  /// Test/CI hook: when non-empty, the first worker process to create
  /// this marker file (O_EXCL — exactly one winner) SIGKILLs itself
  /// before running its shard, exercising the lease-reclaim path
  /// deterministically. Wired to SEFI_SERVE_SELF_KILL by the CLI.
  std::string self_kill_marker;
};

/// What the coordinator did (campaign stats live in the result itself).
struct ServeStats {
  std::uint64_t shards = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t shards_resumed = 0;     ///< skipped via lease journal
  std::uint64_t leases_reclaimed = 0;   ///< worker deaths + expiries
  std::uint64_t lease_expiries = 0;     ///< coordinator-initiated kills
  std::uint64_t worker_deaths = 0;
  std::uint64_t workers_respawned = 0;
  std::uint64_t merged_records = 0;     ///< outcome records concatenated
};

/// Runs the workload's FI campaign under `lab`'s configuration across
/// `config.workers` processes and returns the merged (cached) result —
/// bit-identical to lab.run_fi(workload) in a single process. `stats`
/// (nullable) receives the coordinator's report.
const fi::WorkloadFiResult& serve_fi_campaign(AssessmentLab& lab,
                                              const workloads::Workload& workload,
                                              const ServeConfig& config,
                                              ServeStats* stats = nullptr);

}  // namespace sefi::core
