// Campaign-as-a-service: multi-process FI campaign scale-out.
//
// serve_fi_campaign runs one workload's FI campaign sharded across N
// worker *processes* (DESIGN.md §14). The division of labor:
//
//   - the fault-index space [0, faults) is cut into contiguous shards;
//   - an exec::run_process_pool coordinator leases shards to forked
//     workers with work-stealing; every lease event (claim / done /
//     reclaim) is journaled per shard in the existing TaskJournal
//     format (`<key>.leases.journal`), so a SIGKILL'd worker's shard is
//     observable and a killed *coordinator* resumes past finished
//     shards;
//   - each worker executes its shard through the ordinary
//     run_fi_campaign with config.range_begin/range_end set and a
//     per-shard resume journal (`<key>.shard<s>.journal`) — a worker
//     killed mid-shard loses only in-flight injections;
//   - the coordinator merges by *journal concatenation*: every shard
//     journal's outcome records are appended into the campaign's
//     standard resume journal, and the normal AssessmentLab::run_fi
//     journal-replay path performs the final merge in fault-index
//     order. Merged ClassCounts are therefore bit-identical to a
//     single-process run at any worker count, by construction of the
//     replay path (and enforced by test and CI smoke).
//
// Requires an enabled disk cache with journaling (the journals are the
// transport); throws SefiError otherwise.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sefi/core/lab.hpp"
#include "sefi/obs/snapshot.hpp"

namespace sefi::core {

/// Fleet-wide observability for the serve coordinator (DESIGN.md §16).
///
/// The monitor owns three views the HTTP plane (and `obs dump
/// --merged`) serves:
///
///   1. *Merged metrics.* Workers ship registry snapshots over the
///      pool's reply pipe after every shard and at exit; each also
///      lands as `<workers_dir>/<pid>.metrics` so a SIGKILL'd worker's
///      last flush survives. merged_snapshot() folds the coordinator's
///      own registry with the freshest per-pid snapshot (pipe first,
///      file fallback) — counters sum, histograms bucket-add, gauges
///      stand per-source — so a fleet scrape reads like one process.
///   2. *Campaign status.* Shard dispositions with lease ages, worker
///      up/down and respawn budgets, throughput and ETA.
///   3. *Convergence.* A running per-component AVF estimate with the
///      finite-population-corrected CI from sefi/stats/estimator,
///      updated as shard journals fill; once the campaign merges, the
///      final estimator (the paper's re-adjusted margin) replaces the
///      running one, so /status converges to exactly what the cached
///      result reports.
///
/// All methods are thread-safe; the serve CLI drives everything from
/// the coordinator thread, tests and the bench may not.
class ServeMonitor {
 public:
  /// `workers_dir` is where workers drop `<pid>.metrics` fallback
  /// files (created on demand).
  explicit ServeMonitor(std::string workers_dir);

  const std::string& workers_dir() const { return workers_dir_; }

  /// Pool shape, for /status (set once by the serve loop).
  void set_pool_info(std::uint64_t workers, std::uint64_t lease_ms,
                     std::uint64_t respawn_budget);

  // -- campaign lifecycle (driven by serve_fi_campaign) ------------------
  void begin_campaign(const std::string& key, const std::string& workload,
                      std::uint64_t faults_per_component,
                      std::uint64_t shard_count, double confidence);
  void note_resumed(std::size_t shard);
  void note_assign(std::size_t shard, std::size_t worker);
  void note_done(std::size_t shard, std::size_t worker);
  void note_reclaim(std::size_t shard, std::size_t worker);

  /// Folds one worker's encoded registry snapshot (keyed by pid — a
  /// respawned slot never clobbers its predecessor's last words).
  /// Corrupt payloads are counted and skipped, never merged.
  void fold_worker_snapshot(std::uint64_t pid, const std::string& payload);

  /// Mid-flight per-component tallies decoded from the shard journals.
  struct ComponentProgress {
    std::uint64_t attempted = 0;   ///< journal records seen (all classes)
    std::uint64_t classified = 0;  ///< attempted minus harness errors
    std::uint64_t faulty = 0;      ///< classified and not Masked
    std::array<std::uint64_t, 6> by_class{};  ///< per Outcome digit
  };
  void update_convergence(
      const std::array<ComponentProgress, microarch::kNumComponents>&
          progress);

  /// The merged campaign result is in: pin the per-component AVF and
  /// error margin to the final estimator values.
  void finish_campaign(const fi::WorkloadFiResult& result);

  void note_campaign_served();

  // -- serving side ------------------------------------------------------
  /// Coordinator registry + every worker snapshot, merged.
  obs::MetricsSnapshot merged_snapshot() const;
  /// Prometheus exposition of merged_snapshot().
  std::string metrics_text() const;
  /// The /status JSON document.
  std::string status_json() const;

 private:
  enum class ShardState { kPending, kClaimed, kDone, kResumed };
  struct ShardInfo {
    ShardState state = ShardState::kPending;
    std::size_t worker = 0;
    std::uint64_t claim_epoch_ms = 0;
    std::uint64_t reclaims = 0;
  };
  struct ComponentView {
    ComponentProgress progress;
    double avf = 0;
    double ci_half_width = 0;   ///< FPC CI while running; 0 once exact
    double error_margin = 0;    ///< final re-adjusted margin (post-merge)
  };

  void refresh_gauges_locked();

  mutable std::mutex mutex_;
  std::string workers_dir_;
  std::uint64_t pool_workers_ = 0;
  std::uint64_t pool_lease_ms_ = 0;
  std::uint64_t pool_respawn_budget_ = 0;

  bool campaign_active_ = false;
  bool campaign_done_ = false;
  std::string campaign_key_;
  std::string campaign_workload_;
  std::uint64_t faults_per_component_ = 0;
  double confidence_ = 0.99;
  std::vector<ShardInfo> shards_;
  std::array<ComponentView, microarch::kNumComponents> components_{};
  std::uint64_t campaigns_served_ = 0;

  // Throughput baseline: first convergence sample after begin_campaign.
  bool have_rate_baseline_ = false;
  std::uint64_t baseline_resolved_ = 0;
  std::chrono::steady_clock::time_point baseline_time_{};
  double injections_per_sec_ = 0;
  double eta_seconds_ = 0;

  std::map<std::uint64_t, obs::MetricsSnapshot> worker_snapshots_;
  std::uint64_t snapshots_folded_ = 0;
  // mutable: merged_snapshot() is const but quarantines torn fallback
  // files it happens to read.
  mutable std::uint64_t snapshots_skipped_ = 0;
};

struct ServeConfig {
  /// Worker processes (SEFI_WORKERS; clamped to >= 1).
  std::size_t workers = 4;
  /// Wall-clock lease per shard assignment, ms (SEFI_LEASE_MS); a
  /// worker holding a shard longer is SIGKILL'd and the shard
  /// reassigned. 0 = no expiry (worker death still reclaims).
  std::uint64_t lease_ms = 120'000;
  /// Shard granularity: ~shards_per_worker shards per worker, so
  /// work-stealing has slack without shrinking shards into pure
  /// golden-run overhead.
  std::uint64_t shards_per_worker = 4;
  /// Test/CI hook: when non-empty, the first worker process to create
  /// this marker file (O_EXCL — exactly one winner) SIGKILLs itself
  /// before running its shard, exercising the lease-reclaim path
  /// deterministically. Wired to SEFI_SERVE_SELF_KILL by the CLI.
  std::string self_kill_marker;
  /// Observability plane (nullable). When set, the coordinator reports
  /// shard dispositions, folds worker metric snapshots, and refreshes
  /// the convergence gauges from the shard journals as they fill.
  ServeMonitor* monitor = nullptr;
  /// Coordinator-loop hook, called at least every ~50 ms while the
  /// worker pool runs; the serve CLI services the HTTP plane here so
  /// /metrics answers mid-campaign. Nullable.
  std::function<void()> on_tick;
  /// Shard-journal convergence refresh cadence, ms (with a monitor).
  std::uint64_t monitor_refresh_ms = 500;
};

/// What the coordinator did (campaign stats live in the result itself).
struct ServeStats {
  std::uint64_t shards = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t shards_resumed = 0;     ///< skipped via lease journal
  std::uint64_t leases_reclaimed = 0;   ///< worker deaths + expiries
  std::uint64_t lease_expiries = 0;     ///< coordinator-initiated kills
  std::uint64_t worker_deaths = 0;
  std::uint64_t workers_respawned = 0;
  std::uint64_t merged_records = 0;     ///< outcome records concatenated
};

/// Runs the workload's FI campaign under `lab`'s configuration across
/// `config.workers` processes and returns the merged (cached) result —
/// bit-identical to lab.run_fi(workload) in a single process. `stats`
/// (nullable) receives the coordinator's report.
const fi::WorkloadFiResult& serve_fi_campaign(AssessmentLab& lab,
                                              const workloads::Workload& workload,
                                              const ServeConfig& config,
                                              ServeStats* stats = nullptr);

}  // namespace sefi::core
