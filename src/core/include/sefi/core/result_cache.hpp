// On-disk campaign result cache.
//
// Campaigns are deterministic functions of (configuration, workload,
// seeds), so their results can be cached and shared by the bench
// binaries — Figs. 3-10 all consume the same sweep, and each bench is a
// separate process. The cache is opt-in: set SEFI_CACHE_DIR to a
// directory to enable it (the bench suite does this in its run recipe).
//
// Entries are small human-readable text files keyed by a hash of the
// full campaign fingerprint (every parameter that affects the result,
// plus a format version), so stale entries can never be confused with
// current ones — change a knob and the key changes.
#pragma once

#include <optional>
#include <string>

#include "sefi/beam/session.hpp"
#include "sefi/fi/campaign.hpp"

namespace sefi::core {

// --- serialization (stable, line-oriented text) --------------------------

std::string serialize(const fi::WorkloadFiResult& result);
std::optional<fi::WorkloadFiResult> deserialize_fi(const std::string& text);

std::string serialize(const beam::BeamResult& result);
std::optional<beam::BeamResult> deserialize_beam(const std::string& text);

// --- fingerprinting --------------------------------------------------------

/// Hash of every parameter that affects an FI campaign's outcome.
std::uint64_t fingerprint(const fi::CampaignConfig& config);

/// Hash of every parameter that affects a beam session's outcome.
std::uint64_t fingerprint(const beam::BeamConfig& config);

// --- the cache ---------------------------------------------------------------

class ResultCache {
 public:
  /// `directory` empty disables the cache (all loads miss, stores no-op).
  explicit ResultCache(std::string directory);

  /// Reads SEFI_CACHE_DIR; unset/empty -> disabled cache.
  static ResultCache from_env();

  bool enabled() const { return !directory_.empty(); }

  std::optional<std::string> load(const std::string& key) const;
  void store(const std::string& key, const std::string& payload) const;

  /// Cache key for a campaign kind ("fi"/"beam"), fingerprint, workload.
  static std::string make_key(const std::string& kind,
                              std::uint64_t fingerprint,
                              const std::string& workload);

 private:
  std::string path_for(const std::string& key) const;
  std::string directory_;
};

}  // namespace sefi::core
