// Crash-safe concurrent campaign result cache.
//
// Campaigns are deterministic functions of (configuration, workload,
// seeds), so their results can be cached and shared by the bench
// binaries — Figs. 3-10 all consume the same sweep, and each bench is a
// separate process. The disk tier is opt-in: set SEFI_CACHE_DIR to a
// directory to enable it (the bench suite does this in its run recipe).
//
// Storage contract (format v5, DESIGN.md §9):
//   - entries are human-readable text files keyed by a hash of the full
//     campaign fingerprint (every parameter that affects the result,
//     plus a format version) — change a knob and the key changes;
//   - every entry carries a trailing FNV-1a checksum footer
//     (support::seal); an entry that fails verification is treated as a
//     miss, quarantined (renamed *.quarantined so it is never re-read),
//     and never parsed — a torn write can't corrupt downstream figures;
//   - writes go to a process-unique temp sibling and are published with
//     one atomic rename (support::write_file_atomic); concurrent
//     same-key writers resolve to last-rename-wins, and the read path
//     takes no file locks;
//   - entries are sharded across 256 subdirectories by the low byte of
//     the key's FNV-1a hash (`<dir>/<ab>/<key>.txt`), so thousands of
//     concurrent campaigns don't contend on one directory's dentry
//     lock; loads fall back to the pre-shard flat path transparently
//     and `gc` migrates flat entries into their shard;
//   - a typed in-process memo tier sits above the disk tier, so
//     repeated loads of the same key (Lab::compare_all re-reading beam
//     results, bench binaries sharing a lab) deserialize at most once
//     per process. The memo works even when the disk tier is disabled.
//
// All methods are safe to call from any number of threads.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sefi/beam/session.hpp"
#include "sefi/fi/campaign.hpp"

namespace sefi::core {

// --- serialization (stable, line-oriented text) --------------------------

std::string serialize(const fi::WorkloadFiResult& result);
std::optional<fi::WorkloadFiResult> deserialize_fi(const std::string& text);

std::string serialize(const beam::BeamResult& result);
std::optional<beam::BeamResult> deserialize_beam(const std::string& text);

// --- fingerprinting --------------------------------------------------------

/// Hash of every parameter that affects an FI campaign's outcome.
std::uint64_t fingerprint(const fi::CampaignConfig& config);

/// Hash of every parameter that affects a beam session's outcome.
std::uint64_t fingerprint(const beam::BeamConfig& config);

// --- the cache ---------------------------------------------------------------

class ResultCache {
 public:
  /// Counters for everything the cache did in this process. Snapshot
  /// semantics: telemetry() copies the live counters under the lock.
  struct Telemetry {
    std::uint64_t memo_hits = 0;   ///< served from the in-process tier
    std::uint64_t disk_hits = 0;   ///< read + checksum-verified from disk
    std::uint64_t misses = 0;      ///< no usable entry anywhere
    std::uint64_t stores = 0;      ///< entries atomically published
    std::uint64_t store_failures = 0;  ///< write/rename failed (counted,
                                       ///< temp dropped, nothing published)
    std::uint64_t corrupt_quarantined = 0;  ///< failed checksum/parse,
                                            ///< renamed *.quarantined
    std::uint64_t version_skew = 0;  ///< old-format entries skipped
    std::uint64_t stale_temps_swept = 0;  ///< orphaned atomic-write temps
                                          ///< removed by gc()
    std::uint64_t flat_migrated = 0;  ///< flat-layout entries moved into
                                      ///< their shard subdirectory by gc()
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;

    std::uint64_t hits() const { return memo_hits + disk_hits; }
  };

  /// One pass over the cache directory (verify()).
  struct ScanReport {
    std::uint64_t entries = 0;      ///< *.txt files examined
    std::uint64_t valid = 0;        ///< checksum + parseable version
    std::uint64_t corrupt = 0;      ///< failed checksum, current format
    std::uint64_t version_skew = 0; ///< older format version
    std::uint64_t quarantined = 0;  ///< *.quarantined files present
    std::uint64_t temp_files = 0;   ///< stale atomic-write temps
    std::uint64_t bytes = 0;        ///< total size of everything above
  };

  struct GcReport {
    std::uint64_t removed_files = 0;
    std::uint64_t bytes_reclaimed = 0;
    std::uint64_t temps_swept = 0;  ///< of removed_files, how many were
                                    ///< stale atomic-write temps
    std::uint64_t migrated = 0;     ///< valid flat-layout entries moved
                                    ///< into their shard subdirectory
  };

  /// `directory` empty disables the disk tier (stores no-op, loads only
  /// hit the in-process memo).
  explicit ResultCache(std::string directory);

  /// Reads SEFI_CACHE_DIR; unset/empty -> disabled disk tier.
  static ResultCache from_env();

  bool enabled() const { return !directory_.empty(); }
  const std::string& directory() const { return directory_; }

  /// Raw payload tier: load verifies + strips the checksum footer
  /// (quarantining bad entries), store seals + atomically publishes.
  /// store returns false when the disk write failed (disabled cache
  /// no-ops return true — nothing was supposed to be written).
  std::optional<std::string> load(const std::string& key) const;
  bool store(const std::string& key, const std::string& payload) const;

  /// Typed tier: memoized deserialized results. Returned pointers and
  /// references stay valid for the life of the cache object (entries
  /// are never evicted). load_* returns nullptr on miss; store_*
  /// memoizes, writes the disk tier, and returns the memoized entry.
  const fi::WorkloadFiResult* load_fi(const std::string& key) const;
  const fi::WorkloadFiResult& store_fi(const std::string& key,
                                       fi::WorkloadFiResult result) const;
  const beam::BeamResult* load_beam(const std::string& key) const;
  const beam::BeamResult& store_beam(const std::string& key,
                                     beam::BeamResult result) const;

  Telemetry telemetry() const;

  /// Scans every entry in the cache directory, checksum-verifying each.
  /// With `quarantine_bad`, corrupt entries are renamed *.quarantined
  /// so subsequent loads skip straight to a miss.
  ScanReport verify(bool quarantine_bad = false) const;

  /// Removes quarantined entries, entries that no longer verify
  /// (corrupt or written by an older format), and orphaned atomic-write
  /// temps older than the grace period (`SEFI_TEMP_GRACE_MS`, default
  /// 15 min — a live writer's temp exists only for milliseconds, so age
  /// is what distinguishes a crashed writer's orphan from an in-flight
  /// publish). Also migrates valid flat-layout entries into their shard
  /// subdirectory.
  GcReport gc() const;

  /// True when a verified-format entry file exists for `key` (sharded
  /// layout, or the pre-shard flat layout). Existence only — the
  /// payload is not checksummed.
  bool has_entry(const std::string& key) const;

  /// Canonical (sharded) on-disk path for `key`: the shard is the low
  /// byte of the key's FNV-1a hash, as two lowercase hex digits —
  /// `<dir>/<ab>/<key>.txt`. Loads fall back to the flat pre-shard path
  /// transparently; gc migrates flat entries here.
  std::string entry_path(const std::string& key) const;

  /// Cache key for a campaign kind ("fi"/"beam"), fingerprint, workload.
  /// The workload component is sanitized to [A-Za-z0-9_-] and length-
  /// capped, with a hash of the raw name appended, so arbitrary workload
  /// names can neither escape the cache directory nor collide.
  static std::string make_key(const std::string& kind,
                              std::uint64_t fingerprint,
                              const std::string& workload);

 private:
  struct State;  ///< memo maps + telemetry, behind one mutex

  std::string path_for(const std::string& key) const;
  std::string flat_path_for(const std::string& key) const;

  std::string directory_;
  std::shared_ptr<State> state_;
};

}  // namespace sefi::core
