// AssessmentLab — the paper's contribution as an API.
//
// The lab owns both assessment strategies over the same machine
// configuration, workloads, and inputs:
//
//   1. run_fi():   microarchitectural statistical fault injection
//                  (per-component AVFs, Fig. 4 / Table IV),
//   2. run_beam(): simulated accelerated-beam session
//                  (per-class FIT, Fig. 3),
//   3. fit_raw_per_bit(): the §VI calibration — beams the L1-pattern
//                  benchmark and extracts the raw per-bit FIT that
//                  anchors the AVF→FIT conversion,
//   4. compare():  FIT_component = FIT_raw * size * AVF per class
//                  (Fig. 5) and beam-vs-FI fold differences
//                  (Figs. 6-9), plus suite-level aggregates (Fig. 10).
//
// All campaigns are seeded and deterministic; results are cached per
// workload so bench binaries can share one lab instance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sefi/beam/session.hpp"
#include "sefi/core/result_cache.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/stats/fit.hpp"
#include "sefi/support/error.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::core {

/// Campaign microarchitecture: the paper's geometry scaled down by the
/// same factor as the workload inputs (DESIGN.md §2/§5).
///
/// The paper's phenomena are *utilization* effects — kernel state
/// surviving in idle cache space, inputs streaming through the hierarchy,
/// TLB entries staying live. MiBench inputs (3-26 MB) exercise 32 KB/
/// 512 KB caches the way our scaled inputs (KBs) exercise 8 KB/64 KB
/// ones, so campaigns default to the scaled geometry; the paper-sized
/// geometry (DetailedConfig defaults, Table II) remains available for
/// ablation.
microarch::DetailedConfig scaled_uarch();

struct LabConfig {
  fi::CampaignConfig fi;
  beam::BeamConfig beam;

  /// Crash-safe resume journals for interrupted campaigns (DESIGN.md
  /// §10). Journals live next to the cache entries, so they require the
  /// disk cache (SEFI_CACHE_DIR); with the cache disabled this flag is
  /// ignored. SEFI_JOURNAL=0 turns journaling off.
  bool journal_enabled = true;

  /// Reads campaign sizes from the environment (SEFI_FAULTS,
  /// SEFI_BEAM_RUNS, SEFI_SEED), the hardening mode (SEFI_HARDEN,
  /// applied to both setups), executor knobs (SEFI_THREADS,
  /// SEFI_CHECKPOINTS, SEFI_DELTA_RESTORE), and supervisor knobs
  /// (SEFI_MAX_TASK_RETRIES, SEFI_TASK_DEADLINE_MS, SEFI_JOURNAL),
  /// falling back to the given defaults — the bench binaries' knobs for
  /// quick vs. paper-scale campaigns. Installs the scaled
  /// microarchitecture in both setups. The executor and supervisor
  /// knobs never change results (see fi::CampaignConfig), only
  /// wall-clock and fault tolerance.
  static LabConfig from_env(std::uint64_t default_faults = 150,
                            std::uint64_t default_beam_runs = 600);
};

/// Thrown by run_fi / compare_all when a cooperative cancellation (the
/// SIGINT drain, or any CancellationToken wired into the campaign
/// configs) stopped a campaign before every experiment resolved.
/// Finished work is preserved — completed beam sessions are cached, and
/// with journaling enabled every finished injection is journaled — so
/// re-running the same command resumes instead of starting over. The
/// partial result itself is never cached or memoized.
class CampaignInterrupted : public support::SefiError {
 public:
  CampaignInterrupted(const std::string& message, std::uint64_t resolved,
                      std::uint64_t total)
      : support::SefiError(message), resolved_(resolved), total_(total) {}

  /// Tasks already resolved (journaled, cached, or replayed) when the
  /// campaign stopped.
  std::uint64_t resolved() const { return resolved_; }
  /// Tasks the campaign comprises in total.
  std::uint64_t total() const { return total_; }

 private:
  std::uint64_t resolved_ = 0;
  std::uint64_t total_ = 0;
};

/// Per-class FIT rates predicted from a fault-injection campaign via the
/// AVF→FIT conversion (paper §VI, Fig. 5).
struct FiFitRates {
  double sdc = 0;
  double app_crash = 0;
  double sys_crash = 0;
  /// Errors caught by a hardened workload's own detector (0 with
  /// SEFI_HARDEN=off) — reported, not silent, so listed apart from SDC.
  double detected = 0;
  double total() const { return sdc + app_crash + sys_crash + detected; }
};

/// Full beam-vs-FI comparison for one workload (Figs. 6-9 rows).
struct WorkloadComparison {
  std::string workload;
  beam::BeamResult beam;
  fi::WorkloadFiResult fi;
  FiFitRates fi_fit;

  stats::FoldDifference sdc_fold() const;
  stats::FoldDifference app_crash_fold() const;
  stats::FoldDifference sys_crash_fold() const;
  stats::FoldDifference sdc_plus_app_fold() const;  // Fig. 9
};

/// Suite-level averages (Fig. 10's bar pairs).
struct AggregateComparison {
  double beam_sdc = 0, beam_sdc_app = 0, beam_total = 0;
  double fi_sdc = 0, fi_sdc_app = 0, fi_total = 0;

  double sdc_gap() const;       ///< beam/fi for SDC-only FIT
  double sdc_app_gap() const;   ///< beam/fi when AppCrash is added
  double total_gap() const;     ///< beam/fi for the total FIT
};

class AssessmentLab {
 public:
  explicit AssessmentLab(LabConfig config);

  const LabConfig& config() const { return config_; }

  /// The measured raw FIT per bit (cached after the first call).
  double fit_raw_per_bit();

  /// Fault-injection campaign for one workload (cached).
  const fi::WorkloadFiResult& run_fi(const workloads::Workload& workload);

  /// Beam session for one workload (cached).
  const beam::BeamResult& run_beam(const workloads::Workload& workload);

  /// AVF→FIT conversion for a finished FI campaign.
  FiFitRates convert_to_fit(const fi::WorkloadFiResult& result);

  /// Both campaigns + conversion for one workload.
  WorkloadComparison compare(const workloads::Workload& workload);

  /// The paper's full 13-benchmark sweep. Uncached beam sessions fan
  /// out over config.beam.threads workers (sessions are independent);
  /// FI campaigns run one at a time because each already parallelizes
  /// internally over injections. Results match a serial sweep exactly.
  std::vector<WorkloadComparison> compare_all();

  /// Fig. 10 aggregates over a finished sweep.
  static AggregateComparison aggregate(
      const std::vector<WorkloadComparison>& sweep);

  /// The lab's result cache (in-process memo over the optional
  /// SEFI_CACHE_DIR disk tier). Campaign results returned by run_fi /
  /// run_beam live in its memo, so references stay valid for the lab's
  /// lifetime.
  const ResultCache& cache() const { return cache_; }

  /// Snapshot of what the cache did so far in this process — hits per
  /// tier, misses, stores, failures, quarantined entries, bytes moved.
  /// CLI and bench binaries report this after their sweeps.
  ResultCache::Telemetry cache_telemetry() const {
    return cache_.telemetry();
  }

  /// What the campaign supervisor did across every campaign this lab ran
  /// in this process (DESIGN.md §10). All-zero on a healthy, uncancelled,
  /// journal-less run.
  struct SupervisorTelemetry {
    std::uint64_t tasks_run = 0;         ///< tasks executed here
    std::uint64_t journal_replayed = 0;  ///< tasks restored from journals
    std::uint64_t retries = 0;
    std::uint64_t harness_errors = 0;
    std::uint64_t watchdog_hits = 0;
    std::uint64_t cancelled_tasks = 0;
  };
  SupervisorTelemetry supervisor_telemetry() const { return supervisor_; }

  /// True when campaigns run by this lab keep resume journals (the flag
  /// is on and the disk cache is enabled to hold them).
  bool journaling_enabled() const {
    return config_.journal_enabled && cache_.enabled();
  }

  /// Resume state of one workload's FI campaign (for status commands).
  struct JournalStatus {
    bool enabled = false;   ///< journaling active for this lab
    bool present = false;   ///< an intact journal for this campaign exists
    bool cached = false;    ///< the finished result is already cached
    std::uint64_t records = 0;  ///< injections the journal has resolved
    std::uint64_t total = 0;    ///< injections the campaign comprises
    std::string path;           ///< journal file location
    /// Outcome counts decoded from the journal's resolved injections —
    /// what a resume would merge without re-running anything.
    fi::ClassCounts resolved;
    /// Supervisor incidents recovered from the journal's telemetry
    /// record (fi::kJournalTelemetryIndex); valid when has_telemetry.
    /// A campaign that never retried writes no telemetry record.
    bool has_telemetry = false;
    fi::JournalTelemetry telemetry;
  };
  JournalStatus fi_journal_status(const workloads::Workload& workload) const;

  /// Deletes the workload's FI resume journal (campaign restarts from
  /// scratch). Returns true when a file was removed.
  bool discard_fi_journal(const workloads::Workload& workload) const;

 private:
  /// True when a beam result for the workload is already available in
  /// the cache (memo or disk); false when the session must be run.
  bool load_cached_beam(const workloads::Workload& workload);

  /// Journal file path for the workload's FI campaign under the current
  /// configuration (campaign identity is baked into the name, so a
  /// config change orphans the old journal instead of resuming from it).
  std::string fi_journal_path(const std::string& key) const;

  LabConfig config_;
  ResultCache cache_ = ResultCache::from_env();
  std::optional<double> fit_raw_;
  SupervisorTelemetry supervisor_;
};

}  // namespace sefi::core
