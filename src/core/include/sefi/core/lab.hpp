// AssessmentLab — the paper's contribution as an API.
//
// The lab owns both assessment strategies over the same machine
// configuration, workloads, and inputs:
//
//   1. run_fi():   microarchitectural statistical fault injection
//                  (per-component AVFs, Fig. 4 / Table IV),
//   2. run_beam(): simulated accelerated-beam session
//                  (per-class FIT, Fig. 3),
//   3. fit_raw_per_bit(): the §VI calibration — beams the L1-pattern
//                  benchmark and extracts the raw per-bit FIT that
//                  anchors the AVF→FIT conversion,
//   4. compare():  FIT_component = FIT_raw * size * AVF per class
//                  (Fig. 5) and beam-vs-FI fold differences
//                  (Figs. 6-9), plus suite-level aggregates (Fig. 10).
//
// All campaigns are seeded and deterministic; results are cached per
// workload so bench binaries can share one lab instance.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sefi/beam/session.hpp"
#include "sefi/core/result_cache.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/stats/fit.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::core {

/// Campaign microarchitecture: the paper's geometry scaled down by the
/// same factor as the workload inputs (DESIGN.md §2/§5).
///
/// The paper's phenomena are *utilization* effects — kernel state
/// surviving in idle cache space, inputs streaming through the hierarchy,
/// TLB entries staying live. MiBench inputs (3-26 MB) exercise 32 KB/
/// 512 KB caches the way our scaled inputs (KBs) exercise 8 KB/64 KB
/// ones, so campaigns default to the scaled geometry; the paper-sized
/// geometry (DetailedConfig defaults, Table II) remains available for
/// ablation.
microarch::DetailedConfig scaled_uarch();

struct LabConfig {
  fi::CampaignConfig fi;
  beam::BeamConfig beam;

  /// Reads campaign sizes from the environment (SEFI_FAULTS,
  /// SEFI_BEAM_RUNS, SEFI_SEED) and executor knobs (SEFI_THREADS,
  /// SEFI_CHECKPOINTS, SEFI_DELTA_RESTORE), falling back to the given
  /// defaults — the bench binaries' knobs for quick vs. paper-scale
  /// campaigns. Installs the scaled microarchitecture in both setups.
  /// The executor knobs never change results (see fi::CampaignConfig),
  /// only wall-clock.
  static LabConfig from_env(std::uint64_t default_faults = 150,
                            std::uint64_t default_beam_runs = 600);
};

/// Per-class FIT rates predicted from a fault-injection campaign via the
/// AVF→FIT conversion (paper §VI, Fig. 5).
struct FiFitRates {
  double sdc = 0;
  double app_crash = 0;
  double sys_crash = 0;
  double total() const { return sdc + app_crash + sys_crash; }
};

/// Full beam-vs-FI comparison for one workload (Figs. 6-9 rows).
struct WorkloadComparison {
  std::string workload;
  beam::BeamResult beam;
  fi::WorkloadFiResult fi;
  FiFitRates fi_fit;

  stats::FoldDifference sdc_fold() const;
  stats::FoldDifference app_crash_fold() const;
  stats::FoldDifference sys_crash_fold() const;
  stats::FoldDifference sdc_plus_app_fold() const;  // Fig. 9
};

/// Suite-level averages (Fig. 10's bar pairs).
struct AggregateComparison {
  double beam_sdc = 0, beam_sdc_app = 0, beam_total = 0;
  double fi_sdc = 0, fi_sdc_app = 0, fi_total = 0;

  double sdc_gap() const;       ///< beam/fi for SDC-only FIT
  double sdc_app_gap() const;   ///< beam/fi when AppCrash is added
  double total_gap() const;     ///< beam/fi for the total FIT
};

class AssessmentLab {
 public:
  explicit AssessmentLab(LabConfig config);

  const LabConfig& config() const { return config_; }

  /// The measured raw FIT per bit (cached after the first call).
  double fit_raw_per_bit();

  /// Fault-injection campaign for one workload (cached).
  const fi::WorkloadFiResult& run_fi(const workloads::Workload& workload);

  /// Beam session for one workload (cached).
  const beam::BeamResult& run_beam(const workloads::Workload& workload);

  /// AVF→FIT conversion for a finished FI campaign.
  FiFitRates convert_to_fit(const fi::WorkloadFiResult& result);

  /// Both campaigns + conversion for one workload.
  WorkloadComparison compare(const workloads::Workload& workload);

  /// The paper's full 13-benchmark sweep. Uncached beam sessions fan
  /// out over config.beam.threads workers (sessions are independent);
  /// FI campaigns run one at a time because each already parallelizes
  /// internally over injections. Results match a serial sweep exactly.
  std::vector<WorkloadComparison> compare_all();

  /// Fig. 10 aggregates over a finished sweep.
  static AggregateComparison aggregate(
      const std::vector<WorkloadComparison>& sweep);

  /// The lab's result cache (in-process memo over the optional
  /// SEFI_CACHE_DIR disk tier). Campaign results returned by run_fi /
  /// run_beam live in its memo, so references stay valid for the lab's
  /// lifetime.
  const ResultCache& cache() const { return cache_; }

  /// Snapshot of what the cache did so far in this process — hits per
  /// tier, misses, stores, failures, quarantined entries, bytes moved.
  /// CLI and bench binaries report this after their sweeps.
  ResultCache::Telemetry cache_telemetry() const {
    return cache_.telemetry();
  }

 private:
  /// True when a beam result for the workload is already available in
  /// the cache (memo or disk); false when the session must be run.
  bool load_cached_beam(const workloads::Workload& workload);

  LabConfig config_;
  ResultCache cache_ = ResultCache::from_env();
  std::optional<double> fit_raw_;
};

}  // namespace sefi::core
