// Bit-accurate set-associative cache array.
//
// Unlike a performance-only cache model, this array *holds the data*:
// reads are served from the array's own storage, writes dirty it, and
// evictions write the stored bytes back. That is what makes single-bit
// upsets meaningful — a flipped data bit is returned to the pipeline, a
// flipped tag bit silently detaches (or aliases) a line, a flipped dirty
// bit loses a write-back, a flipped valid bit drops or resurrects a line.
//
// Per-line bit layout for fault injection (in order):
//   bit 0: valid, bit 1: dirty, bits [2, 2+tag_bits): tag,
//   bits [2+tag_bits, ...): data, LSB-first per byte.
// Lines are numbered set-major: line = set * ways + way.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sefi/microarch/component.hpp"

namespace sefi::microarch {

struct CacheGeometry {
  std::uint32_t size_bytes = 0;
  std::uint32_t line_bytes = 0;
  std::uint32_t ways = 0;

  std::uint32_t lines() const { return size_bytes / line_bytes; }
  std::uint32_t sets() const { return lines() / ways; }
};

/// Result of installing a new line: describes the victim, whose data must
/// be written back by the caller if valid && dirty.
struct EvictedLine {
  bool valid = false;
  bool dirty = false;
  std::uint32_t paddr = 0;  ///< base address reconstructed from tag+set
  std::vector<std::uint8_t> data;
};

class CacheArray final : public InjectableComponent {
 public:
  CacheArray(std::string name, const CacheGeometry& geometry);

  CacheArray(const CacheArray&) = default;
  CacheArray(CacheArray&&) = default;
  CacheArray& operator=(CacheArray&&) = default;
  /// Copy-assignment (snapshot restore) keeps the generation stamp
  /// monotonic: the restored array gets max(live, saved) + 1, never the
  /// saved value — a stamp observed before the restore must never be
  /// observable again (see state_stamp()).
  CacheArray& operator=(const CacheArray& other);

  const CacheGeometry& geometry() const { return geometry_; }
  const std::string& name() const { return name_; }

  /// Monotonic whole-array generation stamp, bumped by every mutation
  /// whose reach is not confined to one set: invalidate_range, reset,
  /// restore_from, copy-assignment, and flip_bit. Ordinary line fills go
  /// through the per-set stamp below instead (an install can only change
  /// what lookup()/line_data() return for its own set), so a warm uop
  /// cache is not globally invalidated by every capacity miss. Direct
  /// writes through a mutable line_data() span are NOT tracked (the
  /// detailed model only writes D-side lines that way; I-side line bytes
  /// change only through the tracked paths). The CPU's uop cache compares
  /// both stamps to prove a fetch that hit here before would replay
  /// bit-identically. Never 0.
  std::uint64_t state_stamp() const { return state_stamp_; }

  /// Per-set fill stamp, bumped by install() for the victim's set. Valid
  /// only while state_stamp() is unchanged (whole-array events don't
  /// touch the per-set counters; the global bump already invalidates
  /// every proof).
  std::uint64_t set_stamp(std::uint32_t set) const {
    return set_stamps_[set];
  }

  /// Set index a physical address maps to (for recording which set_stamp
  /// guards a cached fetch proof).
  std::uint32_t set_index(std::uint32_t paddr) const {
    return set_of(paddr);
  }

  /// Looks up `paddr`; returns the way index or -1 on miss. Comparison
  /// uses the stored (possibly corrupted) tag and valid bits.
  int lookup(std::uint32_t paddr) const;

  /// Selects the victim way for a fill at `paddr`: first invalid way,
  /// otherwise round-robin (deterministic).
  int pick_victim(std::uint32_t paddr);

  /// Installs a new line for `paddr` in `way` with `fill` bytes (must be
  /// exactly line_bytes), returning the previous occupant.
  EvictedLine install(std::uint32_t paddr, int way,
                      std::span<const std::uint8_t> fill);

  /// Mutable view of a line's stored bytes.
  std::span<std::uint8_t> line_data(std::uint32_t paddr, int way);
  std::span<const std::uint8_t> line_data(std::uint32_t paddr,
                                          int way) const;

  void mark_dirty(std::uint32_t paddr, int way);
  bool is_dirty(std::uint32_t paddr, int way) const;

  /// Invalidates (discards, no write-back) every line whose address range
  /// overlaps [start, start+size).
  void invalidate_range(std::uint32_t start, std::uint32_t size);

  /// Drops all lines and resets replacement state (cold boot).
  void reset();

  /// Copies meta/data/replacement state from `saved` (which must have
  /// identical geometry; throws SefiError otherwise) and clears the
  /// dirty-set marks. With `delta` set, only sets marked dirty since the
  /// marks were last cleared are copied — valid only if this array held
  /// exactly `saved`'s contents at that point. Returns bytes copied.
  std::uint64_t restore_from(const CacheArray& saved, bool delta);

  /// Number of sets currently marked dirty (restore-cost accounting).
  std::uint32_t dirty_set_count() const;
  /// Marks every set dirty (untracked bulk mutation; conservative).
  void mark_all_dirty();

  /// Approximate resident size of the array in bytes.
  std::uint64_t resident_bytes() const {
    return data_.size() + meta_.size() * sizeof(LineMeta) +
           victim_ptr_.size() * sizeof(std::uint32_t);
  }

  /// Base address of the line `(set, way)` as implied by its stored tag.
  std::uint32_t line_paddr(std::uint32_t set, int way) const;

  /// Number of lines currently valid (occupancy analyses).
  std::uint32_t valid_lines() const;

  /// State of the line an injectable bit index belongs to (protection
  /// adjudication: parity can recover clean lines by refetching, dirty
  /// ones are lost).
  bool bit_in_valid_line(std::uint64_t bit) const;
  bool bit_in_dirty_line(std::uint64_t bit) const;

  // InjectableComponent:
  std::uint64_t bit_count() const override;
  void flip_bit(std::uint64_t bit) override;
  BitSite locate_bit(std::uint64_t bit) const override;

  // Liveness regions: each line contributes a meta region (valid +
  // dirty + tag — consulted together by every associative compare) and
  // a data region (the stored bytes). region = line*2 + (meta ? 0 : 1).
  std::uint32_t region_count() const override {
    return geometry_.lines() * 2;
  }
  std::uint32_t bit_region(std::uint64_t bit) const override {
    const std::uint64_t per_line = bits_per_line();
    const auto line = static_cast<std::uint32_t>(bit / per_line);
    return line * 2 + (bit % per_line < 2 + tag_bits_ ? 0 : 1);
  }

 protected:
  // Watch keys (see InjectableComponent): a meta watch (valid/dirty/tag
  // bits) activates when the watched set is consulted by an associative
  // lookup or a dirty check; a data watch activates when the watched
  // line's bytes are read. kNoWatch never matches a real set/line.
  void on_arm_watch(std::uint64_t bit) override;
  void on_disarm_watch() override;

 private:
  struct LineMeta {
    bool valid = false;
    bool dirty = false;
    std::uint32_t tag = 0;
  };

  std::uint32_t set_of(std::uint32_t paddr) const;
  std::uint32_t tag_of(std::uint32_t paddr) const;
  std::uint32_t line_index(std::uint32_t set, int way) const {
    return set * geometry_.ways + static_cast<std::uint32_t>(way);
  }
  void mark_set(std::uint32_t set) {
    dirty_sets_[set / 64] |= 1ull << (set % 64);
  }
  void clear_dirty_sets();

  static constexpr std::uint32_t kNoWatch = ~0u;

  std::uint64_t bits_per_line() const {
    return 2 + tag_bits_ +
           static_cast<std::uint64_t>(geometry_.line_bytes) * 8;
  }

  std::string name_;
  CacheGeometry geometry_;
  unsigned offset_bits_;
  unsigned index_bits_;
  unsigned tag_bits_;
  std::uint64_t state_stamp_ = 1;  ///< see state_stamp()
  std::vector<std::uint64_t> set_stamps_;  ///< see set_stamp()
  std::uint32_t watch_set_ = kNoWatch;   ///< set of the watched bit (meta)
  std::uint32_t watch_line_ = kNoWatch;  ///< line of the watched bit (data)
  std::vector<LineMeta> meta_;
  std::vector<std::uint8_t> data_;
  std::vector<std::uint32_t> victim_ptr_;  ///< per-set round-robin cursor
  std::vector<std::uint64_t> dirty_sets_;  ///< one bit per set, see
                                           ///< restore_from
};

}  // namespace sefi::microarch
