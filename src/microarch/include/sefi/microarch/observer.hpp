// Access-observer plumbing for golden-run liveness recording.
//
// An AccessObserver subscribes to the def/use stream of one injectable
// component at *region* granularity: a region is the smallest group of
// storage bits the component reads or overwrites as a unit (a cache
// line's meta bits or data bytes, a TLB entry's tag or translation
// half, one physical register). The fault-site pruner replays the
// golden run once with an observer attached and turns the stream into
// per-region liveness intervals (DESIGN.md §13).
//
// Events carry no timestamps: the observer owns its clock (the
// campaign recorder samples the CPU cycle counter), keeping the
// component side free of sim dependencies.
#pragma once

#include <cstdint>

namespace sefi::microarch {

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  /// The guest consulted bits of `region`: its value can influence
  /// execution from here on. Conservative call sites over-report
  /// (recording a read that is later discarded is sound; missing one
  /// is not).
  virtual void on_region_read(std::uint32_t region) = 0;

  /// Every bit of `region` was overwritten with values independent of
  /// its prior content (a line fill, a TLB insert, a register write).
  /// A flip landing between a kill and the next read is unobservable.
  virtual void on_region_kill(std::uint32_t region) = 0;

  /// Whole-structure kill (reset / flush): every region at once.
  virtual void on_kill_all() = 0;

  /// The number of valid entries changed by `delta` (occupancy
  /// integration; fires after the corresponding kill event).
  virtual void on_valid_delta(int delta) = 0;
};

/// Holder for a component's observer pointer with *transient* copy
/// semantics: copying (snapshot capture, copy-assignment restore)
/// always detaches — a snapshot must never smuggle a dangling observer
/// back into a live array, and a whole-array restore invalidates the
/// recording anyway. Moves transfer ownership normally.
class ObserverHook {
 public:
  ObserverHook() = default;
  ObserverHook(const ObserverHook&) noexcept : ptr_(nullptr) {}
  ObserverHook& operator=(const ObserverHook&) noexcept {
    ptr_ = nullptr;
    return *this;
  }
  ObserverHook(ObserverHook&& other) noexcept : ptr_(other.ptr_) {
    other.ptr_ = nullptr;
  }
  ObserverHook& operator=(ObserverHook&& other) noexcept {
    ptr_ = other.ptr_;
    other.ptr_ = nullptr;
    return *this;
  }

  void attach(AccessObserver* observer) { ptr_ = observer; }
  void detach() { ptr_ = nullptr; }
  AccessObserver* get() const { return ptr_; }

 private:
  AccessObserver* ptr_ = nullptr;
};

}  // namespace sefi::microarch
