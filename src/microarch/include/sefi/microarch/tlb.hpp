// Fully-associative TLB with injectable entry bits.
//
// Entry bit layout for fault injection (in order):
//   bit 0: valid, bits [1, 1+12): VPN tag, bits [13, 13+12): PPN,
//   bits [25, 28): user-read / user-write / user-exec permission bits.
// The split mirrors the paper's observation (§V-B): flips in the PPN
// ("physical page / target") cause wrong translations and dominate the
// TLB's vulnerability, while flips in the VPN ("virtual part / tag")
// mostly cause spurious misses that a page walk silently repairs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sefi/microarch/component.hpp"
#include "sefi/sim/page.hpp"

namespace sefi::microarch {

class Tlb final : public InjectableComponent {
 public:
  Tlb(std::string name, unsigned entries);

  Tlb(const Tlb&) = default;
  Tlb(Tlb&&) = default;
  Tlb& operator=(Tlb&&) = default;
  /// Copy-assignment (snapshot restore) keeps the generation stamp
  /// monotonic — same contract as CacheArray::operator=.
  Tlb& operator=(const Tlb& other);

  unsigned entries() const { return static_cast<unsigned>(slots_.size()); }
  const std::string& name() const { return name_; }

  /// Monotonic generation stamp, bumped by every mutation whose reach is
  /// not confined to one entry: reset, restore_from, copy-assignment, and
  /// flip_bit. Ordinary insert()s bump only the overwritten entry's
  /// per-entry stamp (see entry_stamp) — an insert can change lookup
  /// results only for pages that previously won at the victim entry,
  /// because the inserted VPN just missed (no valid entry matched it) and
  /// every other slot is untouched. Same uop-cache purity contract as
  /// CacheArray::state_stamp(). Never 0.
  std::uint64_t state_stamp() const { return state_stamp_; }

  /// Fill stamp of one entry, bumped each time insert() overwrites it.
  /// Meaningful only while state_stamp() is unchanged; the (global,
  /// entry) stamp pair never repeats with different slot contents.
  std::uint64_t entry_stamp(std::uint32_t entry) const {
    return entry_stamps_[entry];
  }

  /// Index of the entry lookup(`vpn`) would hit right now (first valid
  /// match), writing its translation to `*translation`; -1 on miss. Pure
  /// scan: no watch latching, no replacement update — the uop fast path's
  /// side-effect-free probe.
  int probe_entry(std::uint32_t vpn, sim::Translation* translation) const;

  /// Looks up `vpn`; first matching valid entry wins (a corrupted tag can
  /// alias another page — that is the fault model, not a bug).
  std::optional<sim::Translation> lookup(std::uint32_t vpn) const;

  /// Inserts a translation, evicting round-robin.
  void insert(std::uint32_t vpn, const sim::Translation& translation);

  /// Drops every entry (cold boot / TLB flush instruction).
  void reset();

  /// Copies entries/replacement cursor from `saved` (same entry count
  /// required; throws SefiError otherwise) and clears the dirty-entry
  /// marks. With `delta`, only entries marked since the last clear are
  /// copied — valid only if this TLB held exactly `saved`'s contents at
  /// that point. Returns bytes copied.
  std::uint64_t restore_from(const Tlb& saved, bool delta);

  /// Number of entries currently marked dirty.
  unsigned dirty_entry_count() const;
  /// Marks every entry dirty (untracked bulk mutation; conservative).
  void mark_all_dirty();

  /// Approximate resident size in bytes.
  std::uint64_t resident_bytes() const {
    return slots_.size() * sizeof(Slot) + sizeof(std::uint32_t);
  }

  /// Number of currently valid entries (occupancy analyses).
  unsigned valid_entries() const;

  // InjectableComponent:
  std::uint64_t bit_count() const override;
  void flip_bit(std::uint64_t bit) override;
  BitSite locate_bit(std::uint64_t bit) const override;

  // Liveness regions: each entry contributes a tag region (valid + VPN
  // — scanned by every associative lookup) and a translation region
  // (PPN + perms — consumed only by hits). region = entry*2 + half.
  std::uint32_t region_count() const override {
    return static_cast<std::uint32_t>(slots_.size()) * 2;
  }
  std::uint32_t bit_region(std::uint64_t bit) const override {
    const auto entry = static_cast<std::uint32_t>(bit / kBitsPerEntry);
    return entry * 2 + (bit % kBitsPerEntry < 13 ? 0 : 1);
  }

  static constexpr unsigned kBitsPerEntry = 1 + 12 + 12 + 3;

 protected:
  // Watch keys (see InjectableComponent): a tag watch (valid/VPN bits)
  // activates when any lookup scans the watched entry (the associative
  // compare reads every tag); a translation watch (PPN/perms) activates
  // only when the watched entry actually serves a hit.
  void on_arm_watch(std::uint64_t bit) override;
  void on_disarm_watch() override;

 private:
  static constexpr std::size_t kNoWatch = ~static_cast<std::size_t>(0);

  struct Slot {
    bool valid = false;
    std::uint32_t vpn = 0;    // 12 bits
    std::uint32_t ppn = 0;    // 12 bits
    std::uint8_t perms = 0;   // 3 bits (pte::kUserRead/Write/Exec >> 1)
  };

  void mark_entry(std::size_t entry) {
    dirty_entries_[entry / 64] |= 1ull << (entry % 64);
  }

  std::string name_;
  std::uint64_t state_stamp_ = 1;  ///< see state_stamp()
  std::vector<std::uint64_t> entry_stamps_;  ///< see entry_stamp()
  std::vector<Slot> slots_;
  std::uint32_t next_victim_ = 0;
  std::vector<std::uint64_t> dirty_entries_;  ///< one bit per slot
  std::size_t watch_tag_entry_ = kNoWatch;    ///< entry watched on scans
  std::size_t watch_data_entry_ = kNoWatch;   ///< entry watched on hits
};

}  // namespace sefi::microarch
