// Renamed physical register file.
//
// The Cortex-A9 renames its 16 architectural registers onto a larger
// physical file; the paper injects into the *physical* file, where only a
// fraction of entries hold live architectural state at any instant —
// faults in unmapped (free) registers are naturally masked. We model that
// with a simple in-order renamer: every architectural write allocates the
// next free physical register and retires the old mapping immediately.
//
// Bit layout for fault injection: physical register p occupies bits
// [32p, 32p+32), LSB first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sefi/microarch/component.hpp"
#include "sefi/sim/uarch_iface.hpp"

namespace sefi::microarch {

class PhysRegFile final : public sim::RegFileModel,
                          public InjectableComponent {
 public:
  explicit PhysRegFile(unsigned num_phys = 64, unsigned num_arch = 16);

  // RegFileModel:
  std::uint32_t read(unsigned arch_reg) override;
  void write(unsigned arch_reg, std::uint32_t value) override;
  void reset() override;
  std::unique_ptr<sim::OpaqueState> save_state() const override;
  void restore_state(const sim::OpaqueState& state) override;
  /// Delta-aware restore: with `delta`, copies only the physical
  /// registers written (or flipped) since the dirty marks were last
  /// cleared; the rename map and free list are small and always copied.
  std::uint64_t restore_state_counted(const sim::OpaqueState& state,
                                      bool delta) override;

  // InjectableComponent:
  std::uint64_t bit_count() const override;
  void flip_bit(std::uint64_t bit) override;
  BitSite locate_bit(std::uint64_t bit) const override;

  // Liveness regions: one per physical register (read and written as
  // 32-bit units through the rename map).
  std::uint32_t region_count() const override {
    return static_cast<std::uint32_t>(regs_.size());
  }
  std::uint32_t bit_region(std::uint64_t bit) const override {
    return static_cast<std::uint32_t>(bit / 32);
  }

  unsigned num_phys() const { return static_cast<unsigned>(regs_.size()); }
  /// Physical register currently mapped to `arch_reg` (for tests).
  unsigned mapping(unsigned arch_reg) const { return map_[arch_reg]; }
  /// Number of physical registers holding live architectural state.
  unsigned mapped_count() const {
    return static_cast<unsigned>(map_.size());
  }
  /// Whether physical register `phys` currently holds live state.
  bool is_mapped(unsigned phys) const { return mapped_[phys]; }

  /// Number of physical registers currently marked dirty.
  unsigned dirty_reg_count() const;
  /// Approximate resident size in bytes.
  std::uint64_t resident_bytes() const {
    return regs_.size() * sizeof(std::uint32_t) +
           map_.size() * sizeof(std::uint32_t) + mapped_.size() / 8 +
           sizeof(std::uint32_t);
  }

 protected:
  // Watch keys (see InjectableComponent): activates when the watched
  // physical register is read through the rename map.
  void on_arm_watch(std::uint64_t bit) override;
  void on_disarm_watch() override;

 private:
  static constexpr std::uint32_t kNoWatch = ~0u;

  void mark_reg(std::size_t phys) {
    dirty_regs_[phys / 64] |= 1ull << (phys % 64);
  }
  void mark_all_dirty();

  std::vector<std::uint32_t> regs_;
  std::vector<std::uint32_t> map_;   ///< arch -> phys
  std::vector<bool> mapped_;         ///< phys in use
  std::uint32_t next_alloc_ = 0;
  std::vector<std::uint64_t> dirty_regs_;  ///< one bit per physical reg
  std::uint32_t watch_phys_ = kNoWatch;    ///< watched physical register
};

}  // namespace sefi::microarch
