// Branch predictor: bimodal 2-bit counters for conditional branches plus
// a direct-mapped BTB for indirect targets. Purely a timing structure —
// its state is performance-visible only, so it is not a fault-injection
// target (flips there are masked by construction; see DESIGN.md §5).
#pragma once

#include <cstdint>
#include <vector>

namespace sefi::microarch {

class BranchPredictor {
 public:
  BranchPredictor(unsigned bimodal_entries = 1024, unsigned btb_entries = 256);

  /// Predicts and trains on a conditional branch; returns true on
  /// misprediction.
  bool conditional(std::uint32_t pc, bool taken);

  /// Predicts and trains on an indirect branch; returns true on
  /// misprediction (BTB miss or wrong target).
  bool indirect(std::uint32_t pc, std::uint32_t target);

  void reset();

  /// Approximate resident size in bytes.
  std::uint64_t resident_bytes() const {
    return counters_.size() + btb_.size() * sizeof(BtbEntry);
  }

 private:
  std::vector<std::uint8_t> counters_;  ///< 2-bit saturating
  struct BtbEntry {
    bool valid = false;
    std::uint32_t pc = 0;
    std::uint32_t target = 0;
  };
  std::vector<BtbEntry> btb_;
};

}  // namespace sefi::microarch
