// Fault-injectable hardware components.
//
// The six SRAM-array components targeted by the paper's GeFIN campaign
// (§IV-C): L1 instruction/data caches, L2 cache, physical register file,
// and instruction/data TLBs. Each exposes its state as a flat bit vector
// so the injectors (statistical FI and the beam simulator) can flip an
// arbitrary bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sefi::microarch {

enum class ComponentKind : std::uint8_t {
  kL1I = 0,
  kL1D,
  kL2,
  kRegFile,
  kITlb,
  kDTlb,
};
inline constexpr unsigned kNumComponents = 6;

inline constexpr std::array<ComponentKind, kNumComponents> kAllComponents = {
    ComponentKind::kL1I,    ComponentKind::kL1D,  ComponentKind::kL2,
    ComponentKind::kRegFile, ComponentKind::kITlb, ComponentKind::kDTlb,
};

std::string component_name(ComponentKind kind);

/// A hardware structure whose storage bits can be flipped by a particle
/// strike. Bit indices are stable for a given configuration: the mapping
/// from index to (entry, field, bit) is deterministic, so campaigns are
/// reproducible.
class InjectableComponent {
 public:
  virtual ~InjectableComponent() = default;

  /// Total number of storage bits (tags + state + data for caches).
  virtual std::uint64_t bit_count() const = 0;

  /// Flips one bit. `bit` must be < bit_count().
  virtual void flip_bit(std::uint64_t bit) = 0;
};

}  // namespace sefi::microarch
