// Fault-injectable hardware components.
//
// The six SRAM-array components targeted by the paper's GeFIN campaign
// (§IV-C): L1 instruction/data caches, L2 cache, physical register file,
// and instruction/data TLBs. Each exposes its state as a flat bit vector
// so the injectors (statistical FI and the beam simulator) can flip an
// arbitrary bit.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sefi/microarch/observer.hpp"

namespace sefi::microarch {

enum class ComponentKind : std::uint8_t {
  kL1I = 0,
  kL1D,
  kL2,
  kRegFile,
  kITlb,
  kDTlb,
};
inline constexpr unsigned kNumComponents = 6;

inline constexpr std::array<ComponentKind, kNumComponents> kAllComponents = {
    ComponentKind::kL1I,    ComponentKind::kL1D,  ComponentKind::kL2,
    ComponentKind::kRegFile, ComponentKind::kITlb, ComponentKind::kDTlb,
};

std::string component_name(ComponentKind kind);

/// Structural coordinates of one injectable bit — where a flat bit index
/// lands inside the structure. Used by fault forensics to report
/// injection sites as (set, way, field) instead of opaque indices.
struct BitSite {
  std::uint32_t entry = 0;  ///< cache set, TLB entry, or physical register
  std::uint32_t way = 0;    ///< way within the set (0 for non-set-assoc)
  std::uint32_t bit = 0;    ///< bit offset within the entry/line
  const char* field = "";   ///< "valid"/"dirty"/"tag"/"data"/"vpn"/...
};

/// A hardware structure whose storage bits can be flipped by a particle
/// strike. Bit indices are stable for a given configuration: the mapping
/// from index to (entry, field, bit) is deterministic, so campaigns are
/// reproducible.
///
/// Activation watch: forensics needs the *first-activation cycle* — the
/// first time the guest reads state containing the corrupted bit after
/// injection. arm_watch() plants a one-shot watch; derived classes call
/// note_watch_hit() from their read paths when the watched location is
/// consulted, which latches the current cycle from the armed cycle
/// source. The watch keys deliberately live OUTSIDE snapshot/restore
/// state: restoring a checkpoint over a corrupted structure must not
/// clear an armed watch (the campaign arms after restore+replay and
/// disarms before the next injection). Disarmed cost on hot read paths
/// is one compare against a never-matching sentinel.
class InjectableComponent {
 public:
  virtual ~InjectableComponent() = default;

  /// Total number of storage bits (tags + state + data for caches).
  virtual std::uint64_t bit_count() const = 0;

  /// Flips one bit. `bit` must be < bit_count().
  virtual void flip_bit(std::uint64_t bit) = 0;

  /// Coordinates of `bit` inside the structure. The default reports the
  /// flat index as entry 0 / field "raw" for components without a
  /// structured layout.
  virtual BitSite locate_bit(std::uint64_t bit) const {
    BitSite site;
    site.bit = static_cast<std::uint32_t>(bit);
    site.field = "raw";
    return site;
  }

  /// Arms the one-shot activation watch on `bit`. `cycle_source` must
  /// outlive the armed period (campaigns pass the owning CPU's cycle
  /// counter). Re-arming resets any previous hit.
  void arm_watch(std::uint64_t bit, const std::uint64_t* cycle_source) {
    watch_cycles_ = cycle_source;
    watch_hit_ = false;
    watch_hit_cycle_ = 0;
    on_arm_watch(bit);
  }

  /// Disarms the watch; the latched hit state stays readable until the
  /// next arm_watch().
  void disarm_watch() {
    watch_cycles_ = nullptr;
    on_disarm_watch();
  }

  bool watch_activated() const { return watch_hit_; }
  std::uint64_t watch_activation_cycle() const { return watch_hit_cycle_; }

  /// True while an activation watch is armed. Read paths that are pure on
  /// the disarmed fast path (e.g. the uop cache's proven-pure fetch skip)
  /// must fall back to the real read path while a watch is armed, so the
  /// watch can latch its first-activation cycle.
  bool watch_armed() const { return watch_cycles_ != nullptr; }

  /// Liveness regions (see AccessObserver): the component's bits are
  /// partitioned into regions read/killed as units. Components without
  /// def/use instrumentation report one region and never emit events,
  /// so every site in them stays conservatively live.
  virtual std::uint32_t region_count() const { return 1; }
  virtual std::uint32_t bit_region(std::uint64_t /*bit*/) const { return 0; }

  /// Attaches (or, with nullptr, detaches) the def/use observer. The
  /// pointer is transient: snapshot copies and copy-assignment restores
  /// drop it (see ObserverHook). Pass null when recording ends — the
  /// component must outlive an attached observer.
  void set_access_observer(AccessObserver* observer) {
    observer_.attach(observer);
  }

 protected:
  /// Derived classes translate `bit` into fast-compare keys consulted
  /// on their read paths. The default keeps the watch inert (components
  /// without read-path instrumentation simply never activate).
  virtual void on_arm_watch(std::uint64_t /*bit*/) {}
  /// Derived classes reset their keys to the never-matching sentinel.
  virtual void on_disarm_watch() {}

  /// Latches the first hit (no-op afterwards). Safe from const read
  /// paths; not thread-safe, matching the one-machine-per-worker model.
  void note_watch_hit() const {
    if (watch_hit_) return;
    watch_hit_ = true;
    watch_hit_cycle_ = watch_cycles_ != nullptr ? *watch_cycles_ : 0;
  }

  /// Current observer, or nullptr. Hot read paths must guard every
  /// event emission with a null check (one load+branch when detached,
  /// same cost class as the disarmed watch compare).
  AccessObserver* access_observer() const { return observer_.get(); }

 private:
  const std::uint64_t* watch_cycles_ = nullptr;
  mutable bool watch_hit_ = false;
  mutable std::uint64_t watch_hit_cycle_ = 0;
  ObserverHook observer_;
};

}  // namespace sefi::microarch
