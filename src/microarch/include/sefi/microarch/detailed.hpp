// Detailed microarchitecture model: the Cortex-A9-like timing core.
//
// Implements the UarchModel interface with bit-accurate, data-holding
// structures configured to match the paper's Table II platform:
//   32 KB 4-way L1 I/D caches, 512 KB 8-way unified L2 (all write-back,
//   write-allocate, 32 B lines), 32-entry fully-associative I/D TLBs with
//   hardware page walks routed through the L2, a 64-entry renamed physical
//   register file, and a bimodal+BTB branch predictor.
//
// Timing is an in-order issue model: each instruction pays its base cost
// plus stall cycles for cache/TLB misses and branch mispredictions. This
// is a deliberate simplification of the A9's out-of-order core — the
// paper's own gem5 model also diverges from real A9 pipeline details
// (Table II footnote) — and is documented in DESIGN.md §5.
#pragma once

#include <cstdint>
#include <memory>

#include "sefi/microarch/cache.hpp"
#include "sefi/microarch/component.hpp"
#include "sefi/microarch/predictor.hpp"
#include "sefi/microarch/regfile.hpp"
#include "sefi/microarch/tlb.hpp"
#include "sefi/sim/devices.hpp"
#include "sefi/sim/machine.hpp"
#include "sefi/sim/phys_mem.hpp"
#include "sefi/sim/uarch_iface.hpp"

namespace sefi::microarch {

struct DetailedConfig {
  CacheGeometry l1i{32 * 1024, 32, 4};
  CacheGeometry l1d{32 * 1024, 32, 4};
  CacheGeometry l2{512 * 1024, 32, 8};
  unsigned itlb_entries = 32;
  unsigned dtlb_entries = 32;
  unsigned phys_regs = 64;

  // Stall costs in cycles.
  unsigned l2_hit_extra = 8;     ///< L1 miss hitting in L2
  unsigned mem_extra = 40;       ///< L2 miss (DRAM)
  unsigned walk_extra = 2;       ///< page-walk overhead beyond the PTE read
  unsigned mispredict_penalty = 8;
  unsigned mmio_extra = 4;
};

class DetailedModel final : public sim::UarchModel {
 public:
  /// `regfile` is owned by the Machine; the model keeps a reference so the
  /// injectors can reach all six components through one object.
  DetailedModel(const DetailedConfig& config, sim::PhysicalMemory& mem,
                sim::DeviceBlock& devices, PhysRegFile& regfile);

  // UarchModel:
  sim::MemResult fetch(std::uint32_t va, bool kernel_mode,
                       bool mmu_enabled) override;
  sim::MemResult read(std::uint32_t va, unsigned size, bool kernel_mode,
                      bool mmu_enabled) override;
  sim::MemFault write(std::uint32_t va, unsigned size, std::uint32_t value,
                      bool kernel_mode, bool mmu_enabled) override;
  void on_branch(std::uint32_t pc, bool taken, std::uint32_t target) override;
  /// Fetch purity contract for the CPU's uop fast path: a fetch that hits
  /// both the I-TLB and the L1I mutates no model state (lookups are pure —
  /// replacement is round-robin and only advanced on fills, counters and
  /// stall cycles accrue only on misses), so the global stamp is the sum
  /// of the two arrays' whole-array generation stamps. Both are monotonic
  /// and bump on every mutation not confined to one L1I set or one I-TLB
  /// entry (TLB flushes, invalidations, resets, restores, bit flips), so
  /// the sum never repeats; L1I line fills and I-TLB inserts bump the
  /// per-set/per-entry stamps instead, surfaced via ifetch_set_stamp()
  /// and ifetch_tlb_stamp(). Returns 0 while a forensics watch is armed
  /// but not yet activated on either array: watch latching is the one
  /// pure-hit side effect, and real fetches must run until it fires
  /// (afterwards the one-shot watch is inert and the fast path resumes).
  std::uint64_t ifetch_stamp() const override;
  std::uint64_t ifetch_set_stamp(std::uint32_t l1i_set) const override;
  std::uint64_t ifetch_tlb_stamp(std::uint32_t itlb_entry) const override;
  bool ifetch_proof_ok(std::uint64_t stamp, std::uint32_t l1i_set,
                       std::uint64_t set_stamp, std::uint32_t itlb_entry,
                       std::uint64_t itlb_stamp) const override;
  bool fetch_probe(std::uint32_t va, bool kernel_mode, bool mmu_enabled,
                   FetchProof* proof) override;
  std::uint64_t drain_extra_cycles() override;
  const sim::PerfCounters& counters() const override { return counters_; }
  void reset() override;
  void flush_tlbs() override;
  void invalidate_range(std::uint32_t addr, std::uint32_t size) override;
  std::unique_ptr<sim::OpaqueState> save_state() const override;
  void restore_state(const sim::OpaqueState& state) override;
  /// Delta-aware restore: with `delta`, each cache copies only sets (and
  /// each TLB only entries) touched since its dirty marks were last
  /// cleared. The predictor, perf counters, and cycle accumulator are
  /// small and always copied. Returns bytes copied.
  std::uint64_t restore_state_counted(const sim::OpaqueState& state,
                                      bool delta) override;

  /// Access to the six injectable components (paper §IV-C).
  InjectableComponent& component(ComponentKind kind);
  const DetailedConfig& config() const { return config_; }

  CacheArray& l1i() { return l1i_; }
  CacheArray& l1d() { return l1d_; }
  CacheArray& l2() { return l2_; }
  Tlb& itlb() { return itlb_; }
  Tlb& dtlb() { return dtlb_; }
  PhysRegFile& regfile() { return regfile_; }

 private:
  /// Translates a virtual address through `tlb` (page-walking on miss).
  /// On success, MemResult::data is the physical address.
  sim::MemResult translate(std::uint32_t va, sim::AccessKind kind,
                           bool kernel_mode, bool mmu_enabled, Tlb& tlb,
                           std::uint64_t& miss_counter);

  /// Ensures the line containing `paddr` is present in the L2 and returns
  /// its way. Charges hit/miss cycles; handles victim write-back to RAM.
  int l2_ensure(std::uint32_t paddr);

  /// Ensures the line is present in `l1` (filling from L2) and returns
  /// its way. Dirty L1 victims are pushed down into the L2.
  int l1_ensure(CacheArray& l1, std::uint32_t paddr,
                std::uint64_t& miss_counter);

  /// Writes an evicted dirty L1 line down into the L2 (allocating there).
  void push_line_to_l2(const EvictedLine& line);

  /// Writes an evicted dirty L2 line back to RAM; lines whose corrupted
  /// tag points outside RAM are dropped (the bus ignores them).
  void writeback_to_ram(const EvictedLine& line);

  /// Reads a PTE word through the L1D hierarchy — the walker is coherent
  /// with dirty page-table lines the kernel wrote through its data cache.
  std::uint32_t read_pte(std::uint32_t pte_addr);

  DetailedConfig config_;
  sim::PhysicalMemory& mem_;
  sim::DeviceBlock& devices_;
  PhysRegFile& regfile_;
  CacheArray l1i_;
  CacheArray l1d_;
  CacheArray l2_;
  Tlb itlb_;
  Tlb dtlb_;
  BranchPredictor predictor_;
  sim::PerfCounters counters_;
  std::uint64_t extra_cycles_ = 0;
  std::vector<std::uint8_t> line_buf_;  ///< scratch for fills
};

/// Builds a Machine wired with the detailed model.
sim::Machine make_detailed_machine(const DetailedConfig& config = {});

/// Returns the DetailedModel inside a machine created by
/// make_detailed_machine; throws SefiError for other machines.
DetailedModel& detailed_model(sim::Machine& machine);

}  // namespace sefi::microarch
