#include "sefi/microarch/tlb.hpp"

#include <algorithm>

#include "sefi/support/error.hpp"

namespace sefi::microarch {

Tlb::Tlb(std::string name, unsigned entries) : name_(std::move(name)) {
  support::require(entries >= 1, name_ + ": needs at least one entry");
  slots_.resize(entries);
  entry_stamps_.assign(entries, 1);
  dirty_entries_.assign((entries + 63) / 64, 0);
  mark_all_dirty();  // no restore baseline yet
}

Tlb& Tlb::operator=(const Tlb& other) {
  if (this == &other) return *this;
  const std::uint64_t stamp =
      std::max(state_stamp_, other.state_stamp_) + 1;
  Tlb copy(other);
  *this = std::move(copy);
  state_stamp_ = stamp;
  return *this;
}

std::optional<sim::Translation> Tlb::lookup(std::uint32_t vpn) const {
  // The associative compare reads every entry's valid+VPN bits, so a
  // tag watch activates on the first lookup after injection.
  if (watch_tag_entry_ < slots_.size()) note_watch_hit();
  AccessObserver* o = access_observer();
  if (o != nullptr) {
    // Every entry's valid bit is consulted (a flipped valid bit on an
    // invalid entry resurrects a garbage translation), so every tag
    // region is read by every lookup.
    for (std::size_t entry = 0; entry < slots_.size(); ++entry) {
      o->on_region_read(static_cast<std::uint32_t>(entry) * 2);
    }
  }
  for (std::size_t entry = 0; entry < slots_.size(); ++entry) {
    const Slot& slot = slots_[entry];
    if (slot.valid && slot.vpn == vpn) {
      if (entry == watch_data_entry_) note_watch_hit();
      if (o != nullptr) {
        o->on_region_read(static_cast<std::uint32_t>(entry) * 2 + 1);
      }
      sim::Translation t;
      t.ppn = slot.ppn;
      // Perm bits are stored shifted down by one (valid bit excluded).
      t.perms = static_cast<std::uint8_t>(slot.perms << 1);
      return t;
    }
  }
  return std::nullopt;
}

int Tlb::probe_entry(std::uint32_t vpn, sim::Translation* translation) const {
  for (std::size_t entry = 0; entry < slots_.size(); ++entry) {
    const Slot& slot = slots_[entry];
    if (slot.valid && slot.vpn == vpn) {
      translation->ppn = slot.ppn;
      translation->perms = static_cast<std::uint8_t>(slot.perms << 1);
      return static_cast<int>(entry);
    }
  }
  return -1;
}

void Tlb::insert(std::uint32_t vpn, const sim::Translation& translation) {
  ++entry_stamps_[next_victim_];  // an insert only disturbs its victim
  Slot& slot = slots_[next_victim_];
  mark_entry(next_victim_);
  if (AccessObserver* o = access_observer()) {
    // The victim is overwritten wholesale without being consulted.
    o->on_region_kill(next_victim_ * 2);
    o->on_region_kill(next_victim_ * 2 + 1);
    if (!slot.valid) o->on_valid_delta(+1);
  }
  next_victim_ = (next_victim_ + 1) % slots_.size();
  slot.valid = true;
  slot.vpn = vpn & 0xfffu;
  slot.ppn = translation.ppn & 0xfffu;
  slot.perms = static_cast<std::uint8_t>((translation.perms >> 1) & 0x7u);
}

unsigned Tlb::valid_entries() const {
  unsigned count = 0;
  for (const Slot& slot : slots_) {
    if (slot.valid) ++count;
  }
  return count;
}

void Tlb::reset() {
  ++state_stamp_;
  if (AccessObserver* o = access_observer()) o->on_kill_all();
  for (Slot& slot : slots_) slot = Slot{};
  next_victim_ = 0;
  mark_all_dirty();
}

void Tlb::mark_all_dirty() {
  std::fill(dirty_entries_.begin(), dirty_entries_.end(), ~0ull);
}

unsigned Tlb::dirty_entry_count() const {
  unsigned count = 0;
  for (std::size_t entry = 0; entry < slots_.size(); ++entry) {
    if (dirty_entries_[entry / 64] & (1ull << (entry % 64))) ++count;
  }
  return count;
}

std::uint64_t Tlb::restore_from(const Tlb& saved, bool delta) {
  support::require(slots_.size() == saved.slots_.size(),
                   name_ + ": restore_from entry-count mismatch");
  ++state_stamp_;
  std::uint64_t bytes = sizeof(std::uint32_t);  // replacement cursor
  next_victim_ = saved.next_victim_;
  if (!delta) {
    slots_ = saved.slots_;
    bytes += slots_.size() * sizeof(Slot);
  } else {
    for (std::size_t entry = 0; entry < slots_.size(); ++entry) {
      if ((dirty_entries_[entry / 64] & (1ull << (entry % 64))) == 0) {
        continue;
      }
      slots_[entry] = saved.slots_[entry];
      bytes += sizeof(Slot);
    }
  }
  std::fill(dirty_entries_.begin(), dirty_entries_.end(), 0);
  return bytes;
}

std::uint64_t Tlb::bit_count() const {
  return static_cast<std::uint64_t>(slots_.size()) * kBitsPerEntry;
}

void Tlb::flip_bit(std::uint64_t bit) {
  support::require(bit < bit_count(), name_ + ": flip_bit out of range");
  ++state_stamp_;
  mark_entry(bit / kBitsPerEntry);
  Slot& slot = slots_[bit / kBitsPerEntry];
  std::uint64_t offset = bit % kBitsPerEntry;
  if (offset == 0) {
    slot.valid = !slot.valid;
    return;
  }
  offset -= 1;
  if (offset < 12) {
    slot.vpn ^= 1u << offset;
    return;
  }
  offset -= 12;
  if (offset < 12) {
    slot.ppn ^= 1u << offset;
    return;
  }
  offset -= 12;
  slot.perms ^= static_cast<std::uint8_t>(1u << offset);
}

BitSite Tlb::locate_bit(std::uint64_t bit) const {
  support::require(bit < bit_count(), name_ + ": locate_bit out of range");
  BitSite site;
  site.entry = static_cast<std::uint32_t>(bit / kBitsPerEntry);
  const auto offset = static_cast<std::uint32_t>(bit % kBitsPerEntry);
  site.bit = offset;
  if (offset == 0) {
    site.field = "valid";
  } else if (offset < 13) {
    site.field = "vpn";
  } else if (offset < 25) {
    site.field = "ppn";
  } else {
    site.field = "perms";
  }
  return site;
}

void Tlb::on_arm_watch(std::uint64_t bit) {
  support::require(bit < bit_count(), name_ + ": arm_watch out of range");
  const std::size_t entry = bit / kBitsPerEntry;
  const std::uint64_t offset = bit % kBitsPerEntry;
  if (offset < 13) {
    watch_tag_entry_ = entry;
    watch_data_entry_ = kNoWatch;
  } else {
    watch_tag_entry_ = kNoWatch;
    watch_data_entry_ = entry;
  }
}

void Tlb::on_disarm_watch() {
  watch_tag_entry_ = kNoWatch;
  watch_data_entry_ = kNoWatch;
}

}  // namespace sefi::microarch
