#include "sefi/microarch/tlb.hpp"

#include "sefi/support/error.hpp"

namespace sefi::microarch {

Tlb::Tlb(std::string name, unsigned entries) : name_(std::move(name)) {
  support::require(entries >= 1, name_ + ": needs at least one entry");
  slots_.resize(entries);
}

std::optional<sim::Translation> Tlb::lookup(std::uint32_t vpn) const {
  for (const Slot& slot : slots_) {
    if (slot.valid && slot.vpn == vpn) {
      sim::Translation t;
      t.ppn = slot.ppn;
      // Perm bits are stored shifted down by one (valid bit excluded).
      t.perms = static_cast<std::uint8_t>(slot.perms << 1);
      return t;
    }
  }
  return std::nullopt;
}

void Tlb::insert(std::uint32_t vpn, const sim::Translation& translation) {
  Slot& slot = slots_[next_victim_];
  next_victim_ = (next_victim_ + 1) % slots_.size();
  slot.valid = true;
  slot.vpn = vpn & 0xfffu;
  slot.ppn = translation.ppn & 0xfffu;
  slot.perms = static_cast<std::uint8_t>((translation.perms >> 1) & 0x7u);
}

unsigned Tlb::valid_entries() const {
  unsigned count = 0;
  for (const Slot& slot : slots_) {
    if (slot.valid) ++count;
  }
  return count;
}

void Tlb::reset() {
  for (Slot& slot : slots_) slot = Slot{};
  next_victim_ = 0;
}

std::uint64_t Tlb::bit_count() const {
  return static_cast<std::uint64_t>(slots_.size()) * kBitsPerEntry;
}

void Tlb::flip_bit(std::uint64_t bit) {
  support::require(bit < bit_count(), name_ + ": flip_bit out of range");
  Slot& slot = slots_[bit / kBitsPerEntry];
  std::uint64_t offset = bit % kBitsPerEntry;
  if (offset == 0) {
    slot.valid = !slot.valid;
    return;
  }
  offset -= 1;
  if (offset < 12) {
    slot.vpn ^= 1u << offset;
    return;
  }
  offset -= 12;
  if (offset < 12) {
    slot.ppn ^= 1u << offset;
    return;
  }
  offset -= 12;
  slot.perms ^= static_cast<std::uint8_t>(1u << offset);
}

}  // namespace sefi::microarch
