#include "sefi/microarch/predictor.hpp"

#include "sefi/support/bits.hpp"
#include "sefi/support/error.hpp"

namespace sefi::microarch {

BranchPredictor::BranchPredictor(unsigned bimodal_entries,
                                 unsigned btb_entries) {
  support::require(support::is_pow2(bimodal_entries) &&
                       support::is_pow2(btb_entries),
                   "BranchPredictor: table sizes must be powers of two");
  counters_.assign(bimodal_entries, 1);  // weakly not-taken
  btb_.resize(btb_entries);
}

bool BranchPredictor::conditional(std::uint32_t pc, bool taken) {
  const std::size_t idx = (pc >> 2) & (counters_.size() - 1);
  std::uint8_t& counter = counters_[idx];
  const bool predicted_taken = counter >= 2;
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  return predicted_taken != taken;
}

bool BranchPredictor::indirect(std::uint32_t pc, std::uint32_t target) {
  const std::size_t idx = (pc >> 2) & (btb_.size() - 1);
  BtbEntry& entry = btb_[idx];
  const bool hit = entry.valid && entry.pc == pc && entry.target == target;
  entry.valid = true;
  entry.pc = pc;
  entry.target = target;
  return !hit;
}

void BranchPredictor::reset() {
  std::fill(counters_.begin(), counters_.end(), 1);
  std::fill(btb_.begin(), btb_.end(), BtbEntry{});
}

}  // namespace sefi::microarch
