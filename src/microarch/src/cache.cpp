#include "sefi/microarch/cache.hpp"

#include <algorithm>

#include "sefi/support/bits.hpp"
#include "sefi/support/error.hpp"

namespace sefi::microarch {

using support::is_pow2;
using support::log2_exact;
using support::require;

std::string component_name(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kL1I: return "L1I";
    case ComponentKind::kL1D: return "L1D";
    case ComponentKind::kL2: return "L2";
    case ComponentKind::kRegFile: return "RegFile";
    case ComponentKind::kITlb: return "ITLB";
    case ComponentKind::kDTlb: return "DTLB";
  }
  return "?";
}

CacheArray::CacheArray(std::string name, const CacheGeometry& geometry)
    : name_(std::move(name)), geometry_(geometry) {
  require(geometry.line_bytes >= 4 && is_pow2(geometry.line_bytes),
          name_ + ": line size must be a power of two >= 4");
  require(geometry.ways >= 1, name_ + ": needs at least one way");
  require(geometry.size_bytes % (geometry.line_bytes * geometry.ways) == 0,
          name_ + ": size must be a multiple of line*ways");
  require(is_pow2(geometry.sets()), name_ + ": set count must be 2^n");
  offset_bits_ = log2_exact(geometry.line_bytes);
  index_bits_ = log2_exact(geometry.sets());
  tag_bits_ = 32 - offset_bits_ - index_bits_;
  meta_.resize(geometry.lines());
  data_.resize(static_cast<std::size_t>(geometry.lines()) *
               geometry.line_bytes);
  victim_ptr_.assign(geometry.sets(), 0);
  set_stamps_.assign(geometry.sets(), 1);
  dirty_sets_.assign((geometry.sets() + 63) / 64, 0);
  mark_all_dirty();  // no restore baseline yet; everything counts as dirty
}

CacheArray& CacheArray::operator=(const CacheArray& other) {
  if (this == &other) return *this;
  const std::uint64_t stamp =
      std::max(state_stamp_, other.state_stamp_) + 1;
  CacheArray copy(other);
  *this = std::move(copy);
  state_stamp_ = stamp;
  return *this;
}

std::uint32_t CacheArray::set_of(std::uint32_t paddr) const {
  return (paddr >> offset_bits_) & (geometry_.sets() - 1);
}

std::uint32_t CacheArray::tag_of(std::uint32_t paddr) const {
  return paddr >> (offset_bits_ + index_bits_);
}

int CacheArray::lookup(std::uint32_t paddr) const {
  const std::uint32_t set = set_of(paddr);
  if (set == watch_set_) note_watch_hit();  // associative compare reads meta
  if (AccessObserver* o = access_observer()) {
    // The compare consults every way's valid bit (a flipped valid bit
    // on an invalid line resurrects it), so the whole set's meta is read.
    for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
      o->on_region_read(line_index(set, static_cast<int>(way)) * 2);
    }
  }
  const std::uint32_t tag = tag_of(paddr);
  for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
    const LineMeta& m = meta_[line_index(set, static_cast<int>(way))];
    if (m.valid && m.tag == tag) return static_cast<int>(way);
  }
  return -1;
}

int CacheArray::pick_victim(std::uint32_t paddr) {
  const std::uint32_t set = set_of(paddr);
  if (AccessObserver* o = access_observer()) {
    for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
      o->on_region_read(line_index(set, static_cast<int>(way)) * 2);
    }
  }
  for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
    if (!meta_[line_index(set, static_cast<int>(way))].valid) {
      return static_cast<int>(way);
    }
  }
  const std::uint32_t way = victim_ptr_[set];
  victim_ptr_[set] = (way + 1) % geometry_.ways;
  mark_set(set);  // the replacement cursor is restore-tracked state
  return static_cast<int>(way);
}

std::uint32_t CacheArray::line_paddr(std::uint32_t set, int way) const {
  const LineMeta& m = meta_[line_index(set, way)];
  return (m.tag << (offset_bits_ + index_bits_)) | (set << offset_bits_);
}

EvictedLine CacheArray::install(std::uint32_t paddr, int way,
                                std::span<const std::uint8_t> fill) {
  require(fill.size() == geometry_.line_bytes,
          name_ + ": install fill size mismatch");
  const std::uint32_t set = set_of(paddr);
  const std::uint32_t idx = line_index(set, way);
  // A fill reads the victim's meta (write-back decision) and, when the
  // victim is valid, its stored bytes.
  if (set == watch_set_ || idx == watch_line_) note_watch_hit();
  mark_set(set);
  ++set_stamps_[set];  // a fill only disturbs its own set
  LineMeta& m = meta_[idx];
  if (AccessObserver* o = access_observer()) {
    // The write-back decision consults the victim's meta; the stored
    // bytes are consumed only when they will actually be written back
    // (clean victims are discarded, so a flip in them dies here). The
    // fill then overwrites valid/dirty/tag and the data bytes.
    o->on_region_read(idx * 2);
    if (m.valid && m.dirty) o->on_region_read(idx * 2 + 1);
    o->on_region_kill(idx * 2);
    o->on_region_kill(idx * 2 + 1);
    if (!m.valid) o->on_valid_delta(+1);
  }

  EvictedLine evicted;
  evicted.valid = m.valid;
  evicted.dirty = m.dirty;
  if (m.valid) {
    evicted.paddr = line_paddr(set, way);
    const auto* src = data_.data() +
                      static_cast<std::size_t>(idx) * geometry_.line_bytes;
    evicted.data.assign(src, src + geometry_.line_bytes);
  }

  m.valid = true;
  m.dirty = false;
  m.tag = tag_of(paddr);
  std::copy(fill.begin(), fill.end(),
            data_.begin() + static_cast<std::size_t>(idx) *
                                geometry_.line_bytes);
  return evicted;
}

std::span<std::uint8_t> CacheArray::line_data(std::uint32_t paddr, int way) {
  const std::uint32_t set = set_of(paddr);
  mark_set(set);  // the caller may write through the mutable span
  const std::uint32_t idx = line_index(set, way);
  if (idx == watch_line_) note_watch_hit();
  // Conservatively a read even when the caller only stores: partial
  // stores leave the line's other bits observable, so the region can
  // never be killed here, and treating it as live is the sound side.
  if (AccessObserver* o = access_observer()) o->on_region_read(idx * 2 + 1);
  return {data_.data() + static_cast<std::size_t>(idx) * geometry_.line_bytes,
          geometry_.line_bytes};
}

std::span<const std::uint8_t> CacheArray::line_data(std::uint32_t paddr,
                                                    int way) const {
  const std::uint32_t idx = line_index(set_of(paddr), way);
  if (idx == watch_line_) note_watch_hit();
  if (AccessObserver* o = access_observer()) o->on_region_read(idx * 2 + 1);
  return {data_.data() + static_cast<std::size_t>(idx) * geometry_.line_bytes,
          geometry_.line_bytes};
}

void CacheArray::mark_dirty(std::uint32_t paddr, int way) {
  const std::uint32_t set = set_of(paddr);
  mark_set(set);
  meta_[line_index(set, way)].dirty = true;
}

bool CacheArray::is_dirty(std::uint32_t paddr, int way) const {
  const std::uint32_t set = set_of(paddr);
  if (set == watch_set_) note_watch_hit();  // the dirty bit is meta state
  const std::uint32_t idx = line_index(set, way);
  if (AccessObserver* o = access_observer()) o->on_region_read(idx * 2);
  return meta_[idx].dirty;
}

void CacheArray::invalidate_range(std::uint32_t start, std::uint32_t size) {
  ++state_stamp_;
  AccessObserver* o = access_observer();
  const std::uint64_t end = static_cast<std::uint64_t>(start) + size;
  for (std::uint32_t set = 0; set < geometry_.sets(); ++set) {
    for (std::uint32_t way = 0; way < geometry_.ways; ++way) {
      const std::uint32_t idx = line_index(set, static_cast<int>(way));
      LineMeta& m = meta_[idx];
      // The scan consults every line's valid bit (and valid lines'
      // tags); an invalidated line's tag and bytes then become
      // unreachable until the next fill overwrites them, which is a
      // kill at region granularity.
      if (o != nullptr) o->on_region_read(idx * 2);
      if (!m.valid) continue;
      const std::uint32_t base = line_paddr(set, static_cast<int>(way));
      if (base < end && start < base + geometry_.line_bytes) {
        m.valid = false;
        m.dirty = false;
        mark_set(set);
        if (o != nullptr) {
          o->on_region_kill(idx * 2);
          o->on_region_kill(idx * 2 + 1);
          o->on_valid_delta(-1);
        }
      }
    }
  }
}

bool CacheArray::bit_in_valid_line(std::uint64_t bit) const {
  const std::uint64_t per_line =
      2 + tag_bits_ + static_cast<std::uint64_t>(geometry_.line_bytes) * 8;
  support::require(bit < bit_count(), name_ + ": bit index out of range");
  return meta_[bit / per_line].valid;
}

bool CacheArray::bit_in_dirty_line(std::uint64_t bit) const {
  const std::uint64_t per_line =
      2 + tag_bits_ + static_cast<std::uint64_t>(geometry_.line_bytes) * 8;
  support::require(bit < bit_count(), name_ + ": bit index out of range");
  const LineMeta& m = meta_[bit / per_line];
  return m.valid && m.dirty;
}

std::uint32_t CacheArray::valid_lines() const {
  std::uint32_t count = 0;
  for (const LineMeta& m : meta_) {
    if (m.valid) ++count;
  }
  return count;
}

void CacheArray::reset() {
  ++state_stamp_;
  if (AccessObserver* o = access_observer()) o->on_kill_all();
  std::fill(meta_.begin(), meta_.end(), LineMeta{});
  std::fill(data_.begin(), data_.end(), 0);
  std::fill(victim_ptr_.begin(), victim_ptr_.end(), 0);
  mark_all_dirty();
}

void CacheArray::mark_all_dirty() {
  std::fill(dirty_sets_.begin(), dirty_sets_.end(), ~0ull);
}

void CacheArray::clear_dirty_sets() {
  std::fill(dirty_sets_.begin(), dirty_sets_.end(), 0);
}

std::uint32_t CacheArray::dirty_set_count() const {
  std::uint32_t count = 0;
  const std::uint32_t sets = geometry_.sets();
  for (std::uint32_t set = 0; set < sets; ++set) {
    if (dirty_sets_[set / 64] & (1ull << (set % 64))) ++count;
  }
  return count;
}

std::uint64_t CacheArray::restore_from(const CacheArray& saved, bool delta) {
  require(geometry_.size_bytes == saved.geometry_.size_bytes &&
              geometry_.line_bytes == saved.geometry_.line_bytes &&
              geometry_.ways == saved.geometry_.ways,
          name_ + ": restore_from geometry mismatch");
  ++state_stamp_;
  std::uint64_t bytes = 0;
  if (!delta) {
    meta_ = saved.meta_;
    data_ = saved.data_;
    victim_ptr_ = saved.victim_ptr_;
    bytes = resident_bytes();
  } else {
    const std::uint32_t ways = geometry_.ways;
    const std::uint32_t line_bytes = geometry_.line_bytes;
    const std::uint32_t sets = geometry_.sets();
    const std::size_t set_bytes =
        static_cast<std::size_t>(ways) * line_bytes;
    for (std::uint32_t set = 0; set < sets; ++set) {
      if ((dirty_sets_[set / 64] & (1ull << (set % 64))) == 0) continue;
      const std::uint32_t first = line_index(set, 0);
      std::copy(saved.meta_.begin() + first,
                saved.meta_.begin() + first + ways, meta_.begin() + first);
      const std::size_t off = static_cast<std::size_t>(first) * line_bytes;
      std::copy(saved.data_.begin() + off,
                saved.data_.begin() + off + set_bytes, data_.begin() + off);
      victim_ptr_[set] = saved.victim_ptr_[set];
      bytes += set_bytes + ways * sizeof(LineMeta) + sizeof(std::uint32_t);
    }
  }
  clear_dirty_sets();
  return bytes;
}

std::uint64_t CacheArray::bit_count() const {
  const std::uint64_t per_line =
      2 + tag_bits_ + static_cast<std::uint64_t>(geometry_.line_bytes) * 8;
  return per_line * geometry_.lines();
}

void CacheArray::flip_bit(std::uint64_t bit) {
  require(bit < bit_count(), name_ + ": flip_bit out of range");
  ++state_stamp_;
  const std::uint64_t per_line =
      2 + tag_bits_ + static_cast<std::uint64_t>(geometry_.line_bytes) * 8;
  const auto line = static_cast<std::uint32_t>(bit / per_line);
  std::uint64_t offset = bit % per_line;
  mark_set(line / geometry_.ways);
  LineMeta& m = meta_[line];
  if (offset == 0) {
    m.valid = !m.valid;
    return;
  }
  if (offset == 1) {
    m.dirty = !m.dirty;
    return;
  }
  offset -= 2;
  if (offset < tag_bits_) {
    m.tag ^= 1u << offset;
    return;
  }
  offset -= tag_bits_;
  support::flip_bit(
      {data_.data() + static_cast<std::size_t>(line) * geometry_.line_bytes,
       geometry_.line_bytes},
      offset);
}

BitSite CacheArray::locate_bit(std::uint64_t bit) const {
  require(bit < bit_count(), name_ + ": locate_bit out of range");
  const std::uint64_t per_line = bits_per_line();
  const auto line = static_cast<std::uint32_t>(bit / per_line);
  const auto offset = static_cast<std::uint32_t>(bit % per_line);
  BitSite site;
  site.entry = line / geometry_.ways;
  site.way = line % geometry_.ways;
  site.bit = offset;
  if (offset == 0) {
    site.field = "valid";
  } else if (offset == 1) {
    site.field = "dirty";
  } else if (offset < 2 + tag_bits_) {
    site.field = "tag";
  } else {
    site.field = "data";
  }
  return site;
}

void CacheArray::on_arm_watch(std::uint64_t bit) {
  require(bit < bit_count(), name_ + ": arm_watch out of range");
  const std::uint64_t per_line = bits_per_line();
  const auto line = static_cast<std::uint32_t>(bit / per_line);
  const std::uint64_t offset = bit % per_line;
  if (offset < 2 + tag_bits_) {
    watch_set_ = line / geometry_.ways;
    watch_line_ = kNoWatch;
  } else {
    watch_set_ = kNoWatch;
    watch_line_ = line;
  }
}

void CacheArray::on_disarm_watch() {
  watch_set_ = kNoWatch;
  watch_line_ = kNoWatch;
}

}  // namespace sefi::microarch
