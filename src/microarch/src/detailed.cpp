#include "sefi/microarch/detailed.hpp"

#include <cstring>
#include <utility>

#include "sefi/support/error.hpp"

namespace sefi::microarch {

namespace {
using sim::AccessKind;
using sim::MemFault;
using sim::MemResult;

/// Whole-model snapshot: the arrays and predictor are plain value types,
/// so a copy captures every bit (including injected corruption).
struct DetailedState final : sim::OpaqueState {
  DetailedState(const CacheArray& l1i, const CacheArray& l1d,
                const CacheArray& l2, const Tlb& itlb, const Tlb& dtlb,
                const BranchPredictor& predictor,
                const sim::PerfCounters& counters, std::uint64_t extra)
      : l1i(l1i), l1d(l1d), l2(l2), itlb(itlb), dtlb(dtlb),
        predictor(predictor), counters(counters), extra_cycles(extra) {}

  CacheArray l1i, l1d, l2;
  Tlb itlb, dtlb;
  BranchPredictor predictor;
  sim::PerfCounters counters;
  std::uint64_t extra_cycles;

  std::uint64_t resident_bytes() const override {
    return l1i.resident_bytes() + l1d.resident_bytes() + l2.resident_bytes() +
           itlb.resident_bytes() + dtlb.resident_bytes() +
           predictor.resident_bytes() + sizeof(sim::PerfCounters) +
           sizeof(std::uint64_t);
  }
};

}  // namespace

DetailedModel::DetailedModel(const DetailedConfig& config,
                             sim::PhysicalMemory& mem,
                             sim::DeviceBlock& devices, PhysRegFile& regfile)
    : config_(config),
      mem_(mem),
      devices_(devices),
      regfile_(regfile),
      l1i_("L1I", config.l1i),
      l1d_("L1D", config.l1d),
      l2_("L2", config.l2),
      itlb_("ITLB", config.itlb_entries),
      dtlb_("DTLB", config.dtlb_entries) {
  support::require(config.l1i.line_bytes == config.l2.line_bytes &&
                       config.l1d.line_bytes == config.l2.line_bytes,
                   "DetailedModel: L1/L2 line sizes must match");
  line_buf_.resize(config.l2.line_bytes);
}

std::uint32_t DetailedModel::read_pte(std::uint32_t pte_addr) {
  // The walker must be coherent with the data cache: the kernel builds
  // and updates the page table through ordinary (write-back) stores, so
  // PTEs can live in dirty L1D lines. Walks therefore read through the
  // L1D hierarchy (without counting as program data accesses).
  std::uint64_t scratch_counter = 0;
  const int way = l1_ensure(l1d_, pte_addr, scratch_counter);
  const auto line = l1d_.line_data(pte_addr, way);
  const std::uint32_t offset = pte_addr & (config_.l1d.line_bytes - 1);
  std::uint32_t pte;
  std::memcpy(&pte, line.data() + offset, 4);
  return pte;
}

MemResult DetailedModel::translate(std::uint32_t va, AccessKind kind,
                                   bool kernel_mode, bool mmu_enabled,
                                   Tlb& tlb, std::uint64_t& miss_counter) {
  if (sim::DeviceBlock::contains(va)) {
    if (!kernel_mode) return {MemFault::kPermission, 0};
    if (kind == AccessKind::kFetch) return {MemFault::kUnmapped, 0};
    return {MemFault::kNone, va};
  }
  if (!sim::PhysicalMemory::in_ram(va, 1)) return {MemFault::kUnmapped, 0};
  if (!mmu_enabled) {
    if (!kernel_mode) return {MemFault::kPermission, 0};
    return {MemFault::kNone, va};
  }
  const std::uint32_t vpn = va >> sim::kPageShift;
  sim::Translation translation;
  if (const auto hit = tlb.lookup(vpn)) {
    translation = *hit;
  } else {
    ++miss_counter;
    extra_cycles_ += config_.walk_extra;
    const MemResult walk = sim::walk_page_table(
        vpn, [this](std::uint32_t pte_addr) { return read_pte(pte_addr); });
    if (!walk.ok()) return walk;
    translation.ppn = sim::pte::ppn(walk.data);
    translation.perms = static_cast<std::uint8_t>(walk.data & 0xe);
    tlb.insert(vpn, translation);
  }
  if (!sim::access_allowed(translation.perms, kind, kernel_mode)) {
    return {MemFault::kPermission, 0};
  }
  const std::uint32_t pa = (translation.ppn << sim::kPageShift) |
                           (va & (sim::kPageSize - 1));
  if (!sim::PhysicalMemory::in_ram(pa, 1)) return {MemFault::kUnmapped, 0};
  return {MemFault::kNone, pa};
}

void DetailedModel::writeback_to_ram(const EvictedLine& line) {
  if (!line.valid || !line.dirty) return;
  if (!sim::PhysicalMemory::in_ram(line.paddr, config_.l2.line_bytes)) {
    return;  // corrupted tag points nowhere; the bus drops the write
  }
  mem_.backdoor_write(line.paddr, line.data);
}

int DetailedModel::l2_ensure(std::uint32_t paddr) {
  int way = l2_.lookup(paddr);
  if (way >= 0) {
    extra_cycles_ += config_.l2_hit_extra;
    return way;
  }
  ++counters_.l2_misses;
  extra_cycles_ += config_.l2_hit_extra + config_.mem_extra;
  const std::uint32_t line_base = paddr & ~(config_.l2.line_bytes - 1);
  if (sim::PhysicalMemory::in_ram(line_base, config_.l2.line_bytes)) {
    const auto src = mem_.backdoor_read(line_base, config_.l2.line_bytes);
    std::copy(src.begin(), src.end(), line_buf_.begin());
  } else {
    std::fill(line_buf_.begin(), line_buf_.end(), 0);
  }
  way = l2_.pick_victim(paddr);
  const EvictedLine evicted = l2_.install(paddr, way, line_buf_);
  writeback_to_ram(evicted);
  return way;
}

void DetailedModel::push_line_to_l2(const EvictedLine& line) {
  if (!line.valid || !line.dirty) return;
  int way = l2_.lookup(line.paddr);
  if (way < 0) {
    // Write-allocate in L2: the L1 line is a full line, so no memory read
    // is needed to install it.
    way = l2_.pick_victim(line.paddr);
    const EvictedLine evicted = l2_.install(line.paddr, way, line.data);
    writeback_to_ram(evicted);
  } else {
    const auto dst = l2_.line_data(line.paddr, way);
    std::copy(line.data.begin(), line.data.end(), dst.begin());
  }
  l2_.mark_dirty(line.paddr, way);
}

int DetailedModel::l1_ensure(CacheArray& l1, std::uint32_t paddr,
                             std::uint64_t& miss_counter) {
  int way = l1.lookup(paddr);
  if (way >= 0) return way;
  ++miss_counter;
  const int l2_way = l2_ensure(paddr);
  const auto l2_line = l2_.line_data(paddr, l2_way);
  way = l1.pick_victim(paddr);
  const EvictedLine evicted = l1.install(paddr, way, l2_line);
  push_line_to_l2(evicted);
  return way;
}

MemResult DetailedModel::fetch(std::uint32_t va, bool kernel_mode,
                               bool mmu_enabled) {
  if (va % 4 != 0) return {MemFault::kUnaligned, 0};
  const MemResult tr = translate(va, AccessKind::kFetch, kernel_mode,
                                 mmu_enabled, itlb_, counters_.itlb_misses);
  if (!tr.ok()) return tr;
  const std::uint32_t pa = tr.data;
  const int way = l1_ensure(l1i_, pa, counters_.l1i_misses);
  const auto line = l1i_.line_data(pa, way);
  const std::uint32_t offset = pa & (config_.l1i.line_bytes - 1);
  std::uint32_t word;
  std::memcpy(&word, line.data() + offset, 4);
  return {MemFault::kNone, word};
}

namespace {

/// True while a forensics watch on `c` could still latch: armed and not
/// yet activated. Watches are one-shot (note_watch_hit is a no-op after
/// the first hit), so once activated a pure-hit read has no side effect
/// left to lose and the fetch fast path may resume mid-run.
template <typename Component>
bool watch_pending(const Component& c) {
  return c.watch_armed() && !c.watch_activated();
}

}  // namespace

std::uint64_t DetailedModel::ifetch_stamp() const {
  if (watch_pending(l1i_) || watch_pending(itlb_)) return 0;
  // Sum of two monotonic counters: non-decreasing, and strictly larger
  // after any I-side mutation not confined to one L1I set or one I-TLB
  // entry — an equal stamp proves that translation rules and whole-array
  // state are unchanged (fills and inserts are covered by the per-set
  // and per-entry stamps).
  return l1i_.state_stamp() + itlb_.state_stamp();
}

std::uint64_t DetailedModel::ifetch_set_stamp(std::uint32_t l1i_set) const {
  return l1i_.set_stamp(l1i_set);
}

std::uint64_t DetailedModel::ifetch_tlb_stamp(std::uint32_t itlb_entry) const {
  if (itlb_entry == FetchProof::kNoTlbEntry) return 0;  // MMU-off proofs
  return itlb_.entry_stamp(itlb_entry);
}

bool DetailedModel::ifetch_proof_ok(std::uint64_t stamp,
                                    std::uint32_t l1i_set,
                                    std::uint64_t set_stamp,
                                    std::uint32_t itlb_entry,
                                    std::uint64_t itlb_stamp) const {
  // Single-dispatch twin of the three accessors above, in hit-guard
  // evaluation order: global stamp (subsumes the watch gate — a pending
  // watch makes ifetch_stamp() read 0, which a nonzero stored stamp can
  // never equal), then per-set, then per-entry.
  if (stamp == 0 || stamp != ifetch_stamp()) return false;
  if (set_stamp != l1i_.set_stamp(l1i_set)) return false;
  if (itlb_entry == FetchProof::kNoTlbEntry) return itlb_stamp == 0;
  return itlb_stamp == itlb_.entry_stamp(itlb_entry);
}

bool DetailedModel::fetch_probe(std::uint32_t va, bool kernel_mode,
                                bool mmu_enabled, FetchProof* proof) {
  if (va % 4 != 0) return false;
  // While a watch is armed and unlatched, even a pure hit has a side
  // effect (latching the first-activation cycle); refuse so real fetches
  // keep running until the watch fires.
  if (watch_pending(l1i_) || watch_pending(itlb_)) return false;
  // Mirror translate()'s fault checks: any path that would fault or walk
  // is "not a pure hit" and falls back to fetch().
  if (sim::DeviceBlock::contains(va)) return false;
  if (!sim::PhysicalMemory::in_ram(va, 1)) return false;
  std::uint32_t pa = va;
  proof->itlb_entry = FetchProof::kNoTlbEntry;
  proof->itlb_stamp = 0;
  if (mmu_enabled) {
    sim::Translation hit;
    const int entry = itlb_.probe_entry(va >> sim::kPageShift, &hit);
    if (entry < 0) return false;
    if (!sim::access_allowed(hit.perms, AccessKind::kFetch, kernel_mode)) {
      return false;
    }
    pa = (hit.ppn << sim::kPageShift) | (va & (sim::kPageSize - 1));
    if (!sim::PhysicalMemory::in_ram(pa, 1)) return false;
    proof->itlb_entry = static_cast<std::uint32_t>(entry);
    proof->itlb_stamp = itlb_.entry_stamp(proof->itlb_entry);
  } else if (!kernel_mode) {
    return false;
  }
  const int way = std::as_const(l1i_).lookup(pa);
  if (way < 0) return false;
  // Const overload: no dirty-set marking. A skipped pure hit changes no
  // array contents, so leaving its set unmarked keeps delta restores
  // bit-identical (marks only widen what gets copied back).
  const auto line = std::as_const(l1i_).line_data(pa, way);
  std::uint32_t w = 0;
  std::memcpy(&w, line.data() + (pa & (config_.l1i.line_bytes - 1)), 4);
  proof->word = w;
  proof->l1i_set = l1i_.set_index(pa);
  proof->l1i_set_stamp = l1i_.set_stamp(proof->l1i_set);
  return true;
}

MemResult DetailedModel::read(std::uint32_t va, unsigned size,
                              bool kernel_mode, bool mmu_enabled) {
  if (va % size != 0) return {MemFault::kUnaligned, 0};
  const MemResult tr = translate(va, AccessKind::kLoad, kernel_mode,
                                 mmu_enabled, dtlb_, counters_.dtlb_misses);
  if (!tr.ok()) return tr;
  const std::uint32_t pa = tr.data;
  if (sim::DeviceBlock::contains(pa)) {
    extra_cycles_ += config_.mmio_extra;
    return {MemFault::kNone, devices_.read(pa)};
  }
  ++counters_.l1d_accesses;
  const int way = l1_ensure(l1d_, pa, counters_.l1d_misses);
  const auto line = l1d_.line_data(pa, way);
  const std::uint32_t offset = pa & (config_.l1d.line_bytes - 1);
  std::uint32_t value = 0;
  std::memcpy(&value, line.data() + offset, size);
  return {MemFault::kNone, value};
}

MemFault DetailedModel::write(std::uint32_t va, unsigned size,
                              std::uint32_t value, bool kernel_mode,
                              bool mmu_enabled) {
  if (va % size != 0) return MemFault::kUnaligned;
  const MemResult tr = translate(va, AccessKind::kStore, kernel_mode,
                                 mmu_enabled, dtlb_, counters_.dtlb_misses);
  if (!tr.ok()) return tr.fault;
  const std::uint32_t pa = tr.data;
  if (sim::DeviceBlock::contains(pa)) {
    extra_cycles_ += config_.mmio_extra;
    devices_.write(pa, value);
    return MemFault::kNone;
  }
  ++counters_.l1d_accesses;
  const int way = l1_ensure(l1d_, pa, counters_.l1d_misses);
  const auto line = l1d_.line_data(pa, way);
  const std::uint32_t offset = pa & (config_.l1d.line_bytes - 1);
  std::memcpy(line.data() + offset, &value, size);
  l1d_.mark_dirty(pa, way);
  return MemFault::kNone;
}

void DetailedModel::on_branch(std::uint32_t pc, bool taken,
                              std::uint32_t target) {
  ++counters_.branches;
  // Direction through the bimodal table, target through the BTB; either
  // miss flushes the front end.
  const bool direction_miss = predictor_.conditional(pc, taken);
  bool target_miss = false;
  if (taken) target_miss = predictor_.indirect(pc, target);
  if (direction_miss || target_miss) {
    ++counters_.branch_misses;
    extra_cycles_ += config_.mispredict_penalty;
  }
}

std::uint64_t DetailedModel::drain_extra_cycles() {
  const std::uint64_t cycles = extra_cycles_;
  extra_cycles_ = 0;
  return cycles;
}

void DetailedModel::reset() {
  l1i_.reset();
  l1d_.reset();
  l2_.reset();
  itlb_.reset();
  dtlb_.reset();
  predictor_.reset();
  counters_ = sim::PerfCounters{};
  extra_cycles_ = 0;
}

void DetailedModel::flush_tlbs() {
  itlb_.reset();
  dtlb_.reset();
}

std::unique_ptr<sim::OpaqueState> DetailedModel::save_state() const {
  return std::make_unique<DetailedState>(l1i_, l1d_, l2_, itlb_, dtlb_,
                                         predictor_, counters_,
                                         extra_cycles_);
}

void DetailedModel::restore_state(const sim::OpaqueState& state) {
  const auto* typed = dynamic_cast<const DetailedState*>(&state);
  support::require(typed != nullptr,
                   "DetailedModel: snapshot from a different model");
  support::require(typed->l1i.bit_count() == l1i_.bit_count() &&
                       typed->l1d.bit_count() == l1d_.bit_count() &&
                       typed->l2.bit_count() == l2_.bit_count() &&
                       typed->itlb.bit_count() == itlb_.bit_count() &&
                       typed->dtlb.bit_count() == dtlb_.bit_count(),
                   "DetailedModel: snapshot from a different geometry");
  l1i_ = typed->l1i;
  l1d_ = typed->l1d;
  l2_ = typed->l2;
  itlb_ = typed->itlb;
  dtlb_ = typed->dtlb;
  predictor_ = typed->predictor;
  counters_ = typed->counters;
  extra_cycles_ = typed->extra_cycles;
  // operator= replaced the live dirty maps with the ones captured at save
  // time; no delta baseline survives a plain restore, so stay conservative.
  l1i_.mark_all_dirty();
  l1d_.mark_all_dirty();
  l2_.mark_all_dirty();
  itlb_.mark_all_dirty();
  dtlb_.mark_all_dirty();
}

std::uint64_t DetailedModel::restore_state_counted(
    const sim::OpaqueState& state, bool delta) {
  const auto* typed = dynamic_cast<const DetailedState*>(&state);
  support::require(typed != nullptr,
                   "DetailedModel: snapshot from a different model");
  // Check every geometry before touching any array, so a mismatched
  // snapshot throws without leaving the model half-restored.
  support::require(typed->l1i.bit_count() == l1i_.bit_count() &&
                       typed->l1d.bit_count() == l1d_.bit_count() &&
                       typed->l2.bit_count() == l2_.bit_count() &&
                       typed->itlb.bit_count() == itlb_.bit_count() &&
                       typed->dtlb.bit_count() == dtlb_.bit_count(),
                   "DetailedModel: snapshot from a different geometry");
  std::uint64_t bytes = 0;
  bytes += l1i_.restore_from(typed->l1i, delta);
  bytes += l1d_.restore_from(typed->l1d, delta);
  bytes += l2_.restore_from(typed->l2, delta);
  bytes += itlb_.restore_from(typed->itlb, delta);
  bytes += dtlb_.restore_from(typed->dtlb, delta);
  // Small timing-only state: always copied in full.
  predictor_ = typed->predictor;
  counters_ = typed->counters;
  extra_cycles_ = typed->extra_cycles;
  bytes += predictor_.resident_bytes() + sizeof(sim::PerfCounters) +
           sizeof(std::uint64_t);
  return bytes;
}

void DetailedModel::invalidate_range(std::uint32_t addr, std::uint32_t size) {
  l1i_.invalidate_range(addr, size);
  l1d_.invalidate_range(addr, size);
  l2_.invalidate_range(addr, size);
}

InjectableComponent& DetailedModel::component(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kL1I: return l1i_;
    case ComponentKind::kL1D: return l1d_;
    case ComponentKind::kL2: return l2_;
    case ComponentKind::kRegFile: return regfile_;
    case ComponentKind::kITlb: return itlb_;
    case ComponentKind::kDTlb: return dtlb_;
  }
  throw support::SefiError("component: invalid kind");
}

sim::Machine make_detailed_machine(const DetailedConfig& config) {
  auto regfile = std::make_unique<PhysRegFile>(config.phys_regs);
  PhysRegFile* regfile_raw = regfile.get();
  return sim::Machine(
      [&config, regfile_raw](sim::PhysicalMemory& mem,
                             sim::DeviceBlock& devices) {
        return std::make_unique<DetailedModel>(config, mem, devices,
                                               *regfile_raw);
      },
      std::move(regfile));
}

DetailedModel& detailed_model(sim::Machine& machine) {
  auto* model = dynamic_cast<DetailedModel*>(&machine.uarch());
  support::require(model != nullptr,
                   "detailed_model: machine does not use the detailed model");
  return *model;
}

}  // namespace sefi::microarch
