#include "sefi/microarch/regfile.hpp"

#include "sefi/support/error.hpp"

namespace sefi::microarch {

PhysRegFile::PhysRegFile(unsigned num_phys, unsigned num_arch) {
  support::require(num_phys > num_arch,
                   "PhysRegFile: need more physical than architectural regs");
  regs_.assign(num_phys, 0);
  map_.resize(num_arch);
  mapped_.assign(num_phys, false);
  dirty_regs_.assign((num_phys + 63) / 64, 0);
  reset();
}

std::uint32_t PhysRegFile::read(unsigned arch_reg) {
  const std::uint32_t phys = map_[arch_reg];
  if (phys == watch_phys_) note_watch_hit();
  if (AccessObserver* o = access_observer()) o->on_region_read(phys);
  return regs_[phys];
}

void PhysRegFile::write(unsigned arch_reg, std::uint32_t value) {
  // Allocate the next free physical register (rotating, deterministic).
  std::uint32_t candidate = next_alloc_;
  while (mapped_[candidate]) {
    candidate = (candidate + 1) % regs_.size();
  }
  next_alloc_ = (candidate + 1) % regs_.size();
  mapped_[map_[arch_reg]] = false;  // retire old mapping
  map_[arch_reg] = candidate;
  mapped_[candidate] = true;
  regs_[candidate] = value;
  mark_reg(candidate);
  // The allocated register is overwritten without being consulted; the
  // retired one simply gets no further reads until its own realloc.
  if (AccessObserver* o = access_observer()) o->on_region_kill(candidate);
}

void PhysRegFile::reset() {
  if (AccessObserver* o = access_observer()) o->on_kill_all();
  std::fill(regs_.begin(), regs_.end(), 0);
  std::fill(mapped_.begin(), mapped_.end(), false);
  for (std::uint32_t i = 0; i < map_.size(); ++i) {
    map_[i] = i;
    mapped_[i] = true;
  }
  next_alloc_ = static_cast<std::uint32_t>(map_.size());
  mark_all_dirty();
}

void PhysRegFile::mark_all_dirty() {
  std::fill(dirty_regs_.begin(), dirty_regs_.end(), ~0ull);
}

unsigned PhysRegFile::dirty_reg_count() const {
  unsigned count = 0;
  for (std::size_t phys = 0; phys < regs_.size(); ++phys) {
    if (dirty_regs_[phys / 64] & (1ull << (phys % 64))) ++count;
  }
  return count;
}

namespace {
struct PhysRegFileState final : sim::OpaqueState {
  std::vector<std::uint32_t> regs;
  std::vector<std::uint32_t> map;
  std::vector<bool> mapped;
  std::uint32_t next_alloc = 0;

  std::uint64_t resident_bytes() const override {
    return regs.size() * sizeof(std::uint32_t) +
           map.size() * sizeof(std::uint32_t) + mapped.size() / 8 +
           sizeof(std::uint32_t);
  }
};
}  // namespace

std::unique_ptr<sim::OpaqueState> PhysRegFile::save_state() const {
  auto state = std::make_unique<PhysRegFileState>();
  state->regs = regs_;
  state->map = map_;
  state->mapped = mapped_;
  state->next_alloc = next_alloc_;
  return state;
}

void PhysRegFile::restore_state(const sim::OpaqueState& state) {
  const auto* typed = dynamic_cast<const PhysRegFileState*>(&state);
  support::require(typed != nullptr && typed->regs.size() == regs_.size(),
                   "PhysRegFile: snapshot from a different model");
  regs_ = typed->regs;
  map_ = typed->map;
  mapped_ = typed->mapped;
  next_alloc_ = typed->next_alloc;
  // No baseline is established by a plain restore; stay conservative.
  mark_all_dirty();
}

std::uint64_t PhysRegFile::restore_state_counted(const sim::OpaqueState& state,
                                                 bool delta) {
  const auto* typed = dynamic_cast<const PhysRegFileState*>(&state);
  support::require(typed != nullptr && typed->regs.size() == regs_.size(),
                   "PhysRegFile: snapshot from a different model");
  // The rename map, free list, and cursor are a few hundred bytes; copy
  // them unconditionally. Only the 32-bit value array is delta-tracked.
  map_ = typed->map;
  mapped_ = typed->mapped;
  next_alloc_ = typed->next_alloc;
  std::uint64_t bytes = map_.size() * sizeof(std::uint32_t) +
                        mapped_.size() / 8 + sizeof(std::uint32_t);
  if (!delta) {
    regs_ = typed->regs;
    bytes += regs_.size() * sizeof(std::uint32_t);
  } else {
    for (std::size_t phys = 0; phys < regs_.size(); ++phys) {
      if ((dirty_regs_[phys / 64] & (1ull << (phys % 64))) == 0) continue;
      regs_[phys] = typed->regs[phys];
      bytes += sizeof(std::uint32_t);
    }
  }
  std::fill(dirty_regs_.begin(), dirty_regs_.end(), 0);
  return bytes;
}

std::uint64_t PhysRegFile::bit_count() const {
  return static_cast<std::uint64_t>(regs_.size()) * 32;
}

void PhysRegFile::flip_bit(std::uint64_t bit) {
  support::require(bit < bit_count(), "PhysRegFile: flip_bit out of range");
  regs_[bit / 32] ^= 1u << (bit % 32);
  mark_reg(bit / 32);
}

BitSite PhysRegFile::locate_bit(std::uint64_t bit) const {
  support::require(bit < bit_count(),
                   "PhysRegFile: locate_bit out of range");
  BitSite site;
  site.entry = static_cast<std::uint32_t>(bit / 32);
  site.bit = static_cast<std::uint32_t>(bit % 32);
  site.field = "reg";
  return site;
}

void PhysRegFile::on_arm_watch(std::uint64_t bit) {
  support::require(bit < bit_count(),
                   "PhysRegFile: arm_watch out of range");
  watch_phys_ = static_cast<std::uint32_t>(bit / 32);
}

void PhysRegFile::on_disarm_watch() { watch_phys_ = kNoWatch; }

}  // namespace sefi::microarch
