// Error handling policy for SEFI.
//
// Programmer errors (API misuse, violated invariants) throw SefiError, which
// carries a human-readable message. Expected runtime conditions inside the
// simulated machine (guest faults, crashes, timeouts) are modeled as values,
// never as host exceptions — a guest crash is data, not an error.
#pragma once

#include <stdexcept>
#include <string>

namespace sefi::support {

class SefiError : public std::runtime_error {
 public:
  explicit SefiError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Throws SefiError with `message` if `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw SefiError(message);
}

}  // namespace sefi::support
