// Stable 64-bit hashing for golden-output comparison.
//
// SDC detection compares the hash of a run's architectural output stream
// against the golden run's hash; the hash must therefore be stable across
// platforms and compiler versions, which FNV-1a is.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace sefi::support {

inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Incremental FNV-1a hasher over bytes.
class Fnv1a {
 public:
  constexpr void update(std::uint8_t byte) noexcept {
    hash_ = (hash_ ^ byte) * kFnvPrime;
  }

  void update(std::span<const std::uint8_t> bytes) noexcept {
    for (auto b : bytes) update(b);
  }

  void update(std::string_view text) noexcept {
    for (char c : text) update(static_cast<std::uint8_t>(c));
  }

  constexpr std::uint64_t digest() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffsetBasis;
};

/// One-shot hash of a byte span.
std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept;

/// One-shot hash of a string.
std::uint64_t fnv1a(std::string_view text) noexcept;

}  // namespace sefi::support
