// Small bit-manipulation helpers used by the ISA encoder/decoder and the
// bit-accurate SRAM array models.
#pragma once

#include <cstdint>
#include <span>

namespace sefi::support {

/// Extracts bits [lo, lo+width) of `value` (width in 1..32).
constexpr std::uint32_t extract_bits(std::uint32_t value, unsigned lo,
                                     unsigned width) noexcept {
  const std::uint32_t mask =
      width >= 32 ? 0xffffffffu : ((1u << width) - 1u);
  return (value >> lo) & mask;
}

/// Inserts the low `width` bits of `field` into bits [lo, lo+width) of
/// `value`, returning the result.
constexpr std::uint32_t insert_bits(std::uint32_t value, unsigned lo,
                                    unsigned width,
                                    std::uint32_t field) noexcept {
  const std::uint32_t mask =
      (width >= 32 ? 0xffffffffu : ((1u << width) - 1u)) << lo;
  return (value & ~mask) | ((field << lo) & mask);
}

/// Sign-extends the low `width` bits of `value` to 32 bits.
constexpr std::int32_t sign_extend(std::uint32_t value,
                                   unsigned width) noexcept {
  const std::uint32_t shift = 32 - width;
  return static_cast<std::int32_t>(value << shift) >> shift;
}

/// True if `value` is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t value) noexcept {
  unsigned n = 0;
  while (value > 1) {
    value >>= 1;
    ++n;
  }
  return n;
}

/// Flips bit `bit` (0 = LSB) within a byte-addressed buffer.
/// `bit` indexes the buffer as a flat little-endian bit vector.
void flip_bit(std::span<std::uint8_t> bytes, std::uint64_t bit) noexcept;

/// Reads bit `bit` of a flat little-endian bit vector.
bool test_bit(std::span<const std::uint8_t> bytes, std::uint64_t bit) noexcept;

}  // namespace sefi::support
