// Small string/formatting helpers shared by the report renderers and CLIs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sefi::support {

/// Formats a double with `digits` significant digits, trimming trailing
/// zeros ("1.2", "0.034", "287").
std::string format_sig(double value, int digits = 3);

/// Formats in scientific notation with 2 decimals ("2.76e-05").
std::string format_sci(double value);

/// Left-pads `text` with spaces to `width`.
std::string pad_left(const std::string& text, std::size_t width);

/// Right-pads `text` with spaces to `width`.
std::string pad_right(const std::string& text, std::size_t width);

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(const std::string& text, char sep);

}  // namespace sefi::support
