// Crash-safe file I/O primitives.
//
// The result cache (and any future on-disk artifact) must survive two
// hazards: a killed process mid-write, and two processes publishing the
// same path concurrently. Both are solved the classic way — write the
// whole payload to a process-unique temp sibling, then publish it with
// one atomic rename(2). Readers either see the old complete file or the
// new complete file, never a torn mixture; concurrent same-path writers
// resolve to last-rename-wins.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace sefi::support {

/// Reads a whole file as bytes. std::nullopt when the file cannot be
/// opened or a read error occurs (never a partial payload).
std::optional<std::string> read_file(const std::string& path);

/// Atomically publishes `payload` at `path`: writes a unique temp
/// sibling (`<path>.tmp-<pid>-<seq>`), checks every stream operation,
/// then renames over `path`. Returns false on any failure — the temp
/// file is removed and `path` is left untouched (its previous content,
/// if any, stays intact).
bool write_file_atomic(const std::string& path, std::string_view payload);

/// Name a write_file_atomic temp sibling would use (exposed so cache
/// scans can recognize and garbage-collect stale temps from killed
/// processes). A file is a temp sibling iff its name contains this
/// infix.
inline constexpr std::string_view kTempInfix = ".tmp-";

}  // namespace sefi::support
