// Crash-safe file I/O primitives.
//
// The result cache (and any future on-disk artifact) must survive two
// hazards: a killed process mid-write, and two processes publishing the
// same path concurrently. Both are solved the classic way — write the
// whole payload to a process-unique temp sibling, fsync it, publish it
// with one atomic rename(2), then fsync the parent directory so the
// rename itself is durable. Readers either see the old complete file or
// the new complete file, never a torn mixture; concurrent same-path
// writers resolve to last-rename-wins.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace sefi::support {

/// Reads a whole file as bytes. std::nullopt when the file cannot be
/// opened or a read error occurs (never a partial payload).
std::optional<std::string> read_file(const std::string& path);

/// Atomically and durably publishes `payload` at `path`: writes a
/// unique temp sibling (`<path>.tmp-<pid>-<seq>`), fsyncs it, renames
/// over `path`, then fsyncs the parent directory so a power loss after
/// return cannot roll the rename back to a zero-length or stale file.
/// Returns false on any failure — the temp file is removed and `path`
/// is left untouched (its previous content, if any, stays intact).
///
/// Durability knob: `SEFI_FSYNC=off` (or set_fsync(false)) skips both
/// fsync calls — atomicity against a killed *process* is preserved (the
/// rename is still all-or-nothing) but durability against a killed
/// *machine* is not. Tests that churn thousands of cache entries use it
/// to stay fast; production leaves it on (the default).
bool write_file_atomic(const std::string& path, std::string_view payload);

/// Programmatic override of the SEFI_FSYNC knob (process-wide).
/// Pass std::nullopt to fall back to the environment again.
void set_fsync(std::optional<bool> enabled);

/// Whether write_file_atomic will fsync on the next call (override if
/// set, else SEFI_FSYNC, else on).
bool fsync_enabled();

/// Name a write_file_atomic temp sibling would use (exposed so cache
/// scans can recognize and garbage-collect stale temps from killed
/// processes). A file is a temp sibling iff its name contains this
/// infix.
inline constexpr std::string_view kTempInfix = ".tmp-";

}  // namespace sefi::support
