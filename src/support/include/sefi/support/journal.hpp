// Append-only, checksummed task journal for crash-safe campaign resume.
//
// A campaign is a list of independent tasks addressed by index. The
// journal persists one record per *completed* task as the campaign runs,
// so a process killed mid-campaign loses only in-flight work: on restart
// the journal replays the finished indices and the executor schedules
// the rest. Durability model (mirrors the result cache, DESIGN.md §10):
//
//   - records are framed with a length prefix and an FNV-1a checksum
//     footer (the support::seal footer format), so a torn append — the
//     process died inside fwrite — is detected byte-exactly;
//   - on open, the file is scanned front to back and truncated to its
//     longest valid record prefix (the torn tail is discarded, never
//     parsed);
//   - the first record is a header naming the campaign identity; a
//     header mismatch (different campaign, older journal format, config
//     change) discards the whole file and starts fresh — a stale
//     journal can only cost recomputation, never wrong results;
//   - appends are flushed to the kernel per record, so a SIGKILL after
//     record() returns never loses that record (power loss can — the
//     journal trades fsync cost for "kill-safe", which is what campaign
//     interruption and CI actually exercise).
//
// record() is safe to call from any number of threads.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace sefi::support {

class TaskJournal {
 public:
  /// What a journal file on disk contains (read-only peek; never
  /// truncates or rewrites — see the constructor for that).
  struct Status {
    bool present = false;       ///< file exists and leads with a valid header
    std::string header;         ///< header payload ("" when absent)
    std::uint64_t records = 0;  ///< intact task records
    std::uint64_t torn_bytes = 0;  ///< trailing bytes no record claims
    /// Last payload recorded per index (re-records overwrite, matching
    /// replay semantics). Lets status commands decode outcome and
    /// telemetry records without reopening the journal for writing.
    std::map<std::uint64_t, std::string> entries;
  };

  /// Opens (creating parent directories as needed) and loads `path`.
  /// Existing intact records whose header matches `header` are replayed
  /// into the lookup map; a torn tail is truncated off the file; a
  /// missing/mismatched header discards the file and starts fresh.
  TaskJournal(std::string path, std::string header);
  ~TaskJournal();

  TaskJournal(const TaskJournal&) = delete;
  TaskJournal& operator=(const TaskJournal&) = delete;

  const std::string& path() const { return path_; }
  const std::string& header() const { return header_; }

  /// Number of records replayed from disk at open time.
  std::size_t replayed() const { return replayed_; }

  /// Payload journaled for `index`, or nullptr when the task has no
  /// record. Pointers stay valid for the journal's lifetime.
  const std::string* lookup(std::uint64_t index) const;

  /// Appends one sealed record and flushes it. Re-recording an index
  /// overwrites the lookup entry (last record wins on replay, matching
  /// the append order). Returns false when the write failed — the
  /// campaign continues, it just cannot resume past this task.
  bool record(std::uint64_t index, std::string_view payload);

  /// Closes and deletes the journal file (a completed campaign's
  /// journal has served its purpose once the result is published).
  bool remove();

  /// Read-only inspection of a journal file (for status commands).
  static Status inspect(const std::string& path);

 private:
  bool ensure_open_locked();

  std::string path_;
  std::string header_;
  std::map<std::uint64_t, std::string> entries_;
  std::size_t replayed_ = 0;
  mutable std::mutex mutex_;
  std::FILE* file_ = nullptr;
};

}  // namespace sefi::support
