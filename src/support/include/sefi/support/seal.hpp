// Checksummed payload framing ("sealing").
//
// A sealed payload is the payload bytes followed by one footer line:
//
//   fnv1a <16 lowercase hex digits>\n
//
// where the digest covers every byte before the footer. unseal() only
// returns a payload when the footer parses exactly AND the digest
// matches, so truncation at any byte offset, a flipped bit, or an
// unsealed legacy file all read as "not a valid payload" instead of
// parsing into garbage. The framing is content-agnostic — the cache
// seals serialized results, but any text artifact can use it.
#pragma once

#include <optional>
#include <string>

namespace sefi::support {

/// Appends the checksum footer line to `payload`.
std::string seal(std::string payload);

/// Verifies and strips the footer. std::nullopt when the footer is
/// missing, malformed, or its digest does not match the body.
std::optional<std::string> unseal(const std::string& sealed);

}  // namespace sefi::support
