// Cached, strictly-parsed environment-knob access.
//
// Every SEFI_* knob goes through here instead of raw std::getenv +
// ad-hoc strtoull calls: one lookup per variable per process (the first
// read snapshots the value under a mutex), one parser with one
// malformed-value policy (fall back, never half-parse), and one place
// for tests to reset the snapshot after mutating the environment with
// ::setenv (`refresh()`).
//
// Deliberately NOT cached: SEFI_CACHE_DIR. The CLI and bench binaries
// do a check-then-setenv dance on it before the first campaign, and
// tests point it at per-case temp directories many times per process;
// a first-read-wins cache would quietly pin the first directory. It
// stays on std::getenv at its call sites.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sefi::support::env {

/// Parses `name` as a base-10 u64. Returns `fallback` when the variable
/// is unset, empty, or malformed — malformed meaning anything but an
/// optionally-whitespace-padded run of digits that fits in 64 bits
/// ("12x", "-1", "0x10", and overflow all fall back; strtoull would
/// have accepted the first three).
std::uint64_t u64(const char* name, std::uint64_t fallback);

/// Parses `name` as a boolean: "1"/"true"/"on"/"yes" are true,
/// "0"/"false"/"off"/"no" are false (both case-insensitive). Unset,
/// empty, or anything else returns `fallback`.
bool flag(const char* name, bool fallback);

/// Returns the variable's raw value, or `fallback` when unset.
/// (Empty-but-set returns the empty string: "SEFI_CACHE_DIR= " style
/// explicit disables must stay distinguishable from unset.)
std::string str(const char* name, const std::string& fallback);

/// Returns the raw value, or nullopt when unset. The cached primitive
/// the typed accessors above are built on.
std::optional<std::string> raw(const char* name);

/// Drops the whole snapshot cache so the next read of every variable
/// hits the real environment again. Tests call this after ::setenv /
/// ::unsetenv; production code never needs it.
void refresh();

}  // namespace sefi::support::env
