// Deterministic pseudo-random number generation for reproducible campaigns.
//
// Every statistical campaign in SEFI (fault injection, beam simulation,
// workload input generation) derives all randomness from a single 64-bit
// seed through these generators, so identical seeds produce bit-identical
// reports across runs and platforms.
#pragma once

#include <cstdint>
#include <limits>

namespace sefi::support {

/// The SplitMix64 finalizer: a full-avalanche 64-bit mixer (every output
/// bit depends on every input bit). Building block for stream derivation.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives the seed of an independent substream `stream` of `root`.
/// Distinct (root, stream) pairs land in decorrelated seed-space regions:
/// the Weyl increment separates nearby stream indices before the mixer
/// avalanches them, so sequential indices do not produce correlated
/// generators (the failure mode of additive/xor-only derivations).
constexpr std::uint64_t derive_stream_seed(std::uint64_t root,
                                           std::uint64_t stream) noexcept {
  return mix64(root + 0x9e3779b97f4a7c15ULL * (stream + 1));
}

/// SplitMix64: used to expand a user seed into generator state and to derive
/// independent per-task substreams. Passes BigCrush when used as intended.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    return mix64(state_ += 0x9e3779b97f4a7c15ULL);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. Small, fast, high quality.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64,
  /// per the generator authors' recommendation.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  /// Uses Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Derive an independent substream generator for task `index`.
  /// Streams derived from distinct indices are statistically independent.
  Xoshiro256 fork(std::uint64_t index) const noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Samples from a Poisson distribution with mean `lambda`.
/// Knuth's method below a threshold, normal approximation with rejection
/// (PTRS-like transformed rejection) above it. Deterministic given `rng`.
std::uint64_t poisson_sample(Xoshiro256& rng, double lambda);

/// Samples a standard exponential variate (mean 1).
double exponential_sample(Xoshiro256& rng);

}  // namespace sefi::support
