#include "sefi/support/bits.hpp"

namespace sefi::support {

void flip_bit(std::span<std::uint8_t> bytes, std::uint64_t bit) noexcept {
  bytes[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
}

bool test_bit(std::span<const std::uint8_t> bytes,
              std::uint64_t bit) noexcept {
  return (bytes[bit >> 3] >> (bit & 7)) & 1u;
}

}  // namespace sefi::support
