#include "sefi/support/strings.hpp"

#include <sstream>

namespace sefi::support {

std::string format_sig(double value, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_sci(double value) {
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(2);
  os << value;
  return os.str();
}

std::string pad_left(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(const std::string& text, std::size_t width) {
  if (text.size() >= width) return text;
  return text + std::string(width - text.size(), ' ');
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

}  // namespace sefi::support
