#include "sefi/support/seal.hpp"

#include <cstdio>

#include "sefi/support/hash.hpp"

namespace sefi::support {

namespace {

constexpr std::string_view kFooterPrefix = "fnv1a ";
constexpr std::size_t kHexDigits = 16;
// "fnv1a " + 16 hex digits + '\n'.
constexpr std::size_t kFooterSize = 6 + kHexDigits + 1;

std::string format_digest(std::uint64_t digest) {
  char buf[kHexDigits + 1];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf, kHexDigits);
}

/// Parses exactly 16 lowercase hex digits; nullopt on anything else.
std::optional<std::uint64_t> parse_digest(std::string_view hex) {
  if (hex.size() != kHexDigits) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return std::nullopt;
    }
  }
  return value;
}

}  // namespace

std::string seal(std::string payload) {
  const std::uint64_t digest = fnv1a(payload);
  payload += kFooterPrefix;
  payload += format_digest(digest);
  payload += '\n';
  return payload;
}

std::optional<std::string> unseal(const std::string& sealed) {
  if (sealed.size() < kFooterSize || sealed.back() != '\n') {
    return std::nullopt;
  }
  const std::size_t body_size = sealed.size() - kFooterSize;
  const std::string_view footer(sealed.data() + body_size, kFooterSize);
  if (footer.substr(0, kFooterPrefix.size()) != kFooterPrefix) {
    return std::nullopt;
  }
  const auto digest = parse_digest(footer.substr(kFooterPrefix.size(),
                                                 kHexDigits));
  if (!digest) return std::nullopt;
  const std::string_view body(sealed.data(), body_size);
  if (fnv1a(body) != *digest) return std::nullopt;
  return std::string(body);
}

}  // namespace sefi::support
