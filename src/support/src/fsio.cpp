#include "sefi/support/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <mutex>

#include "sefi/support/env.hpp"

namespace sefi::support {
namespace {

// Process-wide programmatic override of SEFI_FSYNC. -1 = defer to the
// environment, 0/1 = forced off/on. Tests flip this instead of racing
// setenv against other threads.
std::atomic<int> g_fsync_override{-1};

// Full fd-based write: open, write all bytes (retrying short writes and
// EINTR), optionally fsync, close. Returns false on any failure.
bool write_all(const std::string& temp, std::string_view payload,
               bool do_fsync) {
  int fd = -1;
  do {
    fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;

  const char* data = payload.data();
  std::size_t left = payload.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  if (do_fsync && ::fsync(fd) != 0) {
    ::close(fd);
    return false;
  }
  return ::close(fd) == 0;
}

// fsync the directory containing `path` so the rename that just
// happened inside it survives a power loss. Failure here is reported:
// the entry exists but its durability promise is broken.
bool fsync_parent_dir(const std::string& path) {
  std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (parent.empty()) parent = ".";
  int fd = -1;
  do {
    fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  // istreambuf iteration (rather than `os << in.rdbuf()`) so an empty
  // file reads as an empty payload, not a stream failure.
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return data;
}

void set_fsync(std::optional<bool> enabled) {
  g_fsync_override.store(enabled ? (*enabled ? 1 : 0) : -1,
                         std::memory_order_relaxed);
}

bool fsync_enabled() {
  const int forced = g_fsync_override.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  return env::flag("SEFI_FSYNC", true);
}

bool write_file_atomic(const std::string& path, std::string_view payload) {
  // pid + per-process counter makes the temp name unique across every
  // concurrent writer, so no two stores ever share a temp file.
  static std::atomic<std::uint64_t> sequence{0};
  std::string temp = path;
  temp += kTempInfix;
  temp += std::to_string(static_cast<long long>(::getpid()));
  temp += '-';
  temp += std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));

  const auto discard = [&temp] {
    std::error_code ec;
    std::filesystem::remove(temp, ec);
    return false;
  };

  const bool do_fsync = fsync_enabled();
  if (!write_all(temp, payload, do_fsync)) return discard();

  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) return discard();

  // The rename is only durable once the directory entry itself is on
  // disk; without this a crash can resurrect the old file — or, on a
  // fresh path, no file at all — after the caller was told "published".
  if (do_fsync && !fsync_parent_dir(path)) return false;
  return true;
}

}  // namespace sefi::support
