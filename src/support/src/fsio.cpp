#include "sefi/support/fsio.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>

namespace sefi::support {

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  // istreambuf iteration (rather than `os << in.rdbuf()`) so an empty
  // file reads as an empty payload, not a stream failure.
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return data;
}

bool write_file_atomic(const std::string& path, std::string_view payload) {
  // pid + per-process counter makes the temp name unique across every
  // concurrent writer, so no two stores ever share a temp file.
  static std::atomic<std::uint64_t> sequence{0};
  std::string temp = path;
  temp += kTempInfix;
  temp += std::to_string(static_cast<long long>(::getpid()));
  temp += '-';
  temp += std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));

  const auto discard = [&temp] {
    std::error_code ec;
    std::filesystem::remove(temp, ec);
    return false;
  };

  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    out.flush();
    out.close();
    if (out.fail()) return discard();
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) return discard();
  return true;
}

}  // namespace sefi::support
