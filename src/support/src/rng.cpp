#include "sefi/support/rng.hpp"

#include <cmath>

namespace sefi::support {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply-shift with rejection in the biased zone.
  std::uint64_t x = next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Xoshiro256 Xoshiro256::fork(std::uint64_t index) const noexcept {
  // Mix the current state with the stream index through SplitMix64 to get
  // a decorrelated child seed.
  SplitMix64 sm(s_[0] ^ (s_[3] + 0x9e3779b97f4a7c15ULL * (index + 1)));
  return Xoshiro256(sm.next());
}

double exponential_sample(Xoshiro256& rng) {
  // Inverse CDF; guard against log(0).
  double u = rng.uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u);
}

std::uint64_t poisson_sample(Xoshiro256& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: count exponential arrivals within one unit interval.
    const double limit = std::exp(-lambda);
    double product = rng.uniform01();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= rng.uniform01();
    }
    return count;
  }
  // Normal approximation with continuity correction, rejecting negatives.
  // Adequate for campaign-scale lambdas (counting statistics dominate).
  for (;;) {
    const double u1 = rng.uniform01();
    const double u2 = rng.uniform01();
    double u = u1;
    if (u <= 0.0) u = 0x1.0p-53;
    const double mag = std::sqrt(-2.0 * std::log(u));
    const double z = mag * std::cos(6.283185307179586 * u2);
    const double value = lambda + std::sqrt(lambda) * z + 0.5;
    if (value >= 0.0) return static_cast<std::uint64_t>(value);
  }
}

}  // namespace sefi::support
