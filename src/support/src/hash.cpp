#include "sefi/support/hash.hpp"

namespace sefi::support {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  Fnv1a h;
  h.update(bytes);
  return h.digest();
}

std::uint64_t fnv1a(std::string_view text) noexcept {
  Fnv1a h;
  h.update(text);
  return h.digest();
}

}  // namespace sefi::support
