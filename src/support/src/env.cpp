#include "sefi/support/env.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <mutex>

namespace sefi::support::env {

namespace {

std::mutex& cache_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::map<std::string, std::optional<std::string>>& cache() {
  static std::map<std::string, std::optional<std::string>> entries;
  return entries;
}

/// Strict base-10 u64 parser: optional surrounding whitespace, then
/// digits only, no sign, no base prefixes, overflow rejected.
std::optional<std::uint64_t> parse_u64(const std::string& text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  if (begin == end) return std::nullopt;
  std::uint64_t value = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

std::string lowercase_trimmed(const std::string& text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  std::string out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    out += static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[i])));
  }
  return out;
}

}  // namespace

std::optional<std::string> raw(const char* name) {
  const std::lock_guard<std::mutex> lock(cache_mutex());
  auto& entries = cache();
  const auto it = entries.find(name);
  if (it != entries.end()) return it->second;
  const char* value = std::getenv(name);
  std::optional<std::string> snapshot;
  if (value != nullptr) snapshot = std::string(value);
  entries.emplace(name, snapshot);
  return snapshot;
}

std::uint64_t u64(const char* name, std::uint64_t fallback) {
  const std::optional<std::string> value = raw(name);
  if (!value.has_value()) return fallback;
  const std::optional<std::uint64_t> parsed = parse_u64(*value);
  return parsed.has_value() ? *parsed : fallback;
}

bool flag(const char* name, bool fallback) {
  const std::optional<std::string> value = raw(name);
  if (!value.has_value()) return fallback;
  const std::string text = lowercase_trimmed(*value);
  if (text == "1" || text == "true" || text == "on" || text == "yes") {
    return true;
  }
  if (text == "0" || text == "false" || text == "off" || text == "no") {
    return false;
  }
  return fallback;
}

std::string str(const char* name, const std::string& fallback) {
  const std::optional<std::string> value = raw(name);
  return value.has_value() ? *value : fallback;
}

void refresh() {
  const std::lock_guard<std::mutex> lock(cache_mutex());
  cache().clear();
}

}  // namespace sefi::support::env
