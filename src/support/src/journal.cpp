#include "sefi/support/journal.hpp"

#include <cstring>
#include <filesystem>

#include "sefi/support/fsio.hpp"
#include "sefi/support/seal.hpp"

namespace sefi::support {

namespace {

// One journal record on disk ("hdr" carries the campaign identity and is
// always the first record; "rec" carries one task result):
//
//   hdr <payload-bytes>\n<payload>\nfnv1a <16 hex>\n
//   rec <task-index> <payload-bytes>\n<payload>\nfnv1a <16 hex>\n
//
// The checksum footer is the support::seal framing applied to everything
// from the record tag through the payload's trailing newline, so a
// record verifies with unseal() exactly like a cache entry does. The
// length prefix makes payloads free-form: multi-line text (a serialized
// BeamResult) journals as naturally as a single outcome token.

constexpr std::string_view kHeaderTag = "hdr";
constexpr std::string_view kRecordTag = "rec";
// "fnv1a " + 16 hex + '\n'.
constexpr std::size_t kFooterSize = 23;
// A record's first line is tiny; cap the scan so a corrupt length field
// can't make the parser walk megabytes looking for a newline.
constexpr std::size_t kMaxFirstLine = 64;

struct ParsedRecord {
  bool is_header = false;
  std::uint64_t index = 0;
  std::string payload;
  std::size_t total_size = 0;  ///< bytes this record occupies on disk
};

/// Parses a decimal u64; false on empty/malformed/overflowing input.
bool parse_u64(std::string_view text, std::uint64_t& out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

/// Parses one record starting at `offset`. nullopt on anything torn or
/// malformed — the caller treats that position as the end of the valid
/// prefix.
std::optional<ParsedRecord> parse_record(std::string_view data,
                                         std::size_t offset) {
  const std::string_view rest = data.substr(offset);
  const std::size_t line_end = rest.substr(0, kMaxFirstLine).find('\n');
  if (line_end == std::string_view::npos) return std::nullopt;
  const std::string_view line = rest.substr(0, line_end);

  ParsedRecord record;
  std::string_view fields = line;
  if (fields.substr(0, kHeaderTag.size()) == kHeaderTag &&
      fields.size() > kHeaderTag.size() &&
      fields[kHeaderTag.size()] == ' ') {
    record.is_header = true;
    fields.remove_prefix(kHeaderTag.size() + 1);
  } else if (fields.substr(0, kRecordTag.size()) == kRecordTag &&
             fields.size() > kRecordTag.size() &&
             fields[kRecordTag.size()] == ' ') {
    fields.remove_prefix(kRecordTag.size() + 1);
    const std::size_t space = fields.find(' ');
    if (space == std::string_view::npos) return std::nullopt;
    if (!parse_u64(fields.substr(0, space), record.index)) return std::nullopt;
    fields.remove_prefix(space + 1);
  } else {
    return std::nullopt;
  }
  std::uint64_t payload_size = 0;
  if (!parse_u64(fields, payload_size)) return std::nullopt;

  // tag line + '\n' + payload + '\n' + footer.
  const std::size_t body_size = line_end + 1 + payload_size + 1;
  if (rest.size() < body_size + kFooterSize) return std::nullopt;
  const std::string sealed(rest.substr(0, body_size + kFooterSize));
  const auto body = unseal(sealed);
  if (!body) return std::nullopt;
  if (body->size() != body_size || body->back() != '\n') return std::nullopt;
  record.payload = body->substr(line_end + 1, payload_size);
  record.total_size = body_size + kFooterSize;
  return record;
}

std::string frame_record(std::string_view tag_line, std::string_view payload) {
  std::string body(tag_line);
  body += '\n';
  body += payload;
  body += '\n';
  return seal(std::move(body));
}

std::string frame_header(std::string_view header) {
  return frame_record(std::string(kHeaderTag) + " " +
                          std::to_string(header.size()),
                      header);
}

std::string frame_task(std::uint64_t index, std::string_view payload) {
  return frame_record(std::string(kRecordTag) + " " + std::to_string(index) +
                          " " + std::to_string(payload.size()),
                      payload);
}

}  // namespace

TaskJournal::TaskJournal(std::string path, std::string header)
    : path_(std::move(path)), header_(std::move(header)) {
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  bool start_fresh = true;
  if (const auto data = read_file(path_)) {
    std::size_t offset = 0;
    bool header_ok = false;
    while (offset < data->size()) {
      const auto record = parse_record(*data, offset);
      if (!record) break;
      if (offset == 0) {
        if (!record->is_header || record->payload != header_) break;
        header_ok = true;
      } else if (!record->is_header) {
        entries_[record->index] = record->payload;
      }
      offset += record->total_size;
    }
    if (header_ok) {
      start_fresh = false;
      replayed_ = entries_.size();
      if (offset < data->size()) {
        // Torn tail: drop the bytes no intact record claims, so the
        // next append starts at a record boundary.
        std::filesystem::resize_file(path_, offset, ec);
      }
    }
  }
  if (start_fresh) {
    // No usable prior journal (absent, torn header, or a different
    // campaign/format): replace the file with a fresh header.
    entries_.clear();
    if (!write_file_atomic(path_, frame_header(header_))) {
      std::filesystem::remove(path_, ec);
    }
  }
}

TaskJournal::~TaskJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) std::fclose(file_);
}

const std::string* TaskJournal::lookup(std::uint64_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(index);
  return it == entries_.end() ? nullptr : &it->second;
}

bool TaskJournal::ensure_open_locked() {
  if (file_ != nullptr) return true;
  file_ = std::fopen(path_.c_str(), "ab");
  return file_ != nullptr;
}

bool TaskJournal::record(std::uint64_t index, std::string_view payload) {
  const std::string framed = frame_task(index, payload);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ensure_open_locked()) return false;
  const bool ok =
      std::fwrite(framed.data(), 1, framed.size(), file_) == framed.size() &&
      std::fflush(file_) == 0;
  if (ok) entries_[index] = std::string(payload);
  return ok;
}

bool TaskJournal::remove() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::error_code ec;
  return std::filesystem::remove(path_, ec);
}

TaskJournal::Status TaskJournal::inspect(const std::string& path) {
  Status status;
  const auto data = read_file(path);
  if (!data) return status;
  std::size_t offset = 0;
  while (offset < data->size()) {
    const auto record = parse_record(*data, offset);
    if (!record) break;
    if (offset == 0) {
      if (!record->is_header) break;
      status.present = true;
      status.header = record->payload;
    } else if (!record->is_header) {
      ++status.records;
      status.entries[record->index] = record->payload;
    }
    offset += record->total_size;
  }
  status.torn_bytes = data->size() - offset;
  return status;
}

}  // namespace sefi::support
