#include "sefi/report/render.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sefi/microarch/component.hpp"
#include "sefi/support/strings.hpp"

namespace sefi::report {

namespace {

using support::format_sci;
using support::format_sig;
using support::pad_left;
using support::pad_right;

std::string rule(std::size_t width) { return std::string(width, '-') + "\n"; }

/// Log-scale ASCII bar for fold-difference charts.
std::string log_bar(double magnitude, bool positive, int max_chars = 30) {
  const double logv = std::log10(std::max(magnitude, 1.0));
  const int len = std::min(
      max_chars, static_cast<int>(std::lround(logv * 10.0)));
  std::string bar(static_cast<std::size_t>(std::max(len, 0)),
                  positive ? '>' : '<');
  return bar;
}

double class_fold(const core::WorkloadComparison& c, const std::string& clazz,
                  bool& beam_higher) {
  stats::FoldDifference fold;
  if (clazz == "sdc") {
    fold = c.sdc_fold();
  } else if (clazz == "app") {
    fold = c.app_crash_fold();
  } else if (clazz == "sys") {
    fold = c.sys_crash_fold();
  } else {
    fold = c.sdc_plus_app_fold();
  }
  beam_higher = fold.beam_higher;
  return fold.magnitude;
}

}  // namespace

std::string render_table1(const std::vector<ThroughputRow>& rows) {
  std::ostringstream os;
  os << "TABLE I: Performance of different abstraction layer models\n";
  os << rule(72);
  os << pad_right("Abstraction Layer", 20) << pad_right("Model", 36)
     << pad_left("Cycles/sec", 14) << "\n";
  os << rule(72);
  for (const ThroughputRow& row : rows) {
    os << pad_right(row.layer, 20) << pad_right(row.model, 36)
       << pad_left(format_sci(row.cycles_per_second), 14) << "\n";
  }
  os << rule(72);
  return os.str();
}

std::string render_table2(const core::LabConfig& config) {
  const auto& uarch = config.fi.rig.uarch;
  auto cache = [](const microarch::CacheGeometry& g) {
    return std::to_string(g.size_bytes / 1024) + " KB " +
           std::to_string(g.ways) + "-way";
  };
  std::ostringstream os;
  os << "TABLE II: Summary of setup attributes\n";
  os << rule(64);
  os << pad_right("Property", 20) << pad_right("Beam (sim)", 22)
     << pad_right("FI (detailed model)", 22) << "\n";
  os << rule(64);
  os << pad_right("Microarchitecture", 20) << pad_right("SEFI-A9", 22)
     << pad_right("SEFI-A9", 22) << "\n";
  os << pad_right("Platform", 20) << pad_right("Zynq-like (w/ platform", 22)
     << pad_right("modeled arrays only", 22) << "\n";
  os << pad_right("", 20) << pad_right("  logic inventory)", 22)
     << pad_right("", 22) << "\n";
  os << pad_right("CPU cores", 20) << pad_right("1", 22) << pad_right("1", 22)
     << "\n";
  os << pad_right("L1 Cache", 20) << pad_right(cache(uarch.l1d), 22)
     << pad_right(cache(uarch.l1d), 22) << "\n";
  os << pad_right("L2 Cache", 20) << pad_right(cache(uarch.l2), 22)
     << pad_right(cache(uarch.l2), 22) << "\n";
  os << pad_right("Kernel", 20) << pad_right("SEFI mini-kernel", 22)
     << pad_right("SEFI mini-kernel", 22) << "\n";
  os << pad_right("Timer IRQ (cyc)", 20)
     << pad_right(std::to_string(config.beam.kernel.timer_interval_cycles),
                  22)
     << pad_right(std::to_string(config.fi.rig.kernel.timer_interval_cycles),
                  22)
     << "\n";
  os << rule(64);
  return os.str();
}

std::string render_table3() {
  std::ostringstream os;
  os << "TABLE III: Input used and benchmark characteristics\n";
  os << rule(110);
  os << pad_right("BENCHMARK", 14) << pad_right("INPUT (scaled)", 46)
     << pad_right("CHARACTERISTICS", 42) << "\n";
  os << rule(110);
  for (const workloads::Workload* w : workloads::all_workloads()) {
    os << pad_right(w->info().name, 14) << pad_right(w->info().input, 46)
       << pad_right(w->info().characteristics, 42) << "\n";
  }
  os << rule(110);
  os << "(paper inputs: ";
  bool first = true;
  for (const workloads::Workload* w : workloads::all_workloads()) {
    if (!first) os << "; ";
    os << w->info().name << "=" << w->info().paper_input;
    first = false;
  }
  os << ")\n";
  return os.str();
}

std::string render_table4(const std::vector<fi::WorkloadFiResult>& sweep) {
  std::ostringstream os;
  os << "TABLE IV: Min, max, and average re-adjusted error margin per "
        "component across workloads\n";
  os << rule(58);
  os << pad_right("Component", 16) << pad_left("Min Err", 12)
     << pad_left("Max Err", 12) << pad_left("Avg Err", 12) << "\n";
  os << rule(58);
  for (const auto kind : microarch::kAllComponents) {
    double min_err = 1.0, max_err = 0.0, sum = 0.0;
    for (const fi::WorkloadFiResult& result : sweep) {
      const double margin = result.component(kind).error_margin;
      min_err = std::min(min_err, margin);
      max_err = std::max(max_err, margin);
      sum += margin;
    }
    const double avg =
        sweep.empty() ? 0.0 : sum / static_cast<double>(sweep.size());
    os << pad_right(microarch::component_name(kind), 16)
       << pad_left(format_sig(min_err * 100, 2) + " %", 12)
       << pad_left(format_sig(max_err * 100, 2) + " %", 12)
       << pad_left(format_sig(avg * 100, 2) + " %", 12) << "\n";
  }
  os << rule(58);
  return os.str();
}

std::string render_fig3(const std::vector<beam::BeamResult>& results) {
  std::ostringstream os;
  os << "FIG 3: Beam FIT rates for SDCs, Application Crashes and System "
        "Crashes\n";
  os << rule(86);
  os << pad_right("Benchmark", 14) << pad_left("SDC FIT", 12)
     << pad_left("AppCrash FIT", 14) << pad_left("SysCrash FIT", 14)
     << pad_left("runs", 8) << pad_left("events", 8)
     << pad_left("Myears-eq", 12) << "\n";
  os << rule(86);
  for (const beam::BeamResult& r : results) {
    os << pad_right(r.workload, 14) << pad_left(format_sig(r.fit_sdc()), 12)
       << pad_left(format_sig(r.fit_app_crash()), 14)
       << pad_left(format_sig(r.fit_sys_crash()), 14)
       << pad_left(std::to_string(r.runs), 8)
       << pad_left(std::to_string(r.sdc + r.app_crash + r.sys_crash), 8)
       << pad_left(format_sig(r.natural_years() / 1e6), 12) << "\n";
  }
  os << rule(86);
  return os.str();
}

std::string render_fig4(const std::vector<fi::WorkloadFiResult>& sweep) {
  std::ostringstream os;
  os << "FIG 4: Fault injection effects classification (per component)\n";
  os << rule(92);
  os << pad_right("Benchmark", 14) << pad_right("Component", 10)
     << pad_left("Masked%", 10) << pad_left("SDC%", 8)
     << pad_left("AppCr%", 8) << pad_left("SysCr%", 8)
     << pad_left("AVF%", 8) << pad_left("margin%", 10) << "\n";
  os << rule(92);
  for (const fi::WorkloadFiResult& result : sweep) {
    for (const auto kind : microarch::kAllComponents) {
      const fi::ComponentResult& comp = result.component(kind);
      const auto n = static_cast<double>(comp.counts.total());
      auto pct = [n](std::uint64_t count) {
        return n == 0 ? 0.0 : 100.0 * static_cast<double>(count) / n;
      };
      os << pad_right(result.workload, 14)
         << pad_right(microarch::component_name(kind), 10)
         << pad_left(format_sig(pct(comp.counts.masked)), 10)
         << pad_left(format_sig(pct(comp.counts.sdc)), 8)
         << pad_left(format_sig(pct(comp.counts.app_crash)), 8)
         << pad_left(format_sig(pct(comp.counts.sys_crash)), 8)
         << pad_left(format_sig(comp.avf() * 100), 8)
         << pad_left(format_sig(comp.error_margin * 100, 2), 10) << "\n";
    }
  }
  os << rule(92);
  return os.str();
}

std::string render_fig5(const std::vector<FiFitRow>& rows,
                        double fit_raw_per_bit) {
  std::ostringstream os;
  os << "FIG 5: Fault Injection FIT rates (AVF -> FIT conversion, FIT_raw = "
     << format_sci(fit_raw_per_bit) << " FIT/bit)\n";
  os << rule(66);
  os << pad_right("Benchmark", 14) << pad_left("SDC FIT", 12)
     << pad_left("AppCrash FIT", 14) << pad_left("SysCrash FIT", 14)
     << pad_left("Total", 10) << "\n";
  os << rule(66);
  for (const FiFitRow& row : rows) {
    os << pad_right(row.workload, 14)
       << pad_left(format_sig(row.rates.sdc), 12)
       << pad_left(format_sig(row.rates.app_crash), 14)
       << pad_left(format_sig(row.rates.sys_crash), 14)
       << pad_left(format_sig(row.rates.total()), 10) << "\n";
  }
  os << rule(66);
  return os.str();
}

std::string render_fold_figure(
    const std::string& title, const std::string& clazz,
    const std::vector<core::WorkloadComparison>& sweep) {
  std::ostringstream os;
  os << title << "\n";
  os << "(positive '>' bars: beam FIT higher; negative '<': FI higher; bar "
        "length is log10-scaled)\n";
  os << rule(78);
  for (const core::WorkloadComparison& c : sweep) {
    bool beam_higher = true;
    const double fold = class_fold(c, clazz, beam_higher);
    std::ostringstream value;
    value << (beam_higher ? "+" : "-") << format_sig(fold) << "x";
    os << pad_right(c.workload, 14) << pad_left(value.str(), 10) << "  "
       << log_bar(fold, beam_higher) << "\n";
  }
  os << rule(78);
  return os.str();
}

std::string render_fig10(const core::AggregateComparison& agg) {
  std::ostringstream os;
  os << "FIG 10: Overview of beam vs fault-injection FIT rates (suite "
        "averages)\n";
  os << rule(70);
  os << pad_right("Class", 22) << pad_left("FI FIT", 12)
     << pad_left("Beam FIT", 12) << pad_left("Beam/FI", 12) << "\n";
  os << rule(70);
  os << pad_right("SDC", 22) << pad_left(format_sig(agg.fi_sdc), 12)
     << pad_left(format_sig(agg.beam_sdc), 12)
     << pad_left(format_sig(agg.sdc_gap()) + "x", 12) << "\n";
  os << pad_right("SDC + AppCrash", 22)
     << pad_left(format_sig(agg.fi_sdc_app), 12)
     << pad_left(format_sig(agg.beam_sdc_app), 12)
     << pad_left(format_sig(agg.sdc_app_gap()) + "x", 12) << "\n";
  os << pad_right("Total (+SysCrash)", 22)
     << pad_left(format_sig(agg.fi_total), 12)
     << pad_left(format_sig(agg.beam_total), 12)
     << pad_left(format_sig(agg.total_gap()) + "x", 12) << "\n";
  os << rule(70);
  os << "Expected real FIT lies between the FI (under-) and beam (over-) "
        "estimates (Fig. 1).\n";
  return os.str();
}

}  // namespace sefi::report
