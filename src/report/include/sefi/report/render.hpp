// ASCII renderers reproducing the paper's tables and figures.
//
// Each renderer takes finished campaign data and prints the same rows or
// series the paper reports (values differ — our substrate is a simulator
// — but the structure and the comparisons match; see EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "sefi/core/lab.hpp"

namespace sefi::report {

/// Table I row: simulation throughput of one abstraction layer.
struct ThroughputRow {
  std::string layer;
  std::string model;
  double cycles_per_second = 0;
};
std::string render_table1(const std::vector<ThroughputRow>& rows);

/// Table II: setup attributes of the two methodologies.
std::string render_table2(const core::LabConfig& config);

/// Table III: benchmark inputs and characteristics.
std::string render_table3();

/// Table IV: min/max/avg re-adjusted error margin per component across
/// the workloads of a finished FI sweep.
std::string render_table4(const std::vector<fi::WorkloadFiResult>& sweep);

/// Fig. 3: beam FIT rates (SDC / AppCrash / SysCrash) per benchmark.
std::string render_fig3(const std::vector<beam::BeamResult>& results);

/// Fig. 4: FI outcome classification per benchmark and component
/// (Masked / SDC / AppCrash / SysCrash shares; AVF = non-masked).
std::string render_fig4(const std::vector<fi::WorkloadFiResult>& sweep);

/// Fig. 5: fault-injection FIT rates after AVF->FIT conversion.
struct FiFitRow {
  std::string workload;
  core::FiFitRates rates;
};
std::string render_fig5(const std::vector<FiFitRow>& rows,
                        double fit_raw_per_bit);

/// Figs. 6-9: beam-vs-FI fold-difference charts. `clazz` selects the
/// failure class: "sdc", "app", "sys", or "sdc+app".
std::string render_fold_figure(const std::string& title,
                               const std::string& clazz,
                               const std::vector<core::WorkloadComparison>& sweep);

/// Fig. 10: aggregate FIT overview (the beam >= real >= FI sandwich).
std::string render_fig10(const core::AggregateComparison& agg);

}  // namespace sefi::report
