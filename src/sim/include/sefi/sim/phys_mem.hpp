// Flat physical RAM model with a loader backdoor.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sefi/sim/memmap.hpp"

namespace sefi::sim {

class PhysicalMemory {
 public:
  PhysicalMemory();

  /// Aligned accesses only; callers are responsible for range/alignment
  /// checks (the MMU rejects out-of-range addresses before reaching here).
  std::uint8_t read8(std::uint32_t addr) const;
  std::uint16_t read16(std::uint32_t addr) const;
  std::uint32_t read32(std::uint32_t addr) const;
  void write8(std::uint32_t addr, std::uint8_t value);
  void write16(std::uint32_t addr, std::uint16_t value);
  void write32(std::uint32_t addr, std::uint32_t value);

  /// True if [addr, addr+size) lies inside RAM.
  static bool in_ram(std::uint32_t addr, std::uint32_t size) {
    return addr < kRamSize && size <= kRamSize - addr;
  }

  /// Loader/DMA backdoor: copies bytes into RAM without going through the
  /// CPU. Cache coherence is the caller's responsibility (Machine
  /// invalidates matching lines on warm machines).
  void backdoor_write(std::uint32_t addr, std::span<const std::uint8_t> data);
  void backdoor_fill(std::uint32_t addr, std::uint32_t size,
                     std::uint8_t value);
  std::span<const std::uint8_t> backdoor_read(std::uint32_t addr,
                                              std::uint32_t size) const;

  void clear();

 private:
  std::vector<std::uint8_t> ram_;
};

}  // namespace sefi::sim
