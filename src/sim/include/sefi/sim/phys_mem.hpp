// Flat physical RAM model with a loader backdoor and page-granular
// dirty tracking.
//
// Dirty tracking exists for one consumer: Machine::restore_snapshot's
// delta path. Every mutation route (CPU stores, loader/DMA backdoor,
// clear, restores themselves) marks the touched 4 KB pages in a bitmap;
// a restore that knows the machine last held exactly the saved image
// copies back only the marked pages and clears the map. Restore cost
// then scales with state touched since the last restore, not with the
// 16 MB machine size (DESIGN.md §8).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sefi/sim/memmap.hpp"

namespace sefi::sim {

class PhysicalMemory {
 public:
  PhysicalMemory();

  /// Aligned accesses only; callers are responsible for range/alignment
  /// checks (the MMU rejects out-of-range addresses before reaching here).
  std::uint8_t read8(std::uint32_t addr) const;
  std::uint16_t read16(std::uint32_t addr) const;
  std::uint32_t read32(std::uint32_t addr) const;
  void write8(std::uint32_t addr, std::uint8_t value);
  void write16(std::uint32_t addr, std::uint16_t value);
  void write32(std::uint32_t addr, std::uint32_t value);

  /// True if [addr, addr+size) lies inside RAM.
  static bool in_ram(std::uint32_t addr, std::uint32_t size) {
    return addr < kRamSize && size <= kRamSize - addr;
  }

  /// Loader/DMA backdoor: copies bytes into RAM without going through the
  /// CPU. Cache coherence is the caller's responsibility (Machine
  /// invalidates matching lines on warm machines).
  void backdoor_write(std::uint32_t addr, std::span<const std::uint8_t> data);
  void backdoor_fill(std::uint32_t addr, std::uint32_t size,
                     std::uint8_t value);
  std::span<const std::uint8_t> backdoor_read(std::uint32_t addr,
                                              std::uint32_t size) const;

  void clear();

  /// Sparse RAM overlay: the pages of one image that differ from a base
  /// image, in ascending page order. The checkpoint ladder stores rungs
  /// 1..K-1 this way — one full base plus per-rung diffs.
  struct PageDelta {
    std::vector<std::uint32_t> pages;  ///< page indices, ascending
    std::vector<std::uint8_t> bytes;   ///< pages.size() * kPageSize bytes

    std::uint64_t resident_bytes() const {
      return bytes.size() + pages.size() * sizeof(std::uint32_t);
    }
    const std::uint8_t* page_data(std::size_t i) const {
      return bytes.data() + static_cast<std::size_t>(i) * kPageSize;
    }
    /// Index of `page` in `pages`, or -1 if the page matches the base.
    int find(std::uint32_t page) const;
  };

  /// Pages of this image that differ from `base`.
  PageDelta diff_pages(const PhysicalMemory& base) const;

  // Restore paths. All of them leave this memory bit-identical to the
  // saved image (base [+ delta overlay]) and clear the dirty map; the
  // return value is the number of RAM bytes actually copied.
  //
  // The `_dirty` variants copy only pages marked since the dirty map was
  // last cleared — valid only if this memory held exactly the saved image
  // at that point (Machine tracks that via snapshot ids).
  std::uint64_t restore_full(const PhysicalMemory& saved);
  std::uint64_t restore_full(const PhysicalMemory& base,
                             const PageDelta& delta);
  std::uint64_t restore_dirty(const PhysicalMemory& saved);
  std::uint64_t restore_dirty(const PhysicalMemory& base,
                              const PageDelta& delta);

  /// Number of pages currently marked dirty.
  std::uint32_t dirty_page_count() const;
  /// Marks page `page` (an index, not an address) dirty. Machine uses
  /// this to conservatively widen the dirty set when switching between
  /// delta rungs that share a base: the pages where two rungs differ are
  /// a subset of the union of their overlays.
  void mark_page_index(std::uint32_t page) {
    dirty_[page / kBitsPerWord] |= 1ull << (page % kBitsPerWord);
  }
  void clear_dirty();
  /// Marks every page dirty (used by untracked bulk mutations).
  void mark_all_dirty();

 private:
  static constexpr std::uint32_t kBitsPerWord = 64;
  static constexpr std::uint32_t kDirtyWords =
      (kNumPages + kBitsPerWord - 1) / kBitsPerWord;

  void mark_page(std::uint32_t addr) {
    const std::uint32_t page = addr >> kPageShift;
    dirty_[page / kBitsPerWord] |= 1ull << (page % kBitsPerWord);
  }
  void mark_range(std::uint32_t addr, std::uint32_t size);

  std::vector<std::uint8_t> ram_;
  std::vector<std::uint64_t> dirty_;  ///< one bit per page
};

}  // namespace sefi::sim
