// Full-system machine: CPU + RAM + devices + a pluggable uarch model.
//
// The Machine is the unit both assessment methodologies drive:
//   - fault injection boots it cold, runs one workload execution, and
//     classifies the outcome against a golden run;
//   - the beam simulator keeps one Machine powered for a whole session,
//     re-loading the application between runs exactly like the paper's
//     LANSCE setup restarted benchmarks, so caches stay warm with kernel
//     state (the effect behind the paper's System-Crash asymmetry).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sefi/isa/assembler.hpp"
#include "sefi/sim/cpu.hpp"
#include "sefi/sim/devices.hpp"
#include "sefi/sim/phys_mem.hpp"
#include "sefi/sim/uarch_iface.hpp"

namespace sefi::sim {

/// Why Machine::run returned.
enum class RunEventKind : std::uint8_t {
  kExit,         ///< guest app exited; payload = exit code
  kAppCrash,     ///< kernel killed the app; payload = reason
  kPanic,        ///< kernel panic; payload = reason
  kHalted,       ///< CPU executed HLT
  kDoubleFault,  ///< nested exception; system dead
  kCycleLimit,   ///< watchdog budget exhausted (hang)
};

struct RunEvent {
  RunEventKind kind;
  std::uint32_t payload = 0;
};

/// Builds the uarch model against the machine-owned memory and devices.
using ModelFactory = std::function<std::unique_ptr<UarchModel>(
    PhysicalMemory&, DeviceBlock&)>;

class Machine {
 public:
  Machine(const ModelFactory& factory, std::unique_ptr<RegFileModel> regs);

  /// Convenience: machine with the functional ("atomic") model.
  static Machine make_functional();

  /// Loads a program image into RAM through the loader backdoor,
  /// invalidating any cached copies of the overwritten range.
  void load_image(const isa::Program& program);

  /// Writes the boot-info block consumed by the kernel at spawn time.
  void set_boot_info(std::uint32_t user_entry, std::uint32_t user_sp);

  /// Cold boot: resets CPU, devices, and all microarchitectural state.
  /// RAM contents (loaded images) are preserved.
  void boot();

  /// Full-machine checkpoint (the gem5-checkpoint role in GeFIN-style
  /// campaigns): RAM, devices, CPU, microarchitectural state, and the
  /// register file. Restoring resumes execution bit-exactly from the
  /// capture point — an injection rig snapshots once after boot and
  /// restores per experiment instead of re-booting.
  ///
  /// Every snapshot carries a process-unique id. The machine remembers
  /// the id it restored last; restoring the *same* snapshot again takes
  /// the delta path — only state dirtied since that restore is copied
  /// back — which is bit-identical to a full restore because every
  /// mutation route (stores, backdoor/DMA writes, fault flips, cache
  /// fills, resets) marks what it touches (DESIGN.md §8).
  struct Snapshot {
    PhysicalMemory memory;
    DeviceBlock devices;
    Cpu::State cpu;
    std::unique_ptr<OpaqueState> uarch;
    std::unique_ptr<OpaqueState> regfile;
    std::uint64_t id = 0;

    /// Approximate resident size (RAM + array states), for ladder
    /// memory accounting.
    std::uint64_t resident_bytes() const;
  };

  /// A checkpoint whose RAM is stored as the sparse set of pages that
  /// differ from a base Snapshot (checkpoint-ladder rungs 1..K-1 are
  /// kept this way). Devices, CPU, and array states are small relative
  /// to the 16 MB RAM image and are stored in full.
  struct DeltaSnapshot {
    PhysicalMemory::PageDelta memory;  ///< pages differing from the base
    DeviceBlock devices;
    Cpu::State cpu;
    std::unique_ptr<OpaqueState> uarch;
    std::unique_ptr<OpaqueState> regfile;
    std::uint64_t id = 0;
    std::uint64_t base_id = 0;  ///< id of the Snapshot the diff is against

    std::uint64_t resident_bytes() const;
  };

  /// Restore-cost accounting, accumulated across restore_snapshot calls.
  struct RestoreStats {
    std::uint64_t restores = 0;        ///< total restores
    std::uint64_t delta_restores = 0;  ///< served by the delta path
    std::uint64_t bytes_copied = 0;    ///< state bytes actually copied
    std::uint64_t pages_copied = 0;    ///< RAM pages copied (all modes)
    std::uint64_t delta_pages_copied = 0;  ///< RAM pages on delta restores
  };

  Snapshot save_snapshot() const;
  /// Captures the current state as a delta against `base` (which must be
  /// a snapshot of a same-configuration machine).
  DeltaSnapshot save_delta_snapshot(const Snapshot& base) const;

  /// Restores a snapshot taken from a machine with the same model
  /// configuration (throws SefiError otherwise). Takes the delta path
  /// when `snapshot` is the one restored last and delta restore is
  /// enabled; bit-identical either way.
  void restore_snapshot(const Snapshot& snapshot);
  /// Restores `base` overlaid with `rung` (a ladder rung saved with
  /// save_delta_snapshot against that base). RAM takes the delta path
  /// when the machine last restored this rung — or any snapshot sharing
  /// `base` (switching rungs widens the dirty set by both overlays).
  void restore_snapshot(const Snapshot& base, const DeltaSnapshot& rung);

  /// Enables/disables the delta-restore fast path (default: enabled).
  /// Outcomes are bit-identical either way; this knob exists for the
  /// full-vs-delta comparisons in tests and benches.
  void set_delta_restore(bool enabled) { delta_restore_ = enabled; }
  bool delta_restore() const { return delta_restore_; }
  const RestoreStats& restore_stats() const { return restore_stats_; }

  /// Runs until a host event, CPU stop, or the cycle budget is exhausted.
  /// `max_cycles` is an absolute cycle count (not a delta), so repeated
  /// calls share one budget.
  RunEvent run(std::uint64_t max_cycles);

  /// Runs until the CPU's cycle counter reaches `target_cycle` (used to
  /// position fault injections). Returns an event only if the machine
  /// stops before reaching the target.
  std::optional<RunEvent> run_until_cycle(std::uint64_t target_cycle);

  /// Largest cycle count any single CPU step has consumed on this
  /// machine so far. Bounds how far past a requested cycle the stop
  /// point of run_until_cycle can land (the step that crosses the
  /// target finishes first) — the slack the fault-site pruner must
  /// assume between a fault's nominal cycle and the boundary where the
  /// flip actually lands (DESIGN.md §13).
  std::uint64_t max_step_cycles() const { return max_step_cycles_; }

  const std::string& console() const { return devices_->console(); }
  std::uint64_t jiffies() const { return devices_->jiffies(); }

  Cpu& cpu() { return *cpu_; }
  const Cpu& cpu() const { return *cpu_; }
  PhysicalMemory& memory() { return *mem_; }
  DeviceBlock& devices() { return *devices_; }
  UarchModel& uarch() { return *uarch_; }
  RegFileModel& regfile() { return *regs_; }
  const PerfCounters& counters() const { return uarch_->counters(); }

 private:
  std::optional<RunEvent> poll_events();

  /// Copies the small, always-fully-restored machine state (devices +
  /// CPU) and returns its approximate byte cost.
  std::uint64_t restore_small_state(const DeviceBlock& devices,
                                    const Cpu::State& cpu);

  // All state sits behind unique_ptr so Machine is safely movable: the
  // CPU and uarch model hold references into memory/devices, and those
  // referents must not change address when a Machine moves.
  std::unique_ptr<PhysicalMemory> mem_;
  std::unique_ptr<DeviceBlock> devices_;
  std::unique_ptr<UarchModel> uarch_;
  std::unique_ptr<RegFileModel> regs_;
  std::unique_ptr<Cpu> cpu_;

  bool delta_restore_ = true;
  std::uint64_t max_step_cycles_ = 0;
  /// Id of the snapshot this machine restored last; 0 = none/unknown
  /// (boot() resets it, forcing the next restore to be full).
  std::uint64_t last_restored_id_ = 0;
  /// Id of the full Snapshot underlying the machine's current RAM image
  /// (the snapshot itself, or a rung's base). Restoring a different rung
  /// of the *same* base can still take the RAM delta path: the pages
  /// where two rungs differ are a subset of the union of their overlays,
  /// so marking both overlays dirty makes the dirty copy a superset of
  /// the true difference.
  std::uint64_t last_restored_base_id_ = 0;
  /// Overlay page indices of the last restored rung (empty after a full
  /// Snapshot restore).
  std::vector<std::uint32_t> last_overlay_pages_;
  RestoreStats restore_stats_;
};

}  // namespace sefi::sim
