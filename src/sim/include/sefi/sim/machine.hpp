// Full-system machine: CPU + RAM + devices + a pluggable uarch model.
//
// The Machine is the unit both assessment methodologies drive:
//   - fault injection boots it cold, runs one workload execution, and
//     classifies the outcome against a golden run;
//   - the beam simulator keeps one Machine powered for a whole session,
//     re-loading the application between runs exactly like the paper's
//     LANSCE setup restarted benchmarks, so caches stay warm with kernel
//     state (the effect behind the paper's System-Crash asymmetry).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sefi/isa/assembler.hpp"
#include "sefi/sim/cpu.hpp"
#include "sefi/sim/devices.hpp"
#include "sefi/sim/phys_mem.hpp"
#include "sefi/sim/uarch_iface.hpp"

namespace sefi::sim {

/// Why Machine::run returned.
enum class RunEventKind : std::uint8_t {
  kExit,         ///< guest app exited; payload = exit code
  kAppCrash,     ///< kernel killed the app; payload = reason
  kPanic,        ///< kernel panic; payload = reason
  kHalted,       ///< CPU executed HLT
  kDoubleFault,  ///< nested exception; system dead
  kCycleLimit,   ///< watchdog budget exhausted (hang)
};

struct RunEvent {
  RunEventKind kind;
  std::uint32_t payload = 0;
};

/// Builds the uarch model against the machine-owned memory and devices.
using ModelFactory = std::function<std::unique_ptr<UarchModel>(
    PhysicalMemory&, DeviceBlock&)>;

class Machine {
 public:
  Machine(const ModelFactory& factory, std::unique_ptr<RegFileModel> regs);

  /// Convenience: machine with the functional ("atomic") model.
  static Machine make_functional();

  /// Loads a program image into RAM through the loader backdoor,
  /// invalidating any cached copies of the overwritten range.
  void load_image(const isa::Program& program);

  /// Writes the boot-info block consumed by the kernel at spawn time.
  void set_boot_info(std::uint32_t user_entry, std::uint32_t user_sp);

  /// Cold boot: resets CPU, devices, and all microarchitectural state.
  /// RAM contents (loaded images) are preserved.
  void boot();

  /// Full-machine checkpoint (the gem5-checkpoint role in GeFIN-style
  /// campaigns): RAM, devices, CPU, microarchitectural state, and the
  /// register file. Restoring resumes execution bit-exactly from the
  /// capture point — an injection rig snapshots once after boot and
  /// restores per experiment instead of re-booting.
  struct Snapshot {
    PhysicalMemory memory;
    DeviceBlock devices;
    Cpu::State cpu;
    std::unique_ptr<OpaqueState> uarch;
    std::unique_ptr<OpaqueState> regfile;
  };
  Snapshot save_snapshot() const;
  /// Restores a snapshot taken from a machine with the same model
  /// configuration (throws SefiError otherwise).
  void restore_snapshot(const Snapshot& snapshot);

  /// Runs until a host event, CPU stop, or the cycle budget is exhausted.
  /// `max_cycles` is an absolute cycle count (not a delta), so repeated
  /// calls share one budget.
  RunEvent run(std::uint64_t max_cycles);

  /// Runs until the CPU's cycle counter reaches `target_cycle` (used to
  /// position fault injections). Returns an event only if the machine
  /// stops before reaching the target.
  std::optional<RunEvent> run_until_cycle(std::uint64_t target_cycle);

  const std::string& console() const { return devices_->console(); }
  std::uint64_t jiffies() const { return devices_->jiffies(); }

  Cpu& cpu() { return *cpu_; }
  const Cpu& cpu() const { return *cpu_; }
  PhysicalMemory& memory() { return *mem_; }
  DeviceBlock& devices() { return *devices_; }
  UarchModel& uarch() { return *uarch_; }
  RegFileModel& regfile() { return *regs_; }
  const PerfCounters& counters() const { return uarch_->counters(); }

 private:
  std::optional<RunEvent> poll_events();

  // All state sits behind unique_ptr so Machine is safely movable: the
  // CPU and uarch model hold references into memory/devices, and those
  // referents must not change address when a Machine moves.
  std::unique_ptr<PhysicalMemory> mem_;
  std::unique_ptr<DeviceBlock> devices_;
  std::unique_ptr<UarchModel> uarch_;
  std::unique_ptr<RegFileModel> regs_;
  std::unique_ptr<Cpu> cpu_;
};

}  // namespace sefi::sim
