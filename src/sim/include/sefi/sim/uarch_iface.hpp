// Interfaces between the CPU core and a microarchitecture model.
//
// The CPU implements SEFI-A9 architectural semantics once; how fetches,
// loads, stores, branches, and register accesses behave *micro-
// architecturally* (caches, TLBs, renamed physical register file, branch
// prediction, cycle costs) is supplied by a UarchModel implementation:
//   - FunctionalModel (sim):     no state, fixed 1-cycle costs ("atomic").
//   - DetailedModel (microarch): bit-accurate arrays + timing.
#pragma once

#include <cstdint>
#include <memory>

#include "sefi/sim/access.hpp"

namespace sefi::sim {

/// Type-erased microarchitectural state snapshot. Each model implements
/// its own concrete state type; restore_state requires a state produced
/// by the same model type/configuration.
struct OpaqueState {
  virtual ~OpaqueState() = default;

  /// Approximate resident size of this state in bytes (checkpoint-ladder
  /// memory accounting). 0 = negligible/untracked.
  virtual std::uint64_t resident_bytes() const { return 0; }
};

/// The seven hardware counters compared across setups in the paper
/// (§IV-D), plus totals needed for FIT scaling.
struct PerfCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t itlb_misses = 0;
  std::uint64_t l2_misses = 0;
};

/// Register file as seen by the CPU. The detailed model implements this
/// with a renamed physical register file whose bits are fault-injectable.
class RegFileModel {
 public:
  virtual ~RegFileModel() = default;
  virtual std::uint32_t read(unsigned arch_reg) = 0;
  virtual void write(unsigned arch_reg, std::uint32_t value) = 0;
  virtual void reset() = 0;

  /// Checkpointing (see Machine::save_snapshot).
  virtual std::unique_ptr<OpaqueState> save_state() const = 0;
  virtual void restore_state(const OpaqueState& state) = 0;

  /// Restores `state` and returns the number of state bytes copied
  /// (0 = untracked). When `delta` is true the caller guarantees `state`
  /// is the same object this model restored last, with every mutation
  /// since then performed through the model's tracked paths — models with
  /// dirty tracking may then copy only dirtied units. Models without
  /// tracking ignore the hint and restore fully (the default).
  virtual std::uint64_t restore_state_counted(const OpaqueState& state,
                                              bool delta) {
    (void)delta;
    restore_state(state);
    return 0;
  }
};

/// Memory system + timing model as seen by the CPU.
class UarchModel {
 public:
  virtual ~UarchModel() = default;

  /// Instruction fetch at virtual address `va` (word aligned by the CPU).
  virtual MemResult fetch(std::uint32_t va, bool kernel_mode,
                          bool mmu_enabled) = 0;

  /// Data read of `size` bytes (1/2/4) at `va`.
  virtual MemResult read(std::uint32_t va, unsigned size, bool kernel_mode,
                         bool mmu_enabled) = 0;

  /// Data write of `size` bytes (1/2/4) at `va`.
  virtual MemFault write(std::uint32_t va, unsigned size, std::uint32_t value,
                         bool kernel_mode, bool mmu_enabled) = 0;

  /// Branch resolution notification (for predictor modeling). Called for
  /// every conditional/indirect branch with the actual outcome.
  virtual void on_branch(std::uint32_t pc, bool taken,
                         std::uint32_t target) = 0;

  /// Cycles accumulated by the model since the last drain (stalls, miss
  /// penalties, mispredict penalties). The CPU adds these to base costs.
  virtual std::uint64_t drain_extra_cycles() = 0;

  /// Model-maintained counters (cache/TLB/branch stats).
  virtual const PerfCounters& counters() const = 0;

  /// Clears all microarchitectural state (cold boot).
  virtual void reset() = 0;

  /// Invalidates both TLBs (the tlbflush instruction; models the
  /// context-switch flush an ASID-less OS performs on every exec).
  virtual void flush_tlbs() = 0;

  /// Checkpointing (see Machine::save_snapshot).
  virtual std::unique_ptr<OpaqueState> save_state() const = 0;
  virtual void restore_state(const OpaqueState& state) = 0;

  /// Counted/delta restore; same contract as RegFileModel's overload.
  virtual std::uint64_t restore_state_counted(const OpaqueState& state,
                                              bool delta) {
    (void)delta;
    restore_state(state);
    return 0;
  }

  /// Invalidates any cached copies of [addr, addr+size) in physical
  /// address space (loader/DMA coherence). Dirty lines are discarded, not
  /// written back: the loader overwrites the backing memory anyway.
  virtual void invalidate_range(std::uint32_t addr, std::uint32_t size) = 0;
};

}  // namespace sefi::sim
