// Interfaces between the CPU core and a microarchitecture model.
//
// The CPU implements SEFI-A9 architectural semantics once; how fetches,
// loads, stores, branches, and register accesses behave *micro-
// architecturally* (caches, TLBs, renamed physical register file, branch
// prediction, cycle costs) is supplied by a UarchModel implementation:
//   - FunctionalModel (sim):     no state, fixed 1-cycle costs ("atomic").
//   - DetailedModel (microarch): bit-accurate arrays + timing.
#pragma once

#include <cstdint>
#include <memory>

#include "sefi/sim/access.hpp"

namespace sefi::sim {

/// Type-erased microarchitectural state snapshot. Each model implements
/// its own concrete state type; restore_state requires a state produced
/// by the same model type/configuration.
struct OpaqueState {
  virtual ~OpaqueState() = default;

  /// Approximate resident size of this state in bytes (checkpoint-ladder
  /// memory accounting). 0 = negligible/untracked.
  virtual std::uint64_t resident_bytes() const { return 0; }
};

/// The seven hardware counters compared across setups in the paper
/// (§IV-D), plus totals needed for FIT scaling.
struct PerfCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t l1d_accesses = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l1i_misses = 0;
  std::uint64_t dtlb_misses = 0;
  std::uint64_t itlb_misses = 0;
  std::uint64_t l2_misses = 0;
};

/// Register file as seen by the CPU. The detailed model implements this
/// with a renamed physical register file whose bits are fault-injectable.
class RegFileModel {
 public:
  virtual ~RegFileModel() = default;
  virtual std::uint32_t read(unsigned arch_reg) = 0;
  virtual void write(unsigned arch_reg, std::uint32_t value) = 0;
  virtual void reset() = 0;

  /// Checkpointing (see Machine::save_snapshot).
  virtual std::unique_ptr<OpaqueState> save_state() const = 0;
  virtual void restore_state(const OpaqueState& state) = 0;

  /// Restores `state` and returns the number of state bytes copied
  /// (0 = untracked). When `delta` is true the caller guarantees `state`
  /// is the same object this model restored last, with every mutation
  /// since then performed through the model's tracked paths — models with
  /// dirty tracking may then copy only dirtied units. Models without
  /// tracking ignore the hint and restore fully (the default).
  virtual std::uint64_t restore_state_counted(const OpaqueState& state,
                                              bool delta) {
    (void)delta;
    restore_state(state);
    return 0;
  }
};

/// Memory system + timing model as seen by the CPU.
class UarchModel {
 public:
  virtual ~UarchModel() = default;

  /// Instruction fetch at virtual address `va` (word aligned by the CPU).
  virtual MemResult fetch(std::uint32_t va, bool kernel_mode,
                          bool mmu_enabled) = 0;

  /// Data read of `size` bytes (1/2/4) at `va`.
  virtual MemResult read(std::uint32_t va, unsigned size, bool kernel_mode,
                         bool mmu_enabled) = 0;

  /// Data write of `size` bytes (1/2/4) at `va`.
  virtual MemFault write(std::uint32_t va, unsigned size, std::uint32_t value,
                         bool kernel_mode, bool mmu_enabled) = 0;

  /// Branch resolution notification (for predictor modeling). Called for
  /// every conditional/indirect branch with the actual outcome.
  virtual void on_branch(std::uint32_t pc, bool taken,
                         std::uint32_t target) = 0;

  // --- Pure-fetch support (the CPU's predecoded-uop fast path) ---
  //
  // A model may advertise that its instruction-fetch path is a pure
  // function of a generation-stamped state: as long as the stamp is
  // unchanged, a fetch that previously hit would return the same word
  // again while mutating NO model state (no counters, no replacement
  // update, no stall cycles). The CPU then skips such fetches entirely
  // and replays the cached outcome — bit-identically, because by contract
  // there was nothing else to replay. Models that cannot guarantee this
  // keep the defaults and the CPU falls back to real fetches.

  /// Whole-array generation stamp covering every fetch-path mutation
  /// whose reach is not confined to one L1I set or one I-TLB entry:
  /// TLB flushes, fault-injected bit flips, invalidations, resets, and
  /// snapshot restores. Must change whenever any of that state changes
  /// and must never repeat an earlier value. Ordinary L1I line fills and
  /// I-TLB inserts are deliberately NOT covered — they are tracked by
  /// the per-set and per-entry stamps below, so one capacity miss
  /// doesn't void every cached proof. Returning 0 means "no purity
  /// guarantee right now" (unsupported model, or a forensics watch is
  /// armed on fetch-path state and real fetches must run so it can
  /// latch). The default disables the fast path.
  virtual std::uint64_t ifetch_stamp() const { return 0; }

  /// Fill stamp of one L1I set (as reported by fetch_probe). Bumped by
  /// every line fill into that set; meaningful only while ifetch_stamp()
  /// is unchanged.
  virtual std::uint64_t ifetch_set_stamp(std::uint32_t l1i_set) const {
    (void)l1i_set;
    return 0;
  }

  /// Fill stamp of one I-TLB entry (as reported by fetch_probe). Bumped
  /// each time an insert overwrites that entry; meaningful only while
  /// ifetch_stamp() is unchanged. Must return 0 for
  /// FetchProof::kNoTlbEntry (the MMU-off sentinel).
  virtual std::uint64_t ifetch_tlb_stamp(std::uint32_t itlb_entry) const {
    (void)itlb_entry;
    return 0;
  }

  /// One-call validity check for a stored proof: true iff `stamp` is
  /// nonzero and all three stamps still read the stored values. Exactly
  /// equivalent to comparing against the three accessors above — this
  /// exists so the per-instruction hit guard pays one virtual dispatch
  /// instead of three. Models that override the accessors get the
  /// correct default; the detailed model overrides this too with direct
  /// member reads.
  virtual bool ifetch_proof_ok(std::uint64_t stamp, std::uint32_t l1i_set,
                               std::uint64_t set_stamp,
                               std::uint32_t itlb_entry,
                               std::uint64_t itlb_stamp) const {
    return stamp != 0 && stamp == ifetch_stamp() &&
           set_stamp == ifetch_set_stamp(l1i_set) &&
           itlb_stamp == ifetch_tlb_stamp(itlb_entry);
  }

  /// Side-effect-free fetch probe: if a real fetch of `va` right now
  /// would be a pure hit (no state mutation, no stall cycles), fills in
  /// the proof and returns true. Any miss, fault, or uncertainty returns
  /// false (the caller then uses fetch()). The default matches the
  /// default ifetch_stamp(): no guarantee, always false.
  ///
  /// A proof stays valid while all three stamps still read the same:
  /// the global stamp pins translation rules and array-wide state, the
  /// set stamp pins the L1I set the proven line lives in, and the entry
  /// stamp pins the I-TLB entry the translation won at. Under that
  /// triple a real fetch would return `word` again while mutating
  /// nothing and stalling nothing.
  struct FetchProof {
    static constexpr std::uint32_t kNoTlbEntry = 0xFFFFFFFFu;

    std::uint32_t word = 0;          ///< word the fetch would return
    std::uint32_t l1i_set = 0;       ///< L1I set holding the hit line
    std::uint64_t l1i_set_stamp = 0; ///< that set's fill stamp
    std::uint32_t itlb_entry = kNoTlbEntry;  ///< winning I-TLB entry, or
                                             ///< kNoTlbEntry when MMU off
    std::uint64_t itlb_stamp = 0;    ///< that entry's fill stamp (0 when
                                     ///< MMU off, matching the accessor)
  };
  virtual bool fetch_probe(std::uint32_t va, bool kernel_mode,
                           bool mmu_enabled, FetchProof* proof) {
    (void)va;
    (void)kernel_mode;
    (void)mmu_enabled;
    (void)proof;
    return false;
  }

  /// Cycles accumulated by the model since the last drain (stalls, miss
  /// penalties, mispredict penalties). The CPU adds these to base costs.
  virtual std::uint64_t drain_extra_cycles() = 0;

  /// Model-maintained counters (cache/TLB/branch stats).
  virtual const PerfCounters& counters() const = 0;

  /// Clears all microarchitectural state (cold boot).
  virtual void reset() = 0;

  /// Invalidates both TLBs (the tlbflush instruction; models the
  /// context-switch flush an ASID-less OS performs on every exec).
  virtual void flush_tlbs() = 0;

  /// Checkpointing (see Machine::save_snapshot).
  virtual std::unique_ptr<OpaqueState> save_state() const = 0;
  virtual void restore_state(const OpaqueState& state) = 0;

  /// Counted/delta restore; same contract as RegFileModel's overload.
  virtual std::uint64_t restore_state_counted(const OpaqueState& state,
                                              bool delta) {
    (void)delta;
    restore_state(state);
    return 0;
  }

  /// Invalidates any cached copies of [addr, addr+size) in physical
  /// address space (loader/DMA coherence). Dirty lines are discarded, not
  /// written back: the loader overwrites the backing memory anyway.
  virtual void invalidate_range(std::uint32_t addr, std::uint32_t size) = 0;
};

}  // namespace sefi::sim
