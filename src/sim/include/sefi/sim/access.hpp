// Memory access result types shared by all microarchitecture models.
#pragma once

#include <cstdint>

namespace sefi::sim {

/// Faults a memory access can raise. These become guest exceptions
/// (prefetch abort for fetches, data abort for loads/stores).
enum class MemFault : std::uint8_t {
  kNone = 0,
  kUnmapped,    ///< address outside RAM/MMIO or invalid PTE
  kPermission,  ///< user access to a kernel page / write to RO page / MMIO
  kUnaligned,   ///< address not aligned to access size
};

struct MemResult {
  MemFault fault = MemFault::kNone;
  std::uint32_t data = 0;

  bool ok() const { return fault == MemFault::kNone; }
};

/// Kind of data access, used for permission checks.
enum class AccessKind : std::uint8_t { kFetch, kLoad, kStore };

}  // namespace sefi::sim
