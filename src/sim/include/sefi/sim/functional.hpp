// Functional ("atomic") microarchitecture model.
//
// The equivalent of gem5's atomic CPU in the paper's Table I: correct
// architectural semantics, no caches, no TLBs, one cycle per access. Used
// for fast workload validation and for the abstraction-layer throughput
// comparison; fault-injection campaigns use the detailed model.
#pragma once

#include <array>
#include <cstdint>

#include "sefi/sim/devices.hpp"
#include "sefi/sim/phys_mem.hpp"
#include "sefi/sim/uarch_iface.hpp"

namespace sefi::sim {

/// Plain architectural register file (no renaming, not injectable).
class SimpleRegFile final : public RegFileModel {
 public:
  std::uint32_t read(unsigned arch_reg) override { return regs_[arch_reg]; }
  void write(unsigned arch_reg, std::uint32_t value) override {
    regs_[arch_reg] = value;
  }
  void reset() override { regs_.fill(0); }

  std::unique_ptr<OpaqueState> save_state() const override;
  void restore_state(const OpaqueState& state) override;

 private:
  std::array<std::uint32_t, 16> regs_{};
};

class FunctionalModel final : public UarchModel {
 public:
  FunctionalModel(PhysicalMemory& mem, DeviceBlock& devices)
      : mem_(mem), devices_(devices) {}

  MemResult fetch(std::uint32_t va, bool kernel_mode,
                  bool mmu_enabled) override;
  MemResult read(std::uint32_t va, unsigned size, bool kernel_mode,
                 bool mmu_enabled) override;
  MemFault write(std::uint32_t va, unsigned size, std::uint32_t value,
                 bool kernel_mode, bool mmu_enabled) override;
  void on_branch(std::uint32_t pc, bool taken, std::uint32_t target) override;
  std::uint64_t drain_extra_cycles() override { return 0; }
  const PerfCounters& counters() const override { return counters_; }
  void reset() override;
  void flush_tlbs() override {}  // no TLBs in the atomic model
  void invalidate_range(std::uint32_t, std::uint32_t) override {}
  std::unique_ptr<OpaqueState> save_state() const override;
  void restore_state(const OpaqueState& state) override;

 private:
  /// Translates `va` for `kind`; returns physical address in `data` or a
  /// fault. MMIO addresses pass through untranslated (kernel only).
  MemResult translate(std::uint32_t va, AccessKind kind, bool kernel_mode,
                      bool mmu_enabled);

  PhysicalMemory& mem_;
  DeviceBlock& devices_;
  PerfCounters counters_;
};

}  // namespace sefi::sim
