// Physical memory map of the simulated SEFI-A9 platform.
//
// The platform models a Zynq-like SoC: one CPU, 16 MB of RAM, and a small
// MMIO block (UART, host interface, timer). The kernel image sits at the
// bottom of RAM (the vector table is its first 24 bytes), followed by
// kernel data, kernel stack, and the page table. User programs are loaded
// at kUserBase.
#pragma once

#include <cstdint>

namespace sefi::sim {

inline constexpr std::uint32_t kRamBase = 0x0000'0000;
inline constexpr std::uint32_t kRamSize = 0x0100'0000;  // 16 MB
inline constexpr std::uint32_t kPageSize = 4096;
inline constexpr std::uint32_t kPageShift = 12;
inline constexpr std::uint32_t kNumPages = kRamSize / kPageSize;  // 4096

// Kernel layout.
inline constexpr std::uint32_t kKernelBase = 0x0000'0000;
inline constexpr std::uint32_t kKernelCodeLimit = 0x0000'4000;   // 16 KB
inline constexpr std::uint32_t kKernelDataBase = 0x0000'4000;    // 8 KB
inline constexpr std::uint32_t kKernelDataLimit = 0x0000'6000;
inline constexpr std::uint32_t kKernelStackTop = 0x0000'8000;    // grows down
inline constexpr std::uint32_t kPageTableBase = 0x0000'8000;     // 16 KB
inline constexpr std::uint32_t kPageTableLimit = 0x0000'C000;

// Boot info block, written by the loader, read by the kernel.
inline constexpr std::uint32_t kBootInfoBase = kKernelDataBase;
inline constexpr std::uint32_t kBootUserEntry = kBootInfoBase + 0;
inline constexpr std::uint32_t kBootUserSp = kBootInfoBase + 4;
/// Kernel-maintained jiffies counter (incremented per timer IRQ); the host
/// watchdog reads it to tell "app hung, kernel alive" from "system dead".
inline constexpr std::uint32_t kKernelJiffies = kBootInfoBase + 8;

// User layout.
inline constexpr std::uint32_t kUserBase = 0x0001'0000;
inline constexpr std::uint32_t kUserStackTop = 0x00F0'0000;  // grows down

// MMIO block (kernel-only, untranslated).
inline constexpr std::uint32_t kMmioBase = 0xF000'0000;
inline constexpr std::uint32_t kUartTx = 0xF000'0000;
inline constexpr std::uint32_t kHostAlive = 0xF000'0004;
inline constexpr std::uint32_t kHostExit = 0xF000'0008;
inline constexpr std::uint32_t kHostAppCrash = 0xF000'000C;
inline constexpr std::uint32_t kHostPanic = 0xF000'0010;
inline constexpr std::uint32_t kTimerCtrl = 0xF000'1000;
inline constexpr std::uint32_t kTimerInterval = 0xF000'1004;
inline constexpr std::uint32_t kTimerAck = 0xF000'1008;
inline constexpr std::uint32_t kTimerJiffies = 0xF000'100C;
inline constexpr std::uint32_t kMmioLimit = 0xF000'2000;

/// Page table entry layout: [23:12] PPN, bit3 user-exec, bit2 user-write,
/// bit1 user-read, bit0 valid. Kernel mode has full access to valid pages.
namespace pte {
inline constexpr std::uint32_t kValid = 1u << 0;
inline constexpr std::uint32_t kUserRead = 1u << 1;
inline constexpr std::uint32_t kUserWrite = 1u << 2;
inline constexpr std::uint32_t kUserExec = 1u << 3;

constexpr std::uint32_t make(std::uint32_t ppn, std::uint32_t perms) {
  return (ppn << 12) | perms;
}
constexpr std::uint32_t ppn(std::uint32_t entry) {
  return (entry >> 12) & 0xfffu;
}
}  // namespace pte

}  // namespace sefi::sim
