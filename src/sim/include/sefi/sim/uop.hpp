// Predecoded-uop cache for the interpreter hot loop (DESIGN.md §12).
//
// Campaign wall-time is dominated by re-executing identical guest code:
// the golden run plus every restore-and-replay window step the same small
// loops millions of times, and the baseline Cpu::step() pays a full
// I-TLB scan + L1I lookup + isa::decode + dispatch switch for every one
// of them. This cache memoizes the per-PC outcome of fetch+decode as a
// "uop": the fetched word, the decoded fields, the pre-resolved handler
// pointer, and the precomputed base cost.
//
// Three tiers, selected by the SEFI_FASTPATH environment knob:
//   off    — the baseline interpreter, byte-for-byte the old hot loop.
//   decode — every step still performs the real uarch_.fetch() (so every
//            microarchitectural side effect — miss fills, walk stalls,
//            counters, forensics watches — happens exactly as before) and
//            only the re-decode is skipped, guarded by comparing the
//            fetched word against the cached one. Safe for every model.
//   block  — additionally skips the fetch itself when the model proves it
//            would be a pure hit: entries are stamped with the model's
//            ifetch_stamp() generation, and a hit requires the stamp (and
//            the kernel/MMU mode bits) to be unchanged. Stamps bump on
//            every I-side mutation — fills, guest-visible invalidations,
//            fault-injected bit flips, snapshot restores — so staleness
//            is structurally impossible (see UarchModel::ifetch_stamp).
//            On a miss the filler predecodes the straight-line run ahead
//            of the PC into uops via side-effect-free probes, so a basic
//            block is decoded once per invalidation, not once per step.
//
// The cache is direct-mapped on word-index bits of the PC and lives
// per-Cpu (one per campaign worker; nothing is shared across threads).
#pragma once

#include <cstdint>
#include <vector>

#include "sefi/isa/isa.hpp"

namespace sefi::sim {

class Cpu;

/// Fast-path tier. Numeric order matters: higher tiers strictly add
/// optimizations on top of lower ones.
enum class FastPath : std::uint8_t {
  kOff = 0,    ///< baseline interpreter
  kDecode,     ///< real fetch every step, skip re-decode on word match
  kBlock,      ///< skip proven-pure fetches via generation stamps
};

/// Parses SEFI_FASTPATH ("off" | "decode" | "block", case-sensitive)
/// through support::env. Unset or unrecognized values yield the default,
/// kBlock — the tier is verdict-invariant by construction, so it is on
/// unless explicitly disabled.
FastPath fastpath_from_env();

/// Knob-value name of a tier ("off"/"decode"/"block").
const char* fastpath_name(FastPath mode);

/// Executes one instruction's architectural semantics. Handlers advance
/// pc_ themselves (fall-through adds 4; branches/exceptions set it).
using UopHandler = void (*)(Cpu&, const isa::Instruction&);

/// One predecoded instruction. `pc` doubles as the tag; 1 is unreachable
/// (the CPU only fetches word-aligned PCs), so fresh slots never match.
struct Uop {
  static constexpr std::uint32_t kNoPc = 1;

  std::uint32_t pc = kNoPc;     ///< tag: guest PC this entry describes
  std::uint32_t word = 0;       ///< instruction word fetched from `pc`
  std::uint64_t stamp = 0;      ///< ifetch_stamp() at validation; 0 = none
  std::uint64_t set_stamp = 0;  ///< fill stamp of `l1i_set` at validation
  std::uint64_t itlb_stamp = 0; ///< fill stamp of `itlb_entry` (0 MMU-off)
  isa::Instruction inst;        ///< decoded fields
  UopHandler fn = nullptr;      ///< pre-resolved handler
  std::uint32_t l1i_set = 0;    ///< L1I set the proven line lives in
  std::uint32_t itlb_entry = 0; ///< I-TLB entry the translation won at
  std::uint8_t cost = 1;        ///< precomputed base cycle cost
  bool touches_uarch = false;   ///< may stall or mutate the memory system
  bool kernel = false;          ///< mode bits the stamp was taken under —
  bool mmu = false;             ///< translation depends on both
};

/// Hit/miss accounting, surfaced through CampaignStats and the obs
/// registry (sefi_uop_cache_*). `hits` are block-tier fast hits (fetch
/// and decode both skipped); `decode_hits` skipped only the decode;
/// `invalidations` count stale entries found for the fetched PC.
struct UopStats {
  std::uint64_t hits = 0;
  std::uint64_t decode_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
};

/// Direct-mapped uop array. 8 Ki entries cover 32 KB of guest code —
/// larger than any kernel+workload image in the suite — at ~48 bytes per
/// entry per worker.
class UopCache {
 public:
  static constexpr std::uint32_t kEntries = 8192;  // power of two

  UopCache() : slots_(kEntries) {}

  Uop& slot(std::uint32_t pc) {
    return slots_[(pc >> 2) & (kEntries - 1)];
  }

  void clear() {
    slots_.assign(kEntries, Uop{});
  }

 private:
  std::vector<Uop> slots_;
};

}  // namespace sefi::sim
