// Execution tracer: steps a machine and renders a per-instruction log —
// address, disassembly, mode, and changed registers. A debugging aid for
// guest-code authors (workloads, kernels) and for post-morteming single
// fault injections; not used on campaign hot paths.
#pragma once

#include <cstdint>
#include <string>

#include "sefi/sim/machine.hpp"

namespace sefi::sim {

struct TraceOptions {
  std::uint64_t max_instructions = 100;
  bool show_registers = true;  ///< append "rX=... ->" deltas per line
};

/// Steps `machine` up to `options.max_instructions` instructions and
/// returns the formatted trace. Stops early if the CPU halts. Instruction
/// words are read through the loader backdoor at the current PC, which is
/// exact for this platform's identity-mapped address space.
std::string trace_execution(Machine& machine,
                            const TraceOptions& options = {});

}  // namespace sefi::sim
