// MMIO devices: UART console, host interface, and the periodic timer.
//
// The host interface mirrors the role of the serial/ethernet link in the
// paper's beam setup: the guest reports "alive" heartbeats, application
// output, normal exits, application crashes (kernel killed the app), and
// kernel panics; the experiment harness observes these as events.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sefi/sim/memmap.hpp"

namespace sefi::sim {

/// An event surfaced to the experiment harness by a device write.
enum class HostEventKind : std::uint8_t {
  kExit,      ///< guest app exited; payload = exit code
  kAppCrash,  ///< kernel killed the app; payload = reason code
  kPanic,     ///< kernel panic; payload = reason code
};

struct HostEvent {
  HostEventKind kind;
  std::uint32_t payload;
};

class DeviceBlock {
 public:
  /// True if `addr` falls in the MMIO window.
  static bool contains(std::uint32_t addr) {
    return addr >= kMmioBase && addr < kMmioLimit;
  }

  /// MMIO read; unknown registers read as zero.
  std::uint32_t read(std::uint32_t addr) const;

  /// MMIO write. Host-interface writes stash an event retrievable with
  /// take_host_event().
  void write(std::uint32_t addr, std::uint32_t value);

  /// Returns and clears the pending host event, if any. At most one event
  /// can be pending: the Machine drains it after every instruction.
  std::optional<HostEvent> take_host_event();

  /// Advances device time by `cycles`; the timer may raise its IRQ line.
  void tick(std::uint64_t cycles);

  /// Level-triggered timer IRQ line (cleared by kTimerAck).
  bool irq_pending() const { return timer_pending_; }

  const std::string& console() const { return console_; }
  std::uint64_t alive_count() const { return alive_count_; }
  std::uint64_t jiffies() const { return jiffies_; }

  void reset();

 private:
  std::string console_;
  std::uint64_t alive_count_ = 0;
  std::optional<HostEvent> pending_event_;
  bool timer_enabled_ = false;
  bool timer_pending_ = false;
  std::uint64_t timer_interval_ = 0;
  std::uint64_t timer_countdown_ = 0;
  std::uint64_t jiffies_ = 0;
};

}  // namespace sefi::sim
