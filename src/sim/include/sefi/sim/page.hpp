// Hardware page-table walker.
//
// The MMU uses a single-level page table of kNumPages 32-bit entries at
// kPageTableBase, covering the 16 MB RAM virtual range with 4 KB pages.
// The kernel builds an identity mapping at boot with per-page user
// permissions. The walker reads PTEs from *physical* memory; in the
// microarchitectural model the walk is routed through the cache hierarchy
// (PTEs are cacheable, so beam strikes on cached PTEs corrupt translations).
#pragma once

#include <cstdint>

#include "sefi/sim/access.hpp"
#include "sefi/sim/memmap.hpp"

namespace sefi::sim {

/// A translation as cached by the TLBs.
struct Translation {
  std::uint32_t ppn = 0;
  std::uint8_t perms = 0;  ///< pte::kUserRead/Write/Exec bits
};

/// Checks whether `kind` in `kernel_mode` is allowed by PTE `perms`.
/// Kernel mode has full access; user mode needs the matching bit.
bool access_allowed(std::uint8_t perms, AccessKind kind, bool kernel_mode);

/// Walks the page table for virtual page `vpn`. Returns kUnmapped for
/// invalid entries. `pte_reader` abstracts how the PTE word is fetched
/// (direct physical read in the functional model, via L2 in the detailed
/// model).
template <typename PteReader>
MemResult walk_page_table(std::uint32_t vpn, PteReader&& pte_reader) {
  if (vpn >= kNumPages) return {MemFault::kUnmapped, 0};
  const std::uint32_t entry = pte_reader(kPageTableBase + vpn * 4);
  if ((entry & pte::kValid) == 0) return {MemFault::kUnmapped, 0};
  return {MemFault::kNone, entry};
}

}  // namespace sefi::sim
