// SEFI-A9 CPU core: architectural semantics.
//
// One implementation of the ISA's semantics, parameterized by a UarchModel
// (memory system + timing) and a RegFileModel. Exceptions follow a
// simplified ARM scheme: a single kernel mode, banked ELR/SPSR, a banked
// stack pointer (exception entry swaps in the kernel SP; ERET swaps the
// user SP back, and the kernel can set it with msr_usp), a vector table at
// physical 0x0, and ERET to return. An exception raised while a
// previous exception is still being handled (no intervening ERET) is a
// double fault and halts the machine — the real hardware would clobber its
// banked registers, which is equally unrecoverable.
//
// Guest ABI conventions (used by the kernel and all workloads):
//   - syscall number in r7, arguments in r0..r2, result in r0
//   - sp = r13 (full descending), lr = r14
#pragma once

#include <cstdint>
#include <memory>

#include "sefi/isa/isa.hpp"
#include "sefi/sim/devices.hpp"
#include "sefi/sim/uarch_iface.hpp"
#include "sefi/sim/uop.hpp"

namespace sefi::sim {

/// Exception vector indices; vector table entry i is the instruction at
/// physical address 4*i.
enum class Vector : std::uint8_t {
  kReset = 0,
  kUndef = 1,
  kSvc = 2,
  kPrefetchAbort = 3,
  kDataAbort = 4,
  kIrq = 5,
};
inline constexpr unsigned kNumVectors = 6;

/// Why the CPU stopped stepping.
enum class CpuStop : std::uint8_t {
  kRunning = 0,
  kHalted,       ///< HLT executed (kernel panic backstop)
  kDoubleFault,  ///< exception inside an exception handler
};

/// Syscall numbers implemented by the mini-kernel.
namespace sysno {
inline constexpr std::uint32_t kExit = 1;
inline constexpr std::uint32_t kWrite = 2;   ///< r0 = ptr, r1 = len
inline constexpr std::uint32_t kAlive = 3;
inline constexpr std::uint32_t kPutc = 4;    ///< r0 = byte
}  // namespace sysno

class Cpu {
 public:
  Cpu(UarchModel& uarch, RegFileModel& regs, DeviceBlock& devices);

  /// Hardware reset: kernel mode, IRQs masked, MMU off, pc = reset vector.
  void reset();

  /// Executes one instruction or takes a pending enabled IRQ. Returns the
  /// number of cycles consumed (base cost + microarchitectural stalls).
  /// No-op when stopped.
  std::uint64_t step();

  CpuStop stop_reason() const { return stop_; }
  bool running() const { return stop_ == CpuStop::kRunning; }

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t instructions() const { return instret_; }

  /// Instructions retired over the CPU's whole lifetime, across snapshot
  /// restores (restore_state rewinds instret_ to the checkpoint's value;
  /// this counter keeps counting). Campaigns divide it by wall time for
  /// the guest-MIPS gauge.
  std::uint64_t lifetime_instructions() const { return lifetime_instret_; }

  /// Active fast-path tier. The constructor reads SEFI_FASTPATH; tests
  /// and benches switch tiers in-process with set_fastpath() (the uop
  /// cache is dropped and rebuilt, stats are kept).
  FastPath fastpath() const { return fastpath_; }
  void set_fastpath(FastPath mode);

  /// Uop-cache hit/miss accounting since construction.
  const UopStats& uop_stats() const { return uop_stats_; }

  /// Stable pointer to the cycle counter, valid for the CPU's lifetime.
  /// Observability watchpoints (microarch activation watches) read it to
  /// timestamp events without holding a reference to the whole CPU;
  /// restore_state() rewrites the counter's value, never its address.
  const std::uint64_t* cycle_counter() const { return &cycles_; }

  // Architectural state access (harness, tests, context dumps).
  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }
  std::uint32_t cpsr() const { return cpsr_; }
  void set_cpsr(std::uint32_t v) { cpsr_ = v; }
  std::uint32_t reg(unsigned index) const;
  void set_reg(unsigned index, std::uint32_t value);

  bool kernel_mode() const { return (cpsr_ & isa::cpsr::kModeKernel) != 0; }
  bool mmu_enabled() const { return (cpsr_ & isa::cpsr::kMmuEnable) != 0; }

  /// Host-forced re-entry into kernel code at `pc` (models the experiment
  /// harness killing a hung application and restarting it, as the beam
  /// setup does over its host link). Enters kernel mode with IRQs masked,
  /// clears any in-flight exception state, and keeps the MMU bit.
  void force_kernel_entry(std::uint32_t pc);

  /// Complete architectural + bookkeeping state (checkpointing).
  struct State {
    std::uint32_t pc = 0;
    std::uint32_t cpsr = 0;
    std::uint32_t elr = 0;
    std::uint32_t spsr = 0;
    std::uint32_t banked_usp = 0;
    bool in_exception = false;
    CpuStop stop = CpuStop::kRunning;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
  };
  State save_state() const;
  void restore_state(const State& state);

 private:
  friend struct ExecOps;  ///< per-opcode handlers (cpu.cpp)

  void enter_exception(Vector vec, std::uint32_t return_pc);
  void raise_undef();
  void raise_mem_fault(Vector vec);
  void set_flags_sub(std::uint32_t a, std::uint32_t b);
  void set_flags_fcmp(float a, float b);
  void execute(const isa::Instruction& inst);
  std::uint64_t step_fast();
  void restamp_and_predecode(Uop& entry);

  UarchModel& uarch_;
  RegFileModel& regs_;
  DeviceBlock& devices_;

  std::uint32_t pc_ = 0;
  std::uint32_t cpsr_ = 0;
  std::uint32_t elr_ = 0;
  std::uint32_t spsr_ = 0;
  std::uint32_t banked_usp_ = 0;  ///< user SP while in an exception
  bool in_exception_ = false;
  CpuStop stop_ = CpuStop::kRunning;
  std::uint64_t cycles_ = 0;
  std::uint64_t instret_ = 0;
  std::uint64_t lifetime_instret_ = 0;  ///< NOT rewound by restore_state

  FastPath fastpath_;
  std::unique_ptr<UopCache> uops_;  ///< null when fastpath_ == kOff
  UopStats uop_stats_;
};

/// Base cycle cost of an instruction (detailed-model issue cost; the
/// functional model uses it too so "atomic" cycle counts are comparable).
/// A constexpr table lookup shared by the interpreter and the uop
/// predecoder, so the two can never diverge.
unsigned base_cost(isa::Opcode op);

}  // namespace sefi::sim
