#include "sefi/sim/phys_mem.hpp"

#include <cstring>

#include "sefi/support/error.hpp"

namespace sefi::sim {

PhysicalMemory::PhysicalMemory() : ram_(kRamSize, 0) {}

std::uint8_t PhysicalMemory::read8(std::uint32_t addr) const {
  return ram_[addr];
}

std::uint16_t PhysicalMemory::read16(std::uint32_t addr) const {
  std::uint16_t v;
  std::memcpy(&v, ram_.data() + addr, 2);
  return v;
}

std::uint32_t PhysicalMemory::read32(std::uint32_t addr) const {
  std::uint32_t v;
  std::memcpy(&v, ram_.data() + addr, 4);
  return v;
}

void PhysicalMemory::write8(std::uint32_t addr, std::uint8_t value) {
  ram_[addr] = value;
}

void PhysicalMemory::write16(std::uint32_t addr, std::uint16_t value) {
  std::memcpy(ram_.data() + addr, &value, 2);
}

void PhysicalMemory::write32(std::uint32_t addr, std::uint32_t value) {
  std::memcpy(ram_.data() + addr, &value, 4);
}

void PhysicalMemory::backdoor_write(std::uint32_t addr,
                                    std::span<const std::uint8_t> data) {
  support::require(in_ram(addr, static_cast<std::uint32_t>(data.size())),
                   "backdoor_write: out of RAM");
  std::memcpy(ram_.data() + addr, data.data(), data.size());
}

void PhysicalMemory::backdoor_fill(std::uint32_t addr, std::uint32_t size,
                                   std::uint8_t value) {
  support::require(in_ram(addr, size), "backdoor_fill: out of RAM");
  std::memset(ram_.data() + addr, value, size);
}

std::span<const std::uint8_t> PhysicalMemory::backdoor_read(
    std::uint32_t addr, std::uint32_t size) const {
  support::require(in_ram(addr, size), "backdoor_read: out of RAM");
  return {ram_.data() + addr, size};
}

void PhysicalMemory::clear() { std::fill(ram_.begin(), ram_.end(), 0); }

}  // namespace sefi::sim
