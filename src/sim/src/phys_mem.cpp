#include "sefi/sim/phys_mem.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "sefi/support/error.hpp"

namespace sefi::sim {

PhysicalMemory::PhysicalMemory()
    : ram_(kRamSize, 0), dirty_(kDirtyWords, 0) {}

std::uint8_t PhysicalMemory::read8(std::uint32_t addr) const {
  return ram_[addr];
}

std::uint16_t PhysicalMemory::read16(std::uint32_t addr) const {
  std::uint16_t v;
  std::memcpy(&v, ram_.data() + addr, 2);
  return v;
}

std::uint32_t PhysicalMemory::read32(std::uint32_t addr) const {
  std::uint32_t v;
  std::memcpy(&v, ram_.data() + addr, 4);
  return v;
}

void PhysicalMemory::write8(std::uint32_t addr, std::uint8_t value) {
  ram_[addr] = value;
  mark_page(addr);
}

void PhysicalMemory::write16(std::uint32_t addr, std::uint16_t value) {
  std::memcpy(ram_.data() + addr, &value, 2);
  mark_page(addr);  // aligned: cannot straddle a page
}

void PhysicalMemory::write32(std::uint32_t addr, std::uint32_t value) {
  std::memcpy(ram_.data() + addr, &value, 4);
  mark_page(addr);  // aligned: cannot straddle a page
}

void PhysicalMemory::mark_range(std::uint32_t addr, std::uint32_t size) {
  if (size == 0) return;
  const std::uint32_t first = addr >> kPageShift;
  const std::uint32_t last = (addr + size - 1) >> kPageShift;
  for (std::uint32_t page = first; page <= last; ++page) {
    dirty_[page / kBitsPerWord] |= 1ull << (page % kBitsPerWord);
  }
}

void PhysicalMemory::backdoor_write(std::uint32_t addr,
                                    std::span<const std::uint8_t> data) {
  support::require(in_ram(addr, static_cast<std::uint32_t>(data.size())),
                   "backdoor_write: out of RAM");
  std::memcpy(ram_.data() + addr, data.data(), data.size());
  mark_range(addr, static_cast<std::uint32_t>(data.size()));
}

void PhysicalMemory::backdoor_fill(std::uint32_t addr, std::uint32_t size,
                                   std::uint8_t value) {
  support::require(in_ram(addr, size), "backdoor_fill: out of RAM");
  std::memset(ram_.data() + addr, value, size);
  mark_range(addr, size);
}

std::span<const std::uint8_t> PhysicalMemory::backdoor_read(
    std::uint32_t addr, std::uint32_t size) const {
  support::require(in_ram(addr, size), "backdoor_read: out of RAM");
  return {ram_.data() + addr, size};
}

void PhysicalMemory::clear() {
  std::fill(ram_.begin(), ram_.end(), 0);
  mark_all_dirty();
}

int PhysicalMemory::PageDelta::find(std::uint32_t page) const {
  const auto it = std::lower_bound(pages.begin(), pages.end(), page);
  if (it == pages.end() || *it != page) return -1;
  return static_cast<int>(it - pages.begin());
}

PhysicalMemory::PageDelta PhysicalMemory::diff_pages(
    const PhysicalMemory& base) const {
  PageDelta delta;
  for (std::uint32_t page = 0; page < kNumPages; ++page) {
    const std::size_t off = static_cast<std::size_t>(page) * kPageSize;
    if (std::memcmp(ram_.data() + off, base.ram_.data() + off, kPageSize) ==
        0) {
      continue;
    }
    delta.pages.push_back(page);
    delta.bytes.insert(delta.bytes.end(), ram_.begin() + off,
                       ram_.begin() + off + kPageSize);
  }
  return delta;
}

std::uint64_t PhysicalMemory::restore_full(const PhysicalMemory& saved) {
  std::memcpy(ram_.data(), saved.ram_.data(), kRamSize);
  clear_dirty();
  return kRamSize;
}

std::uint64_t PhysicalMemory::restore_full(const PhysicalMemory& base,
                                           const PageDelta& delta) {
  std::memcpy(ram_.data(), base.ram_.data(), kRamSize);
  for (std::size_t i = 0; i < delta.pages.size(); ++i) {
    std::memcpy(ram_.data() +
                    static_cast<std::size_t>(delta.pages[i]) * kPageSize,
                delta.page_data(i), kPageSize);
  }
  clear_dirty();
  return kRamSize + delta.pages.size() * kPageSize;
}

std::uint64_t PhysicalMemory::restore_dirty(const PhysicalMemory& saved) {
  std::uint64_t bytes = 0;
  for (std::uint32_t word = 0; word < kDirtyWords; ++word) {
    std::uint64_t mask = dirty_[word];
    while (mask != 0) {
      const auto bit =
          static_cast<std::uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      const std::size_t off =
          (static_cast<std::size_t>(word) * kBitsPerWord + bit) * kPageSize;
      std::memcpy(ram_.data() + off, saved.ram_.data() + off, kPageSize);
      bytes += kPageSize;
    }
  }
  clear_dirty();
  return bytes;
}

std::uint64_t PhysicalMemory::restore_dirty(const PhysicalMemory& base,
                                            const PageDelta& delta) {
  std::uint64_t bytes = 0;
  for (std::uint32_t word = 0; word < kDirtyWords; ++word) {
    std::uint64_t mask = dirty_[word];
    while (mask != 0) {
      const auto bit =
          static_cast<std::uint32_t>(std::countr_zero(mask));
      mask &= mask - 1;
      const std::uint32_t page =
          word * kBitsPerWord + bit;
      const std::size_t off = static_cast<std::size_t>(page) * kPageSize;
      const int in_delta = delta.find(page);
      const std::uint8_t* src = in_delta >= 0
                                    ? delta.page_data(in_delta)
                                    : base.ram_.data() + off;
      std::memcpy(ram_.data() + off, src, kPageSize);
      bytes += kPageSize;
    }
  }
  clear_dirty();
  return bytes;
}

std::uint32_t PhysicalMemory::dirty_page_count() const {
  std::uint32_t count = 0;
  for (const std::uint64_t word : dirty_) {
    count += static_cast<std::uint32_t>(std::popcount(word));
  }
  return count;
}

void PhysicalMemory::clear_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), 0);
}

void PhysicalMemory::mark_all_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), ~0ull);
}

}  // namespace sefi::sim
