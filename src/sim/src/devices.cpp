#include "sefi/sim/devices.hpp"

namespace sefi::sim {

std::uint32_t DeviceBlock::read(std::uint32_t addr) const {
  switch (addr) {
    case kTimerCtrl:
      return timer_enabled_ ? 1u : 0u;
    case kTimerInterval:
      return static_cast<std::uint32_t>(timer_interval_);
    case kTimerJiffies:
      return static_cast<std::uint32_t>(jiffies_);
    default:
      return 0;
  }
}

void DeviceBlock::write(std::uint32_t addr, std::uint32_t value) {
  switch (addr) {
    case kUartTx:
      console_.push_back(static_cast<char>(value & 0xff));
      break;
    case kHostAlive:
      ++alive_count_;
      break;
    case kHostExit:
      pending_event_ = HostEvent{HostEventKind::kExit, value};
      break;
    case kHostAppCrash:
      pending_event_ = HostEvent{HostEventKind::kAppCrash, value};
      break;
    case kHostPanic:
      pending_event_ = HostEvent{HostEventKind::kPanic, value};
      break;
    case kTimerCtrl:
      timer_enabled_ = (value & 1) != 0;
      timer_countdown_ = timer_interval_;
      break;
    case kTimerInterval:
      timer_interval_ = value;
      timer_countdown_ = value;
      break;
    case kTimerAck:
      timer_pending_ = false;
      ++jiffies_;
      break;
    default:
      break;
  }
}

std::optional<HostEvent> DeviceBlock::take_host_event() {
  auto event = pending_event_;
  pending_event_.reset();
  return event;
}

void DeviceBlock::tick(std::uint64_t cycles) {
  if (!timer_enabled_ || timer_interval_ == 0) return;
  if (cycles >= timer_countdown_) {
    timer_pending_ = true;
    // Re-arm relative to the overshoot so long instructions don't drift.
    const std::uint64_t over = cycles - timer_countdown_;
    timer_countdown_ = timer_interval_ - (over % timer_interval_);
  } else {
    timer_countdown_ -= cycles;
  }
}

void DeviceBlock::reset() {
  console_.clear();
  alive_count_ = 0;
  pending_event_.reset();
  timer_enabled_ = false;
  timer_pending_ = false;
  timer_interval_ = 0;
  timer_countdown_ = 0;
  jiffies_ = 0;
}

}  // namespace sefi::sim
