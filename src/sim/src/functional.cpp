#include "sefi/sim/functional.hpp"

#include "sefi/sim/page.hpp"
#include "sefi/support/error.hpp"

namespace sefi::sim {

namespace {
struct SimpleRegState final : OpaqueState {
  std::array<std::uint32_t, 16> regs{};
};
struct FunctionalState final : OpaqueState {
  PerfCounters counters;
};
}  // namespace

std::unique_ptr<OpaqueState> SimpleRegFile::save_state() const {
  auto state = std::make_unique<SimpleRegState>();
  state->regs = regs_;
  return state;
}

void SimpleRegFile::restore_state(const OpaqueState& state) {
  const auto* typed = dynamic_cast<const SimpleRegState*>(&state);
  support::require(typed != nullptr,
                   "SimpleRegFile: snapshot from a different model");
  regs_ = typed->regs;
}

std::unique_ptr<OpaqueState> FunctionalModel::save_state() const {
  auto state = std::make_unique<FunctionalState>();
  state->counters = counters_;
  return state;
}

void FunctionalModel::restore_state(const OpaqueState& state) {
  const auto* typed = dynamic_cast<const FunctionalState*>(&state);
  support::require(typed != nullptr,
                   "FunctionalModel: snapshot from a different model");
  counters_ = typed->counters;
}

MemResult FunctionalModel::translate(std::uint32_t va, AccessKind kind,
                                     bool kernel_mode, bool mmu_enabled) {
  if (DeviceBlock::contains(va)) {
    if (!kernel_mode) return {MemFault::kPermission, 0};
    if (kind == AccessKind::kFetch) return {MemFault::kUnmapped, 0};
    return {MemFault::kNone, va};
  }
  if (!PhysicalMemory::in_ram(va, 1)) return {MemFault::kUnmapped, 0};
  if (!mmu_enabled) {
    // MMU off implies early boot; only the kernel runs untranslated.
    if (!kernel_mode) return {MemFault::kPermission, 0};
    return {MemFault::kNone, va};
  }
  const std::uint32_t vpn = va >> kPageShift;
  const MemResult walk = walk_page_table(
      vpn, [this](std::uint32_t pte_addr) { return mem_.read32(pte_addr); });
  if (!walk.ok()) return walk;
  const auto perms = static_cast<std::uint8_t>(walk.data & 0xf);
  if (!access_allowed(perms, kind, kernel_mode)) {
    return {MemFault::kPermission, 0};
  }
  const std::uint32_t pa =
      (pte::ppn(walk.data) << kPageShift) | (va & (kPageSize - 1));
  if (!PhysicalMemory::in_ram(pa, 1)) return {MemFault::kUnmapped, 0};
  return {MemFault::kNone, pa};
}

MemResult FunctionalModel::fetch(std::uint32_t va, bool kernel_mode,
                                 bool mmu_enabled) {
  if (va % 4 != 0) return {MemFault::kUnaligned, 0};
  const MemResult tr = translate(va, AccessKind::kFetch, kernel_mode,
                                 mmu_enabled);
  if (!tr.ok()) return tr;
  return {MemFault::kNone, mem_.read32(tr.data)};
}

MemResult FunctionalModel::read(std::uint32_t va, unsigned size,
                                bool kernel_mode, bool mmu_enabled) {
  if (va % size != 0) return {MemFault::kUnaligned, 0};
  const MemResult tr =
      translate(va, AccessKind::kLoad, kernel_mode, mmu_enabled);
  if (!tr.ok()) return tr;
  ++counters_.l1d_accesses;
  const std::uint32_t pa = tr.data;
  if (DeviceBlock::contains(pa)) return {MemFault::kNone, devices_.read(pa)};
  switch (size) {
    case 1:
      return {MemFault::kNone, mem_.read8(pa)};
    case 2:
      return {MemFault::kNone, mem_.read16(pa)};
    default:
      return {MemFault::kNone, mem_.read32(pa)};
  }
}

MemFault FunctionalModel::write(std::uint32_t va, unsigned size,
                                std::uint32_t value, bool kernel_mode,
                                bool mmu_enabled) {
  if (va % size != 0) return MemFault::kUnaligned;
  const MemResult tr =
      translate(va, AccessKind::kStore, kernel_mode, mmu_enabled);
  if (!tr.ok()) return tr.fault;
  ++counters_.l1d_accesses;
  const std::uint32_t pa = tr.data;
  if (DeviceBlock::contains(pa)) {
    devices_.write(pa, value);
    return MemFault::kNone;
  }
  switch (size) {
    case 1:
      mem_.write8(pa, static_cast<std::uint8_t>(value));
      break;
    case 2:
      mem_.write16(pa, static_cast<std::uint16_t>(value));
      break;
    default:
      mem_.write32(pa, value);
      break;
  }
  return MemFault::kNone;
}

void FunctionalModel::on_branch(std::uint32_t, bool, std::uint32_t) {
  ++counters_.branches;
}

void FunctionalModel::reset() { counters_ = PerfCounters{}; }

}  // namespace sefi::sim
