#include "sefi/sim/uop.hpp"

#include "sefi/support/env.hpp"

namespace sefi::sim {

FastPath fastpath_from_env() {
  const std::string value = support::env::str("SEFI_FASTPATH", "block");
  if (value == "off") return FastPath::kOff;
  if (value == "decode") return FastPath::kDecode;
  return FastPath::kBlock;
}

const char* fastpath_name(FastPath mode) {
  switch (mode) {
    case FastPath::kOff: return "off";
    case FastPath::kDecode: return "decode";
    case FastPath::kBlock: return "block";
  }
  return "?";
}

}  // namespace sefi::sim
