#include "sefi/sim/cpu.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "sefi/support/error.hpp"

namespace sefi::sim {

namespace {

using isa::Cond;
using isa::Instruction;
using isa::Opcode;
namespace flags = isa::cpsr;

constexpr unsigned kExceptionEntryCost = 3;

float as_float(std::uint32_t bits) { return std::bit_cast<float>(bits); }
std::uint32_t as_bits(float value) { return std::bit_cast<std::uint32_t>(value); }

}  // namespace

unsigned base_cost(Opcode op) {
  switch (op) {
    case Opcode::kMul:
      return 3;
    case Opcode::kSdiv:
    case Opcode::kUdiv:
      return 10;
    case Opcode::kFadd:
    case Opcode::kFsub:
    case Opcode::kFcmp:
    case Opcode::kFcvtws:
    case Opcode::kFcvtsw:
      return 2;
    case Opcode::kFmul:
      return 3;
    case Opcode::kFdiv:
      return 12;
    case Opcode::kFsqrt:
      return 14;
    default:
      return 1;
  }
}

Cpu::Cpu(UarchModel& uarch, RegFileModel& regs, DeviceBlock& devices)
    : uarch_(uarch), regs_(regs), devices_(devices) {}

void Cpu::reset() {
  pc_ = 4 * static_cast<std::uint32_t>(Vector::kReset);
  cpsr_ = flags::kModeKernel;  // IRQs masked, MMU off
  elr_ = 0;
  spsr_ = 0;
  banked_usp_ = 0;
  in_exception_ = false;
  stop_ = CpuStop::kRunning;
  cycles_ = 0;
  instret_ = 0;
  regs_.reset();
}

std::uint32_t Cpu::reg(unsigned index) const {
  support::require(index < isa::kNumGprs, "Cpu::reg: index out of range");
  return regs_.read(index);
}

void Cpu::set_reg(unsigned index, std::uint32_t value) {
  support::require(index < isa::kNumGprs, "Cpu::set_reg: index out of range");
  regs_.write(index, value);
}

void Cpu::enter_exception(Vector vec, std::uint32_t return_pc) {
  if (in_exception_) {
    // The banked ELR/SPSR would be clobbered: unrecoverable.
    stop_ = CpuStop::kDoubleFault;
    return;
  }
  in_exception_ = true;
  spsr_ = cpsr_;
  elr_ = return_pc;
  // Bank the interrupted context's SP and switch to the kernel stack.
  banked_usp_ = regs_.read(13);
  regs_.write(13, kKernelStackTop);
  // Enter kernel mode with IRQs masked; keep MMU state and flags.
  cpsr_ = (cpsr_ | flags::kModeKernel) & ~flags::kIrqEnable;
  pc_ = 4 * static_cast<std::uint32_t>(vec);
}

Cpu::State Cpu::save_state() const {
  return {pc_,        cpsr_,         elr_,   spsr_, banked_usp_,
          in_exception_, stop_, cycles_, instret_};
}

void Cpu::restore_state(const State& state) {
  pc_ = state.pc;
  cpsr_ = state.cpsr;
  elr_ = state.elr;
  spsr_ = state.spsr;
  banked_usp_ = state.banked_usp;
  in_exception_ = state.in_exception;
  stop_ = state.stop;
  cycles_ = state.cycles;
  instret_ = state.instructions;
}

void Cpu::force_kernel_entry(std::uint32_t pc) {
  if (stop_ != CpuStop::kRunning) return;  // a dead machine stays dead
  in_exception_ = false;
  cpsr_ = (cpsr_ | flags::kModeKernel) & ~flags::kIrqEnable;
  regs_.write(13, kKernelStackTop);
  pc_ = pc;
}

void Cpu::raise_undef() { enter_exception(Vector::kUndef, pc_); }

void Cpu::raise_mem_fault(Vector vec) { enter_exception(vec, pc_); }

void Cpu::set_flags_sub(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t res = a - b;
  std::uint32_t f = cpsr_ & ~(flags::kFlagN | flags::kFlagZ | flags::kFlagC |
                              flags::kFlagV);
  if (res & 0x8000'0000u) f |= flags::kFlagN;
  if (res == 0) f |= flags::kFlagZ;
  if (a >= b) f |= flags::kFlagC;  // no borrow
  if (((a ^ b) & (a ^ res)) & 0x8000'0000u) f |= flags::kFlagV;
  cpsr_ = f;
}

void Cpu::set_flags_fcmp(float a, float b) {
  std::uint32_t f = cpsr_ & ~(flags::kFlagN | flags::kFlagZ | flags::kFlagC |
                              flags::kFlagV);
  if (std::isnan(a) || std::isnan(b)) {
    f |= flags::kFlagV;  // unordered
  } else if (a == b) {
    f |= flags::kFlagZ | flags::kFlagC;
  } else if (a < b) {
    f |= flags::kFlagN;
  } else {
    f |= flags::kFlagC;
  }
  cpsr_ = f;
}

std::uint64_t Cpu::step() {
  if (stop_ != CpuStop::kRunning) return 0;

  if (devices_.irq_pending() && (cpsr_ & flags::kIrqEnable)) {
    enter_exception(Vector::kIrq, pc_);
    cycles_ += kExceptionEntryCost;
    return kExceptionEntryCost;
  }

  if (pc_ % 4 != 0) {
    raise_mem_fault(Vector::kPrefetchAbort);
    cycles_ += kExceptionEntryCost;
    return kExceptionEntryCost;
  }
  const MemResult f = uarch_.fetch(pc_, kernel_mode(), mmu_enabled());
  if (!f.ok()) {
    raise_mem_fault(Vector::kPrefetchAbort);
    const std::uint64_t c = kExceptionEntryCost + uarch_.drain_extra_cycles();
    cycles_ += c;
    return c;
  }

  const auto decoded = isa::decode(f.data);
  if (!decoded) {
    raise_undef();
    const std::uint64_t c = kExceptionEntryCost + uarch_.drain_extra_cycles();
    cycles_ += c;
    return c;
  }

  const std::uint64_t cycles_before = cycles_;
  ++instret_;
  cycles_ += base_cost(decoded->op);
  execute(*decoded);
  cycles_ += uarch_.drain_extra_cycles();
  return cycles_ - cycles_before;
}

void Cpu::execute(const Instruction& inst) {
  const std::uint32_t next_pc = pc_ + 4;
  auto rd = [&] { return regs_.read(inst.rd); };
  auto rn = [&] { return regs_.read(inst.rn); };
  auto rm = [&] { return regs_.read(inst.rm); };
  auto wr = [&](std::uint32_t v) { regs_.write(inst.rd, v); };
  const auto uimm = static_cast<std::uint32_t>(inst.imm);

  switch (inst.op) {
    case Opcode::kAdd: wr(rn() + rm()); break;
    case Opcode::kSub: wr(rn() - rm()); break;
    case Opcode::kAnd: wr(rn() & rm()); break;
    case Opcode::kOrr: wr(rn() | rm()); break;
    case Opcode::kEor: wr(rn() ^ rm()); break;
    case Opcode::kLsl: wr(rn() << (rm() & 31)); break;
    case Opcode::kLsr: wr(rn() >> (rm() & 31)); break;
    case Opcode::kAsr:
      wr(static_cast<std::uint32_t>(static_cast<std::int32_t>(rn()) >>
                                    (rm() & 31)));
      break;
    case Opcode::kMul: wr(rn() * rm()); break;
    case Opcode::kSdiv: {
      const auto a = static_cast<std::int32_t>(rn());
      const auto b = static_cast<std::int32_t>(rm());
      // ARM semantics: divide by zero yields 0; INT_MIN/-1 wraps.
      std::int32_t q = 0;
      if (b != 0) {
        q = (a == std::numeric_limits<std::int32_t>::min() && b == -1)
                ? a
                : a / b;
      }
      wr(static_cast<std::uint32_t>(q));
      break;
    }
    case Opcode::kUdiv: wr(rm() == 0 ? 0 : rn() / rm()); break;
    case Opcode::kCmp: set_flags_sub(rn(), rm()); break;
    case Opcode::kMov: wr(rm()); break;

    case Opcode::kFadd: wr(as_bits(as_float(rn()) + as_float(rm()))); break;
    case Opcode::kFsub: wr(as_bits(as_float(rn()) - as_float(rm()))); break;
    case Opcode::kFmul: wr(as_bits(as_float(rn()) * as_float(rm()))); break;
    case Opcode::kFdiv: wr(as_bits(as_float(rn()) / as_float(rm()))); break;
    case Opcode::kFcmp: set_flags_fcmp(as_float(rn()), as_float(rm())); break;
    case Opcode::kFcvtws: {
      const float v = as_float(rn());
      std::int32_t out = 0;
      if (std::isnan(v)) {
        out = 0;
      } else if (v >= 2147483648.0f) {
        out = std::numeric_limits<std::int32_t>::max();
      } else if (v < -2147483648.0f) {
        out = std::numeric_limits<std::int32_t>::min();
      } else {
        out = static_cast<std::int32_t>(v);
      }
      wr(static_cast<std::uint32_t>(out));
      break;
    }
    case Opcode::kFcvtsw:
      wr(as_bits(static_cast<float>(static_cast<std::int32_t>(rn()))));
      break;
    case Opcode::kFsqrt: wr(as_bits(std::sqrt(as_float(rn())))); break;

    case Opcode::kAddi: wr(rn() + uimm); break;
    case Opcode::kSubi: wr(rn() - uimm); break;
    case Opcode::kAndi: wr(rn() & uimm); break;
    case Opcode::kOrri: wr(rn() | uimm); break;
    case Opcode::kEori: wr(rn() ^ uimm); break;
    case Opcode::kLsli: wr(rn() << (uimm & 31)); break;
    case Opcode::kLsri: wr(rn() >> (uimm & 31)); break;
    case Opcode::kAsri:
      wr(static_cast<std::uint32_t>(static_cast<std::int32_t>(rn()) >>
                                    (uimm & 31)));
      break;
    case Opcode::kCmpi: set_flags_sub(rn(), uimm); break;
    case Opcode::kMovi: wr(uimm & 0xffffu); break;
    case Opcode::kMovt: wr((rd() & 0xffffu) | (uimm << 16)); break;

    case Opcode::kLdr:
    case Opcode::kLdrb:
    case Opcode::kLdrh:
    case Opcode::kLdrr: {
      const std::uint32_t va =
          inst.op == Opcode::kLdrr ? rn() + rm() : rn() + uimm;
      const unsigned size = inst.op == Opcode::kLdrb   ? 1
                            : inst.op == Opcode::kLdrh ? 2
                                                       : 4;
      const MemResult r = uarch_.read(va, size, kernel_mode(), mmu_enabled());
      if (!r.ok()) {
        raise_mem_fault(Vector::kDataAbort);
        return;
      }
      wr(r.data);
      break;
    }
    case Opcode::kStr:
    case Opcode::kStrb:
    case Opcode::kStrh:
    case Opcode::kStrr: {
      const std::uint32_t va =
          inst.op == Opcode::kStrr ? rn() + rm() : rn() + uimm;
      const unsigned size = inst.op == Opcode::kStrb   ? 1
                            : inst.op == Opcode::kStrh ? 2
                                                       : 4;
      const MemFault fault =
          uarch_.write(va, size, rd(), kernel_mode(), mmu_enabled());
      if (fault != MemFault::kNone) {
        raise_mem_fault(Vector::kDataAbort);
        return;
      }
      break;
    }

    case Opcode::kB: {
      const bool taken = isa::cond_holds(inst.cond, cpsr_);
      const std::uint32_t target =
          next_pc + static_cast<std::uint32_t>(inst.imm) * 4;
      uarch_.on_branch(pc_, taken, target);
      pc_ = taken ? target : next_pc;
      return;
    }
    case Opcode::kBl: {
      const std::uint32_t target =
          next_pc + static_cast<std::uint32_t>(inst.imm) * 4;
      regs_.write(14, next_pc);
      uarch_.on_branch(pc_, true, target);
      pc_ = target;
      return;
    }
    case Opcode::kBr: {
      const std::uint32_t target = rn();
      uarch_.on_branch(pc_, true, target);
      pc_ = target;
      return;
    }
    case Opcode::kBlr: {
      const std::uint32_t target = rn();
      regs_.write(14, next_pc);
      uarch_.on_branch(pc_, true, target);
      pc_ = target;
      return;
    }

    case Opcode::kSvc:
      enter_exception(Vector::kSvc, next_pc);
      return;
    case Opcode::kEret:
      if (!kernel_mode()) {
        raise_undef();
        return;
      }
      in_exception_ = false;
      regs_.write(13, banked_usp_);
      pc_ = elr_;
      cpsr_ = spsr_;
      return;
    case Opcode::kMrs:
      if (!kernel_mode()) { raise_undef(); return; }
      wr(cpsr_);
      break;
    case Opcode::kMsr:
      if (!kernel_mode()) { raise_undef(); return; }
      cpsr_ = rn();
      break;
    case Opcode::kMrsElr:
      if (!kernel_mode()) { raise_undef(); return; }
      wr(elr_);
      break;
    case Opcode::kMsrElr:
      if (!kernel_mode()) { raise_undef(); return; }
      elr_ = rn();
      break;
    case Opcode::kMrsSpsr:
      if (!kernel_mode()) { raise_undef(); return; }
      wr(spsr_);
      break;
    case Opcode::kMsrSpsr:
      if (!kernel_mode()) { raise_undef(); return; }
      spsr_ = rn();
      break;
    case Opcode::kMrsUsp:
      if (!kernel_mode()) { raise_undef(); return; }
      wr(banked_usp_);
      break;
    case Opcode::kMsrUsp:
      if (!kernel_mode()) { raise_undef(); return; }
      banked_usp_ = rn();
      break;
    case Opcode::kTlbFlush:
      if (!kernel_mode()) { raise_undef(); return; }
      uarch_.flush_tlbs();
      break;
    case Opcode::kHlt:
      if (!kernel_mode()) { raise_undef(); return; }
      stop_ = CpuStop::kHalted;
      return;
    case Opcode::kNop:
      break;
    case Opcode::kOpcodeCount:
      raise_undef();
      return;
  }
  pc_ = next_pc;
}

}  // namespace sefi::sim
