#include "sefi/sim/cpu.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <limits>

#include "sefi/support/error.hpp"

namespace sefi::sim {

namespace {

using isa::Cond;
using isa::Instruction;
using isa::Opcode;
namespace flags = isa::cpsr;

constexpr unsigned kExceptionEntryCost = 3;

/// Straight-line predecode depth on a uop miss: enough to cover the
/// bodies of the suite's hot loops in one or two fills without paying
/// probe+decode for code that never runs.
constexpr unsigned kPredecodeRunAhead = 8;

float as_float(std::uint32_t bits) { return std::bit_cast<float>(bits); }
std::uint32_t as_bits(float value) { return std::bit_cast<std::uint32_t>(value); }

}  // namespace

// One static handler per opcode, each replicating the exact architectural
// semantics *and side-effect order* of the original dispatch switch: the
// same register-file reads (no extras — an added read could latch a
// forensics watch the baseline would not), the same uarch calls, the same
// early returns on faults. Handlers advance pc_ themselves; fall-through
// is pc_ += 4.
struct ExecOps {
  // R-format ALU: read rn and rm, write rd.
#define SEFI_OP_ALU_RR(NAME, EXPR)                        \
  static void NAME(Cpu& c, const Instruction& i) {        \
    const std::uint32_t rn = c.regs_.read(i.rn);          \
    const std::uint32_t rm = c.regs_.read(i.rm);          \
    c.regs_.write(i.rd, (EXPR));                          \
    c.pc_ += 4;                                           \
  }
  SEFI_OP_ALU_RR(add, rn + rm)
  SEFI_OP_ALU_RR(sub, rn - rm)
  SEFI_OP_ALU_RR(and_, rn & rm)
  SEFI_OP_ALU_RR(orr, rn | rm)
  SEFI_OP_ALU_RR(eor, rn ^ rm)
  SEFI_OP_ALU_RR(lsl, rn << (rm & 31))
  SEFI_OP_ALU_RR(lsr, rn >> (rm & 31))
  SEFI_OP_ALU_RR(asr, static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(rn) >> (rm & 31)))
  SEFI_OP_ALU_RR(mul, rn * rm)
  SEFI_OP_ALU_RR(udiv, rm == 0 ? 0 : rn / rm)
  SEFI_OP_ALU_RR(fadd, as_bits(as_float(rn) + as_float(rm)))
  SEFI_OP_ALU_RR(fsub, as_bits(as_float(rn) - as_float(rm)))
  SEFI_OP_ALU_RR(fmul, as_bits(as_float(rn) * as_float(rm)))
  SEFI_OP_ALU_RR(fdiv, as_bits(as_float(rn) / as_float(rm)))
#undef SEFI_OP_ALU_RR

  static void sdiv(Cpu& c, const Instruction& i) {
    const auto a = static_cast<std::int32_t>(c.regs_.read(i.rn));
    const auto b = static_cast<std::int32_t>(c.regs_.read(i.rm));
    // ARM semantics: divide by zero yields 0; INT_MIN/-1 wraps.
    std::int32_t q = 0;
    if (b != 0) {
      q = (a == std::numeric_limits<std::int32_t>::min() && b == -1) ? a
                                                                     : a / b;
    }
    c.regs_.write(i.rd, static_cast<std::uint32_t>(q));
    c.pc_ += 4;
  }

  static void cmp(Cpu& c, const Instruction& i) {
    const std::uint32_t rn = c.regs_.read(i.rn);
    const std::uint32_t rm = c.regs_.read(i.rm);
    c.set_flags_sub(rn, rm);
    c.pc_ += 4;
  }

  static void mov(Cpu& c, const Instruction& i) {
    c.regs_.write(i.rd, c.regs_.read(i.rm));
    c.pc_ += 4;
  }

  static void fcmp(Cpu& c, const Instruction& i) {
    const std::uint32_t rn = c.regs_.read(i.rn);
    const std::uint32_t rm = c.regs_.read(i.rm);
    c.set_flags_fcmp(as_float(rn), as_float(rm));
    c.pc_ += 4;
  }

  static void fcvtws(Cpu& c, const Instruction& i) {
    const float v = as_float(c.regs_.read(i.rn));
    std::int32_t out = 0;
    if (std::isnan(v)) {
      out = 0;
    } else if (v >= 2147483648.0f) {
      out = std::numeric_limits<std::int32_t>::max();
    } else if (v < -2147483648.0f) {
      out = std::numeric_limits<std::int32_t>::min();
    } else {
      out = static_cast<std::int32_t>(v);
    }
    c.regs_.write(i.rd, static_cast<std::uint32_t>(out));
    c.pc_ += 4;
  }

  static void fcvtsw(Cpu& c, const Instruction& i) {
    c.regs_.write(i.rd, as_bits(static_cast<float>(static_cast<std::int32_t>(
                            c.regs_.read(i.rn)))));
    c.pc_ += 4;
  }

  static void fsqrt(Cpu& c, const Instruction& i) {
    c.regs_.write(i.rd, as_bits(std::sqrt(as_float(c.regs_.read(i.rn)))));
    c.pc_ += 4;
  }

  // I-format ALU: read rn, write rd. imm is pre-extended by the decoder.
#define SEFI_OP_ALU_RI(NAME, EXPR)                        \
  static void NAME(Cpu& c, const Instruction& i) {        \
    const std::uint32_t rn = c.regs_.read(i.rn);          \
    const auto uimm = static_cast<std::uint32_t>(i.imm);  \
    (void)uimm;                                           \
    c.regs_.write(i.rd, (EXPR));                          \
    c.pc_ += 4;                                           \
  }
  SEFI_OP_ALU_RI(addi, rn + uimm)
  SEFI_OP_ALU_RI(subi, rn - uimm)
  SEFI_OP_ALU_RI(andi, rn & uimm)
  SEFI_OP_ALU_RI(orri, rn | uimm)
  SEFI_OP_ALU_RI(eori, rn ^ uimm)
  SEFI_OP_ALU_RI(lsli, rn << (uimm & 31))
  SEFI_OP_ALU_RI(lsri, rn >> (uimm & 31))
  SEFI_OP_ALU_RI(asri, static_cast<std::uint32_t>(
                           static_cast<std::int32_t>(rn) >> (uimm & 31)))
#undef SEFI_OP_ALU_RI

  static void cmpi(Cpu& c, const Instruction& i) {
    c.set_flags_sub(c.regs_.read(i.rn), static_cast<std::uint32_t>(i.imm));
    c.pc_ += 4;
  }

  static void movi(Cpu& c, const Instruction& i) {
    c.regs_.write(i.rd, static_cast<std::uint32_t>(i.imm) & 0xffffu);
    c.pc_ += 4;
  }

  static void movt(Cpu& c, const Instruction& i) {
    const std::uint32_t rd = c.regs_.read(i.rd);
    c.regs_.write(i.rd, (rd & 0xffffu) |
                            (static_cast<std::uint32_t>(i.imm) << 16));
    c.pc_ += 4;
  }

  // Loads: address from rn [+ rm | + imm], fault raises a data abort and
  // leaves pc_ on the faulting instruction (enter_exception rewrites it).
  static void do_load(Cpu& c, const Instruction& i, std::uint32_t va,
                      unsigned size) {
    const MemResult r =
        c.uarch_.read(va, size, c.kernel_mode(), c.mmu_enabled());
    if (!r.ok()) {
      c.raise_mem_fault(Vector::kDataAbort);
      return;
    }
    c.regs_.write(i.rd, r.data);
    c.pc_ += 4;
  }
  static void ldr(Cpu& c, const Instruction& i) {
    do_load(c, i, c.regs_.read(i.rn) + static_cast<std::uint32_t>(i.imm), 4);
  }
  static void ldrb(Cpu& c, const Instruction& i) {
    do_load(c, i, c.regs_.read(i.rn) + static_cast<std::uint32_t>(i.imm), 1);
  }
  static void ldrh(Cpu& c, const Instruction& i) {
    do_load(c, i, c.regs_.read(i.rn) + static_cast<std::uint32_t>(i.imm), 2);
  }
  static void ldrr(Cpu& c, const Instruction& i) {
    const std::uint32_t rn = c.regs_.read(i.rn);
    const std::uint32_t rm = c.regs_.read(i.rm);
    do_load(c, i, rn + rm, 4);
  }

  static void do_store(Cpu& c, const Instruction& i, std::uint32_t va,
                       unsigned size) {
    const std::uint32_t value = c.regs_.read(i.rd);
    const MemFault fault =
        c.uarch_.write(va, size, value, c.kernel_mode(), c.mmu_enabled());
    if (fault != MemFault::kNone) {
      c.raise_mem_fault(Vector::kDataAbort);
      return;
    }
    c.pc_ += 4;
  }
  static void str(Cpu& c, const Instruction& i) {
    do_store(c, i, c.regs_.read(i.rn) + static_cast<std::uint32_t>(i.imm), 4);
  }
  static void strb(Cpu& c, const Instruction& i) {
    do_store(c, i, c.regs_.read(i.rn) + static_cast<std::uint32_t>(i.imm), 1);
  }
  static void strh(Cpu& c, const Instruction& i) {
    do_store(c, i, c.regs_.read(i.rn) + static_cast<std::uint32_t>(i.imm), 2);
  }
  static void strr(Cpu& c, const Instruction& i) {
    const std::uint32_t rn = c.regs_.read(i.rn);
    const std::uint32_t rm = c.regs_.read(i.rm);
    do_store(c, i, rn + rm, 4);
  }

  // Branches. on_branch sees the branch's own pc (not yet advanced).
  static void b(Cpu& c, const Instruction& i) {
    const std::uint32_t next_pc = c.pc_ + 4;
    const bool taken = isa::cond_holds(i.cond, c.cpsr_);
    const std::uint32_t target =
        next_pc + static_cast<std::uint32_t>(i.imm) * 4;
    c.uarch_.on_branch(c.pc_, taken, target);
    c.pc_ = taken ? target : next_pc;
  }
  static void bl(Cpu& c, const Instruction& i) {
    const std::uint32_t next_pc = c.pc_ + 4;
    const std::uint32_t target =
        next_pc + static_cast<std::uint32_t>(i.imm) * 4;
    c.regs_.write(14, next_pc);
    c.uarch_.on_branch(c.pc_, true, target);
    c.pc_ = target;
  }
  static void br(Cpu& c, const Instruction& i) {
    const std::uint32_t target = c.regs_.read(i.rn);
    c.uarch_.on_branch(c.pc_, true, target);
    c.pc_ = target;
  }
  static void blr(Cpu& c, const Instruction& i) {
    const std::uint32_t target = c.regs_.read(i.rn);
    c.regs_.write(14, c.pc_ + 4);
    c.uarch_.on_branch(c.pc_, true, target);
    c.pc_ = target;
  }

  // System.
  static void svc(Cpu& c, const Instruction&) {
    c.enter_exception(Vector::kSvc, c.pc_ + 4);
  }
  static void eret(Cpu& c, const Instruction&) {
    if (!c.kernel_mode()) {
      c.raise_undef();
      return;
    }
    c.in_exception_ = false;
    c.regs_.write(13, c.banked_usp_);
    c.pc_ = c.elr_;
    c.cpsr_ = c.spsr_;
  }
#define SEFI_OP_MRS(NAME, SRC)                            \
  static void NAME(Cpu& c, const Instruction& i) {        \
    if (!c.kernel_mode()) {                               \
      c.raise_undef();                                    \
      return;                                             \
    }                                                     \
    c.regs_.write(i.rd, (SRC));                           \
    c.pc_ += 4;                                           \
  }
#define SEFI_OP_MSR(NAME, DST)                            \
  static void NAME(Cpu& c, const Instruction& i) {        \
    if (!c.kernel_mode()) {                               \
      c.raise_undef();                                    \
      return;                                             \
    }                                                     \
    (DST) = c.regs_.read(i.rn);                           \
    c.pc_ += 4;                                           \
  }
  SEFI_OP_MRS(mrs, c.cpsr_)
  SEFI_OP_MSR(msr, c.cpsr_)
  SEFI_OP_MRS(mrs_elr, c.elr_)
  SEFI_OP_MSR(msr_elr, c.elr_)
  SEFI_OP_MRS(mrs_spsr, c.spsr_)
  SEFI_OP_MSR(msr_spsr, c.spsr_)
  SEFI_OP_MRS(mrs_usp, c.banked_usp_)
  SEFI_OP_MSR(msr_usp, c.banked_usp_)
#undef SEFI_OP_MRS
#undef SEFI_OP_MSR

  static void tlbflush(Cpu& c, const Instruction&) {
    if (!c.kernel_mode()) {
      c.raise_undef();
      return;
    }
    c.uarch_.flush_tlbs();
    c.pc_ += 4;
  }
  static void hlt(Cpu& c, const Instruction&) {
    if (!c.kernel_mode()) {
      c.raise_undef();
      return;
    }
    c.stop_ = CpuStop::kHalted;
  }
  static void nop(Cpu& c, const Instruction&) { c.pc_ += 4; }
  static void undef(Cpu& c, const Instruction&) { c.raise_undef(); }
};

namespace {

// The dispatch/cost/classification tables. Built at compile time, indexed
// by Opcode, with one extra sentinel slot for kOpcodeCount (undefined
// encoding). make_handler_table() fills slots by enum name, so reordering
// the Opcode enum cannot silently mis-dispatch, and the final check makes
// an unhandled opcode a compile error instead of a null call.

constexpr std::size_t kTableSize =
    static_cast<std::size_t>(Opcode::kOpcodeCount) + 1;

using HandlerTable = std::array<UopHandler, kTableSize>;
using CostTable = std::array<std::uint8_t, kTableSize>;
using FlagTable = std::array<bool, kTableSize>;

consteval HandlerTable make_handler_table() {
  HandlerTable t{};
  // Coverage is tracked in a parallel bool array rather than by comparing
  // the stored pointers against null afterwards: function-address
  // comparisons are not constant expressions under -fsanitize.
  FlagTable filled{};
  auto set = [&t, &filled](Opcode op, UopHandler fn) {
    t[static_cast<std::size_t>(op)] = fn;
    filled[static_cast<std::size_t>(op)] = true;
  };
  set(Opcode::kAdd, &ExecOps::add);
  set(Opcode::kSub, &ExecOps::sub);
  set(Opcode::kAnd, &ExecOps::and_);
  set(Opcode::kOrr, &ExecOps::orr);
  set(Opcode::kEor, &ExecOps::eor);
  set(Opcode::kLsl, &ExecOps::lsl);
  set(Opcode::kLsr, &ExecOps::lsr);
  set(Opcode::kAsr, &ExecOps::asr);
  set(Opcode::kMul, &ExecOps::mul);
  set(Opcode::kSdiv, &ExecOps::sdiv);
  set(Opcode::kUdiv, &ExecOps::udiv);
  set(Opcode::kCmp, &ExecOps::cmp);
  set(Opcode::kMov, &ExecOps::mov);
  set(Opcode::kFadd, &ExecOps::fadd);
  set(Opcode::kFsub, &ExecOps::fsub);
  set(Opcode::kFmul, &ExecOps::fmul);
  set(Opcode::kFdiv, &ExecOps::fdiv);
  set(Opcode::kFcmp, &ExecOps::fcmp);
  set(Opcode::kFcvtws, &ExecOps::fcvtws);
  set(Opcode::kFcvtsw, &ExecOps::fcvtsw);
  set(Opcode::kFsqrt, &ExecOps::fsqrt);
  set(Opcode::kAddi, &ExecOps::addi);
  set(Opcode::kSubi, &ExecOps::subi);
  set(Opcode::kAndi, &ExecOps::andi);
  set(Opcode::kOrri, &ExecOps::orri);
  set(Opcode::kEori, &ExecOps::eori);
  set(Opcode::kLsli, &ExecOps::lsli);
  set(Opcode::kLsri, &ExecOps::lsri);
  set(Opcode::kAsri, &ExecOps::asri);
  set(Opcode::kCmpi, &ExecOps::cmpi);
  set(Opcode::kMovi, &ExecOps::movi);
  set(Opcode::kMovt, &ExecOps::movt);
  set(Opcode::kLdr, &ExecOps::ldr);
  set(Opcode::kStr, &ExecOps::str);
  set(Opcode::kLdrb, &ExecOps::ldrb);
  set(Opcode::kStrb, &ExecOps::strb);
  set(Opcode::kLdrh, &ExecOps::ldrh);
  set(Opcode::kStrh, &ExecOps::strh);
  set(Opcode::kLdrr, &ExecOps::ldrr);
  set(Opcode::kStrr, &ExecOps::strr);
  set(Opcode::kB, &ExecOps::b);
  set(Opcode::kBl, &ExecOps::bl);
  set(Opcode::kBr, &ExecOps::br);
  set(Opcode::kBlr, &ExecOps::blr);
  set(Opcode::kSvc, &ExecOps::svc);
  set(Opcode::kEret, &ExecOps::eret);
  set(Opcode::kMrs, &ExecOps::mrs);
  set(Opcode::kMsr, &ExecOps::msr);
  set(Opcode::kMrsElr, &ExecOps::mrs_elr);
  set(Opcode::kMsrElr, &ExecOps::msr_elr);
  set(Opcode::kMrsSpsr, &ExecOps::mrs_spsr);
  set(Opcode::kMsrSpsr, &ExecOps::msr_spsr);
  set(Opcode::kMrsUsp, &ExecOps::mrs_usp);
  set(Opcode::kMsrUsp, &ExecOps::msr_usp);
  set(Opcode::kTlbFlush, &ExecOps::tlbflush);
  set(Opcode::kHlt, &ExecOps::hlt);
  set(Opcode::kNop, &ExecOps::nop);
  set(Opcode::kOpcodeCount, &ExecOps::undef);
  for (const bool was_set : filled) {
    if (!was_set) throw "opcode without a handler";
  }
  return t;
}

consteval CostTable make_cost_table() {
  CostTable t{};
  t.fill(1);
  auto set = [&t](Opcode op, std::uint8_t cost) {
    t[static_cast<std::size_t>(op)] = cost;
  };
  set(Opcode::kMul, 3);
  set(Opcode::kSdiv, 10);
  set(Opcode::kUdiv, 10);
  set(Opcode::kFadd, 2);
  set(Opcode::kFsub, 2);
  set(Opcode::kFcmp, 2);
  set(Opcode::kFcvtws, 2);
  set(Opcode::kFcvtsw, 2);
  set(Opcode::kFmul, 3);
  set(Opcode::kFdiv, 12);
  set(Opcode::kFsqrt, 14);
  return t;
}

/// Opcodes whose handlers may call into the uarch model (loads/stores,
/// branch resolution, TLB flushes) and so may accrue stall cycles that a
/// step must drain. Everything else provably leaves extra_cycles at zero,
/// letting the block-tier fast path skip drain_extra_cycles() entirely.
consteval FlagTable make_touches_uarch_table() {
  FlagTable t{};
  auto set = [&t](Opcode op) { t[static_cast<std::size_t>(op)] = true; };
  set(Opcode::kLdr);
  set(Opcode::kStr);
  set(Opcode::kLdrb);
  set(Opcode::kStrb);
  set(Opcode::kLdrh);
  set(Opcode::kStrh);
  set(Opcode::kLdrr);
  set(Opcode::kStrr);
  set(Opcode::kB);
  set(Opcode::kBl);
  set(Opcode::kBr);
  set(Opcode::kBlr);
  set(Opcode::kTlbFlush);
  return t;
}

/// Opcodes that end a straight-line predecode run (control flow leaves or
/// the machine stops). Mode-changing system ops (msr, eret targets) need
/// no special casing: every uop records the kernel/MMU bits it was
/// validated under, and a mode change simply misses on the compare.
consteval FlagTable make_ends_block_table() {
  FlagTable t{};
  auto set = [&t](Opcode op) { t[static_cast<std::size_t>(op)] = true; };
  set(Opcode::kB);
  set(Opcode::kBl);
  set(Opcode::kBr);
  set(Opcode::kBlr);
  set(Opcode::kSvc);
  set(Opcode::kEret);
  set(Opcode::kHlt);
  return t;
}

constexpr HandlerTable kHandlers = make_handler_table();
constexpr CostTable kBaseCost = make_cost_table();
constexpr FlagTable kTouchesUarch = make_touches_uarch_table();
constexpr FlagTable kEndsBlock = make_ends_block_table();

}  // namespace

unsigned base_cost(Opcode op) {
  return kBaseCost[static_cast<std::size_t>(op)];
}

Cpu::Cpu(UarchModel& uarch, RegFileModel& regs, DeviceBlock& devices)
    : uarch_(uarch),
      regs_(regs),
      devices_(devices),
      fastpath_(fastpath_from_env()) {
  if (fastpath_ != FastPath::kOff) uops_ = std::make_unique<UopCache>();
}

void Cpu::set_fastpath(FastPath mode) {
  fastpath_ = mode;
  uops_ = mode == FastPath::kOff ? nullptr : std::make_unique<UopCache>();
}

void Cpu::reset() {
  pc_ = 4 * static_cast<std::uint32_t>(Vector::kReset);
  cpsr_ = flags::kModeKernel;  // IRQs masked, MMU off
  elr_ = 0;
  spsr_ = 0;
  banked_usp_ = 0;
  in_exception_ = false;
  stop_ = CpuStop::kRunning;
  cycles_ = 0;
  instret_ = 0;
  regs_.reset();
  // Correctness never needs this (stale uops miss on their word or stamp
  // guards), but a cold boot makes every cached uop garbage; drop them.
  if (uops_) uops_->clear();
}

std::uint32_t Cpu::reg(unsigned index) const {
  support::require(index < isa::kNumGprs, "Cpu::reg: index out of range");
  return regs_.read(index);
}

void Cpu::set_reg(unsigned index, std::uint32_t value) {
  support::require(index < isa::kNumGprs, "Cpu::set_reg: index out of range");
  regs_.write(index, value);
}

void Cpu::enter_exception(Vector vec, std::uint32_t return_pc) {
  if (in_exception_) {
    // The banked ELR/SPSR would be clobbered: unrecoverable.
    stop_ = CpuStop::kDoubleFault;
    return;
  }
  in_exception_ = true;
  spsr_ = cpsr_;
  elr_ = return_pc;
  // Bank the interrupted context's SP and switch to the kernel stack.
  banked_usp_ = regs_.read(13);
  regs_.write(13, kKernelStackTop);
  // Enter kernel mode with IRQs masked; keep MMU state and flags.
  cpsr_ = (cpsr_ | flags::kModeKernel) & ~flags::kIrqEnable;
  pc_ = 4 * static_cast<std::uint32_t>(vec);
}

Cpu::State Cpu::save_state() const {
  return {pc_,        cpsr_,         elr_,   spsr_, banked_usp_,
          in_exception_, stop_, cycles_, instret_};
}

void Cpu::restore_state(const State& state) {
  pc_ = state.pc;
  cpsr_ = state.cpsr;
  elr_ = state.elr;
  spsr_ = state.spsr;
  banked_usp_ = state.banked_usp;
  in_exception_ = state.in_exception;
  stop_ = state.stop;
  cycles_ = state.cycles;
  instret_ = state.instructions;
  // lifetime_instret_ deliberately keeps counting across restores. The
  // uop cache also survives: block-tier entries are guarded by the uarch
  // generation stamp (which every snapshot restore bumps), decode-tier
  // entries by the word compare against the real fetch.
}

void Cpu::force_kernel_entry(std::uint32_t pc) {
  if (stop_ != CpuStop::kRunning) return;  // a dead machine stays dead
  in_exception_ = false;
  cpsr_ = (cpsr_ | flags::kModeKernel) & ~flags::kIrqEnable;
  regs_.write(13, kKernelStackTop);
  pc_ = pc;
}

void Cpu::raise_undef() { enter_exception(Vector::kUndef, pc_); }

void Cpu::raise_mem_fault(Vector vec) { enter_exception(vec, pc_); }

void Cpu::set_flags_sub(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t res = a - b;
  std::uint32_t f = cpsr_ & ~(flags::kFlagN | flags::kFlagZ | flags::kFlagC |
                              flags::kFlagV);
  if (res & 0x8000'0000u) f |= flags::kFlagN;
  if (res == 0) f |= flags::kFlagZ;
  if (a >= b) f |= flags::kFlagC;  // no borrow
  if (((a ^ b) & (a ^ res)) & 0x8000'0000u) f |= flags::kFlagV;
  cpsr_ = f;
}

void Cpu::set_flags_fcmp(float a, float b) {
  std::uint32_t f = cpsr_ & ~(flags::kFlagN | flags::kFlagZ | flags::kFlagC |
                              flags::kFlagV);
  if (std::isnan(a) || std::isnan(b)) {
    f |= flags::kFlagV;  // unordered
  } else if (a == b) {
    f |= flags::kFlagZ | flags::kFlagC;
  } else if (a < b) {
    f |= flags::kFlagN;
  } else {
    f |= flags::kFlagC;
  }
  cpsr_ = f;
}

std::uint64_t Cpu::step() {
  if (stop_ != CpuStop::kRunning) return 0;

  if (devices_.irq_pending() && (cpsr_ & flags::kIrqEnable)) {
    enter_exception(Vector::kIrq, pc_);
    cycles_ += kExceptionEntryCost;
    return kExceptionEntryCost;
  }

  if (pc_ % 4 != 0) {
    raise_mem_fault(Vector::kPrefetchAbort);
    cycles_ += kExceptionEntryCost;
    return kExceptionEntryCost;
  }

  if (fastpath_ != FastPath::kOff) return step_fast();

  const MemResult f = uarch_.fetch(pc_, kernel_mode(), mmu_enabled());
  if (!f.ok()) {
    raise_mem_fault(Vector::kPrefetchAbort);
    const std::uint64_t c = kExceptionEntryCost + uarch_.drain_extra_cycles();
    cycles_ += c;
    return c;
  }

  const auto decoded = isa::decode(f.data);
  if (!decoded) {
    raise_undef();
    const std::uint64_t c = kExceptionEntryCost + uarch_.drain_extra_cycles();
    cycles_ += c;
    return c;
  }

  const std::uint64_t cycles_before = cycles_;
  ++instret_;
  ++lifetime_instret_;
  const auto idx = static_cast<std::size_t>(decoded->op);
  cycles_ += kBaseCost[idx];
  kHandlers[idx](*this, *decoded);
  cycles_ += uarch_.drain_extra_cycles();
  return cycles_ - cycles_before;
}

// IRQ and alignment checks already ran (same code path as the slow tier);
// from here the step is fetch + decode + execute.
std::uint64_t Cpu::step_fast() {
  const bool kernel = kernel_mode();
  const bool mmu = mmu_enabled();
  Uop& e = uops_->slot(pc_);

  // Block-tier fast hit: the entry was validated by a side-effect-free
  // probe under this exact (global stamp, set stamp, TLB-entry stamp,
  // mode) tuple, and all three stamps still match, so a real fetch would
  // return e.word while mutating nothing and stalling nothing — skip it.
  // Decode-tier entries never carry a stamp, so they can't take this
  // branch.
  if (e.pc == pc_ && e.kernel == kernel && e.mmu == mmu &&
      uarch_.ifetch_proof_ok(e.stamp, e.l1i_set, e.set_stamp, e.itlb_entry,
                             e.itlb_stamp)) {
    ++uop_stats_.hits;
    const std::uint64_t cycles_before = cycles_;
    ++instret_;
    ++lifetime_instret_;
    cycles_ += e.cost;
    e.fn(*this, e.inst);
    // ALU/system uops can't have accrued stall cycles (extra_cycles is
    // always zero at step entry: every exit path below drains or provably
    // accrued nothing), so the drain is skipped for them.
    if (e.touches_uarch) cycles_ += uarch_.drain_extra_cycles();
    return cycles_ - cycles_before;
  }

  // Real fetch: every miss fill, walk stall, counter increment, and
  // forensics-watch latch happens exactly as on the slow tier.
  const MemResult f = uarch_.fetch(pc_, kernel, mmu);
  if (!f.ok()) {
    raise_mem_fault(Vector::kPrefetchAbort);
    const std::uint64_t c = kExceptionEntryCost + uarch_.drain_extra_cycles();
    cycles_ += c;
    return c;
  }

  if (e.pc == pc_ && e.word == f.data) {
    ++uop_stats_.decode_hits;  // word verified: the decode is still valid
  } else {
    if (e.pc == pc_) ++uop_stats_.invalidations;
    ++uop_stats_.misses;
    const auto decoded = isa::decode(f.data);
    if (!decoded) {
      e = Uop{};  // don't cache undefined encodings
      raise_undef();
      const std::uint64_t c =
          kExceptionEntryCost + uarch_.drain_extra_cycles();
      cycles_ += c;
      return c;
    }
    const auto idx = static_cast<std::size_t>(decoded->op);
    e.pc = pc_;
    e.word = f.data;
    e.inst = *decoded;
    e.fn = kHandlers[idx];
    e.cost = kBaseCost[idx];
    e.touches_uarch = kTouchesUarch[idx];
  }
  e.kernel = kernel;
  e.mmu = mmu;
  e.stamp = 0;
  if (fastpath_ == FastPath::kBlock) restamp_and_predecode(e);

  const std::uint64_t cycles_before = cycles_;
  ++instret_;
  ++lifetime_instret_;
  cycles_ += e.cost;
  e.fn(*this, e.inst);
  cycles_ += uarch_.drain_extra_cycles();  // the real fetch may have stalled
  return cycles_ - cycles_before;
}

// Stamps `entry` if the model proves a fetch of it would now be a pure
// hit, then predecodes the straight-line run behind it under the same
// generation. Probes are side-effect-free, so predecoding N instructions
// ahead is *observably identical* to not predecoding them: the proof that
// a future fetch replays purely is established now and enforced later by
// the stamp compare at hit time.
void Cpu::restamp_and_predecode(Uop& entry) {
  // Read the stamp AFTER the caller's real fetch: a miss fill just bumped
  // it, and the entry must be tagged with the post-fill generation.
  const std::uint64_t stamp = uarch_.ifetch_stamp();
  if (stamp == 0) return;  // no purity guarantee (model or armed watch)
  UarchModel::FetchProof proof;
  if (!uarch_.fetch_probe(entry.pc, entry.kernel, entry.mmu, &proof) ||
      proof.word != entry.word) {
    return;  // not a pure hit (e.g. a corrupted tag aliased the line)
  }
  entry.stamp = stamp;
  entry.l1i_set = proof.l1i_set;
  entry.set_stamp = proof.l1i_set_stamp;
  entry.itlb_entry = proof.itlb_entry;
  entry.itlb_stamp = proof.itlb_stamp;
  if (kEndsBlock[static_cast<std::size_t>(entry.inst.op)]) return;
  std::uint32_t va = entry.pc;
  for (unsigned n = 0; n < kPredecodeRunAhead; ++n) {
    va += 4;
    Uop& next = uops_->slot(va);
    if (next.pc == va && next.stamp == stamp && next.kernel == entry.kernel &&
        next.mmu == entry.mmu &&
        uarch_.ifetch_proof_ok(next.stamp, next.l1i_set, next.set_stamp,
                               next.itlb_entry, next.itlb_stamp)) {
      break;  // already predecoded under this generation
    }
    if (!uarch_.fetch_probe(va, entry.kernel, entry.mmu, &proof)) break;
    const auto decoded = isa::decode(proof.word);
    if (!decoded) break;
    const auto idx = static_cast<std::size_t>(decoded->op);
    next.pc = va;
    next.word = proof.word;
    next.inst = *decoded;
    next.fn = kHandlers[idx];
    next.cost = kBaseCost[idx];
    next.touches_uarch = kTouchesUarch[idx];
    next.kernel = entry.kernel;
    next.mmu = entry.mmu;
    next.stamp = stamp;
    next.l1i_set = proof.l1i_set;
    next.set_stamp = proof.l1i_set_stamp;
    next.itlb_entry = proof.itlb_entry;
    next.itlb_stamp = proof.itlb_stamp;
    if (kEndsBlock[idx]) break;
  }
}

void Cpu::execute(const Instruction& inst) {
  kHandlers[static_cast<std::size_t>(inst.op)](*this, inst);
}

}  // namespace sefi::sim
