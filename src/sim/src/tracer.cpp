#include "sefi/sim/tracer.hpp"

#include <array>
#include <sstream>

#include "sefi/isa/isa.hpp"

namespace sefi::sim {

std::string trace_execution(Machine& machine, const TraceOptions& options) {
  std::ostringstream os;
  std::array<std::uint32_t, isa::kNumGprs> before{};
  for (std::uint64_t i = 0; i < options.max_instructions; ++i) {
    if (!machine.cpu().running()) {
      os << "[cpu stopped]\n";
      break;
    }
    const std::uint32_t pc = machine.cpu().pc();
    const char mode = machine.cpu().kernel_mode() ? 'K' : 'U';
    std::string text = "<unreadable>";
    if (PhysicalMemory::in_ram(pc, 4) && pc % 4 == 0) {
      text = isa::disassemble(machine.memory().read32(pc), pc);
    }
    if (options.show_registers) {
      for (unsigned r = 0; r < isa::kNumGprs; ++r) {
        before[r] = machine.cpu().reg(r);
      }
    }
    const std::uint64_t consumed = machine.cpu().step();
    machine.devices().tick(consumed);

    os << mode << " " << std::hex << "0x" << pc << std::dec << ": " << text;
    if (options.show_registers) {
      for (unsigned r = 0; r < isa::kNumGprs; ++r) {
        const std::uint32_t now = machine.cpu().reg(r);
        if (now != before[r]) {
          os << "  r" << r << "=0x" << std::hex << now << std::dec;
        }
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sefi::sim
