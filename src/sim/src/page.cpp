#include "sefi/sim/page.hpp"

namespace sefi::sim {

bool access_allowed(std::uint8_t perms, AccessKind kind, bool kernel_mode) {
  if (kernel_mode) return true;
  switch (kind) {
    case AccessKind::kFetch:
      return (perms & pte::kUserExec) != 0;
    case AccessKind::kLoad:
      return (perms & pte::kUserRead) != 0;
    case AccessKind::kStore:
      return (perms & pte::kUserWrite) != 0;
  }
  return false;
}

}  // namespace sefi::sim
