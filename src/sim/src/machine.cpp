#include "sefi/sim/machine.hpp"

#include <atomic>

#include "sefi/sim/functional.hpp"
#include "sefi/support/error.hpp"

namespace sefi::sim {

namespace {
/// Process-unique snapshot ids; id 0 is reserved for "none".
std::uint64_t next_snapshot_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t opaque_bytes(const std::unique_ptr<OpaqueState>& state) {
  return state ? state->resident_bytes() : 0;
}
}  // namespace

std::uint64_t Machine::Snapshot::resident_bytes() const {
  return kRamSize + opaque_bytes(uarch) + opaque_bytes(regfile) +
         sizeof(DeviceBlock) + sizeof(Cpu::State);
}

std::uint64_t Machine::DeltaSnapshot::resident_bytes() const {
  return memory.resident_bytes() + opaque_bytes(uarch) +
         opaque_bytes(regfile) + sizeof(DeviceBlock) + sizeof(Cpu::State);
}

Machine::Machine(const ModelFactory& factory,
                 std::unique_ptr<RegFileModel> regs)
    : mem_(std::make_unique<PhysicalMemory>()),
      devices_(std::make_unique<DeviceBlock>()),
      uarch_(factory(*mem_, *devices_)),
      regs_(std::move(regs)) {
  support::require(uarch_ != nullptr, "Machine: factory returned null model");
  support::require(regs_ != nullptr, "Machine: null register file");
  cpu_ = std::make_unique<Cpu>(*uarch_, *regs_, *devices_);
}

Machine Machine::make_functional() {
  return Machine(
      [](PhysicalMemory& mem, DeviceBlock& dev) {
        return std::make_unique<FunctionalModel>(mem, dev);
      },
      std::make_unique<SimpleRegFile>());
}

void Machine::load_image(const isa::Program& program) {
  mem_->backdoor_write(program.base, program.bytes);
  uarch_->invalidate_range(program.base, program.size());
}

void Machine::set_boot_info(std::uint32_t user_entry, std::uint32_t user_sp) {
  mem_->write32(kBootUserEntry, user_entry);
  mem_->write32(kBootUserSp, user_sp);
  uarch_->invalidate_range(kBootInfoBase, 8);
}

void Machine::boot() {
  devices_->reset();
  uarch_->reset();
  cpu_->reset();
  // The machine no longer matches whatever snapshot was restored last
  // through tracked paths alone; force the next restore to be full.
  last_restored_id_ = 0;
  last_restored_base_id_ = 0;
  last_overlay_pages_.clear();
}

Machine::Snapshot Machine::save_snapshot() const {
  Snapshot snapshot;
  snapshot.memory = *mem_;
  snapshot.devices = *devices_;
  snapshot.cpu = cpu_->save_state();
  snapshot.uarch = uarch_->save_state();
  snapshot.regfile = regs_->save_state();
  snapshot.id = next_snapshot_id();
  return snapshot;
}

Machine::DeltaSnapshot Machine::save_delta_snapshot(
    const Snapshot& base) const {
  DeltaSnapshot rung;
  rung.memory = mem_->diff_pages(base.memory);
  rung.devices = *devices_;
  rung.cpu = cpu_->save_state();
  rung.uarch = uarch_->save_state();
  rung.regfile = regs_->save_state();
  rung.id = next_snapshot_id();
  rung.base_id = base.id;
  return rung;
}

std::uint64_t Machine::restore_small_state(const DeviceBlock& devices,
                                           const Cpu::State& cpu) {
  *devices_ = devices;
  cpu_->restore_state(cpu);
  return sizeof(DeviceBlock) + sizeof(Cpu::State);
}

void Machine::restore_snapshot(const Snapshot& snapshot) {
  support::require(snapshot.uarch != nullptr && snapshot.regfile != nullptr,
                   "restore_snapshot: incomplete snapshot");
  // Arrays delta-restore only against the exact snapshot restored last;
  // RAM also delta-restores when the last restore was a rung over this
  // snapshot (its overlay pages, marked dirty, bound the divergence).
  const bool same = delta_restore_ && snapshot.id != 0 &&
                    snapshot.id == last_restored_id_;
  const bool same_base = same || (delta_restore_ && snapshot.id != 0 &&
                                  snapshot.id == last_restored_base_id_);
  ++restore_stats_.restores;
  std::uint64_t bytes = 0;
  if (same_base) {
    ++restore_stats_.delta_restores;
    for (const std::uint32_t page : last_overlay_pages_) {
      mem_->mark_page_index(page);
    }
    const std::uint32_t pages = mem_->dirty_page_count();
    bytes += mem_->restore_dirty(snapshot.memory);
    restore_stats_.pages_copied += pages;
    restore_stats_.delta_pages_copied += pages;
  } else {
    bytes += mem_->restore_full(snapshot.memory);
    restore_stats_.pages_copied += kNumPages;
  }
  bytes += uarch_->restore_state_counted(*snapshot.uarch, same);
  bytes += regs_->restore_state_counted(*snapshot.regfile, same);
  bytes += restore_small_state(snapshot.devices, snapshot.cpu);
  restore_stats_.bytes_copied += bytes;
  last_restored_id_ = snapshot.id;
  last_restored_base_id_ = snapshot.id;
  last_overlay_pages_.clear();
}

void Machine::restore_snapshot(const Snapshot& base,
                               const DeltaSnapshot& rung) {
  support::require(base.uarch != nullptr && rung.uarch != nullptr &&
                       rung.regfile != nullptr,
                   "restore_snapshot: incomplete snapshot");
  support::require(rung.base_id == base.id,
                   "restore_snapshot: rung was diffed against another base");
  const bool same =
      delta_restore_ && rung.id != 0 && rung.id == last_restored_id_;
  const bool same_base = same || (delta_restore_ && base.id != 0 &&
                                  base.id == last_restored_base_id_);
  ++restore_stats_.restores;
  std::uint64_t bytes = 0;
  if (same_base) {
    ++restore_stats_.delta_restores;
    if (!same) {
      // Different rung over the same base: pages where the two rungs
      // differ are a subset of the union of their overlays.
      for (const std::uint32_t page : last_overlay_pages_) {
        mem_->mark_page_index(page);
      }
      for (const std::uint32_t page : rung.memory.pages) {
        mem_->mark_page_index(page);
      }
    }
    const std::uint32_t pages = mem_->dirty_page_count();
    bytes += mem_->restore_dirty(base.memory, rung.memory);
    restore_stats_.pages_copied += pages;
    restore_stats_.delta_pages_copied += pages;
  } else {
    bytes += mem_->restore_full(base.memory, rung.memory);
    restore_stats_.pages_copied += kNumPages;
  }
  bytes += uarch_->restore_state_counted(*rung.uarch, same);
  bytes += regs_->restore_state_counted(*rung.regfile, same);
  bytes += restore_small_state(rung.devices, rung.cpu);
  restore_stats_.bytes_copied += bytes;
  last_restored_id_ = rung.id;
  last_restored_base_id_ = base.id;
  last_overlay_pages_ = rung.memory.pages;
}

std::optional<RunEvent> Machine::poll_events() {
  if (const auto host = devices_->take_host_event()) {
    switch (host->kind) {
      case HostEventKind::kExit:
        return RunEvent{RunEventKind::kExit, host->payload};
      case HostEventKind::kAppCrash:
        return RunEvent{RunEventKind::kAppCrash, host->payload};
      case HostEventKind::kPanic:
        return RunEvent{RunEventKind::kPanic, host->payload};
    }
  }
  switch (cpu_->stop_reason()) {
    case CpuStop::kHalted:
      return RunEvent{RunEventKind::kHalted, 0};
    case CpuStop::kDoubleFault:
      return RunEvent{RunEventKind::kDoubleFault, 0};
    case CpuStop::kRunning:
      break;
  }
  return std::nullopt;
}

RunEvent Machine::run(std::uint64_t max_cycles) {
  for (;;) {
    if (cpu_->cycles() >= max_cycles) {
      return RunEvent{RunEventKind::kCycleLimit, 0};
    }
    const std::uint64_t consumed = cpu_->step();
    if (consumed > max_step_cycles_) max_step_cycles_ = consumed;
    devices_->tick(consumed);
    if (const auto event = poll_events()) return *event;
  }
}

std::optional<RunEvent> Machine::run_until_cycle(std::uint64_t target_cycle) {
  while (cpu_->cycles() < target_cycle) {
    const std::uint64_t consumed = cpu_->step();
    if (consumed > max_step_cycles_) max_step_cycles_ = consumed;
    devices_->tick(consumed);
    if (const auto event = poll_events()) return event;
  }
  return std::nullopt;
}

}  // namespace sefi::sim
