#include "sefi/sim/machine.hpp"

#include "sefi/sim/functional.hpp"
#include "sefi/support/error.hpp"

namespace sefi::sim {

Machine::Machine(const ModelFactory& factory,
                 std::unique_ptr<RegFileModel> regs)
    : mem_(std::make_unique<PhysicalMemory>()),
      devices_(std::make_unique<DeviceBlock>()),
      uarch_(factory(*mem_, *devices_)),
      regs_(std::move(regs)) {
  support::require(uarch_ != nullptr, "Machine: factory returned null model");
  support::require(regs_ != nullptr, "Machine: null register file");
  cpu_ = std::make_unique<Cpu>(*uarch_, *regs_, *devices_);
}

Machine Machine::make_functional() {
  return Machine(
      [](PhysicalMemory& mem, DeviceBlock& dev) {
        return std::make_unique<FunctionalModel>(mem, dev);
      },
      std::make_unique<SimpleRegFile>());
}

void Machine::load_image(const isa::Program& program) {
  mem_->backdoor_write(program.base, program.bytes);
  uarch_->invalidate_range(program.base, program.size());
}

void Machine::set_boot_info(std::uint32_t user_entry, std::uint32_t user_sp) {
  mem_->write32(kBootUserEntry, user_entry);
  mem_->write32(kBootUserSp, user_sp);
  uarch_->invalidate_range(kBootInfoBase, 8);
}

void Machine::boot() {
  devices_->reset();
  uarch_->reset();
  cpu_->reset();
}

Machine::Snapshot Machine::save_snapshot() const {
  Snapshot snapshot;
  snapshot.memory = *mem_;
  snapshot.devices = *devices_;
  snapshot.cpu = cpu_->save_state();
  snapshot.uarch = uarch_->save_state();
  snapshot.regfile = regs_->save_state();
  return snapshot;
}

void Machine::restore_snapshot(const Snapshot& snapshot) {
  support::require(snapshot.uarch != nullptr && snapshot.regfile != nullptr,
                   "restore_snapshot: incomplete snapshot");
  *mem_ = snapshot.memory;
  *devices_ = snapshot.devices;
  cpu_->restore_state(snapshot.cpu);
  uarch_->restore_state(*snapshot.uarch);
  regs_->restore_state(*snapshot.regfile);
}

std::optional<RunEvent> Machine::poll_events() {
  if (const auto host = devices_->take_host_event()) {
    switch (host->kind) {
      case HostEventKind::kExit:
        return RunEvent{RunEventKind::kExit, host->payload};
      case HostEventKind::kAppCrash:
        return RunEvent{RunEventKind::kAppCrash, host->payload};
      case HostEventKind::kPanic:
        return RunEvent{RunEventKind::kPanic, host->payload};
    }
  }
  switch (cpu_->stop_reason()) {
    case CpuStop::kHalted:
      return RunEvent{RunEventKind::kHalted, 0};
    case CpuStop::kDoubleFault:
      return RunEvent{RunEventKind::kDoubleFault, 0};
    case CpuStop::kRunning:
      break;
  }
  return std::nullopt;
}

RunEvent Machine::run(std::uint64_t max_cycles) {
  for (;;) {
    if (cpu_->cycles() >= max_cycles) {
      return RunEvent{RunEventKind::kCycleLimit, 0};
    }
    const std::uint64_t consumed = cpu_->step();
    devices_->tick(consumed);
    if (const auto event = poll_events()) return *event;
  }
}

std::optional<RunEvent> Machine::run_until_cycle(std::uint64_t target_cycle) {
  while (cpu_->cycles() < target_cycle) {
    const std::uint64_t consumed = cpu_->step();
    devices_->tick(consumed);
    if (const auto event = poll_events()) return event;
  }
  return std::nullopt;
}

}  // namespace sefi::sim
