// Simulated neutron-beam experiment (the paper's LANSCE role, §IV-B).
//
// Operationally, an accelerated beam is unbiased whole-chip fault
// injection at strike rates proportional to bit counts, observed only at
// the application interface. This module simulates exactly that:
//
//   - one long-lived ("powered") machine executes the benchmark
//     back-to-back; the host reloads the application image between runs
//     and restarts it — caches stay WARM across runs, so kernel code and
//     data remain resident and beam-exposed (the paper's System-Crash
//     mechanism, §V-A/§VI);
//   - strikes arrive as a Poisson process over a chip inventory that
//     contains the six modeled SRAM arrays *plus* behaviourally-modeled
//     platform resources fault injection cannot reach (FPGA-ARM
//     interface, interconnect/peripheral logic — the paper's un-modeled
//     structures, Fig. 1);
//   - strikes into modeled arrays flip real bits (occasionally two
//     adjacent bits, the multi-cell-upset effect single-bit FI misses);
//     strikes into platform resources resolve behaviourally;
//   - outcomes are observed per run: SDC (output mismatch), Application
//     Crash (kernel killed/restarted the app, or app hung with a live
//     kernel), System Crash (panic/hang -> power cycle);
//   - fluence is integrated over exposure time, so event counts convert
//     to FIT exactly as in the paper: FIT = sigma * flux_NYC * 1e9.
//
// The simulated beam intensity is chosen so the strike rate per execution
// is O(1) (importance sampling): FIT normalization divides by the same
// fluence, so estimates are intensity-independent up to counting noise;
// the paper's own <1e-3 error-per-run regime is impractical to simulate.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sefi/exec/supervisor.hpp"
#include "sefi/harden/harden.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/microarch/detailed.hpp"
#include "sefi/stats/confidence.hpp"
#include "sefi/support/journal.hpp"
#include "sefi/workloads/workload.hpp"

namespace sefi::beam {

/// A platform structure outside the microarchitectural model, with
/// behavioural strike outcomes (probabilities; remainder is masked).
struct UnmodeledResource {
  std::string name;
  double bits = 0;  ///< effective sensitive storage (latches, FFs, ...)
  double p_sys_crash = 0;
  double p_app_crash = 0;
};

/// The un-modeled side of the chip inventory.
struct PlatformModel {
  std::vector<UnmodeledResource> resources;

  /// Default Zynq-like platform: the FPGA-ARM interface the paper blames
  /// for the platform-intrinsic System-Crash floor, plus general
  /// interconnect/peripheral logic.
  static PlatformModel zynq_default();

  /// Empty platform (ablation: beam over modeled arrays only).
  static PlatformModel none() { return {}; }

  double total_bits() const;
};

struct BeamConfig {
  microarch::DetailedConfig uarch;
  kernel::KernelConfig kernel;
  PlatformModel platform = PlatformModel::zynq_default();

  /// Software hardening transform applied to the workload image before
  /// exposure (sefi/harden: DWC / TMR / CFCSS). The same hardened binary
  /// a hardened FI campaign injects — the mitigation-vs-overhead bench
  /// compares both setups on it. Result identity: enters cache
  /// fingerprints whenever != kOff.
  harden::HardenMode harden = harden::HardenMode::kOff;

  /// Per-bit sensitivity (cross section), cm^2/bit. Default is in the
  /// published range for 28 nm SRAM; FIT_raw calibration (§VI) recovers
  /// it from the L1Pattern benchmark, closing the loop.
  double sigma_bit_cm2 = 2e-15;
  /// CPU clock used to convert cycles to exposure seconds (Zynq: 667 MHz).
  double cpu_hz = 667e6;
  /// Mean strikes per execution; the simulated accelerated flux is derived
  /// from this (importance sampling; see file header).
  double strikes_per_run = 1.2;
  /// Probability that a strike upsets two adjacent bits (multi-cell
  /// upset) instead of one — a fault-model effect FI's single-bit flips
  /// cannot reproduce.
  double p_double_bit = 0.05;

  /// Ablation knob: power-cycle the machine after *every* run instead of
  /// keeping it warm. This removes the kernel-residency effect (caches no
  /// longer hold kernel state across runs) and should depress the
  /// System-Crash rate — the mechanism the paper proposes in §VI.
  bool power_cycle_every_run = false;

  /// Delta-restore fast path on the session machine. A beam session
  /// never restores snapshots — runs continue on the corrupted powered
  /// board — so this flag must not change outcomes (tested as a guard);
  /// it exists so full-vs-delta comparisons can sweep one knob across
  /// both methodologies.
  bool delta_restore = true;

  std::uint64_t runs = 400;  ///< benchmark executions in the session
  std::uint64_t seed = 0xBEA3;
  std::uint64_t input_seed = workloads::kDefaultInputSeed;
  std::uint64_t hang_budget_factor = 4;
  std::uint64_t probe_timer_periods = 8;

  /// Workers for multi-session sweeps (run_beam_sessions); 0 = hardware
  /// concurrency. One session is inherently serial (a single powered
  /// board), so this knob only fans out *independent* sessions; each
  /// session's result is bit-identical to a serial sweep because its
  /// randomness is seeded per workload, never shared across sessions.
  std::uint64_t threads = 0;

  // Supervisor knobs (DESIGN.md §10). Like `threads`, these are
  // execution policy, never result identity: session randomness is
  // seeded per workload, so a retried or resumed session replays the
  // exact same beam.
  /// Extra attempts after a failed one before a session books a
  /// harness error.
  std::uint64_t max_task_retries = 2;
  /// Wall-clock watchdog per session attempt, ms; 0 = off.
  std::uint64_t task_deadline_ms = 0;
  /// Cooperative stop flag (SIGINT drain); may be null.
  const exec::CancellationToken* cancel = nullptr;
  /// Crash-safe resume journal for multi-session sweeps; may be null.
  /// Completed sessions found in it are skipped and their recorded
  /// results reused; newly completed ones are appended.
  support::TaskJournal* journal = nullptr;
  /// Test-only fault hook, called as (session_index, attempt) before
  /// each session attempt; a throw simulates a harness fault. Null in
  /// production.
  std::function<void(std::size_t, std::uint64_t)> session_fault_hook;
};

struct BeamResult {
  std::string workload;
  std::uint64_t runs = 0;
  std::uint64_t sdc = 0;
  std::uint64_t app_crash = 0;
  std::uint64_t sys_crash = 0;
  /// Runs whose corruption was caught by the hardened workload's own
  /// detector (console carries the detection banner). Always 0 with
  /// BeamConfig::harden == kOff. Not an SDC: the output interface
  /// reported the error instead of silently corrupting.
  std::uint64_t detected = 0;
  std::uint64_t strikes = 0;
  std::uint64_t reboots = 0;
  double exposure_seconds = 0;
  double fluence_per_cm2 = 0;        ///< accelerated fluence
  double accel_flux_per_cm2_s = 0;   ///< derived beam intensity

  double fit_sdc() const;
  double fit_app_crash() const;
  double fit_sys_crash() const;
  /// FIT of detected-and-reported errors (0 with hardening off).
  double fit_detected() const;
  /// Sum over every observed error class, detected included — with
  /// hardening off this is exactly the pre-hardening three-class total.
  double fit_total() const;
  /// Natural-exposure equivalent of the session fluence, in years.
  double natural_years() const;
  /// 95% Poisson interval on a class FIT given its event count.
  stats::Interval fit_interval(std::uint64_t events,
                               double confidence = 0.95) const;
};

/// Runs one beam session for `workload`. `guard` (nullable) is polled at
/// every scheduling event of the session loop so supervised sweeps can
/// cancel or deadline a stuck session; it may throw TaskCancelled /
/// TaskDeadlineExceeded out of this call.
BeamResult run_beam_session(const workloads::Workload& workload,
                            const BeamConfig& config,
                            const exec::TaskGuard* guard = nullptr);

/// Supervisor telemetry of one multi-session sweep (execution metadata,
/// never part of any result's identity).
struct BeamSweepStats {
  /// Terminal state per session index: kDone (ran here), kSkipped
  /// (replayed from the journal), kHarnessError (attempts exhausted, or
  /// journaled as such), kPending (cancelled before it could run).
  std::vector<exec::TaskState> states;
  std::uint64_t sessions_run = 0;      ///< sessions executed this process
  std::uint64_t journal_replayed = 0;  ///< sessions restored from journal
  std::uint64_t retries = 0;
  std::uint64_t harness_errors = 0;
  std::uint64_t watchdog_hits = 0;
  std::uint64_t cancelled_tasks = 0;
  bool cancelled = false;  ///< sweep stopped before every session resolved
};

/// Runs one independent beam session per workload, fanned out over
/// config.threads workers (the paper's multi-board parallelism: each
/// session is its own powered machine under its own beam). Results are
/// returned in input order and are bit-identical to running the
/// sessions serially one by one. Runs under the campaign supervisor:
/// a session that keeps throwing is retried then marked as a harness
/// error (its result slot stays default-constructed) instead of
/// aborting the sweep, and config.journal / config.cancel provide
/// crash-safe resume and cooperative cancellation. `sweep_stats`
/// (nullable) receives the supervisor telemetry.
std::vector<BeamResult> run_beam_sessions(
    const std::vector<const workloads::Workload*>& session_workloads,
    const BeamConfig& config, BeamSweepStats* sweep_stats);

/// Convenience overload without telemetry.
std::vector<BeamResult> run_beam_sessions(
    const std::vector<const workloads::Workload*>& session_workloads,
    const BeamConfig& config);

/// FIT_raw calibration (§VI): beams the L1Pattern benchmark and divides
/// its SDC FIT by the tested buffer size in bits, returning FIT per bit.
double measure_fit_raw_per_bit(const BeamConfig& config);

/// The buffer size (bits) tested by the L1Pattern calibration benchmark.
std::uint64_t l1_pattern_bits();

}  // namespace sefi::beam
