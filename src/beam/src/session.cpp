#include "sefi/beam/session.hpp"

#include <cstdio>
#include <memory>
#include <sstream>

#include "sefi/exec/supervisor.hpp"

#include "sefi/exec/parallel.hpp"
#include "sefi/obs/metrics.hpp"
#include "sefi/obs/trace.hpp"
#include "sefi/stats/fit.hpp"
#include "sefi/support/env.hpp"
#include "sefi/support/error.hpp"
#include "sefi/support/hash.hpp"
#include "sefi/support/rng.hpp"

namespace sefi::beam {

namespace {
constexpr std::uint64_t kGoldenBudget = 500'000'000;
}  // namespace

PlatformModel PlatformModel::zynq_default() {
  PlatformModel platform;
  // Behavioural inventory of structures the microarchitectural model
  // cannot reach. Bit counts are rough latch-population estimates; the
  // outcome probabilities are the model's calibration knob (DESIGN.md
  // section 5) - set so the suite-average total-FIT gap lands inside the
  // paper's "within one order of magnitude" envelope.
  // The FPGA-ARM interface the paper singles out: strikes here mostly
  // wedge the system outright.
  platform.resources.push_back(
      {"fpga-arm-interface", 512.0 * 1024, 0.09, 0.05});
  // Interconnect, bridges, peripheral controllers: a mix of hangs and
  // application-visible failures.
  platform.resources.push_back({"platform-logic", 256.0 * 1024, 0.05, 0.10});
  return platform;
}

double PlatformModel::total_bits() const {
  double sum = 0;
  for (const auto& r : resources) sum += r.bits;
  return sum;
}

double BeamResult::fit_sdc() const {
  return stats::fit_from_cross_section(
      stats::cross_section(static_cast<double>(sdc), fluence_per_cm2));
}

double BeamResult::fit_app_crash() const {
  return stats::fit_from_cross_section(
      stats::cross_section(static_cast<double>(app_crash), fluence_per_cm2));
}

double BeamResult::fit_sys_crash() const {
  return stats::fit_from_cross_section(
      stats::cross_section(static_cast<double>(sys_crash), fluence_per_cm2));
}

double BeamResult::fit_detected() const {
  return stats::fit_from_cross_section(
      stats::cross_section(static_cast<double>(detected), fluence_per_cm2));
}

double BeamResult::fit_total() const {
  return fit_sdc() + fit_app_crash() + fit_sys_crash() + fit_detected();
}

double BeamResult::natural_years() const {
  return stats::natural_years_equivalent(fluence_per_cm2);
}

stats::Interval BeamResult::fit_interval(std::uint64_t events,
                                         double confidence) const {
  const stats::Interval counts = stats::poisson_interval(events, confidence);
  stats::Interval out;
  out.lower = stats::fit_from_cross_section(
      stats::cross_section(counts.lower, fluence_per_cm2));
  out.upper = stats::fit_from_cross_section(
      stats::cross_section(counts.upper, fluence_per_cm2));
  return out;
}

namespace {

/// What a strike did, beyond silently flipping bits.
enum class StrikeEffect { kNone, kAppCrash, kSysCrash };

class Session {
 public:
  Session(const workloads::Workload& workload, const BeamConfig& config)
      : workload_(workload),
        config_(config),
        rng_(config.seed ^ support::fnv1a(workload.info().name)),
        kernel_image_(kernel::build_kernel(config.kernel)),
        app_image_(
            harden::apply(workload.build(config.input_seed), config.harden)),
        spawn_addr_(kernel_image_.symbol("spawn")),
        // Resolved once per session (the env helper caches, but the hot
        // loop below should not even pay its map lookup).
        debug_(support::env::flag("SEFI_DEBUG", false)) {
    run_golden();
    modeled_bits_total_ = 0;
    // Component weights need a machine; build the first session machine.
    power_on();
    auto& model = microarch::detailed_model(*machine_);
    for (const auto kind : microarch::kAllComponents) {
      const double bits =
          static_cast<double>(model.component(kind).bit_count());
      component_bits_[static_cast<std::size_t>(kind)] = bits;
      modeled_bits_total_ += bits;
    }
    const double total_bits =
        modeled_bits_total_ + config_.platform.total_bits();
    // Strike rate per cycle chosen so a golden-length run sees
    // `strikes_per_run` strikes on average; the equivalent beam flux
    // follows from sigma_bit and the inventory size.
    strike_rate_per_cycle_ =
        config_.strikes_per_run / static_cast<double>(golden_cycles_);
    accel_flux_ = strike_rate_per_cycle_ * config_.cpu_hz /
                  (config_.sigma_bit_cm2 * total_bits);
    schedule_next_strike();
  }

  BeamResult run(const exec::TaskGuard* guard) {
    BeamResult result;
    result.workload = workload_.info().name;
    result.accel_flux_per_cm2_s = accel_flux_;

    const std::uint64_t session_cap =
        config_.runs * golden_cycles_ * config_.hang_budget_factor * 4 +
        10'000'000;

    std::uint64_t runs_done = 0;
    std::uint64_t run_start = now();
    std::size_t console_mark = machine_->console().size();
    // Paper procedure (SIV-B): an Application Crash is "restart attempt
    // successful"; if restarting keeps failing, the system is effectively
    // down and the operators power-cycle -> System Crash. Persistent
    // corrupted kernel state (e.g. a flipped cached PTE) shows up as a
    // crash storm, which this guard converts into one System Crash.
    constexpr std::uint64_t kCrashStormThreshold = 5;
    std::uint64_t consecutive_app_crashes = 0;
    // The same guard applies to SDC storms: persistent corrupted kernel
    // code resident in the L1I can mangle the output of *every*
    // subsequent run; at the paper's <1e-3 error-per-run regime the
    // operators see a board failing continuously and power-cycle it.
    std::uint64_t consecutive_sdcs = 0;

    auto begin_next_run = [&](bool reloaded) {
      if (config_.power_cycle_every_run) {
        // Ablation: cold-restart the platform between runs, like the FI
        // setup's per-experiment cache reset.
        base_ += machine_->cpu().cycles();
        power_on();
      } else if (!reloaded) {
        reload_app();
      }
      run_start = now();
      console_mark = machine_->console().size();
    };

    while (runs_done < config_.runs && now() < session_cap) {
      // Supervised sweeps poll here — once per scheduling event (strike
      // delivery, watchdog, run boundary) — so cancellation and the
      // wall-clock deadline interrupt a stuck session cooperatively.
      if (guard != nullptr) guard->check();
      const std::uint64_t deadline =
          run_start + golden_cycles_ * config_.hang_budget_factor;
      const std::uint64_t target =
          next_strike_ < deadline ? next_strike_ : deadline;
      std::optional<sim::RunEvent> event;
      if (target > now()) {
        event = machine_->run_until_cycle(target - base_);
      }
      if (debug_) {
        std::fprintf(stderr, "iter: now=%llu target=%llu deadline=%llu strike=%llu ev=%d\n",
          (unsigned long long)now(), (unsigned long long)target,
          (unsigned long long)deadline, (unsigned long long)next_strike_,
          event ? (int)event->kind : -1);
      }

      if (!event.has_value()) {
        if (now() >= deadline) {
          // Watchdog expired: is the kernel still breathing?
          const std::uint64_t jiffies_before = machine_->jiffies();
          const std::uint64_t probe =
              deadline - base_ +
              config_.probe_timer_periods *
                  static_cast<std::uint64_t>(
                      config_.kernel.timer_interval_cycles);
          event = machine_->run_until_cycle(probe);
          if (!event.has_value()) {
            if (machine_->jiffies() > jiffies_before) {
              // App hang, kernel alive: the host kills and restarts the
              // app over its link (Application Crash) unless restarts
              // keep failing, in which case it is a System Crash.
              ++runs_done;
              if (++consecutive_app_crashes >= kCrashStormThreshold) {
                consecutive_app_crashes = 0;
                ++result.sys_crash;
                ++result.reboots;
                reboot();
              } else {
                ++result.app_crash;
                reload_app();
                machine_->cpu().force_kernel_entry(spawn_addr_);
              }
              begin_next_run(/*reloaded=*/true);
              continue;
            }
            // System hang: power cycle.
            ++result.sys_crash;
            ++runs_done;
            ++result.reboots;
            reboot();
            begin_next_run(/*reloaded=*/true);
            continue;
          }
          // An event surfaced during the probe; fall through to handle it.
        } else {
          // Reached the strike time: deliver the particle.
          const StrikeEffect effect = apply_strike();
          schedule_next_strike();
          if (effect == StrikeEffect::kSysCrash) {
            ++result.sys_crash;
            ++runs_done;
            ++result.reboots;
            reboot();
            begin_next_run(/*reloaded=*/true);
          } else if (effect == StrikeEffect::kAppCrash) {
            ++runs_done;
            if (++consecutive_app_crashes >= kCrashStormThreshold) {
              consecutive_app_crashes = 0;
              ++result.sys_crash;
              ++result.reboots;
              reboot();
            } else {
              ++result.app_crash;
              reload_app();
              machine_->cpu().force_kernel_entry(spawn_addr_);
            }
            begin_next_run(/*reloaded=*/true);
          }
          continue;
        }
      }

      switch (event->kind) {
        case sim::RunEventKind::kExit: {
          const std::string run_console =
              machine_->console().substr(console_mark);
          // A hardened workload that trips its own detector exits
          // through the detection handler; the banner may trail partial
          // legitimate output, so match by containment. Detected runs
          // are not SDCs (the error was reported, not silent) and do
          // not feed the SDC-storm reboot heuristic.
          if (run_console.find(harden::kDetectConsole) != std::string::npos) {
            ++runs_done;
            ++result.detected;
            consecutive_app_crashes = 0;
            consecutive_sdcs = 0;
            begin_next_run(/*reloaded=*/false);
            break;
          }
          const bool correct =
              event->payload == golden_exit_ && run_console == golden_console_;
          ++runs_done;
          consecutive_app_crashes = 0;
          if (!correct) {
            ++result.sdc;
            if (++consecutive_sdcs >= kCrashStormThreshold) {
              consecutive_sdcs = 0;
              ++result.reboots;
              reboot();
              begin_next_run(/*reloaded=*/true);
              break;
            }
          } else {
            consecutive_sdcs = 0;
          }
          begin_next_run(/*reloaded=*/false);
          break;
        }
        case sim::RunEventKind::kAppCrash:
          ++runs_done;
          if (++consecutive_app_crashes >= kCrashStormThreshold) {
            consecutive_app_crashes = 0;
            ++result.sys_crash;
            ++result.reboots;
            reboot();
            begin_next_run(/*reloaded=*/true);
          } else {
            ++result.app_crash;
            begin_next_run(/*reloaded=*/false);
          }
          break;
        case sim::RunEventKind::kPanic:
        case sim::RunEventKind::kHalted:
        case sim::RunEventKind::kDoubleFault:
          ++result.sys_crash;
          ++runs_done;
          ++result.reboots;
          consecutive_app_crashes = 0;
          consecutive_sdcs = 0;
          reboot();
          begin_next_run(/*reloaded=*/true);
          break;
        case sim::RunEventKind::kCycleLimit:
          // run_until_cycle never reports this.
          break;
      }
    }

    result.runs = runs_done;
    result.strikes = strikes_;
    result.exposure_seconds =
        static_cast<double>(now()) / config_.cpu_hz;
    result.fluence_per_cm2 = stats::fluence_from_exposure(
        accel_flux_, result.exposure_seconds);
    return result;
  }

 private:
  std::uint64_t now() const { return base_ + machine_->cpu().cycles(); }

  void run_golden() {
    const obs::Span span("golden_run", "beam");
    sim::Machine machine = microarch::make_detailed_machine(config_.uarch);
    kernel::install_system(machine, kernel_image_, app_image_,
                           workloads::kWorkloadStackTop);
    machine.boot();
    const sim::RunEvent event = machine.run(kGoldenBudget);
    support::require(event.kind == sim::RunEventKind::kExit,
                     "beam session: golden run did not exit for " +
                         workload_.info().name);
    golden_console_ = machine.console();
    golden_exit_ = event.payload;
    golden_cycles_ = machine.cpu().cycles();
  }

  void power_on() {
    machine_ = std::make_unique<sim::Machine>(
        microarch::make_detailed_machine(config_.uarch));
    machine_->set_delta_restore(config_.delta_restore);
    kernel::install_system(*machine_, kernel_image_, app_image_,
                           workloads::kWorkloadStackTop);
    machine_->boot();
  }

  void reload_app() {
    machine_->load_image(app_image_);
    machine_->set_boot_info(app_image_.entry, workloads::kWorkloadStackTop);
  }

  void reboot() {
    base_ += machine_->cpu().cycles();
    power_on();
  }

  void schedule_next_strike() {
    const double wait =
        support::exponential_sample(rng_) / strike_rate_per_cycle_;
    next_strike_ = now() + static_cast<std::uint64_t>(wait) + 1;
  }

  StrikeEffect apply_strike() {
    ++strikes_;
    const double total =
        modeled_bits_total_ + config_.platform.total_bits();
    double u = rng_.uniform01() * total;
    for (const auto kind : microarch::kAllComponents) {
      const double bits = component_bits_[static_cast<std::size_t>(kind)];
      if (u < bits) {
        auto& component =
            microarch::detailed_model(*machine_).component(kind);
        const std::uint64_t bit = static_cast<std::uint64_t>(u);
        component.flip_bit(bit);
        // Multi-cell upset: the physically adjacent cell flips too. A
        // one-bit structure has no neighbour (bit 0 - 1 would wrap), so
        // the strike degrades to a single-bit upset there. The Bernoulli
        // draw stays unconditional to keep the RNG stream stable.
        if (rng_.bernoulli(config_.p_double_bit) &&
            component.bit_count() > 1) {
          const std::uint64_t buddy =
              bit + 1 < component.bit_count() ? bit + 1 : bit - 1;
          component.flip_bit(buddy);
        }
        return StrikeEffect::kNone;
      }
      u -= bits;
    }
    for (const auto& resource : config_.platform.resources) {
      if (u < resource.bits) {
        const double roll = rng_.uniform01();
        if (roll < resource.p_sys_crash) return StrikeEffect::kSysCrash;
        if (roll < resource.p_sys_crash + resource.p_app_crash) {
          return StrikeEffect::kAppCrash;
        }
        return StrikeEffect::kNone;
      }
      u -= resource.bits;
    }
    return StrikeEffect::kNone;  // floating-point edge: treat as masked
  }

  const workloads::Workload& workload_;
  BeamConfig config_;
  support::Xoshiro256 rng_;
  isa::Program kernel_image_;
  isa::Program app_image_;
  std::uint32_t spawn_addr_;

  std::string golden_console_;
  std::uint32_t golden_exit_ = 0;
  std::uint64_t golden_cycles_ = 0;

  std::unique_ptr<sim::Machine> machine_;
  std::uint64_t base_ = 0;
  std::uint64_t strikes_ = 0;
  double modeled_bits_total_ = 0;
  std::array<double, microarch::kNumComponents> component_bits_{};
  double strike_rate_per_cycle_ = 0;
  double accel_flux_ = 0;
  std::uint64_t next_strike_ = 0;
  bool debug_ = false;
};

// Journal payload for one completed session: a single line carrying the
// workload name plus every BeamResult field, doubles at full round-trip
// precision. Anything that fails to parse (or names a different
// workload) is ignored and the session simply re-runs — a journal can
// cost recomputation, never a wrong result.
std::string journal_encode(const BeamResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << "b " << result.workload << ' ' << result.runs << ' ' << result.sdc
      << ' ' << result.app_crash << ' ' << result.sys_crash << ' '
      << result.strikes << ' ' << result.reboots << ' '
      << result.exposure_seconds << ' ' << result.fluence_per_cm2 << ' '
      << result.accel_flux_per_cm2_s << ' ' << result.detected;
  return out.str();
}

bool journal_decode(const std::string& payload,
                    const std::string& expected_workload, BeamResult* result) {
  std::istringstream in(payload);
  std::string tag, workload;
  BeamResult parsed;
  if (!(in >> tag >> workload >> parsed.runs >> parsed.sdc >>
        parsed.app_crash >> parsed.sys_crash >> parsed.strikes >>
        parsed.reboots >> parsed.exposure_seconds >> parsed.fluence_per_cm2 >>
        parsed.accel_flux_per_cm2_s >> parsed.detected)) {
    // Version skew (a pre-Detected journal line has one field fewer) or
    // corruption: fail the parse and re-run the session.
    return false;
  }
  if (tag != "b" || workload != expected_workload) return false;
  parsed.workload = workload;
  *result = parsed;
  return true;
}

/// Journal marker for a session whose retry budget ran out: a resume
/// must keep the harness-error verdict instead of re-burning retries.
constexpr const char* kJournalHarnessError = "x";

}  // namespace

BeamResult run_beam_session(const workloads::Workload& workload,
                            const BeamConfig& config,
                            const exec::TaskGuard* guard) {
  const obs::Span span("beam_session", "beam");
  static obs::Counter& sessions_metric = obs::Registry::instance().counter(
      "sefi_beam_sessions_total", "Beam sessions executed in this process");
  static obs::Counter& strikes_metric = obs::Registry::instance().counter(
      "sefi_beam_strikes_total", "Particle strikes delivered across sessions");
  support::require(config.runs > 0, "run_beam_session: need at least one run");
  support::require(config.strikes_per_run > 0,
                   "run_beam_session: strikes_per_run must be positive");
  Session session(workload, config);
  BeamResult result = session.run(guard);
  sessions_metric.add();
  strikes_metric.add(result.strikes);
  return result;
}

std::vector<BeamResult> run_beam_sessions(
    const std::vector<const workloads::Workload*>& session_workloads,
    const BeamConfig& config, BeamSweepStats* sweep_stats) {
  // Each session owns its machine and seeds its RNG from the workload
  // name, so sessions share nothing — fan them out under the supervisor
  // and collect results by input index. Session randomness never depends
  // on scheduling, so a retried, resumed, or re-ordered sweep yields
  // bit-identical per-session results.
  const std::size_t count = session_workloads.size();
  std::vector<BeamResult> results(count);

  // Replay the resume journal (if any) before dispatch.
  std::vector<char> replayed(count, 0);
  std::vector<char> replayed_harness(count, 0);
  if (config.journal != nullptr) {
    for (std::size_t index = 0; index < count; ++index) {
      const std::string* payload =
          config.journal->lookup(static_cast<std::uint64_t>(index));
      if (payload == nullptr) continue;
      if (*payload == kJournalHarnessError) {
        replayed[index] = 1;
        replayed_harness[index] = 1;
        continue;
      }
      if (journal_decode(*payload, session_workloads[index]->info().name,
                         &results[index])) {
        replayed[index] = 1;
      }
    }
  }

  const std::size_t threads = exec::resolve_threads(config.threads, count);
  exec::SupervisorConfig supervisor;
  supervisor.threads = threads;
  supervisor.max_task_retries = config.max_task_retries;
  supervisor.task_deadline_ms = config.task_deadline_ms;
  supervisor.cancel = config.cancel;

  const exec::SupervisorReport report = exec::run_supervised(
      supervisor, count,
      [&](std::size_t index) { return replayed[index] != 0; },
      [&](std::size_t, std::size_t index, std::uint64_t attempt,
          const exec::TaskGuard& guard) {
        if (config.session_fault_hook) {
          config.session_fault_hook(index, attempt);
        }
        results[index] =
            run_beam_session(*session_workloads[index], config, &guard);
        if (config.journal != nullptr) {
          config.journal->record(static_cast<std::uint64_t>(index),
                                 journal_encode(results[index]));
        }
      },
      /*recover=*/nullptr);

  // Terminal states per session: journaled harness errors keep their
  // verdict, and freshly exhausted sessions journal theirs so a resume
  // does not re-burn the retry budget. Harness-errored result slots stay
  // default-constructed (zero runs) — callers must consult the states.
  std::vector<exec::TaskState> states = report.states;
  std::uint64_t harness_errors = 0;
  for (std::size_t index = 0; index < count; ++index) {
    if (replayed_harness[index] != 0) {
      states[index] = exec::TaskState::kHarnessError;
    } else if (report.states[index] == exec::TaskState::kHarnessError &&
               config.journal != nullptr) {
      config.journal->record(static_cast<std::uint64_t>(index),
                             kJournalHarnessError);
    }
    if (states[index] == exec::TaskState::kHarnessError) ++harness_errors;
  }

  if (sweep_stats != nullptr) {
    sweep_stats->states = std::move(states);
    sweep_stats->sessions_run = report.completed;
    sweep_stats->journal_replayed = report.skipped;
    sweep_stats->retries = report.retries;
    sweep_stats->harness_errors = harness_errors;
    sweep_stats->watchdog_hits = report.watchdog_hits;
    sweep_stats->cancelled_tasks = report.cancelled_tasks;
    sweep_stats->cancelled = report.cancelled;
  }
  return results;
}

std::vector<BeamResult> run_beam_sessions(
    const std::vector<const workloads::Workload*>& session_workloads,
    const BeamConfig& config) {
  return run_beam_sessions(session_workloads, config, nullptr);
}

std::uint64_t l1_pattern_bits() {
  return static_cast<std::uint64_t>(workloads::l1_pattern_buffer_bytes()) * 8;
}

double measure_fit_raw_per_bit(const BeamConfig& config) {
  const BeamResult result =
      run_beam_session(workloads::l1_pattern_workload(), config);
  return result.fit_sdc() / static_cast<double>(l1_pattern_bits());
}

}  // namespace sefi::beam
