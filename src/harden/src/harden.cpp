#include "sefi/harden/harden.hpp"

#include <array>
#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "sefi/sim/cpu.hpp"
#include "sefi/support/error.hpp"

namespace sefi::harden {

using isa::Assembler;
using isa::BuildEvent;
using isa::Cond;
using isa::Instruction;
using isa::Label;
using isa::Opcode;
using isa::Reg;
using support::require;

std::string harden_mode_name(HardenMode mode) {
  switch (mode) {
    case HardenMode::kOff: return "off";
    case HardenMode::kDwc: return "dwc";
    case HardenMode::kTmr: return "tmr";
    case HardenMode::kCfcss: return "cfcss";
    case HardenMode::kTmrCfcss: return "tmr+cfcss";
  }
  return "?";
}

HardenMode harden_mode_from_name(const std::string& name) {
  for (const HardenMode mode : kAllHardenModes) {
    if (harden_mode_name(mode) == name) return mode;
  }
  throw support::SefiError("unknown harden mode: " + name +
                           " (expected off|dwc|tmr|cfcss|tmr+cfcss)");
}

namespace {

// Shadow bank layout (guest memory appended to the image). Slot = 4 *
// register index inside each bank; the signature register G sits after
// both banks so the layout is mode-independent.
constexpr std::int32_t kBank1 = 0;
constexpr std::int32_t kBank2 = 64;
constexpr std::int32_t kSigSlot = 128;
constexpr std::uint32_t kBankBytes = 132;

constexpr std::uint8_t kSp = 13;
constexpr std::uint8_t kLr = 14;

/// What the transform does around one instruction.
enum class OpKind {
  kAluRR,     ///< rd = rn op rm (integer and float R-format)
  kAluUnary,  ///< rd = op(rn) (fcvt/fsqrt)
  kMovReg,    ///< rd = rm
  kAluImm,    ///< rd = rn op imm
  kLoadImm,   ///< rd = mem[rn + imm]
  kLoadReg,   ///< rd = mem[rn + rm]
  kStoreImm,  ///< mem[rn + imm] = rd
  kStoreReg,  ///< mem[rn + rm] = rd
  kCompare,   ///< cmp/cmpi/fcmp: writes flags, reads regs
  kSvc,       ///< syscall: kernel clobbers r0-r4, flags survive (eret)
  kTransfer,  ///< br/blr/eret/hlt
  kOtherDef,  ///< defines rd some other way (mrs family)
  kNeutral,   ///< no GPR def, no sync point (nop, msr family, tlbflush)
};

OpKind classify(Opcode op) {
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd:
    case Opcode::kOrr: case Opcode::kEor: case Opcode::kLsl:
    case Opcode::kLsr: case Opcode::kAsr: case Opcode::kMul:
    case Opcode::kSdiv: case Opcode::kUdiv: case Opcode::kFadd:
    case Opcode::kFsub: case Opcode::kFmul: case Opcode::kFdiv:
      return OpKind::kAluRR;
    case Opcode::kFcvtws: case Opcode::kFcvtsw: case Opcode::kFsqrt:
      return OpKind::kAluUnary;
    case Opcode::kMov:
      return OpKind::kMovReg;
    case Opcode::kAddi: case Opcode::kSubi: case Opcode::kAndi:
    case Opcode::kOrri: case Opcode::kEori: case Opcode::kLsli:
    case Opcode::kLsri: case Opcode::kAsri:
      return OpKind::kAluImm;
    // movi fully overwrites rd from the (immune) instruction stream and
    // movt merges into it; both resync the shadow from the primary. For
    // movt that forgives a pre-existing corruption of rd's low half —
    // a documented detection gap, not a correctness one (execution
    // matches the unhardened program exactly).
    case Opcode::kMovi: case Opcode::kMovt:
      return OpKind::kOtherDef;
    case Opcode::kLdr: case Opcode::kLdrb: case Opcode::kLdrh:
      return OpKind::kLoadImm;
    case Opcode::kLdrr:
      return OpKind::kLoadReg;
    case Opcode::kStr: case Opcode::kStrb: case Opcode::kStrh:
      return OpKind::kStoreImm;
    case Opcode::kStrr:
      return OpKind::kStoreReg;
    case Opcode::kCmp: case Opcode::kCmpi: case Opcode::kFcmp:
      return OpKind::kCompare;
    case Opcode::kSvc:
      return OpKind::kSvc;
    case Opcode::kB: case Opcode::kBl: case Opcode::kBr: case Opcode::kBlr:
    case Opcode::kEret: case Opcode::kHlt:
      return OpKind::kTransfer;
    case Opcode::kMrs: case Opcode::kMrsElr: case Opcode::kMrsSpsr:
    case Opcode::kMrsUsp:
      return OpKind::kOtherDef;
    default:
      return OpKind::kNeutral;
  }
}

bool is_code_event(const BuildEvent& e) {
  switch (e.kind) {
    case BuildEvent::Kind::kInstr:
    case BuildEvent::Kind::kBranch:
    case BuildEvent::Kind::kBranchLink:
    case BuildEvent::Kind::kLoadLabel:
      return true;
    default:
      return false;
  }
}

/// NZCV liveness at the edge *before* each event, by backward fixpoint
/// over the event graph. Flags are written only by cmp/cmpi/fcmp and
/// read only by conditional branches; unconditional branches and calls
/// are followed through their labels, indirect transfers are assumed
/// live (conservative), and svc preserves flags (the kernel erets with
/// the SPSR saved at exception entry). The transform may insert its own
/// cmp-based checks exactly at the edges reported dead.
std::vector<bool> flags_live_before(const std::vector<BuildEvent>& events) {
  const std::size_t n = events.size();
  std::map<std::uint32_t, std::size_t> bind_at;
  for (std::size_t i = 0; i < n; ++i) {
    if (events[i].kind == BuildEvent::Kind::kBind) {
      bind_at.emplace(events[i].label, i);
    }
  }
  std::vector<char> live(n + 1, 0);
  bool changed = true;
  for (int pass = 0; changed && pass < 64; ++pass) {
    changed = false;
    for (std::size_t i = n; i-- > 0;) {
      const BuildEvent& e = events[i];
      bool v = false;
      switch (e.kind) {
        case BuildEvent::Kind::kBranch:
          if (e.cond != Cond::al) {
            v = true;  // reads flags
          } else {
            const auto it = bind_at.find(e.label);
            v = it == bind_at.end() ? true : live[it->second] != 0;
          }
          break;
        case BuildEvent::Kind::kBranchLink: {
          const auto it = bind_at.find(e.label);
          v = it == bind_at.end() ? true : live[it->second] != 0;
          break;
        }
        case BuildEvent::Kind::kInstr:
          switch (classify(e.inst.op)) {
            case OpKind::kCompare:
              v = false;  // writes before any read
              break;
            case OpKind::kTransfer:
              // br/blr targets are unknown; eret/hlt never appear in
              // user code but would end the flag's life anyway.
              v = e.inst.op == Opcode::kBr || e.inst.op == Opcode::kBlr;
              break;
            default:
              v = live[i + 1] != 0;
              break;
          }
          break;
        case BuildEvent::Kind::kData:
          v = true;  // falling into data: keep hands off
          break;
        default:
          v = live[i + 1] != 0;
          break;
      }
      if (v != (live[i] != 0)) {
        live[i] = v ? 1 : 0;
        changed = true;
      }
    }
  }
  return std::vector<bool>(live.begin(), live.end() - 1);
}

// --- CFCSS basic-block analysis -------------------------------------------

struct BlockMeta {
  enum class Update : std::uint8_t { kNone, kXor, kReseed };
  std::uint32_t sig = 0;
  bool fall_pred = false;   ///< reachable by fallthrough from block i-1
  bool after_call = false;  ///< starts at a call-return point
  bool bl_target = false;   ///< function entry (bl target)
  bool entry = false;       ///< program entry block (G seeded by init)
  std::vector<std::size_t> sources;  ///< blocks branching here
  Update update = Update::kNone;
  std::uint32_t delta = 0;           ///< XOR step for single-pred blocks
  bool check = false;
  std::size_t check_event = SIZE_MAX;
};

struct BlockAnalysis {
  std::vector<BlockMeta> blocks;
  std::vector<std::size_t> block_of;  ///< per event index
};

BlockAnalysis analyze_blocks(const std::vector<BuildEvent>& events,
                             const std::vector<bool>& flags_live) {
  const std::size_t n = events.size();
  BlockAnalysis out;
  out.block_of.assign(n, 0);

  std::set<std::uint32_t> control;       // labels that are branch targets
  std::set<std::uint32_t> bl_targets;    // labels that are call targets
  for (const BuildEvent& e : events) {
    if (e.kind == BuildEvent::Kind::kBranch) control.insert(e.label);
    if (e.kind == BuildEvent::Kind::kBranchLink) {
      control.insert(e.label);
      bl_targets.insert(e.label);
    }
  }

  std::map<std::uint32_t, std::size_t> label_block;
  out.blocks.emplace_back();
  out.blocks[0].entry = true;
  std::size_t cur = 0;
  bool cur_has_code = false;
  // 0 = block open, 1 = boundary with fallthrough, 2 = no fallthrough,
  // 3 = call-return point.
  int pending = 0;
  const auto start_block = [&](int reason) {
    out.blocks.emplace_back();
    cur = out.blocks.size() - 1;
    out.blocks[cur].fall_pred = reason == 1;
    out.blocks[cur].after_call = reason == 3;
    cur_has_code = false;
    pending = 0;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const BuildEvent& e = events[i];
    if (e.kind == BuildEvent::Kind::kBind && control.contains(e.label)) {
      if (cur_has_code || pending != 0) {
        start_block(pending == 0 ? 1 : pending);
      }
      label_block[e.label] = cur;
      if (bl_targets.contains(e.label)) out.blocks[cur].bl_target = true;
      out.block_of[i] = cur;
      continue;
    }
    if (is_code_event(e)) {
      if (pending != 0) start_block(pending);
      out.block_of[i] = cur;
      cur_has_code = true;
      if (e.kind == BuildEvent::Kind::kBranch) {
        pending = e.cond == Cond::al ? 2 : 1;
      } else if (e.kind == BuildEvent::Kind::kBranchLink) {
        pending = 3;
      } else if (e.kind == BuildEvent::Kind::kInstr) {
        const Opcode op = e.inst.op;
        if (op == Opcode::kBlr) {
          pending = 3;
        } else if (op == Opcode::kBr || op == Opcode::kEret ||
                   op == Opcode::kHlt) {
          pending = 2;
        }
      }
      continue;
    }
    out.block_of[i] = cur;
  }

  // Branch sources (by containing block).
  for (std::size_t i = 0; i < n; ++i) {
    const BuildEvent& e = events[i];
    if (e.kind != BuildEvent::Kind::kBranch &&
        e.kind != BuildEvent::Kind::kBranchLink) {
      continue;
    }
    const auto it = label_block.find(e.label);
    if (it == label_block.end()) continue;  // label bound in data only
    if (e.kind == BuildEvent::Kind::kBranch) {
      out.blocks[it->second].sources.push_back(out.block_of[i]);
    }
  }

  // Signatures: bijective 16-bit spread of the block index.
  for (std::size_t b = 0; b < out.blocks.size(); ++b) {
    out.blocks[b].sig =
        (static_cast<std::uint32_t>(b + 1) * 0x9E37u) & 0xFFFFu;
  }

  // Update/check policy. Single-predecessor blocks XOR-step G and get a
  // runtime check; blocks whose predecessor set is unknown (function
  // entries, call-return points) or mixed re-seed G unchecked — the
  // simplification of classic CFCSS's run-time adjusting signature D,
  // documented in DESIGN.md §15.
  for (std::size_t b = 0; b < out.blocks.size(); ++b) {
    BlockMeta& block = out.blocks[b];
    std::set<std::uint32_t> preds;
    if (block.fall_pred && b > 0) preds.insert(out.blocks[b - 1].sig);
    for (const std::size_t s : block.sources) preds.insert(out.blocks[s].sig);
    if (block.bl_target || block.after_call) {
      block.update = BlockMeta::Update::kReseed;
    } else if (block.entry) {
      if (preds.empty()) {
        block.update = BlockMeta::Update::kNone;  // init seeds G
        block.check = true;
      } else {
        block.update = BlockMeta::Update::kReseed;
      }
    } else if (preds.size() == 1) {
      block.update = BlockMeta::Update::kXor;
      block.delta = *preds.begin() ^ block.sig;
      block.check = true;
    } else {
      block.update = BlockMeta::Update::kReseed;
    }
  }

  // Place each check at the block's first flag-dead code event.
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_code_event(events[i])) continue;
    BlockMeta& block = out.blocks[out.block_of[i]];
    if (!block.check || block.check_event != SIZE_MAX) continue;
    if (!flags_live[i]) block.check_event = i;
  }
  return out;
}

// --- the transformer -------------------------------------------------------

class Transformer {
 public:
  Transformer(const isa::Program& program, HardenMode mode,
              const HardenOptions& options)
      : program_(program),
        mode_(mode),
        options_(options),
        dup_(mode == HardenMode::kDwc || mode == HardenMode::kTmr ||
             mode == HardenMode::kTmrCfcss),
        tmr_(mode == HardenMode::kTmr || mode == HardenMode::kTmrCfcss),
        cfcss_(mode == HardenMode::kCfcss || mode == HardenMode::kTmrCfcss),
        a_(program.base),
        bank_(a_.make_label()),
        detect_(a_.make_label()) {}

  isa::Program run(HardenReport* report) {
    const std::vector<BuildEvent>& events = program_.events;
    flags_live_ = flags_live_before(events);
    if (cfcss_) {
      analysis_ = analyze_blocks(events, flags_live_);
      report_.blocks = analysis_.blocks.size();
    } else {
      // Duplication still needs call-target knowledge for lr resyncs.
      analysis_ = analyze_blocks(events, flags_live_);
    }

    bool has_entry_event = false;
    for (const BuildEvent& e : events) {
      if (e.kind == BuildEvent::Kind::kEntry) has_entry_event = true;
      if (is_code_event(e)) {
        report_.original_instructions +=
            e.kind == BuildEvent::Kind::kLoadLabel ? 2 : 1;
      }
    }

    std::size_t emitted_block = SIZE_MAX;
    for (std::size_t i = 0; i < events.size(); ++i) {
      const BuildEvent& e = events[i];
      if (!is_code_event(e)) {
        replay_plain(e);
        if (e.kind == BuildEvent::Kind::kEntry) flush_init();
        continue;
      }
      if (!init_emitted_ && !has_entry_event) flush_init();
      const std::size_t b = analysis_.block_of[i];
      if (b != emitted_block) {
        emitted_block = b;
        enter_block(analysis_.blocks[b]);
      }
      if (cfcss_ && analysis_.blocks[b].check_event == i) {
        emit_sig_check(analysis_.blocks[b].sig);
      }
      emit_instrumented(e, !flags_live_[i]);
    }
    emit_detect_handler_and_bank();

    isa::Program out = a_.finish();
    if (report != nullptr) *report = report_;
    return out;
  }

 private:
  Label lab(std::uint32_t id) {
    const auto [it, inserted] = labels_.try_emplace(id);
    if (inserted) it->second = a_.make_label();
    return it->second;
  }

  void replay_plain(const BuildEvent& e) {
    switch (e.kind) {
      case BuildEvent::Kind::kBind: a_.bind(lab(e.label)); break;
      case BuildEvent::Kind::kData: a_.bytes(e.data); break;
      case BuildEvent::Kind::kAlign: a_.align(e.value); break;
      case BuildEvent::Kind::kSymbol: a_.symbol(e.name); break;
      case BuildEvent::Kind::kEntry: a_.entry_here(); break;
      default: break;
    }
  }

  static std::array<std::uint8_t, 3> scratches(
      std::initializer_list<std::uint8_t> avoid) {
    std::array<std::uint8_t, 3> out{};
    std::size_t k = 0;
    for (std::uint8_t r = 0; r < 7 && k < 3; ++r) {
      bool taken = false;
      for (const std::uint8_t x : avoid) taken = taken || x == r;
      if (!taken) out[k++] = r;
    }
    return out;
  }

  static Reg reg(std::uint8_t r) { return static_cast<Reg>(r); }

  // Scratch registers live in a red zone below sp: guest code never
  // reads below its stack pointer and IRQs run on the banked kernel
  // stack, so the slots are private to the inserted sequence.
  void spill(const std::uint8_t* s, int count) {
    for (int i = 0; i < count; ++i) a_.str(reg(s[i]), Reg::sp, -4 * (i + 1));
  }
  void unspill(const std::uint8_t* s, int count) {
    for (int i = 0; i < count; ++i) a_.ldr(reg(s[i]), Reg::sp, -4 * (i + 1));
  }

  void detect_branch(Cond cond) {
    if (options_.mute_detection) {
      // Layout-identical twin: the branch is still emitted (and still
      // taken on mismatch) but lands on the next instruction.
      const Label skip = a_.make_label();
      a_.b(cond, skip);
      a_.bind(skip);
    } else {
      a_.b(cond, detect_);
    }
  }

  /// Seeds the shadow banks from the primaries and G from the entry
  /// signature. Runs at program (re)entry, so every spawn starts with
  /// shadows exactly mirroring architectural state.
  void flush_init() {
    init_emitted_ = true;
    const std::uint32_t mark = a_.here();
    const std::uint8_t s0 = 0, s1 = 1;  // r0/r1, both spilled
    const std::uint8_t sp2[] = {s0, s1};
    spill(sp2, 2);
    a_.load_label(reg(s0), bank_);
    if (dup_) {
      for (std::uint8_t r = 0; r < isa::kNumGprs; ++r) {
        if (r == s0) continue;  // holds the bank base; seeded below
        a_.str(reg(r), reg(s0), kBank1 + 4 * r);
        if (tmr_) a_.str(reg(r), reg(s0), kBank2 + 4 * r);
      }
      a_.ldr(reg(s1), Reg::sp, -4);  // original r0
      a_.str(reg(s1), reg(s0), kBank1 + 4 * s0);
      if (tmr_) a_.str(reg(s1), reg(s0), kBank2 + 4 * s0);
    }
    if (cfcss_) {
      a_.movi(reg(s1), analysis_.blocks[0].sig);
      a_.str(reg(s1), reg(s0), kSigSlot);
    }
    unspill(sp2, 2);
    report_.inserted_instructions += (a_.here() - mark) / 4;
  }

  void enter_block(const BlockMeta& block) {
    const std::uint32_t mark = a_.here();
    // bl wrote lr on the way in; the shadow must follow before any
    // callee-prologue sync point (push {lr}) compares them.
    if (dup_ && block.bl_target) resync_unmarked({kLr});
    if (cfcss_ && block.update != BlockMeta::Update::kNone) {
      const std::uint8_t s[] = {0, 1};
      spill(s, 2);
      a_.load_label(reg(s[0]), bank_);
      if (block.update == BlockMeta::Update::kXor) {
        a_.ldr(reg(s[1]), reg(s[0]), kSigSlot);
        a_.eori(reg(s[1]), reg(s[1]), static_cast<std::int32_t>(block.delta));
      } else {
        a_.movi(reg(s[1]), block.sig);
      }
      a_.str(reg(s[1]), reg(s[0]), kSigSlot);
      unspill(s, 2);
    }
    report_.inserted_instructions += (a_.here() - mark) / 4;
  }

  void emit_sig_check(std::uint32_t sig) {
    const std::uint32_t mark = a_.here();
    const std::uint8_t s[] = {0, 1};
    spill(s, 2);
    a_.load_label(reg(s[0]), bank_);
    a_.ldr(reg(s[1]), reg(s[0]), kSigSlot);
    a_.cmpi(reg(s[1]), static_cast<std::int32_t>(sig));
    detect_branch(Cond::ne);
    unspill(s, 2);
    ++report_.checked_blocks;
    report_.inserted_instructions += (a_.here() - mark) / 4;
  }

  /// DWC compare (or TMR vote) of `regs` against their shadows. Only
  /// called at flag-dead edges.
  void sync_point(std::initializer_list<std::uint8_t> regs) {
    const std::uint32_t mark = a_.here();
    const auto s = scratches(regs);
    spill(s.data(), 3);
    a_.load_label(reg(s[0]), bank_);
    std::set<std::uint8_t> seen;
    for (const std::uint8_t r : regs) {
      if (!seen.insert(r).second) continue;
      if (tmr_) {
        vote(r, s[0], s[1], s[2]);
      } else {
        a_.ldr(reg(s[1]), reg(s[0]), kBank1 + 4 * r);
        a_.cmp(reg(s[1]), reg(r));
        detect_branch(Cond::ne);
      }
    }
    unspill(s.data(), 3);
    ++report_.sync_checks;
    report_.inserted_instructions += (a_.here() - mark) / 4;
  }

  /// Majority vote with repair: a single diverging copy (either shadow
  /// or the primary) is overwritten by the agreeing pair — the fault
  /// becomes Masked; three-way disagreement is detected.
  void vote(std::uint8_t r, std::uint8_t bank, std::uint8_t c1,
            std::uint8_t c2) {
    const Label ok = a_.make_label();
    const Label split = a_.make_label();
    a_.ldr(reg(c1), reg(bank), kBank1 + 4 * r);
    a_.cmp(reg(r), reg(c1));
    a_.b(Cond::eq, ok);
    a_.ldr(reg(c2), reg(bank), kBank2 + 4 * r);
    a_.cmp(reg(r), reg(c2));
    a_.b(Cond::ne, split);
    a_.str(reg(r), reg(bank), kBank1 + 4 * r);  // copy 1 lost the vote
    a_.b(ok);
    a_.bind(split);
    a_.cmp(reg(c1), reg(c2));
    detect_branch(Cond::ne);
    a_.mov(reg(r), reg(c1));  // primary lost the vote
    a_.bind(ok);
  }

  void resync_unmarked(std::initializer_list<std::uint8_t> regs) {
    const auto s = scratches(regs);
    spill(s.data(), 1);
    a_.load_label(reg(s[0]), bank_);
    for (const std::uint8_t r : regs) {
      a_.str(reg(r), reg(s[0]), kBank1 + 4 * r);
      if (tmr_) a_.str(reg(r), reg(s[0]), kBank2 + 4 * r);
    }
    unspill(s.data(), 1);
  }

  void resync(std::initializer_list<std::uint8_t> regs) {
    const std::uint32_t mark = a_.here();
    resync_unmarked(regs);
    report_.inserted_instructions += (a_.here() - mark) / 4;
  }

  /// Replays the shadow computation of a defining instruction into the
  /// shadow bank(s).
  void shadow_update(const Instruction& in, OpKind kind) {
    const std::uint32_t mark = a_.here();
    const auto s = scratches({in.rd, in.rn, in.rm});
    spill(s.data(), 3);
    a_.load_label(reg(s[0]), bank_);
    const int banks = tmr_ ? 2 : 1;
    for (int bk = 0; bk < banks; ++bk) {
      const std::int32_t off = bk == 0 ? kBank1 : kBank2;
      Instruction shadow = in;
      shadow.rd = s[1];
      switch (kind) {
        case OpKind::kAluRR:
          a_.ldr(reg(s[1]), reg(s[0]), off + 4 * in.rn);
          a_.ldr(reg(s[2]), reg(s[0]), off + 4 * in.rm);
          shadow.rn = s[1];
          shadow.rm = s[2];
          a_.emit(shadow);
          break;
        case OpKind::kAluUnary:
          a_.ldr(reg(s[1]), reg(s[0]), off + 4 * in.rn);
          shadow.rn = s[1];
          a_.emit(shadow);
          break;
        case OpKind::kMovReg:
          a_.ldr(reg(s[1]), reg(s[0]), off + 4 * in.rm);
          break;
        case OpKind::kAluImm:
          a_.ldr(reg(s[1]), reg(s[0]), off + 4 * in.rn);
          shadow.rn = s[1];
          a_.emit(shadow);
          break;
        default:
          break;
      }
      a_.str(reg(s[1]), reg(s[0]), off + 4 * in.rd);
    }
    unspill(s.data(), 3);
    report_.inserted_instructions += (a_.here() - mark) / 4;
  }

  void emit_instrumented(const BuildEvent& e, bool flags_dead) {
    if (e.kind == BuildEvent::Kind::kBranch) {
      a_.b(e.cond, lab(e.label));
      return;
    }
    if (e.kind == BuildEvent::Kind::kBranchLink) {
      a_.bl(lab(e.label));
      return;
    }
    if (e.kind == BuildEvent::Kind::kLoadLabel) {
      a_.load_label(reg(e.reg), lab(e.label));
      if (dup_) resync({e.reg});
      return;
    }
    const Instruction& in = e.inst;
    const OpKind kind = classify(in.op);
    if (dup_) {
      switch (kind) {
        case OpKind::kCompare:
          // The edge before a flag writer is flag-dead by definition.
          if (in.op == Opcode::kCmpi) {
            sync_point({in.rn});
          } else {
            sync_point({in.rn, in.rm});
          }
          break;
        case OpKind::kStoreImm:
          if (flags_dead) sync_point({in.rd, in.rn});
          break;
        case OpKind::kStoreReg:
          if (flags_dead) sync_point({in.rd, in.rn, in.rm});
          break;
        case OpKind::kLoadImm:
          if (flags_dead) sync_point({in.rn});
          break;
        case OpKind::kLoadReg:
          if (flags_dead) sync_point({in.rn, in.rm});
          break;
        case OpKind::kSvc:
          if (flags_dead) sync_point({0, 1, 7});  // syscall args + number
          break;
        default:
          break;
      }
    }
    a_.emit(in);
    if (!dup_) return;
    switch (kind) {
      case OpKind::kAluRR:
      case OpKind::kAluUnary:
      case OpKind::kMovReg:
      case OpKind::kAluImm:
        shadow_update(in, kind);
        break;
      case OpKind::kLoadImm:
      case OpKind::kLoadReg:
      case OpKind::kOtherDef:
        // Memory is not duplicated: a load is a resync point for rd.
        resync({in.rd});
        break;
      case OpKind::kSvc:
        resync({0, 1, 2, 3, 4});  // the kernel clobbers r0-r4
        break;
      default:
        break;
    }
  }

  void emit_detect_handler_and_bank() {
    a_.align(4);
    a_.bind(detect_);
    for (const char* c = kDetectConsole; *c != '\0'; ++c) {
      a_.movi(Reg::r0, static_cast<std::uint8_t>(*c));
      a_.movi(Reg::r7, sim::sysno::kPutc);
      a_.svc(0);
    }
    a_.movi(Reg::r0, 0);
    a_.movi(Reg::r7, sim::sysno::kExit);
    a_.svc(0);
    a_.align(4);
    a_.bind(bank_);
    a_.zero(kBankBytes);
  }

  const isa::Program& program_;
  HardenMode mode_;
  HardenOptions options_;
  bool dup_;
  bool tmr_;
  bool cfcss_;
  Assembler a_;
  Label bank_;
  Label detect_;
  std::map<std::uint32_t, Label> labels_;
  std::vector<bool> flags_live_;
  BlockAnalysis analysis_;
  HardenReport report_;
  bool init_emitted_ = false;
};

}  // namespace

isa::Program apply(const isa::Program& program, HardenMode mode,
                   const HardenOptions& options, HardenReport* report) {
  if (mode == HardenMode::kOff) {
    if (report != nullptr) *report = HardenReport{};
    return program;
  }
  require(!program.events.empty(),
          "harden::apply: program carries no builder events (was it "
          "deserialized rather than built?)");
  Transformer transformer(program, mode, options);
  return transformer.run(report);
}

}  // namespace sefi::harden
