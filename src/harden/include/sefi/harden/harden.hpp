// Software fault-tolerance transforms for SEFI-A9 guest programs.
//
// `apply` post-processes a finished workload image by replaying its
// recorded builder-event stream (isa::BuildEvent) through a fresh
// Assembler, interleaving COAST-style protection code:
//
//   DWC    duplicate-with-compare: every data-flow instruction is
//          shadowed into a memory-resident shadow register bank; at
//          synchronization points (compares, stores, loads, syscalls)
//          the shadow is compared against the primary and a mismatch
//          branches to a detection handler.
//   TMR    the same duplication into two shadow banks plus a majority
//          vote at sync points: a single diverging copy is repaired
//          (fault -> Masked), a three-way disagreement is detected.
//   CFCSS  control-flow checking by software signatures: each basic
//          block carries a compile-time signature; a runtime signature
//          register (in the bank) is XOR-stepped on block entry and
//          checked at the first flag-dead position of the block, so a
//          control-flow escape lands in a block whose check fails.
//
// The detection handler prints `kDetectConsole` through the normal
// console syscall path and exits; the harness classifies that console
// as Outcome::kDetected. Fault-free, every hardened variant produces
// byte-identical console output to the baseline program — enforced by
// tests/workloads/harden_equivalence_test.cpp.
//
// Reserved-register ABI: none. The 13 workloads use all 16 GPRs, so the
// shadow bank lives in guest memory appended to the image, and the
// transform borrows scratch registers by spilling them to a red zone
// below sp (the kernel services IRQs on a banked stack and guest code
// never reads below sp, so the slots are private). See DESIGN.md §15
// for the transform algebra and the documented coverage gaps.
#pragma once

#include <cstdint>
#include <string>

#include "sefi/isa/assembler.hpp"

namespace sefi::harden {

/// Protection level applied to a workload image. Part of campaign
/// identity (result-cache fingerprint) whenever != kOff.
enum class HardenMode : std::uint8_t {
  kOff = 0,
  kDwc,       ///< duplicate-with-compare (detect only)
  kTmr,       ///< triplicate + majority vote (repair, then detect)
  kCfcss,     ///< control-flow signatures only
  kTmrCfcss,  ///< TMR data protection + CFCSS control protection
};

inline constexpr HardenMode kAllHardenModes[] = {
    HardenMode::kOff, HardenMode::kDwc, HardenMode::kTmr, HardenMode::kCfcss,
    HardenMode::kTmrCfcss};

/// Canonical knob spelling: off|dwc|tmr|cfcss|tmr+cfcss (SEFI_HARDEN).
std::string harden_mode_name(HardenMode mode);
/// Parses a knob spelling; throws SefiError on anything else.
HardenMode harden_mode_from_name(const std::string& name);

/// Console output of the detection handler. Distinct from every
/// workload's golden console (those are 8 lowercase-hex digests).
inline constexpr char kDetectConsole[] = "!detected!";

struct HardenOptions {
  /// Builds the layout-identical "muted twin": every detect branch is
  /// retargeted to fall through, so a fault that would have been
  /// Detected instead runs to its unhardened outcome. Used by the
  /// detection-soundness test to measure what detection preempted.
  bool mute_detection = false;
};

/// Transform accounting, for overhead benches and tests.
struct HardenReport {
  std::uint64_t original_instructions = 0;
  std::uint64_t inserted_instructions = 0;
  std::uint64_t blocks = 0;          ///< CFCSS basic blocks
  std::uint64_t checked_blocks = 0;  ///< blocks with a signature check
  std::uint64_t sync_checks = 0;     ///< DWC/TMR sync-point check sites
};

/// Applies `mode` to `program`. kOff returns the input unchanged
/// (bit-identical, including events). Requires the program to carry its
/// builder-event stream (Program::events).
isa::Program apply(const isa::Program& program, HardenMode mode,
                   const HardenOptions& options = {},
                   HardenReport* report = nullptr);

}  // namespace sefi::harden
