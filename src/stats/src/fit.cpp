#include "sefi/stats/fit.hpp"

#include <cmath>

#include "sefi/support/error.hpp"

namespace sefi::stats {

double fit_from_avf(double fit_raw_per_bit, double bits, double avf) {
  support::require(fit_raw_per_bit >= 0 && bits >= 0 && avf >= 0,
                   "fit_from_avf: negative argument");
  return fit_raw_per_bit * bits * avf;
}

double cross_section(double events, double fluence_per_cm2) {
  if (fluence_per_cm2 <= 0) return 0;
  return events / fluence_per_cm2;
}

double fit_from_cross_section(double sigma_cm2, double flux) {
  return sigma_cm2 * flux * kFitHours;
}

double fluence_from_exposure(double flux_per_cm2_s, double seconds) {
  support::require(flux_per_cm2_s >= 0 && seconds >= 0,
                   "fluence_from_exposure: negative argument");
  return flux_per_cm2_s * seconds;
}

double natural_years_equivalent(double fluence_per_cm2, double flux) {
  if (flux <= 0) return 0;
  const double hours = fluence_per_cm2 / flux;
  return hours / (24.0 * 365.25);
}

FoldDifference fold_difference(double beam_fit, double fi_fit,
                               double floor_fit) {
  const double beam = beam_fit > floor_fit ? beam_fit : floor_fit;
  const double fi = fi_fit > floor_fit ? fi_fit : floor_fit;
  FoldDifference out;
  out.beam_higher = beam >= fi;
  out.magnitude = out.beam_higher ? beam / fi : fi / beam;
  return out;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0;
  double sum = 0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0;
  double log_sum = 0;
  for (const double v : values) {
    support::require(v > 0, "geomean: non-positive value");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace sefi::stats
