#include "sefi/stats/estimator.hpp"

#include <cmath>

#include "sefi/stats/confidence.hpp"
#include "sefi/support/error.hpp"

namespace sefi::stats {

PrunedEstimate pruned_estimate(std::uint64_t dead, std::uint64_t live,
                               std::uint64_t executed, std::uint64_t faulty,
                               double confidence) {
  support::require(executed <= live,
                   "pruned_estimate: executed exceeds live sites");
  support::require(faulty <= executed,
                   "pruned_estimate: faulty exceeds executed sites");
  PrunedEstimate estimate;
  const std::uint64_t n = dead + live;
  if (n == 0 || executed == 0) {
    // Nothing classified (or the whole sample proved dead with no live
    // remainder): the rate is exactly the dead stratum's zero.
    return estimate;
  }
  const double weight =
      static_cast<double>(live) / static_cast<double>(n);
  const double p_hat =
      static_cast<double>(faulty) / static_cast<double>(executed);
  estimate.rate = weight * p_hat;
  if (executed < live && live > 1) {
    const double fpc = static_cast<double>(live - executed) /
                       static_cast<double>(live - 1);
    estimate.variance = weight * weight * p_hat * (1.0 - p_hat) /
                        static_cast<double>(executed) * fpc;
  }
  estimate.ci_half_width =
      estimate.variance > 0
          ? z_score(confidence) * std::sqrt(estimate.variance)
          : 0;
  return estimate;
}

}  // namespace sefi::stats
