#include "sefi/stats/confidence.hpp"

#include <cmath>

#include "sefi/support/error.hpp"

namespace sefi::stats {

namespace {

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 — far below campaign noise).
double inverse_normal_cdf(double p) {
  support::require(p > 0.0 && p < 1.0, "inverse_normal_cdf: p out of (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

/// Chi-square quantile via the Wilson-Hilferty cube approximation.
double chi_square_quantile(double p, double dof) {
  if (dof <= 0) return 0;
  const double z = inverse_normal_cdf(p);
  const double t = 1.0 - 2.0 / (9.0 * dof) + z * std::sqrt(2.0 / (9.0 * dof));
  return dof * t * t * t;
}

}  // namespace

double z_score(double confidence) {
  support::require(confidence > 0.0 && confidence < 1.0,
                   "z_score: confidence out of (0,1)");
  return inverse_normal_cdf(0.5 + confidence / 2.0);
}

std::uint64_t leveugle_sample_size(double population, double margin,
                                   double confidence, double p) {
  support::require(population > 1 && margin > 0,
                   "leveugle_sample_size: bad arguments");
  const double t = z_score(confidence);
  const double n = population /
                   (1.0 + margin * margin * (population - 1.0) /
                              (t * t * p * (1.0 - p)));
  return static_cast<std::uint64_t>(std::ceil(n));
}

double leveugle_error_margin(double population, std::uint64_t n,
                             double confidence, double p) {
  support::require(population > 1 && n >= 1,
                   "leveugle_error_margin: bad arguments");
  const double t = z_score(confidence);
  const double nn = static_cast<double>(n);
  const double fpc =
      nn >= population ? 0.0 : (population - nn) / (population - 1.0);
  return t * std::sqrt(p * (1.0 - p) / nn * fpc);
}

double readjusted_error_margin(double population, std::uint64_t n,
                               double confidence, double p_hat) {
  const double initial = leveugle_error_margin(population, n, confidence, 0.5);
  // Shift the estimate toward 0.5 by the initial margin: conservative.
  double p = p_hat < 0.5 ? p_hat + initial : p_hat - initial;
  if ((p_hat < 0.5 && p > 0.5) || (p_hat >= 0.5 && p < 0.5)) p = 0.5;
  if (p <= 0.0) p = 1e-9;
  if (p >= 1.0) p = 1.0 - 1e-9;
  return leveugle_error_margin(population, n, confidence, p);
}

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double confidence) {
  support::require(trials > 0 && successes <= trials,
                   "wilson_interval: bad arguments");
  const double z = z_score(confidence);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom;
  // Clamp: floating-point noise can push the bounds a hair outside [0,1].
  Interval out{center - half, center + half};
  if (out.lower < 0.0) out.lower = 0.0;
  if (out.upper > 1.0) out.upper = 1.0;
  return out;
}

Interval poisson_interval(std::uint64_t events, double confidence) {
  const double alpha = 1.0 - confidence;
  const double k = static_cast<double>(events);
  Interval out;
  out.lower = events == 0
                  ? 0.0
                  : 0.5 * chi_square_quantile(alpha / 2.0, 2.0 * k);
  out.upper = 0.5 * chi_square_quantile(1.0 - alpha / 2.0, 2.0 * (k + 1.0));
  return out;
}

}  // namespace sefi::stats
