// Statistical machinery for fault-injection sampling and beam counting.
//
// Fault sampling follows Leveugle et al., "Statistical fault injection:
// Quantified error and confidence" (DATE 2009) — the formulation the
// paper uses to size its 1,000-fault campaigns (§IV-C, Table IV).
#pragma once

#include <cstdint>

namespace sefi::stats {

/// Two-sided z-score for a confidence level (e.g. 0.99 -> 2.5758).
double z_score(double confidence);

/// Leveugle sample size: number of faults to draw from a population of
/// `population` bits for error margin `margin` at `confidence`, assuming
/// estimated proportion `p` (0.5 maximizes the sample).
std::uint64_t leveugle_sample_size(double population, double margin,
                                   double confidence, double p = 0.5);

/// Leveugle error margin achieved by a sample of size `n` from
/// `population`, at `confidence`, for estimated proportion `p`.
/// Includes the finite-population correction.
double leveugle_error_margin(double population, std::uint64_t n,
                             double confidence, double p = 0.5);

/// The paper's re-adjustment (§IV-C): after a campaign estimates
/// proportion `p_hat`, recompute the margin at p = p_hat shifted toward
/// 0.5 by the initial margin (a conservative tightening).
double readjusted_error_margin(double population, std::uint64_t n,
                               double confidence, double p_hat);

struct Interval {
  double lower = 0;
  double upper = 0;
};

/// Wilson score interval for a binomial proportion.
Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                         double confidence);

/// Confidence interval for a Poisson rate given `events` observations
/// (per unit exposure of 1; scale externally). Uses the Wilson-Hilferty
/// chi-square approximation, exact enough for event counts >= 0.
Interval poisson_interval(std::uint64_t events, double confidence);

}  // namespace sefi::stats
