// Stratified AVF estimator for pruned fault-injection campaigns
// (DESIGN.md §13).
//
// Fault-site pruning splits a component's sampled sites into two strata:
//   dead — provably never read before overwrite; outcome is Masked with
//          certainty (a zero-variance stratum);
//   live — everything else; a uniform without-replacement subsample of
//          size m is actually executed and its faulty fraction p_hat
//          observed.
// The population estimate reweights the live stratum by its prevalence:
//   AVF_hat = (live / n) * p_hat,            n = dead + live
//   Var     = (live / n)^2 * p_hat (1 - p_hat) / m * (live - m)/(live - 1)
// (the last factor is the finite-population correction for sampling the
// live stratum without replacement). The dead stratum contributes zero
// to both. When m == live the campaign is exhaustive over live sites and
// the estimator degenerates to the naive fraction with zero sampling
// variance from the live stratum subsampling.
#pragma once

#include <cstdint>

namespace sefi::stats {

struct PrunedEstimate {
  double rate = 0;           ///< reweighted population rate estimate
  double variance = 0;       ///< Var of the estimator
  double ci_half_width = 0;  ///< z(confidence) * sqrt(variance)
};

/// Estimates a population outcome rate from a pruned campaign.
///   `dead`     sites proven Masked without execution,
///   `live`     sites not provably masked,
///   `executed` live sites actually injected and classified (m <= live),
///   `faulty`   executed sites showing the outcome of interest.
/// Throws SefiError on inconsistent counts (executed > live,
/// faulty > executed). Returns all zeros when no site was classified.
PrunedEstimate pruned_estimate(std::uint64_t dead, std::uint64_t live,
                               std::uint64_t executed, std::uint64_t faulty,
                               double confidence);

}  // namespace sefi::stats
