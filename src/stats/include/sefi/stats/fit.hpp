// FIT-rate arithmetic (paper §II, §VI).
//
// FIT = failures per 10^9 device-hours. Two routes produce FIT rates:
//   - fault injection:   FIT = FIT_raw(bit) * size(bits) * AVF   (§VI)
//   - beam experiments:  FIT = sigma(cm^2) * flux_NYC * 10^9,
//     where sigma = events / fluence is the measured cross section and
//     flux_NYC is the JEDEC reference flux of 13 n/cm^2/h (JESD89A).
#pragma once

#include <cstdint>
#include <span>

namespace sefi::stats {

/// JEDEC JESD89A reference flux at NYC sea level, in n/(cm^2 * h).
inline constexpr double kNycFluxPerCm2Hour = 13.0;

/// Hours per 10^9 hours (the FIT denominator).
inline constexpr double kFitHours = 1e9;

/// AVF -> FIT conversion: FIT_component = fit_raw_bit * bits * avf.
double fit_from_avf(double fit_raw_per_bit, double bits, double avf);

/// Cross section from beam counting: sigma = events / fluence (cm^2).
/// Zero fluence yields 0.
double cross_section(double events, double fluence_per_cm2);

/// FIT from a cross section at the JEDEC NYC flux.
double fit_from_cross_section(double sigma_cm2,
                              double flux = kNycFluxPerCm2Hour);

/// Accelerated-beam bookkeeping: fluence accumulated by `seconds` of
/// exposure at `flux_per_cm2_s`.
double fluence_from_exposure(double flux_per_cm2_s, double seconds);

/// Natural-exposure equivalent (in years) of a fluence at the NYC flux —
/// the paper's "2.9 million years" scaling.
double natural_years_equivalent(double fluence_per_cm2,
                                double flux = kNycFluxPerCm2Hour);

/// The paper's fold-difference metric (Figs. 6-9): how many times larger
/// the bigger of the two rates is. `beam_higher` records the direction
/// (positive bars = beam higher). Zero rates are floored to `floor_fit`
/// to keep ratios finite, mirroring detection-limit handling.
struct FoldDifference {
  double magnitude = 1.0;
  bool beam_higher = true;
};
FoldDifference fold_difference(double beam_fit, double fi_fit,
                               double floor_fit = 1e-3);

/// Arithmetic mean; empty input -> 0.
double mean(std::span<const double> values);

/// Geometric mean of positive values; empty input -> 0.
double geomean(std::span<const double> values);

}  // namespace sefi::stats
