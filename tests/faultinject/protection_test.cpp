#include "sefi/fi/protection.hpp"

#include <gtest/gtest.h>

#include "sefi/core/lab.hpp"
#include "sefi/kernel/kernel.hpp"

namespace sefi::fi {
namespace {

TEST(ProtectionPolicy, FactoriesAndNames) {
  EXPECT_EQ(protection_name(Protection::kNone), "none");
  EXPECT_EQ(protection_name(Protection::kParity), "parity");
  EXPECT_EQ(protection_name(Protection::kSecded), "SECDED");

  const ProtectionPolicy none = ProtectionPolicy::none();
  for (const auto kind : microarch::kAllComponents) {
    EXPECT_EQ(none.component(kind), Protection::kNone);
  }
  const ProtectionPolicy commercial = ProtectionPolicy::commercial();
  EXPECT_EQ(commercial.component(microarch::ComponentKind::kL1D),
            Protection::kParity);
  EXPECT_EQ(commercial.component(microarch::ComponentKind::kL2),
            Protection::kSecded);
  EXPECT_EQ(commercial.component(microarch::ComponentKind::kRegFile),
            Protection::kNone);
  const ProtectionPolicy secded = ProtectionPolicy::full_secded();
  for (const auto kind : microarch::kAllComponents) {
    EXPECT_EQ(secded.component(kind), Protection::kSecded);
  }
}

/// Fixture with a bare detailed model for direct adjudication checks.
class AdjudicationTest : public ::testing::Test {
 protected:
  AdjudicationTest()
      : regfile_(64, 16),
        model_(microarch::DetailedConfig{}, mem_, devices_, regfile_) {}

  FaultDescriptor cache_fault(std::uint64_t bit,
                              FaultModel fm = FaultModel::kSingleBit) {
    FaultDescriptor f;
    f.component = microarch::ComponentKind::kL1D;
    f.bit = bit;
    f.model = fm;
    return f;
  }

  sim::PhysicalMemory mem_;
  sim::DeviceBlock devices_;
  microarch::PhysRegFile regfile_;
  microarch::DetailedModel model_;
};

TEST_F(AdjudicationTest, UnprotectedFaultsPassThrough) {
  const ProtectionPolicy policy = ProtectionPolicy::none();
  EXPECT_FALSE(
      adjudicate_protection(policy, cache_fault(0), model_).has_value());
}

TEST_F(AdjudicationTest, ParityRecoversCleanLines) {
  ProtectionPolicy policy;
  policy.set(microarch::ComponentKind::kL1D, Protection::kParity);
  // Pull a clean line into the L1D.
  mem_.write32(0x1000, 7);
  model_.read(0x1000, 4, true, false);
  const int way = model_.l1d().lookup(0x1000);
  ASSERT_GE(way, 0);
  EXPECT_EQ(adjudicate_protection(policy, cache_fault(0), model_),
            Outcome::kMasked);
}

TEST_F(AdjudicationTest, ParityLosesDirtyLines) {
  ProtectionPolicy policy;
  policy.set(microarch::ComponentKind::kL1D, Protection::kParity);
  // Dirty the line that owns bit 0 (set 0, way 0): write to address 0.
  model_.write(0x0, 4, 0x55, true, false);
  ASSERT_TRUE(model_.l1d().bit_in_dirty_line(0));
  EXPECT_EQ(adjudicate_protection(policy, cache_fault(0), model_),
            Outcome::kSysCrash);
}

TEST_F(AdjudicationTest, SecdedCorrectsSingleBit) {
  ProtectionPolicy policy = ProtectionPolicy::full_secded();
  model_.write(0x0, 4, 0x55, true, false);  // even dirty lines are safe
  EXPECT_EQ(adjudicate_protection(policy, cache_fault(0), model_),
            Outcome::kMasked);
}

TEST_F(AdjudicationTest, SecdedDoubleBitInDirtyLineIsFatal) {
  ProtectionPolicy policy = ProtectionPolicy::full_secded();
  model_.write(0x0, 4, 0x55, true, false);
  EXPECT_EQ(adjudicate_protection(
                policy, cache_fault(0, FaultModel::kDoubleBit), model_),
            Outcome::kSysCrash);
}

TEST_F(AdjudicationTest, SecdedDoubleBitInInvalidLineIsMasked) {
  ProtectionPolicy policy = ProtectionPolicy::full_secded();
  // Nothing cached: every line invalid.
  EXPECT_EQ(adjudicate_protection(
                policy, cache_fault(12345, FaultModel::kDoubleBit), model_),
            Outcome::kMasked);
}

TEST_F(AdjudicationTest, TlbParityAlwaysRecovers) {
  ProtectionPolicy policy;
  policy.set(microarch::ComponentKind::kDTlb, Protection::kParity);
  FaultDescriptor fault;
  fault.component = microarch::ComponentKind::kDTlb;
  fault.bit = 0;
  EXPECT_EQ(adjudicate_protection(policy, fault, model_), Outcome::kMasked);
}

TEST_F(AdjudicationTest, RegisterParityIsFatalOnLiveRegisters) {
  ProtectionPolicy policy;
  policy.set(microarch::ComponentKind::kRegFile, Protection::kParity);
  FaultDescriptor live;
  live.component = microarch::ComponentKind::kRegFile;
  live.bit = 2 * 32;  // phys reg 2, mapped at reset
  EXPECT_EQ(adjudicate_protection(policy, live, model_),
            Outcome::kSysCrash);
  FaultDescriptor dead = live;
  dead.bit = 40ull * 32;  // phys reg 40, free at reset
  EXPECT_EQ(adjudicate_protection(policy, dead, model_), Outcome::kMasked);
}

TEST(ProtectionCampaign, FullSecdedEliminatesSingleBitFailures) {
  CampaignConfig config;
  config.rig.uarch = core::scaled_uarch();
  config.rig.protection = ProtectionPolicy::full_secded();
  config.faults_per_component = 30;
  const auto& w = workloads::workload_by_name("SusanC");
  const WorkloadFiResult result = run_fi_campaign(w, config);
  for (const auto& comp : result.components) {
    EXPECT_EQ(comp.counts.masked, comp.counts.total())
        << microarch::component_name(comp.component);
  }
}

TEST(ProtectionCampaign, CommercialMixProtectsCachesOnly) {
  CampaignConfig baseline;
  baseline.rig.uarch = core::scaled_uarch();
  baseline.faults_per_component = 60;
  CampaignConfig protected_config = baseline;
  protected_config.rig.protection = ProtectionPolicy::commercial();
  const auto& w = workloads::workload_by_name("FFT");
  const WorkloadFiResult base = run_fi_campaign(w, baseline);
  const WorkloadFiResult prot = run_fi_campaign(w, protected_config);
  // Cache failures vanish (parity never yields SDC; clean-line faults
  // mask; our workloads' dirty-line DUEs surface as SysCrash).
  for (const auto kind :
       {microarch::ComponentKind::kL1I, microarch::ComponentKind::kL1D,
        microarch::ComponentKind::kL2}) {
    EXPECT_EQ(prot.component(kind).counts.sdc, 0u);
    EXPECT_EQ(prot.component(kind).counts.app_crash, 0u);
  }
  // Unprotected components behave exactly as the baseline (same sampling
  // stream, untouched by the policy).
  for (const auto kind :
       {microarch::ComponentKind::kRegFile, microarch::ComponentKind::kITlb,
        microarch::ComponentKind::kDTlb}) {
    EXPECT_EQ(prot.component(kind).counts.sdc,
              base.component(kind).counts.sdc);
    EXPECT_EQ(prot.component(kind).counts.sys_crash,
              base.component(kind).counts.sys_crash);
  }
}

}  // namespace
}  // namespace sefi::fi
