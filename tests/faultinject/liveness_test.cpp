#include "sefi/fi/liveness.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "sefi/core/lab.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/support/error.hpp"

namespace sefi::fi {
namespace {

// --- ComponentLiveness unit tests (fake cycle counter) ---

/// Recorder over `regions` regions driven by a hand-advanced clock.
struct Recorder {
  std::uint64_t clock = 0;
  ComponentLiveness live;
  explicit Recorder(std::uint32_t regions, std::uint64_t valid_now = 0,
                    std::uint64_t valid_after_reset = 0,
                    std::uint64_t capacity = 1) {
    live.begin(regions, &clock, valid_now, valid_after_reset, capacity);
  }
};

TEST(ComponentLiveness, WriteThenReadIsLiveBetweenThem) {
  Recorder rec(1);
  rec.clock = 10;
  rec.live.on_region_kill(0);  // write: value before this is dead
  rec.clock = 20;
  rec.live.on_region_read(0);
  rec.live.finish(30);
  // A flip at the write stamp itself is overwritten; from the next
  // boundary up to the read it is observable.
  EXPECT_FALSE(rec.live.live_at(0, 10));
  EXPECT_TRUE(rec.live.live_at(0, 11));
  EXPECT_TRUE(rec.live.live_at(0, 15));
  EXPECT_TRUE(rec.live.live_at(0, 20));
  EXPECT_FALSE(rec.live.live_at(0, 21));
  EXPECT_EQ(rec.live.interval_count(), 1u);
}

TEST(ComponentLiveness, WriteThenOverwriteIsNeverLive) {
  Recorder rec(1);
  rec.clock = 10;
  rec.live.on_region_kill(0);
  rec.clock = 50;
  rec.live.on_region_kill(0);  // overwritten, never read
  rec.live.finish(100);
  for (const std::uint64_t cycle : {0u, 10u, 30u, 49u, 50u, 99u}) {
    EXPECT_FALSE(rec.live.live_at(0, cycle)) << "cycle " << cycle;
  }
  EXPECT_EQ(rec.live.interval_count(), 0u);
}

TEST(ComponentLiveness, InvalidateClosesTheInterval) {
  Recorder rec(1);
  rec.clock = 20;
  rec.live.on_region_read(0);  // live from recording start to 20
  rec.clock = 30;
  rec.live.on_region_kill(0);  // invalidation closes the liveness
  rec.clock = 100;
  rec.live.on_region_read(0);  // new interval after the invalidate
  rec.live.finish(120);
  EXPECT_TRUE(rec.live.live_at(0, 0));
  EXPECT_TRUE(rec.live.live_at(0, 20));
  // Between the last pre-invalidate read and the invalidation a flip is
  // wiped before anything reads it.
  EXPECT_FALSE(rec.live.live_at(0, 25));
  EXPECT_FALSE(rec.live.live_at(0, 30));
  EXPECT_TRUE(rec.live.live_at(0, 31));
  EXPECT_TRUE(rec.live.live_at(0, 100));
  EXPECT_FALSE(rec.live.live_at(0, 101));
  EXPECT_EQ(rec.live.interval_count(), 2u);
}

TEST(ComponentLiveness, RestoreResetsEveryRegionsIntervals) {
  Recorder rec(2);
  rec.clock = 20;
  rec.live.on_region_read(0);
  rec.live.on_region_read(1);
  rec.clock = 40;
  rec.live.on_kill_all();  // whole-structure reset (snapshot restore)
  rec.clock = 60;
  rec.live.on_region_read(0);  // must not bridge across the reset
  rec.live.finish(80);
  // Pre-reset liveness is untouched (those reads really happened)...
  EXPECT_TRUE(rec.live.live_at(0, 15));
  EXPECT_TRUE(rec.live.live_at(1, 15));
  // ...but the reset bounds every region's next interval, including
  // region 1 which was never individually killed.
  EXPECT_FALSE(rec.live.live_at(0, 30));
  EXPECT_FALSE(rec.live.live_at(0, 40));
  EXPECT_TRUE(rec.live.live_at(0, 41));
  EXPECT_TRUE(rec.live.live_at(0, 60));
  EXPECT_FALSE(rec.live.live_at(1, 50));
}

TEST(ComponentLiveness, BackToBackReadsCoalesce) {
  Recorder rec(1);
  rec.clock = 10;
  rec.live.on_region_read(0);
  rec.clock = 11;
  rec.live.on_region_read(0);  // adjacent: extends, no new interval
  rec.clock = 20;
  rec.live.on_region_kill(0);
  rec.clock = 25;
  rec.live.on_region_read(0);  // gap after a kill: new interval
  rec.live.finish(30);
  EXPECT_EQ(rec.live.interval_count(), 2u);
  EXPECT_TRUE(rec.live.live_at(0, 11));
  EXPECT_FALSE(rec.live.live_at(0, 21 - 1));  // killed at 20
  EXPECT_TRUE(rec.live.live_at(0, 21));
}

TEST(ComponentLiveness, ReadAtTheKillStampStaysDead) {
  Recorder rec(1);
  rec.clock = 10;
  rec.live.on_region_kill(0);
  rec.live.on_region_read(0);  // same stamp: the kill wins (lo > stamp)
  rec.live.finish(20);
  EXPECT_FALSE(rec.live.live_at(0, 10));
  EXPECT_EQ(rec.live.interval_count(), 0u);
}

TEST(ComponentLiveness, LiveInReportsIntervalOverlap) {
  Recorder rec(1);
  rec.clock = 10;
  rec.live.on_region_kill(0);
  rec.clock = 20;
  rec.live.on_region_read(0);  // live interval [11, 20]
  rec.live.finish(40);
  // Ranges that touch the interval anywhere report live; disjoint
  // ranges on either side do not.
  EXPECT_TRUE(rec.live.live_in(0, 11, 20));
  EXPECT_TRUE(rec.live.live_in(0, 0, 11));    // overlaps the left edge
  EXPECT_TRUE(rec.live.live_in(0, 20, 35));   // overlaps the right edge
  EXPECT_TRUE(rec.live.live_in(0, 0, 100));   // spans the interval
  EXPECT_TRUE(rec.live.live_in(0, 15, 15));   // degenerate point query
  EXPECT_FALSE(rec.live.live_in(0, 0, 10));   // all before
  EXPECT_FALSE(rec.live.live_in(0, 21, 100));  // all after
  EXPECT_THROW(rec.live.live_in(0, 30, 20), support::SefiError);
}

TEST(ComponentLiveness, LiveInSeesTheDeadGapBetweenIntervals) {
  Recorder rec(1);
  rec.clock = 10;
  rec.live.on_region_read(0);  // [0, 10]
  rec.clock = 20;
  rec.live.on_region_kill(0);
  rec.clock = 50;
  rec.live.on_region_read(0);  // [21, 50]
  rec.live.finish(60);
  // A slack window wholly inside the dead gap stays prunable; one that
  // reaches the next interval does not — exactly the boundary-landing
  // case that makes the pruner query a window instead of a point.
  EXPECT_FALSE(rec.live.live_in(0, 11, 20));
  EXPECT_TRUE(rec.live.live_in(0, 11, 21));
}

TEST(ComponentLiveness, OccupancyIntegratesValidDeltas) {
  Recorder rec(1, /*valid_now=*/0, /*valid_after_reset=*/0, /*capacity=*/10);
  rec.clock = 10;
  rec.live.on_valid_delta(5);
  rec.live.finish(20);
  // 0 entries for 10 cycles, then 5 of 10 entries for 10 cycles.
  EXPECT_DOUBLE_EQ(rec.live.mean_occupancy(), 0.25);
  EXPECT_EQ(rec.live.occupancy_steps(), 2u);
}

TEST(ComponentLiveness, OccupancySnapsOnReset) {
  Recorder rec(1, /*valid_now=*/4, /*valid_after_reset=*/0, /*capacity=*/4);
  rec.clock = 10;
  rec.live.on_kill_all();  // full for 10 cycles, then emptied
  rec.live.finish(20);
  EXPECT_DOUBLE_EQ(rec.live.mean_occupancy(), 0.5);
}

TEST(ComponentLiveness, QueriesBeforeRecordingThrow) {
  std::uint64_t clock = 0;
  ComponentLiveness live;
  live.begin(1, &clock, 0, 0, 1);
  EXPECT_THROW(live.live_at(0, 0), support::SefiError);
  EXPECT_THROW(live.mean_occupancy(), support::SefiError);
}

// --- Rig-level pruning: recording, soundness, fault-model handling ---

RigConfig scaled_rig() {
  RigConfig rig;
  rig.uarch = core::scaled_uarch();
  return rig;
}

const workloads::Workload& susan() {
  return workloads::workload_by_name("SusanC");
}

TEST(LivenessRecording, RigRecordsAllComponents) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                         /*checkpoints=*/1, /*record_liveness=*/true);
  ASSERT_NE(rig.liveness(), nullptr);
  ASSERT_TRUE(rig.liveness()->recorded());
  for (const auto kind : microarch::kAllComponents) {
    const ComponentLiveness& live = rig.liveness()->component(kind);
    EXPECT_GE(live.mean_occupancy(), 0.0)
        << microarch::component_name(kind);
    EXPECT_LE(live.mean_occupancy(), 1.0)
        << microarch::component_name(kind);
    EXPECT_GT(live.occupancy_steps(), 0u)
        << microarch::component_name(kind);
  }
  // A workload that runs at all must leave live intervals somewhere.
  EXPECT_GT(rig.liveness()->component(microarch::ComponentKind::kRegFile)
                .interval_count(),
            0u);
}

TEST(LivenessRecording, RigWithoutRecordingRejectsPruneQueries) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  EXPECT_EQ(rig.liveness(), nullptr);
  FaultDescriptor fault;
  fault.component = microarch::ComponentKind::kL1D;
  EXPECT_THROW(rig.provably_masked(fault), support::SefiError);
}

// The soundness contract behind the whole optimisation: every site the
// classifier prunes, executed for real, must come back Masked. Checked
// for both fault models over a fresh sample per component.
TEST(PruneSoundness, EveryPrunedSiteExecutesToMasked) {
  std::uint64_t pruned = 0;
  for (const char* name : {"SusanC", "CRC32"}) {
    const auto& workload = workloads::workload_by_name(name);
    const InjectionRig rig(workload, scaled_rig(),
                           workloads::kDefaultInputSeed,
                           /*checkpoints=*/4, /*record_liveness=*/true);
    const std::uint64_t spawn = rig.golden().spawn_cycle;
    const std::uint64_t window = rig.golden().end_cycle - spawn;
    for (const FaultModel model :
         {FaultModel::kSingleBit, FaultModel::kDoubleBit}) {
      CampaignConfig config;
      config.faults_per_component = 15;
      config.fault_model = model;
      for (const auto kind : microarch::kAllComponents) {
        const auto faults = sample_component_faults(
            config, name, kind, rig.component_bits(kind), spawn, window);
        for (const FaultDescriptor& fault : faults) {
          if (!rig.provably_masked(fault)) continue;
          ++pruned;
          EXPECT_EQ(rig.run_one(fault), Outcome::kMasked)
              << name << " " << fault_model_name(model) << " "
              << microarch::component_name(kind) << " bit " << fault.bit
              << " cycle " << fault.cycle;
        }
      }
    }
  }
  // The check must not pass vacuously: pruning has to fire somewhere.
  EXPECT_GT(pruned, 0u);
}

// A double-bit fault also flips the buddy bit, which can land in the
// *next* liveness region; pruning must consult both. The register file
// makes the straddle concrete: bit 32r+31's buddy lives in region r+1.
TEST(PruneSoundness, DoubleBitBuddyStraddlesRegionBoundary) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                         /*checkpoints=*/1, /*record_liveness=*/true);
  const ComponentLiveness& live =
      rig.liveness()->component(microarch::ComponentKind::kRegFile);
  const std::uint64_t spawn = rig.golden().spawn_cycle;
  const std::uint64_t window = rig.golden().end_cycle - spawn;
  const std::uint64_t step = window / 256 + 1;
  const std::uint32_t regions =
      static_cast<std::uint32_t>(rig.component_bits(
                                     microarch::ComponentKind::kRegFile) /
                                 32);
  bool found = false;
  for (std::uint32_t r = 0; !found && r + 1 < regions; ++r) {
    for (std::uint64_t c = spawn; c < spawn + window; c += step) {
      // Region r must be dead over the whole landing window the pruner
      // assumes (the flip can land up to prune_slack cycles past c).
      if (live.live_in(r, c, c + rig.prune_slack()) || !live.live_at(r + 1, c))
        continue;
      // Region r dead, region r+1 live at cycle c: the single-bit flip
      // in r is provably masked, the double-bit flip is not (its buddy
      // can still be read).
      FaultDescriptor fault;
      fault.component = microarch::ComponentKind::kRegFile;
      fault.bit = 32ull * r + 31;
      fault.cycle = c;
      fault.model = FaultModel::kSingleBit;
      EXPECT_TRUE(rig.provably_masked(fault));
      fault.model = FaultModel::kDoubleBit;
      EXPECT_FALSE(rig.provably_masked(fault));
      FaultDescriptor buddy = fault;
      buddy.bit = 32ull * r + 32;  // first bit of the live region
      buddy.model = FaultModel::kSingleBit;
      EXPECT_FALSE(rig.provably_masked(buddy));
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found)
      << "no cycle with a dead region adjacent to a live one; the "
         "workload/geometry no longer exercises the straddle";
}

// Whatever the straddle details, the buddy rule must satisfy the
// implication: a pruned double-bit site means both single-bit halves
// are individually pruned too.
TEST(PruneSoundness, DoubleBitPruningImpliesBothHalvesPruned) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                         /*checkpoints=*/1, /*record_liveness=*/true);
  const std::uint64_t spawn = rig.golden().spawn_cycle;
  const std::uint64_t window = rig.golden().end_cycle - spawn;
  CampaignConfig config;
  config.faults_per_component = 40;
  config.fault_model = FaultModel::kDoubleBit;
  for (const auto kind : microarch::kAllComponents) {
    const std::uint64_t bits = rig.component_bits(kind);
    const auto faults = sample_component_faults(config, "SusanC", kind, bits,
                                                spawn, window);
    for (FaultDescriptor fault : faults) {
      if (!rig.provably_masked(fault)) continue;
      FaultDescriptor half = fault;
      half.model = FaultModel::kSingleBit;
      EXPECT_TRUE(rig.provably_masked(half));
      half.bit = fault.bit + 1 < bits ? fault.bit + 1 : fault.bit - 1;
      EXPECT_TRUE(rig.provably_masked(half));
    }
  }
}

// --- Campaign-level acceptance: classify ≡ off, sample reweights ---

void expect_same_counts(const WorkloadFiResult& a, const WorkloadFiResult& b,
                        const char* label) {
  for (const auto kind : microarch::kAllComponents) {
    const ClassCounts& ca = a.component(kind).counts;
    const ClassCounts& cb = b.component(kind).counts;
    EXPECT_EQ(ca.masked, cb.masked)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.sdc, cb.sdc)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.app_crash, cb.app_crash)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.sys_crash, cb.sys_crash)
        << label << " " << microarch::component_name(kind);
  }
}

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.rig = scaled_rig();
  config.faults_per_component = 20;
  return config;
}

// The ISSUE's acceptance matrix: SEFI_PRUNE=classify must produce
// bit-identical per-component tallies to off — with strictly fewer
// injections actually executed — on serial and threaded runs alike.
TEST(CampaignPrune, ClassifyDoesNotChangeResults) {
  for (const std::uint64_t threads : {1, 4}) {
    CampaignConfig config = small_campaign();
    config.threads = threads;
    config.checkpoints = 4;
    config.prune = PruneMode::kOff;
    const WorkloadFiResult off = run_fi_campaign(susan(), config);
    config.prune = PruneMode::kClassify;
    const WorkloadFiResult classify = run_fi_campaign(susan(), config);

    expect_same_counts(off, classify, "classify-vs-off");
    for (const auto kind : microarch::kAllComponents) {
      EXPECT_DOUBLE_EQ(off.component(kind).avf(), classify.component(kind).avf())
          << microarch::component_name(kind);
      EXPECT_DOUBLE_EQ(off.component(kind).error_margin,
                       classify.component(kind).error_margin)
          << microarch::component_name(kind);
    }

    // Off mode books no prune telemetry at all.
    EXPECT_EQ(off.stats.pruned_sites, 0u);
    EXPECT_EQ(off.stats.live_sites, 0u);
    EXPECT_DOUBLE_EQ(off.stats.pruned_fraction, 0.0);

    // Classify pruned something and executed strictly fewer injections.
    EXPECT_GT(classify.stats.pruned_sites, 0u);
    EXPECT_EQ(classify.stats.pruned_sites + classify.stats.live_sites,
              classify.stats.injections);
    EXPECT_EQ(classify.stats.live_sites_executed, classify.stats.live_sites);
    EXPECT_LT(classify.stats.tasks_run, off.stats.tasks_run);
    EXPECT_GT(classify.stats.pruned_fraction, 0.0);
    // Prune skips must not masquerade as journal replays.
    EXPECT_EQ(classify.stats.journal_replayed, 0u);
  }
}

TEST(CampaignPrune, SampleSubsamplesAndReweights) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 24;
  config.prune = PruneMode::kOff;
  const WorkloadFiResult off = run_fi_campaign(susan(), config);
  config.prune = PruneMode::kSample;
  config.prune_sample_fraction = 0.5;
  const WorkloadFiResult sampled = run_fi_campaign(susan(), config);

  EXPECT_GT(sampled.stats.pruned_sites, 0u);
  EXPECT_LT(sampled.stats.live_sites_executed, sampled.stats.live_sites);
  EXPECT_LT(sampled.stats.tasks_run, off.stats.tasks_run);

  for (const auto kind : microarch::kAllComponents) {
    const ComponentResult& exhaustive = off.component(kind);
    const ComponentResult& comp = sampled.component(kind);
    // The reweighted estimate agrees with the exhaustive one to within
    // the two estimators' combined uncertainty.
    const double gap = comp.avf() - exhaustive.avf();
    const double slack =
        comp.error_margin + exhaustive.error_margin + 1e-9;
    EXPECT_LE(gap, slack) << microarch::component_name(kind);
    EXPECT_LE(-gap, slack) << microarch::component_name(kind);
    EXPECT_GE(comp.estimator_variance, 0.0);
    // Estimates stay inside [0, 1] despite reweighting.
    EXPECT_GE(comp.avf(), 0.0);
    EXPECT_LE(comp.avf(), 1.0);
  }
}

TEST(CampaignPrune, SampleIsDeterministicAcrossThreadCounts) {
  CampaignConfig config = small_campaign();
  config.prune = PruneMode::kSample;
  config.prune_sample_fraction = 0.5;
  config.threads = 1;
  const WorkloadFiResult serial = run_fi_campaign(susan(), config);
  config.threads = 4;
  const WorkloadFiResult threaded = run_fi_campaign(susan(), config);
  expect_same_counts(serial, threaded, "sample-threads");
  EXPECT_EQ(serial.stats.pruned_sites, threaded.stats.pruned_sites);
  EXPECT_EQ(serial.stats.live_sites_executed,
            threaded.stats.live_sites_executed);
}

TEST(PruneModeNames, RoundTripAndReject) {
  EXPECT_EQ(prune_mode_name(PruneMode::kOff), "off");
  EXPECT_EQ(prune_mode_name(PruneMode::kClassify), "classify");
  EXPECT_EQ(prune_mode_name(PruneMode::kSample), "sample");
  EXPECT_EQ(prune_mode_from_name("off"), PruneMode::kOff);
  EXPECT_EQ(prune_mode_from_name("classify"), PruneMode::kClassify);
  EXPECT_EQ(prune_mode_from_name("sample"), PruneMode::kSample);
  EXPECT_THROW(prune_mode_from_name("on"), support::SefiError);
  EXPECT_THROW(prune_mode_from_name(""), support::SefiError);
}

}  // namespace
}  // namespace sefi::fi
