// Detection-soundness suite for hardened workloads (DESIGN.md §15).
//
// Two properties, both on real injected runs:
//
//   1. No detection without activation. Every run classified Detected
//      must have *consumed* the corrupted state — the rig's one-shot
//      activation watchpoint latched before the verdict. A detector
//      that fires on a fault nothing ever read would be a false
//      positive, and the fault-free equivalence suite already pins the
//      zero-fault case (no banner, golden console).
//
//   2. Detection preempts real corruption. Replaying a Detected fault
//      on the layout-identical *muted twin* (every detect branch
//      retargeted to fall through — same bytes, same addresses, same
//      golden run) shows the outcome the detector preempted. Not every
//      detection maps to a visible failure: a fault that lands in the
//      transform's own redundant state (shadow bank, signature slot)
//      trips a check but is benign once muted — the conservative side
//      of duplication-with-compare. So the per-fault assertion is that
//      the muted twin never reports Detected (the handler is
//      unreachable), and the aggregate assertion is that a nonzero
//      share of detections preempted a non-Masked outcome.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../support_fastpath_scope.hpp"
#include "sefi/core/lab.hpp"
#include "sefi/fi/campaign.hpp"
#include "sefi/harden/harden.hpp"

namespace sefi::fi {
namespace {

struct SoundnessTally {
  std::uint64_t runs = 0;
  std::uint64_t detected = 0;
  std::uint64_t detected_activated = 0;
  std::uint64_t preempted_non_masked = 0;
  std::uint64_t muted_detected = 0;  ///< must stay zero
};

/// Injects the same sampled fault set into the armed rig and, for every
/// Detected verdict, into the muted twin.
SoundnessTally sweep(const workloads::Workload& workload,
                     harden::HardenMode mode,
                     const std::vector<microarch::ComponentKind>& components,
                     std::uint64_t faults_per_component) {
  CampaignConfig config;
  config.rig.uarch = core::scaled_uarch();
  config.rig.harden = mode;
  config.faults_per_component = faults_per_component;

  InjectionRig armed(workload, config.rig, config.input_seed);

  RigConfig muted_rig = config.rig;
  muted_rig.harden_options.mute_detection = true;
  InjectionRig muted(workload, muted_rig, config.input_seed);

  // Layout-identical twins: the same golden window, byte for byte —
  // which is what makes replaying the *same* FaultDescriptor on both
  // meaningful (same cycle hits the same dynamic instruction, same flat
  // bit hits the same structure entry).
  EXPECT_EQ(armed.golden().console, muted.golden().console);
  EXPECT_EQ(armed.golden().spawn_cycle, muted.golden().spawn_cycle);
  EXPECT_EQ(armed.golden().end_cycle, muted.golden().end_cycle);

  const std::uint64_t spawn = armed.golden().spawn_cycle;
  const std::uint64_t window = armed.golden().end_cycle - spawn;

  InjectionRig::Context armed_ctx(armed);
  InjectionRig::Context muted_ctx(muted);

  SoundnessTally tally;
  for (const auto kind : components) {
    const auto faults = sample_component_faults(
        config, workload.info().name, kind, armed.component_bits(kind),
        spawn, window);
    for (const auto& fault : faults) {
      InjectionForensics forensics;
      const Outcome outcome = armed_ctx.run_one(fault, nullptr, &forensics);
      ++tally.runs;
      if (outcome != Outcome::kDetected) continue;
      ++tally.detected;
      if (forensics.activated) ++tally.detected_activated;
      const Outcome muted_outcome = muted_ctx.run_one(fault);
      if (muted_outcome == Outcome::kDetected) ++tally.muted_detected;
      if (muted_outcome != Outcome::kMasked &&
          muted_outcome != Outcome::kDetected) {
        ++tally.preempted_non_masked;
      }
    }
  }
  return tally;
}

TEST(HardenDetectionSoundness, DwcDetectionsAreActivatedRealFaults) {
  const auto tally = sweep(
      workloads::workload_by_name("CRC32"), harden::HardenMode::kDwc,
      {microarch::ComponentKind::kRegFile, microarch::ComponentKind::kL1D},
      25);
  // The sweep is seeded and deterministic, so a nonzero detection count
  // is a stable property of this configuration, not a flaky threshold.
  ASSERT_GT(tally.detected, 0u);
  EXPECT_EQ(tally.detected_activated, tally.detected)
      << "a Detected verdict without a latched activation is a false "
         "positive";
  EXPECT_EQ(tally.muted_detected, 0u)
      << "the muted twin's handler must be unreachable";
  EXPECT_GT(tally.preempted_non_masked, 0u)
      << "no detection preempted a visible failure — the detector only "
         "ever fired on its own redundant state";
}

TEST(HardenDetectionSoundness, TmrCfcssDetectionsAreActivatedRealFaults) {
  const auto tally = sweep(
      workloads::workload_by_name("Qsort"), harden::HardenMode::kTmrCfcss,
      {microarch::ComponentKind::kRegFile, microarch::ComponentKind::kL1I,
       microarch::ComponentKind::kDTlb},
      25);
  ASSERT_GT(tally.detected, 0u);
  EXPECT_EQ(tally.detected_activated, tally.detected);
  EXPECT_EQ(tally.muted_detected, 0u);
}

}  // namespace
}  // namespace sefi::fi
