#include "sefi/fi/campaign.hpp"

#include <gtest/gtest.h>

#include "sefi/core/lab.hpp"
#include "sefi/support/error.hpp"

namespace sefi::fi {
namespace {

RigConfig scaled_rig() {
  RigConfig rig;
  rig.uarch = core::scaled_uarch();
  return rig;
}

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.rig = scaled_rig();
  config.faults_per_component = 25;
  return config;
}

const workloads::Workload& susan() {
  return workloads::workload_by_name("SusanC");
}

TEST(OutcomeName, AllNamed) {
  EXPECT_EQ(outcome_name(Outcome::kMasked), "Masked");
  EXPECT_EQ(outcome_name(Outcome::kSdc), "SDC");
  EXPECT_EQ(outcome_name(Outcome::kAppCrash), "AppCrash");
  EXPECT_EQ(outcome_name(Outcome::kSysCrash), "SysCrash");
}

TEST(ClassCounts, AddAndTotal) {
  ClassCounts counts;
  counts.add(Outcome::kMasked);
  counts.add(Outcome::kMasked);
  counts.add(Outcome::kSdc);
  counts.add(Outcome::kAppCrash);
  counts.add(Outcome::kSysCrash);
  EXPECT_EQ(counts.masked, 2u);
  EXPECT_EQ(counts.total(), 5u);
}

TEST(ComponentResult, AvfArithmetic) {
  ComponentResult comp;
  comp.counts = {70, 10, 15, 5};
  EXPECT_DOUBLE_EQ(comp.avf(), 0.30);
  EXPECT_DOUBLE_EQ(comp.avf_sdc(), 0.10);
  EXPECT_DOUBLE_EQ(comp.avf_app_crash(), 0.15);
  EXPECT_DOUBLE_EQ(comp.avf_sys_crash(), 0.05);
}

TEST(ComponentResult, EmptyCountsGiveZeroAvf) {
  ComponentResult comp;
  EXPECT_DOUBLE_EQ(comp.avf(), 0.0);
  EXPECT_DOUBLE_EQ(comp.avf_sdc(), 0.0);
}

TEST(InjectionRig, GoldenRunIsSane) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  const GoldenRun& golden = rig.golden();
  EXPECT_EQ(golden.console, susan().expected_console(
                                 workloads::kDefaultInputSeed));
  EXPECT_EQ(golden.exit_code, 0u);
  EXPECT_GT(golden.spawn_cycle, 0u);
  EXPECT_GT(golden.end_cycle, golden.spawn_cycle);
  EXPECT_GT(golden.instructions, 10'000u);
}

TEST(InjectionRig, ComponentBitsMatchScaledGeometry) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  // 4 KB 4-way 32B L1: 128 lines (32 sets) * (2 + 22 tag + 256 data).
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kL1D),
            128u * (2 + 22 + 256));
  // 8-entry TLBs.
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kDTlb), 8u * 28);
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kRegFile),
            64u * 32);
}

TEST(InjectionRig, LateFaultIsMasked) {
  // A fault injected at the very last golden cycle cannot corrupt output
  // that has already been emitted... but it may still hit live state; the
  // deterministic check here: a fault *beyond* the machine's life is
  // classified defensively as masked.
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  FaultDescriptor fault;
  fault.component = microarch::ComponentKind::kRegFile;
  fault.bit = 0;
  fault.cycle = rig.golden().end_cycle * 10;
  EXPECT_EQ(rig.run_one(fault), Outcome::kMasked);
}

TEST(InjectionRig, SameFaultSameOutcome) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  FaultDescriptor fault;
  fault.component = microarch::ComponentKind::kL1D;
  fault.bit = 1234;
  fault.cycle = rig.golden().spawn_cycle + 5000;
  EXPECT_EQ(rig.run_one(fault), rig.run_one(fault));
}

TEST(Campaign, CountsSumToSampleSize) {
  const WorkloadFiResult result = run_fi_campaign(susan(), small_campaign());
  EXPECT_EQ(result.workload, "SusanC");
  for (const ComponentResult& comp : result.components) {
    EXPECT_EQ(comp.counts.total(), 25u)
        << microarch::component_name(comp.component);
    EXPECT_GT(comp.bits, 0u);
    EXPECT_GT(comp.error_margin, 0.0);
    EXPECT_LT(comp.error_margin, 0.30);
  }
}

namespace {

void expect_same_counts(const WorkloadFiResult& a, const WorkloadFiResult& b,
                        const char* label) {
  for (const auto kind : microarch::kAllComponents) {
    const ClassCounts& ca = a.component(kind).counts;
    const ClassCounts& cb = b.component(kind).counts;
    EXPECT_EQ(ca.masked, cb.masked)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.sdc, cb.sdc)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.app_crash, cb.app_crash)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.sys_crash, cb.sys_crash)
        << label << " " << microarch::component_name(kind);
  }
}

}  // namespace

// The executor's determinism contract: campaign results are bit-identical
// for any thread count and any checkpoint-ladder size, because the fault
// list is pre-sampled before dispatch and each injected run replays the
// same fault-free prefix regardless of which rung it restores from.
TEST(CampaignExecutor, ThreadCountDoesNotChangeResults) {
  for (const char* name : {"SusanC", "Qsort"}) {
    const auto& workload = workloads::workload_by_name(name);
    CampaignConfig config = small_campaign();
    config.faults_per_component = 12;
    config.threads = 1;
    config.checkpoints = 1;
    const WorkloadFiResult serial = run_fi_campaign(workload, config);
    config.threads = 4;
    const WorkloadFiResult threaded = run_fi_campaign(workload, config);
    expect_same_counts(serial, threaded, name);
    EXPECT_EQ(serial.stats.threads, 1u);
    EXPECT_EQ(threaded.stats.threads, 4u);
  }
}

TEST(CampaignExecutor, CheckpointLadderDoesNotChangeResults) {
  for (const char* name : {"SusanC", "Qsort"}) {
    const auto& workload = workloads::workload_by_name(name);
    CampaignConfig config = small_campaign();
    config.faults_per_component = 12;
    config.threads = 1;
    config.checkpoints = 1;
    const WorkloadFiResult flat = run_fi_campaign(workload, config);
    config.checkpoints = 8;
    const WorkloadFiResult laddered = run_fi_campaign(workload, config);
    expect_same_counts(flat, laddered, name);
    EXPECT_EQ(flat.stats.checkpoints, 1u);
    EXPECT_EQ(laddered.stats.checkpoints, 8u);
    // The ladder must actually skip replay work, not just match results.
    // A flat rig still saves boot cycles (it restores the spawn snapshot
    // instead of re-booting), so only the ladder component is zero.
    EXPECT_EQ(flat.stats.replay_cycles_saved_ladder, 0u);
    EXPECT_GT(flat.stats.replay_cycles_saved_boot, 0u);
    EXPECT_GT(laddered.stats.replay_cycles_saved_ladder, 0u);
    EXPECT_LT(laddered.stats.replay_cycles, flat.stats.replay_cycles);
  }
}

// Delta restore is an executor fast path, never part of a campaign's
// identity: outcomes must be bit-identical with it on or off, for any
// thread count and ladder size (the ISSUE's acceptance matrix).
TEST(CampaignExecutor, DeltaRestoreDoesNotChangeResults) {
  const auto& workload = susan();
  for (const std::uint64_t threads : {1, 4}) {
    for (const std::uint64_t checkpoints : {1, 8}) {
      CampaignConfig config = small_campaign();
      config.faults_per_component = 8;
      config.threads = threads;
      config.checkpoints = checkpoints;
      config.rig.delta_restore = false;
      const WorkloadFiResult full = run_fi_campaign(workload, config);
      config.rig.delta_restore = true;
      const WorkloadFiResult delta = run_fi_campaign(workload, config);
      expect_same_counts(full, delta, "delta-vs-full");
      EXPECT_EQ(full.stats.delta_restores, 0u);
      EXPECT_GT(delta.stats.delta_restores, 0u);
    }
  }
}

// The perf claim itself: per-injection restore cost must shrink by at
// least 2x once restores are proportional to state touched.
TEST(CampaignExecutor, DeltaRestoreCutsRestoreBytes) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 12;
  config.threads = 1;
  config.checkpoints = 8;
  config.rig.delta_restore = false;
  const WorkloadFiResult full = run_fi_campaign(susan(), config);
  config.rig.delta_restore = true;
  const WorkloadFiResult delta = run_fi_campaign(susan(), config);
  ASSERT_GT(full.stats.restore_bytes_copied, 0u);
  ASSERT_GT(delta.stats.restore_bytes_copied, 0u);
  const double reduction =
      static_cast<double>(full.stats.restore_bytes_copied) /
      static_cast<double>(delta.stats.restore_bytes_copied);
  EXPECT_GE(reduction, 2.0) << "full=" << full.stats.restore_bytes_copied
                            << " delta=" << delta.stats.restore_bytes_copied;
  // Pages-per-delta-restore must be well below the full 4096-page image.
  EXPECT_GT(delta.stats.pages_dirtied_avg, 0.0);
  EXPECT_LT(delta.stats.pages_dirtied_avg, 2048.0);
}

// Satellite: the split replay accounting must sum consistently and be
// invariant under the thread count (each component depends only on the
// pre-sampled fault list, not on scheduling).
TEST(CampaignExecutor, ReplaySavingsSplitSumsAcrossThreads) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 10;
  config.checkpoints = 8;
  config.threads = 1;
  const WorkloadFiResult serial = run_fi_campaign(susan(), config);
  config.threads = 4;
  const WorkloadFiResult threaded = run_fi_campaign(susan(), config);
  for (const WorkloadFiResult* result : {&serial, &threaded}) {
    EXPECT_EQ(result->stats.replay_cycles_saved,
              result->stats.replay_cycles_saved_ladder +
                  result->stats.replay_cycles_saved_boot);
    // Every injection skips the whole boot prefix exactly once.
    EXPECT_GT(result->stats.replay_cycles_saved_boot, 0u);
    EXPECT_EQ(result->stats.replay_cycles_saved_boot % result->stats.injections,
              0u);
  }
  EXPECT_EQ(serial.stats.replay_cycles_saved_ladder,
            threaded.stats.replay_cycles_saved_ladder);
  EXPECT_EQ(serial.stats.replay_cycles_saved_boot,
            threaded.stats.replay_cycles_saved_boot);
  EXPECT_EQ(serial.stats.replay_cycles, threaded.stats.replay_cycles);
}

// Ladder rungs above spawn are sparse deltas: a K=8 ladder must cost far
// less than 8 full machine images.
TEST(InjectionRig, DeltaLadderIsSparse) {
  const InjectionRig flat(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                          /*checkpoints=*/1);
  const InjectionRig laddered(susan(), scaled_rig(),
                              workloads::kDefaultInputSeed,
                              /*checkpoints=*/8);
  const std::uint64_t full_image = flat.ladder_resident_bytes();
  ASSERT_GT(full_image, 0u);
  EXPECT_GE(laddered.checkpoint_count(), 2u);
  // Full ladders would cost checkpoint_count() * full_image; the delta
  // ladder must stay below two full images even at K=8.
  EXPECT_LT(laddered.ladder_resident_bytes(), 2 * full_image);
}

TEST(CampaignExecutor, StatsReportThroughput) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 10;
  const WorkloadFiResult result = run_fi_campaign(susan(), config);
  EXPECT_EQ(result.stats.injections, 10u * microarch::kNumComponents);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_GT(result.stats.injections_per_sec, 0.0);
  EXPECT_GE(result.stats.checkpoints, 1u);
  EXPECT_GE(result.stats.threads, 1u);
}

TEST(InjectionRig, LadderRungCountIsClampedAndCaptured) {
  const InjectionRig flat(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                          /*checkpoints=*/0);
  EXPECT_EQ(flat.checkpoint_count(), 1u);
  const InjectionRig laddered(susan(), scaled_rig(),
                              workloads::kDefaultInputSeed,
                              /*checkpoints=*/8);
  EXPECT_GT(laddered.checkpoint_count(), 1u);
  EXPECT_LE(laddered.checkpoint_count(), 8u);
}

TEST(InjectionRig, LadderedRunMatchesSpawnReplay) {
  // Same fault, rig with and without a ladder: identical classification.
  const InjectionRig flat(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                          /*checkpoints=*/1);
  const InjectionRig laddered(susan(), scaled_rig(),
                              workloads::kDefaultInputSeed,
                              /*checkpoints=*/6);
  const std::uint64_t window =
      flat.golden().end_cycle - flat.golden().spawn_cycle;
  for (std::uint64_t frac = 1; frac <= 9; frac += 4) {
    FaultDescriptor fault;
    fault.component = microarch::ComponentKind::kL1D;
    fault.bit = 101 * frac;
    fault.cycle = flat.golden().spawn_cycle + window * frac / 10;
    EXPECT_EQ(flat.run_one(fault), laddered.run_one(fault))
        << "fault at window fraction " << frac << "/10";
  }
}

TEST(CampaignSampling, DescriptorsAreExposedAndInWindow) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 40;
  const std::uint64_t spawn = 1000, window = 50000, bits = 4096;
  const auto faults = sample_component_faults(
      config, "SusanC", microarch::ComponentKind::kL2, bits, spawn, window);
  ASSERT_EQ(faults.size(), 40u);
  for (const FaultDescriptor& fault : faults) {
    EXPECT_EQ(fault.component, microarch::ComponentKind::kL2);
    EXPECT_LT(fault.bit, bits);
    EXPECT_GE(fault.cycle, spawn);
    EXPECT_LT(fault.cycle, spawn + window);
  }
  // Distinct components draw from decorrelated streams.
  const auto other = sample_component_faults(
      config, "SusanC", microarch::ComponentKind::kL1D, bits, spawn, window);
  EXPECT_NE(faults[0].bit, other[0].bit);
}

TEST(Campaign, IsDeterministic) {
  const WorkloadFiResult a = run_fi_campaign(susan(), small_campaign());
  const WorkloadFiResult b = run_fi_campaign(susan(), small_campaign());
  for (const auto kind : microarch::kAllComponents) {
    EXPECT_EQ(a.component(kind).counts.masked,
              b.component(kind).counts.masked);
    EXPECT_EQ(a.component(kind).counts.sdc, b.component(kind).counts.sdc);
    EXPECT_EQ(a.component(kind).counts.app_crash,
              b.component(kind).counts.app_crash);
    EXPECT_EQ(a.component(kind).counts.sys_crash,
              b.component(kind).counts.sys_crash);
  }
}

TEST(Campaign, FindsNonMaskedFaultsSomewhere) {
  // With 150 faults across six components, at least some must corrupt
  // the run — an all-masked campaign would mean injection is broken.
  const WorkloadFiResult result = run_fi_campaign(susan(), small_campaign());
  std::uint64_t non_masked = 0;
  for (const ComponentResult& comp : result.components) {
    non_masked += comp.counts.total() - comp.counts.masked;
  }
  EXPECT_GT(non_masked, 0u);
}

TEST(Campaign, RejectsZeroFaults) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 0;
  EXPECT_THROW(run_fi_campaign(susan(), config), support::SefiError);
}

TEST(WorkloadFiResultAccess, ComponentLookup) {
  WorkloadFiResult result;
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    result.components[i].component = static_cast<microarch::ComponentKind>(i);
    result.components[i].bits = i + 1;
  }
  EXPECT_EQ(result.component(microarch::ComponentKind::kL2).bits, 3u);
}

}  // namespace
}  // namespace sefi::fi
