#include "sefi/fi/campaign.hpp"

#include <gtest/gtest.h>

#include "sefi/core/lab.hpp"
#include "sefi/support/error.hpp"

namespace sefi::fi {
namespace {

RigConfig scaled_rig() {
  RigConfig rig;
  rig.uarch = core::scaled_uarch();
  return rig;
}

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.rig = scaled_rig();
  config.faults_per_component = 25;
  return config;
}

const workloads::Workload& susan() {
  return workloads::workload_by_name("SusanC");
}

TEST(OutcomeName, AllNamed) {
  EXPECT_EQ(outcome_name(Outcome::kMasked), "Masked");
  EXPECT_EQ(outcome_name(Outcome::kSdc), "SDC");
  EXPECT_EQ(outcome_name(Outcome::kAppCrash), "AppCrash");
  EXPECT_EQ(outcome_name(Outcome::kSysCrash), "SysCrash");
}

TEST(ClassCounts, AddAndTotal) {
  ClassCounts counts;
  counts.add(Outcome::kMasked);
  counts.add(Outcome::kMasked);
  counts.add(Outcome::kSdc);
  counts.add(Outcome::kAppCrash);
  counts.add(Outcome::kSysCrash);
  EXPECT_EQ(counts.masked, 2u);
  EXPECT_EQ(counts.total(), 5u);
}

TEST(ComponentResult, AvfArithmetic) {
  ComponentResult comp;
  comp.counts = {70, 10, 15, 5};
  EXPECT_DOUBLE_EQ(comp.avf(), 0.30);
  EXPECT_DOUBLE_EQ(comp.avf_sdc(), 0.10);
  EXPECT_DOUBLE_EQ(comp.avf_app_crash(), 0.15);
  EXPECT_DOUBLE_EQ(comp.avf_sys_crash(), 0.05);
}

TEST(ComponentResult, EmptyCountsGiveZeroAvf) {
  ComponentResult comp;
  EXPECT_DOUBLE_EQ(comp.avf(), 0.0);
  EXPECT_DOUBLE_EQ(comp.avf_sdc(), 0.0);
}

TEST(InjectionRig, GoldenRunIsSane) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  const GoldenRun& golden = rig.golden();
  EXPECT_EQ(golden.console, susan().expected_console(
                                 workloads::kDefaultInputSeed));
  EXPECT_EQ(golden.exit_code, 0u);
  EXPECT_GT(golden.spawn_cycle, 0u);
  EXPECT_GT(golden.end_cycle, golden.spawn_cycle);
  EXPECT_GT(golden.instructions, 10'000u);
}

TEST(InjectionRig, ComponentBitsMatchScaledGeometry) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  // 4 KB 4-way 32B L1: 128 lines (32 sets) * (2 + 22 tag + 256 data).
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kL1D),
            128u * (2 + 22 + 256));
  // 8-entry TLBs.
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kDTlb), 8u * 28);
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kRegFile),
            64u * 32);
}

TEST(InjectionRig, LateFaultIsMasked) {
  // A fault injected at the very last golden cycle cannot corrupt output
  // that has already been emitted... but it may still hit live state; the
  // deterministic check here: a fault *beyond* the machine's life is
  // classified defensively as masked.
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  FaultDescriptor fault;
  fault.component = microarch::ComponentKind::kRegFile;
  fault.bit = 0;
  fault.cycle = rig.golden().end_cycle * 10;
  EXPECT_EQ(rig.run_one(fault), Outcome::kMasked);
}

TEST(InjectionRig, SameFaultSameOutcome) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  FaultDescriptor fault;
  fault.component = microarch::ComponentKind::kL1D;
  fault.bit = 1234;
  fault.cycle = rig.golden().spawn_cycle + 5000;
  EXPECT_EQ(rig.run_one(fault), rig.run_one(fault));
}

TEST(Campaign, CountsSumToSampleSize) {
  const WorkloadFiResult result = run_fi_campaign(susan(), small_campaign());
  EXPECT_EQ(result.workload, "SusanC");
  for (const ComponentResult& comp : result.components) {
    EXPECT_EQ(comp.counts.total(), 25u)
        << microarch::component_name(comp.component);
    EXPECT_GT(comp.bits, 0u);
    EXPECT_GT(comp.error_margin, 0.0);
    EXPECT_LT(comp.error_margin, 0.30);
  }
}

TEST(Campaign, IsDeterministic) {
  const WorkloadFiResult a = run_fi_campaign(susan(), small_campaign());
  const WorkloadFiResult b = run_fi_campaign(susan(), small_campaign());
  for (const auto kind : microarch::kAllComponents) {
    EXPECT_EQ(a.component(kind).counts.masked,
              b.component(kind).counts.masked);
    EXPECT_EQ(a.component(kind).counts.sdc, b.component(kind).counts.sdc);
    EXPECT_EQ(a.component(kind).counts.app_crash,
              b.component(kind).counts.app_crash);
    EXPECT_EQ(a.component(kind).counts.sys_crash,
              b.component(kind).counts.sys_crash);
  }
}

TEST(Campaign, FindsNonMaskedFaultsSomewhere) {
  // With 150 faults across six components, at least some must corrupt
  // the run — an all-masked campaign would mean injection is broken.
  const WorkloadFiResult result = run_fi_campaign(susan(), small_campaign());
  std::uint64_t non_masked = 0;
  for (const ComponentResult& comp : result.components) {
    non_masked += comp.counts.total() - comp.counts.masked;
  }
  EXPECT_GT(non_masked, 0u);
}

TEST(Campaign, RejectsZeroFaults) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 0;
  EXPECT_THROW(run_fi_campaign(susan(), config), support::SefiError);
}

TEST(WorkloadFiResultAccess, ComponentLookup) {
  WorkloadFiResult result;
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    result.components[i].component = static_cast<microarch::ComponentKind>(i);
    result.components[i].bits = i + 1;
  }
  EXPECT_EQ(result.component(microarch::ComponentKind::kL2).bits, 3u);
}

}  // namespace
}  // namespace sefi::fi
