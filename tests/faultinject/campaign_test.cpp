#include "sefi/fi/campaign.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "../support_fastpath_scope.hpp"
#include "sefi/core/lab.hpp"
#include "sefi/support/error.hpp"

namespace sefi::fi {
namespace {

RigConfig scaled_rig() {
  RigConfig rig;
  rig.uarch = core::scaled_uarch();
  return rig;
}

CampaignConfig small_campaign() {
  CampaignConfig config;
  config.rig = scaled_rig();
  config.faults_per_component = 25;
  return config;
}

const workloads::Workload& susan() {
  return workloads::workload_by_name("SusanC");
}

TEST(OutcomeName, AllNamed) {
  EXPECT_EQ(outcome_name(Outcome::kMasked), "Masked");
  EXPECT_EQ(outcome_name(Outcome::kSdc), "SDC");
  EXPECT_EQ(outcome_name(Outcome::kAppCrash), "AppCrash");
  EXPECT_EQ(outcome_name(Outcome::kSysCrash), "SysCrash");
  EXPECT_EQ(outcome_name(Outcome::kHarnessError), "HarnessError");
  EXPECT_EQ(outcome_name(Outcome::kDetected), "Detected");
}

TEST(ClassCounts, AddAndTotal) {
  ClassCounts counts;
  counts.add(Outcome::kMasked);
  counts.add(Outcome::kMasked);
  counts.add(Outcome::kSdc);
  counts.add(Outcome::kAppCrash);
  counts.add(Outcome::kSysCrash);
  counts.add(Outcome::kDetected);
  EXPECT_EQ(counts.masked, 2u);
  EXPECT_EQ(counts.detected, 1u);
  // Detected runs are classified experiments: they sit inside the AVF
  // denominator (and numerator — the fault was not masked).
  EXPECT_EQ(counts.total(), 6u);
}

TEST(ClassCounts, HarnessErrorsStayOutOfTheAvfDenominator) {
  ClassCounts counts;
  counts.add(Outcome::kMasked);
  counts.add(Outcome::kSdc);
  counts.add(Outcome::kHarnessError);
  counts.add(Outcome::kHarnessError);
  EXPECT_EQ(counts.harness_error, 2u);
  EXPECT_EQ(counts.total(), 2u);      // classified experiments only
  EXPECT_EQ(counts.attempted(), 4u);  // everything the campaign tried

  // AVF fractions divide by classified experiments, so a flaky harness
  // shrinks the sample instead of diluting the rates toward zero.
  ComponentResult comp;
  comp.counts = {1, 1, 0, 0};
  comp.counts.harness_error = 2;
  EXPECT_DOUBLE_EQ(comp.avf(), 0.5);
  EXPECT_DOUBLE_EQ(comp.avf_sdc(), 0.5);
}

TEST(ComponentResult, AvfArithmetic) {
  ComponentResult comp;
  comp.counts = {70, 10, 15, 5};
  EXPECT_DOUBLE_EQ(comp.avf(), 0.30);
  EXPECT_DOUBLE_EQ(comp.avf_sdc(), 0.10);
  EXPECT_DOUBLE_EQ(comp.avf_app_crash(), 0.15);
  EXPECT_DOUBLE_EQ(comp.avf_sys_crash(), 0.05);
}

TEST(ComponentResult, EmptyCountsGiveZeroAvf) {
  ComponentResult comp;
  EXPECT_DOUBLE_EQ(comp.avf(), 0.0);
  EXPECT_DOUBLE_EQ(comp.avf_sdc(), 0.0);
}

TEST(InjectionRig, GoldenRunIsSane) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  const GoldenRun& golden = rig.golden();
  EXPECT_EQ(golden.console, susan().expected_console(
                                 workloads::kDefaultInputSeed));
  EXPECT_EQ(golden.exit_code, 0u);
  EXPECT_GT(golden.spawn_cycle, 0u);
  EXPECT_GT(golden.end_cycle, golden.spawn_cycle);
  EXPECT_GT(golden.instructions, 10'000u);
}

TEST(InjectionRig, ComponentBitsMatchScaledGeometry) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  // 4 KB 4-way 32B L1: 128 lines (32 sets) * (2 + 22 tag + 256 data).
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kL1D),
            128u * (2 + 22 + 256));
  // 8-entry TLBs.
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kDTlb), 8u * 28);
  EXPECT_EQ(rig.component_bits(microarch::ComponentKind::kRegFile),
            64u * 32);
}

TEST(InjectionRig, LateFaultIsMasked) {
  // A fault injected at the very last golden cycle cannot corrupt output
  // that has already been emitted... but it may still hit live state; the
  // deterministic check here: a fault *beyond* the machine's life is
  // classified defensively as masked.
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  FaultDescriptor fault;
  fault.component = microarch::ComponentKind::kRegFile;
  fault.bit = 0;
  fault.cycle = rig.golden().end_cycle * 10;
  EXPECT_EQ(rig.run_one(fault), Outcome::kMasked);
}

TEST(InjectionRig, SameFaultSameOutcome) {
  const InjectionRig rig(susan(), scaled_rig(), workloads::kDefaultInputSeed);
  FaultDescriptor fault;
  fault.component = microarch::ComponentKind::kL1D;
  fault.bit = 1234;
  fault.cycle = rig.golden().spawn_cycle + 5000;
  EXPECT_EQ(rig.run_one(fault), rig.run_one(fault));
}

TEST(Campaign, CountsSumToSampleSize) {
  const WorkloadFiResult result = run_fi_campaign(susan(), small_campaign());
  EXPECT_EQ(result.workload, "SusanC");
  for (const ComponentResult& comp : result.components) {
    EXPECT_EQ(comp.counts.total(), 25u)
        << microarch::component_name(comp.component);
    EXPECT_GT(comp.bits, 0u);
    EXPECT_GT(comp.error_margin, 0.0);
    EXPECT_LT(comp.error_margin, 0.30);
  }
}

namespace {

void expect_same_counts(const WorkloadFiResult& a, const WorkloadFiResult& b,
                        const char* label) {
  for (const auto kind : microarch::kAllComponents) {
    const ClassCounts& ca = a.component(kind).counts;
    const ClassCounts& cb = b.component(kind).counts;
    EXPECT_EQ(ca.masked, cb.masked)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.sdc, cb.sdc)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.app_crash, cb.app_crash)
        << label << " " << microarch::component_name(kind);
    EXPECT_EQ(ca.sys_crash, cb.sys_crash)
        << label << " " << microarch::component_name(kind);
  }
}

}  // namespace

// The executor's determinism contract: campaign results are bit-identical
// for any thread count and any checkpoint-ladder size, because the fault
// list is pre-sampled before dispatch and each injected run replays the
// same fault-free prefix regardless of which rung it restores from.
TEST(CampaignExecutor, ThreadCountDoesNotChangeResults) {
  for (const char* name : {"SusanC", "Qsort"}) {
    const auto& workload = workloads::workload_by_name(name);
    CampaignConfig config = small_campaign();
    config.faults_per_component = 12;
    config.threads = 1;
    config.checkpoints = 1;
    const WorkloadFiResult serial = run_fi_campaign(workload, config);
    config.threads = 4;
    const WorkloadFiResult threaded = run_fi_campaign(workload, config);
    expect_same_counts(serial, threaded, name);
    EXPECT_EQ(serial.stats.threads, 1u);
    EXPECT_EQ(threaded.stats.threads, 4u);
  }
}

TEST(CampaignExecutor, CheckpointLadderDoesNotChangeResults) {
  for (const char* name : {"SusanC", "Qsort"}) {
    const auto& workload = workloads::workload_by_name(name);
    CampaignConfig config = small_campaign();
    config.faults_per_component = 12;
    config.threads = 1;
    config.checkpoints = 1;
    const WorkloadFiResult flat = run_fi_campaign(workload, config);
    config.checkpoints = 8;
    const WorkloadFiResult laddered = run_fi_campaign(workload, config);
    expect_same_counts(flat, laddered, name);
    EXPECT_EQ(flat.stats.checkpoints, 1u);
    EXPECT_EQ(laddered.stats.checkpoints, 8u);
    // The ladder must actually skip replay work, not just match results.
    // A flat rig still saves boot cycles (it restores the spawn snapshot
    // instead of re-booting), so only the ladder component is zero.
    EXPECT_EQ(flat.stats.replay_cycles_saved_ladder, 0u);
    EXPECT_GT(flat.stats.replay_cycles_saved_boot, 0u);
    EXPECT_GT(laddered.stats.replay_cycles_saved_ladder, 0u);
    EXPECT_LT(laddered.stats.replay_cycles, flat.stats.replay_cycles);
  }
}

// Delta restore is an executor fast path, never part of a campaign's
// identity: outcomes must be bit-identical with it on or off, for any
// thread count and ladder size (the ISSUE's acceptance matrix).
TEST(CampaignExecutor, DeltaRestoreDoesNotChangeResults) {
  const auto& workload = susan();
  for (const std::uint64_t threads : {1, 4}) {
    for (const std::uint64_t checkpoints : {1, 8}) {
      CampaignConfig config = small_campaign();
      config.faults_per_component = 8;
      config.threads = threads;
      config.checkpoints = checkpoints;
      config.rig.delta_restore = false;
      const WorkloadFiResult full = run_fi_campaign(workload, config);
      config.rig.delta_restore = true;
      const WorkloadFiResult delta = run_fi_campaign(workload, config);
      expect_same_counts(full, delta, "delta-vs-full");
      EXPECT_EQ(full.stats.delta_restores, 0u);
      EXPECT_GT(delta.stats.delta_restores, 0u);
    }
  }
}

// The perf claim itself: per-injection restore cost must shrink by at
// least 2x once restores are proportional to state touched.
TEST(CampaignExecutor, DeltaRestoreCutsRestoreBytes) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 12;
  config.threads = 1;
  config.checkpoints = 8;
  config.rig.delta_restore = false;
  const WorkloadFiResult full = run_fi_campaign(susan(), config);
  config.rig.delta_restore = true;
  const WorkloadFiResult delta = run_fi_campaign(susan(), config);
  ASSERT_GT(full.stats.restore_bytes_copied, 0u);
  ASSERT_GT(delta.stats.restore_bytes_copied, 0u);
  const double reduction =
      static_cast<double>(full.stats.restore_bytes_copied) /
      static_cast<double>(delta.stats.restore_bytes_copied);
  EXPECT_GE(reduction, 2.0) << "full=" << full.stats.restore_bytes_copied
                            << " delta=" << delta.stats.restore_bytes_copied;
  // Pages-per-delta-restore must be well below the full 4096-page image.
  EXPECT_GT(delta.stats.pages_dirtied_avg, 0.0);
  EXPECT_LT(delta.stats.pages_dirtied_avg, 2048.0);
}

// Satellite: the split replay accounting must sum consistently and be
// invariant under the thread count (each component depends only on the
// pre-sampled fault list, not on scheduling).
TEST(CampaignExecutor, ReplaySavingsSplitSumsAcrossThreads) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 10;
  config.checkpoints = 8;
  config.threads = 1;
  const WorkloadFiResult serial = run_fi_campaign(susan(), config);
  config.threads = 4;
  const WorkloadFiResult threaded = run_fi_campaign(susan(), config);
  for (const WorkloadFiResult* result : {&serial, &threaded}) {
    EXPECT_EQ(result->stats.replay_cycles_saved,
              result->stats.replay_cycles_saved_ladder +
                  result->stats.replay_cycles_saved_boot);
    // Every injection skips the whole boot prefix exactly once.
    EXPECT_GT(result->stats.replay_cycles_saved_boot, 0u);
    EXPECT_EQ(result->stats.replay_cycles_saved_boot % result->stats.injections,
              0u);
  }
  EXPECT_EQ(serial.stats.replay_cycles_saved_ladder,
            threaded.stats.replay_cycles_saved_ladder);
  EXPECT_EQ(serial.stats.replay_cycles_saved_boot,
            threaded.stats.replay_cycles_saved_boot);
  EXPECT_EQ(serial.stats.replay_cycles, threaded.stats.replay_cycles);
}

// Ladder rungs above spawn are sparse deltas: a K=8 ladder must cost far
// less than 8 full machine images.
TEST(InjectionRig, DeltaLadderIsSparse) {
  const InjectionRig flat(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                          /*checkpoints=*/1);
  const InjectionRig laddered(susan(), scaled_rig(),
                              workloads::kDefaultInputSeed,
                              /*checkpoints=*/8);
  const std::uint64_t full_image = flat.ladder_resident_bytes();
  ASSERT_GT(full_image, 0u);
  EXPECT_GE(laddered.checkpoint_count(), 2u);
  // Full ladders would cost checkpoint_count() * full_image; the delta
  // ladder must stay below two full images even at K=8.
  EXPECT_LT(laddered.ladder_resident_bytes(), 2 * full_image);
}

TEST(CampaignExecutor, StatsReportThroughput) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 10;
  const WorkloadFiResult result = run_fi_campaign(susan(), config);
  EXPECT_EQ(result.stats.injections, 10u * microarch::kNumComponents);
  EXPECT_GT(result.stats.wall_seconds, 0.0);
  EXPECT_GT(result.stats.injections_per_sec, 0.0);
  EXPECT_GE(result.stats.checkpoints, 1u);
  EXPECT_GE(result.stats.threads, 1u);
}

TEST(InjectionRig, LadderRungCountIsClampedAndCaptured) {
  const InjectionRig flat(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                          /*checkpoints=*/0);
  EXPECT_EQ(flat.checkpoint_count(), 1u);
  const InjectionRig laddered(susan(), scaled_rig(),
                              workloads::kDefaultInputSeed,
                              /*checkpoints=*/8);
  EXPECT_GT(laddered.checkpoint_count(), 1u);
  EXPECT_LE(laddered.checkpoint_count(), 8u);
}

TEST(InjectionRig, LadderedRunMatchesSpawnReplay) {
  // Same fault, rig with and without a ladder: identical classification.
  const InjectionRig flat(susan(), scaled_rig(), workloads::kDefaultInputSeed,
                          /*checkpoints=*/1);
  const InjectionRig laddered(susan(), scaled_rig(),
                              workloads::kDefaultInputSeed,
                              /*checkpoints=*/6);
  const std::uint64_t window =
      flat.golden().end_cycle - flat.golden().spawn_cycle;
  for (std::uint64_t frac = 1; frac <= 9; frac += 4) {
    FaultDescriptor fault;
    fault.component = microarch::ComponentKind::kL1D;
    fault.bit = 101 * frac;
    fault.cycle = flat.golden().spawn_cycle + window * frac / 10;
    EXPECT_EQ(flat.run_one(fault), laddered.run_one(fault))
        << "fault at window fraction " << frac << "/10";
  }
}

TEST(CampaignSampling, DescriptorsAreExposedAndInWindow) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 40;
  const std::uint64_t spawn = 1000, window = 50000, bits = 4096;
  const auto faults = sample_component_faults(
      config, "SusanC", microarch::ComponentKind::kL2, bits, spawn, window);
  ASSERT_EQ(faults.size(), 40u);
  for (const FaultDescriptor& fault : faults) {
    EXPECT_EQ(fault.component, microarch::ComponentKind::kL2);
    EXPECT_LT(fault.bit, bits);
    EXPECT_GE(fault.cycle, spawn);
    EXPECT_LT(fault.cycle, spawn + window);
  }
  // Distinct components draw from decorrelated streams.
  const auto other = sample_component_faults(
      config, "SusanC", microarch::ComponentKind::kL1D, bits, spawn, window);
  EXPECT_NE(faults[0].bit, other[0].bit);
}

TEST(Campaign, IsDeterministic) {
  const WorkloadFiResult a = run_fi_campaign(susan(), small_campaign());
  const WorkloadFiResult b = run_fi_campaign(susan(), small_campaign());
  for (const auto kind : microarch::kAllComponents) {
    EXPECT_EQ(a.component(kind).counts.masked,
              b.component(kind).counts.masked);
    EXPECT_EQ(a.component(kind).counts.sdc, b.component(kind).counts.sdc);
    EXPECT_EQ(a.component(kind).counts.app_crash,
              b.component(kind).counts.app_crash);
    EXPECT_EQ(a.component(kind).counts.sys_crash,
              b.component(kind).counts.sys_crash);
  }
}

TEST(Campaign, FindsNonMaskedFaultsSomewhere) {
  // With 150 faults across six components, at least some must corrupt
  // the run — an all-masked campaign would mean injection is broken.
  const WorkloadFiResult result = run_fi_campaign(susan(), small_campaign());
  std::uint64_t non_masked = 0;
  for (const ComponentResult& comp : result.components) {
    non_masked += comp.counts.total() - comp.counts.masked;
  }
  EXPECT_GT(non_masked, 0u);
}

TEST(Campaign, RejectsZeroFaults) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = 0;
  EXPECT_THROW(run_fi_campaign(susan(), config), support::SefiError);
}

TEST(WorkloadFiResultAccess, ComponentLookup) {
  WorkloadFiResult result;
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    result.components[i].component = static_cast<microarch::ComponentKind>(i);
    result.components[i].bits = i + 1;
  }
  EXPECT_EQ(result.component(microarch::ComponentKind::kL2).bits, 3u);
}

// --- Journal payload codecs ---

TEST(JournalCodec, OutcomeRoundTrips) {
  for (const Outcome outcome :
       {Outcome::kMasked, Outcome::kSdc, Outcome::kAppCrash,
        Outcome::kSysCrash, Outcome::kHarnessError, Outcome::kDetected}) {
    Outcome parsed = Outcome::kMasked;
    ASSERT_TRUE(parse_journal_outcome(encode_journal_outcome(outcome),
                                      &parsed));
    EXPECT_EQ(parsed, outcome);
  }
}

TEST(JournalCodec, TelemetryRoundTrips) {
  JournalTelemetry telemetry;
  telemetry.retries = 3;
  telemetry.watchdog_hits = 1;
  telemetry.harness_errors = 2;
  JournalTelemetry parsed;
  ASSERT_TRUE(
      parse_journal_telemetry(encode_journal_telemetry(telemetry), &parsed));
  EXPECT_EQ(parsed.retries, 3u);
  EXPECT_EQ(parsed.watchdog_hits, 1u);
  EXPECT_EQ(parsed.harness_errors, 2u);
}

TEST(JournalCodec, RejectsMalformedPayloads) {
  Outcome outcome;
  EXPECT_FALSE(parse_journal_outcome("", &outcome));
  EXPECT_FALSE(parse_journal_outcome("x 1", &outcome));
  EXPECT_FALSE(parse_journal_outcome("t 1 2 3", &outcome));
  JournalTelemetry telemetry;
  EXPECT_FALSE(parse_journal_telemetry("", &telemetry));
  EXPECT_FALSE(parse_journal_telemetry("o 1", &telemetry));
  EXPECT_FALSE(parse_journal_telemetry("t 1 2", &telemetry));
  EXPECT_FALSE(parse_journal_telemetry("t 1 2 3 4", &telemetry));
  EXPECT_FALSE(parse_journal_telemetry("t 1 2 x", &telemetry));
}

// Forward-compatibility sweep over the outcome byte: a journal written
// by a future format (or a corrupted one) must never fabricate a
// verdict. Every possible byte in the digit position is tried; exactly
// the kOutcomeCount known classes parse, everything else — including
// the enum's own sentinel and digits beyond it — is rejected, which
// makes the resume path re-run that injection instead of trusting it.
TEST(JournalCodec, OutcomeByteSweepRejectsEverythingOutOfRange) {
  const int known = static_cast<int>(Outcome::kOutcomeCount);
  int accepted = 0;
  for (int byte = 0; byte < 256; ++byte) {
    std::string payload = "o ";
    payload.push_back(static_cast<char>(byte));
    Outcome outcome = Outcome::kHarnessError;
    const bool in_range = byte >= '0' && byte < '0' + known;
    EXPECT_EQ(parse_journal_outcome(payload, &outcome), in_range)
        << "byte " << byte;
    if (in_range) {
      ++accepted;
      EXPECT_EQ(static_cast<int>(outcome), byte - '0');
    }
  }
  EXPECT_EQ(accepted, known);
  // The guard the sweep leans on, spelled out: the sentinel itself and
  // anything past it are out of range.
  EXPECT_TRUE(outcome_in_range(0));
  EXPECT_TRUE(
      outcome_in_range(static_cast<std::uint8_t>(Outcome::kDetected)));
  EXPECT_FALSE(
      outcome_in_range(static_cast<std::uint8_t>(Outcome::kOutcomeCount)));
  EXPECT_FALSE(outcome_in_range(0xFF));
}

// A journal record that encodes kDetected must survive the round trip —
// the verdict class campaigns write when hardening fires (DESIGN.md
// §15) is resumable like every other class.
TEST(JournalCodec, DetectedVerdictIsJournalable) {
  Outcome parsed = Outcome::kMasked;
  ASSERT_TRUE(parse_journal_outcome(
      encode_journal_outcome(Outcome::kDetected), &parsed));
  EXPECT_EQ(parsed, Outcome::kDetected);
}

// --- Campaign supervisor: fault isolation, retries, journaled resume ---

/// Fresh journal path per test (ctest parallelizes test processes).
std::string fresh_journal_path(const std::string& tag) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / ("sefi-campaign-" + tag)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir + "/fi.journal";
}

CampaignConfig tiny_campaign(std::uint64_t faults = 6) {
  CampaignConfig config = small_campaign();
  config.faults_per_component = faults;
  config.threads = 2;
  return config;
}

TEST(CampaignSupervisor, TransientHarnessFaultRetriesToTheSameResult) {
  const WorkloadFiResult clean = run_fi_campaign(susan(), tiny_campaign());

  // One injection fails on its first attempt; the retry must re-execute
  // the identical pre-sampled experiment, so the merged counts cannot
  // change.
  CampaignConfig flaky = tiny_campaign();
  flaky.task_fault_hook = [](std::size_t index, std::uint64_t attempt) {
    if (index == 7 && attempt == 0) {
      throw std::runtime_error("simulated transient harness fault");
    }
  };
  const WorkloadFiResult retried = run_fi_campaign(susan(), flaky);
  expect_same_counts(clean, retried, "transient-retry");
  EXPECT_EQ(retried.stats.task_retries, 1u);
  EXPECT_EQ(retried.stats.harness_errors, 0u);
  EXPECT_FALSE(retried.stats.cancelled);
  EXPECT_EQ(clean.stats.task_retries, 0u);
}

TEST(CampaignSupervisor, PermanentHarnessFaultShrinksTheSample) {
  CampaignConfig config = tiny_campaign();
  config.max_task_retries = 2;
  config.task_fault_hook = [](std::size_t index, std::uint64_t) {
    if (index == 7) throw std::runtime_error("permanently broken");
  };
  const WorkloadFiResult result = run_fi_campaign(susan(), config);

  // The campaign completed despite the broken experiment; the victim
  // component lost one classified sample, nothing else changed.
  EXPECT_EQ(result.stats.harness_errors, 1u);
  EXPECT_EQ(result.stats.task_retries, 2u);  // the burned retry budget
  EXPECT_FALSE(result.stats.cancelled);
  std::uint64_t harness_total = 0;
  for (const ComponentResult& comp : result.components) {
    harness_total += comp.counts.harness_error;
    EXPECT_EQ(comp.counts.attempted(), 6u)
        << microarch::component_name(comp.component);
  }
  EXPECT_EQ(harness_total, 1u);
  // Fault index 7 belongs to the second component stream (6 per
  // component): its AVF denominator is 5, not 6.
  const ComponentResult& victim = result.components[1];
  EXPECT_EQ(victim.counts.harness_error, 1u);
  EXPECT_EQ(victim.counts.total(), 5u);

  const WorkloadFiResult clean = run_fi_campaign(susan(), tiny_campaign());
  EXPECT_EQ(clean.components[1].counts.total(), 6u);
}

TEST(CampaignSupervisor, JournalResumeIsBitIdentical) {
  const WorkloadFiResult clean = run_fi_campaign(susan(), tiny_campaign());
  for (const std::uint64_t threads : {1, 4}) {
    const std::string path = fresh_journal_path(
        "resume-t" + std::to_string(threads));
    const std::string header = "fi resume-test";

    // Interrupted run: the SIGINT-style token trips mid-campaign, so
    // some injections journal and the rest stay pending.
    exec::CancellationToken token;
    {
      support::TaskJournal journal(path, header);
      CampaignConfig interrupted = tiny_campaign();
      interrupted.threads = threads;
      interrupted.cancel = &token;
      interrupted.journal = &journal;
      interrupted.task_fault_hook = [&token](std::size_t index,
                                             std::uint64_t) {
        if (index == 20) token.request_stop();
      };
      const WorkloadFiResult partial = run_fi_campaign(susan(), interrupted);
      EXPECT_TRUE(partial.stats.cancelled);
      EXPECT_LT(partial.stats.tasks_run, partial.stats.injections);
    }

    // Resume: a fresh process opens the same journal and finishes only
    // the pending injections; the merged result must be bit-identical
    // to the never-interrupted campaign.
    support::TaskJournal journal(path, header);
    EXPECT_GT(journal.replayed(), 0u);
    CampaignConfig resumed = tiny_campaign();
    resumed.threads = threads;
    resumed.journal = &journal;
    const WorkloadFiResult result = run_fi_campaign(susan(), resumed);
    expect_same_counts(clean, result, "journal-resume");
    EXPECT_FALSE(result.stats.cancelled);
    EXPECT_EQ(result.stats.journal_replayed, journal.replayed());
    EXPECT_GT(result.stats.journal_replayed, 0u);
    EXPECT_EQ(result.stats.tasks_run + result.stats.journal_replayed,
              result.stats.injections);
    std::filesystem::remove_all(std::filesystem::path(path).parent_path());
  }
}

TEST(CampaignSupervisor, TornJournalTailResumesCorrectly) {
  const std::string path = fresh_journal_path("torn");
  const std::string header = "fi torn-test";
  exec::CancellationToken token;
  {
    support::TaskJournal journal(path, header);
    CampaignConfig interrupted = tiny_campaign();
    interrupted.cancel = &token;
    interrupted.journal = &journal;
    interrupted.task_fault_hook = [&token](std::size_t index, std::uint64_t) {
      if (index == 15) token.request_stop();
    };
    run_fi_campaign(susan(), interrupted);
  }
  // Simulate a crash inside an append: the journal gains a torn tail.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "rec 99 3\no 1";  // no checksum footer — invalid
  }
  support::TaskJournal journal(path, header);
  CampaignConfig resumed = tiny_campaign();
  resumed.journal = &journal;
  const WorkloadFiResult result = run_fi_campaign(susan(), resumed);
  const WorkloadFiResult clean = run_fi_campaign(susan(), tiny_campaign());
  expect_same_counts(clean, result, "torn-tail-resume");
  std::filesystem::remove_all(std::filesystem::path(path).parent_path());
}

TEST(CampaignSupervisor, StaleJournalHeaderForcesAFullRerun) {
  const std::string path = fresh_journal_path("skew");
  {
    // A journal from a "different campaign" (changed config, older
    // format version) occupies the path.
    support::TaskJournal stale(path, "fi some-other-campaign");
    stale.record(0, "o 1");
    stale.record(1, "o 1");
  }
  support::TaskJournal journal(path, "fi current-campaign");
  EXPECT_EQ(journal.replayed(), 0u);
  CampaignConfig config = tiny_campaign();
  config.journal = &journal;
  const WorkloadFiResult result = run_fi_campaign(susan(), config);
  const WorkloadFiResult clean = run_fi_campaign(susan(), tiny_campaign());
  expect_same_counts(clean, result, "header-skew");
  EXPECT_EQ(result.stats.journal_replayed, 0u);
  EXPECT_EQ(result.stats.tasks_run, result.stats.injections);
  std::filesystem::remove_all(std::filesystem::path(path).parent_path());
}

TEST(CampaignSupervisor, HarnessErrorsAreJournaledAsTerminal) {
  const std::string path = fresh_journal_path("terminal");
  const std::string header = "fi terminal-test";
  {
    support::TaskJournal journal(path, header);
    CampaignConfig config = tiny_campaign();
    config.journal = &journal;
    config.max_task_retries = 1;
    config.task_fault_hook = [](std::size_t index, std::uint64_t) {
      if (index == 7) throw std::runtime_error("permanently broken");
    };
    const WorkloadFiResult first = run_fi_campaign(susan(), config);
    EXPECT_EQ(first.stats.harness_errors, 1u);
  }
  // A resume must replay the HarnessError verdict instead of re-burning
  // the retry budget on the known-broken experiment.
  support::TaskJournal journal(path, header);
  CampaignConfig resumed = tiny_campaign();
  resumed.journal = &journal;
  resumed.task_fault_hook = [](std::size_t index, std::uint64_t) {
    EXPECT_NE(index, 7u) << "journaled harness error was re-attempted";
  };
  const WorkloadFiResult result = run_fi_campaign(susan(), resumed);
  EXPECT_EQ(result.stats.harness_errors, 0u);  // none newly booked
  EXPECT_EQ(result.stats.tasks_run, 0u);       // everything replayed
  std::uint64_t harness_total = 0;
  for (const ComponentResult& comp : result.components) {
    harness_total += comp.counts.harness_error;
  }
  EXPECT_EQ(harness_total, 1u);  // the verdict itself survived the resume
  std::filesystem::remove_all(std::filesystem::path(path).parent_path());
}

// The uop fast path is an executor optimization, never part of a
// campaign's identity: verdict tallies must be bit-identical with it on
// or off, serial and threaded (the ISSUE's acceptance matrix). The block
// tier skips proven-pure fetches entirely, so this exercises the full
// stamp-invalidation story — injections into L1I/I-TLB state, forensics
// watches, snapshot restores — against the baseline interpreter.
TEST(CampaignExecutor, FastpathTierDoesNotChangeResults) {
  for (const std::uint64_t threads : {1, 4}) {
    CampaignConfig config = small_campaign();
    config.faults_per_component = 10;
    config.threads = threads;
    config.checkpoints = 8;
    std::optional<WorkloadFiResult> baseline;
    std::optional<WorkloadFiResult> block;
    {
      sefi::testing::ScopedFastpath off("off");
      baseline = run_fi_campaign(susan(), config);
    }
    {
      sefi::testing::ScopedFastpath fast("block");
      block = run_fi_campaign(susan(), config);
    }
    expect_same_counts(*baseline, *block, "fastpath off-vs-block");
    // Tier diagnostics must reflect what actually ran: the baseline
    // never consults the uop cache, the block tier must live off it.
    EXPECT_EQ(baseline->stats.uop_hits, 0u);
    EXPECT_EQ(baseline->stats.uop_decode_hits, 0u);
    EXPECT_GT(block->stats.uop_hits, 0u);
    EXPECT_GT(block->stats.guest_instructions, 0u);
    EXPECT_GT(block->stats.guest_mips, 0.0);
  }
}

}  // namespace
}  // namespace sefi::fi
