#include "sefi/fi/ace.hpp"

#include <gtest/gtest.h>

#include "sefi/core/lab.hpp"
#include "sefi/support/error.hpp"

namespace sefi::fi {
namespace {

RigConfig scaled_rig() {
  RigConfig rig;
  rig.uarch = core::scaled_uarch();
  return rig;
}

TEST(Occupancy, FractionsAreSane) {
  const auto& w = workloads::workload_by_name("SusanC");
  const OccupancyResult result =
      measure_occupancy(w, scaled_rig(), workloads::kDefaultInputSeed);
  EXPECT_GT(result.samples, 5u);
  for (const auto kind : microarch::kAllComponents) {
    const double fraction = result.component(kind);
    EXPECT_GE(fraction, 0.0) << microarch::component_name(kind);
    EXPECT_LE(fraction, 1.0) << microarch::component_name(kind);
  }
  // The renamed register file always maps all architectural registers.
  EXPECT_NEAR(result.component(microarch::ComponentKind::kRegFile),
              16.0 / 64.0, 1e-9);
}

TEST(Occupancy, HotStructuresFillUp) {
  // A running workload keeps code lines and TLB entries live: occupancy
  // must be clearly nonzero for the L1I (CRC32's hot loop is a handful
  // of lines in a 4 KB cache) and high for the 8-entry DTLB (the working
  // set spans more pages than entries).
  const auto& w = workloads::workload_by_name("CRC32");
  const OccupancyResult result =
      measure_occupancy(w, scaled_rig(), workloads::kDefaultInputSeed);
  EXPECT_GT(result.component(microarch::ComponentKind::kL1I), 0.05);
  EXPECT_GT(result.component(microarch::ComponentKind::kDTlb), 0.3);
}

TEST(Occupancy, BoundsMeasuredAvfForBigArrays) {
  // ACE-style occupancy is an upper bound on AVF: in the big SRAM arrays
  // (caches), where both quantities are well below 1, the bound must
  // hold with margin. (Tiny structures like the TLBs can exceed a loose
  // occupancy bound through permission/aliasing effects; the paper's
  // point is about array structures.)
  const auto& w = workloads::workload_by_name("FFT");
  const OccupancyResult occupancy =
      measure_occupancy(w, scaled_rig(), workloads::kDefaultInputSeed);
  CampaignConfig config;
  config.rig = scaled_rig();
  config.faults_per_component = 50;
  const WorkloadFiResult fi = run_fi_campaign(w, config);
  for (const auto kind :
       {microarch::ComponentKind::kL1D, microarch::ComponentKind::kL2}) {
    EXPECT_GE(occupancy.component(kind) + 0.10, fi.component(kind).avf())
        << microarch::component_name(kind);
  }
}

TEST(Occupancy, IsDeterministic) {
  const auto& w = workloads::workload_by_name("Qsort");
  const OccupancyResult a =
      measure_occupancy(w, scaled_rig(), workloads::kDefaultInputSeed);
  const OccupancyResult b =
      measure_occupancy(w, scaled_rig(), workloads::kDefaultInputSeed);
  EXPECT_EQ(a.samples, b.samples);
  for (const auto kind : microarch::kAllComponents) {
    EXPECT_DOUBLE_EQ(a.component(kind), b.component(kind));
  }
}

TEST(Occupancy, RejectsZeroPeriod) {
  const auto& w = workloads::workload_by_name("Qsort");
  EXPECT_THROW(
      measure_occupancy(w, scaled_rig(), workloads::kDefaultInputSeed, 0),
      support::SefiError);
}

TEST(FaultModel, Names) {
  EXPECT_EQ(fault_model_name(FaultModel::kSingleBit), "single-bit");
  EXPECT_EQ(fault_model_name(FaultModel::kDoubleBit), "double-bit");
}

TEST(FaultModel, DoubleBitFlipsAdjacentPair) {
  // Direct component check: two flips at adjacent indices.
  const auto& w = workloads::workload_by_name("SusanC");
  const InjectionRig rig(w, scaled_rig(), workloads::kDefaultInputSeed);
  FaultDescriptor single;
  single.component = microarch::ComponentKind::kRegFile;
  single.bit = 64;  // phys reg 2, bit 0 (a live mapped register)
  single.cycle = rig.golden().spawn_cycle + 100;
  single.model = FaultModel::kSingleBit;
  FaultDescriptor twin = single;
  twin.model = FaultModel::kDoubleBit;
  // Both runs are deterministic; outcomes may differ, but both classify.
  const Outcome a = rig.run_one(single);
  const Outcome b = rig.run_one(twin);
  EXPECT_EQ(a, rig.run_one(single));
  EXPECT_EQ(b, rig.run_one(twin));
}

TEST(FaultModel, CampaignAvfNotLowerUnderDoubleBit) {
  // Statistically, flipping two bits cannot mask more than flipping one:
  // compare suite-weighted AVFs on one workload.
  CampaignConfig single;
  single.rig = scaled_rig();
  single.faults_per_component = 40;
  CampaignConfig twin = single;
  twin.fault_model = FaultModel::kDoubleBit;
  const auto& w = workloads::workload_by_name("FFT");
  const WorkloadFiResult a = run_fi_campaign(w, single);
  const WorkloadFiResult b = run_fi_campaign(w, twin);
  std::uint64_t single_failures = 0;
  std::uint64_t twin_failures = 0;
  for (const auto kind : microarch::kAllComponents) {
    single_failures +=
        a.component(kind).counts.total() - a.component(kind).counts.masked;
    twin_failures +=
        b.component(kind).counts.total() - b.component(kind).counts.masked;
  }
  // Same sampling stream, strictly more corruption per fault: allow
  // equality but not a material drop.
  EXPECT_GE(twin_failures + 2, single_failures);
}

}  // namespace
}  // namespace sefi::fi
