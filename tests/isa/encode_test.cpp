#include <gtest/gtest.h>

#include "sefi/isa/isa.hpp"
#include "sefi/support/error.hpp"

namespace sefi::isa {
namespace {

Instruction roundtrip(const Instruction& inst) {
  const auto decoded = decode(encode(inst));
  EXPECT_TRUE(decoded.has_value());
  return *decoded;
}

TEST(Encode, RFormatRoundTrip) {
  Instruction i;
  i.op = Opcode::kAdd;
  i.rd = 3;
  i.rn = 14;
  i.rm = 15;
  const Instruction d = roundtrip(i);
  EXPECT_EQ(d.op, Opcode::kAdd);
  EXPECT_EQ(d.rd, 3);
  EXPECT_EQ(d.rn, 14);
  EXPECT_EQ(d.rm, 15);
}

TEST(Encode, IFormatSignedImmediates) {
  for (std::int32_t imm : {0, 1, -1, 131071, -131072}) {
    Instruction i;
    i.op = Opcode::kAddi;
    i.rd = 1;
    i.rn = 2;
    i.imm = imm;
    EXPECT_EQ(roundtrip(i).imm, imm) << imm;
  }
}

TEST(Encode, IFormatSignedOverflowThrows) {
  Instruction i;
  i.op = Opcode::kAddi;
  i.imm = 1 << 17;
  EXPECT_THROW(encode(i), support::SefiError);
  i.imm = -(1 << 17) - 1;
  EXPECT_THROW(encode(i), support::SefiError);
}

TEST(Encode, LogicalImmediatesAreUnsigned) {
  Instruction i;
  i.op = Opcode::kAndi;
  i.rd = 0;
  i.rn = 0;
  i.imm = 0x3ffff;
  EXPECT_EQ(roundtrip(i).imm, 0x3ffff);
  i.imm = -1;
  EXPECT_THROW(encode(i), support::SefiError);
}

TEST(Encode, MoviImm16) {
  Instruction i;
  i.op = Opcode::kMovi;
  i.rd = 9;
  i.imm = 0xffff;
  const Instruction d = roundtrip(i);
  EXPECT_EQ(d.rd, 9);
  EXPECT_EQ(d.imm, 0xffff);
  i.imm = 0x10000;
  EXPECT_THROW(encode(i), support::SefiError);
}

TEST(Encode, BranchCondOffsets) {
  for (std::int32_t off : {0, 1, -1, (1 << 21) - 1, -(1 << 21)}) {
    Instruction i;
    i.op = Opcode::kB;
    i.cond = Cond::ne;
    i.imm = off;
    const Instruction d = roundtrip(i);
    EXPECT_EQ(d.imm, off);
    EXPECT_EQ(d.cond, Cond::ne);
  }
}

TEST(Encode, BranchLinkOffsets) {
  for (std::int32_t off : {0, 42, -42, (1 << 25) - 1, -(1 << 25)}) {
    Instruction i;
    i.op = Opcode::kBl;
    i.imm = off;
    EXPECT_EQ(roundtrip(i).imm, off);
  }
}

TEST(Encode, SvcImmediate) {
  Instruction i;
  i.op = Opcode::kSvc;
  i.imm = 1234;
  EXPECT_EQ(roundtrip(i).imm, 1234);
}

TEST(Decode, InvalidOpcodeIsNullopt) {
  // Opcode field 63 is far beyond kOpcodeCount.
  EXPECT_FALSE(decode(0xffffffffu).has_value());
}

TEST(Decode, EveryOpcodeRoundTrips) {
  for (unsigned op = 0; op < static_cast<unsigned>(Opcode::kOpcodeCount);
       ++op) {
    Instruction i;
    i.op = static_cast<Opcode>(op);
    const auto d = decode(encode(i));
    ASSERT_TRUE(d.has_value()) << op;
    EXPECT_EQ(d->op, i.op) << op;
  }
}

TEST(CondHolds, EqNe) {
  EXPECT_TRUE(cond_holds(Cond::eq, cpsr::kFlagZ));
  EXPECT_FALSE(cond_holds(Cond::eq, 0));
  EXPECT_TRUE(cond_holds(Cond::ne, 0));
  EXPECT_FALSE(cond_holds(Cond::ne, cpsr::kFlagZ));
}

TEST(CondHolds, SignedComparisons) {
  // lt: N != V
  EXPECT_TRUE(cond_holds(Cond::lt, cpsr::kFlagN));
  EXPECT_TRUE(cond_holds(Cond::lt, cpsr::kFlagV));
  EXPECT_FALSE(cond_holds(Cond::lt, cpsr::kFlagN | cpsr::kFlagV));
  // ge: N == V
  EXPECT_TRUE(cond_holds(Cond::ge, 0));
  EXPECT_TRUE(cond_holds(Cond::ge, cpsr::kFlagN | cpsr::kFlagV));
  // gt: !Z && N==V
  EXPECT_TRUE(cond_holds(Cond::gt, 0));
  EXPECT_FALSE(cond_holds(Cond::gt, cpsr::kFlagZ));
}

TEST(CondHolds, UnsignedComparisons) {
  // cs = C, hi = C && !Z, ls = !C || Z
  EXPECT_TRUE(cond_holds(Cond::cs, cpsr::kFlagC));
  EXPECT_TRUE(cond_holds(Cond::hi, cpsr::kFlagC));
  EXPECT_FALSE(cond_holds(Cond::hi, cpsr::kFlagC | cpsr::kFlagZ));
  EXPECT_TRUE(cond_holds(Cond::ls, cpsr::kFlagZ | cpsr::kFlagC));
  EXPECT_TRUE(cond_holds(Cond::ls, 0));
}

TEST(CondHolds, AlwaysHolds) {
  EXPECT_TRUE(cond_holds(Cond::al, 0));
  EXPECT_TRUE(cond_holds(Cond::al, 0xffffffffu));
}

TEST(Disassemble, SampleForms) {
  Instruction add;
  add.op = Opcode::kAdd;
  add.rd = 1;
  add.rn = 2;
  add.rm = 3;
  EXPECT_EQ(disassemble(encode(add), 0), "add r1, r2, r3");

  Instruction ldr;
  ldr.op = Opcode::kLdr;
  ldr.rd = 4;
  ldr.rn = 13;
  ldr.imm = -8;
  EXPECT_EQ(disassemble(encode(ldr), 0), "ldr r4, [sp, #-8]");

  Instruction b;
  b.op = Opcode::kB;
  b.cond = Cond::ne;
  b.imm = 2;
  EXPECT_EQ(disassemble(encode(b), 0x100), "bne 0x10c");

  EXPECT_EQ(disassemble(0xffffffffu, 0), ".word 0xffffffff  ; undefined");
}

}  // namespace
}  // namespace sefi::isa
