#include "sefi/isa/assembler.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "sefi/support/error.hpp"

namespace sefi::isa {
namespace {

std::uint32_t word_at(const Program& p, std::uint32_t addr) {
  std::uint32_t w;
  std::memcpy(&w, p.bytes.data() + (addr - p.base), 4);
  return w;
}

TEST(Assembler, EmitsSequentialWords) {
  Assembler a(0x1000);
  a.nop();
  a.movi(Reg::r1, 5);
  Program p = a.finish();
  EXPECT_EQ(p.base, 0x1000u);
  EXPECT_EQ(p.size(), 8u);
  const auto first = decode(word_at(p, 0x1000));
  ASSERT_TRUE(first);
  EXPECT_EQ(first->op, Opcode::kNop);
}

TEST(Assembler, BackwardBranchOffset) {
  Assembler a(0x1000);
  Label top = a.make_label();
  a.bind(top);
  a.nop();
  a.b(top);  // at 0x1004, target 0x1000 -> offset (0x1000-0x1008)/4 = -2
  Program p = a.finish();
  const auto br = decode(word_at(p, 0x1004));
  ASSERT_TRUE(br);
  EXPECT_EQ(br->imm, -2);
}

TEST(Assembler, ForwardBranchFixup) {
  Assembler a(0);
  Label skip = a.make_label();
  a.b(Cond::eq, skip);
  a.nop();
  a.nop();
  a.bind(skip);
  a.nop();
  Program p = a.finish();
  const auto br = decode(word_at(p, 0));
  ASSERT_TRUE(br);
  EXPECT_EQ(br->op, Opcode::kB);
  EXPECT_EQ(br->imm, 2);  // (12 - 4) / 4
}

TEST(Assembler, BranchLinkFixup) {
  Assembler a(0);
  Label fn = a.make_label();
  a.bl(fn);
  a.nop();
  a.bind(fn);
  a.nop();
  Program p = a.finish();
  const auto bl = decode(word_at(p, 0));
  ASSERT_TRUE(bl);
  EXPECT_EQ(bl->op, Opcode::kBl);
  EXPECT_EQ(bl->imm, 1);
}

TEST(Assembler, LoadLabelProducesAbsoluteAddress) {
  Assembler a(0x20000);
  Label data = a.make_label();
  a.load_label(Reg::r2, data);
  a.nop();
  a.bind(data);
  a.word(0xdeadbeef);
  Program p = a.finish();
  const auto movi = decode(word_at(p, 0x20000));
  const auto movt = decode(word_at(p, 0x20004));
  ASSERT_TRUE(movi && movt);
  const std::uint32_t addr = a.address_of(data);
  EXPECT_EQ(static_cast<std::uint32_t>(movi->imm), addr & 0xffffu);
  EXPECT_EQ(static_cast<std::uint32_t>(movt->imm), addr >> 16);
}

TEST(Assembler, MovImm32SkipsMovtForSmallValues) {
  Assembler a(0);
  a.mov_imm32(Reg::r0, 0x1234);
  Program small = a.finish();
  EXPECT_EQ(small.size(), 4u);

  Assembler b(0);
  b.mov_imm32(Reg::r0, 0xdead1234);
  Program big = b.finish();
  EXPECT_EQ(big.size(), 8u);
}

TEST(Assembler, UnboundLabelThrowsAtFinish) {
  Assembler a(0);
  Label missing = a.make_label();
  a.b(missing);
  EXPECT_THROW(a.finish(), support::SefiError);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler a(0);
  Label l = a.make_label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), support::SefiError);
}

TEST(Assembler, SymbolsRecorded) {
  Assembler a(0x40);
  a.nop();
  a.symbol("after_nop");
  a.nop();
  Program p = a.finish();
  EXPECT_EQ(p.symbol("after_nop"), 0x44u);
  EXPECT_THROW(p.symbol("missing"), support::SefiError);
}

TEST(Assembler, DuplicateSymbolThrows) {
  Assembler a(0);
  a.symbol("x");
  EXPECT_THROW(a.symbol("x"), support::SefiError);
}

TEST(Assembler, DataDirectivesAndAlignment) {
  Assembler a(0);
  a.byte(0xAB);
  a.align(4);
  a.word(0x11223344);
  a.half(0x5566);
  a.align(4);
  a.float32(1.0f);
  Program p = a.finish();
  EXPECT_EQ(p.bytes[0], 0xAB);
  EXPECT_EQ(word_at(p, 4), 0x11223344u);
  EXPECT_EQ(p.bytes[8], 0x66);
  EXPECT_EQ(p.bytes[9], 0x55);
  EXPECT_EQ(word_at(p, 12), 0x3f800000u);  // 1.0f
}

TEST(Assembler, PushPopAreBalanced) {
  Assembler a(0);
  a.push({Reg::r0, Reg::r1});
  a.pop({Reg::r0, Reg::r1});
  Program p = a.finish();
  // push: subi + 2 stores; pop: 2 loads + addi.
  EXPECT_EQ(p.size(), 6u * 4);
}

TEST(Assembler, EntryDefaultsToBaseAndCanMove) {
  Assembler a(0x100);
  a.nop();
  a.entry_here();
  a.nop();
  Program p = a.finish();
  EXPECT_EQ(p.entry, 0x104u);
}

TEST(Assembler, FinishTwiceThrows) {
  Assembler a(0);
  a.nop();
  a.finish();
  EXPECT_THROW(a.finish(), support::SefiError);
}

// The fidelity contract the harden transforms rest on: replaying a
// program's recorded builder-event stream through a fresh Assembler
// reproduces it bit-for-bit — branches and label loads re-resolve to
// the same words, data directives coalesce to the same bytes, entry
// and symbols land at the same addresses. The program below touches
// every BuildEvent kind (instructions, conditional and linking
// branches with forward and backward targets, load_label, bind, data
// directives, align, symbol, entry_here).
TEST(Assembler, ReplayEventsReproducesTheProgramBitForBit) {
  Assembler a(0x8000);
  Label loop = a.make_label();
  Label done = a.make_label();
  Label sub = a.make_label();
  Label table = a.make_label();

  a.symbol("start");
  a.entry_here();
  a.movi(Reg::r0, 4);
  a.load_label(Reg::r1, table);
  a.bind(loop);
  a.bl(sub);
  a.subi(Reg::r0, Reg::r0, 1);
  a.cmpi(Reg::r0, 0);
  a.b(Cond::ne, loop);
  a.b(done);
  a.bind(sub);
  a.ldrr(Reg::r2, Reg::r1, Reg::r0);
  a.ret();
  a.bind(done);
  a.svc(1);
  a.align(8);
  a.bind(table);
  a.symbol("table");
  a.word(0xDEADBEEF);
  a.half(0x1234);
  a.byte(0x56);
  a.float32(2.5f);
  a.bytes({1, 2, 3});
  a.zero(5);
  const Program original = a.finish();

  const Program replayed = replay_events(original);
  EXPECT_EQ(replayed.base, original.base);
  EXPECT_EQ(replayed.entry, original.entry);
  EXPECT_EQ(replayed.bytes, original.bytes);
  EXPECT_EQ(replayed.symbols, original.symbols);
  // The replay re-records an equivalent event stream, so a second
  // replay round-trips too (transform pipelines compose).
  const Program twice = replay_events(replayed);
  EXPECT_EQ(twice.bytes, original.bytes);
}

}  // namespace
}  // namespace sefi::isa
