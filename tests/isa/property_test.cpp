// Property-style sweeps over the ISA: every opcode with randomized legal
// fields must encode/decode losslessly, and condition evaluation must
// match a reference predicate on all flag combinations.
#include <gtest/gtest.h>

#include "sefi/isa/isa.hpp"
#include "sefi/support/rng.hpp"

namespace sefi::isa {
namespace {

/// Legal random instruction for an opcode (fields the format ignores are
/// left zero so round-tripping is exact).
Instruction random_instruction(Opcode op, support::Xoshiro256& rng) {
  Instruction inst;
  inst.op = op;
  switch (op) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kAnd:
    case Opcode::kOrr: case Opcode::kEor: case Opcode::kLsl:
    case Opcode::kLsr: case Opcode::kAsr: case Opcode::kMul:
    case Opcode::kSdiv: case Opcode::kUdiv: case Opcode::kCmp:
    case Opcode::kMov: case Opcode::kFadd: case Opcode::kFsub:
    case Opcode::kFmul: case Opcode::kFdiv: case Opcode::kFcmp:
    case Opcode::kFcvtws: case Opcode::kFcvtsw: case Opcode::kFsqrt:
    case Opcode::kLdrr: case Opcode::kStrr: case Opcode::kBr:
    case Opcode::kBlr:
      inst.rd = static_cast<std::uint8_t>(rng.below(16));
      inst.rn = static_cast<std::uint8_t>(rng.below(16));
      inst.rm = static_cast<std::uint8_t>(rng.below(16));
      break;
    case Opcode::kEret: case Opcode::kMrs: case Opcode::kMsr:
    case Opcode::kMrsElr: case Opcode::kMsrElr: case Opcode::kMrsSpsr:
    case Opcode::kMsrSpsr: case Opcode::kMrsUsp: case Opcode::kMsrUsp:
    case Opcode::kTlbFlush: case Opcode::kHlt: case Opcode::kNop:
      inst.rd = static_cast<std::uint8_t>(rng.below(16));
      inst.rn = static_cast<std::uint8_t>(rng.below(16));
      break;
    case Opcode::kAddi: case Opcode::kSubi: case Opcode::kCmpi:
    case Opcode::kLdr: case Opcode::kStr: case Opcode::kLdrb:
    case Opcode::kStrb: case Opcode::kLdrh: case Opcode::kStrh:
      inst.rd = static_cast<std::uint8_t>(rng.below(16));
      inst.rn = static_cast<std::uint8_t>(rng.below(16));
      inst.imm = static_cast<std::int32_t>(rng.below(1u << 18)) - (1 << 17);
      break;
    case Opcode::kAndi: case Opcode::kOrri: case Opcode::kEori:
    case Opcode::kLsli: case Opcode::kLsri: case Opcode::kAsri:
      inst.rd = static_cast<std::uint8_t>(rng.below(16));
      inst.rn = static_cast<std::uint8_t>(rng.below(16));
      inst.imm = static_cast<std::int32_t>(rng.below(1u << 18));
      break;
    case Opcode::kMovi: case Opcode::kMovt:
      inst.rd = static_cast<std::uint8_t>(rng.below(16));
      inst.imm = static_cast<std::int32_t>(rng.below(1u << 16));
      break;
    case Opcode::kB:
      inst.cond = static_cast<Cond>(rng.below(15));
      inst.imm = static_cast<std::int32_t>(rng.below(1u << 22)) - (1 << 21);
      break;
    case Opcode::kBl:
      inst.imm = static_cast<std::int32_t>(rng.below(1u << 26)) - (1 << 25);
      break;
    case Opcode::kSvc:
      inst.rd = static_cast<std::uint8_t>(rng.below(16));
      inst.rn = static_cast<std::uint8_t>(rng.below(16));
      inst.imm = static_cast<std::int32_t>(rng.below(1u << 16));
      break;
    case Opcode::kOpcodeCount:
      break;
  }
  return inst;
}

class OpcodeRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(OpcodeRoundTrip, RandomizedFieldsSurviveEncodeDecode) {
  const auto op = static_cast<Opcode>(GetParam());
  support::Xoshiro256 rng(GetParam() * 7919 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    const Instruction inst = random_instruction(op, rng);
    const auto decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->op, inst.op);
    EXPECT_EQ(decoded->rd, inst.rd);
    EXPECT_EQ(decoded->rn, inst.rn);
    EXPECT_EQ(decoded->rm, inst.rm);
    EXPECT_EQ(decoded->cond, inst.cond);
    EXPECT_EQ(decoded->imm, inst.imm);
  }
}

TEST_P(OpcodeRoundTrip, DisassemblesToNonEmptyText) {
  const auto op = static_cast<Opcode>(GetParam());
  support::Xoshiro256 rng(GetParam() * 104729 + 3);
  const Instruction inst = random_instruction(op, rng);
  EXPECT_FALSE(disassemble(encode(inst), 0x1000).empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundTrip,
    ::testing::Range(0u, static_cast<unsigned>(Opcode::kOpcodeCount)),
    [](const ::testing::TestParamInfo<unsigned>& info) {
      return opcode_name(static_cast<Opcode>(info.param));
    });

TEST(CondHoldsProperty, MatchesReferencePredicateOnAllFlagCombos) {
  for (unsigned flags = 0; flags < 16; ++flags) {
    const bool n = flags & 8, z = flags & 4, c = flags & 2, v = flags & 1;
    std::uint32_t cpsr_value = 0;
    if (n) cpsr_value |= cpsr::kFlagN;
    if (z) cpsr_value |= cpsr::kFlagZ;
    if (c) cpsr_value |= cpsr::kFlagC;
    if (v) cpsr_value |= cpsr::kFlagV;
    EXPECT_EQ(cond_holds(Cond::eq, cpsr_value), z);
    EXPECT_EQ(cond_holds(Cond::ne, cpsr_value), !z);
    EXPECT_EQ(cond_holds(Cond::cs, cpsr_value), c);
    EXPECT_EQ(cond_holds(Cond::cc, cpsr_value), !c);
    EXPECT_EQ(cond_holds(Cond::mi, cpsr_value), n);
    EXPECT_EQ(cond_holds(Cond::pl, cpsr_value), !n);
    EXPECT_EQ(cond_holds(Cond::vs, cpsr_value), v);
    EXPECT_EQ(cond_holds(Cond::vc, cpsr_value), !v);
    EXPECT_EQ(cond_holds(Cond::hi, cpsr_value), c && !z);
    EXPECT_EQ(cond_holds(Cond::ls, cpsr_value), !c || z);
    EXPECT_EQ(cond_holds(Cond::ge, cpsr_value), n == v);
    EXPECT_EQ(cond_holds(Cond::lt, cpsr_value), n != v);
    EXPECT_EQ(cond_holds(Cond::gt, cpsr_value), !z && n == v);
    EXPECT_EQ(cond_holds(Cond::le, cpsr_value), z || n != v);
    EXPECT_TRUE(cond_holds(Cond::al, cpsr_value));
  }
}

TEST(CondProperty, OppositePairsPartitionFlagSpace) {
  const std::pair<Cond, Cond> pairs[] = {
      {Cond::eq, Cond::ne}, {Cond::cs, Cond::cc}, {Cond::mi, Cond::pl},
      {Cond::vs, Cond::vc}, {Cond::hi, Cond::ls}, {Cond::ge, Cond::lt},
      {Cond::gt, Cond::le},
  };
  for (unsigned flags = 0; flags < 16; ++flags) {
    std::uint32_t cpsr_value = 0;
    if (flags & 8) cpsr_value |= cpsr::kFlagN;
    if (flags & 4) cpsr_value |= cpsr::kFlagZ;
    if (flags & 2) cpsr_value |= cpsr::kFlagC;
    if (flags & 1) cpsr_value |= cpsr::kFlagV;
    for (const auto& [a, b] : pairs) {
      EXPECT_NE(cond_holds(a, cpsr_value), cond_holds(b, cpsr_value));
    }
  }
}

}  // namespace
}  // namespace sefi::isa
