// Detailed-model tests: memory hierarchy behaviour, timing, counters, and
// fault visibility through the real data path.
#include "sefi/microarch/detailed.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "sefi/isa/assembler.hpp"
#include "sefi/kernel/kernel.hpp"
#include "sefi/sim/cpu.hpp"
#include "sefi/sim/memmap.hpp"
#include "sefi/support/error.hpp"

namespace sefi::microarch {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Label;
using isa::Reg;

constexpr bool kKernelMode = true;
constexpr bool kMmuOff = false;

/// Fixture with a bare detailed model (no CPU) driven directly.
class DetailedModelTest : public ::testing::Test {
 protected:
  DetailedModelTest()
      : regfile_(64, 16), model_(DetailedConfig{}, mem_, devices_, regfile_) {}

  sim::PhysicalMemory mem_;
  sim::DeviceBlock devices_;
  PhysRegFile regfile_;
  DetailedModel model_;
};

TEST_F(DetailedModelTest, ReadReturnsMemoryContents) {
  mem_.write32(0x1000, 0xcafebabe);
  const auto r = model_.read(0x1000, 4, kKernelMode, kMmuOff);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, 0xcafebabeu);
}

TEST_F(DetailedModelTest, FirstReadMissesThenHits) {
  mem_.write32(0x2000, 1);
  model_.read(0x2000, 4, kKernelMode, kMmuOff);
  EXPECT_EQ(model_.counters().l1d_misses, 1u);
  model_.read(0x2004, 4, kKernelMode, kMmuOff);  // same line
  EXPECT_EQ(model_.counters().l1d_misses, 1u);
  EXPECT_EQ(model_.counters().l1d_accesses, 2u);
}

TEST_F(DetailedModelTest, MissChargesStallCycles) {
  model_.read(0x3000, 4, kKernelMode, kMmuOff);
  const std::uint64_t miss_cycles = model_.drain_extra_cycles();
  // L1 miss -> L2 miss -> DRAM: at least l2_hit + mem extra.
  EXPECT_GE(miss_cycles, 48u);
  model_.read(0x3000, 4, kKernelMode, kMmuOff);
  EXPECT_EQ(model_.drain_extra_cycles(), 0u);  // L1 hit is free
}

TEST_F(DetailedModelTest, WriteReadRoundTripThroughCache) {
  ASSERT_EQ(model_.write(0x4000, 4, 0x12345678, kKernelMode, kMmuOff),
            sim::MemFault::kNone);
  const auto r = model_.read(0x4000, 4, kKernelMode, kMmuOff);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.data, 0x12345678u);
  // Write-back: RAM still has the old value until eviction.
  EXPECT_EQ(mem_.read32(0x4000), 0u);
}

TEST_F(DetailedModelTest, DirtyEvictionWritesBackThroughL2) {
  ASSERT_EQ(model_.write(0x4000, 4, 0xaa55aa55, kKernelMode, kMmuOff),
            sim::MemFault::kNone);
  // Evict the L1 set by touching way-count+1 conflicting lines
  // (L1 32KB/4-way: set stride = 8KB).
  for (std::uint32_t i = 1; i <= 4; ++i) {
    model_.read(0x4000 + i * 8192, 4, kKernelMode, kMmuOff);
  }
  EXPECT_EQ(model_.l1d().lookup(0x4000), -1);
  // The line moved down into L2 with its data intact.
  const int l2_way = model_.l2().lookup(0x4000);
  ASSERT_GE(l2_way, 0);
  const auto line = model_.l2().line_data(0x4000, l2_way);
  std::uint32_t value;
  std::memcpy(&value, line.data(), 4);
  EXPECT_EQ(value, 0xaa55aa55u);
  // And a fresh read still sees it.
  const auto r = model_.read(0x4000, 4, kKernelMode, kMmuOff);
  EXPECT_EQ(r.data, 0xaa55aa55u);
}

TEST_F(DetailedModelTest, SubWordAccesses) {
  ASSERT_EQ(model_.write(0x5000, 1, 0xab, kKernelMode, kMmuOff),
            sim::MemFault::kNone);
  ASSERT_EQ(model_.write(0x5002, 2, 0xcdef, kKernelMode, kMmuOff),
            sim::MemFault::kNone);
  EXPECT_EQ(model_.read(0x5000, 1, kKernelMode, kMmuOff).data, 0xabu);
  EXPECT_EQ(model_.read(0x5002, 2, kKernelMode, kMmuOff).data, 0xcdefu);
  EXPECT_EQ(model_.read(0x5000, 4, kKernelMode, kMmuOff).data, 0xcdef00abu);
}

TEST_F(DetailedModelTest, MisalignedAccessFaults) {
  EXPECT_EQ(model_.read(0x5001, 4, kKernelMode, kMmuOff).fault,
            sim::MemFault::kUnaligned);
  EXPECT_EQ(model_.write(0x5002, 4, 0, kKernelMode, kMmuOff),
            sim::MemFault::kUnaligned);
}

TEST_F(DetailedModelTest, MmioBypassesCaches) {
  ASSERT_EQ(model_.write(sim::kUartTx, 4, 'z', kKernelMode, kMmuOff),
            sim::MemFault::kNone);
  EXPECT_EQ(devices_.console(), "z");
  EXPECT_EQ(model_.counters().l1d_accesses, 0u);
}

TEST_F(DetailedModelTest, MmioDeniedToUserMode) {
  EXPECT_EQ(model_.write(sim::kUartTx, 4, 'z', false, kMmuOff),
            sim::MemFault::kPermission);
}

TEST_F(DetailedModelTest, TranslationUsesTlbAfterFirstWalk) {
  // Identity PTE for VPN 0x20 with user-read permission.
  const std::uint32_t vpn = 0x20;
  mem_.write32(sim::kPageTableBase + vpn * 4,
               sim::pte::make(vpn, sim::pte::kValid | sim::pte::kUserRead));
  const std::uint32_t va = vpn << sim::kPageShift;
  const auto first = model_.read(va, 4, false, true);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(model_.counters().dtlb_misses, 1u);
  model_.drain_extra_cycles();
  const auto second = model_.read(va + 8, 4, false, true);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(model_.counters().dtlb_misses, 1u);  // TLB hit
}

TEST_F(DetailedModelTest, PermissionEnforcedFromTlb) {
  const std::uint32_t vpn = 0x21;
  mem_.write32(sim::kPageTableBase + vpn * 4,
               sim::pte::make(vpn, sim::pte::kValid | sim::pte::kUserRead));
  const std::uint32_t va = vpn << sim::kPageShift;
  EXPECT_EQ(model_.write(va, 4, 0, false, true), sim::MemFault::kPermission);
  EXPECT_EQ(model_.read(va, 4, false, true).fault, sim::MemFault::kNone);
  // Fetch from a no-exec page faults.
  EXPECT_EQ(model_.fetch(va, false, true).fault, sim::MemFault::kPermission);
}

TEST_F(DetailedModelTest, InvalidPteIsUnmapped) {
  EXPECT_EQ(model_.read(0x00500000, 4, false, true).fault,
            sim::MemFault::kUnmapped);
}

TEST_F(DetailedModelTest, CorruptedTlbPpnChangesTranslation) {
  const std::uint32_t vpn = 0x30;
  mem_.write32(sim::kPageTableBase + vpn * 4,
               sim::pte::make(vpn, sim::pte::kValid | sim::pte::kUserRead));
  const std::uint32_t va = vpn << sim::kPageShift;
  mem_.write32(va, 0x11111111);
  const std::uint32_t aliased_pa = (vpn ^ 1u) << sim::kPageShift;
  mem_.write32(aliased_pa, 0x22222222);
  ASSERT_EQ(model_.read(va, 4, false, true).data, 0x11111111u);
  // Flip PPN bit 0 of DTLB entry 0 (the only entry, inserted round-robin
  // from slot 0).
  model_.dtlb().flip_bit(1 + 12);
  // The L1 still holds the old line under the *old* physical address, but
  // the corrupted translation now points at vpn^1; that line isn't cached
  // yet, so the read misses and fetches the aliased data: silent
  // corruption.
  EXPECT_EQ(model_.read(va, 4, false, true).data, 0x22222222u);
}

TEST_F(DetailedModelTest, FlippedL1DataBitIsReadBack) {
  mem_.write32(0x6000, 0);
  model_.read(0x6000, 4, kKernelMode, kMmuOff);
  const int way = model_.l1d().lookup(0x6000);
  ASSERT_GE(way, 0);
  // Compute the injectable bit index of data bit 0 of this line.
  const auto& geom = model_.l1d().geometry();
  const std::uint64_t per_line = 2 + (32 - 5 - 8) + geom.line_bytes * 8;
  const std::uint32_t set = (0x6000 >> 5) & (geom.sets() - 1);
  const std::uint64_t line = static_cast<std::uint64_t>(set) * geom.ways +
                             static_cast<std::uint64_t>(way);
  model_.l1d().flip_bit(line * per_line + 2 + (32 - 5 - 8));
  EXPECT_EQ(model_.read(0x6000, 4, kKernelMode, kMmuOff).data, 1u);
}

TEST_F(DetailedModelTest, InvalidateRangeRestoresMemoryView) {
  ASSERT_EQ(model_.write(0x7000, 4, 0xdddd, kKernelMode, kMmuOff),
            sim::MemFault::kNone);
  // Loader rewrites RAM under the cache and invalidates.
  mem_.write32(0x7000, 0x1234);
  model_.invalidate_range(0x7000, 4);
  EXPECT_EQ(model_.read(0x7000, 4, kKernelMode, kMmuOff).data, 0x1234u);
}

TEST_F(DetailedModelTest, ComponentAccessorsCoverAllSix) {
  for (const ComponentKind kind : kAllComponents) {
    InjectableComponent& c = model_.component(kind);
    EXPECT_GT(c.bit_count(), 0u) << component_name(kind);
  }
  // Paper's observation: L2 covers >80% of the modeled memory cells.
  std::uint64_t total = 0;
  for (const ComponentKind kind : kAllComponents) {
    total += model_.component(kind).bit_count();
  }
  EXPECT_GT(static_cast<double>(model_.l2().bit_count()) /
                static_cast<double>(total),
            0.8);
}

TEST_F(DetailedModelTest, ResetClearsState) {
  model_.write(0x8000, 4, 1, kKernelMode, kMmuOff);
  model_.reset();
  EXPECT_EQ(model_.l1d().lookup(0x8000), -1);
  EXPECT_EQ(model_.counters().l1d_accesses, 0u);
}

// --- full-machine tests on the detailed model ---------------------------

TEST(DetailedMachine, RunsKernelAndAppLikeFunctional) {
  Assembler a(sim::kUserBase);
  a.movi(Reg::r0, 'd');
  a.movi(Reg::r7, sim::sysno::kPutc);
  a.svc(0);
  a.mov_imm32(Reg::r0, 9);
  a.movi(Reg::r7, sim::sysno::kExit);
  a.svc(0);
  const isa::Program app = a.finish();

  sim::Machine m = make_detailed_machine();
  kernel::install_system(m, kernel::build_kernel(), app, 0x00200000);
  m.boot();
  const sim::RunEvent event = m.run(50'000'000);
  EXPECT_EQ(event.kind, sim::RunEventKind::kExit);
  EXPECT_EQ(event.payload, 9u);
  EXPECT_EQ(m.console(), "d");

  const sim::PerfCounters& c = m.counters();
  EXPECT_GT(c.l1i_misses, 0u);
  EXPECT_GT(c.l1d_accesses, 0u);
  EXPECT_GT(c.itlb_misses, 0u);
  EXPECT_GT(c.branches, 0u);
  EXPECT_GT(m.cpu().cycles(), m.cpu().instructions());
}

TEST(DetailedMachine, DetailedModelAccessor) {
  sim::Machine m = make_detailed_machine();
  EXPECT_NO_THROW(detailed_model(m));
  sim::Machine f = sim::Machine::make_functional();
  EXPECT_THROW(detailed_model(f), support::SefiError);
}

TEST(DetailedMachine, SameProgramSameOutputAsFunctional) {
  // Architectural equivalence: the detailed and functional models must
  // produce identical console output and exit codes.
  Assembler a(sim::kUserBase);
  a.movi(Reg::r4, 0);
  a.movi(Reg::r5, 1);
  a.movi(Reg::r6, 24);
  Label loop = a.make_label();
  a.bind(loop);
  a.add(Reg::r5, Reg::r5, Reg::r5);
  a.addi(Reg::r4, Reg::r4, 1);
  a.cmp(Reg::r4, Reg::r6);
  a.b(Cond::lt, loop);
  a.mov_imm32(Reg::r2, 0xffff);
  a.and_(Reg::r0, Reg::r5, Reg::r2);
  a.movi(Reg::r7, sim::sysno::kExit);
  a.svc(0);
  const isa::Program app = a.finish();

  sim::Machine detailed = make_detailed_machine();
  kernel::install_system(detailed, kernel::build_kernel(), app, 0x00200000);
  detailed.boot();
  const sim::RunEvent de = detailed.run(50'000'000);

  sim::Machine functional = sim::Machine::make_functional();
  kernel::install_system(functional, kernel::build_kernel(), app,
                         0x00200000);
  functional.boot();
  const sim::RunEvent fe = functional.run(50'000'000);

  EXPECT_EQ(de.kind, fe.kind);
  EXPECT_EQ(de.payload, fe.payload);
  EXPECT_EQ(detailed.console(), functional.console());
  // Instruction counts differ slightly (timer IRQs land at different
  // cycles), but the architectural result must match exactly.
}

}  // namespace
}  // namespace sefi::microarch
