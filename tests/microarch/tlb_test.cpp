#include "sefi/microarch/tlb.hpp"

#include <gtest/gtest.h>

#include "sefi/sim/memmap.hpp"
#include "sefi/support/error.hpp"

namespace sefi::microarch {
namespace {

sim::Translation make_translation(std::uint32_t ppn, std::uint8_t perms) {
  sim::Translation t;
  t.ppn = ppn;
  t.perms = perms;
  return t;
}

TEST(Tlb, MissOnEmpty) {
  Tlb tlb("t", 4);
  EXPECT_FALSE(tlb.lookup(5).has_value());
}

TEST(Tlb, InsertThenHitPreservesFields) {
  Tlb tlb("t", 4);
  tlb.insert(5, make_translation(42, sim::pte::kUserRead |
                                         sim::pte::kUserWrite));
  const auto hit = tlb.lookup(5);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->ppn, 42u);
  EXPECT_EQ(hit->perms,
            sim::pte::kUserRead | sim::pte::kUserWrite);
}

TEST(Tlb, RoundRobinEviction) {
  Tlb tlb("t", 2);
  tlb.insert(1, make_translation(1, 0));
  tlb.insert(2, make_translation(2, 0));
  tlb.insert(3, make_translation(3, 0));  // evicts vpn 1
  EXPECT_FALSE(tlb.lookup(1).has_value());
  EXPECT_TRUE(tlb.lookup(2).has_value());
  EXPECT_TRUE(tlb.lookup(3).has_value());
}

TEST(Tlb, ResetDropsEntries) {
  Tlb tlb("t", 4);
  tlb.insert(7, make_translation(7, 0));
  tlb.reset();
  EXPECT_FALSE(tlb.lookup(7).has_value());
}

TEST(Tlb, BitCount) {
  Tlb tlb("t", 32);
  EXPECT_EQ(tlb.bit_count(), 32u * Tlb::kBitsPerEntry);
  EXPECT_EQ(Tlb::kBitsPerEntry, 28u);
}

TEST(Tlb, FlipValidBitDropsEntry) {
  Tlb tlb("t", 4);
  tlb.insert(9, make_translation(9, 0));
  tlb.flip_bit(0);  // entry 0 valid bit
  EXPECT_FALSE(tlb.lookup(9).has_value());
}

TEST(Tlb, FlipVpnBitCausesTagMissAndAlias) {
  Tlb tlb("t", 4);
  tlb.insert(8, make_translation(8, 0));
  tlb.flip_bit(1);  // entry 0, VPN bit 0: vpn 8 -> 9
  EXPECT_FALSE(tlb.lookup(8).has_value());
  const auto aliased = tlb.lookup(9);
  ASSERT_TRUE(aliased);
  EXPECT_EQ(aliased->ppn, 8u);  // silently wrong translation for vpn 9
}

TEST(Tlb, FlipPpnBitSilentlyChangesTranslation) {
  Tlb tlb("t", 4);
  tlb.insert(3, make_translation(0x10, 0));
  tlb.flip_bit(1 + 12);  // entry 0, PPN bit 0
  const auto hit = tlb.lookup(3);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->ppn, 0x11u);
}

TEST(Tlb, FlipPermBitTogglesPermission) {
  Tlb tlb("t", 4);
  tlb.insert(2, make_translation(2, sim::pte::kUserRead));
  tlb.flip_bit(1 + 12 + 12);  // entry 0, perm bit 0 (user-read)
  const auto hit = tlb.lookup(2);
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->perms & sim::pte::kUserRead, 0u);
}

TEST(Tlb, FlipBitInSecondEntry) {
  Tlb tlb("t", 4);
  tlb.insert(1, make_translation(1, 0));
  tlb.insert(2, make_translation(2, 0));
  tlb.flip_bit(Tlb::kBitsPerEntry);  // entry 1 valid bit
  EXPECT_TRUE(tlb.lookup(1).has_value());
  EXPECT_FALSE(tlb.lookup(2).has_value());
}

TEST(Tlb, FlipBitOutOfRangeThrows) {
  Tlb tlb("t", 4);
  EXPECT_THROW(tlb.flip_bit(tlb.bit_count()), support::SefiError);
}

}  // namespace
}  // namespace sefi::microarch
