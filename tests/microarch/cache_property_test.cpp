// Property sweeps over the cache array across geometries: flip-twice
// involution, install/lookup consistency, occupancy accounting, and
// address reconstruction, under randomized operation sequences.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "sefi/microarch/cache.hpp"
#include "sefi/support/rng.hpp"

namespace sefi::microarch {
namespace {

class CacheGeometrySweep
    : public ::testing::TestWithParam<CacheGeometry> {};

std::vector<std::uint8_t> line_pattern(const CacheGeometry& geom,
                                       std::uint8_t seed) {
  std::vector<std::uint8_t> line(geom.line_bytes);
  std::iota(line.begin(), line.end(), seed);
  return line;
}

TEST_P(CacheGeometrySweep, InstallThenLookupAlwaysHits) {
  const CacheGeometry geom = GetParam();
  CacheArray cache("p", geom);
  support::Xoshiro256 rng(geom.size_bytes ^ geom.ways);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t addr =
        static_cast<std::uint32_t>(rng.below(1u << 24)) &
        ~(geom.line_bytes - 1);
    const int way = cache.pick_victim(addr);
    cache.install(addr, way, line_pattern(geom, static_cast<std::uint8_t>(trial)));
    ASSERT_EQ(cache.lookup(addr), way) << addr;
  }
}

TEST_P(CacheGeometrySweep, FlipTwiceIsIdentity) {
  const CacheGeometry geom = GetParam();
  CacheArray cache("p", geom);
  // Fill a few lines (consecutive sets) so flips touch valid state too.
  for (std::uint32_t i = 0; i < 8; ++i) {
    const std::uint32_t addr = i * geom.line_bytes;
    cache.install(addr, cache.pick_victim(addr),
                  line_pattern(geom, static_cast<std::uint8_t>(i)));
  }
  const std::uint32_t probe = 0;
  const int way_before = cache.lookup(probe);
  ASSERT_GE(way_before, 0);
  support::Xoshiro256 rng(42);
  for (int trial = 0; trial < 500; ++trial) {
    const std::uint64_t bit = rng.below(cache.bit_count());
    cache.flip_bit(bit);
    cache.flip_bit(bit);
  }
  // State restored: the probe line is still present with its data.
  ASSERT_EQ(cache.lookup(probe), way_before);
  const auto data = cache.line_data(probe, way_before);
  const auto expected = line_pattern(geom, 0);
  EXPECT_TRUE(std::equal(expected.begin(), expected.end(), data.begin()));
}

TEST_P(CacheGeometrySweep, ValidLineCountTracksInstallsAndInvalidates) {
  const CacheGeometry geom = GetParam();
  CacheArray cache("p", geom);
  EXPECT_EQ(cache.valid_lines(), 0u);
  const std::uint32_t stride = geom.line_bytes;
  const std::uint32_t count = std::min<std::uint32_t>(geom.lines(), 16);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t addr = i * stride;
    cache.install(addr, cache.pick_victim(addr), line_pattern(geom, 1));
  }
  EXPECT_EQ(cache.valid_lines(), count);
  cache.invalidate_range(0, count * stride);
  EXPECT_EQ(cache.valid_lines(), 0u);
}

TEST_P(CacheGeometrySweep, LinePaddrReconstructionRoundTrips) {
  const CacheGeometry geom = GetParam();
  CacheArray cache("p", geom);
  support::Xoshiro256 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint32_t addr =
        static_cast<std::uint32_t>(rng.below(1u << 24)) &
        ~(geom.line_bytes - 1);
    const int way = cache.pick_victim(addr);
    cache.install(addr, way, line_pattern(geom, 3));
    const std::uint32_t set =
        (addr / geom.line_bytes) % geom.sets();
    EXPECT_EQ(cache.line_paddr(set, way), addr);
  }
}

TEST_P(CacheGeometrySweep, EvictionNeverLosesOtherSets) {
  const CacheGeometry geom = GetParam();
  CacheArray cache("p", geom);
  // Pin one line in set 0, then thrash a different set; the pinned line
  // must survive.
  cache.install(0, cache.pick_victim(0), line_pattern(geom, 9));
  if (geom.sets() > 1) {
    const std::uint32_t other_set_addr = geom.line_bytes;  // set 1
    for (std::uint32_t i = 0; i < geom.ways * 4; ++i) {
      const std::uint32_t addr =
          other_set_addr + i * geom.line_bytes * geom.sets();
      cache.install(addr, cache.pick_victim(addr), line_pattern(geom, 5));
    }
  }
  EXPECT_GE(cache.lookup(0), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(CacheGeometry{1024, 32, 1},     // direct mapped
                      CacheGeometry{1024, 32, 2},
                      CacheGeometry{4 * 1024, 32, 4},  // scaled L1
                      CacheGeometry{4 * 1024, 64, 4},  // wider lines
                      CacheGeometry{32 * 1024, 32, 4}, // paper L1
                      CacheGeometry{64 * 1024, 32, 8}, // scaled L2
                      CacheGeometry{2048, 32, 64}),    // fully assoc set
    [](const ::testing::TestParamInfo<CacheGeometry>& info) {
      return std::to_string(info.param.size_bytes / 1024) + "K" +
             std::to_string(info.param.ways) + "w" +
             std::to_string(info.param.line_bytes) + "b";
    });

}  // namespace
}  // namespace sefi::microarch
