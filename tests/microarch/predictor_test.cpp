#include "sefi/microarch/predictor.hpp"

#include <gtest/gtest.h>

#include "sefi/support/error.hpp"

namespace sefi::microarch {
namespace {

TEST(BranchPredictor, LearnsAlwaysTakenBranch) {
  BranchPredictor predictor;
  const std::uint32_t pc = 0x1000;
  // Initially weakly not-taken: the first outcome mispredicts.
  EXPECT_TRUE(predictor.conditional(pc, true));
  // After training, taken branches predict correctly.
  predictor.conditional(pc, true);
  EXPECT_FALSE(predictor.conditional(pc, true));
  EXPECT_FALSE(predictor.conditional(pc, true));
}

TEST(BranchPredictor, LearnsAlwaysNotTakenBranch) {
  BranchPredictor predictor;
  const std::uint32_t pc = 0x2000;
  EXPECT_FALSE(predictor.conditional(pc, false));  // weakly not-taken
  EXPECT_FALSE(predictor.conditional(pc, false));
}

TEST(BranchPredictor, SaturatingCountersTolerateOneAnomaly) {
  BranchPredictor predictor;
  const std::uint32_t pc = 0x3000;
  for (int i = 0; i < 8; ++i) predictor.conditional(pc, true);
  // One not-taken outcome mispredicts but doesn't flip the bias.
  EXPECT_TRUE(predictor.conditional(pc, false));
  EXPECT_FALSE(predictor.conditional(pc, true));
}

TEST(BranchPredictor, AlternatingPatternKeepsMissing) {
  BranchPredictor predictor;
  const std::uint32_t pc = 0x4000;
  int misses = 0;
  bool taken = false;
  for (int i = 0; i < 100; ++i) {
    if (predictor.conditional(pc, taken)) ++misses;
    taken = !taken;
  }
  // A bimodal predictor cannot learn strict alternation.
  EXPECT_GT(misses, 30);
}

TEST(BranchPredictor, BtbLearnsIndirectTarget) {
  BranchPredictor predictor;
  EXPECT_TRUE(predictor.indirect(0x5000, 0x9000));   // cold miss
  EXPECT_FALSE(predictor.indirect(0x5000, 0x9000));  // learned
  EXPECT_TRUE(predictor.indirect(0x5000, 0xA000));   // target changed
  EXPECT_FALSE(predictor.indirect(0x5000, 0xA000));
}

TEST(BranchPredictor, BtbEntriesCollideByIndex) {
  BranchPredictor predictor(1024, 4);  // tiny BTB: 4 entries
  // PCs 0x0 and 0x10 map to different slots; 0x0 and 0x40 collide.
  EXPECT_TRUE(predictor.indirect(0x0, 0x100));
  EXPECT_FALSE(predictor.indirect(0x0, 0x100));
  EXPECT_TRUE(predictor.indirect(0x40, 0x200));  // evicts 0x0's slot
  EXPECT_TRUE(predictor.indirect(0x0, 0x100));   // cold again
}

TEST(BranchPredictor, ResetForgetsTraining) {
  BranchPredictor predictor;
  const std::uint32_t pc = 0x6000;
  for (int i = 0; i < 4; ++i) predictor.conditional(pc, true);
  predictor.reset();
  EXPECT_TRUE(predictor.conditional(pc, true));  // back to weakly not-taken
}

TEST(BranchPredictor, RejectsNonPowerOfTwoTables) {
  EXPECT_THROW(BranchPredictor(1000, 256), support::SefiError);
  EXPECT_THROW(BranchPredictor(1024, 100), support::SefiError);
}

}  // namespace
}  // namespace sefi::microarch
