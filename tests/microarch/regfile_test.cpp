#include "sefi/microarch/regfile.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sefi/support/error.hpp"

namespace sefi::microarch {
namespace {

TEST(PhysRegFile, ReadAfterWrite) {
  PhysRegFile rf;
  rf.write(3, 0xdeadbeef);
  EXPECT_EQ(rf.read(3), 0xdeadbeefu);
}

TEST(PhysRegFile, ResetMapsIdentityAndZeroes) {
  PhysRegFile rf;
  rf.write(0, 123);
  rf.reset();
  for (unsigned r = 0; r < 16; ++r) {
    EXPECT_EQ(rf.read(r), 0u);
    EXPECT_EQ(rf.mapping(r), r);
  }
}

TEST(PhysRegFile, WriteAllocatesFreshPhysicalRegister) {
  PhysRegFile rf;
  const unsigned before = rf.mapping(5);
  rf.write(5, 1);
  EXPECT_NE(rf.mapping(5), before);
}

TEST(PhysRegFile, OtherMappingsUndisturbed) {
  PhysRegFile rf;
  rf.write(5, 99);
  for (unsigned r = 0; r < 16; ++r) {
    if (r != 5) {
      EXPECT_EQ(rf.read(r), 0u) << r;
    }
  }
}

TEST(PhysRegFile, MappingsStayDistinct) {
  PhysRegFile rf(64, 16);
  // Hammer writes; no two architectural registers may ever share a
  // physical register.
  for (int i = 0; i < 1000; ++i) {
    rf.write(static_cast<unsigned>(i % 16), static_cast<std::uint32_t>(i));
    std::set<unsigned> seen;
    for (unsigned r = 0; r < 16; ++r) seen.insert(rf.mapping(r));
    ASSERT_EQ(seen.size(), 16u);
  }
}

TEST(PhysRegFile, ValuesSurviveHeavyRenaming) {
  PhysRegFile rf;
  for (unsigned r = 0; r < 16; ++r) rf.write(r, r * 17 + 1);
  for (int i = 0; i < 500; ++i) rf.write(0, static_cast<std::uint32_t>(i));
  for (unsigned r = 1; r < 16; ++r) EXPECT_EQ(rf.read(r), r * 17 + 1);
  EXPECT_EQ(rf.read(0), 499u);
}

TEST(PhysRegFile, FlipBitOnMappedRegisterIsVisible) {
  PhysRegFile rf;
  rf.reset();  // arch r2 -> phys 2
  rf.write(2, 0);
  const unsigned phys = rf.mapping(2);
  rf.flip_bit(static_cast<std::uint64_t>(phys) * 32 + 7);
  EXPECT_EQ(rf.read(2), 1u << 7);
}

TEST(PhysRegFile, FlipBitOnFreeRegisterIsMasked) {
  PhysRegFile rf;
  // Find a physical register not mapped to any architectural one.
  std::set<unsigned> live;
  for (unsigned r = 0; r < 16; ++r) live.insert(rf.mapping(r));
  unsigned free_phys = 0;
  for (unsigned p = 0; p < rf.num_phys(); ++p) {
    if (!live.contains(p)) {
      free_phys = p;
      break;
    }
  }
  rf.flip_bit(static_cast<std::uint64_t>(free_phys) * 32);
  for (unsigned r = 0; r < 16; ++r) EXPECT_EQ(rf.read(r), 0u);
}

TEST(PhysRegFile, BitCount) {
  PhysRegFile rf(64, 16);
  EXPECT_EQ(rf.bit_count(), 64u * 32);
}

TEST(PhysRegFile, FlipBitOutOfRangeThrows) {
  PhysRegFile rf;
  EXPECT_THROW(rf.flip_bit(rf.bit_count()), support::SefiError);
}

TEST(PhysRegFile, RejectsDegenerateConfig) {
  EXPECT_THROW(PhysRegFile(16, 16), support::SefiError);
}

}  // namespace
}  // namespace sefi::microarch
