#include "sefi/microarch/cache.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sefi/support/error.hpp"

namespace sefi::microarch {
namespace {

CacheGeometry small_geom() { return {1024, 32, 2}; }  // 16 sets, 2 ways

std::vector<std::uint8_t> pattern_line(std::uint8_t seed) {
  std::vector<std::uint8_t> line(32);
  std::iota(line.begin(), line.end(), seed);
  return line;
}

TEST(CacheGeometry, DerivedQuantities) {
  const CacheGeometry g{32 * 1024, 32, 4};
  EXPECT_EQ(g.lines(), 1024u);
  EXPECT_EQ(g.sets(), 256u);
}

TEST(CacheArray, MissOnEmpty) {
  CacheArray c("t", small_geom());
  EXPECT_EQ(c.lookup(0x1000), -1);
}

TEST(CacheArray, InstallThenHit) {
  CacheArray c("t", small_geom());
  const auto fill = pattern_line(1);
  const int way = c.pick_victim(0x1000);
  c.install(0x1000, way, fill);
  EXPECT_EQ(c.lookup(0x1000), way);
  const auto data = c.line_data(0x1000, way);
  EXPECT_TRUE(std::equal(fill.begin(), fill.end(), data.begin()));
}

TEST(CacheArray, DistinctSetsDoNotConflict) {
  CacheArray c("t", small_geom());
  c.install(0x0000, c.pick_victim(0x0000), pattern_line(0));
  c.install(0x0020, c.pick_victim(0x0020), pattern_line(1));
  EXPECT_GE(c.lookup(0x0000), 0);
  EXPECT_GE(c.lookup(0x0020), 0);
}

TEST(CacheArray, EvictionReturnsVictimWithData) {
  CacheArray c("t", small_geom());
  // Three lines mapping to the same set (stride = sets*line = 512).
  c.install(0x0000, c.pick_victim(0x0000), pattern_line(0));
  c.install(0x0200, c.pick_victim(0x0200), pattern_line(1));
  c.mark_dirty(0x0000, c.lookup(0x0000));
  const int victim_way = c.pick_victim(0x0400);
  const EvictedLine evicted = c.install(0x0400, victim_way, pattern_line(2));
  EXPECT_TRUE(evicted.valid);
  // Round-robin starts at way 0, which holds 0x0000 (dirty).
  EXPECT_TRUE(evicted.dirty);
  EXPECT_EQ(evicted.paddr, 0x0000u);
  EXPECT_EQ(evicted.data, pattern_line(0));
}

TEST(CacheArray, PickVictimPrefersInvalidWays) {
  CacheArray c("t", small_geom());
  const int w0 = c.pick_victim(0x1000);
  c.install(0x1000, w0, pattern_line(0));
  const int w1 = c.pick_victim(0x1200);  // same set
  EXPECT_NE(w0, w1);
}

TEST(CacheArray, DirtyFlagLifecycle) {
  CacheArray c("t", small_geom());
  const int way = c.pick_victim(0x40);
  c.install(0x40, way, pattern_line(0));
  EXPECT_FALSE(c.is_dirty(0x40, way));
  c.mark_dirty(0x40, way);
  EXPECT_TRUE(c.is_dirty(0x40, way));
  // Reinstalling clears dirty.
  c.install(0x40, way, pattern_line(1));
  EXPECT_FALSE(c.is_dirty(0x40, way));
}

TEST(CacheArray, InvalidateRangeDropsOverlappingLines) {
  CacheArray c("t", small_geom());
  c.install(0x0000, c.pick_victim(0x0000), pattern_line(0));
  c.install(0x0100, c.pick_victim(0x0100), pattern_line(1));
  c.invalidate_range(0x0000, 0x20);
  EXPECT_EQ(c.lookup(0x0000), -1);
  EXPECT_GE(c.lookup(0x0100), 0);
}

TEST(CacheArray, InvalidateRangePartialOverlap) {
  CacheArray c("t", small_geom());
  c.install(0x0040, c.pick_victim(0x0040), pattern_line(0));
  // Range ending inside the line still invalidates it.
  c.invalidate_range(0x0030, 0x11);
  EXPECT_EQ(c.lookup(0x0040), -1);
}

TEST(CacheArray, ResetDropsEverything) {
  CacheArray c("t", small_geom());
  c.install(0x80, c.pick_victim(0x80), pattern_line(3));
  c.reset();
  EXPECT_EQ(c.lookup(0x80), -1);
}

TEST(CacheArray, BitCountAccounting) {
  CacheArray c("t", small_geom());
  // 32 lines; per line: 2 + tag(32-5-4=23) + 256 data = 281 bits.
  EXPECT_EQ(c.bit_count(), 32u * (2 + 23 + 256));
}

TEST(CacheArray, FlipValidBitDropsLine) {
  CacheArray c("t", small_geom());
  const int way = c.pick_victim(0x0000);
  c.install(0x0000, way, pattern_line(0));
  // Line 0 is (set 0, way 0); bit 0 is its valid bit.
  const std::uint32_t line = 0 * 2 + static_cast<std::uint32_t>(way);
  c.flip_bit(static_cast<std::uint64_t>(line) * (2 + 23 + 256) + 0);
  EXPECT_EQ(c.lookup(0x0000), -1);
}

TEST(CacheArray, FlipTagBitDetachesLine) {
  CacheArray c("t", small_geom());
  const int way = c.pick_victim(0x0000);
  c.install(0x0000, way, pattern_line(0));
  const std::uint64_t per_line = 2 + 23 + 256;
  const std::uint64_t line = static_cast<std::uint64_t>(way);
  c.flip_bit(line * per_line + 2);  // tag bit 0
  EXPECT_EQ(c.lookup(0x0000), -1);
  // The line now answers for the aliased address (tag bit 0 => +512B).
  EXPECT_EQ(c.lookup(0x0200), way);
}

TEST(CacheArray, FlipDataBitCorruptsStoredByte) {
  CacheArray c("t", small_geom());
  const int way = c.pick_victim(0x0000);
  c.install(0x0000, way, pattern_line(0));
  const std::uint64_t per_line = 2 + 23 + 256;
  // Flip bit 3 of data byte 5 of line (set0, way).
  c.flip_bit(static_cast<std::uint64_t>(way) * per_line + 2 + 23 + 5 * 8 + 3);
  const auto data = c.line_data(0x0000, way);
  EXPECT_EQ(data[5], static_cast<std::uint8_t>(5 ^ 0x08));
}

TEST(CacheArray, FlipDirtyBitLosesWriteback) {
  CacheArray c("t", small_geom());
  const int way = c.pick_victim(0x0000);
  c.install(0x0000, way, pattern_line(0));
  c.mark_dirty(0x0000, way);
  const std::uint64_t per_line = 2 + 23 + 256;
  c.flip_bit(static_cast<std::uint64_t>(way) * per_line + 1);
  EXPECT_FALSE(c.is_dirty(0x0000, way));
}

TEST(CacheArray, FlipBitOutOfRangeThrows) {
  CacheArray c("t", small_geom());
  EXPECT_THROW(c.flip_bit(c.bit_count()), support::SefiError);
}

TEST(CacheArray, PaperGeometryBitCounts) {
  // L1: 32KB 4-way 32B lines -> 1024 lines, tag = 32-5-8 = 19 bits.
  CacheArray l1("L1", {32 * 1024, 32, 4});
  EXPECT_EQ(l1.bit_count(), 1024u * (2 + 19 + 256));
  // L2: 512KB 8-way -> 16384 lines, 2048 sets, tag = 32-5-11 = 16 bits.
  CacheArray l2("L2", {512 * 1024, 32, 8});
  EXPECT_EQ(l2.bit_count(), 16384u * (2 + 16 + 256));
}

}  // namespace
}  // namespace sefi::microarch
